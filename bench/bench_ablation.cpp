// Experiment E4: decompilation-pass ablation.
//
// Paper §2 argues each recovery technique is needed for good synthesis:
// constant propagation kills move-idiom ALUs, stack-op removal avoids
// serializing through the memory port, strength promotion frees the
// synthesis tool to choose the multiplier implementation, loop rerolling
// recovers compact loop bodies, and size reduction shrinks every operator.
// Here each pass is disabled in turn and the suite-average hardware time
// and area are re-measured: the delta is that pass's contribution.
#include <cstdio>
#include <string>
#include <vector>

#include "partition/flow.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

using namespace b2h;

namespace {

struct Variant {
  const char* name;
  void (*apply)(decomp::DecompileOptions&);
};

struct Totals {
  double hw_time = 0.0;
  double area = 0.0;
  double speedup = 0.0;
  int count = 0;
};

Totals Measure(const Variant& variant) {
  Totals totals;
  for (const suite::Benchmark* bench : suite::WorkingBenchmarks()) {
    // -O3 binaries stress rerolling; -O0 would stress stack removal most,
    // but O3 exercises every pass at once.
    auto binary = suite::BuildBinary(*bench, 3);
    if (!binary.ok()) continue;
    partition::FlowOptions options;
    variant.apply(options.decompile);
    auto flow = partition::RunFlow(binary.value(), options);
    if (!flow.ok()) continue;
    double hw_time = 0.0;
    for (const auto& kernel : flow.value().estimate.kernels) {
      hw_time += kernel.hw_time;
    }
    totals.hw_time += hw_time;
    totals.area += flow.value().estimate.area_gates;
    totals.speedup += flow.value().estimate.speedup;
    ++totals.count;
  }
  return totals;
}

}  // namespace

int main() {
  printf("=== E4: decompilation optimization ablation (suite at -O3) ===\n\n");
  const std::vector<Variant> variants = {
      {"all passes (baseline)", [](decomp::DecompileOptions&) {}},
      {"no constant propagation",
       [](decomp::DecompileOptions& o) { o.simplify_constants = false; }},
      {"no stack-op removal",
       [](decomp::DecompileOptions& o) { o.remove_stack_ops = false; }},
      {"no loop rerolling",
       [](decomp::DecompileOptions& o) { o.reroll_loops = false; }},
      {"no strength promotion",
       [](decomp::DecompileOptions& o) { o.promote_strength = false; }},
      {"no strength reduction",
       [](decomp::DecompileOptions& o) { o.reduce_strength = false; }},
      {"no size reduction",
       [](decomp::DecompileOptions& o) { o.reduce_operator_sizes = false; }},
      {"no inlining",
       [](decomp::DecompileOptions& o) { o.inline_small_functions = false; }},
      {"no if-conversion",
       [](decomp::DecompileOptions& o) { o.convert_ifs = false; }},
  };

  printf("%-26s %10s %12s %12s %9s\n", "variant", "ok", "hw time(ms)",
         "avg gates", "speedup");
  Totals baseline;
  bool first = true;
  for (const Variant& variant : variants) {
    const Totals totals = Measure(variant);
    if (first) {
      baseline = totals;
      first = false;
    }
    printf("%-26s %7d/18 %12.3f %12.0f %9.2f", variant.name, totals.count,
           totals.hw_time * 1e3, totals.area / totals.count,
           totals.speedup / totals.count);
    if (&variant != &variants.front() && totals.count > 0) {
      const double area_delta =
          (totals.area / totals.count) / (baseline.area / baseline.count);
      printf("   (area x%.2f)", area_delta);
    }
    printf("\n");
  }
  printf("\nReading: disabling a recovery pass should not change results\n"
         "(co-simulation guards that) but costs area and/or hardware time.\n");
  return 0;
}
