// Experiment E4: decompilation-pass ablation.
//
// Paper §2 argues each recovery technique is needed for good synthesis:
// constant propagation kills move-idiom ALUs, stack-op removal avoids
// serializing through the memory port, strength promotion frees the
// synthesis tool to choose the multiplier implementation, loop rerolling
// recovers compact loop bodies, and size reduction shrinks every operator.
// Each variant is a pipeline spec ("default,-reroll-loops", ...) handed to
// Toolchain::WithPipeline — the PassManager disable strings replace the old
// boolean ablation flags — and the suite-average hardware time and area are
// re-measured: the delta is that pass's contribution.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

namespace {

struct Variant {
  const char* name;
  const char* pipeline;  ///< PassManager spec string
};

struct Totals {
  double hw_time = 0.0;
  double area = 0.0;
  double speedup = 0.0;
  int count = 0;
};

Totals Measure(const std::vector<NamedBinary>& binaries,
               const Variant& variant) {
  Totals totals;
  Toolchain toolchain;
  toolchain.WithPipeline(variant.pipeline);
  const BatchResult batch =
      toolchain.RunMany(binaries, {"mips200-xc2v1000"});
  for (const auto& run : batch.runs) {
    if (!run.ok()) continue;
    double hw_time = 0.0;
    for (const auto& kernel : run.value().estimate.kernels) {
      hw_time += kernel.hw_time;
    }
    totals.hw_time += hw_time;
    totals.area += run.value().estimate.area_gates;
    totals.speedup += run.value().estimate.speedup;
    ++totals.count;
  }
  return totals;
}

}  // namespace

int main() {
  printf("=== E4: decompilation optimization ablation (suite at -O3) ===\n\n");
  const std::vector<Variant> variants = {
      {"all passes (baseline)", "default"},
      {"no constant propagation", "default,-simplify-constants"},
      {"no stack-op removal", "default,-remove-stack-ops"},
      {"no loop rerolling", "default,-reroll-loops"},
      {"no strength promotion", "default,-promote-strength"},
      {"no strength reduction", "default,-reduce-strength"},
      {"no size reduction", "default,-reduce-operator-sizes"},
      {"no inlining", "default,-inline-small-functions"},
      {"no if-conversion", "default,-convert-ifs"},
  };

  // -O3 binaries stress rerolling; -O0 would stress stack removal most,
  // but O3 exercises every pass at once.  Built once, reused per variant.
  std::vector<NamedBinary> binaries;
  for (const suite::Benchmark* bench : suite::WorkingBenchmarks()) {
    auto binary = suite::BuildBinary(*bench, 3);
    if (!binary.ok()) continue;
    binaries.push_back(
        {bench->name,
         std::make_shared<const mips::SoftBinary>(std::move(binary).take())});
  }

  bench::JsonWriter json("ablation");
  printf("%-26s %10s %12s %12s %9s\n", "variant", "ok", "hw time(ms)",
         "avg gates", "speedup");
  Totals baseline;
  bool first = true;
  for (const Variant& variant : variants) {
    const Totals totals = Measure(binaries, variant);
    if (first) {
      baseline = totals;
      first = false;
    }
    printf("%-26s %7d/18 %12.3f %12.0f %9.2f", variant.name, totals.count,
           totals.hw_time * 1e3, totals.area / totals.count,
           totals.speedup / totals.count);
    json.Record("hw_time", totals.hw_time * 1e3, "ms", variant.pipeline);
    json.Record("avg_area", totals.area / totals.count, "gates",
                variant.pipeline);
    json.Record("avg_speedup", totals.speedup / totals.count, "x",
                variant.pipeline);
    if (&variant != &variants.front() && totals.count > 0) {
      const double area_delta =
          (totals.area / totals.count) / (baseline.area / baseline.count);
      printf("   (area x%.2f)", area_delta);
    }
    printf("\n");
  }
  printf("\nReading: disabling a recovery pass should not change results\n"
         "(co-simulation guards that) but costs area and/or hardware time.\n");
  return 0;
}
