// Experiment E2: platform clock sweep.
//
//   "Compared to a 400 MHz MIPS, the application speedups were 3.8 and the
//    energy savings were 49%.  For slower platforms with a 40 MHz
//    microprocessor, the application speedup was 12.6 and the energy
//    savings were 84%."  (paper §4)
//
// The same suite is partitioned against the three registered platforms
// (mips40 / mips200-xc2v1000 / mips400) in ONE Toolchain::RunMany batch:
// each benchmark binary is profiled and decompiled once, and the cached
// CDFG is re-partitioned per platform on the thread pool.  Hardware time
// is CPU-frequency independent, so slower processors see larger speedups —
// the trend must fall out of the model, not be pasted in.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

int main() {
  bench::JsonWriter json("platforms");
  printf("=== E2: platform sweep (suite averages at each CPU clock) ===\n\n");
  printf("%10s %12s %12s %14s\n", "cpu (MHz)", "speedup", "energy %",
         "paper (s/e%)");
  const std::vector<std::string> platforms = {"mips40", "mips200-xc2v1000",
                                              "mips400"};
  const double clocks[] = {40.0, 200.0, 400.0};
  const char* paper[] = {"12.6 / 84%", "5.4 / 69%", "3.8 / 49%"};

  std::vector<NamedBinary> binaries;
  for (const suite::Benchmark* bench : suite::WorkingBenchmarks()) {
    auto binary = suite::BuildBinary(*bench, 1);
    if (!binary.ok()) continue;
    binaries.push_back(
        {bench->name,
         std::make_shared<const mips::SoftBinary>(std::move(binary).take())});
  }

  // One batch: |suite| binaries x 3 platforms, one decompilation each.
  Toolchain toolchain;
  const BatchResult batch = toolchain.RunMany(binaries, platforms);

  for (std::size_t p = 0; p < platforms.size(); ++p) {
    double sum_speedup = 0.0;
    double sum_energy = 0.0;
    int count = 0;
    for (std::size_t b = 0; b < binaries.size(); ++b) {
      const auto& run = batch.At(b, p);
      if (!run.ok()) continue;
      sum_speedup += run.value().estimate.speedup;
      sum_energy += run.value().estimate.energy_savings;
      ++count;
    }
    printf("%10.0f %12.1f %12.0f %14s\n", clocks[p], sum_speedup / count,
           sum_energy / count * 100.0, paper[p]);
    json.Record("avg_speedup", sum_speedup / count, "x", platforms[p]);
    json.Record("avg_energy_savings", sum_energy / count * 100.0, "%",
                platforms[p]);
  }
  printf("\n(%zu binaries, %zu runs, %zu decompilations — one per binary)\n",
         binaries.size(), batch.runs.size(), batch.decompilations_run);
  printf("Shape check: speedup and savings must both fall as the CPU "
         "clock rises.\n");
  return 0;
}
