// Experiment E2: platform clock sweep.
//
//   "Compared to a 400 MHz MIPS, the application speedups were 3.8 and the
//    energy savings were 49%.  For slower platforms with a 40 MHz
//    microprocessor, the application speedup was 12.6 and the energy
//    savings were 84%."  (paper §4)
//
// The same suite is partitioned against 40/200/400 MHz CPUs; hardware time
// is CPU-frequency independent, so slower processors see larger speedups —
// the trend must fall out of the model, not be pasted in.
#include <cstdio>

#include "partition/flow.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

using namespace b2h;

int main() {
  printf("=== E2: platform sweep (suite averages at each CPU clock) ===\n\n");
  printf("%10s %12s %12s %14s\n", "cpu (MHz)", "speedup", "energy %",
         "paper (s/e%)");
  const double clocks[] = {40.0, 200.0, 400.0};
  const char* paper[] = {"12.6 / 84%", "5.4 / 69%", "3.8 / 49%"};

  for (int i = 0; i < 3; ++i) {
    double sum_speedup = 0.0;
    double sum_energy = 0.0;
    int count = 0;
    for (const suite::Benchmark* bench : suite::WorkingBenchmarks()) {
      auto binary = suite::BuildBinary(*bench, 1);
      if (!binary.ok()) continue;
      partition::FlowOptions options;
      options.platform = partition::Platform::WithCpuMhz(clocks[i]);
      auto flow = partition::RunFlow(binary.value(), options);
      if (!flow.ok()) continue;
      sum_speedup += flow.value().estimate.speedup;
      sum_energy += flow.value().estimate.energy_savings;
      ++count;
    }
    printf("%10.0f %12.1f %12.0f %14s\n", clocks[i], sum_speedup / count,
           sum_energy / count * 100.0, paper[i]);
  }
  printf("\nShape check: speedup and savings must both fall as the CPU "
         "clock rises.\n");
  return 0;
}
