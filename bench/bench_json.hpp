// Machine-readable benchmark output (JSON Lines).
//
// Every bench_* binary writes one JSON object per measurement to
// BENCH_<name>.json in the working directory, in addition to its
// human-readable stdout, so the perf trajectory across commits can be
// collected by tooling (`cmake --build build --target bench` runs them all).
// Format, one line per record:
//   {"schema":1,"bench":"table1","metric":"avg_speedup","value":5.2,"unit":"x"}
// An optional "label" field qualifies per-item records (benchmark name,
// platform, pipeline variant, ...).  Every record carries the schema
// version (kSchemaVersion) so downstream collectors can detect format
// changes; bump it whenever a field is added, removed, or reinterpreted.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "support/json.hpp"

namespace b2h::bench {

/// Version of the JSON-lines record format.
inline constexpr int kSchemaVersion = 1;

class JsonWriter {
 public:
  explicit JsonWriter(const std::string& bench_name)
      : bench_(bench_name), path_("BENCH_" + bench_name + ".json"),
        out_(path_) {}

  ~JsonWriter() {
    if (records_ > 0) {
      std::printf("[%zu measurement(s) -> %s]\n", records_, path_.c_str());
    }
  }

  void Record(const std::string& metric, double value, const std::string& unit,
              const std::string& label = "") {
    char value_text[64];
    std::snprintf(value_text, sizeof value_text, "%.9g", value);
    out_ << "{\"schema\":" << kSchemaVersion << ",\"bench\":\""
         << Escape(bench_) << "\",\"metric\":\""
         << Escape(metric) << "\",\"value\":" << value_text << ",\"unit\":\""
         << Escape(unit) << "\"";
    if (!label.empty()) out_ << ",\"label\":\"" << Escape(label) << "\"";
    out_ << "}\n";
    ++records_;
  }

 private:
  static std::string Escape(const std::string& text) {
    return support::JsonEscape(text);
  }

  std::string bench_;
  std::string path_;
  std::ofstream out_;
  std::size_t records_ = 0;
};

}  // namespace b2h::bench
