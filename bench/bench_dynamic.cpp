// Experiment E5 (beyond the paper's tables): dynamic partitioning.
//
// Three measurements back the dynamic subsystem's headline claims:
//   1. Detector overhead — the simulator hot path with the backward-branch
//      hook + hot-region cache enabled (but no swaps) versus the plain
//      uninstrumented Run().  Target: <= 10% slowdown.
//   2. Online CAD latency — host wall-clock time from run start to the
//      first kernel swap (incremental decompilation + synthesis), plus the
//      *simulated* swap point as a fraction of the run.
//   3. Dynamic-vs-static gap — speedup of the online partitioner against
//      the static oracle on the same binary, across the suite.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dynamic/hot_region.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/cpu_time.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

int main() {
  bench::JsonWriter json("dynamic");

  // ---- 1. Detector overhead on the simulator hot path. -------------------
  printf("=== E5.1: detector overhead (hooks + hot-region cache, no swaps) "
         "===\n\n");
  printf("%-11s %12s %12s %10s\n", "benchmark", "plain (ms)", "hooked (ms)",
         "overhead");
  double worst_overhead = 0.0;
  double sum_overhead = 0.0;
  int measured = 0;
  for (const char* name : {"crc", "fir", "matmul", "g3fax"}) {
    const suite::Benchmark* bench = suite::FindBenchmark(name);
    if (bench == nullptr) continue;
    auto built = suite::BuildBinary(*bench, 1);
    if (!built.ok()) continue;
    const mips::SoftBinary binary = std::move(built).take();

    // Size reps so each sample simulates a few million instructions.
    mips::Simulator probe(binary);
    const auto probe_run = probe.Run();
    const int reps = std::max<int>(
        1, static_cast<int>(2'000'000 / std::max<std::uint64_t>(
                                            1, probe_run.instructions)));
    // Same interleaved min-of-N harness the detector-overhead test asserts
    // with (support::MeasureOverhead); the bench just records one attempt.
    support::OverheadOptions options;
    options.samples = 5;
    options.attempts = 1;
    const double measured_overhead = support::MeasureOverhead(
        [&] {
          for (int i = 0; i < reps; ++i) {
            mips::Simulator sim(binary);
            (void)sim.Run();
          }
        },
        [&] {
          for (int i = 0; i < reps; ++i) {
            mips::Simulator sim(binary);
            dynamic::DetectionOnlyObserver detector;
            (void)sim.RunInstrumented({}, 100'000'000, &detector);
          }
        },
        options);
    const double overhead =
        options.plain_seconds > 0.0 ? measured_overhead : 0.0;
    worst_overhead = std::max(worst_overhead, overhead);
    sum_overhead += overhead;
    ++measured;
    printf("%-11s %12.3f %12.3f %9.1f%%\n", name, options.plain_seconds * 1e3,
           options.variant_seconds * 1e3, overhead * 100.0);
    json.Record("detector_overhead", overhead * 100.0, "%", name);
  }
  const double avg_overhead = measured > 0 ? sum_overhead / measured : 0.0;
  printf("average overhead: %.1f%% (target <= 10%%), worst-case %.1f%%\n\n",
         avg_overhead * 100.0, worst_overhead * 100.0);
  json.Record("detector_overhead_avg", avg_overhead * 100.0, "%");
  json.Record("detector_overhead_worst", worst_overhead * 100.0, "%");

  // ---- 2 + 3. Online CAD latency and dynamic-vs-static gap. ---------------
  printf("=== E5.2/3: dynamic vs static across the suite (MIPS@200MHz) "
         "===\n\n");
  printf("%-11s %9s %9s %11s %6s %11s %12s\n", "benchmark", "static-x",
         "dynamic-x", "convergence", "swaps", "swap point", "1st kern (ms)");
  std::vector<NamedBinary> binaries;
  for (const suite::Benchmark* bench : suite::WorkingBenchmarks()) {
    auto binary = suite::BuildBinary(*bench, 1);
    if (!binary.ok()) continue;
    binaries.push_back(
        {bench->name,
         std::make_shared<const mips::SoftBinary>(std::move(binary).take())});
  }
  Toolchain toolchain;
  toolchain.WithDynamic(true);
  const BatchResult batch = toolchain.RunMany(binaries, {"mips200-xc2v1000"});

  double sum_convergence = 0.0;
  double sum_first_kernel_ms = 0.0;
  int counted = 0;
  int swapped = 0;
  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    if (!batch.runs[i].ok()) continue;
    const ToolchainRun& run = batch.runs[i].value();
    const dynamic::DynamicRun& dyn = *run.dynamic_run;
    const double convergence = run.estimate.speedup > 0.0
                                   ? dyn.estimate.speedup /
                                         run.estimate.speedup
                                   : 0.0;
    const double swap_point =
        !dyn.swaps.empty() && dyn.run.instructions > 0
            ? static_cast<double>(dyn.swaps.front().at_instruction) /
                  static_cast<double>(dyn.run.instructions)
            : 1.0;
    printf("%-11s %9.2f %9.2f %10.0f%% %6zu %10.0f%% %12.2f\n",
           binaries[i].name.c_str(), run.estimate.speedup,
           dyn.estimate.speedup, convergence * 100.0, dyn.swaps.size(),
           swap_point * 100.0, dyn.time_to_first_kernel_ms);
    json.Record("static_speedup", run.estimate.speedup, "x",
                binaries[i].name);
    json.Record("dynamic_speedup", dyn.estimate.speedup, "x",
                binaries[i].name);
    json.Record("convergence", convergence * 100.0, "%", binaries[i].name);
    if (!dyn.swaps.empty()) {
      json.Record("time_to_first_kernel", dyn.time_to_first_kernel_ms, "ms",
                  binaries[i].name);
      // Simulated-time CAD accounting (DynamicPolicy::cad_cycles_per_ms):
      // when the first kernel is live, measured in simulated CPU cycles.
      json.Record("time_to_first_kernel_sim",
                  static_cast<double>(dyn.time_to_first_kernel_cycles),
                  "cycles", binaries[i].name);
      json.Record("online_cad_sim",
                  static_cast<double>(dyn.cad_simulated_cycles), "cycles",
                  binaries[i].name);
      sum_first_kernel_ms += dyn.time_to_first_kernel_ms;
      ++swapped;
    }
    sum_convergence += convergence;
    ++counted;
  }
  if (counted > 0) {
    printf("\nAVERAGE convergence %.0f%% over %d benchmarks; "
           "avg time-to-first-kernel %.2f ms over %d swaps\n",
           sum_convergence / counted * 100.0, counted,
           swapped > 0 ? sum_first_kernel_ms / swapped : 0.0, swapped);
    json.Record("avg_convergence", sum_convergence / counted * 100.0, "%");
    if (swapped > 0) {
      json.Record("avg_time_to_first_kernel", sum_first_kernel_ms / swapped,
                  "ms");
    }
  }
  printf("\nReading: dynamic trails static (pre-detection iterations run in\n"
         "software and arrays are staged per invocation), but every hot\n"
         "benchmark still swaps a kernel in mid-run and speeds up.\n");
  return 0;
}
