// Experiment E3: compiler optimization level study.
//
//   "we performed the same experiments on binaries generated using four
//    different optimization levels for four of the previous examples.  As
//    expected, software execution times improved as the level of compiler
//    optimizations increased.  In most cases, the execution times of the
//    synthesized examples also improved with more compiler optimizations.
//    ... Speedup was significant for all levels of compiler optimizations,
//    although the speedup did not always increase with more compiler
//    optimizations."  (paper §4)
//
// Four benchmarks x {O0..O3}: software time, partitioned time, speedup, and
// energy savings per level, plus the trend checks the paper argues from.
// Each -O level is a distinct binary, so the batch is 16 binaries x 1
// platform through Toolchain::RunMany.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

int main() {
  bench::JsonWriter json("optlevels");
  printf("=== E3: four benchmarks at gcc -O0..-O3 (MIPS@200MHz) ===\n\n");
  const char* names[] = {"fir", "brev", "autcor00", "adpcm_dec"};

  // One named binary per (benchmark, level); RunMany fans them out.
  std::vector<NamedBinary> binaries;
  for (const char* name : names) {
    const suite::Benchmark* bench = suite::FindBenchmark(name);
    if (bench == nullptr) continue;
    for (int level = 0; level <= 3; ++level) {
      auto binary = suite::BuildBinary(*bench, level);
      if (!binary.ok()) continue;
      binaries.push_back(
          {std::string(name) + "@O" + std::to_string(level),
           std::make_shared<const mips::SoftBinary>(std::move(binary).take())});
    }
  }

  Toolchain toolchain;
  const BatchResult batch =
      toolchain.RunMany(binaries, {"mips200-xc2v1000"});

  // Runs come back in submission order: look each one up by its name.
  auto find_run = [&](const std::string& wanted) -> const Result<ToolchainRun>* {
    for (std::size_t i = 0; i < binaries.size(); ++i) {
      if (binaries[i].name == wanted) return &batch.runs[i];
    }
    return nullptr;
  };

  for (const char* name : names) {
    const suite::Benchmark* bench = suite::FindBenchmark(name);
    if (bench == nullptr) continue;
    printf("%s (%s):\n", bench->name.c_str(), bench->description.c_str());
    printf("  %-4s %10s %10s %9s %9s %9s %8s\n", "opt", "sw (ms)", "hw (ms)",
           "speedup", "energy%", "rerolled", "stackops");
    double sw_prev = 0.0;
    for (int level = 0; level <= 3; ++level) {
      const auto* found =
          find_run(std::string(name) + "@O" + std::to_string(level));
      if (found == nullptr) continue;
      const auto& run = *found;
      if (!run.ok()) {
        printf("  -O%d  flow failed: %s\n", level,
               run.status().message().c_str());
        continue;
      }
      const auto& est = run.value().estimate;
      const auto& stats = run.value().program->stats;
      json.Record("speedup", est.speedup, "x",
                  std::string(name) + "@O" + std::to_string(level));
      printf("  -O%d  %10.3f %10.3f %9.1f %9.0f %9zu %8zu%s\n", level,
             est.sw_time * 1e3, est.partitioned_time * 1e3, est.speedup,
             est.energy_savings * 100.0, stats.loops_rerolled,
             stats.stack_ops_removed,
             level > 0 && est.sw_time > sw_prev ? "  (!)" : "");
      sw_prev = est.sw_time;
    }
    printf("\n");
  }
  printf("Expected shapes (paper): sw time falls with -O level; speedup is\n"
         "significant at every level but not monotonic; energy savings stay\n"
         "similar across levels.\n");
  return 0;
}
