// Observability overhead budget (BENCH_obs.json).
//
// The obs layer's cost contract: with tracing DISABLED every span site is
// one relaxed atomic load, and with tracing ENABLED the coarse-grained
// spans (one per simulator run / scheduler job, not per instruction) stay
// under a 2% budget on the hot paths that carry them.  This bench measures
// exactly that — enabled-vs-disabled CPU-time overhead on:
//
//   1. the simulator hot path (repeated Simulator::Run, the span the
//      profiling stage and explore sweeps ride on), and
//   2. the serve scheduler hot path (a serial storm of unique-key
//      Scheduler::Run jobs: admission, execute span, queue gauges,
//      completion).
//
// plus informational per-operation costs of the raw instruments (disabled
// span, enabled span, counter add).
//
// Measurement discipline: support::MeasureOverhead — interleaved CPU-time
// samples, identical to the detector-overhead harness, with the tracer
// toggled per closure via Disable()/Resume() so both variants share one
// pre-sized ring.  The single-threaded simulator section uses the min-of-N
// estimator; the scheduler sections use the median pair ratio because
// worker-thread futex costs swing process-CPU samples both ways.
//
// In Release builds the bench self-gates: worst overhead <= 2% or non-zero
// exit (override/disable with B2H_OBS_OVERHEAD_GATE, e.g. "5" or "0").
// ci/perf_trajectory.py additionally asserts the recorded obs_overhead_ok
// flag, so the budget also fails the CI bench job when violated.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "bench_json.hpp"
#include "mips/simulator.hpp"
#include "obs/obs.hpp"
#include "serve/scheduler.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/cpu_time.hpp"

namespace {

using namespace b2h;

/// Keeps the scheduler-section job body from being optimized away.
volatile std::uint64_t g_spin_sink = 0;

/// The job both scheduler sections execute: ~25 us of deterministic integer
/// mixing.  A no-op body would gate the ~150 ns execute-span cost against a
/// denominator no real request has — warm hits are answered from the
/// coalescing cache BEFORE the execute span fires, so the cheapest job the
/// daemon ever executes (a cache miss) costs milliseconds.  25 us is still
/// two orders of magnitude below that floor.
serve::JobResult SpinJob() {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 15'000; ++i) {
    x = (x ^ (x >> 33)) * 0xff51afd7ed558ccdull;
  }
  g_spin_sink = x;
  return serve::JobResult{true, "", "", "r"};
}

/// Gate threshold in percent; 0 disables (informational run).
double GatePct() {
  if (const char* env = std::getenv("B2H_OBS_OVERHEAD_GATE")) {
    return std::atof(env);
  }
#ifdef B2H_BUILD_TYPE
  if (std::string_view(B2H_BUILD_TYPE) == "Release") return 2.0;
#endif
  return 0.0;
}

/// Enabled-vs-disabled overhead of `work` under the shared harness.  The
/// tracer ring must already be sized (Enable called once) — the closures
/// only flip the recording flag, never reallocate.
template <typename Work>
double TracingOverhead(Work&& work, support::OverheadOptions& options) {
  obs::Tracer& tracer = obs::Tracer::Global();
  double best = 1e9;
  // The gate (2%) sits well inside same-host measurement noise, so lean
  // harder on minima than the default detector-bound knobs, at two levels:
  //
  //   * inner: more interleaved samples per attempt and more
  //     keep-the-minimum attempts (minima only tighten — noise can only
  //     inflate a CPU-time sample);
  //   * outer: when a whole measurement still lands above the budget,
  //     re-Enable() the tracer — a FRESH ring allocation re-rolls the heap
  //     placement, which is the one per-process effect (cache-set aliasing
  //     against the workload's data) that min-of-N cannot average away —
  //     and remeasure.
  //
  // early_exit_below ends both loops as soon as an attempt lands inside
  // the budget, so passing runs stay cheap.
  for (int roll = 0; roll < 3 && best > options.early_exit_below; ++roll) {
    tracer.Enable(1 << 15);
    // One enabled warmup outside the measurement: first-touch costs (ring
    // pages, thread ordinals) must not land in a measured sample.
    work();
    support::OverheadOptions attempt = options;
    attempt.samples = 12;
    attempt.attempts = 8;
    const double measured = support::MeasureOverhead(
        [&] {
          tracer.Disable();
          work();
        },
        [&] {
          tracer.Resume();
          work();
        },
        attempt);
    if (measured < best) {
      best = measured;
      options.plain_seconds = attempt.plain_seconds;
      options.variant_seconds = attempt.variant_seconds;
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::JsonWriter json("obs");
  const double gate_pct = GatePct();
  obs::Tracer::Global().Enable(1 << 15);  // sized for the per-op section;
                                          // TracingOverhead re-rolls its own

  std::printf("Observability overhead: tracing enabled vs disabled\n");
  std::printf("%-22s %12s %12s %10s\n", "hot path", "off (ms)", "on (ms)",
              "overhead");
  double worst = 0.0;

  // ---- 1. Simulator hot path ----------------------------------------------
  double sim_overhead = 0.0;
  {
    const suite::Benchmark* bench = suite::FindBenchmark("crc");
    auto built = suite::BuildBinary(*bench, 1);
    if (!built.ok()) {
      std::fprintf(stderr, "bench_obs: cannot build crc: %s\n",
                   built.status().message().c_str());
      return 1;
    }
    const mips::SoftBinary binary = std::move(built).take();
    mips::Simulator sim(binary);
    const auto probe = sim.Run();
    const int reps = std::max<int>(
        1, static_cast<int>(4'000'000 / std::max<std::uint64_t>(
                                            1, probe.instructions)));
    support::OverheadOptions options;
    options.early_exit_below = gate_pct / 100.0;
    sim_overhead = TracingOverhead(
        [&] {
          for (int r = 0; r < reps; ++r) (void)sim.Run();
        },
        options);
    std::printf("%-22s %12.3f %12.3f %9.2f%%\n", "simulator (crc)",
                options.plain_seconds * 1e3, options.variant_seconds * 1e3,
                sim_overhead * 100.0);
    json.Record("obs_sim_overhead", sim_overhead * 100.0, "%");
    worst = std::max(worst, sim_overhead);
  }

  // ---- 2. Serve scheduler hot path ----------------------------------------
  double serve_overhead = 0.0;
  {
    serve::Scheduler scheduler(serve::Scheduler::Options{2, 4096});
    std::size_t next_key = 0;  // unique keys: every job admits + executes
    // 512 jobs x ~25 us ~= 13 ms per sample: the 2% budget is smaller than
    // the sample-to-sample noise of a 3 ms run on a shared host.
    constexpr int kJobs = 512;
    support::OverheadOptions options;
    options.early_exit_below = gate_pct / 100.0;
    // The pool's worker threads land futex wake/park costs in the process
    // CPU time being measured, swinging samples BOTH ways — min-of-N never
    // converges there; the median pair ratio does.
    options.median = true;
    serve_overhead = TracingOverhead(
        [&] {
          for (int j = 0; j < kJobs; ++j) {
            const std::string key = "bench-obs-" + std::to_string(next_key++);
            (void)scheduler.Run(key, [] { return SpinJob(); }, -1);
          }
        },
        options);
    std::printf("%-22s %12.3f %12.3f %9.2f%%\n", "serve scheduler",
                options.plain_seconds * 1e3, options.variant_seconds * 1e3,
                serve_overhead * 100.0);
    json.Record("obs_serve_overhead", serve_overhead * 100.0, "%");
    worst = std::max(worst, serve_overhead);
  }

  // ---- 2b. Flight recorder on the scheduler hot path ----------------------
  // The always-on forensics ring must fit the same budget: baseline is
  // everything off, variant is FLIGHT-ONLY recording (the daemon's default
  // state — main tracing off, black box on).
  double flight_overhead = 0.0;
  {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Disable();
    serve::Scheduler scheduler(serve::Scheduler::Options{2, 4096});
    std::size_t next_key = 0;
    // 512 jobs x ~25 us ~= 13 ms per sample (see section 2 for why).
    constexpr int kJobs = 512;
    const auto work = [&] {
      for (int j = 0; j < kJobs; ++j) {
        const std::string key = "bench-flight-" + std::to_string(next_key++);
        (void)scheduler.Run(key, [] { return SpinJob(); }, -1);
      }
    };
    support::OverheadOptions options;
    options.early_exit_below = gate_pct / 100.0;
    options.samples = 12;
    options.attempts = 8;
    options.median = true;  // multi-threaded workload — see section 2
    // Same outer discipline as TracingOverhead: when a whole measurement
    // stays above budget, EnableFlight() re-rolls the ring's heap placement
    // (cache-set aliasing is the one effect min-of-N cannot average away)
    // and we remeasure; early_exit_below keeps passing runs cheap.
    flight_overhead = 1e9;
    for (int roll = 0;
         roll < 3 && flight_overhead > options.early_exit_below; ++roll) {
      tracer.EnableFlight(1 << 12);
      work();  // first-touch warmup outside measurement
      support::OverheadOptions attempt = options;
      const double measured = support::MeasureOverhead(
          [&] {
            tracer.DisableFlight();
            work();
          },
          [&] {
            tracer.ResumeFlight();
            work();
          },
          attempt);
      if (measured < flight_overhead) {
        flight_overhead = measured;
        options.plain_seconds = attempt.plain_seconds;
        options.variant_seconds = attempt.variant_seconds;
      }
    }
    tracer.DisableFlight();
    std::printf("%-22s %12.3f %12.3f %9.2f%%\n", "flight recorder",
                options.plain_seconds * 1e3, options.variant_seconds * 1e3,
                flight_overhead * 100.0);
    json.Record("obs_flight_overhead", flight_overhead * 100.0, "%");
    worst = std::max(worst, flight_overhead);
  }

  // ---- 3. Raw instrument costs (informational) ----------------------------
  {
    constexpr int kOps = 200'000;
    obs::Tracer::Global().Disable();
    const double disabled_span =
        support::CpuSecondsOf([&] {
          for (int i = 0; i < kOps; ++i) {
            obs::ScopedSpan span("bench.op", "bench");
          }
        }) *
        1e9 / kOps;
    obs::Tracer::Global().Resume();
    const double enabled_span =
        support::CpuSecondsOf([&] {
          for (int i = 0; i < kOps; ++i) {
            obs::ScopedSpan span("bench.op", "bench");
          }
        }) *
        1e9 / kOps;
    obs::Tracer::Global().Disable();
    obs::Counter& counter = obs::Registry::Global().counter("bench.obs_ops");
    const double counter_add =
        support::CpuSecondsOf([&] {
          for (int i = 0; i < kOps; ++i) counter.Add();
        }) *
        1e9 / kOps;
    std::printf(
        "per-op: disabled span %.1f ns, enabled span %.1f ns, "
        "counter add %.1f ns\n",
        disabled_span, enabled_span, counter_add);
    json.Record("obs_span_disabled_ns", disabled_span, "ns");
    json.Record("obs_span_enabled_ns", enabled_span, "ns");
    json.Record("obs_counter_add_ns", counter_add, "ns");
  }

  // ---- gate ----------------------------------------------------------------
  const bool ok = gate_pct <= 0.0 || worst * 100.0 <= gate_pct;
  json.Record("obs_overhead_ok", ok ? 1.0 : 0.0, "bool");
  if (gate_pct > 0.0) {
    std::printf("overhead gate: worst %.2f%% %s %.2f%% budget %s\n",
                worst * 100.0, ok ? "<=" : ">", gate_pct,
                ok ? "OK" : "FAIL");
  } else {
    std::printf("overhead gate disabled (worst %.2f%%, informational)\n",
                worst * 100.0);
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds the %.2f%% "
                 "budget (B2H_OBS_OVERHEAD_GATE overrides)\n",
                 worst * 100.0, gate_pct);
    return 1;
  }
  return 0;
}
