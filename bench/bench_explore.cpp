// Experiment E6 (beyond the paper's tables): design-space exploration.
//
// Three measurements back the exploration engine's claims:
//   1. Greedy-vs-optimal gap — how much speedup the paper's "deliberately
//      simple and fast" heuristic leaves on the table against the exact
//      knapsack selection, per benchmark on the default platform.  The
//      bench FAILS (non-zero exit) if optimal ever falls below greedy:
//      that would be a search regression, caught here and in CI.
//   2. Artifact-cache effectiveness — hit rate and work counters of a warm
//      repeat of the full sweep (expected: zero decompilations).
//   3. Sweep scalability — wall time of the full {18 benchmarks} x
//      {3 platforms} x {3 strategies} sweep, serial vs. thread pool.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

int main() {
  // Hermetic measurement: Toolchain's default constructor reads
  // B2H_CACHE_DIR, so an exported cache dir would make the "cold" sweeps
  // below disk-warm (and deposit bench artifacts into the user's cache).
  unsetenv("B2H_CACHE_DIR");
  bench::JsonWriter json("explore");

  std::vector<NamedBinary> binaries;
  for (const suite::Benchmark* bench : suite::WorkingBenchmarks()) {
    auto binary = suite::BuildBinary(*bench, 1);
    if (!binary.ok()) continue;
    binaries.push_back(
        {bench->name,
         std::make_shared<const mips::SoftBinary>(std::move(binary).take())});
  }

  explore::ExploreSpec spec;
  spec.binaries = binaries;
  spec.platforms = {"mips40", "mips200-xc2v1000", "mips400"};
  spec.strategies = {"paper-greedy", "knapsack-optimal", "annealing"};
  spec.objectives = {partition::Objective::kSpeedup};

  // ---- 3. Sweep wall time, serial vs. parallel (both cache-cold). --------
  Toolchain serial;
  serial.WithThreads(1);
  const explore::ExploreResult serial_sweep = serial.Explore(spec);
  Toolchain parallel;  // threads = hardware concurrency
  const explore::ExploreResult cold = parallel.Explore(spec);
  printf("=== E6: design-space exploration (%zu benchmarks x %zu platforms "
         "x %zu strategies) ===\n\n",
         spec.binaries.size(), spec.platforms.size(), spec.strategies.size());
  printf("sweep wall time: serial %.1f ms, parallel %.1f ms (%.1fx)\n\n",
         serial_sweep.wall_ms, cold.wall_ms,
         cold.wall_ms > 0.0 ? serial_sweep.wall_ms / cold.wall_ms : 0.0);
  json.Record("sweep_wall_serial", serial_sweep.wall_ms, "ms");
  json.Record("sweep_wall_parallel", cold.wall_ms, "ms");

  // ---- 1. Greedy-vs-optimal gap per benchmark (default platform). --------
  printf("%-11s %9s %9s %9s %8s\n", "benchmark", "greedy-x", "optimal-x",
         "anneal-x", "gap");
  bool regression = false;
  double sum_gap = 0.0;
  int counted = 0;
  const std::size_t default_platform = 1;  // mips200-xc2v1000
  for (std::size_t b = 0; b < spec.binaries.size(); ++b) {
    const auto& greedy = cold.At(b, default_platform, 0, 0);
    const auto& optimal = cold.At(b, default_platform, 1, 0);
    const auto& annealed = cold.At(b, default_platform, 2, 0);
    if (!greedy.status.ok() || !optimal.status.ok()) continue;
    const double gap =
        greedy.speedup > 0.0 ? optimal.speedup / greedy.speedup - 1.0 : 0.0;
    if (optimal.speedup < greedy.speedup - 1e-9) regression = true;
    printf("%-11s %9.2f %9.2f %9.2f %7.1f%%\n", spec.binaries[b].name.c_str(),
           greedy.speedup, optimal.speedup,
           annealed.status.ok() ? annealed.speedup : 0.0, gap * 100.0);
    json.Record("greedy_speedup", greedy.speedup, "x", spec.binaries[b].name);
    json.Record("optimal_speedup", optimal.speedup, "x",
                spec.binaries[b].name);
    json.Record("greedy_vs_optimal_gap", gap * 100.0, "%",
                spec.binaries[b].name);
    sum_gap += gap;
    ++counted;
  }
  const double avg_gap = counted > 0 ? sum_gap / counted : 0.0;
  printf("\naverage greedy-vs-optimal gap: %.1f%% over %d benchmarks\n\n",
         avg_gap * 100.0, counted);
  json.Record("avg_greedy_vs_optimal_gap", avg_gap * 100.0, "%");

  // ---- 2. Cache effectiveness: warm repeat of the identical sweep. -------
  const explore::ExploreResult warm = parallel.Explore(spec);
  const std::size_t probes = warm.cache_hits + warm.cache_misses;
  const double hit_rate =
      probes > 0 ? static_cast<double>(warm.cache_hits) /
                       static_cast<double>(probes)
                 : 0.0;
  printf("cache-warm repeat: %zu simulations, %zu decompilations, "
         "%zu partitions, hit rate %.0f%%\n",
         warm.simulations_run, warm.decompilations_run, warm.partitions_run,
         hit_rate * 100.0);
  printf("%s", warm.StatsReport().c_str());
  json.Record("warm_decompilations", (double)warm.decompilations_run, "runs");
  json.Record("warm_partitions", (double)warm.partitions_run, "runs");
  json.Record("cache_hit_rate", hit_rate * 100.0, "%");
  json.Record("sweep_wall_warm", warm.wall_ms, "ms");

  // ---- 2b. Disk tier: warm repeat from a FRESH toolchain. ----------------
  // A fresh Toolchain has a fresh memory tier, so every artifact must come
  // off disk — the in-process stand-in for a process restart (the CI
  // cache-warm step checks the real cross-process case).
  // The cache is attached explicitly (not via WithCacheDir) so an exported
  // B2H_CACHE_DIR cannot redirect the measurement into — or the Clear()
  // into — the user's persistent cache.
  const std::string cache_dir = "b2h-bench-cache";
  explore::DiskStore(explore::DiskStore::Options{cache_dir, 0}).Clear();
  Toolchain disk_cold;
  disk_cold.WithArtifactCache(std::make_shared<explore::ArtifactCache>(
      explore::DiskStore::Options{cache_dir, 0}));
  const explore::ExploreResult disk_cold_sweep = disk_cold.Explore(spec);
  Toolchain disk_warm;
  disk_warm.WithArtifactCache(std::make_shared<explore::ArtifactCache>(
      explore::DiskStore::Options{cache_dir, 0}));
  const explore::ExploreResult disk_warm_sweep = disk_warm.Explore(spec);
  const bool disk_identical =
      disk_cold_sweep.Report() == disk_warm_sweep.Report();
  printf("disk-warm repeat (fresh toolchain): %zu simulations, "
         "%zu decompilations, %zu partitions, %zu disk hits, "
         "report %s\n",
         disk_warm_sweep.simulations_run, disk_warm_sweep.decompilations_run,
         disk_warm_sweep.partitions_run, disk_warm_sweep.cache_disk_hits,
         disk_identical ? "bit-identical" : "DIVERGED");
  json.Record("disk_warm_decompilations",
              (double)disk_warm_sweep.decompilations_run, "runs");
  json.Record("disk_warm_partitions", (double)disk_warm_sweep.partitions_run,
              "runs");
  json.Record("disk_warm_report_identical", disk_identical ? 1.0 : 0.0,
              "bool");
  json.Record("sweep_wall_disk_warm", disk_warm_sweep.wall_ms, "ms");
  explore::DiskStore(explore::DiskStore::Options{cache_dir, 0}).Clear();

  if (regression) {
    printf("\nREGRESSION: knapsack-optimal fell below paper-greedy on at "
           "least one benchmark\n");
    return 1;
  }
  if (warm.decompilations_run != 0) {
    printf("\nREGRESSION: cache-warm sweep re-ran %zu decompilation(s)\n",
           warm.decompilations_run);
    return 1;
  }
  if (disk_warm_sweep.simulations_run != 0 ||
      disk_warm_sweep.decompilations_run != 0 ||
      disk_warm_sweep.partitions_run != 0 || !disk_identical) {
    printf("\nREGRESSION: disk-warm sweep was not free and identical "
           "(%zu sims, %zu decompiles, %zu partitions, report %s)\n",
           disk_warm_sweep.simulations_run,
           disk_warm_sweep.decompilations_run,
           disk_warm_sweep.partitions_run,
           disk_identical ? "identical" : "diverged");
    return 1;
  }
  printf("\nReading: the exact selection confirms how little the paper's\n"
         "heuristic leaves on the table on this suite, and the artifact\n"
         "cache makes repeated sweeps free.\n");
  return 0;
}
