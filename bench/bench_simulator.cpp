// Simulator throughput bench: instructions/second of the trace-compiled
// engine — computed-goto threaded dispatch (default) and forced switch
// dispatch — versus the retained per-instruction reference interpreter, per
// suite benchmark and suite-aggregated.
//
// Writes BENCH_simulator.json (see bench_json.hpp):
//   instr_per_sec               threaded engine, plain Run        [per bench + suite_avg]
//   instr_per_sec_instrumented  threaded engine + detection observer
//   switch_instr_per_sec        switch-dispatch engine, plain Run
//   ref_instr_per_sec           reference engine, plain Run
//   block_speedup               threaded vs reference
//   switch_speedup              switch-dispatch vs reference
//   trace_len_mean              mean multi-exit trace length (static)
//   trace_len_single_exit_mean  mean length if traces still ended at the
//                               first conditional branch (the pre-multi-exit
//                               engine's block shape, for the E9 comparison)
//   blockcache_*                shared pre-decode cache counters for a warm
//                               RunMany-shaped sweep over the whole suite
//
// block_speedup is a ratio of two measurements taken on the same host
// seconds apart, so unlike the raw rates it is comparable across CI
// runners; the perf-trajectory gate (ci/perf_trajectory.py) tracks it with
// a direction rule and enforces the release floor below.
//
// Measurement discipline: one warm Simulator per engine, repeated Run()s
// sized to a few million instructions per sample, best-of-N rates (noise
// only ever slows a sample down), CPU time not wall time.
//
// In Release builds the bench itself enforces the tentpole floor: suite
// average block_speedup >= 4x (override/disable with B2H_SIM_SPEEDUP_GATE,
// e.g. "2.5" or "0" to disable) — a throughput regression fails the bench
// run, not just the trajectory diff.  The warm-sweep self-gate is
// unconditional: a warm suite sweep performing any pre-decode at all means
// the shared cache broke, which no build type makes acceptable.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "dynamic/hot_region.hpp"
#include "mips/shared_cache.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/cpu_time.hpp"

namespace {

using namespace b2h;

constexpr int kSamples = 5;
constexpr std::uint64_t kTargetInstrsPerSample = 2'000'000;

struct Rates {
  double plain = 0.0;         ///< instr/sec, Run()
  double instrumented = 0.0;  ///< instr/sec, RunInstrumented + detector
};

/// Best-of-N instructions/second for repeated runs of `sim`.
template <typename RunOnce>
double BestRate(int reps, RunOnce&& run_once) {
  double best = 0.0;
  for (int s = 0; s < kSamples; ++s) {
    std::uint64_t executed = 0;
    const double seconds = support::CpuSecondsOf([&] {
      for (int r = 0; r < reps; ++r) executed += run_once();
    });
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(executed) / seconds);
    }
  }
  return best;
}

Rates MeasureEngine(const mips::SoftBinary& binary, mips::ExecEngine engine,
                    int reps, bool measure_instrumented) {
  Rates rates;
  mips::Simulator sim(binary, {}, engine);
  rates.plain = BestRate(reps, [&] { return sim.Run().instructions; });
  if (measure_instrumented) {
    rates.instrumented = BestRate(reps, [&] {
      dynamic::DetectionOnlyObserver detector;
      return sim.RunInstrumented({}, 100'000'000, &detector).instructions;
    });
  }
  return rates;
}

struct TraceStats {
  double mean_len = 0.0;          ///< mean multi-exit trace length
  double single_exit_mean = 0.0;  ///< mean length truncated at first branch
};

/// Static trace-length statistics over every decodable entry: what the
/// multi-exit traces look like, and what the same text's blocks looked like
/// under the old first-branch-terminates rule (each trace truncated at its
/// first side exit) — the before/after pair the E9 study plots.
TraceStats MeasureTraces(const mips::BlockCache& cache) {
  TraceStats stats;
  const mips::BlockSpan* spans = cache.spans();
  const mips::SideExit* exits = cache.exits();
  std::uint64_t count = 0;
  std::uint64_t total_len = 0;
  std::uint64_t total_single = 0;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    const mips::BlockSpan& span = spans[i];
    if (span.len == 0) continue;
    ++count;
    total_len += span.len;
    total_single += span.exit_count > 0
                        ? exits[span.exit_begin].offset + 1
                        : span.len;
  }
  if (count > 0) {
    stats.mean_len = static_cast<double>(total_len) / count;
    stats.single_exit_mean = static_cast<double>(total_single) / count;
  }
  return stats;
}

double SpeedupGate() {
  if (const char* env = std::getenv("B2H_SIM_SPEEDUP_GATE")) {
    return std::atof(env);  // "0" disables
  }
#ifdef B2H_BUILD_TYPE
  if (std::string_view(B2H_BUILD_TYPE) == "Release") return 4.0;
#endif
  return 0.0;  // informational outside Release unless explicitly requested
}

}  // namespace

int main() {
  bench::JsonWriter json("simulator");

  std::printf("Simulator throughput: trace-compiled engines vs reference\n");
  std::printf("%-12s %12s %12s %12s %12s %9s %9s\n", "benchmark",
              "threaded i/s", "instrum i/s", "switch i/s", "ref i/s",
              "speedup", "sw-spdup");

  // Suite aggregation: harmonic weighting by each benchmark's per-run
  // instruction count, i.e. total instructions / total time — the rate a
  // profiling pass over the whole suite actually experiences.
  double total_weight = 0.0;
  double block_time = 0.0;
  double instrumented_time = 0.0;
  double switch_time = 0.0;
  double reference_time = 0.0;

  // Binaries that produced a measurement, kept for the warm-sweep pass.
  std::vector<std::pair<std::string, mips::SoftBinary>> measured;

  for (const suite::Benchmark& bench : suite::AllBenchmarks()) {
    auto built = suite::BuildBinary(bench, 1);
    if (!built.ok()) {
      std::printf("%-12s skipped (%s)\n", bench.name.c_str(),
                  built.status().message().c_str());
      continue;
    }
    const mips::SoftBinary binary = std::move(built).take();
    mips::Simulator probe(binary);
    const auto probe_run = probe.Run();
    if (probe_run.reason != mips::HaltReason::kReturned ||
        probe_run.instructions == 0) {
      std::printf("%-12s skipped (did not return)\n", bench.name.c_str());
      continue;
    }
    const int reps = std::max<int>(
        1, static_cast<int>(kTargetInstrsPerSample / probe_run.instructions));

    const Rates block =
        MeasureEngine(binary, mips::ExecEngine::kBlock, reps, true);
    const Rates swdisp =
        MeasureEngine(binary, mips::ExecEngine::kBlockSwitch, reps, false);
    const Rates reference =
        MeasureEngine(binary, mips::ExecEngine::kReference, reps, false);
    if (block.plain <= 0.0 || block.instrumented <= 0.0 ||
        swdisp.plain <= 0.0 || reference.plain <= 0.0) {
      std::printf("%-12s skipped (clock quantum too coarse)\n",
                  bench.name.c_str());
      continue;
    }
    const double speedup = block.plain / reference.plain;
    const double switch_speedup = swdisp.plain / reference.plain;
    const TraceStats traces = MeasureTraces(probe.blocks());

    json.Record("instr_per_sec", block.plain, "instr/s", bench.name);
    json.Record("instr_per_sec_instrumented", block.instrumented, "instr/s",
                bench.name);
    json.Record("switch_instr_per_sec", swdisp.plain, "instr/s", bench.name);
    json.Record("ref_instr_per_sec", reference.plain, "instr/s", bench.name);
    json.Record("block_speedup", speedup, "x", bench.name);
    json.Record("switch_speedup", switch_speedup, "x", bench.name);
    json.Record("trace_len_mean", traces.mean_len, "instr", bench.name);
    json.Record("trace_len_single_exit_mean", traces.single_exit_mean,
                "instr", bench.name);
    std::printf("%-12s %12.3g %12.3g %12.3g %12.3g %8.2fx %8.2fx\n",
                bench.name.c_str(), block.plain, block.instrumented,
                swdisp.plain, reference.plain, speedup, switch_speedup);

    const auto weight = static_cast<double>(probe_run.instructions);
    total_weight += weight;
    block_time += weight / block.plain;
    instrumented_time += weight / block.instrumented;
    switch_time += weight / swdisp.plain;
    reference_time += weight / reference.plain;
    measured.emplace_back(bench.name, binary);
  }

  if (total_weight <= 0.0 || block_time <= 0.0) {
    std::fprintf(stderr, "bench_simulator: no benchmark produced a rate\n");
    return 1;
  }

  const double avg_block = total_weight / block_time;
  const double avg_instrumented = total_weight / instrumented_time;
  const double avg_switch = total_weight / switch_time;
  const double avg_reference = total_weight / reference_time;
  const double avg_speedup = reference_time / block_time;
  const double avg_switch_speedup = reference_time / switch_time;
  json.Record("instr_per_sec", avg_block, "instr/s", "suite_avg");
  json.Record("instr_per_sec_instrumented", avg_instrumented, "instr/s",
              "suite_avg");
  json.Record("switch_instr_per_sec", avg_switch, "instr/s", "suite_avg");
  json.Record("ref_instr_per_sec", avg_reference, "instr/s", "suite_avg");
  json.Record("block_speedup", avg_speedup, "x", "suite_avg");
  json.Record("switch_speedup", avg_switch_speedup, "x", "suite_avg");
  std::printf("%-12s %12.3g %12.3g %12.3g %12.3g %8.2fx %8.2fx\n",
              "suite_avg", avg_block, avg_instrumented, avg_switch,
              avg_reference, avg_speedup, avg_switch_speedup);

  // Warm RunMany-shaped sweep: every measured binary's pre-decode is
  // resident by now, so constructing and running a fresh Simulator per
  // benchmark must hit the shared cache every time and never re-decode.
  const mips::SharedBlockCache::Stats warm_before =
      mips::SharedBlockCache::Global().stats();
  for (const auto& [name, binary] : measured) {
    mips::Simulator sim(binary);
    const auto run = sim.Run();
    if (run.reason != mips::HaltReason::kReturned) {
      std::fprintf(stderr, "bench_simulator: warm sweep run of %s failed\n",
                   name.c_str());
      return 1;
    }
  }
  const mips::SharedBlockCache::Stats warm_after =
      mips::SharedBlockCache::Global().stats();
  const auto warm_predecodes =
      static_cast<double>(warm_after.misses - warm_before.misses);
  const auto warm_hits =
      static_cast<double>(warm_after.hits - warm_before.hits);
  json.Record("blockcache_warm_predecodes", warm_predecodes, "count",
              "suite");
  json.Record("blockcache_warm_hits", warm_hits, "count", "suite");
  json.Record("blockcache_hits", static_cast<double>(warm_after.hits),
              "count", "suite");
  json.Record("blockcache_misses", static_cast<double>(warm_after.misses),
              "count", "suite");
  json.Record("blockcache_bytes", static_cast<double>(warm_after.bytes),
              "byte", "suite");
  const double lookups =
      static_cast<double>(warm_after.hits + warm_after.misses);
  json.Record("blockcache_hit_rate",
              lookups > 0.0 ? static_cast<double>(warm_after.hits) / lookups
                            : 0.0,
              "ratio", "suite");
  std::printf(
      "shared cache: warm sweep %zu binaries, %d pre-decodes, %d hits "
      "(process totals: %llu hits / %llu misses, %llu bytes resident)\n",
      measured.size(), static_cast<int>(warm_predecodes),
      static_cast<int>(warm_hits),
      static_cast<unsigned long long>(warm_after.hits),
      static_cast<unsigned long long>(warm_after.misses),
      static_cast<unsigned long long>(warm_after.bytes));
  if (warm_predecodes != 0.0) {
    std::fprintf(stderr,
                 "FAIL: warm suite sweep performed %d pre-decodes; the "
                 "shared block cache must make warm construction free\n",
                 static_cast<int>(warm_predecodes));
    return 1;
  }

  const double gate = SpeedupGate();
  if (gate > 0.0 && avg_speedup < gate) {
    std::fprintf(stderr,
                 "FAIL: suite-average block-engine speedup %.2fx is below "
                 "the %.2fx floor (B2H_SIM_SPEEDUP_GATE overrides)\n",
                 avg_speedup, gate);
    return 1;
  }
  if (gate > 0.0) {
    std::printf("throughput gate: %.2fx >= %.2fx floor OK\n", avg_speedup,
                gate);
  }
  return 0;
}
