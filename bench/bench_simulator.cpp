// Simulator throughput bench: instructions/second of the tiered engine
// (hot traces translated to fused host ops with inline-cache chaining),
// the trace-compiled engine — computed-goto threaded dispatch and forced
// switch dispatch — and the retained per-instruction reference
// interpreter, per suite benchmark and suite-aggregated.
//
// Writes BENCH_simulator.json (see bench_json.hpp):
//   instr_per_sec               threaded engine, plain Run        [per bench + suite_avg]
//   instr_per_sec_instrumented  threaded engine + detection observer
//   switch_instr_per_sec        switch-dispatch engine, plain Run
//   translated_instr_per_sec    tiered engine (kTranslated), measured warm
//   ref_instr_per_sec           reference engine, plain Run
//   translated_speedup          tiered vs reference — the primary gate
//   block_speedup               threaded vs reference — still gated
//   switch_speedup              switch-dispatch vs reference
//   translate_chain_hit_rate    chain_hits/(chain_hits+chain_misses) over
//                               this benchmark's warm samples (> 0 on the
//                               branchy benches or chaining is broken)
//   trace_len_mean              mean multi-exit trace length (static)
//   trace_len_single_exit_mean  mean length if traces still ended at the
//                               first conditional branch (the pre-multi-exit
//                               engine's block shape, for the E9 comparison)
//   blockcache_*                shared pre-decode cache counters for a warm
//                               RunMany-shaped sweep over the whole suite
//
// The speedups are ratios of two measurements taken on the same host
// seconds apart, so unlike the raw rates they are comparable across CI
// runners; the perf-trajectory gate (ci/perf_trajectory.py) tracks them
// with direction rules and enforces the release floors below.
//
// Measurement discipline: one warm Simulator per engine, repeated Run()s
// sized to a few million instructions per sample, best-of-N rates (noise
// only ever slows a sample down), CPU time not wall time, and the
// per-round samples interleaved across engines so host frequency drift
// lands on every engine equally instead of skewing the reported ratios.
// The tiered engine gets explicit warm-up runs first so its samples
// measure the steady translated+chained state (promotion heat is
// cumulative in the shared TranslationBank), not tier-2 execution plus
// compile time.
//
// In Release builds the bench itself enforces the tentpole floors: suite
// average translated_speedup >= 6x with per-benchmark floors of 4x and a
// nonzero chain-hit rate on the jump-table benches switch01/state02
// (override/disable with B2H_SIM_TRANSLATED_GATE), and suite average
// block_speedup >= 4x (B2H_SIM_SPEEDUP_GATE) so a tier-2 regression
// cannot hide under tier 3 — a throughput regression fails the bench run,
// not just the trajectory diff.  The warm-sweep self-gate is
// unconditional: a warm suite sweep performing any pre-decode at all means
// the shared cache broke, which no build type makes acceptable.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "dynamic/hot_region.hpp"
#include "mips/shared_cache.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/cpu_time.hpp"

namespace {

using namespace b2h;

constexpr int kSamples = 5;
constexpr std::uint64_t kTargetInstrsPerSample = 2'000'000;

struct Rates {
  double plain = 0.0;         ///< instr/sec, Run()
  double instrumented = 0.0;  ///< instr/sec, RunInstrumented + detector
};

/// Best-of-N instructions/second for repeated runs of `sim`.
template <typename RunOnce>
double BestRate(int reps, RunOnce&& run_once) {
  double best = 0.0;
  for (int s = 0; s < kSamples; ++s) {
    std::uint64_t executed = 0;
    const double seconds = support::CpuSecondsOf([&] {
      for (int r = 0; r < reps; ++r) executed += run_once();
    });
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(executed) / seconds);
    }
  }
  return best;
}

struct TraceStats {
  double mean_len = 0.0;          ///< mean multi-exit trace length
  double single_exit_mean = 0.0;  ///< mean length truncated at first branch
};

/// Static trace-length statistics over every decodable entry: what the
/// multi-exit traces look like, and what the same text's blocks looked like
/// under the old first-branch-terminates rule (each trace truncated at its
/// first side exit) — the before/after pair the E9 study plots.
TraceStats MeasureTraces(const mips::BlockCache& cache) {
  TraceStats stats;
  const mips::BlockSpan* spans = cache.spans();
  const mips::SideExit* exits = cache.exits();
  std::uint64_t count = 0;
  std::uint64_t total_len = 0;
  std::uint64_t total_single = 0;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    const mips::BlockSpan& span = spans[i];
    if (span.len == 0) continue;
    ++count;
    total_len += span.len;
    total_single += span.exit_count > 0
                        ? exits[span.exit_begin].offset + 1
                        : span.len;
  }
  if (count > 0) {
    stats.mean_len = static_cast<double>(total_len) / count;
    stats.single_exit_mean = static_cast<double>(total_single) / count;
  }
  return stats;
}

double GateFromEnv(const char* env_name, double release_floor) {
  if (const char* env = std::getenv(env_name)) {
    return std::atof(env);  // "0" disables
  }
#ifdef B2H_BUILD_TYPE
  if (std::string_view(B2H_BUILD_TYPE) == "Release") return release_floor;
#endif
  return 0.0;  // informational outside Release unless explicitly requested
}

double SpeedupGate() { return GateFromEnv("B2H_SIM_SPEEDUP_GATE", 4.0); }
double TranslatedGate() {
  return GateFromEnv("B2H_SIM_TRANSLATED_GATE", 6.0);
}

/// Jump-table benchmarks: the tiered engine's headline targets.  Each gets
/// a per-benchmark translated_speedup floor and a chain-hit-rate > 0 check
/// whenever the translated gate is active.
constexpr double kBranchyFloor = 4.0;
bool IsBranchyBench(std::string_view name) {
  return name == "switch01" || name == "state02";
}

}  // namespace

int main() {
  bench::JsonWriter json("simulator");

  std::printf("Simulator throughput: tiered + trace engines vs reference\n");
  std::printf("%-12s %12s %12s %12s %12s %9s %9s %9s %9s\n", "benchmark",
              "tiered i/s", "threaded i/s", "switch i/s", "ref i/s",
              "t-spdup", "speedup", "sw-spdup", "chain");

  // Suite aggregation: harmonic weighting by each benchmark's per-run
  // instruction count, i.e. total instructions / total time — the rate a
  // profiling pass over the whole suite actually experiences.
  double total_weight = 0.0;
  double block_time = 0.0;
  double instrumented_time = 0.0;
  double switch_time = 0.0;
  double translated_time = 0.0;
  double reference_time = 0.0;

  // Binaries that produced a measurement, kept for the warm-sweep pass.
  std::vector<std::pair<std::string, mips::SoftBinary>> measured;
  // Per-benchmark tiered results for the Release floors checked at exit.
  struct TieredResult {
    std::string name;
    double speedup = 0.0;
    double chain_hit_rate = 0.0;
  };
  std::vector<TieredResult> tiered_results;

  for (const suite::Benchmark& bench : suite::AllBenchmarks()) {
    auto built = suite::BuildBinary(bench, 1);
    if (!built.ok()) {
      std::printf("%-12s skipped (%s)\n", bench.name.c_str(),
                  built.status().message().c_str());
      continue;
    }
    const mips::SoftBinary binary = std::move(built).take();
    mips::Simulator probe(binary);
    const auto probe_run = probe.Run();
    if (probe_run.reason != mips::HaltReason::kReturned ||
        probe_run.instructions == 0) {
      std::printf("%-12s skipped (did not return)\n", bench.name.c_str());
      continue;
    }
    const int reps = std::max<int>(
        1, static_cast<int>(kTargetInstrsPerSample / probe_run.instructions));

    // One warm simulator per engine; the tiered one runs explicit warm-up
    // first.  The TranslationBank is shared through the pre-decode, so the
    // warm-up runs accrue the promotion heat and bake the inline caches;
    // the samples below then measure the steady translated+chained state.
    mips::Simulator sim_block(binary, {}, mips::ExecEngine::kBlock);
    mips::Simulator sim_switch(binary, {}, mips::ExecEngine::kBlockSwitch);
    mips::Simulator sim_translated(binary, {}, mips::ExecEngine::kTranslated);
    mips::Simulator sim_reference(binary, {}, mips::ExecEngine::kReference);
    for (int i = 0; i < 3; ++i) (void)sim_translated.Run();

    // Interleaved sampling: every best-of round measures all four engines
    // back-to-back, instead of taking all of one engine's samples before
    // the next engine's.  The reported numbers are ratios of two engines'
    // rates, and host frequency drift over the seconds a sequential sweep
    // takes lands entirely on whichever engine happened to be measured
    // then — interleaving gives each engine a sample in every drift
    // regime, so the best-of rates (noise only ever slows a sample down)
    // are taken from comparable conditions.
    const auto sample = [&](mips::Simulator& sim) {
      std::uint64_t executed = 0;
      mips::RunResult recycled;  // reuses profile storage run-to-run
      const double seconds = support::CpuSecondsOf([&] {
        for (int r = 0; r < reps; ++r) {
          recycled = sim.Run({}, 100'000'000, std::move(recycled));
          executed += recycled.instructions;
        }
      });
      return seconds > 0.0 ? static_cast<double>(executed) / seconds : 0.0;
    };
    Rates block;
    Rates swdisp;
    Rates translated;
    Rates reference;
    const mips::SharedBlockCache::Stats chain_before =
        mips::SharedBlockCache::Global().stats();
    for (int s = 0; s < kSamples; ++s) {
      block.plain = std::max(block.plain, sample(sim_block));
      swdisp.plain = std::max(swdisp.plain, sample(sim_switch));
      translated.plain = std::max(translated.plain, sample(sim_translated));
      reference.plain = std::max(reference.plain, sample(sim_reference));
    }
    const mips::SharedBlockCache::Stats chain_after =
        mips::SharedBlockCache::Global().stats();
    block.instrumented = BestRate(reps, [&] {
      dynamic::DetectionOnlyObserver detector;
      return sim_block.RunInstrumented({}, 100'000'000, &detector)
          .instructions;
    });
    if (block.plain <= 0.0 || block.instrumented <= 0.0 ||
        swdisp.plain <= 0.0 || translated.plain <= 0.0 ||
        reference.plain <= 0.0) {
      std::printf("%-12s skipped (clock quantum too coarse)\n",
                  bench.name.c_str());
      continue;
    }
    const double speedup = block.plain / reference.plain;
    const double switch_speedup = swdisp.plain / reference.plain;
    const double translated_speedup = translated.plain / reference.plain;
    const double chain_hits = static_cast<double>(chain_after.chain_hits -
                                                  chain_before.chain_hits);
    const double chain_total =
        chain_hits + static_cast<double>(chain_after.chain_misses -
                                         chain_before.chain_misses);
    const double chain_hit_rate =
        chain_total > 0.0 ? chain_hits / chain_total : 0.0;
    const TraceStats traces = MeasureTraces(probe.blocks());

    json.Record("instr_per_sec", block.plain, "instr/s", bench.name);
    json.Record("instr_per_sec_instrumented", block.instrumented, "instr/s",
                bench.name);
    json.Record("switch_instr_per_sec", swdisp.plain, "instr/s", bench.name);
    json.Record("translated_instr_per_sec", translated.plain, "instr/s",
                bench.name);
    json.Record("ref_instr_per_sec", reference.plain, "instr/s", bench.name);
    json.Record("translated_speedup", translated_speedup, "x", bench.name);
    json.Record("block_speedup", speedup, "x", bench.name);
    json.Record("switch_speedup", switch_speedup, "x", bench.name);
    json.Record("translate_chain_hit_rate", chain_hit_rate, "ratio",
                bench.name);
    json.Record("trace_len_mean", traces.mean_len, "instr", bench.name);
    json.Record("trace_len_single_exit_mean", traces.single_exit_mean,
                "instr", bench.name);
    std::printf(
        "%-12s %12.3g %12.3g %12.3g %12.3g %8.2fx %8.2fx %8.2fx %9.3f\n",
        bench.name.c_str(), translated.plain, block.plain, swdisp.plain,
        reference.plain, translated_speedup, speedup, switch_speedup,
        chain_hit_rate);

    const auto weight = static_cast<double>(probe_run.instructions);
    total_weight += weight;
    block_time += weight / block.plain;
    instrumented_time += weight / block.instrumented;
    switch_time += weight / swdisp.plain;
    translated_time += weight / translated.plain;
    reference_time += weight / reference.plain;
    measured.emplace_back(bench.name, binary);
    tiered_results.push_back({bench.name, translated_speedup, chain_hit_rate});
  }

  if (total_weight <= 0.0 || block_time <= 0.0) {
    std::fprintf(stderr, "bench_simulator: no benchmark produced a rate\n");
    return 1;
  }

  const double avg_block = total_weight / block_time;
  const double avg_instrumented = total_weight / instrumented_time;
  const double avg_switch = total_weight / switch_time;
  const double avg_translated = total_weight / translated_time;
  const double avg_reference = total_weight / reference_time;
  const double avg_speedup = reference_time / block_time;
  const double avg_switch_speedup = reference_time / switch_time;
  const double avg_translated_speedup = reference_time / translated_time;
  json.Record("instr_per_sec", avg_block, "instr/s", "suite_avg");
  json.Record("instr_per_sec_instrumented", avg_instrumented, "instr/s",
              "suite_avg");
  json.Record("switch_instr_per_sec", avg_switch, "instr/s", "suite_avg");
  json.Record("translated_instr_per_sec", avg_translated, "instr/s",
              "suite_avg");
  json.Record("ref_instr_per_sec", avg_reference, "instr/s", "suite_avg");
  json.Record("translated_speedup", avg_translated_speedup, "x", "suite_avg");
  json.Record("block_speedup", avg_speedup, "x", "suite_avg");
  json.Record("switch_speedup", avg_switch_speedup, "x", "suite_avg");
  std::printf("%-12s %12.3g %12.3g %12.3g %12.3g %8.2fx %8.2fx %8.2fx\n",
              "suite_avg", avg_translated, avg_block, avg_switch,
              avg_reference, avg_translated_speedup, avg_speedup,
              avg_switch_speedup);

  // Warm RunMany-shaped sweep: every measured binary's pre-decode is
  // resident by now, so constructing and running a fresh Simulator per
  // benchmark must hit the shared cache every time and never re-decode.
  const mips::SharedBlockCache::Stats warm_before =
      mips::SharedBlockCache::Global().stats();
  for (const auto& [name, binary] : measured) {
    mips::Simulator sim(binary);
    const auto run = sim.Run();
    if (run.reason != mips::HaltReason::kReturned) {
      std::fprintf(stderr, "bench_simulator: warm sweep run of %s failed\n",
                   name.c_str());
      return 1;
    }
  }
  const mips::SharedBlockCache::Stats warm_after =
      mips::SharedBlockCache::Global().stats();
  const auto warm_predecodes =
      static_cast<double>(warm_after.misses - warm_before.misses);
  const auto warm_hits =
      static_cast<double>(warm_after.hits - warm_before.hits);
  json.Record("blockcache_warm_predecodes", warm_predecodes, "count",
              "suite");
  json.Record("blockcache_warm_hits", warm_hits, "count", "suite");
  json.Record("blockcache_hits", static_cast<double>(warm_after.hits),
              "count", "suite");
  json.Record("blockcache_misses", static_cast<double>(warm_after.misses),
              "count", "suite");
  json.Record("blockcache_bytes", static_cast<double>(warm_after.bytes),
              "byte", "suite");
  const double lookups =
      static_cast<double>(warm_after.hits + warm_after.misses);
  json.Record("blockcache_hit_rate",
              lookups > 0.0 ? static_cast<double>(warm_after.hits) / lookups
                            : 0.0,
              "ratio", "suite");
  // Tier-3 process totals (informational; the gated chain behavior is the
  // per-benchmark translate_chain_hit_rate above).
  json.Record("translated_traces",
              static_cast<double>(warm_after.translated_traces), "count",
              "suite");
  json.Record("translated_bytes",
              static_cast<double>(warm_after.translated_bytes), "byte",
              "suite");
  json.Record("translate_promotions",
              static_cast<double>(warm_after.promotions), "count", "suite");
  json.Record("translate_chain_hits",
              static_cast<double>(warm_after.chain_hits), "count", "suite");
  json.Record("translate_chain_misses",
              static_cast<double>(warm_after.chain_misses), "count", "suite");
  std::printf(
      "shared cache: warm sweep %zu binaries, %d pre-decodes, %d hits "
      "(process totals: %llu hits / %llu misses, %llu bytes resident)\n",
      measured.size(), static_cast<int>(warm_predecodes),
      static_cast<int>(warm_hits),
      static_cast<unsigned long long>(warm_after.hits),
      static_cast<unsigned long long>(warm_after.misses),
      static_cast<unsigned long long>(warm_after.bytes));
  if (warm_predecodes != 0.0) {
    std::fprintf(stderr,
                 "FAIL: warm suite sweep performed %d pre-decodes; the "
                 "shared block cache must make warm construction free\n",
                 static_cast<int>(warm_predecodes));
    return 1;
  }

  const double gate = SpeedupGate();
  if (gate > 0.0 && avg_speedup < gate) {
    std::fprintf(stderr,
                 "FAIL: suite-average block-engine speedup %.2fx is below "
                 "the %.2fx floor (B2H_SIM_SPEEDUP_GATE overrides)\n",
                 avg_speedup, gate);
    return 1;
  }
  if (gate > 0.0) {
    std::printf("block gate: %.2fx >= %.2fx floor OK\n", avg_speedup, gate);
  }

  const double tgate = TranslatedGate();
  if (tgate > 0.0) {
    if (avg_translated_speedup < tgate) {
      std::fprintf(stderr,
                   "FAIL: suite-average translated speedup %.2fx is below "
                   "the %.2fx floor (B2H_SIM_TRANSLATED_GATE overrides)\n",
                   avg_translated_speedup, tgate);
      return 1;
    }
    for (const TieredResult& result : tiered_results) {
      if (!IsBranchyBench(result.name)) continue;
      if (result.speedup < kBranchyFloor) {
        std::fprintf(stderr,
                     "FAIL: %s translated speedup %.2fx is below the "
                     "%.2fx jump-table floor\n",
                     result.name.c_str(), result.speedup, kBranchyFloor);
        return 1;
      }
      if (result.chain_hit_rate <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: %s chain hit rate is zero — indirect trace "
                     "chaining is not engaging on a jump-table bench\n",
                     result.name.c_str());
        return 1;
      }
    }
    std::printf("translated gate: %.2fx >= %.2fx floor OK\n",
                avg_translated_speedup, tgate);
  }
  return 0;
}
