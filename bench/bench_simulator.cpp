// Simulator throughput bench: instructions/second of the block-compiled
// engine (plain and instrumented) versus the retained per-instruction
// reference interpreter, per suite benchmark and suite-aggregated.
//
// Writes BENCH_simulator.json (see bench_json.hpp):
//   instr_per_sec               block engine, plain Run           [per bench + suite_avg]
//   instr_per_sec_instrumented  block engine + detection observer [per bench + suite_avg]
//   ref_instr_per_sec           reference engine, plain Run       [per bench + suite_avg]
//   block_speedup               block vs reference                [per bench + suite_avg]
//
// block_speedup is a ratio of two measurements taken on the same host
// seconds apart, so unlike the raw rates it is comparable across CI
// runners; the perf-trajectory gate (ci/perf_trajectory.py) tracks it with
// a direction rule and enforces the release floor below.
//
// Measurement discipline: one warm Simulator per engine, repeated Run()s
// sized to a few million instructions per sample, best-of-N rates (noise
// only ever slows a sample down), CPU time not wall time.
//
// In Release builds the bench itself enforces the tentpole floor: suite
// average block_speedup >= 3x (override/disable with B2H_SIM_SPEEDUP_GATE,
// e.g. "2.5" or "0" to disable) — a throughput regression fails the bench
// run, not just the trajectory diff.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bench_json.hpp"
#include "dynamic/hot_region.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/cpu_time.hpp"

namespace {

using namespace b2h;

constexpr int kSamples = 5;
constexpr std::uint64_t kTargetInstrsPerSample = 2'000'000;

struct Rates {
  double plain = 0.0;         ///< instr/sec, Run()
  double instrumented = 0.0;  ///< instr/sec, RunInstrumented + detector
};

/// Best-of-N instructions/second for repeated runs of `sim`.
template <typename RunOnce>
double BestRate(int reps, RunOnce&& run_once) {
  double best = 0.0;
  for (int s = 0; s < kSamples; ++s) {
    std::uint64_t executed = 0;
    const double seconds = support::CpuSecondsOf([&] {
      for (int r = 0; r < reps; ++r) executed += run_once();
    });
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(executed) / seconds);
    }
  }
  return best;
}

Rates MeasureEngine(const mips::SoftBinary& binary, mips::ExecEngine engine,
                    int reps, bool measure_instrumented) {
  Rates rates;
  mips::Simulator sim(binary, {}, engine);
  rates.plain = BestRate(reps, [&] { return sim.Run().instructions; });
  if (measure_instrumented) {
    rates.instrumented = BestRate(reps, [&] {
      dynamic::DetectionOnlyObserver detector;
      return sim.RunInstrumented({}, 100'000'000, &detector).instructions;
    });
  }
  return rates;
}

double SpeedupGate() {
  if (const char* env = std::getenv("B2H_SIM_SPEEDUP_GATE")) {
    return std::atof(env);  // "0" disables
  }
#ifdef B2H_BUILD_TYPE
  if (std::string_view(B2H_BUILD_TYPE) == "Release") return 3.0;
#endif
  return 0.0;  // informational outside Release unless explicitly requested
}

}  // namespace

int main() {
  bench::JsonWriter json("simulator");

  std::printf("Simulator throughput: block-compiled engine vs reference\n");
  std::printf("%-12s %12s %12s %12s %9s\n", "benchmark", "block i/s",
              "instrum i/s", "ref i/s", "speedup");

  // Suite aggregation: harmonic weighting by each benchmark's per-run
  // instruction count, i.e. total instructions / total time — the rate a
  // profiling pass over the whole suite actually experiences.
  double total_weight = 0.0;
  double block_time = 0.0;
  double instrumented_time = 0.0;
  double reference_time = 0.0;

  for (const suite::Benchmark& bench : suite::AllBenchmarks()) {
    auto built = suite::BuildBinary(bench, 1);
    if (!built.ok()) {
      std::printf("%-12s skipped (%s)\n", bench.name.c_str(),
                  built.status().message().c_str());
      continue;
    }
    const mips::SoftBinary binary = std::move(built).take();
    mips::Simulator probe(binary);
    const auto probe_run = probe.Run();
    if (probe_run.reason != mips::HaltReason::kReturned ||
        probe_run.instructions == 0) {
      std::printf("%-12s skipped (did not return)\n", bench.name.c_str());
      continue;
    }
    const int reps = std::max<int>(
        1, static_cast<int>(kTargetInstrsPerSample / probe_run.instructions));

    const Rates block =
        MeasureEngine(binary, mips::ExecEngine::kBlock, reps, true);
    const Rates reference =
        MeasureEngine(binary, mips::ExecEngine::kReference, reps, false);
    if (block.plain <= 0.0 || block.instrumented <= 0.0 ||
        reference.plain <= 0.0) {
      std::printf("%-12s skipped (clock quantum too coarse)\n",
                  bench.name.c_str());
      continue;
    }
    const double speedup = block.plain / reference.plain;

    json.Record("instr_per_sec", block.plain, "instr/s", bench.name);
    json.Record("instr_per_sec_instrumented", block.instrumented, "instr/s",
                bench.name);
    json.Record("ref_instr_per_sec", reference.plain, "instr/s", bench.name);
    json.Record("block_speedup", speedup, "x", bench.name);
    std::printf("%-12s %12.3g %12.3g %12.3g %8.2fx\n", bench.name.c_str(),
                block.plain, block.instrumented, reference.plain, speedup);

    const auto weight = static_cast<double>(probe_run.instructions);
    total_weight += weight;
    block_time += weight / block.plain;
    instrumented_time += weight / block.instrumented;
    reference_time += weight / reference.plain;
  }

  if (total_weight <= 0.0 || block_time <= 0.0) {
    std::fprintf(stderr, "bench_simulator: no benchmark produced a rate\n");
    return 1;
  }

  const double avg_block = total_weight / block_time;
  const double avg_instrumented = total_weight / instrumented_time;
  const double avg_reference = total_weight / reference_time;
  const double avg_speedup = reference_time / block_time;
  json.Record("instr_per_sec", avg_block, "instr/s", "suite_avg");
  json.Record("instr_per_sec_instrumented", avg_instrumented, "instr/s",
              "suite_avg");
  json.Record("ref_instr_per_sec", avg_reference, "instr/s", "suite_avg");
  json.Record("block_speedup", avg_speedup, "x", "suite_avg");
  std::printf("%-12s %12.3g %12.3g %12.3g %8.2fx\n", "suite_avg", avg_block,
              avg_instrumented, avg_reference, avg_speedup);

  const double gate = SpeedupGate();
  if (gate > 0.0 && avg_speedup < gate) {
    std::fprintf(stderr,
                 "FAIL: suite-average block-engine speedup %.2fx is below "
                 "the %.2fx floor (B2H_SIM_SPEEDUP_GATE overrides)\n",
                 avg_speedup, gate);
    return 1;
  }
  if (gate > 0.0) {
    std::printf("throughput gate: %.2fx >= %.2fx floor OK\n", avg_speedup,
                gate);
  }
  return 0;
}
