// Experiment E5: partitioning speed (google-benchmark).
//
// Paper §3: "we use a simpler technique based on the well-known 90-10 rule
// in order to reduce the time required for partitioning.  Achieving a small
// partitioning execution time is important because we intend to integrate
// our approach with existing dynamic partitioning and dynamic synthesis
// approaches."
//
// Measures the wall time of each flow stage on representative binaries:
// decompilation alone, partitioning+synthesis alone, and the full flow.
// For dynamic (on-chip) use the whole flow must be milliseconds-scale.
// Binaries are held as shared_ptr so the timed loops measure the stages
// themselves, not the compat shim's defensive binary copy.
#include <benchmark/benchmark.h>

#include <memory>

#include "decomp/pipeline.hpp"
#include "mips/simulator.hpp"
#include "partition/flow.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

using namespace b2h;

namespace {

struct Prepared {
  std::shared_ptr<const mips::SoftBinary> binary;
  mips::RunResult run;
};

Prepared Prepare(const char* name) {
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  auto binary = suite::BuildBinary(*bench, 1);
  Prepared prepared;
  prepared.binary =
      std::make_shared<const mips::SoftBinary>(std::move(binary).take());
  mips::Simulator sim(*prepared.binary);
  prepared.run = sim.Run();
  return prepared;
}

void BM_Decompile(benchmark::State& state, const char* name) {
  const Prepared prepared = Prepare(name);
  decomp::DecompileOptions options;
  options.profile = &prepared.run.profile;
  for (auto _ : state) {
    auto program = decomp::Decompile(prepared.binary, options);
    benchmark::DoNotOptimize(program);
  }
  state.SetLabel(std::to_string(prepared.binary->text.size()) + " instrs");
}

void BM_PartitionAndSynthesize(benchmark::State& state, const char* name) {
  const Prepared prepared = Prepare(name);
  decomp::DecompileOptions options;
  options.profile = &prepared.run.profile;
  auto program = decomp::Decompile(prepared.binary, options);
  if (!program.ok()) {
    state.SkipWithError("decompilation failed");
    return;
  }
  const partition::Platform platform;
  for (auto _ : state) {
    auto result = partition::PartitionProgram(
        program.value(), prepared.run.profile, platform, {});
    benchmark::DoNotOptimize(result);
  }
}

void BM_FullFlow(benchmark::State& state, const char* name) {
  const Prepared prepared = Prepare(name);
  for (auto _ : state) {
    auto flow = partition::RunFlow(prepared.binary, {});
    benchmark::DoNotOptimize(flow);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Decompile, fir, "fir");
BENCHMARK_CAPTURE(BM_Decompile, adpcm_enc, "adpcm_enc");
BENCHMARK_CAPTURE(BM_Decompile, matmul, "matmul");
BENCHMARK_CAPTURE(BM_PartitionAndSynthesize, fir, "fir");
BENCHMARK_CAPTURE(BM_PartitionAndSynthesize, adpcm_enc, "adpcm_enc");
BENCHMARK_CAPTURE(BM_PartitionAndSynthesize, matmul, "matmul");
BENCHMARK_CAPTURE(BM_FullFlow, fir, "fir");
BENCHMARK_CAPTURE(BM_FullFlow, brev, "brev");

BENCHMARK_MAIN();
