// Experiment E1 ("Table 1"): the paper's headline result set.
//
//   "The decompilation-based approach showed consistently good application
//    speedups and energy savings, averaging 5.4 and 69%, compared to a MIPS
//    processor running at 200 MHz.  The average kernel speedup was 44.8.
//    ... The average area required was an equivalent of 26,261 logic gates.
//    ... The only unsuccessful situations occurred during CDFG recovery,
//    which failed for two EEMBC examples because of indirect jumps."
//
// This harness compiles every benchmark at -O1 (as the paper does), batches
// them through Toolchain::RunMany on the 200 MHz platform, and prints one
// row per benchmark plus the averages to compare against the paper.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

int main() {
  bench::JsonWriter json("table1");
  printf("=== E1 / Table 1: decompilation-based partitioning, "
         "MIPS@200MHz + Virtex-II, gcc -O1 ===\n\n");
  printf("%-11s %-11s %9s %9s %8s %8s %8s %10s\n", "benchmark", "suite",
         "sw(ms)", "hw(ms)", "speedup", "kernel", "energy%", "gates");

  std::vector<NamedBinary> binaries;
  std::vector<const suite::Benchmark*> built;
  for (const auto& bench : suite::AllBenchmarks()) {
    auto binary = suite::BuildBinary(bench, 1);
    if (!binary.ok()) {
      printf("%-11s %-11s BUILD FAILED: %s\n", bench.name.c_str(),
             bench.origin.c_str(), binary.status().message().c_str());
      continue;
    }
    binaries.push_back(
        {bench.name,
         std::make_shared<const mips::SoftBinary>(std::move(binary).take())});
    built.push_back(&bench);
  }

  Toolchain toolchain;
  const BatchResult batch = toolchain.RunMany(binaries, {"mips200-xc2v1000"});

  double sum_speedup = 0.0;
  double sum_kernel = 0.0;
  double sum_energy = 0.0;
  double sum_area = 0.0;
  int successes = 0;
  int failures = 0;

  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    const auto& run = batch.runs[i];
    const suite::Benchmark& bench = *built[i];
    if (!run.ok()) {
      printf("%-11s %-11s CDFG recovery failed (%s)\n", bench.name.c_str(),
             bench.origin.c_str(), ToString(run.status().kind()));
      ++failures;
      continue;
    }
    const auto& est = run.value().estimate;
    printf("%-11s %-11s %9.3f %9.3f %8.1f %8.1f %8.0f %10.0f\n",
           bench.name.c_str(), bench.origin.c_str(), est.sw_time * 1e3,
           est.partitioned_time * 1e3, est.speedup, est.avg_kernel_speedup,
           est.energy_savings * 100.0, est.area_gates);
    json.Record("speedup", est.speedup, "x", bench.name);
    sum_speedup += est.speedup;
    sum_kernel += est.avg_kernel_speedup;
    sum_energy += est.energy_savings;
    sum_area += est.area_gates;
    ++successes;
  }

  printf("\n%-23s %28.1f %8.1f %8.0f %10.0f\n", "AVERAGE (measured)",
         sum_speedup / successes, sum_kernel / successes,
         sum_energy / successes * 100.0, sum_area / successes);
  printf("%-23s %28.1f %8.1f %8.0f %10.0f\n", "PAPER (reported)", 5.4, 44.8,
         69.0, 26261.0);
  printf("\nCDFG recovery failures: %d (paper: 2, both EEMBC, "
         "indirect jumps)\n", failures);
  json.Record("avg_speedup", sum_speedup / successes, "x");
  json.Record("avg_kernel_speedup", sum_kernel / successes, "x");
  json.Record("avg_energy_savings", sum_energy / successes * 100.0, "%");
  json.Record("avg_area", sum_area / successes, "gates");
  json.Record("cdfg_failures", failures, "count");
  return 0;
}
