// Whole-application synthesis (paper §1: "our methods are also applicable
// for synthesizing an entire software application, not just kernels, to a
// custom circuit").
//
// Decompiles the brev benchmark binary, synthesizes *all of main* as one
// circuit, verifies the synthesized design against the software run via the
// RTL simulator, and writes the VHDL to a file.
//
// Build & run:  ./build/examples/whole_app_synthesis [out.vhd]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "decomp/pass_manager.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "synth/rtl_sim.hpp"
#include "synth/synth.hpp"

using namespace b2h;

int main(int argc, char** argv) {
  const suite::Benchmark* bench = suite::FindBenchmark("brev");
  auto binary = suite::BuildBinary(*bench, 1);
  if (!binary.ok()) {
    printf("build error: %s\n", binary.status().message().c_str());
    return 1;
  }

  // Software reference run (also provides the profile).
  mips::Simulator sim(binary.value());
  const auto run = sim.Run();
  printf("software: rv=%d, %llu cycles\n", run.return_value,
         static_cast<unsigned long long>(run.cycles));

  // Decompile through the default registered pipeline (pass manager API).
  auto pipeline = decomp::PassManager::Preset("default");
  auto program = pipeline.value().Run(
      std::make_shared<const mips::SoftBinary>(binary.value()), &run.profile);
  if (!program.ok()) {
    printf("decompile error: %s\n", program.status().message().c_str());
    return 1;
  }
  printf("pipeline:");
  for (const auto& pass_run : program.value().pass_runs) {
    printf(" %s", pass_run.pass.c_str());
  }
  printf("\n");

  // The whole of main as one hardware region (helpers were inlined).
  const ir::Function* main_fn = program.value().module.main;
  const synth::HwRegion region = synth::ExtractFunctionRegion(*main_fn);
  if (!region.synthesizable) {
    printf("not synthesizable: %s\n", region.reject_reason.c_str());
    return 1;
  }
  decomp::AliasAnalysis alias(*main_fn, &binary.value().symbols);
  auto synthesized = synth::Synthesize(region, &alias);
  if (!synthesized.ok()) {
    printf("synthesis error: %s\n", synthesized.status().message().c_str());
    return 1;
  }

  printf("synthesized whole application:\n");
  printf("  FSM states:  %d\n", synthesized.value().schedule.total_states);
  printf("  clock:       %.0f MHz\n", synthesized.value().clock_mhz);
  printf("  area:        %.0f equivalent gates\n",
         synthesized.value().area.total_gates);
  printf("  est. cycles: %llu\n",
         static_cast<unsigned long long>(synthesized.value().hw_cycles));

  // Execute the synthesized design and compare against software.
  synth::RtlSimulator rtl(region, synthesized.value().schedule,
                          binary.value().data);
  std::map<unsigned, std::int32_t> inputs;
  inputs[29] = static_cast<std::int32_t>(mips::kStackTop - 64);
  const auto result = rtl.Run({}, inputs);
  if (!result.ok) {
    printf("RTL simulation failed: %s\n", result.error.c_str());
    return 1;
  }
  printf("RTL simulation: rv=%d, %llu FSM cycles -> %s\n",
         result.return_value,
         static_cast<unsigned long long>(result.fsm_cycles),
         result.return_value == run.return_value ? "MATCHES software"
                                                 : "MISMATCH!");

  // Default under the build tree so ad-hoc runs don't litter the checkout.
  std::string path = argc > 1 ? argv[1] : "build/vhdl/hw_brev_main.vhd";
  std::error_code mkdir_error;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, mkdir_error);
  }
  std::ofstream out(path);
  if (mkdir_error || !out) {
    printf("cannot write %s%s%s\n", path.c_str(),
           mkdir_error ? ": " : "",
           mkdir_error ? mkdir_error.message().c_str() : "");
    return 1;
  }
  out << synthesized.value().vhdl;
  printf("VHDL written to %s (%zu bytes)\n", path.c_str(),
         synthesized.value().vhdl.size());
  return result.return_value == run.return_value ? 0 : 1;
}
