// Dynamic (runtime) partitioning demo: the scenario the paper's §6 argues
// decompilation-based partitioning was built for.  The benchmark binary
// executes on the simulated MIPS while an online detector watches backward
// branches; when a loop turns hot it is incrementally decompiled,
// synthesized, and swapped into the (modeled) FPGA mid-run.  The final
// report shows the dynamic outcome next to the static ahead-of-time oracle
// on the same binary.
//
//   ./build/examples/dynamic_partitioner crc
//   ./build/examples/dynamic_partitioner fir --platform mips400
//   ./build/examples/dynamic_partitioner brev --threshold 200
//   ./build/examples/dynamic_partitioner --all        # whole suite summary
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

namespace {

int RunWholeSuite(Toolchain& toolchain, const std::string& platform_name) {
  printf("%-11s %9s %9s %11s %7s %7s\n", "benchmark", "static-x", "dynamic-x",
         "convergence", "swaps", "events");
  toolchain.WithDynamic(true);
  std::vector<NamedBinary> binaries;
  for (const auto& bench : suite::AllBenchmarks()) {
    auto binary = suite::BuildBinary(bench, 1);
    if (!binary.ok()) continue;
    binaries.push_back(
        {bench.name,
         std::make_shared<const mips::SoftBinary>(std::move(binary).take())});
  }
  const BatchResult batch = toolchain.RunMany(binaries, {platform_name});
  double sum_convergence = 0.0;
  int counted = 0;
  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    if (!batch.runs[i].ok()) {
      printf("%-11s (%s)\n", binaries[i].name.c_str(),
             ToString(batch.runs[i].status().kind()));
      continue;
    }
    const ToolchainRun& run = batch.runs[i].value();
    const dynamic::DynamicRun& dyn = *run.dynamic_run;
    const double convergence =
        run.estimate.speedup > 0.0
            ? dyn.estimate.speedup / run.estimate.speedup
            : 0.0;
    printf("%-11s %9.2f %9.2f %10.0f%% %7zu %7llu\n", binaries[i].name.c_str(),
           run.estimate.speedup, dyn.estimate.speedup, convergence * 100.0,
           dyn.swaps.size(),
           static_cast<unsigned long long>(dyn.detector_events));
    sum_convergence += convergence;
    ++counted;
  }
  if (counted > 0) {
    printf("%-11s %29.0f%%\n", "AVERAGE", sum_convergence / counted * 100.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    printf("usage: %s <benchmark-name | --all> [--platform NAME] "
           "[--threshold N]\n", argv[0]);
    printf("benchmarks:");
    for (const auto& bench : suite::AllBenchmarks()) {
      printf(" %s", bench.name.c_str());
    }
    printf("\n");
    return 1;
  }

  std::string platform_name = "mips200-xc2v1000";
  partition::DynamicPolicy policy;
  const std::string input = argv[1];
  for (int i = 2; i < argc; i += 2) {
    if (i + 1 >= argc) {
      printf("flag '%s' is missing its value\n", argv[i]);
      return 1;
    }
    if (std::strcmp(argv[i], "--platform") == 0) {
      platform_name = argv[i + 1];
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      char* end = nullptr;
      policy.hot_threshold = std::strtoull(argv[i + 1], &end, 10);
      if (end == argv[i + 1] || *end != '\0' || policy.hot_threshold == 0) {
        printf("--threshold needs a positive integer, got '%s'\n",
               argv[i + 1]);
        return 1;
      }
    } else {
      printf("unknown flag '%s'\n", argv[i]);
      return 1;
    }
  }
  if (!PlatformRegistry::Global().Find(platform_name).has_value()) {
    printf("unknown platform '%s'\n", platform_name.c_str());
    return 1;
  }

  Toolchain toolchain;
  toolchain.WithDynamicPolicy(policy).WithPlatform(platform_name);

  if (input == "--all") return RunWholeSuite(toolchain, platform_name);

  const suite::Benchmark* bench = suite::FindBenchmark(input);
  if (bench == nullptr) {
    printf("unknown benchmark '%s'\n", input.c_str());
    return 1;
  }
  auto built = suite::BuildBinary(*bench, 1);
  if (!built.ok()) {
    printf("build failed: %s\n", built.status().message().c_str());
    return 1;
  }
  auto binary =
      std::make_shared<const mips::SoftBinary>(std::move(built).take());

  auto run = toolchain.RunDynamicOn(platform_name, binary, input);
  if (!run.ok()) {
    printf("dynamic partitioning failed (%s): %s\n",
           ToString(run.status().kind()), run.status().message().c_str());
    return 2;
  }
  printf("%s", run.value().Report().c_str());
  printf("time to first kernel: %.1f ms host wall clock "
         "(online CAD total %.1f ms)\n",
         run.value().dynamic_run.time_to_first_kernel_ms,
         run.value().dynamic_run.online_cad_ms);
  return 0;
}
