// A vendor-tool style command-line partitioner (paper §1: "The
// partitioning/synthesis tool could be provided by the platform vendor").
//
// Input: a MIPS assembly file (the stand-in for a linked binary), or the
// name of a bundled benchmark.  Output: partitioning report on stdout and
// one VHDL file per hardware region.
//
//   ./build/examples/binary_partitioner path/to/program.s
//   ./build/examples/binary_partitioner crc
//   ./build/examples/binary_partitioner crc --platform mips400
//   ./build/examples/binary_partitioner crc --cpu-mhz 400 --fpga-kgates 50
//   ./build/examples/binary_partitioner crc --pipeline default,-reroll-loops
//   ./build/examples/binary_partitioner crc --out-dir build/vhdl
//   ./build/examples/binary_partitioner crc --trace-out build/crc.trace.json
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "mips/assembler.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

namespace {

Result<mips::SoftBinary> LoadInput(const std::string& input) {
  if (const suite::Benchmark* bench = suite::FindBenchmark(input)) {
    return suite::BuildBinary(*bench, 1);
  }
  std::ifstream file(input);
  if (!file) {
    return Status::Error(ErrorKind::kParse,
                         "cannot open '" + input +
                             "' (not a file or bundled benchmark)");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return mips::Assemble(text.str());
}

std::string SafeFileName(std::string name) {
  for (char& c : name) {
    if (c == '/' || c == ':') c = '_';
  }
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    printf("usage: %s <program.s | benchmark-name> [--platform NAME] "
           "[--cpu-mhz N] [--fpga-kgates N] [--pipeline SPEC] "
           "[--out-dir DIR] [--trace-out FILE]\n", argv[0]);
    printf("registered platforms:");
    for (const auto& name : PlatformRegistry::Global().Names()) {
      printf(" %s", name.c_str());
    }
    printf("\n");
    return 1;
  }

  Toolchain toolchain;
  partition::Platform platform =
      *PlatformRegistry::Global().Find("mips200-xc2v1000");
  std::string platform_label = "mips200-xc2v1000";
  const std::string input = argv[1];
  // Generated VHDL lands under the build tree by default, not in whatever
  // directory the tool happens to run from (keeps source checkouts clean).
  std::string out_dir = "build/vhdl";
  // Pass 1: pick the base platform, so --cpu-mhz/--fpga-kgates compose on
  // top of it regardless of flag order.
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--platform") == 0) {
      auto found = PlatformRegistry::Global().Find(argv[i + 1]);
      if (!found.has_value()) {
        printf("unknown platform '%s'\n", argv[i + 1]);
        return 1;
      }
      platform = *found;
      platform_label = argv[i + 1];
    }
  }
  // Pass 2: overrides.
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--cpu-mhz") == 0) {
      platform.cpu.clock_mhz = std::atof(argv[i + 1]);
      platform_label += "+custom";
    } else if (std::strcmp(argv[i], "--fpga-kgates") == 0) {
      platform.fpga.capacity_gates = std::atof(argv[i + 1]) * 1000.0;
      platform.fpga.usable_fraction = 1.0;
      platform_label += "+custom";
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      toolchain.WithPipeline(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--out-dir") == 0) {
      out_dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      // Destructor-flushed: the trace file appears even on the early-exit
      // failure paths below.
      toolchain.WithTrace(argv[i + 1]);
    }
  }
  toolchain.WithPlatform(platform, platform_label);

  auto loaded = LoadInput(input);
  if (!loaded.ok()) {
    printf("error: %s\n", loaded.status().message().c_str());
    return 1;
  }
  auto binary =
      std::make_shared<const mips::SoftBinary>(std::move(loaded).take());
  printf("loaded %zu instructions, %zu data bytes\n", binary->text.size(),
         binary->data.size());

  auto run = toolchain.Run(binary, input);
  if (!run.ok()) {
    // The paper's failure mode: indirect jumps defeat CDFG recovery; the
    // program simply stays all-software.
    printf("partitioning failed (%s): %s\n", ToString(run.status().kind()),
           run.status().message().c_str());
    printf("the application remains software-only.\n");
    return 2;
  }

  printf("\n%s\n", run.value().Report().c_str());

  std::error_code mkdir_error;
  std::filesystem::create_directories(out_dir, mkdir_error);
  if (mkdir_error) {
    printf("cannot create --out-dir '%s': %s\n", out_dir.c_str(),
           mkdir_error.message().c_str());
    return 1;
  }
  for (const auto& kernel : run.value().partition.hw) {
    const std::string path =
        (std::filesystem::path(out_dir) /
         ("hw_" + SafeFileName(kernel.synthesized.region.name) + ".vhd"))
            .string();
    std::ofstream out(path);
    out << kernel.synthesized.vhdl;
    printf("wrote %s (%.0f gates, %s)\n", path.c_str(),
           kernel.synthesized.area.total_gates,
           kernel.arrays_resident ? "arrays resident in BRAM"
                                  : "arrays in main memory");
  }
  if (!run.value().partition.rejected.empty()) {
    printf("\nregions not moved to hardware:\n");
    for (const auto& reason : run.value().partition.rejected) {
      printf("  %s\n", reason.c_str());
    }
  }
  return 0;
}
