// A vendor-tool style command-line partitioner (paper §1: "The
// partitioning/synthesis tool could be provided by the platform vendor").
//
// Input: a MIPS assembly file (the stand-in for a linked binary), or the
// name of a bundled benchmark.  Output: partitioning report on stdout and
// one VHDL file per hardware region.
//
//   ./build/examples/binary_partitioner path/to/program.s
//   ./build/examples/binary_partitioner crc
//   ./build/examples/binary_partitioner crc --cpu-mhz 400 --fpga-kgates 50
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "mips/assembler.hpp"
#include "partition/flow.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

using namespace b2h;

namespace {

Result<mips::SoftBinary> LoadInput(const std::string& input) {
  if (const suite::Benchmark* bench = suite::FindBenchmark(input)) {
    return suite::BuildBinary(*bench, 1);
  }
  std::ifstream file(input);
  if (!file) {
    return Status::Error(ErrorKind::kParse,
                         "cannot open '" + input +
                             "' (not a file or bundled benchmark)");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return mips::Assemble(text.str());
}

std::string SafeFileName(std::string name) {
  for (char& c : name) {
    if (c == '/' || c == ':') c = '_';
  }
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    printf("usage: %s <program.s | benchmark-name> [--cpu-mhz N] "
           "[--fpga-kgates N]\n", argv[0]);
    return 1;
  }
  partition::FlowOptions options;
  const std::string input = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--cpu-mhz") == 0) {
      options.platform.cpu.clock_mhz = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--fpga-kgates") == 0) {
      options.platform.fpga.capacity_gates = std::atof(argv[i + 1]) * 1000.0;
      options.platform.fpga.usable_fraction = 1.0;
    }
  }

  auto binary = LoadInput(input);
  if (!binary.ok()) {
    printf("error: %s\n", binary.status().message().c_str());
    return 1;
  }
  printf("loaded %zu instructions, %zu data bytes\n",
         binary.value().text.size(), binary.value().data.size());

  auto flow = partition::RunFlow(binary.value(), options);
  if (!flow.ok()) {
    // The paper's failure mode: indirect jumps defeat CDFG recovery; the
    // program simply stays all-software.
    printf("partitioning failed (%s): %s\n",
           ToString(flow.status().kind()),
           flow.status().message().c_str());
    printf("the application remains software-only.\n");
    return 2;
  }

  printf("\n%s\n", flow.value().Report().c_str());

  for (const auto& kernel : flow.value().partition.hw) {
    const std::string path =
        "hw_" + SafeFileName(kernel.synthesized.region.name) + ".vhd";
    std::ofstream out(path);
    out << kernel.synthesized.vhdl;
    printf("wrote %s (%.0f gates, %s)\n", path.c_str(),
           kernel.synthesized.area.total_gates,
           kernel.arrays_resident ? "arrays resident in BRAM"
                                  : "arrays in main memory");
  }
  if (!flow.value().partition.rejected.empty()) {
    printf("\nregions not moved to hardware:\n");
    for (const auto& reason : flow.value().partition.rejected) {
      printf("  %s\n", reason.c_str());
    }
  }
  return 0;
}
