// Platform exploration (paper §4: "Using a hypothetical platform allows us
// to more easily evaluate different types of platforms with different clock
// speeds and FPGA sizes").
//
// Registers one named platform per (CPU clock, FPGA capacity) point in the
// PlatformRegistry, then sweeps them all over one benchmark binary in a
// single Toolchain::RunMany batch — the binary is profiled and decompiled
// once for the whole matrix — and prints the speedup/energy matrix a
// platform architect would look at.
//
// Build & run:  ./build/examples/platform_explorer [benchmark]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "fir";
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  if (bench == nullptr) {
    printf("unknown benchmark '%s'; available:\n", name.c_str());
    for (const auto& b : suite::AllBenchmarks()) {
      printf("  %-12s (%s) %s\n", b.name.c_str(), b.origin.c_str(),
             b.description.c_str());
    }
    return 1;
  }
  auto built = suite::BuildBinary(*bench, 1);
  if (!built.ok()) {
    printf("build error: %s\n", built.status().message().c_str());
    return 1;
  }
  auto binary =
      std::make_shared<const mips::SoftBinary>(std::move(built).take());

  printf("platform exploration for '%s' (%s)\n\n", bench->name.c_str(),
         bench->description.c_str());

  const double cpu_clocks[] = {40, 100, 200, 400};
  const double fpga_kgates[] = {15, 50, 300};

  // Register the whole design-space grid as named platforms.
  std::vector<std::string> platform_names;
  for (double mhz : cpu_clocks) {
    for (double kg : fpga_kgates) {
      partition::Platform platform = partition::Platform::WithCpuMhz(mhz);
      platform.fpga.capacity_gates = kg * 1000.0;
      platform.fpga.usable_fraction = 1.0;
      std::string platform_name = "mips" + std::to_string((int)mhz) + "-" +
                                  std::to_string((int)kg) + "kg";
      PlatformRegistry::Global().Register(platform_name, platform);
      platform_names.push_back(std::move(platform_name));
    }
  }

  // One batch over the full matrix; one decompilation total.
  Toolchain toolchain;
  const BatchResult batch = toolchain.RunMany(
      {{bench->name, binary}}, platform_names);

  printf("%-10s", "cpu\\fpga");
  for (double kg : fpga_kgates) printf("   %6.0fk gates   ", kg);
  printf("\n");
  std::size_t index = 0;
  for (double mhz : cpu_clocks) {
    printf("%6.0fMHz ", mhz);
    for (std::size_t k = 0; k < std::size(fpga_kgates); ++k) {
      const auto& run = batch.runs[index++];
      if (!run.ok()) {
        printf("   %-15s", "flow failed");
        continue;
      }
      char cell[32];
      snprintf(cell, sizeof cell, "%5.1fx / %3.0f%%",
               run.value().estimate.speedup,
               run.value().estimate.energy_savings * 100.0);
      printf("   %-15s", cell);
    }
    printf("\n");
  }
  printf("\n(each cell: application speedup / energy savings vs "
         "software-only on the same CPU;\n %zu platform points, "
         "%zu decompilation%s)\n",
         batch.runs.size(), batch.decompilations_run,
         batch.decompilations_run == 1 ? "" : "s");
  return 0;
}
