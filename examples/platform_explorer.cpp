// Platform + strategy exploration (paper §4: "Using a hypothetical
// platform allows us to more easily evaluate different types of platforms
// with different clock speeds and FPGA sizes").
//
// Registers one named platform per (CPU clock, FPGA capacity) point, then
// runs one Toolchain::Explore sweep over {platform grid} x {all three
// partitioner strategies} — the binary is profiled and decompiled once for
// the whole matrix, partitions are cached by content, and the result
// carries the multi-objective Pareto frontier (speedup vs. energy vs. FPGA
// area) a platform architect would shortlist from.
//
// Build & run:  ./build/examples/platform_explorer [benchmark]
//                   [--cache-dir DIR] [--report FILE] [--trace-out FILE]
//
// With a cache dir (flag or $B2H_CACHE_DIR) the sweep runs against the
// persistent two-tier artifact cache: re-running this binary from a fresh
// process performs zero simulations/decompilations/partitions.  --report
// writes the deterministic ExploreResult::Report() to FILE, which the CI
// cache-warm gate compares byte-for-byte between a cold and a warm process.
// --trace-out records structured spans for the whole sweep (decompile,
// partition, cache, explore stages) and writes Chrome/Perfetto trace JSON
// to FILE; it never affects the deterministic report.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

int main(int argc, char** argv) {
  std::string name = "fir";
  std::string cache_dir;
  std::string report_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      name = arg;
    }
  }
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  if (bench == nullptr) {
    printf("unknown benchmark '%s'; available:\n", name.c_str());
    for (const auto& b : suite::AllBenchmarks()) {
      printf("  %-12s (%s) %s\n", b.name.c_str(), b.origin.c_str(),
             b.description.c_str());
    }
    return 1;
  }
  auto built = suite::BuildBinary(*bench, 1);
  if (!built.ok()) {
    printf("build error: %s\n", built.status().message().c_str());
    return 1;
  }
  auto binary =
      std::make_shared<const mips::SoftBinary>(std::move(built).take());

  printf("design-space exploration for '%s' (%s)\n\n", bench->name.c_str(),
         bench->description.c_str());

  const double cpu_clocks[] = {40, 100, 200, 400};
  const double fpga_kgates[] = {15, 50, 300};

  // Register the whole design-space grid as named platforms.
  explore::ExploreSpec spec;
  spec.binaries = {{bench->name, binary}};
  spec.platforms.clear();
  for (double mhz : cpu_clocks) {
    for (double kg : fpga_kgates) {
      partition::Platform platform = partition::Platform::WithCpuMhz(mhz);
      platform.fpga.capacity_gates = kg * 1000.0;
      platform.fpga.usable_fraction = 1.0;
      std::string platform_name = "mips" + std::to_string((int)mhz) + "-" +
                                  std::to_string((int)kg) + "kg";
      PlatformRegistry::Global().Register(platform_name, platform);
      spec.platforms.push_back(std::move(platform_name));
    }
  }
  spec.strategies = {"paper-greedy", "knapsack-optimal", "annealing"};

  // One sweep over the full matrix; one decompilation total (zero when a
  // persistent cache dir is already warm).
  Toolchain toolchain;
  if (!cache_dir.empty()) toolchain.WithCacheDir(cache_dir);
  if (!trace_path.empty()) toolchain.WithTrace(trace_path);
  const explore::ExploreResult result = toolchain.Explore(spec);

  // The classic speedup/energy matrix, for the paper heuristic.
  printf("paper-greedy heuristic (each cell: speedup / energy savings):\n");
  printf("%-10s", "cpu\\fpga");
  for (double kg : fpga_kgates) printf("   %6.0fk gates   ", kg);
  printf("\n");
  std::size_t platform_index = 0;
  for (double mhz : cpu_clocks) {
    printf("%6.0fMHz ", mhz);
    for (std::size_t k = 0; k < std::size(fpga_kgates); ++k) {
      const auto& point = result.At(0, platform_index++, 0, 0);
      if (!point.status.ok()) {
        printf("   %-15s", "flow failed");
        continue;
      }
      char cell[32];
      snprintf(cell, sizeof cell, "%5.1fx / %3.0f%%", point.speedup,
               point.energy_savings * 100.0);
      printf("   %-15s", cell);
    }
    printf("\n");
  }

  // The Pareto shortlist across all platforms AND strategies.
  printf("\npareto frontier (speedup vs. energy vs. area, all strategies):\n");
  printf("  %-16s %-18s %9s %12s %12s %3s\n", "platform", "strategy",
         "speedup", "energy(uJ)", "area(gates)", "hw");
  std::size_t frontier = 0;
  for (const auto& point : result.points) {
    if (!point.status.ok() || !point.on_frontier) continue;
    ++frontier;
    printf("  %-16s %-18s %8.2fx %12.3f %12.0f %3zu\n",
           point.platform_name.c_str(), point.strategy_name.c_str(),
           point.speedup, point.energy * 1e6, point.area_gates,
           point.hw_regions);
  }
  printf("\n(%zu of %zu points on the frontier; %zu decompilation%s, "
         "%zu partition%s for the whole matrix)\n",
         frontier, result.points.size(), result.decompilations_run,
         result.decompilations_run == 1 ? "" : "s", result.partitions_run,
         result.partitions_run == 1 ? "" : "s");
  printf("%s", result.StatsReport().c_str());
  if (!report_path.empty()) {
    std::ofstream report(report_path, std::ios::binary | std::ios::trunc);
    report << result.Report();
    if (!report) {
      printf("failed to write report to %s\n", report_path.c_str());
      return 1;
    }
    printf("deterministic report -> %s\n", report_path.c_str());
  }
  if (!trace_path.empty() && toolchain.FlushTrace()) {
    printf("trace -> %s\n", trace_path.c_str());
  }
  return 0;
}
