// Platform exploration (paper §4: "Using a hypothetical platform allows us
// to more easily evaluate different types of platforms with different clock
// speeds and FPGA sizes").
//
// Sweeps CPU clock and FPGA capacity for one benchmark and prints the
// speedup/energy matrix a platform architect would look at.
//
// Build & run:  ./build/examples/platform_explorer [benchmark]
#include <cstdio>
#include <string>

#include "partition/flow.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

using namespace b2h;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "fir";
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  if (bench == nullptr) {
    printf("unknown benchmark '%s'; available:\n", name.c_str());
    for (const auto& b : suite::AllBenchmarks()) {
      printf("  %-12s (%s) %s\n", b.name.c_str(), b.origin.c_str(),
             b.description.c_str());
    }
    return 1;
  }
  auto binary = suite::BuildBinary(*bench, 1);
  if (!binary.ok()) {
    printf("build error: %s\n", binary.status().message().c_str());
    return 1;
  }

  printf("platform exploration for '%s' (%s)\n\n", bench->name.c_str(),
         bench->description.c_str());

  const double cpu_clocks[] = {40, 100, 200, 400};
  const double fpga_kgates[] = {15, 50, 300};

  printf("%-10s", "cpu\\fpga");
  for (double kg : fpga_kgates) printf("   %6.0fk gates   ", kg);
  printf("\n");
  for (double mhz : cpu_clocks) {
    printf("%6.0fMHz ", mhz);
    for (double kg : fpga_kgates) {
      partition::FlowOptions options;
      options.platform = partition::Platform::WithCpuMhz(mhz);
      options.platform.fpga.capacity_gates = kg * 1000.0;
      options.platform.fpga.usable_fraction = 1.0;
      auto flow = partition::RunFlow(binary.value(), options);
      if (!flow.ok()) {
        printf("   %-15s", "flow failed");
        continue;
      }
      char cell[32];
      snprintf(cell, sizeof cell, "%5.1fx / %3.0f%%",
               flow.value().estimate.speedup,
               flow.value().estimate.energy_savings * 100.0);
      printf("   %-15s", cell);
    }
    printf("\n");
  }
  printf("\n(each cell: application speedup / energy savings vs "
         "software-only on the same CPU)\n");
  return 0;
}
