// Quickstart: the complete flow on a small program, end to end.
//
//   MiniC source -> MIPS binary (the "any compiler" stand-in)
//   -> b2h::Toolchain: profile on the simulated MIPS, decompile the
//      *binary* into an annotated CDFG (PassManager pipeline), partition
//      hot loops to the FPGA, synthesize, estimate
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "minicc/codegen.hpp"
#include "toolchain/toolchain.hpp"

using namespace b2h;

namespace {

// A tiny image-threshold kernel: the inner loop is the obvious hardware
// candidate.  Note the partitioner never sees this source — only the
// compiled binary.
const char* kSource = R"(
byte image[256];
byte out[256];

int threshold() {
  int i;
  int count = 0;
  for (i = 0; i < 256; i = i + 1) {
    int p = image[i];
    if (p > 128) {
      out[i] = 255;
      count = count + 1;
    } else {
      out[i] = 0;
    }
  }
  return count;
}

int main() {
  int i;
  for (i = 0; i < 256; i = i + 1) {
    image[i] = (i * 37 + 11) & 255;
  }
  return threshold();
}
)";

}  // namespace

int main() {
  // 1. Compile (stands in for "any software compiler" producing a binary).
  minicc::CompileOptions compile_options;
  compile_options.opt_level = 1;
  auto compiled = minicc::Compile(kSource, compile_options);
  if (!compiled.ok()) {
    printf("compile error: %s\n", compiled.status().message().c_str());
    return 1;
  }
  auto binary = std::make_shared<const mips::SoftBinary>(
      std::move(compiled).take().binary);
  printf("compiled: %zu MIPS instructions\n", binary->text.size());

  // 2. Run the whole binary-level partitioning flow on the default
  //    platform ("mips200-xc2v1000": MIPS@200MHz + Virtex-II).
  Toolchain toolchain;
  toolchain.WithPipeline("default");  // the paper's full pass pipeline
  auto run = toolchain.Run(binary, "threshold");
  if (!run.ok()) {
    printf("flow error: %s\n", run.status().message().c_str());
    return 1;
  }
  printf("\n%s\n", run.value().Report().c_str());

  // 3. Peek at the generated VHDL for the first hardware region.
  if (!run.value().partition.hw.empty()) {
    const auto& kernel = run.value().partition.hw.front();
    printf("--- VHDL for %s (first 25 lines) ---\n",
           kernel.synthesized.region.name.c_str());
    const std::string& vhdl = kernel.synthesized.vhdl;
    std::size_t pos = 0;
    for (int line = 0; line < 25 && pos != std::string::npos; ++line) {
      const std::size_t end = vhdl.find('\n', pos);
      printf("%s\n", vhdl.substr(pos, end - pos).c_str());
      pos = end == std::string::npos ? end : end + 1;
    }
    printf("...\n\n--- ISE-style area report ---\n%s\n",
           kernel.synthesized.area.Summary().c_str());
  }
  return 0;
}
