#!/usr/bin/env python3
"""Perf-trajectory gate for the bench job.

Diffs the current BENCH_*.json records (JSON Lines, schema 1 — see
bench/bench_json.hpp) against the previous successful main run's bench-json
artifact, fails on regressions beyond per-metric tolerances, and prints a
markdown trajectory table (stdout and, when available, the GitHub job
summary).

Usage:
  python3 ci/perf_trajectory.py --old PREV_DIR --new NEW_DIR [--summary FILE]

PREV_DIR may hold BENCH_*.json files directly (a single baseline run) or
one subdirectory per previous run (e.g. prev-bench/run-<id>/BENCH_*.json,
as the CI workflow downloads them).  With several runs the baseline for
each metric is the MEDIAN across the runs that recorded it — a rolling
window that a single noisy runner cannot drag around.

Three kinds of checks:

  * absolute gates: invariants of the current run alone (warm sweeps do
    zero work, the disk-warm report is bit-identical) — these fail even
    when no baseline artifact exists;
  * absolute minimum gates: floors the current run must clear on its own
    (the tiered and block-engine simulator speedups stay >= their release
    targets, jump-table benches keep chaining);
  * trajectory gates: metric-by-metric comparison against the baseline,
    with direction and tolerance chosen per metric family.  Deterministic
    quality metrics (speedups, convergence, hit rates) get tight gates;
    same-host measurement *ratios* (block_speedup) get a loose gate; raw
    host-time metrics (wall/ms/overhead, instr/sec) are tracked in the
    table but not gated, since successive shared CI runners differ too
    much even for a median baseline (see RULES).

A missing baseline directory or metric is reported but never fails the
gate (first run, renamed metric, new benchmark).
"""
import argparse
import glob
import json
import os
import statistics
import sys

# --- absolute gates: (metric, expected value) on the NEW run ----------------
ABSOLUTE_GATES = [
    ("warm_decompilations", 0.0),
    ("warm_partitions", 0.0),
    ("disk_warm_decompilations", 0.0),
    ("disk_warm_partitions", 0.0),
    ("disk_warm_report_identical", 1.0),
    # Serving invariants (tools/b2h_loadgen.cpp, BENCH_serve.json): the warm
    # subset of a mixed replay performs zero toolchain work, a burst of
    # identical requests executes exactly once, concurrent reports are
    # bit-identical to the serial baseline, and the daemon exits cleanly
    # with its socket removed.
    ("serve_warm_simulations", 0.0),
    ("serve_warm_decompilations", 0.0),
    ("serve_extra_partitions", 0.0),
    ("serve_burst_executed", 1.0),
    ("serve_report_identical", 1.0),
    ("serve_shutdown_clean", 1.0),
    # The serve daemon's `metrics` endpoint returned a schema-stamped
    # registry snapshot consistent with the generated load
    # (tools/b2h_loadgen.cpp).
    ("serve_metrics_ok", 1.0),
    # The observability layer held its overhead budget on the simulator and
    # scheduler hot paths (bench/bench_obs.cpp self-gate; the raw overhead
    # percentages are host times and stay informational under RULES).
    ("obs_overhead_ok", 1.0),
    # Shared block cache invariant (bench/bench_simulator.cpp warm sweep):
    # re-constructing a Simulator for an already-measured binary must reuse
    # the process-wide pre-decode, never redo it.
    ("blockcache_warm_predecodes", 0.0),
    # The HTTP introspection plane replayed the framed request mix through
    # POST /v1/partition|/v1/explore and every report came back
    # byte-identical from the shared cache (tools/b2h_loadgen.cpp phase 5;
    # recorded only when the loadgen run passes --http-port, which CI does).
    ("serve_http_identical", 1.0),
]

# --- absolute minimum gates: (bench, metric, label, floor) on the NEW run ---
# The tiered engine's tentpole: suite-average translated speedup over the
# reference interpreter must hold its 6x Release floor (raised from the 4x
# block-engine floor when tier-3 translation + inline-cache chaining
# landed; the bench self-gates at the same value via
# B2H_SIM_TRANSLATED_GATE), with per-benchmark floors on the jump-table
# benches — the benchmarks indirect chaining exists for — and chain-hit
# rates that must stay nonzero there (a zero means the inline caches
# stopped engaging entirely; the tiny floor is just "strictly positive").
# block_speedup keeps its own 4x floor so a tier-2 regression cannot hide
# under tier 3.  Like the equality gates above, a missing record fails —
# renaming the metric must not silently disable the invariant.
ABSOLUTE_MIN_GATES = [
    ("simulator", "translated_speedup", "suite_avg", 6.0),
    ("simulator", "translated_speedup", "switch01", 4.0),
    ("simulator", "translated_speedup", "state02", 4.0),
    ("simulator", "translate_chain_hit_rate", "switch01", 1e-6),
    ("simulator", "translate_chain_hit_rate", "state02", 1e-6),
    ("simulator", "block_speedup", "suite_avg", 4.0),
]

# --- trajectory gate rules, first match wins --------------------------------
# (substring, direction, relative tolerance, gated)
#   direction: "higher" = bigger is better, "lower" = smaller is better
#
# Host-time families (wall, time-to-kernel, overhead ratios) are tracked in
# the table but NOT gated: successive GitHub-hosted runners span different
# CPU generations, and the repo's own measurements show the identical
# detector-overhead reading 5-8% on one host and ~18% on another — a
# single-run baseline would flake on no-change PRs.  Deterministic model
# outputs (speedups, convergence, hit rates) are bit-stable, so any drift
# beyond rounding is a real code change and gets a tight gate.
RULES = [
    ("wall", "lower", None, False),             # host time: informational
    ("time_to_first_kernel", "lower", None, False),
    ("overhead", "lower", None, False),         # ratio of two host times
    ("gap", None, None, False),                 # informational either way
    ("instr_per_sec", "higher", None, False),   # raw host throughput
    # Daemon latencies/throughput are host times on shared runners, and the
    # remaining serve counters (coalesced totals, cache-tier split) depend
    # on scheduling interleavings: all informational.  The deterministic
    # serving invariants are ABSOLUTE_GATES above.
    ("serve_", None, None, False),
    # Shared-block-cache counters (hits/misses/bytes/hit_rate): process-shape
    # dependent totals tracked informationally — the deterministic zero-work
    # invariant is the blockcache_warm_predecodes ABSOLUTE_GATE above.  Must
    # precede the generic "hit_rate" rule (first match wins).
    ("blockcache", None, None, False),
    # Same-host measurement ratio (block engine vs reference interpreter,
    # measured seconds apart on one runner): stable across CPU generations,
    # so it IS gated, with headroom for scheduler noise on shared runners.
    # The switch-dispatch variant is informational — it exists to attribute
    # speedup between trace shape and dispatch strategy, not as a target.
    # Must precede both "block_speedup" and the generic "speedup" rule.
    ("switch_speedup", "higher", None, False),
    # The tiered engine's same-host ratio: gated with the same headroom as
    # block_speedup.  The chain-hit-rate family is workload-shape dependent
    # (sample counts vary run to run) — its hard floor is the absolute gate
    # above, the trajectory is informational.  Both must precede the generic
    # "speedup"/"hit_rate" rules (first match wins).
    ("translate_chain", None, None, False),
    ("translated_speedup", "higher", 0.25, True),
    ("block_speedup", "higher", 0.25, True),
    ("speedup", "higher", 0.02, True),          # deterministic model outputs
    ("convergence", "higher", 0.02, True),
    ("hit_rate", "higher", 0.02, True),
    ("energy", None, None, False),
]


def rule_for(metric):
    for substring, direction, tolerance, gated in RULES:
        if substring in metric:
            return direction, tolerance, gated
    return None, None, False


def load_records(directory):
    records = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        if path.endswith("BENCH_partition_time.json"):
            continue  # google-benchmark format, not our JSON-lines schema
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if rec.get("schema") != 1:
                    continue
                key = (rec.get("bench", ""), rec.get("metric", ""),
                       rec.get("label", ""))
                records[key] = float(rec.get("value", 0.0))
    return records


def load_baseline(directory):
    """Baseline records from PREV_DIR: BENCH_*.json directly (one run)
    and/or one run per subdirectory.  Returns ({key: median-value}, runs)."""
    if not os.path.isdir(directory):
        return {}, 0
    runs = []
    direct = load_records(directory)
    if direct:
        runs.append(direct)
    for entry in sorted(os.listdir(directory)):
        sub = os.path.join(directory, entry)
        if os.path.isdir(sub):
            records = load_records(sub)
            if records:
                runs.append(records)
    if not runs:
        return {}, 0
    merged = {}
    all_keys = set()
    for records in runs:
        all_keys.update(records)
    for key in all_keys:
        merged[key] = statistics.median(
            records[key] for records in runs if key in records)
    return merged, len(runs)


def fmt(value):
    return f"{value:.4g}"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--old", required=True,
                        help="previous run's bench-json directory")
    parser.add_argument("--new", required=True,
                        help="this run's bench output directory")
    parser.add_argument("--summary", default=os.environ.get(
        "GITHUB_STEP_SUMMARY", ""), help="markdown summary file to append to")
    args = parser.parse_args()

    new = load_records(args.new)
    if not new:
        print(f"ERROR: no schema-1 BENCH_*.json records under {args.new}")
        return 1
    old, old_runs = load_baseline(args.old)

    failures = []
    rows = []

    # Absolute gates first: they hold with or without a baseline.  A gated
    # metric that vanishes from the bench output is itself a failure —
    # otherwise renaming/dropping the record would silently disable the
    # zero-work invariant this gate exists to enforce.
    for metric, expected in ABSOLUTE_GATES:
        matched = False
        for (bench, name, label), value in sorted(new.items()):
            if name != metric:
                continue
            matched = True
            ok = value == expected
            rows.append((bench, name, label, "—", fmt(value), "—",
                         "ok" if ok else "**FAIL**"))
            if not ok:
                failures.append(
                    f"{bench}/{name}[{label}] = {fmt(value)}, "
                    f"expected {fmt(expected)}")
        if not matched:
            rows.append(("?", metric, "", "—", "missing", "—", "**FAIL**"))
            failures.append(
                f"gated metric '{metric}' is absent from the new bench "
                "records — the invariant is no longer being measured")

    for gate_bench, gate_metric, gate_label, floor in ABSOLUTE_MIN_GATES:
        key = (gate_bench, gate_metric, gate_label)
        if key not in new:
            rows.append((gate_bench, gate_metric, gate_label, "—", "missing",
                         "—", "**FAIL**"))
            failures.append(
                f"gated metric '{gate_metric}[{gate_label}]' is absent from "
                "the new bench records — the floor is no longer being "
                "measured")
            continue
        ok = new[key] >= floor
        rows.append((gate_bench, gate_metric, gate_label,
                     f">={fmt(floor)}", fmt(new[key]), "—",
                     "ok" if ok else "**FAIL**"))
        if not ok:
            failures.append(
                f"{gate_bench}/{gate_metric}[{gate_label}] = "
                f"{fmt(new[key])} is below the {fmt(floor)} floor")

    if not old:
        note = (f"no baseline bench-json under '{args.old}' — "
                "trajectory comparison skipped (first run?)")
        print(note)
    else:
        print(f"baseline: median of {old_runs} previous run(s)")
        for key in sorted(new):
            bench, metric, label = key
            if any(metric == gate for gate, _ in ABSOLUTE_GATES):
                continue  # already covered above
            direction, tolerance, gated = rule_for(metric)
            if key not in old:
                rows.append((bench, metric, label, "—", fmt(new[key]), "new",
                             "info"))
                continue
            prev, now = old[key], new[key]
            delta = (now - prev) / abs(prev) if prev != 0 else (
                0.0 if now == 0 else float("inf"))
            status = "info"
            if gated and direction is not None:
                regressed = (delta < -tolerance if direction == "higher"
                             else delta > tolerance)
                status = "**FAIL**" if regressed else "ok"
                if regressed:
                    failures.append(
                        f"{bench}/{metric}[{label}]: {fmt(prev)} -> "
                        f"{fmt(now)} ({delta:+.1%}, tolerance "
                        f"{tolerance:.0%}, {direction} is better)")
            rows.append((bench, metric, label, fmt(prev), fmt(now),
                         f"{delta:+.1%}", status))

    # Markdown trajectory table: gated/changed rows first, capped for
    # readability; the row cap is reported so truncation is never silent.
    interesting = [r for r in rows if r[6] != "info" or r[5] == "new"]
    cap = 120
    shown = interesting[:cap]
    lines = ["## Perf trajectory", "",
             "| bench | metric | label | previous | current | Δ | status |",
             "|---|---|---|---|---|---|---|"]
    for bench, metric, label, prev, now, delta, status in shown:
        lines.append(
            f"| {bench} | {metric} | {label} | {prev} | {now} | {delta} "
            f"| {status} |")
    if len(interesting) > cap:
        lines.append("")
        lines.append(f"({len(interesting) - cap} more rows not shown)")
    if not old:
        lines.append("")
        lines.append("_No baseline artifact — trajectory comparison "
                     "skipped._")
    else:
        lines.append("")
        lines.append(f"_Baseline: median of {old_runs} previous successful "
                     "main run(s)._")
    if failures:
        lines.append("")
        lines.append("### Regressions")
        for failure in failures:
            lines.append(f"- {failure}")
    report = "\n".join(lines)
    print(report)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(report + "\n")

    if failures:
        print(f"\nFAIL: {len(failures)} perf regression(s)")
        return 1
    print(f"\nOK: {len(new)} metrics checked, "
          f"{len(old)} baseline metrics, no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
