#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace-out.

Usage:
  python3 ci/validate_trace.py TRACE.json [--require-categories a,b,c]

Checks (non-zero exit on the first failure):

  * the file parses as JSON and has the {"traceEvents": [...]} shape the
    obs::Tracer exporter emits (Perfetto/chrome://tracing loadable);
  * the ring dropped nothing (otherData.dropped == 0) unless
    --allow-dropped is passed — a CI sweep's ring must hold every span;
  * every event is a complete ("X") span with the required fields, a
    non-negative ts/dur, and a span_id arg;
  * events are sorted by ts (the exporter's contract) and the earliest
    span sits at ts == 0 (times are relative to the first span);
  * span ids are unique;
  * every required category (default: the end-to-end flow set decomp,
    partition, explore, cache) appears at least once — a traced cold
    sweep that misses one of these lost a whole subsystem's spans.

A parent_id pointing at a span that is not in the file is reported but not
fatal: the ring may legitimately have dropped an old parent on very long
sessions.
"""
import argparse
import json
import sys

REQUIRED_EVENT_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid",
                         "args")
DEFAULT_CATEGORIES = "decomp,partition,explore,cache"


def fail(message):
    print(f"validate_trace: FAIL: {message}")
    return 1


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require-categories", default=DEFAULT_CATEGORIES,
                        help="comma-separated categories that must appear "
                             f"(default: {DEFAULT_CATEGORIES}; '' disables)")
    parser.add_argument("--allow-dropped", action="store_true",
                        help="tolerate otherData.dropped > 0 (long sessions "
                             "legitimately wrap the ring)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"cannot load {args.trace}: {error}")

    if not isinstance(trace, dict) or not isinstance(
            trace.get("traceEvents"), list):
        return fail("top level must be an object with a traceEvents list")
    events = trace["traceEvents"]
    if not events:
        return fail("trace contains no events")

    # The exporter stamps ring losses into otherData.dropped.  On the CI
    # traced sweep the ring must be sized to hold everything: a drop means
    # the trace silently lost spans, which defeats the category check
    # below.  --allow-dropped opts out for long-session captures.
    other_data = trace.get("otherData", {})
    dropped = other_data.get("dropped", 0) if isinstance(
        other_data, dict) else 0
    if dropped and not args.allow_dropped:
        return fail(f"{dropped} span(s) were dropped by the ring "
                    "(size the ring up, or pass --allow-dropped)")

    seen_ids = set()
    categories = {}
    last_ts = None
    for index, event in enumerate(events):
        where = f"event #{index}"
        if not isinstance(event, dict):
            return fail(f"{where} is not an object")
        for field in REQUIRED_EVENT_FIELDS:
            if field not in event:
                return fail(f"{where} is missing '{field}'")
        if event["ph"] != "X":
            return fail(f"{where} has phase '{event['ph']}', expected "
                        "complete spans ('X')")
        ts, dur = event["ts"], event["dur"]
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"{where} has invalid ts {ts!r}")
        if not isinstance(dur, (int, float)) or dur < 0:
            return fail(f"{where} has invalid dur {dur!r}")
        if last_ts is not None and ts < last_ts:
            return fail(f"{where} breaks monotonic start order "
                        f"({ts} after {last_ts})")
        last_ts = ts
        span_id = event["args"].get("span_id")
        if not isinstance(span_id, int) or span_id <= 0:
            return fail(f"{where} has invalid span_id {span_id!r}")
        if span_id in seen_ids:
            return fail(f"{where} duplicates span_id {span_id}")
        seen_ids.add(span_id)
        categories[event["cat"]] = categories.get(event["cat"], 0) + 1
    if events[0]["ts"] != 0:
        return fail(f"earliest span starts at ts={events[0]['ts']}, "
                    "expected 0 (relative timestamps)")

    dangling = sum(
        1 for event in events
        if isinstance(event["args"].get("parent_id"), int)
        and event["args"]["parent_id"] not in seen_ids)
    if dangling:
        print(f"validate_trace: note: {dangling} span(s) reference a parent "
              "outside the file (ring drop on a long session)")

    required = [c for c in args.require_categories.split(",") if c]
    missing = [c for c in required if c not in categories]
    if missing:
        return fail(f"required categories missing: {', '.join(missing)} "
                    f"(present: {', '.join(sorted(categories))})")

    summary = ", ".join(f"{name}={count}"
                        for name, count in sorted(categories.items()))
    print(f"validate_trace: OK: {len(events)} spans ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
