#!/usr/bin/env python3
"""Validate the documentation tree's links and repo-path references.

Usage:
  python3 ci/validate_docs.py [--root DIR]    # check README.md + docs/*.md
  python3 ci/validate_docs.py --self-test     # prove the checker can fail

Two classes of checks over README.md and every docs/*.md file:

  * relative markdown links — `[text](target)` where the target is not a
    URL or a pure in-page anchor must resolve to an existing file or
    directory relative to the referencing document (a `#fragment` suffix
    is stripped first; fragments themselves are not resolved);
  * backtick repo paths — inline code spans that name a path under one of
    the source roots (src/, tests/, docs/, ci/, bench/, examples/,
    tools/) must exist, so prose like `src/mips/block_cache.hpp` cannot
    silently rot when a file moves.  One level of brace expansion is
    supported (`block_cache.{hpp,cpp}` checks both expansions), and spans
    containing wildcard/placeholder characters (* ? < >) are skipped.

The docs describe files more often than code does, and nothing else in CI
notices when a rename orphans them — this is the docs' analogue of the
trace/metrics validators next to it.

--self-test builds a throwaway tree containing one broken link and one
broken backtick path and verifies the checker FAILS it (and passes the
fixed version).  CI runs the self-test first: a validator that cannot
fail validates nothing.
"""
import argparse
import os
import re
import sys
import tempfile

# Inline code span naming a repo path: starts at a known source root and
# has at least one more component.
PATH_ROOTS = ("src/", "tests/", "docs/", "ci/", "bench/", "examples/",
              "tools/")
CODE_SPAN = re.compile(r"`([^`\n]+)`")
# [text](target) — tolerates one level of nested brackets in the text
# (image links in tables) and stops the target at the first unescaped ')'.
MD_LINK = re.compile(r"\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")
WILDCARDS = set("*?<>$")


def expand_braces(path):
    """One level of {a,b,c} expansion; returns [path] when there is none."""
    match = re.search(r"\{([^{}]+)\}", path)
    if not match or "," not in match.group(1):
        return [path]
    head, tail = path[:match.start()], path[match.end():]
    return [head + option + tail for option in match.group(1).split(",")]


def check_file(md_path, root):
    """Returns a list of 'file:line: message' problem strings."""
    problems = []
    base_dir = os.path.dirname(md_path)
    with open(md_path, encoding="utf-8") as handle:
        in_fence = False
        for lineno, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue  # code blocks show commands/output, not references

            for match in MD_LINK.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                resolved = os.path.normpath(
                    os.path.join(base_dir, target.split("#", 1)[0]))
                if not os.path.exists(resolved):
                    problems.append(
                        f"{os.path.relpath(md_path, root)}:{lineno}: broken "
                        f"relative link '{target}' (resolved to "
                        f"'{os.path.relpath(resolved, root)}')")

            for match in CODE_SPAN.finditer(line):
                span = match.group(1).strip()
                if not span.startswith(PATH_ROOTS) or "/" not in span:
                    continue
                if WILDCARDS & set(span) or " " in span:
                    continue
                # Trim trailing punctuation prose drags into the span and
                # any :line suffix (`src/foo.cpp:42` references a line).
                span = span.rstrip(".,;:").split(":", 1)[0]
                for candidate in expand_braces(span):
                    resolved = os.path.join(root, candidate)
                    if not os.path.exists(resolved):
                        problems.append(
                            f"{os.path.relpath(md_path, root)}:{lineno}: "
                            f"backtick path `{candidate}` does not exist")
    return problems


def run_checks(root):
    docs = [os.path.join(root, "README.md")]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        docs.extend(
            os.path.join(docs_dir, name)
            for name in sorted(os.listdir(docs_dir)) if name.endswith(".md"))
    docs = [path for path in docs if os.path.isfile(path)]
    if not docs:
        print(f"validate_docs: FAIL: no markdown files under {root}")
        return 1

    problems = []
    checked = 0
    for path in docs:
        checked += 1
        problems.extend(check_file(path, root))

    for problem in problems:
        print(f"validate_docs: {problem}")
    if problems:
        print(f"validate_docs: FAIL: {len(problems)} problem(s) in "
              f"{checked} file(s)")
        return 1
    print(f"validate_docs: OK: {checked} file(s), no broken links or paths")
    return 0


def self_test():
    """The checker must fail a planted broken tree and pass the fixed one."""
    with tempfile.TemporaryDirectory(prefix="validate-docs-") as root:
        os.makedirs(os.path.join(root, "docs"))
        os.makedirs(os.path.join(root, "src"))
        with open(os.path.join(root, "src", "real.hpp"), "w",
                  encoding="utf-8") as handle:
            handle.write("// present\n")
        with open(os.path.join(root, "README.md"), "w",
                  encoding="utf-8") as handle:
            handle.write("# T\n\nSee [the guide](docs/GONE.md) and "
                         "`src/missing.cpp` and `src/real.hpp`.\n")
        with open(os.path.join(root, "docs", "GOOD.md"), "w",
                  encoding="utf-8") as handle:
            handle.write("[up](../README.md) and `src/real.hpp` and a "
                         "[url](https://example.com) and [anchor](#x).\n"
                         "```\nsrc/inside_fence_not_checked.xyz\n```\n")
        if run_checks(root) == 0:
            print("validate_docs: SELF-TEST FAIL: broken tree passed")
            return 1

        # Fix both plants; everything must now pass (fences, URLs and
        # anchors were never flagged).
        with open(os.path.join(root, "README.md"), "w",
                  encoding="utf-8") as handle:
            handle.write("# T\n\nSee [the guide](docs/GOOD.md) and "
                         "`src/real.hpp`.\n")
        if run_checks(root) != 0:
            print("validate_docs: SELF-TEST FAIL: clean tree flagged")
            return 1
    print("validate_docs: self-test OK (fails broken trees, passes clean)")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker fails a planted broken tree")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_checks(os.path.abspath(args.root))


if __name__ == "__main__":
    sys.exit(main())
