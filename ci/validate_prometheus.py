#!/usr/bin/env python3
"""Strict validator for the daemon's Prometheus text exposition (/metrics).

Usage:
  python3 ci/validate_prometheus.py METRICS.txt [--require name,name,...]

Checks (non-zero exit on the first failure):

  * every line is a comment (# HELP / # TYPE), blank, or a sample with a
    spec-valid metric name ([a-zA-Z_:][a-zA-Z0-9_:]*), optional label set,
    and a parseable value;
  * each metric family has exactly one # TYPE line, and it appears before
    the family's first sample (type: counter | gauge | histogram);
  * no duplicate series (same name + label set twice);
  * every histogram family is internally consistent: its _bucket series
    carry an `le` label, the cumulative counts are monotonically
    non-decreasing in ascending bound order, an le="+Inf" bucket exists,
    `_count` equals the +Inf bucket, and `_sum` is present — exactly what a
    real Prometheus scraper needs for quantile math;
  * counters and gauges are finite numbers (no NaN leaking into a scrape);
  * every --require'd family name appears (default: the serve daemon's
    core vocabulary, '' disables).

The obs registry renders metrics from dotted names ('serve.requests' ->
'serve_requests'); this validator checks the rendered form only, so it also
works on any other conforming exposition.
"""
import argparse
import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
# Families the serve daemon always exposes.  (The obs_trace_dropped /
# obs_flight_wrapped counters are created lazily on the first wrap, so a
# healthy scrape legitimately omits them.)
DEFAULT_REQUIRE = "serve_requests,serve_http_requests,serve_connections"


def fail(message):
    print(f"validate_prometheus: FAIL: {message}")
    return 1


def parse_labels(text):
    """'a="x",b="y"' -> {a: x, b: y}, or None when malformed."""
    if not text:
        return {}
    labels = {}
    for part in text.split(","):
        match = LABEL_RE.match(part.strip())
        if match is None:
            return None
        labels[match.group(1)] = match.group(2)
    return labels


def base_family(name):
    """Histogram series share a family: name_bucket/_sum/_count -> name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("metrics", help="scraped /metrics text file")
    parser.add_argument("--require", default=DEFAULT_REQUIRE,
                        help="comma-separated family names that must appear "
                             f"(default: {DEFAULT_REQUIRE}; '' disables)")
    args = parser.parse_args()

    try:
        with open(args.metrics, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        return fail(f"cannot read {args.metrics}: {error}")
    if not lines:
        return fail("empty exposition")

    types = {}           # family -> declared type
    samples = []         # (family, name, labels-dict, value)
    seen_series = set()  # (name, sorted-label-tuple)

    for index, line in enumerate(lines, start=1):
        where = f"line {index}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                return fail(f"{where}: unknown comment form: {line!r}")
            if parts[1] == "TYPE":
                name, kind = parts[2], parts[3] if len(parts) > 3 else ""
                if not NAME_RE.match(name):
                    return fail(f"{where}: invalid metric name {name!r}")
                if kind not in ("counter", "gauge", "histogram"):
                    return fail(f"{where}: invalid type {kind!r} for {name}")
                if name in types:
                    return fail(f"{where}: duplicate # TYPE for {name}")
                types[name] = kind
            continue
        match = SAMPLE_RE.match(line)
        if match is None:
            return fail(f"{where}: not a valid sample: {line!r}")
        name = match.group("name")
        labels = parse_labels(match.group("labels") or "")
        if labels is None:
            return fail(f"{where}: malformed labels: {line!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            return fail(f"{where}: unparseable value: {line!r}")
        family = base_family(name)
        if family not in types and name in types:
            family = name  # e.g. a counter literally named foo_count
        if family not in types:
            return fail(f"{where}: sample {name!r} has no preceding # TYPE")
        declared = types[family]
        if declared in ("counter", "gauge") and name != family:
            return fail(f"{where}: {declared} family {family!r} has a "
                        f"suffixed sample {name!r}")
        if declared == "histogram" and name == family:
            return fail(f"{where}: histogram {family!r} must expose "
                        "_bucket/_sum/_count series, not a bare sample")
        if math.isnan(value) or math.isinf(value):
            # Only the le LABEL may be +Inf; sample values are counts.
            return fail(f"{where}: non-finite value in {line!r}")
        series = (name, tuple(sorted(labels.items())))
        if series in seen_series:
            return fail(f"{where}: duplicate series {line!r}")
        seen_series.add(series)
        samples.append((family, name, labels, value))

    # Histogram families: cumulative buckets, +Inf, _sum/_count agreement.
    for family, kind in sorted(types.items()):
        if kind != "histogram":
            continue
        buckets = []
        sums = []
        counts = []
        for sample_family, name, labels, value in samples:
            if sample_family != family:
                continue
            if name == family + "_bucket":
                if "le" not in labels:
                    return fail(f"{family}: bucket without an le label")
                try:
                    bound = float(labels["le"])
                except ValueError:
                    return fail(f"{family}: unparseable le={labels['le']!r}")
                buckets.append((bound, value))
            elif name == family + "_sum":
                sums.append(value)
            elif name == family + "_count":
                counts.append(value)
        if not buckets:
            return fail(f"histogram {family} has no _bucket series")
        if len(sums) != 1 or len(counts) != 1:
            return fail(f"histogram {family} needs exactly one _sum and one "
                        f"_count (got {len(sums)}/{len(counts)})")
        buckets.sort(key=lambda pair: pair[0])
        if not math.isinf(buckets[-1][0]):
            return fail(f"histogram {family} is missing the +Inf bucket")
        previous = -1.0
        for bound, value in buckets:
            if value < previous:
                return fail(f"histogram {family}: cumulative count drops at "
                            f"le={bound} ({value} < {previous})")
            previous = value
        if counts[0] != buckets[-1][1]:
            return fail(f"histogram {family}: _count {counts[0]} != +Inf "
                        f"bucket {buckets[-1][1]}")

    required = [name for name in args.require.split(",") if name]
    present = {family for family, _, _, _ in samples}
    missing = [name for name in required if name not in present]
    if missing:
        return fail(f"required families missing: {', '.join(missing)}")

    histograms = sum(1 for kind in types.values() if kind == "histogram")
    print(f"validate_prometheus: OK: {len(samples)} samples, "
          f"{len(types)} families ({histograms} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
