// Simulator halt paths end-to-end: binaries that exhaust the instruction
// budget (HaltReason::kMaxInstructions) or fault (HaltReason::kFault) must
// surface as clean Result errors from every flow entry point — RunFlow,
// Toolchain::Run, Toolchain::RunMany, and RunDynamic — never as partial or
// garbage estimates.
#include <gtest/gtest.h>

#include <memory>

#include "mips/assembler.hpp"
#include "mips/simulator.hpp"
#include "partition/flow.hpp"
#include "toolchain/toolchain.hpp"

namespace b2h {
namespace {

std::shared_ptr<const mips::SoftBinary> InfiniteLoopBinary() {
  auto assembled = mips::Assemble(R"(
    main:
      li $t0, 0
    loop:
      addiu $t0, $t0, 1
      j loop
  )");
  Check(assembled.ok(), "assemble failed");
  return std::make_shared<const mips::SoftBinary>(std::move(assembled).take());
}

std::shared_ptr<const mips::SoftBinary> FaultingBinary() {
  // Runs a short loop, then stores to an unmapped address.
  auto assembled = mips::Assemble(R"(
    main:
      li $t0, 8
      li $v0, 0
    loop:
      addiu $v0, $v0, 3
      addiu $t0, $t0, -1
      bgtz $t0, loop
      sw $v0, 0($zero)
      jr $ra
  )");
  Check(assembled.ok(), "assemble failed");
  return std::make_shared<const mips::SoftBinary>(std::move(assembled).take());
}

TEST(HaltPaths, SimulatorReportsBudgetAndFault) {
  {
    // The simulator references the binary; keep it alive past the call.
    const auto binary = InfiniteLoopBinary();
    mips::Simulator sim(*binary);
    const auto run = sim.Run({}, 10'000);
    EXPECT_EQ(run.reason, mips::HaltReason::kMaxInstructions);
    EXPECT_EQ(run.instructions, 10'000u);
    EXPECT_EQ(run.profile.total_instructions, 10'000u);
  }
  {
    const auto binary = FaultingBinary();
    mips::Simulator sim(*binary);
    const auto run = sim.Run();
    EXPECT_EQ(run.reason, mips::HaltReason::kFault);
    EXPECT_NE(run.fault_message.find("store outside memory"),
              std::string::npos)
        << run.fault_message;
    // The profile is consistent up to the fault.
    EXPECT_EQ(run.profile.total_instructions, run.instructions);
  }
}

TEST(HaltPaths, RunFlowPropagatesBudgetExhaustion) {
  partition::FlowOptions options;
  options.max_sim_instructions = 5'000;
  auto result = partition::RunFlow(InfiniteLoopBinary(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind(), ErrorKind::kMalformedBinary);
  EXPECT_NE(result.status().message().find("did not complete"),
            std::string::npos)
      << result.status().message();
}

TEST(HaltPaths, RunFlowPropagatesFault) {
  auto result = partition::RunFlow(FaultingBinary());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind(), ErrorKind::kMalformedBinary);
  EXPECT_NE(result.status().message().find("fault"), std::string::npos)
      << result.status().message();
}

TEST(HaltPaths, ToolchainRunPropagatesBothHaltReasons) {
  Toolchain budgeted;
  budgeted.WithMaxSimInstructions(5'000);
  auto exhausted = budgeted.Run(InfiniteLoopBinary(), "spin");
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().kind(), ErrorKind::kMalformedBinary);

  Toolchain toolchain;
  auto faulted = toolchain.Run(FaultingBinary(), "faulty");
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().kind(), ErrorKind::kMalformedBinary);
}

TEST(HaltPaths, RunManyIsolatesBadBinariesPerSlot) {
  // A batch mixing a good binary, a faulting one, and a budget-buster:
  // exactly the bad slots error; the good one still partitions.
  auto good = mips::Assemble(R"(
    main:
      li $t0, 200
      li $v0, 0
    loop:
      addiu $v0, $v0, 2
      addiu $t0, $t0, -1
      bgtz $t0, loop
      jr $ra
  )");
  ASSERT_TRUE(good.ok());
  std::vector<NamedBinary> binaries = {
      {"good",
       std::make_shared<const mips::SoftBinary>(std::move(good).take())},
      {"faulty", FaultingBinary()},
      {"spin", InfiniteLoopBinary()},
      {"null", nullptr},
  };
  Toolchain toolchain;
  toolchain.WithMaxSimInstructions(100'000);
  const BatchResult batch =
      toolchain.RunMany(binaries, {"mips200-xc2v1000", "mips400"});
  ASSERT_EQ(batch.runs.size(), 8u);
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(batch.At(0, p).ok()) << batch.At(0, p).status().message();
    // Clean estimates, not garbage: finite positive times and speedup.
    EXPECT_GT(batch.At(0, p).value().estimate.speedup, 0.0);
    EXPECT_GT(batch.At(0, p).value().estimate.sw_time, 0.0);
    EXPECT_GT(batch.At(0, p).value().estimate.partitioned_time, 0.0);

    EXPECT_FALSE(batch.At(1, p).ok());
    EXPECT_EQ(batch.At(1, p).status().kind(), ErrorKind::kMalformedBinary);
    EXPECT_FALSE(batch.At(2, p).ok());
    EXPECT_NE(batch.At(2, p).status().message().find("did not complete"),
              std::string::npos);
    EXPECT_FALSE(batch.At(3, p).ok());
  }
}

TEST(HaltPaths, DynamicFrontDoorPropagatesBudgetExhaustion) {
  Toolchain toolchain;
  toolchain.WithMaxSimInstructions(5'000);
  auto result = toolchain.RunDynamic(InfiniteLoopBinary(), "spin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().kind(), ErrorKind::kMalformedBinary);
}

}  // namespace
}  // namespace b2h
