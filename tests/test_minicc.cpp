// MiniC compiler tests: language features across all optimization levels
// (compile + execute on the MIPS simulator), AST-level optimizations, and
// front-end diagnostics.
#include "minicc/codegen.hpp"

#include <gtest/gtest.h>

#include "minicc/parser.hpp"
#include "mips/simulator.hpp"

namespace b2h::minicc {
namespace {

std::int32_t CompileAndRun(const std::string& source, int opt_level) {
  CompileOptions options;
  options.opt_level = opt_level;
  auto compiled = Compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().message();
  if (!compiled.ok()) return INT32_MIN;
  mips::Simulator sim(compiled.value().binary);
  const auto run = sim.Run();
  EXPECT_EQ(run.reason, mips::HaltReason::kReturned) << run.fault_message;
  return run.return_value;
}

/// Each language feature is checked at every -O level.
struct LangCase {
  const char* name;
  const char* source;
  std::int32_t expected;
};

class LanguageFeatures
    : public ::testing::TestWithParam<std::tuple<LangCase, int>> {};

TEST_P(LanguageFeatures, CompilesAndRuns) {
  const auto& [test_case, level] = GetParam();
  EXPECT_EQ(CompileAndRun(test_case.source, level), test_case.expected)
      << test_case.name << " at -O" << level;
}

constexpr LangCase kLangCases[] = {
    {"return_const", "int main() { return 42; }", 42},
    {"arith", "int main() { return (3 + 4 * 5 - 6) / 2; }", 8},
    {"modulo", "int main() { return 17 % 5; }", 2},
    {"negative_div", "int main() { int a = -17; return a / 5; }", -3},
    {"negative_rem", "int main() { int a = -17; return a % 5; }", -2},
    {"shifts", "int main() { int a = -64; return (a >> 3) + (1 << 10); }",
     1016},
    {"bitops",
     "int main() { return (0xF0 & 0x3C) | (0x0F ^ 0x05); }", 0x3A},
    {"comparisons",
     "int main() { int a = 3; int b = 7;"
     " return (a < b) + (a <= b) + (a > b) * 10 + (a >= b) * 10"
     " + (a == 3) + (b != 3); }",
     4},
    {"unary", "int main() { int x = 5; return -x + !0 + !7 + ~0; }", -5},
    {"logical_and_short",
     "int g = 0;"
     "int set() { g = 1; return 1; }"
     "int main() { int r = 0 && set(); return r * 10 + g; }",
     0},
    {"logical_or_short",
     "int g = 0;"
     "int set() { g = 1; return 1; }"
     "int main() { int r = 1 || set(); return r * 10 + g; }",
     10},
    {"logical_values",
     "int main() { return (3 && 5) + (0 || 7) * 2 + (0 && 9) * 100; }", 3},
    {"if_else",
     "int main() { int x = 10; if (x > 5) { return 1; } else { return 2; } }",
     1},
    {"nested_if",
     "int main() { int x = 4; int r = 0;"
     " if (x > 0) { if (x > 10) { r = 1; } else { r = 2; } }"
     " return r; }",
     2},
    {"while_loop",
     "int main() { int i = 0; int s = 0;"
     " while (i < 10) { s = s + i; i = i + 1; } return s; }",
     45},
    {"for_loop",
     "int main() { int s = 0; int i;"
     " for (i = 0; i < 16; i = i + 1) { s = s + i * i; } return s; }",
     1240},
    {"nested_loops",
     "int main() { int s = 0; int i; int j;"
     " for (i = 0; i < 8; i = i + 1) {"
     "   for (j = 0; j < 8; j = j + 1) { s = s + 1; } }"
     " return s; }",
     64},
    {"global_scalar",
     "int counter = 5;"
     "int main() { counter = counter + 10; return counter; }",
     15},
    {"global_array",
     "int arr[8] = {1, 2, 3};"
     "int main() { arr[5] = 50; return arr[0] + arr[2] + arr[5] + arr[7]; }",
     54},
    {"byte_array",
     "byte buf[16];"
     "int main() { buf[3] = 300; return buf[3]; }",  // 300 & 255 = 44
     44},
    {"function_call",
     "int add3(int a, int b, int c) { return a + b + c; }"
     "int main() { return add3(1, 2, 3) + add3(10, 20, 30); }",
     66},
    {"four_args",
     "int f(int a, int b, int c, int d) { return a * 1000 + b * 100"
     " + c * 10 + d; }"
     "int main() { return f(1, 2, 3, 4); }",
     1234},
    {"array_param",
     "int data[4] = {5, 6, 7, 8};"
     "int sum(int a[], int n) { int s = 0; int i;"
     " for (i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }"
     "int main() { return sum(data, 4); }",
     26},
    {"byte_array_param",
     "byte data[4] = {200, 100, 50, 25};"
     "int first(byte a[]) { return a[0]; }"
     "int main() { return first(data); }",
     200},
    {"nested_calls",
     "int inc(int x) { return x + 1; }"
     "int main() { return inc(inc(inc(0))); }",
     3},
    {"call_in_expression",
     "int five() { return 5; }"
     "int main() { return five() * five() + five(); }",
     30},
    {"early_return",
     "int f(int x) { if (x < 0) { return -1; } return 1; }"
     "int main() { return f(-5) + f(5) * 10; }",
     9},
    {"hex_literals", "int main() { return 0x10 + 0xFF; }", 271},
    {"comments",
     "// line comment\n"
     "int main() { /* block */ return 5; // end\n }",
     5},
    {"mul_by_13", "int main() { int x = 9; return x * 13; }", 117},
    {"mul_by_pow2", "int main() { int x = 9; return x * 16; }", 144},
    {"mul_by_neg", "int main() { int x = 9; return x * -3; }", -27},
    {"div_pow2_negative", "int main() { int x = -100; return x / 4; }", -25},
    {"rem_pow2_negative", "int main() { int x = -100; return x % 8; }", -4},
    {"deep_expression",
     "int main() { int a = 1; return ((a + 2) * (a + 3) + (a + 4))"
     " * ((a + 5) - (a + 1)); }",
     68},
};

INSTANTIATE_TEST_SUITE_P(
    AllLevels, LanguageFeatures,
    ::testing::Combine(::testing::ValuesIn(kLangCases),
                       ::testing::Range(0, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_O" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MiniccParser, Diagnostics) {
  EXPECT_FALSE(Parse("int main() { return }").ok());
  EXPECT_FALSE(Parse("int main() { int; }").ok());
  EXPECT_FALSE(Parse("int main() { x = ; }").ok());
  EXPECT_FALSE(Parse("int f() { return 0; }").ok());  // missing main
  EXPECT_FALSE(Parse("byte x; int main() { return 0; }").ok());
  EXPECT_FALSE(
      Parse("int f(int a, int b, int c, int d, int e) { return 0; }"
            "int main() { return 0; }")
          .ok());
  const auto status = Parse("int main() { @ }").status();
  EXPECT_EQ(status.kind(), ErrorKind::kParse);
}

TEST(MiniccParser, LineNumbersInErrors) {
  const auto status = Parse("int main() {\n\n  return $;\n}").status();
  EXPECT_NE(status.message().find(":3"), std::string::npos)
      << status.message();
}

TEST(MiniccCodegen, OptLevelsShrinkCycles) {
  const char* source =
      "int a[32];"
      "int main() { int i; int s = 0;"
      " for (i = 0; i < 32; i = i + 1) { a[i] = i * 3; }"
      " for (i = 0; i < 32; i = i + 1) { s = s + a[i]; }"
      " return s; }";
  std::uint64_t cycles[4];
  for (int level = 0; level < 4; ++level) {
    CompileOptions options;
    options.opt_level = level;
    auto compiled = Compile(source, options);
    ASSERT_TRUE(compiled.ok());
    mips::Simulator sim(compiled.value().binary);
    const auto run = sim.Run();
    ASSERT_EQ(run.return_value, 1488);
    cycles[level] = run.cycles;
  }
  EXPECT_LT(cycles[1], cycles[0]);  // register allocation pays
  EXPECT_LE(cycles[2], cycles[1]);
  EXPECT_LT(cycles[3], cycles[2]);  // unrolling removes loop overhead
}

TEST(MiniccCodegen, UnrollingPreservesOddTripCounts) {
  // Trip count 13 is not divisible by 4 or 2: the unroller must skip it.
  const char* source =
      "int main() { int i; int s = 0;"
      " for (i = 0; i < 13; i = i + 1) { s = s + i; } return s; }";
  EXPECT_EQ(CompileAndRun(source, 3), 78);
}

TEST(MiniccCodegen, UnrollingFallsBackToFactorTwo) {
  // Trip count 6: not a multiple of 4, so the unroller drops to factor 2.
  const char* source =
      "int a[6];"
      "int main() { int i; int s = 0;"
      " for (i = 0; i < 6; i = i + 1) { a[i] = i * 5; }"
      " for (i = 0; i < 6; i = i + 1) { s = s + a[i]; } return s; }";
  CompileOptions o3;
  o3.opt_level = 3;
  auto unrolled = Compile(source, o3);
  ASSERT_TRUE(unrolled.ok());
  CompileOptions o2;
  o2.opt_level = 2;
  auto rolled = Compile(source, o2);
  ASSERT_TRUE(rolled.ok());
  // Factor-2 unrolling duplicated the bodies: more instructions than -O2.
  EXPECT_GT(unrolled.value().binary.text.size(),
            rolled.value().binary.text.size());
  mips::Simulator sim(unrolled.value().binary);
  EXPECT_EQ(sim.Run().return_value, 75);
}

TEST(MiniccCodegen, UnrollingSkipsLoopsWithInnerLoops) {
  const char* source =
      "int main() { int i; int j; int s = 0;"
      " for (i = 0; i < 4; i = i + 1) {"
      "   for (j = 0; j < 4; j = j + 1) { s = s + 1; } }"
      " return s; }";
  EXPECT_EQ(CompileAndRun(source, 3), 16);
}

TEST(MiniccCodegen, StackTrafficAtO0) {
  const char* source =
      "int main() { int a = 1; int b = 2; int c = 3; return a + b + c; }";
  CompileOptions o0;
  o0.opt_level = 0;
  auto at_o0 = Compile(source, o0);
  ASSERT_TRUE(at_o0.ok());
  // -O0 spills every local: expect sw/lw traffic in the assembly text.
  const std::string& asm_text = at_o0.value().assembly;
  EXPECT_NE(asm_text.find("sw $t"), std::string::npos);
  EXPECT_NE(asm_text.find("lw $t"), std::string::npos);

  // On a loop, register allocation clearly wins dynamically (the static
  // size can go either way because of the callee-saved prologue).
  const char* loop_source =
      "int main() { int i; int s = 0;"
      " for (i = 0; i < 100; i = i + 1) { s = s + i; } return s; }";
  std::uint64_t cycles[2];
  for (int level = 0; level < 2; ++level) {
    CompileOptions options;
    options.opt_level = level;
    auto compiled = Compile(loop_source, options);
    ASSERT_TRUE(compiled.ok());
    mips::Simulator sim(compiled.value().binary);
    const auto run = sim.Run();
    ASSERT_EQ(run.return_value, 4950);
    cycles[level] = run.cycles;
  }
  // O0's per-access lw/sw costs at least ~40% extra over the loop.
  EXPECT_LT(cycles[1] * 14, cycles[0] * 10);
}

TEST(MiniccCodegen, StrengthReductionAtO2) {
  const char* source = "int main() { int x = 7; return x * 10; }";
  CompileOptions o2;
  o2.opt_level = 2;
  auto compiled = Compile(source, o2);
  ASSERT_TRUE(compiled.ok());
  // x*10 = (x<<3)+(x<<1): no mult instruction.
  EXPECT_EQ(compiled.value().assembly.find("mult"), std::string::npos);
  mips::Simulator sim(compiled.value().binary);
  EXPECT_EQ(sim.Run().return_value, 70);

  CompileOptions o1;
  o1.opt_level = 1;
  auto baseline = Compile(source, o1);
  ASSERT_TRUE(baseline.ok());
  EXPECT_NE(baseline.value().assembly.find("mult"), std::string::npos);
}

TEST(MiniccCodegen, ConstantFoldingAtO1) {
  const char* source = "int main() { return 2 * 3 + 4 * 5; }";
  CompileOptions o1;
  o1.opt_level = 1;
  auto compiled = Compile(source, o1);
  ASSERT_TRUE(compiled.ok());
  // Whole expression folds to 26: single li.
  EXPECT_EQ(compiled.value().assembly.find("mult"), std::string::npos);
  EXPECT_NE(compiled.value().assembly.find("li $t0, 26"), std::string::npos);
}

TEST(MiniccCodegen, CallSpillsPreserveTemps) {
  // f(1) + f(2) + f(3): intermediate sums live across calls.
  const char* source =
      "int f(int x) { return x * 2; }"
      "int main() { return f(1) + f(2) + f(3); }";
  for (int level = 0; level < 4; ++level) {
    EXPECT_EQ(CompileAndRun(source, level), 12) << "level " << level;
  }
}

TEST(MiniccCodegen, RotatedLoopsAtO1) {
  const char* source =
      "int main() { int i; int s = 0;"
      " for (i = 0; i < 4; i = i + 1) { s = s + 2; } return s; }";
  CompileOptions options;
  options.opt_level = 1;
  auto compiled = Compile(source, options);
  ASSERT_TRUE(compiled.ok());
  // Rotated form: conditional branch backwards at the loop bottom.
  EXPECT_NE(compiled.value().assembly.find("bne $t9, $zero, main_loop"),
            std::string::npos)
      << compiled.value().assembly;
}

}  // namespace
}  // namespace b2h::minicc
