// Shared test-only helpers (not globbed as a test binary: CMake only picks
// up tests/test_*.cpp).
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

namespace b2h::testing_support {

/// mkdtemp-backed scratch directory, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    std::string templ =
        (std::filesystem::temp_directory_path() / "b2h-test-XXXXXX").string();
    std::vector<char> buffer(templ.begin(), templ.end());
    buffer.push_back('\0');
    const char* made = mkdtemp(buffer.data());
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Pins an environment variable (nullptr = unset) and restores the
/// original on destruction — even when an ASSERT aborts the scope — so
/// process-global state never leaks between tests.  Construct one at
/// namespace scope to pin a variable for a whole test binary (e.g.
/// B2H_CACHE_DIR, which the Toolchain default constructor reads: an
/// exported value would otherwise make every sweep disk-warm and flip
/// work-counter assertions).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_value_ = old != nullptr;
    if (had_value_) saved_ = old;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

}  // namespace b2h::testing_support
