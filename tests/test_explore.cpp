// Exploration-engine tests: strategy registry completeness, paper-greedy
// parity with the legacy PartitionProgram entry point (bit-identical
// PartitionResult), knapsack-optimal dominance over the paper heuristic on
// every decompilable benchmark, Pareto-frontier invariants, artifact-cache
// determinism (a warm identical sweep performs zero decompilations and
// reports identically), parallel == serial reports, and annealing
// determinism under a fixed seed.
#include "explore/explorer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "partition/candidates.hpp"
#include "partition/strategy.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "testing_support.hpp"
#include "toolchain/toolchain.hpp"

namespace b2h {
namespace {

using explore::ExploreResult;
using explore::ExploreSpec;
using explore::ParetoFrontier;
using explore::ParetoMetrics;
using partition::Objective;

std::shared_ptr<const mips::SoftBinary> BuildBench(const std::string& name) {
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  EXPECT_NE(bench, nullptr) << name;
  auto binary = suite::BuildBinary(*bench, 1);
  EXPECT_TRUE(binary.ok()) << binary.status().message();
  return std::make_shared<const mips::SoftBinary>(std::move(binary).take());
}

std::vector<NamedBinary> AllWorkingBinaries() {
  std::vector<NamedBinary> binaries;
  for (const suite::Benchmark* bench : suite::WorkingBenchmarks()) {
    binaries.push_back({bench->name, BuildBench(bench->name)});
  }
  return binaries;
}

const std::vector<std::string> kPaperPlatforms = {"mips40", "mips200-xc2v1000",
                                                  "mips400"};
const std::vector<std::string> kAllStrategies = {"paper-greedy",
                                                 "knapsack-optimal",
                                                 "annealing"};

using testing_support::ScopedEnv;
using TempCacheDir = testing_support::TempDir;

// Hermetic for the whole binary: Toolchain's default constructor reads
// B2H_CACHE_DIR, so a developer's exported cache dir would make every
// "cold" sweep disk-warm and flip the work-counter assertions below.  The
// env-override test re-sets the variable within its own scope.
const ScopedEnv kPinnedCacheDirEnv("B2H_CACHE_DIR", nullptr);

void ExpectIdenticalPartitions(const partition::PartitionResult& a,
                               const partition::PartitionResult& b) {
  ASSERT_EQ(a.hw.size(), b.hw.size());
  for (std::size_t i = 0; i < a.hw.size(); ++i) {
    const auto& ra = a.hw[i];
    const auto& rb = b.hw[i];
    EXPECT_EQ(ra.synthesized.region.name, rb.synthesized.region.name) << i;
    EXPECT_EQ(ra.selected_by, rb.selected_by) << i;
    EXPECT_EQ(ra.sw_cycles, rb.sw_cycles) << i;
    EXPECT_EQ(ra.invocations, rb.invocations) << i;
    EXPECT_EQ(ra.comm_words, rb.comm_words) << i;
    EXPECT_EQ(ra.mem_accesses, rb.mem_accesses) << i;
    EXPECT_EQ(ra.arrays_resident, rb.arrays_resident) << i;
    EXPECT_EQ(ra.alias_regions, rb.alias_regions) << i;
    EXPECT_EQ(ra.synthesized.hw_cycles, rb.synthesized.hw_cycles) << i;
    EXPECT_EQ(ra.synthesized.clock_mhz, rb.synthesized.clock_mhz) << i;
    EXPECT_EQ(ra.synthesized.area.total_gates, rb.synthesized.area.total_gates)
        << i;
    EXPECT_EQ(ra.synthesized.vhdl, rb.synthesized.vhdl) << i;
  }
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.area_used_gates, b.area_used_gates);
  EXPECT_EQ(a.area_budget_gates, b.area_budget_gates);
  EXPECT_EQ(a.total_sw_cycles, b.total_sw_cycles);
  EXPECT_EQ(a.loop_coverage, b.loop_coverage);
}

TEST(StrategyRegistry, BuiltinsRegistered) {
  const auto names = partition::StrategyRegistry::Global().Names();
  for (const char* expected :
       {"paper-greedy", "knapsack-optimal", "annealing"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    EXPECT_NE(partition::StrategyRegistry::Global().Create(expected), nullptr)
        << expected;
  }
  EXPECT_EQ(partition::StrategyRegistry::Global().Create("no-such-strategy"),
            nullptr);
}

TEST(StrategyRegistry, PaperGreedyIsObjectiveInsensitive) {
  const auto greedy = partition::MakePaperGreedyStrategy();
  EXPECT_FALSE(greedy->objective_sensitive());
  EXPECT_TRUE(partition::MakeKnapsackStrategy()->objective_sensitive());
  EXPECT_TRUE(partition::MakeAnnealingStrategy()->objective_sensitive());
}

// The "paper-greedy" strategy and the legacy PartitionProgram entry point
// must produce bit-identical PartitionResults (same selections, same
// rejection log, same metrics) — the strategy extraction is a pure
// refactor of the paper's algorithm.
TEST(Strategy, PaperGreedyParityWithPartitionProgram) {
  for (const char* name : {"fir", "crc", "brev", "autcor00"}) {
    auto flow = partition::RunFlow(BuildBench(name));
    ASSERT_TRUE(flow.ok()) << name;
    const auto& program = *flow.value().program;
    const auto& profile = flow.value().software_run.profile;
    const partition::Platform platform;

    const auto strategy =
        partition::StrategyRegistry::Global().Create("paper-greedy");
    ASSERT_NE(strategy, nullptr);
    auto result = strategy->Partition(program, profile, platform, {}, {});
    ASSERT_TRUE(result.ok()) << name;
    ExpectIdenticalPartitions(result.value(), flow.value().partition);
  }
}

// Acceptance criterion: a full {18 benchmarks} x {3 platforms} x
// {3 strategies} sweep where knapsack-optimal beats or matches paper-greedy
// on every (benchmark, platform) point, the cache-warm repeat performs zero
// simulations/decompilations/partitions and reports identically, and
// annealing never falls below greedy either (it refines the greedy start).
TEST(Explore, FullSweepKnapsackDominatesGreedyAndCacheWarmRepeatIsFree) {
  ExploreSpec spec;
  spec.binaries = AllWorkingBinaries();
  spec.platforms = kPaperPlatforms;
  spec.strategies = kAllStrategies;
  spec.objectives = {Objective::kSpeedup};

  Toolchain toolchain;
  const ExploreResult cold = toolchain.Explore(spec);
  ASSERT_EQ(cold.points.size(), spec.binaries.size() * 3 * 3);
  EXPECT_EQ(cold.decompilations_run, spec.binaries.size());
  EXPECT_EQ(cold.simulations_run, spec.binaries.size());

  for (std::size_t b = 0; b < spec.binaries.size(); ++b) {
    for (std::size_t p = 0; p < kPaperPlatforms.size(); ++p) {
      const auto& greedy = cold.At(b, p, 0, 0);
      const auto& optimal = cold.At(b, p, 1, 0);
      const auto& annealed = cold.At(b, p, 2, 0);
      ASSERT_TRUE(greedy.status.ok())
          << spec.binaries[b].name << ": " << greedy.status.message();
      ASSERT_TRUE(optimal.status.ok())
          << spec.binaries[b].name << ": " << optimal.status.message();
      ASSERT_TRUE(annealed.status.ok())
          << spec.binaries[b].name << ": " << annealed.status.message();
      EXPECT_GE(optimal.speedup, greedy.speedup - 1e-12)
          << spec.binaries[b].name << " on " << kPaperPlatforms[p];
      EXPECT_GE(annealed.speedup, greedy.speedup - 1e-12)
          << spec.binaries[b].name << " on " << kPaperPlatforms[p];
    }
  }

  // Cache-warm repeat: all artifacts served from the cache, report
  // bit-identical.
  const ExploreResult warm = toolchain.Explore(spec);
  EXPECT_EQ(warm.simulations_run, 0u);
  EXPECT_EQ(warm.decompilations_run, 0u);
  EXPECT_EQ(warm.partitions_run, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(cold.Report(), warm.Report());
  for (const auto& point : warm.points) {
    ASSERT_TRUE(point.status.ok());
    EXPECT_TRUE(point.from_cache);
  }
}

TEST(Explore, ParallelEqualsSerial) {
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")},
                   {"crc", BuildBench("crc")},
                   {"brev", BuildBench("brev")}};
  spec.strategies = kAllStrategies;
  spec.objectives = {Objective::kSpeedup, Objective::kEnergy};

  Toolchain serial;
  serial.WithThreads(1);
  Toolchain parallel;
  parallel.WithThreads(8);
  const ExploreResult a = serial.Explore(spec);
  const ExploreResult b = parallel.Explore(spec);
  EXPECT_EQ(a.Report(), b.Report());
  EXPECT_EQ(a.simulations_run, b.simulations_run);
  EXPECT_EQ(a.decompilations_run, b.decompilations_run);
  EXPECT_EQ(a.partitions_run, b.partitions_run);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
}

TEST(Explore, AnnealingIsDeterministicUnderAFixedSeed) {
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")}, {"crc", BuildBench("crc")}};
  spec.strategies = {"annealing"};
  spec.strategy_options.seed = 42;

  // Fresh toolchains (fresh caches) so the second sweep recomputes from
  // scratch rather than replaying cached artifacts.
  const ExploreResult first = Toolchain().Explore(spec);
  const ExploreResult second = Toolchain().Explore(spec);
  EXPECT_GT(second.partitions_run, 0u);
  EXPECT_EQ(first.Report(), second.Report());
}

TEST(Explore, SeedSweepSharesSynthesisThroughTheCandidatePool) {
  // The repeated-request shape the serve daemon sees: the same benchmark
  // partitioned under the annealing strategy with different seeds.  Each
  // seed is a distinct partition artifact, but the candidate scan and every
  // synthesis result are shared through the toolchain cache's
  // CandidateSetPool — synthesis work stays flat across the sweep.
  Toolchain toolchain;
  toolchain.WithThreads(1);
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")}};
  spec.platforms = {"mips200-xc2v1000"};
  spec.strategies = {"annealing"};

  spec.strategy_options.seed = 1;
  const ExploreResult first = toolchain.Explore(spec);
  EXPECT_EQ(first.partitions_run, 1u);
  const auto& pool = *toolchain.artifact_cache()->candidate_pool();
  const auto after_first = pool.stats();
  EXPECT_EQ(after_first.scans, 1u);
  EXPECT_GT(after_first.synthesis_runs, 0u);

  for (std::uint64_t seed = 2; seed <= 4; ++seed) {
    spec.strategy_options.seed = seed;
    const ExploreResult next = toolchain.Explore(spec);
    EXPECT_EQ(next.partitions_run, 1u) << seed;  // new artifact per seed
  }
  const auto after_sweep = pool.stats();
  EXPECT_EQ(after_sweep.scans, 1u);
  EXPECT_EQ(after_sweep.hits, 3u);
  // The sharing contract: later seeds synthesized NOTHING new.
  EXPECT_EQ(after_sweep.synthesis_runs, after_first.synthesis_runs);
}

TEST(Explore, ObjectiveInsensitiveStrategySharesArtifacts) {
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")}};
  spec.platforms = {"mips200-xc2v1000"};
  spec.strategies = {"paper-greedy"};
  spec.objectives = {Objective::kSpeedup, Objective::kEnergy,
                     Objective::kEnergyDelay};

  const ExploreResult result = Toolchain().Explore(spec);
  // One partition serves all three objective points.
  EXPECT_EQ(result.partitions_run, 1u);
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_EQ(result.At(0, 0, 0, 0).speedup, result.At(0, 0, 0, 1).speedup);
  EXPECT_EQ(result.At(0, 0, 0, 0).speedup, result.At(0, 0, 0, 2).speedup);
}

TEST(Explore, ParetoFrontierInvariants) {
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")}};
  spec.platforms = kPaperPlatforms;
  spec.strategies = kAllStrategies;

  const ExploreResult result = Toolchain().Explore(spec);
  std::vector<const explore::ExplorePoint*> ok_points;
  for (const auto& point : result.points) {
    ASSERT_TRUE(point.status.ok());
    ok_points.push_back(&point);
  }
  const auto metrics_of = [](const explore::ExplorePoint& point) {
    return ParetoMetrics{point.speedup, point.energy, point.area_gates};
  };
  std::size_t frontier_count = 0;
  for (const auto* point : ok_points) {
    if (point->on_frontier) {
      ++frontier_count;
      // No frontier point is dominated by any other point.
      for (const auto* other : ok_points) {
        EXPECT_FALSE(
            explore::Dominates(metrics_of(*other), metrics_of(*point)));
      }
    } else {
      // Every dominated point is dominated by some frontier point.
      bool dominated_by_frontier = false;
      for (const auto* other : ok_points) {
        if (other->on_frontier &&
            explore::Dominates(metrics_of(*other), metrics_of(*point))) {
          dominated_by_frontier = true;
          break;
        }
      }
      EXPECT_TRUE(dominated_by_frontier);
    }
  }
  EXPECT_GT(frontier_count, 0u);
}

TEST(Explore, ParetoFrontierUnitCases) {
  // a dominates b; c trades speedup for energy; d duplicates a.
  const std::vector<ParetoMetrics> points = {
      {4.0, 1.0, 100.0},   // a
      {3.0, 2.0, 100.0},   // b: dominated by a
      {2.0, 0.5, 50.0},    // c: non-dominated trade-off
      {4.0, 1.0, 100.0}};  // d: tie with a — both survive
  const auto frontier = ParetoFrontier(points);
  EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_TRUE(explore::Dominates(points[0], points[1]));
  EXPECT_FALSE(explore::Dominates(points[0], points[2]));
  EXPECT_FALSE(explore::Dominates(points[0], points[3]));
}

TEST(Explore, PerPointFailuresDoNotAbortTheSweep) {
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")},
                   {"null", nullptr},
                   {"switch01", BuildBench("switch01")}};  // CDFG failure
  spec.platforms = {"mips200-xc2v1000", "no-such-platform"};
  spec.strategies = {"paper-greedy", "no-such-strategy"};

  Toolchain toolchain;
  const ExploreResult result = toolchain.Explore(spec);
  ASSERT_EQ(result.points.size(), 3u * 2u * 2u);
  EXPECT_TRUE(result.At(0, 0, 0, 0).status.ok());
  EXPECT_FALSE(result.At(0, 1, 0, 0).status.ok());  // unknown platform
  EXPECT_FALSE(result.At(0, 0, 1, 0).status.ok());  // unknown strategy
  EXPECT_FALSE(result.At(1, 0, 0, 0).status.ok());  // null binary
  EXPECT_FALSE(result.At(2, 0, 0, 0).status.ok());  // CDFG recovery failure
  EXPECT_EQ(result.At(2, 0, 0, 0).status.kind(), ErrorKind::kIndirectJump);
  EXPECT_NE(result.Report().find("FAILED"), std::string::npos);

  // Failures are cached artifacts too: the warm repeat performs zero work
  // (the CDFG-failing binary is NOT re-simulated or re-decompiled) and
  // reports identically.
  const ExploreResult warm = toolchain.Explore(spec);
  EXPECT_EQ(warm.simulations_run, 0u);
  EXPECT_EQ(warm.decompilations_run, 0u);
  EXPECT_EQ(warm.partitions_run, 0u);
  EXPECT_EQ(result.Report(), warm.Report());
}

TEST(Explore, SeedChangesOnlyInvalidateSeedSensitiveStrategies) {
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")}};
  spec.platforms = {"mips200-xc2v1000"};
  spec.strategies = {"paper-greedy", "knapsack-optimal", "annealing"};
  spec.strategy_options.seed = 1;

  Toolchain toolchain;
  const ExploreResult cold = toolchain.Explore(spec);
  EXPECT_EQ(cold.partitions_run, 3u);

  // A new seed only affects the annealing strategy's artifact key: the
  // deterministic strategies replay from the cache.
  spec.strategy_options.seed = 2;
  const ExploreResult reseeded = toolchain.Explore(spec);
  EXPECT_EQ(reseeded.decompilations_run, 0u);
  EXPECT_EQ(reseeded.partitions_run, 1u);  // annealing only
  EXPECT_TRUE(reseeded.At(0, 0, 0, 0).from_cache);
  EXPECT_TRUE(reseeded.At(0, 0, 1, 0).from_cache);
  EXPECT_FALSE(reseeded.At(0, 0, 2, 0).from_cache);
}

// Satellite: rejection reasons must be surfaced through the printed report
// and the JSON output so strategy comparisons can explain skipped regions.
TEST(Toolchain, ReportAndJsonSurfaceRejectedRegions) {
  partition::Platform tiny = partition::Platform::WithCpuMhz(200.0);
  tiny.fpga.capacity_gates = 30'000.0;
  tiny.fpga.usable_fraction = 1.0;
  PlatformRegistry::Global().Register("test-explore-tiny", tiny);

  Toolchain toolchain;
  auto run = toolchain.RunOn("test-explore-tiny", BuildBench("fir"), "fir");
  ASSERT_TRUE(run.ok()) << run.status().message();
  ASSERT_FALSE(run.value().partition.rejected.empty());
  EXPECT_NE(run.value().Report().find("rejected"), std::string::npos);
  const std::string json = run.value().Json();
  EXPECT_NE(json.find("\"rejected\":["), std::string::npos);
  EXPECT_NE(json.find("area constraint violated"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\":"), std::string::npos);

  // The explore report surfaces the same reasons per point.
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")}};
  spec.platforms = {"test-explore-tiny"};
  spec.strategies = {"paper-greedy"};
  const ExploreResult result = toolchain.Explore(spec);
  ASSERT_TRUE(result.At(0, 0, 0, 0).status.ok());
  EXPECT_FALSE(result.At(0, 0, 0, 0).rejected.empty());
  EXPECT_NE(result.Report().find("rejected ["), std::string::npos);
}

// Acceptance criterion (PR 4): the same sweep run twice from two separate
// "processes" — emulated by two Toolchains with fresh memory tiers sharing
// one cache dir — performs 0 simulations/decompilations/partitions on the
// second run and produces a bit-identical Report().  Failures (the
// CDFG-failing switch01) replay from disk too.  The CI cache-warm step
// enforces the same invariant across real processes.
TEST(Explore, DiskCacheMakesProcessRestartedSweepsFree) {
  TempCacheDir dir;
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")},
                   {"crc", BuildBench("crc")},
                   {"switch01", BuildBench("switch01")}};  // CDFG failure
  spec.platforms = kPaperPlatforms;
  spec.strategies = kAllStrategies;

  Toolchain cold;
  cold.WithCacheDir(dir.path);
  ASSERT_TRUE(cold.artifact_cache()->disk_enabled());
  const ExploreResult first = cold.Explore(spec);
  EXPECT_EQ(first.simulations_run, 3u);
  EXPECT_GT(first.decompilations_run, 0u);
  EXPECT_GT(first.partitions_run, 0u);
  EXPECT_GT(cold.CacheStats().disk_stores, 0u);

  // Fresh Toolchain = fresh memory tier: every artifact must come off disk.
  Toolchain warm;
  warm.WithCacheDir(dir.path);
  const ExploreResult second = warm.Explore(spec);
  EXPECT_EQ(second.simulations_run, 0u);
  EXPECT_EQ(second.decompilations_run, 0u);
  EXPECT_EQ(second.partitions_run, 0u);
  EXPECT_EQ(second.cache_misses, 0u);
  EXPECT_EQ(second.cache_memory_hits, 0u);
  EXPECT_GT(second.cache_disk_hits, 0u);
  EXPECT_EQ(first.Report(), second.Report());
  for (const auto& point : second.points) {
    if (point.status.ok()) EXPECT_TRUE(point.from_cache);
  }
}

// Partial warmth across a restart: adding a strategy to a disk-warm sweep
// re-runs only the new partitions.  The decompiled program is rebuilt from
// the cached profile (a "rehydration") without re-simulating — disk
// decompile entries deliberately carry the profile, not the IR.
TEST(Explore, DiskCacheRehydratesOnlyWhatNewWorkNeeds) {
  TempCacheDir dir;
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")}};
  spec.platforms = {"mips200-xc2v1000"};
  spec.strategies = {"paper-greedy"};

  Toolchain first;
  first.WithCacheDir(dir.path);
  (void)first.Explore(spec);

  spec.strategies = {"paper-greedy", "knapsack-optimal"};
  Toolchain second;
  second.WithCacheDir(dir.path);
  const ExploreResult partial = second.Explore(spec);
  EXPECT_EQ(partial.simulations_run, 0u);  // profile came off disk
  EXPECT_EQ(partial.decompilations_run, 1u);
  EXPECT_EQ(partial.decompile_rehydrations, 1u);
  EXPECT_EQ(partial.partitions_run, 1u);  // knapsack only
  ASSERT_TRUE(partial.At(0, 0, 0, 0).status.ok());
  ASSERT_TRUE(partial.At(0, 0, 1, 0).status.ok());
  EXPECT_TRUE(partial.At(0, 0, 0, 0).from_cache);
  EXPECT_FALSE(partial.At(0, 0, 1, 0).from_cache);
  EXPECT_GE(partial.At(0, 0, 1, 0).speedup, partial.At(0, 0, 0, 0).speedup);

  // And a third restart replays the widened sweep entirely from disk,
  // identically.
  Toolchain third;
  third.WithCacheDir(dir.path);
  const ExploreResult replay = third.Explore(spec);
  EXPECT_EQ(replay.simulations_run + replay.decompilations_run +
                replay.partitions_run,
            0u);
  EXPECT_EQ(partial.Report(), replay.Report());
}

// B2H_CACHE_DIR plumbing: the environment variable gives every Toolchain a
// disk-backed cache and overrides WithCacheDir's configured directory.
TEST(Explore, CacheDirEnvironmentOverride) {
  TempCacheDir env_dir;
  TempCacheDir other_dir;
  ExploreSpec spec;
  spec.binaries = {{"fir", BuildBench("fir")}};
  spec.platforms = {"mips200-xc2v1000"};
  spec.strategies = {"paper-greedy"};

  ExploreResult cold;
  ExploreResult replay;
  {
    ScopedEnv env("B2H_CACHE_DIR", env_dir.path.c_str());

    Toolchain from_env;  // constructor picks the env dir up
    ASSERT_TRUE(from_env.artifact_cache()->disk_enabled());
    EXPECT_EQ(from_env.artifact_cache()->disk()->directory(), env_dir.path);

    Toolchain overridden;  // env wins over the configured directory
    overridden.WithCacheDir(other_dir.path);
    EXPECT_EQ(overridden.artifact_cache()->disk()->directory(), env_dir.path);

    cold = from_env.Explore(spec);
    EXPECT_EQ(cold.decompilations_run, 1u);

    Toolchain warm;  // fresh process stand-in, also via env
    replay = warm.Explore(spec);
  }
  EXPECT_EQ(replay.simulations_run + replay.decompilations_run +
                replay.partitions_run,
            0u);
  EXPECT_EQ(cold.Report(), replay.Report());

  Toolchain memory_only;  // env gone: back to the memory-only default
  EXPECT_FALSE(memory_only.artifact_cache()->disk_enabled());
}

// The knapsack strategy must agree with an exhaustive check on a small
// program: its reported estimate equals the best EvaluateSubset score over
// every feasible subset.
TEST(Strategy, KnapsackMatchesExhaustiveSearchOnFir) {
  auto flow = partition::RunFlow(BuildBench("fir"));
  ASSERT_TRUE(flow.ok());
  const auto& program = *flow.value().program;
  const auto& profile = flow.value().software_run.profile;
  const partition::Platform platform;
  const partition::PartitionOptions options;

  const auto set = partition::CandidateSet::Scan(program, profile);
  std::vector<std::size_t> viable;
  for (std::size_t id = 0; id < set.size(); ++id) {
    if (set.candidates()[id].sw_cycles == 0) continue;
    if (set.Synthesize(id, options.synth).ok()) viable.push_back(id);
  }
  ASSERT_LT(viable.size(), 16u);  // fir is small; exhaustive is cheap
  double best = 1.0;
  for (std::size_t mask = 0; mask < (1u << viable.size()); ++mask) {
    std::vector<std::size_t> subset;
    for (std::size_t v = 0; v < viable.size(); ++v) {
      if (mask & (1u << v)) subset.push_back(viable[v]);
    }
    const auto estimate =
        partition::EvaluateSubset(set, subset, platform, options);
    if (estimate.has_value()) best = std::max(best, estimate->speedup);
  }

  const auto strategy =
      partition::StrategyRegistry::Global().Create("knapsack-optimal");
  auto result = strategy->Partition(program, profile, platform, options, {});
  ASSERT_TRUE(result.ok());
  const auto estimate =
      partition::EstimatePartition(result.value(), platform);
  EXPECT_NEAR(estimate.speedup, best, 1e-9);
}

}  // namespace
}  // namespace b2h
