// Decompilation pass tests: each paper technique gets positive cases,
// negative (must-not-fire) cases, and semantics-preservation checks through
// the IR interpreter.
#include "decomp/passes.hpp"

#include <gtest/gtest.h>

#include "decomp/lifter.hpp"
#include "ir/interp.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "mips/assembler.hpp"
#include "mips/simulator.hpp"

namespace b2h::decomp {
namespace {

struct Lifted {
  mips::SoftBinary binary;
  ir::Module module;
};

Lifted LiftAsm(const std::string& source) {
  auto binary = mips::Assemble(source);
  EXPECT_TRUE(binary.ok()) << binary.status().message();
  auto module = Lift(binary.value());
  EXPECT_TRUE(module.ok()) << module.status().message();
  return {std::move(binary).take(), std::move(module).take()};
}

std::int32_t InterpResultOf(const Lifted& lifted) {
  ir::Interpreter interp(lifted.module, lifted.binary.data);
  const auto result = interp.Run();
  EXPECT_TRUE(result.ok) << result.error;
  return result.return_value;
}

std::size_t CountOps(const ir::Function& function, ir::Opcode op) {
  std::size_t count = 0;
  for (const auto& block : function.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == op) ++count;
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// Constant propagation / simplification
// ---------------------------------------------------------------------------

TEST(ConstProp, RemovesMoveIdioms) {
  // `or rd, rs, $zero` and `addiu rd, rs, 0` are the move idioms the paper
  // names: both must vanish, leaving a straight data flow.
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 7
      or $t1, $t0, $zero
      addiu $t2, $t1, 0
      move $v0, $t2
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  EXPECT_EQ(CountOps(main, ir::Opcode::kOr), 0u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kAdd), 0u);
  EXPECT_EQ(InterpResultOf(lifted), 7);
}

TEST(ConstProp, FoldsArithmetic) {
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 6
      li $t1, 7
      mult $t0, $t1
      mflo $v0
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  EXPECT_EQ(CountOps(main, ir::Opcode::kMul), 0u);
  EXPECT_EQ(InterpResultOf(lifted), 42);
}

TEST(ConstProp, FoldsConstantBranches) {
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 1
      bgtz $t0, yes
      li $v0, 111
      jr $ra
    yes:
      li $v0, 222
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  EXPECT_EQ(CountOps(main, ir::Opcode::kCondBr), 0u);
  EXPECT_EQ(main.blocks().size(), 2u);  // dead arm removed
  EXPECT_EQ(InterpResultOf(lifted), 222);
  EXPECT_TRUE(ir::Verify(main).ok());
}

TEST(ConstProp, BranchFoldFixesPhis) {
  // The surviving arm feeds a phi in the merge block; folding the branch
  // must drop exactly the dead operand.
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 0
      bgtz $t0, yes
      li $t1, 5
      b merge
    yes:
      li $t1, 9
    merge:
      move $v0, $t1
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  EXPECT_TRUE(ir::Verify(main).ok());
  EXPECT_EQ(InterpResultOf(lifted), 5);
}

TEST(ConstProp, ReassociatesAddressChains) {
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 100
      addiu $t0, $t0, 20
      addiu $t0, $t0, 3
      move $v0, $t0
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  EXPECT_EQ(main.entry()->BodySize(), 1u);  // just the ret remains
  EXPECT_EQ(InterpResultOf(lifted), 123);
}

// ---------------------------------------------------------------------------
// Stack operation removal
// ---------------------------------------------------------------------------

TEST(StackRemoval, PromotesSpillSlots) {
  auto lifted = LiftAsm(R"(
    main:
      addiu $sp, $sp, -16
      li $t0, 11
      sw $t0, 4($sp)
      li $t1, 22
      sw $t1, 8($sp)
      lw $t2, 4($sp)
      lw $t3, 8($sp)
      addu $v0, $t2, $t3
      addiu $sp, $sp, 16
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = RemoveStackOperations(main);
  EXPECT_EQ(stats.slots_promoted, 2u);
  EXPECT_EQ(stats.loads_removed, 2u);
  EXPECT_EQ(stats.stores_removed, 2u);
  EXPECT_FALSE(stats.aborted_unsafe);
  EXPECT_EQ(CountOps(main, ir::Opcode::kLoad), 0u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kStore), 0u);
  EXPECT_EQ(InterpResultOf(lifted), 33);
}

TEST(StackRemoval, PromotesAcrossControlFlow) {
  auto lifted = LiftAsm(R"(
    main:
      addiu $sp, $sp, -8
      sw $zero, 0($sp)
      li $t0, 4
    loop:
      lw $t1, 0($sp)
      addu $t1, $t1, $t0
      sw $t1, 0($sp)
      addiu $t0, $t0, -1
      bgtz $t0, loop
      lw $v0, 0($sp)
      addiu $sp, $sp, 8
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = RemoveStackOperations(main);
  EXPECT_GE(stats.slots_promoted, 1u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kLoad), 0u);
  EXPECT_EQ(InterpResultOf(lifted), 10);
  EXPECT_TRUE(ir::Verify(main).ok());
}

TEST(StackRemoval, LeavesGlobalAccessesAlone) {
  auto lifted = LiftAsm(R"(
    main:
      la $t0, g
      li $t1, 9
      sw $t1, 0($t0)
      lw $v0, 0($t0)
      jr $ra
    .data
    g: .word 0
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = RemoveStackOperations(main);
  EXPECT_EQ(stats.slots_promoted, 0u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kStore), 1u);
  EXPECT_EQ(InterpResultOf(lifted), 9);
}

TEST(StackRemoval, AbortsWhenAddressEscapes) {
  // The stack address is multiplied — no longer sp+const affine; the pass
  // must refuse to promote anything.
  auto lifted = LiftAsm(R"(
    main:
      addiu $sp, $sp, -8
      li $t0, 5
      sw $t0, 0($sp)
      sll $t1, $sp, 1     # escape: sp used in non-affine arithmetic
      srl $t1, $t1, 1
      lw $v0, 0($t1)
      addiu $sp, $sp, 8
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  const auto stats = RemoveStackOperations(main);
  EXPECT_TRUE(stats.aborted_unsafe);
  EXPECT_EQ(stats.slots_promoted, 0u);
}

TEST(StackRemoval, NarrowSlotLoadsKeepExtension) {
  auto lifted = LiftAsm(R"(
    main:
      addiu $sp, $sp, -8
      li $t0, -2
      sb $t0, 0($sp)
      lbu $v0, 0($sp)
      addiu $sp, $sp, 8
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  RemoveStackOperations(main);
  SimplifyConstants(main);
  EXPECT_EQ(InterpResultOf(lifted), 254);  // zero-extended byte
}

// ---------------------------------------------------------------------------
// Strength promotion (shift/add chains -> multiplication)
// ---------------------------------------------------------------------------

TEST(StrengthPromotion, RecoversMulByTen) {
  // x*10 = (x<<3) + (x<<1), the decomposition our -O2 emits.
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 9
      sll $t1, $t0, 3
      sll $t2, $t0, 1
      addu $v0, $t1, $t2
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  const auto stats = PromoteStrength(main);
  EXPECT_EQ(stats.muls_recovered, 1u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kMul), 1u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kShl), 0u);
  EXPECT_EQ(InterpResultOf(lifted), 90);
}

TEST(StrengthPromotion, RecoversSubChains) {
  // x*7 = (x<<3) - x.
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 6
      sll $t1, $t0, 3
      subu $v0, $t1, $t0
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  const auto stats = PromoteStrength(main);
  EXPECT_EQ(stats.muls_recovered, 1u);
  EXPECT_EQ(InterpResultOf(lifted), 42);
}

TEST(StrengthPromotion, RecoversNestedDag) {
  // 25x = t + (t<<2) where t = x + (x<<2).
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 3
      sll $t1, $t0, 2
      addu $t1, $t1, $t0
      sll $t2, $t1, 2
      addu $v0, $t2, $t1
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  const auto stats = PromoteStrength(main);
  EXPECT_GE(stats.muls_recovered, 1u);
  EXPECT_EQ(InterpResultOf(lifted), 75);
}

TEST(StrengthPromotion, LeavesSingleShiftsAlone) {
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 5
      sll $v0, $t0, 4
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  const auto stats = PromoteStrength(main);
  EXPECT_EQ(stats.muls_recovered, 0u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kShl), 1u);
}

TEST(StrengthPromotion, LeavesSharedSubtreesAlone) {
  // The shifted value has another use; collapsing would duplicate work.
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 9
      sll $t1, $t0, 3
      sll $t2, $t0, 1
      addu $t3, $t1, $t2
      addu $v0, $t3, $t1    # t1 reused outside the chain
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  PromoteStrength(main);
  // The inner chain must NOT have been collapsed (t1 is shared).
  EXPECT_EQ(InterpResultOf(lifted), 90 + 72);
}

// ---------------------------------------------------------------------------
// Strength reduction (for synthesis)
// ---------------------------------------------------------------------------

TEST(StrengthReduction, MulByPowerOfTwo) {
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 5
      li $t1, 16
      mult $t0, $t1
      mflo $v0
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  // Re-introduce a non-constant operand so the mul survives folding.
  // (Directly build: v0 = a0 * 16.)
  auto lifted2 = LiftAsm(R"(
    main:
      li $t1, 16
      mult $a0, $t1
      mflo $v0
      jr $ra
  )");
  ir::Function& main2 = *lifted2.module.main;
  SimplifyConstants(main2);
  const auto stats = ReduceStrength(main2);
  EXPECT_EQ(stats.muls_to_shifts, 1u);
  EXPECT_EQ(CountOps(main2, ir::Opcode::kMul), 0u);
  ir::Interpreter interp(lifted2.module, lifted2.binary.data);
  EXPECT_EQ(interp.Run(std::vector<std::int32_t>{5}).return_value, 80);
}

TEST(StrengthReduction, UnsignedDivAndRemByPowerOfTwo) {
  auto lifted = LiftAsm(R"(
    main:
      andi $t0, $a0, 0xFFF
      li $t1, 8
      divu $t0, $t1
      mflo $t2
      mfhi $t3
      sll $t2, $t2, 16
      or $v0, $t2, $t3
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = ReduceStrength(main);
  EXPECT_EQ(stats.divs_to_shifts, 1u);
  EXPECT_EQ(stats.rems_to_masks, 1u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kDivU), 0u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kRemU), 0u);
  ir::Interpreter interp(lifted.module, lifted.binary.data);
  EXPECT_EQ(interp.Run(std::vector<std::int32_t>{100}).return_value,
            (12 << 16) | 4);
}

TEST(StrengthReduction, SignedDivStaysWithoutProof) {
  // a0 may be negative: DivS by 8 must NOT become a bare shift.
  auto lifted = LiftAsm(R"(
    main:
      li $t1, 8
      div $a0, $t1
      mflo $v0
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = ReduceStrength(main);
  EXPECT_EQ(stats.divs_to_shifts, 0u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kDivS), 1u);
  ir::Interpreter interp(lifted.module, lifted.binary.data);
  EXPECT_EQ(interp.Run(std::vector<std::int32_t>{-20}).return_value, -2);
}

// ---------------------------------------------------------------------------
// Operator size reduction
// ---------------------------------------------------------------------------

TEST(SizeReduction, NarrowsMaskedValues) {
  auto lifted = LiftAsm(R"(
    main:
      andi $t0, $a0, 0xFF
      andi $t1, $a1, 0xFF
      addu $v0, $t0, $t1
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = ReduceOperatorSizes(main);
  EXPECT_GT(stats.narrowed, 0u);
  // The add of two 8-bit values needs only 9 bits.
  for (const auto& block : main.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == ir::Opcode::kAdd) {
        EXPECT_LE(instr->width, 9u);
      }
    }
  }
  ir::Interpreter interp(lifted.module, lifted.binary.data);
  const auto result =
      interp.Run(std::vector<std::int32_t>{0x1FF, 0x2FE});
  // Inputs carry 9-bit values but consumers demand only 8 bits: the
  // demanded-bits narrowing masks them (counted as width "violations"),
  // yet the observable result is unchanged — that is the soundness
  // property that matters.
  EXPECT_EQ(result.return_value, 0xFF + 0xFE);
}

TEST(SizeReduction, DemandedBitsFromByteStore) {
  // Only the low byte of the sum is stored: the adder narrows to 8 bits.
  auto lifted = LiftAsm(R"(
    main:
      la $t2, out
      addu $t0, $a0, $a1
      sb $t0, 0($t2)
      lbu $v0, 0($t2)
      jr $ra
    .data
    out: .space 4
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  ReduceOperatorSizes(main);
  for (const auto& block : main.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == ir::Opcode::kAdd &&
          !instr->operands[1].is_const()) {
        EXPECT_LE(instr->width, 8u);
      }
    }
  }
  ir::Interpreter interp(lifted.module, lifted.binary.data);
  EXPECT_EQ(interp.Run(std::vector<std::int32_t>{300, 300}).return_value,
            (300 + 300) & 0xFF);
}

TEST(SizeReduction, ComparisonsAreOneBit) {
  auto lifted = LiftAsm(R"(
    main:
      slt $v0, $a0, $a1
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  ReduceOperatorSizes(main);
  for (const auto& block : main.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (ir::IsComparison(instr->op)) {
        EXPECT_EQ(instr->width, 1u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Loop rerolling
// ---------------------------------------------------------------------------

/// Hand-written unrolled loop (factor 4): sums array elements.
/// Sections are textually isomorphic with address offsets 0,4,8,12.
constexpr const char* kUnrolledSum = R"(
  main:
    la $s2, arr
    li $s0, 0        # i
    li $s1, 0        # sum
  loop:
    sll $t0, $s0, 2
    addu $t0, $s2, $t0
    lw $t1, 0($t0)
    addu $s1, $s1, $t1
    sll $t0, $s0, 2
    addu $t0, $s2, $t0
    lw $t1, 4($t0)
    addu $s1, $s1, $t1
    sll $t0, $s0, 2
    addu $t0, $s2, $t0
    lw $t1, 8($t0)
    addu $s1, $s1, $t1
    sll $t0, $s0, 2
    addu $t0, $s2, $t0
    lw $t1, 12($t0)
    addu $s1, $s1, $t1
    addiu $s0, $s0, 4
    slti $t9, $s0, 16
    bne $t9, $zero, loop
    move $v0, $s1
    jr $ra
  .data
  arr:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
)";

TEST(LoopReroll, RerollsHandUnrolledLoop) {
  auto lifted = LiftAsm(kUnrolledSum);
  ir::Function& main = *lifted.module.main;
  const auto stats = RerollLoops(main);
  EXPECT_EQ(stats.loops_rerolled, 1u);
  EXPECT_EQ(stats.unroll_factor, 4u);
  EXPECT_TRUE(ir::Verify(main).ok());
  // Only one load remains in the loop body.
  EXPECT_EQ(CountOps(main, ir::Opcode::kLoad), 1u);
  EXPECT_EQ(InterpResultOf(lifted), 136);
}

TEST(LoopReroll, RejectsNonUniformBodies) {
  // Same shape but one section multiplies instead of adding: not unrolled.
  auto lifted = LiftAsm(R"(
    main:
      la $s2, arr
      li $s0, 0
      li $s1, 0
    loop:
      sll $t0, $s0, 2
      addu $t0, $s2, $t0
      lw $t1, 0($t0)
      addu $s1, $s1, $t1
      sll $t0, $s0, 2
      addu $t0, $s2, $t0
      lw $t1, 4($t0)
      subu $s1, $s1, $t1    # different opcode: not an unrolled copy
      addiu $s0, $s0, 2
      slti $t9, $s0, 8
      bne $t9, $zero, loop
      move $v0, $s1
      jr $ra
    .data
    arr: .word 10, 1, 10, 2, 10, 3, 10, 4
  )");
  ir::Function& main = *lifted.module.main;
  const auto stats = RerollLoops(main);
  EXPECT_EQ(stats.loops_rerolled, 0u);
  EXPECT_EQ(InterpResultOf(lifted), 30);
}

TEST(LoopReroll, RejectsConstantProgressionsUnrelatedToInduction) {
  // Sections add 1,2 to the accumulator: the constants form an arithmetic
  // progression but do NOT derive from the induction variable.  Rerolling
  // would change semantics; the affine check must reject it.
  auto lifted = LiftAsm(R"(
    main:
      li $s0, 0
      li $s1, 0
    loop:
      addiu $s1, $s1, 1
      addiu $s1, $s1, 2
      addiu $s0, $s0, 2
      slti $t9, $s0, 8
      bne $t9, $zero, loop
      move $v0, $s1
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  const auto stats = RerollLoops(main);
  EXPECT_EQ(stats.loops_rerolled, 0u);
  EXPECT_EQ(InterpResultOf(lifted), 12);
}

TEST(LoopReroll, AccumulatorChainsAcrossSections) {
  // Loop-carried accumulator without memory: sum += i; sum += i+1; i += 2.
  auto lifted = LiftAsm(R"(
    main:
      li $s0, 0
      li $s1, 0
    loop:
      addiu $t0, $s0, 0
      addu $s1, $s1, $t0
      addiu $t0, $s0, 1
      addu $s1, $s1, $t0
      addiu $s0, $s0, 2
      slti $t9, $s0, 10
      bne $t9, $zero, loop
      move $v0, $s1
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  const auto stats = RerollLoops(main);
  EXPECT_EQ(stats.loops_rerolled, 1u);
  EXPECT_EQ(stats.unroll_factor, 2u);
  EXPECT_EQ(InterpResultOf(lifted), 45);
}

// ---------------------------------------------------------------------------
// If-conversion
// ---------------------------------------------------------------------------

TEST(IfConvert, DiamondBecomesSelect) {
  // v0 = (a0 > 0) ? a0*2 : -a0
  auto lifted = LiftAsm(R"(
    main:
      bgtz $a0, pos
      subu $t0, $zero, $a0
      b merge
    pos:
      sll $t0, $a0, 1
    merge:
      move $v0, $t0
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = ConvertIfs(main);
  EXPECT_EQ(stats.diamonds_converted, 1u);
  EXPECT_EQ(stats.selects_created, 1u);
  EXPECT_EQ(CountOps(main, ir::Opcode::kCondBr), 0u);
  EXPECT_GE(CountOps(main, ir::Opcode::kSelect), 1u);
  EXPECT_TRUE(ir::Verify(main).ok());
  ir::Interpreter pos_case(lifted.module, lifted.binary.data);
  EXPECT_EQ(pos_case.Run(std::vector<std::int32_t>{21}).return_value, 42);
  ir::Interpreter neg_case(lifted.module, lifted.binary.data);
  EXPECT_EQ(neg_case.Run(std::vector<std::int32_t>{-7}).return_value, 7);
}

TEST(IfConvert, TriangleClampBecomesSelect) {
  // if (a0 > 100) a0 = 100; return a0;  — the ADPCM clamping idiom.
  auto lifted = LiftAsm(R"(
    main:
      move $t0, $a0
      slti $t1, $t0, 101
      bne $t1, $zero, done
      li $t0, 100
    done:
      move $v0, $t0
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = ConvertIfs(main);
  EXPECT_EQ(stats.diamonds_converted, 1u);
  EXPECT_EQ(main.blocks().size(), 1u);  // fully linearized
  ir::Interpreter small(lifted.module, lifted.binary.data);
  EXPECT_EQ(small.Run(std::vector<std::int32_t>{55}).return_value, 55);
  ir::Interpreter big(lifted.module, lifted.binary.data);
  EXPECT_EQ(big.Run(std::vector<std::int32_t>{5000}).return_value, 100);
}

TEST(IfConvert, RefusesArmsWithStores) {
  // A store must not be speculated.
  auto lifted = LiftAsm(R"(
    main:
      bgtz $a0, wr
      b done
    wr:
      la $t0, g
      sw $a0, 0($t0)
    done:
      la $t1, g
      lw $v0, 0($t1)
      jr $ra
    .data
    g: .word 7
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = ConvertIfs(main);
  EXPECT_EQ(stats.diamonds_converted, 0u);
  ir::Interpreter skip_case(lifted.module, lifted.binary.data);
  EXPECT_EQ(skip_case.Run(std::vector<std::int32_t>{-1}).return_value, 7);
}

TEST(IfConvert, LinearizesLoopBodyForPipelining) {
  // abs-accumulate loop: the if inside the body blocks pipelining until
  // if-conversion collapses the loop to a single block.
  auto lifted = LiftAsm(R"(
    main:
      li $s0, 0
      li $s1, -8
    loop:
      move $t0, $s1
      bgez $t0, acc
      subu $t0, $zero, $t0
    acc:
      addu $s0, $s0, $t0
      addiu $s1, $s1, 1
      slti $t9, $s1, 8
      bne $t9, $zero, loop
      move $v0, $s0
      jr $ra
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  const auto stats = ConvertIfs(main);
  EXPECT_GE(stats.diamonds_converted, 1u);
  // The loop is now a single-block self loop.
  bool self_loop = false;
  for (const auto& block : main.blocks()) {
    for (const ir::Block* succ : block->succs()) {
      if (succ == block.get()) self_loop = true;
    }
  }
  EXPECT_TRUE(self_loop);
  EXPECT_EQ(InterpResultOf(lifted), 8 * 9 / 2 + 28);  // |−8..−1| + 0..7
}

// ---------------------------------------------------------------------------
// Inlining
// ---------------------------------------------------------------------------

TEST(Inline, InlinesSmallLeafFunction) {
  auto binary = mips::Assemble(R"(
    main:
      addiu $sp, $sp, -8
      sw $ra, 0($sp)
      li $a0, -9
      jal abs
      move $s5, $v0      # callee-saved: survives the second call
      li $a0, 4
      jal abs
      addu $v0, $s5, $v0
      lw $ra, 0($sp)
      addiu $sp, $sp, 8
      jr $ra
    abs:
      bgez $a0, pos
      subu $v0, $zero, $a0
      jr $ra
    pos:
      move $v0, $a0
      jr $ra
  )");
  ASSERT_TRUE(binary.ok());
  auto lifted = Lift(binary.value());
  ASSERT_TRUE(lifted.ok());
  ir::Module module = std::move(lifted).take();
  for (auto& function : module.functions) {
    SimplifyConstants(*function);
    RemoveStackOperations(*function);
    SimplifyConstants(*function);
  }
  const auto stats = InlineSmallFunctions(module);
  EXPECT_EQ(stats.calls_inlined, 2u);
  EXPECT_EQ(CountOps(*module.main, ir::Opcode::kCall), 0u);
  EXPECT_TRUE(ir::Verify(*module.main).ok());
  ir::Interpreter interp(module, binary.value().data);
  const auto result = interp.Run();
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.return_value, 13);
}

}  // namespace
}  // namespace b2h::decomp
