// MIPS simulator tests: per-instruction semantics (parameterized), memory
// behaviour, faults, cycle model, and the profiler the partitioner relies on.
#include "mips/simulator.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mips/assembler.hpp"

namespace b2h::mips {
namespace {

std::int32_t RunAsm(const std::string& body) {
  auto binary = Assemble("main:\n" + body + "\n jr $ra\n");
  EXPECT_TRUE(binary.ok()) << binary.status().message();
  Simulator sim(binary.value());
  const auto run = sim.Run();
  EXPECT_EQ(run.reason, HaltReason::kReturned) << run.fault_message;
  return run.return_value;
}

/// Table-driven ALU semantics: {assembly, expected result in $v0}.
struct AluCase {
  const char* name;
  const char* body;
  std::int32_t expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, Matches) {
  EXPECT_EQ(RunAsm(GetParam().body), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemantics,
    ::testing::Values(
        AluCase{"addu", "li $t0, 7\n li $t1, 8\n addu $v0, $t0, $t1", 15},
        AluCase{"addu_wrap",
                "li $t0, 0x7FFFFFFF\n li $t1, 1\n addu $v0, $t0, $t1",
                INT32_MIN},
        AluCase{"subu", "li $t0, 5\n li $t1, 9\n subu $v0, $t0, $t1", -4},
        AluCase{"and", "li $t0, 0xFF0F\n li $t1, 0x0FF0\n and $v0, $t0, $t1",
                0x0F00},
        AluCase{"or", "li $t0, 0xF000\n li $t1, 0x000F\n or $v0, $t0, $t1",
                0xF00F},
        AluCase{"xor", "li $t0, 0xFFFF\n li $t1, 0x0F0F\n xor $v0, $t0, $t1",
                0xF0F0},
        AluCase{"nor", "li $t0, -1\n li $t1, 0\n nor $v0, $t0, $t1", 0},
        AluCase{"slt_true", "li $t0, -3\n li $t1, 2\n slt $v0, $t0, $t1", 1},
        AluCase{"slt_false", "li $t0, 3\n li $t1, 2\n slt $v0, $t0, $t1", 0},
        AluCase{"sltu_wraps", "li $t0, -1\n li $t1, 2\n sltu $v0, $t0, $t1",
                0},
        AluCase{"sll", "li $t0, 3\n sll $v0, $t0, 4", 48},
        AluCase{"srl_logical", "li $t0, -16\n srl $v0, $t0, 2", 0x3FFFFFFC},
        AluCase{"sra_arith", "li $t0, -16\n sra $v0, $t0, 2", -4},
        AluCase{"sllv", "li $t0, 1\n li $t1, 10\n sllv $v0, $t0, $t1", 1024},
        AluCase{"srav_masks_amount",
                "li $t0, 256\n li $t1, 33\n srav $v0, $t0, $t1", 128},
        AluCase{"addiu_negative", "li $t0, 10\n addiu $v0, $t0, -15", -5},
        AluCase{"andi_zero_extends", "li $t0, -1\n andi $v0, $t0, 0xFF",
                255},
        AluCase{"ori", "li $t0, 0x100\n ori $v0, $t0, 0xFF", 0x1FF},
        AluCase{"xori", "li $t0, 0xFF\n xori $v0, $t0, 0x0F", 0xF0},
        AluCase{"slti", "li $t0, -5\n slti $v0, $t0, -4", 1},
        AluCase{"sltiu_signext_imm", "li $t0, 5\n sltiu $v0, $t0, -1", 1},
        AluCase{"lui", "lui $v0, 0x1234", 0x12340000},
        AluCase{"mult_mflo",
                "li $t0, 1000\n li $t1, -3000\n mult $t0, $t1\n mflo $v0",
                -3000000},
        AluCase{"mult_mfhi",
                "li $t0, 0x10000\n li $t1, 0x10000\n mult $t0, $t1\n"
                " mfhi $v0",
                1},
        AluCase{"multu_mfhi",
                "li $t0, -1\n li $t1, 2\n multu $t0, $t1\n mfhi $v0", 1},
        AluCase{"div_quotient",
                "li $t0, 17\n li $t1, 5\n div $t0, $t1\n mflo $v0", 3},
        AluCase{"div_remainder",
                "li $t0, 17\n li $t1, 5\n div $t0, $t1\n mfhi $v0", 2},
        AluCase{"div_negative_trunc",
                "li $t0, -17\n li $t1, 5\n div $t0, $t1\n mflo $v0", -3},
        AluCase{"div_by_zero_quotient",
                "li $t0, 9\n li $t1, 0\n div $t0, $t1\n mflo $v0", 0},
        AluCase{"div_by_zero_remainder",
                "li $t0, 9\n li $t1, 0\n div $t0, $t1\n mfhi $v0", 9},
        AluCase{"divu",
                "li $t0, -2\n li $t1, 2\n divu $t0, $t1\n mflo $v0",
                0x7FFFFFFF},
        AluCase{"mthi_mtlo",
                "li $t0, 11\n mtlo $t0\n li $t1, 22\n mthi $t1\n"
                " mflo $v0\n mfhi $t2\n addu $v0, $v0, $t2",
                33}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Simulator, ZeroRegisterIsImmutable) {
  EXPECT_EQ(RunAsm("li $zero, 55\n move $v0, $zero"), 0);
}

TEST(Simulator, MemoryByteHalfWord) {
  auto binary = Assemble(R"(
  main:
    la $t0, buf
    li $t1, -2
    sb $t1, 0($t0)      # 0xFE
    lbu $v0, 0($t0)     # 254
    lb $t2, 0($t0)      # -2
    addu $v0, $v0, $t2  # 252
    li $t3, -3
    sh $t3, 2($t0)
    lhu $t4, 2($t0)     # 65533
    addu $v0, $v0, $t4
    lh $t5, 2($t0)      # -3
    addu $v0, $v0, $t5
    jr $ra
  .data
  buf:
    .space 8
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  Simulator sim(binary.value());
  EXPECT_EQ(sim.Run().return_value, 252 + 65533 - 3);
}

TEST(Simulator, StackMemoryWorks) {
  EXPECT_EQ(RunAsm(R"(
    addiu $sp, $sp, -16
    li $t0, 1234
    sw $t0, 4($sp)
    lw $v0, 4($sp)
    addiu $sp, $sp, 16
  )"),
            1234);
}

TEST(Simulator, FaultsOnUnalignedAccess) {
  auto binary = Assemble(R"(
    main:
      la $t0, buf
      lw $v0, 1($t0)
      jr $ra
    .data
    buf: .word 1, 2
  )");
  ASSERT_TRUE(binary.ok());
  Simulator sim(binary.value());
  const auto run = sim.Run();
  EXPECT_EQ(run.reason, HaltReason::kFault);
  EXPECT_NE(run.fault_message.find("unaligned"), std::string::npos);
}

TEST(Simulator, AddressWrapAroundFaults) {
  // Regression: `addr + size` overflowed 32 bits for addresses near
  // UINT32_MAX, so `addr >= kDataBase && addr + size <= end` accepted the
  // access and handed out a pointer ~3.7 GiB past the 1 MiB data segment.
  // The bounds checks are now end-exclusive offset comparisons that cannot
  // wrap; every such access must fault cleanly on both engines.
  for (const char* body : {
           "li $t0, -4\n lw $v0, 0($t0)",   // 0xFFFFFFFC: aligned word
           "li $t0, -4\n sw $t0, 0($t0)",
           "li $t0, -1\n lbu $v0, 0($t0)",  // 0xFFFFFFFF: byte, +1 wraps to 0
           "li $t0, -1\n sb $t0, 0($t0)",
           "li $t0, -2\n lhu $v0, 0($t0)",  // 0xFFFFFFFE: aligned half
       }) {
    SCOPED_TRACE(body);
    auto binary = Assemble("main:\n" + std::string(body) + "\n jr $ra\n");
    ASSERT_TRUE(binary.ok()) << binary.status().message();
    for (ExecEngine engine : {ExecEngine::kBlock, ExecEngine::kReference}) {
      Simulator sim(binary.value(), {}, engine);
      const auto run = sim.Run();
      EXPECT_EQ(run.reason, HaltReason::kFault);
      EXPECT_NE(run.fault_message.find("outside memory"), std::string::npos);
    }
  }
}

TEST(Simulator, SegmentBoundariesStayEndExclusive) {
  // The wrap-safe checks must not shrink the valid range: the last aligned
  // word of the data segment is accessible, one byte past it is not.
  const std::uint32_t last_word =
      kDataBase + Simulator::kDataSegmentSize - 4;
  {
    std::ostringstream src;
    src << "main:\n li $t0, " << last_word << "\n lw $v0, 0($t0)\n jr $ra\n";
    auto binary = Assemble(src.str());
    ASSERT_TRUE(binary.ok()) << binary.status().message();
    Simulator sim(binary.value());
    EXPECT_EQ(sim.Run().reason, HaltReason::kReturned);
  }
  {
    std::ostringstream src;
    src << "main:\n li $t0, " << (last_word + 4)
        << "\n lbu $v0, 0($t0)\n jr $ra\n";
    auto binary = Assemble(src.str());
    ASSERT_TRUE(binary.ok()) << binary.status().message();
    Simulator sim(binary.value());
    EXPECT_EQ(sim.Run().reason, HaltReason::kFault);
  }
}

TEST(Simulator, FaultsOnWildAddress) {
  auto binary = Assemble("main:\n li $t0, 0x200\n lw $v0, 0($t0)\n jr $ra\n");
  ASSERT_TRUE(binary.ok());
  Simulator sim(binary.value());
  EXPECT_EQ(sim.Run().reason, HaltReason::kFault);
}

TEST(Simulator, InstructionBudget) {
  auto binary = Assemble("main:\nspin:\n b spin\n jr $ra\n");
  ASSERT_TRUE(binary.ok());
  Simulator sim(binary.value());
  const auto run = sim.Run({}, 1000);
  EXPECT_EQ(run.reason, HaltReason::kMaxInstructions);
  EXPECT_EQ(run.instructions, 1000u);
}

TEST(Simulator, ArgumentsArriveInA0toA3) {
  auto binary = Assemble(R"(
    main:
      addu $v0, $a0, $a1
      addu $v0, $v0, $a2
      addu $v0, $v0, $a3
      jr $ra
  )");
  ASSERT_TRUE(binary.ok());
  Simulator sim(binary.value());
  const std::int32_t args[4] = {1, 20, 300, 4000};
  EXPECT_EQ(sim.Run(args).return_value, 4321);
}

TEST(Simulator, CycleModelCharging) {
  // 3 instructions: li (1), lw (1+1), jr (1+1) = 5 cycles with defaults.
  auto binary = Assemble(R"(
    main:
      la $t0, buf
      lw $v0, 0($t0)
      jr $ra
    .data
    buf: .word 9
  )");
  ASSERT_TRUE(binary.ok());
  Simulator sim(binary.value());
  const auto run = sim.Run();
  // la = lui+ori (2 cycles) + lw (2) + jr (2) = 6.
  EXPECT_EQ(run.cycles, 6u);
  EXPECT_EQ(run.instructions, 4u);
}

TEST(Simulator, ProfileCountsBranchDirections) {
  auto binary = Assemble(R"(
    main:
      li $t0, 4
      li $v0, 0
    loop:
      addiu $v0, $v0, 1
      addiu $t0, $t0, -1
      bgtz $t0, loop
      jr $ra
  )");
  ASSERT_TRUE(binary.ok());
  Simulator sim(binary.value());
  const auto run = sim.Run();
  EXPECT_EQ(run.return_value, 4);
  // The bgtz at word index 4: taken 3 times, not taken once.
  EXPECT_EQ(run.profile.branch_taken[4], 3u);
  EXPECT_EQ(run.profile.branch_not_taken[4], 1u);
  // Loop body (word 2) executed 4 times.
  EXPECT_EQ(run.profile.instr_count[2], 4u);
  EXPECT_EQ(run.profile.CountAt(kTextBase + 8), 4u);
  EXPECT_EQ(run.profile.total_instructions, run.instructions);
  EXPECT_EQ(run.profile.total_cycles, run.cycles);
}

TEST(Simulator, JalLinksAndJrReturns) {
  EXPECT_EQ(RunAsm(R"(
    move $s7, $ra       # jal clobbers $ra
    li $s0, 5
    jal double
    move $v0, $s0
    move $ra, $s7
    jr $ra
  double:
    sll $s0, $s0, 1
    jr $ra
  )"),
            10);
}

TEST(Simulator, LoadFromTextSegment) {
  // Jump tables read code-segment words; lw must allow it.
  auto binary = Assemble(R"(
    main:
      li $t0, 0x00400000
      lw $v0, 0($t0)
      jr $ra
  )");
  ASSERT_TRUE(binary.ok());
  Simulator sim(binary.value());
  const auto run = sim.Run();
  EXPECT_EQ(static_cast<std::uint32_t>(run.return_value),
            binary.value().text[0]);
}

TEST(Simulator, PeekPokeWord) {
  auto binary = Assemble(R"(
    main:
      la $t0, buf
      lw $v0, 0($t0)
      jr $ra
    .data
    buf: .word 5
  )");
  ASSERT_TRUE(binary.ok());
  Simulator sim(binary.value());
  EXPECT_EQ(sim.PeekWord(kDataBase), 5u);
  sim.PokeWord(kDataBase, 123);
  EXPECT_EQ(sim.Run().return_value, 123);
}

}  // namespace
}  // namespace b2h::mips
