// The repo's capstone property test (DESIGN.md §5): for every benchmark at
// every compiler optimization level, three independent executors agree with
// the native C++ reference:
//   1. the MIPS simulator running the compiled binary,
//   2. the IR interpreter running the fully-optimized decompiled CDFG,
//   3. (at -O1) the RTL simulator running the synthesized whole-app circuit
//      — covered separately in test_rtl.cpp.
// Also checks the decompilation stats tell the expected story per level
// (heavy stack traffic removed at -O0, loops rerolled at -O3).
#include <gtest/gtest.h>

#include "decomp/pipeline.hpp"
#include "ir/interp.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

namespace b2h {
namespace {

class SuiteCosim
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(SuiteCosim, SimulatorInterpreterReferenceAgree) {
  const auto& [name, level] = GetParam();
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  ASSERT_NE(bench, nullptr);
  const std::int32_t expected = bench->reference();

  auto binary = suite::BuildBinary(*bench, level);
  ASSERT_TRUE(binary.ok()) << binary.status().message();

  mips::Simulator sim(binary.value());
  const auto run = sim.Run();
  ASSERT_EQ(run.reason, mips::HaltReason::kReturned) << run.fault_message;
  EXPECT_EQ(run.return_value, expected) << "compiler or simulator bug";

  decomp::DecompileOptions options;
  options.profile = &run.profile;
  auto program = decomp::Decompile(binary.value(), options);
  ASSERT_TRUE(program.ok()) << program.status().message();

  ir::Interpreter interp(program.value().module, binary.value().data);
  const auto result = interp.Run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.return_value, expected) << "decompilation changed semantics";
}

std::vector<std::tuple<const char*, int>> AllCombos() {
  std::vector<std::tuple<const char*, int>> combos;
  for (const suite::Benchmark* bench : suite::WorkingBenchmarks()) {
    for (int level = 0; level <= 3; ++level) {
      combos.emplace_back(bench->name.c_str(), level);
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllLevels, SuiteCosim, ::testing::ValuesIn(AllCombos()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_O" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SuiteInventory, TwentyBenchmarksTwoExpectedFailures) {
  // Paper §4: twenty examples; CDFG recovery fails for two EEMBC examples
  // because of indirect jumps.
  const auto& all = suite::AllBenchmarks();
  EXPECT_EQ(all.size(), 20u);
  std::size_t failures = 0;
  std::size_t eembc_failures = 0;
  for (const auto& bench : all) {
    if (bench.expect_cdfg_failure) {
      ++failures;
      if (bench.origin == "EEMBC") ++eembc_failures;
    }
  }
  EXPECT_EQ(failures, 2u);
  EXPECT_EQ(eembc_failures, 2u);
  EXPECT_EQ(suite::WorkingBenchmarks().size(), 18u);
  // Origins span the suites the paper lists.
  std::set<std::string> origins;
  for (const auto& bench : all) origins.insert(bench.origin);
  EXPECT_TRUE(origins.count("EEMBC"));
  EXPECT_TRUE(origins.count("PowerStone"));
  EXPECT_TRUE(origins.count("MediaBench"));
  EXPECT_TRUE(origins.count("local"));
}

TEST(SuiteInventory, AssemblyBenchmarksRunButDoNotDecompile) {
  for (const auto& bench : suite::AllBenchmarks()) {
    if (!bench.expect_cdfg_failure) continue;
    auto binary = suite::BuildBinary(bench, 1);
    ASSERT_TRUE(binary.ok()) << bench.name;
    mips::Simulator sim(binary.value());
    const auto run = sim.Run();
    EXPECT_EQ(run.reason, mips::HaltReason::kReturned) << bench.name;
    EXPECT_EQ(run.return_value, bench.reference()) << bench.name;
    auto program = decomp::Decompile(binary.value());
    ASSERT_FALSE(program.ok()) << bench.name;
    EXPECT_EQ(program.status().kind(), ErrorKind::kIndirectJump)
        << bench.name;
  }
}

TEST(DecompStats, StackRemovalDominatesAtO0) {
  const suite::Benchmark* bench = suite::FindBenchmark("fir");
  auto at_o0 = suite::BuildBinary(*bench, 0);
  ASSERT_TRUE(at_o0.ok());
  auto program = decomp::Decompile(at_o0.value());
  ASSERT_TRUE(program.ok());
  // -O0 spills everything: dozens of stack operations must disappear.
  EXPECT_GT(program.value().stats.stack_ops_removed, 20u);
  EXPECT_GT(program.value().stats.stack_slots_promoted, 2u);
}

TEST(DecompStats, RerollingFiresAtO3) {
  std::size_t rerolled_totals = 0;
  for (const char* name : {"fir", "bcnt", "brev", "autcor00"}) {
    const suite::Benchmark* bench = suite::FindBenchmark(name);
    auto at_o3 = suite::BuildBinary(*bench, 3);
    ASSERT_TRUE(at_o3.ok());
    auto program = decomp::Decompile(at_o3.value());
    ASSERT_TRUE(program.ok()) << name;
    rerolled_totals += program.value().stats.loops_rerolled;
  }
  EXPECT_GT(rerolled_totals, 0u)
      << "no unrolled loop recovered across the O3 suite";
}

TEST(DecompStats, RerollingShrinksO3TowardO2) {
  // The rerolled O3 CDFG should be close in size to the O2 CDFG (the paper:
  // roll loops "back into a representation similar to their original
  // representation").
  const suite::Benchmark* bench = suite::FindBenchmark("brev");
  auto at_o2 = suite::BuildBinary(*bench, 2);
  auto at_o3 = suite::BuildBinary(*bench, 3);
  ASSERT_TRUE(at_o2.ok());
  ASSERT_TRUE(at_o3.ok());
  auto program_o2 = decomp::Decompile(at_o2.value());
  auto program_o3 = decomp::Decompile(at_o3.value());
  ASSERT_TRUE(program_o2.ok());
  ASSERT_TRUE(program_o3.ok());
  ASSERT_GT(program_o3.value().stats.loops_rerolled, 0u);
  const double o2_size =
      static_cast<double>(program_o2.value().stats.final_instrs);
  const double o3_size =
      static_cast<double>(program_o3.value().stats.final_instrs);
  EXPECT_LT(o3_size, o2_size * 1.5)
      << "rerolling failed to recover the compact representation";
}

TEST(DecompStats, StrengthPromotionFiresAtO2) {
  // -O2 decomposes x*181 etc. into shift/add chains; promotion must
  // recover multiplications somewhere in the DCT-style benchmarks.
  std::size_t recovered = 0;
  for (const char* name : {"idct01", "jpeg_dct", "autcor00"}) {
    const suite::Benchmark* bench = suite::FindBenchmark(name);
    auto at_o2 = suite::BuildBinary(*bench, 2);
    ASSERT_TRUE(at_o2.ok());
    auto program = decomp::Decompile(at_o2.value());
    ASSERT_TRUE(program.ok()) << name;
    recovered += program.value().stats.muls_recovered;
  }
  EXPECT_GT(recovered, 0u);
}

TEST(DecompStats, SizeReductionNarrowsByteKernels) {
  const suite::Benchmark* bench = suite::FindBenchmark("rgbcmy01");
  auto binary = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(binary.ok());
  auto program = decomp::Decompile(binary.value());
  ASSERT_TRUE(program.ok());
  EXPECT_GT(program.value().stats.instrs_narrowed, 5u);
  EXPECT_GT(program.value().stats.bits_saved, 50u);
}

TEST(DecompStats, ConstantsSimplifiedEverywhere) {
  for (const suite::Benchmark* bench : suite::WorkingBenchmarks()) {
    auto binary = suite::BuildBinary(*bench, 1);
    ASSERT_TRUE(binary.ok());
    auto program = decomp::Decompile(binary.value());
    ASSERT_TRUE(program.ok()) << bench->name;
    // Lifted code always carries move idioms / address chains to fold.
    EXPECT_GT(program.value().stats.constants_simplified, 0u) << bench->name;
    EXPECT_LT(program.value().stats.final_instrs,
              program.value().stats.lifted_instrs)
        << bench->name;
  }
}

}  // namespace
}  // namespace b2h
