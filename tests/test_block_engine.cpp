// Differential tests for the trace-compiled execution engines.
//
// Both block engines — ExecEngine::kBlock (computed-goto threaded dispatch,
// the default) and ExecEngine::kBlockSwitch (the same trace engine with the
// portable switch dispatcher forced) — must be observationally
// indistinguishable from the retained per-instruction reference interpreter
// (ExecEngine::kReference): bit-identical RunResult — return value,
// instruction/cycle totals, halt reason, fault message, and all four
// per-index profile vectors — plus, for RunInstrumented, an identical
// observer event stream: same events, same batch boundaries, and the same
// live profile visible inside every callback (observers snapshot the
// profile mid-run, so expansion points are part of the contract).
//
// Coverage: the whole benchmark suite (plain + instrumented), faults landing
// mid-trace (with and without pending trace counters), instruction budgets
// landing mid-trace (exhaustive small-budget sweep), randomized
// assembler-generated programs mixing loops, calls, wild/unaligned memory
// access, and every ALU class, plus the process-wide SharedBlockCache
// (single-flight pre-decode under construction races, warm-sweep reuse).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "mips/assembler.hpp"
#include "mips/shared_cache.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

namespace b2h::mips {
namespace {

std::uint64_t HashU64(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the value's bytes.
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t ProfileHash(const ExecProfile& profile) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& vec : {profile.instr_count, profile.cycle_count,
                          profile.branch_taken, profile.branch_not_taken}) {
    for (std::uint64_t v : vec) h = HashU64(h, v);
  }
  h = HashU64(h, profile.total_instructions);
  h = HashU64(h, profile.total_cycles);
  return h;
}

void ExpectIdentical(const RunResult& block, const RunResult& reference) {
  EXPECT_EQ(block.return_value, reference.return_value);
  EXPECT_EQ(block.instructions, reference.instructions);
  EXPECT_EQ(block.cycles, reference.cycles);
  EXPECT_EQ(block.reason, reference.reason);
  EXPECT_EQ(block.fault_message, reference.fault_message);
  EXPECT_EQ(block.profile.total_instructions,
            reference.profile.total_instructions);
  EXPECT_EQ(block.profile.total_cycles, reference.profile.total_cycles);
  EXPECT_EQ(block.profile.instr_count, reference.profile.instr_count);
  EXPECT_EQ(block.profile.cycle_count, reference.profile.cycle_count);
  EXPECT_EQ(block.profile.branch_taken, reference.profile.branch_taken);
  EXPECT_EQ(block.profile.branch_not_taken,
            reference.profile.branch_not_taken);
}

/// Records everything an observer can see: the events of each batch, the
/// batch boundaries, and a digest of the live so-far state (cumulative
/// counters and the full profile) at each callback.
class RecordingObserver final : public RunObserver {
 public:
  struct Batch {
    std::vector<BranchEvent> events;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t profile_hash = 0;
  };

  void OnBackwardBranches(std::span<const BranchEvent> events,
                          const RunResult& so_far) override {
    Batch batch;
    batch.events.assign(events.begin(), events.end());
    batch.instructions = so_far.instructions;
    batch.cycles = so_far.cycles;
    batch.profile_hash = ProfileHash(so_far.profile);
    batches.push_back(std::move(batch));
  }

  std::vector<Batch> batches;
};

void ExpectSameObservations(const RecordingObserver& block,
                            const RecordingObserver& reference) {
  ASSERT_EQ(block.batches.size(), reference.batches.size());
  for (std::size_t i = 0; i < block.batches.size(); ++i) {
    const auto& a = block.batches[i];
    const auto& b = reference.batches[i];
    SCOPED_TRACE("batch " + std::to_string(i));
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t e = 0; e < a.events.size(); ++e) {
      EXPECT_EQ(a.events[e].target_pc, b.events[e].target_pc) << "event " << e;
      EXPECT_EQ(a.events[e].from_pc, b.events[e].from_pc) << "event " << e;
    }
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.profile_hash, b.profile_hash);
  }
}

/// Runs the binary on all four engines, plain and instrumented, and expects
/// the block engines (threaded and switch dispatch) and the tiered
/// translated engine to be bit-identical to the reference interpreter
/// throughout.  kTranslated runs twice: the first pass covers cold traces
/// plus mid-run promotion (the shared TranslationBank accumulates dispatch
/// counts across runs), the second a fully warm bank where hot paths
/// execute as chained translated traces.
void ExpectEnginesAgree(const SoftBinary& binary,
                        std::uint64_t max_instructions = 100'000'000) {
  Simulator reference(binary, {}, ExecEngine::kReference);
  const RunResult ref_plain = reference.Run({}, max_instructions);
  RecordingObserver ref_obs;
  const RunResult ref_hooked =
      reference.RunInstrumented({}, max_instructions, &ref_obs);
  const struct {
    ExecEngine engine;
    const char* label;
  } kEngines[] = {
      {ExecEngine::kBlock, "engine block"},
      {ExecEngine::kBlockSwitch, "engine block-switch"},
      {ExecEngine::kTranslated, "engine translated (warming)"},
      {ExecEngine::kTranslated, "engine translated (warm)"},
  };
  for (const auto& [engine, label] : kEngines) {
    SCOPED_TRACE(label);
    Simulator sim(binary, {}, engine);
    {
      SCOPED_TRACE("plain Run");
      ExpectIdentical(sim.Run({}, max_instructions), ref_plain);
    }
    {
      SCOPED_TRACE("RunInstrumented");
      RecordingObserver obs;
      ExpectIdentical(sim.RunInstrumented({}, max_instructions, &obs),
                      ref_hooked);
      ExpectSameObservations(obs, ref_obs);
    }
  }
}

// ---------------------------------------------------------------------------
// Whole suite, plain + instrumented.

TEST(BlockEngine, WholeSuiteBitIdentical) {
  for (const suite::Benchmark& bench : suite::AllBenchmarks()) {
    SCOPED_TRACE(bench.name);
    auto built = suite::BuildBinary(bench, 1);
    ASSERT_TRUE(built.ok()) << built.status().message();
    ExpectEnginesAgree(built.value());
  }
}

TEST(BlockEngine, InstrumentedMatchesPlainRun) {
  // The engine contract from PR 2, re-verified on the block engine: the
  // hook changes callbacks only, never the result.
  const suite::Benchmark* bench = suite::FindBenchmark("fir");
  ASSERT_NE(bench, nullptr);
  auto built = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(built.ok());
  Simulator sim(built.value());
  const RunResult plain = sim.Run();
  RecordingObserver observer;
  const RunResult hooked = sim.RunInstrumented({}, 100'000'000, &observer);
  ExpectIdentical(hooked, plain);
  EXPECT_FALSE(observer.batches.empty());
}

// ---------------------------------------------------------------------------
// Faults mid-block.

TEST(BlockEngine, FaultMidBlockIsBitIdentical) {
  // The sw faults in the middle of a straight-line block: the block engine
  // must charge exactly the completed prefix, like the reference does.
  auto binary = Assemble(R"(
    main:
      li $t0, 0x200
      addiu $t1, $zero, 7
      sw $t1, 0($t0)
      addiu $t2, $zero, 9
      jr $ra
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  ExpectEnginesAgree(binary.value());
  Simulator sim(binary.value());
  const RunResult run = sim.Run();
  EXPECT_EQ(run.reason, HaltReason::kFault);
  EXPECT_NE(run.fault_message.find("store outside memory"), std::string::npos);
}

TEST(BlockEngine, FaultWithPendingBlockCountersIsBitIdentical) {
  // A hot loop runs first, so block counters are pending when the fault
  // expansion happens.
  auto binary = Assemble(R"(
    main:
      li $t0, 5
    loop:
      addiu $t0, $t0, -1
      bgtz $t0, loop
      li $t1, 0x200
      lw $v0, 0($t1)
      jr $ra
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  ExpectEnginesAgree(binary.value());
}

TEST(BlockEngine, UnalignedFaultMidBlockIsBitIdentical) {
  auto binary = Assemble(R"(
    main:
      la $t0, buf
      lw $v0, 1($t0)
      addiu $v0, $v0, 1
      jr $ra
    .data
    buf: .word 1, 2
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  ExpectEnginesAgree(binary.value());
}

TEST(BlockEngine, FallthroughOffTextEndIsBitIdentical) {
  // No terminator at all: the straight-line run falls off the end of text.
  auto binary = Assemble("main:\n addiu $v0, $zero, 3\n addiu $v0, $v0, 4\n");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  ExpectEnginesAgree(binary.value());
  Simulator sim(binary.value());
  const RunResult run = sim.Run();
  EXPECT_EQ(run.reason, HaltReason::kFault);
  EXPECT_NE(run.fault_message.find("pc outside text"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Instruction budgets landing mid-block.

TEST(BlockEngine, BudgetSweepLandsMidBlockBitIdentical) {
  const suite::Benchmark* bench = suite::FindBenchmark("crc");
  ASSERT_NE(bench, nullptr);
  auto built = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(built.ok());
  // Every small budget in turn: this walks the budget boundary through
  // every offset of the early blocks, including 0 and exact block ends.
  for (std::uint64_t budget = 0; budget <= 96; ++budget) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    ExpectEnginesAgree(built.value(), budget);
  }
  // A few larger budgets land mid-run inside hot loops.
  for (std::uint64_t budget : {997u, 4999u, 20011u}) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    ExpectEnginesAgree(built.value(), budget);
  }
}

// ---------------------------------------------------------------------------
// Randomized programs.

std::string RandomProgram(std::mt19937& rng) {
  const auto pick = [&](int n) { return static_cast<int>(rng() % n); };
  std::ostringstream s;
  const int blocks = 4 + pick(6);
  s << "main:\n";
  s << "  move $s7, $ra\n";
  s << "  la $s0, buf\n";
  s << "  li $s1, " << (4 + pick(24)) << "\n";  // branch fuel: bounds loops
  for (int r = 0; r < 4; ++r) {
    s << "  li $t" << r << ", " << static_cast<std::int32_t>(rng()) << "\n";
  }
  for (int b = 0; b < blocks; ++b) {
    s << "L" << b << ":\n";
    const int body = 2 + pick(7);
    for (int i = 0; i < body; ++i) {
      const int a = pick(8);
      const int c = pick(8);
      const int d = pick(8);
      switch (pick(14)) {
        case 0: s << "  addu $t" << d << ", $t" << a << ", $t" << c << "\n"; break;
        case 1: s << "  subu $t" << d << ", $t" << a << ", $t" << c << "\n"; break;
        case 2: s << "  and $t" << d << ", $t" << a << ", $t" << c << "\n"; break;
        case 3: s << "  xor $t" << d << ", $t" << a << ", $t" << c << "\n"; break;
        case 4: s << "  sll $t" << d << ", $t" << a << ", " << pick(32) << "\n"; break;
        case 5: s << "  srav $t" << d << ", $t" << a << ", $t" << c << "\n"; break;
        case 6: s << "  addiu $t" << d << ", $t" << a << ", " << (pick(4096) - 2048) << "\n"; break;
        case 7: s << "  slti $t" << d << ", $t" << a << ", " << (pick(200) - 100) << "\n"; break;
        case 8: s << "  mult $t" << a << ", $t" << c << "\n  mflo $t" << d << "\n"; break;
        case 9: s << "  div $t" << a << ", $t" << c << "\n  mfhi $t" << d << "\n"; break;
        case 10: s << "  sw $t" << a << ", " << 4 * pick(60) << "($s0)\n"; break;
        case 11: s << "  lw $t" << d << ", " << 4 * pick(60) << "($s0)\n"; break;
        case 12: s << "  sb $t" << a << ", " << pick(250) << "($s0)\n"; break;
        case 13:
          if (pick(4) == 0) {
            // Wild access: address comes from a scrambled register, so this
            // usually faults mid-block (and occasionally doesn't — both
            // engines must simply agree).
            s << "  lw $t" << d << ", " << 4 * pick(8) << "($t" << a << ")\n";
          } else {
            s << "  lhu $t" << d << ", " << 2 * pick(120) << "($s0)\n";
          }
          break;
      }
    }
    // Terminator: fall through, a fuel-guarded branch (any direction), a
    // forward jump, or a call to the leaf helper.
    switch (pick(4)) {
      case 0:
        break;
      case 1:
        s << "  addiu $s1, $s1, -1\n";
        s << "  bgtz $s1, L" << pick(blocks) << "\n";
        break;
      case 2:
        if (b + 1 < blocks) s << "  j L" << (b + 1 + pick(blocks - b - 1)) << "\n";
        break;
      case 3:
        s << "  jal helper\n";
        break;
    }
  }
  s << "  move $ra, $s7\n";
  s << "  jr $ra\n";
  s << "helper:\n";
  s << "  addu $t9, $t9, $a0\n";
  s << "  jr $ra\n";
  s << ".data\n";
  s << "buf: .space 256\n";
  return s.str();
}

TEST(BlockEngine, RandomizedProgramsBitIdentical) {
  for (std::uint32_t seed = 1; seed <= 40; ++seed) {
    std::mt19937 rng(seed);
    const std::string source = RandomProgram(rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + source);
    auto binary = Assemble(source);
    ASSERT_TRUE(binary.ok()) << binary.status().message();
    // A tight budget makes non-terminating shapes deterministic and lands
    // mid-block often; a larger one lets most programs halt normally.
    ExpectEnginesAgree(binary.value(), 30'000);
    ExpectEnginesAgree(binary.value());
  }
}

// ---------------------------------------------------------------------------
// Computed dispatch: jump tables through jr, function tables through jalr.

/// A dispatch loop driving `targets` cases (a power of two) through a
/// table of code addresses built at runtime.  `call` picks the dispatch
/// style: jr into labeled cases that rejoin at a common point, or jalr to
/// leaf functions that return.  Iteration counts are high enough to cross
/// the tier-3 promotion threshold mid-run, so one program exercises cold
/// traces, promotion, inline-cache chaining on the indirect terminator
/// (monomorphic at 1 target, polymorphic at 2/4) and megamorphic fallback
/// (8 targets exceed the inline cache), all under the differential oracle.
std::string ComputedDispatchProgram(std::mt19937& rng, int targets, int iters,
                                    bool call) {
  std::ostringstream s;
  s << "main:\n";
  s << "  move $s7, $ra\n";
  s << "  la $s0, buf\n";
  for (int t = 0; t < targets; ++t) {
    s << "  la $t0, case" << t << "\n";
    s << "  sw $t0, " << 4 * t << "($s0)\n";
  }
  s << "  li $s1, " << iters << "\n";
  s << "  li $s2, " << static_cast<int>(rng() % 1024) << "\n";
  s << "  li $v0, 0\n";
  s << "loop:\n";
  // Scramble the selector, mask it to the table size, and dispatch.
  s << "  addiu $s2, $s2, " << (7 + static_cast<int>(rng() % 13)) << "\n";
  s << "  andi $t1, $s2, " << (targets - 1) << "\n";
  s << "  sll $t1, $t1, 2\n";
  s << "  addu $t1, $t1, $s0\n";
  s << "  lw $t1, 0($t1)\n";
  if (call) {
    s << "  jalr $t1\n";
  } else {
    s << "  jr $t1\n";
  }
  s << "join:\n";
  s << "  addiu $s1, $s1, -1\n";
  s << "  bgtz $s1, loop\n";
  s << "  move $ra, $s7\n";
  s << "  jr $ra\n";
  for (int t = 0; t < targets; ++t) {
    s << "case" << t << ":\n";
    s << "  addiu $v0, $v0, " << (t + 1) << "\n";
    s << "  xor $v0, $v0, $s2\n";
    if (call) {
      s << "  jr $ra\n";
    } else {
      s << "  j join\n";
    }
  }
  s << ".data\n";
  s << "buf: .space " << 4 * targets << "\n";
  return s.str();
}

TEST(BlockEngine, JumpTableDispatchBitIdentical) {
  // jr through a runtime-built jump table: monomorphic, polymorphic within
  // the inline cache, and megamorphic (8 targets observed > 4 cache ways).
  for (const int targets : {1, 2, 4, 8}) {
    std::mt19937 rng(static_cast<std::uint32_t>(100 + targets));
    const std::string source = ComputedDispatchProgram(rng, targets, 220,
                                                       /*call=*/false);
    SCOPED_TRACE("targets " + std::to_string(targets) + "\n" + source);
    auto binary = Assemble(source);
    ASSERT_TRUE(binary.ok()) << binary.status().message();
    ExpectEnginesAgree(binary.value());
  }
}

TEST(BlockEngine, FunctionTableCallsBitIdentical) {
  // jalr through a function-pointer table: the link write and the indirect
  // return (jr $ra, itself a polymorphic exit back into the loop).
  for (const int targets : {1, 4, 8}) {
    std::mt19937 rng(static_cast<std::uint32_t>(200 + targets));
    const std::string source = ComputedDispatchProgram(rng, targets, 220,
                                                       /*call=*/true);
    SCOPED_TRACE("targets " + std::to_string(targets) + "\n" + source);
    auto binary = Assemble(source);
    ASSERT_TRUE(binary.ok()) << binary.status().message();
    ExpectEnginesAgree(binary.value());
  }
}

TEST(BlockEngine, JumpTableBudgetSweepBitIdentical) {
  // Budgets landing inside warm chained traces: the translated runner must
  // refuse to chain when the remaining budget can't cover the next trace,
  // demoting to tier 2's partial accounting at exactly the same boundary.
  std::mt19937 rng(7);
  const std::string source =
      ComputedDispatchProgram(rng, 4, 220, /*call=*/false);
  auto binary = Assemble(source);
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  // Warm the translation bank first so the sweep hits translated traces.
  ExpectEnginesAgree(binary.value());
  for (std::uint64_t budget = 0; budget <= 64; ++budget) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    ExpectEnginesAgree(binary.value(), budget);
  }
  for (std::uint64_t budget : {463u, 1999u}) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    ExpectEnginesAgree(binary.value(), budget);
  }
}

// ---------------------------------------------------------------------------
// Block-cache structure sanity.

TEST(BlockEngine, BlockCacheTracesAreWellFormed) {
  const suite::Benchmark* bench = suite::FindBenchmark("fir");
  ASSERT_NE(bench, nullptr);
  auto built = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(built.ok());
  Simulator sim(built.value());
  const BlockCache& cache = sim.blocks();
  ASSERT_EQ(cache.size(), built.value().text.size());
  EXPECT_GT(cache.leader_blocks(), 0u);
  const BlockSpan* spans = cache.spans();
  const PreInstr* instrs = cache.instrs();
  const SideExit* exits = cache.exits();
  bool saw_multi_exit = false;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    const BlockSpan& span = spans[i];
    ASSERT_GE(span.len, 1u) << i;  // suite text decodes fully
    ASSERT_LE(span.len, BlockCache::kMaxTraceLen) << i;
    ASSERT_LE(i + span.len, cache.size()) << i;
    ASSERT_LE(span.exit_begin + span.exit_count, cache.total_side_exits())
        << i;
    saw_multi_exit |= span.exit_count > 0;
    // Walk the trace: conditional branches appear exactly at the side-exit
    // offsets (strictly increasing, with prefix_cycles equal to the static
    // cycle sum through the branch); a jump may only be the terminator.
    std::uint64_t cycles = 0;
    std::uint32_t next_exit = 0;
    for (std::uint32_t k = 0; k < span.len; ++k) {
      const Op op = instrs[i + k].op;
      cycles += instrs[i + k].cycles;
      if (IsBranch(op)) {
        ASSERT_LT(next_exit, span.exit_count) << i << "+" << k;
        const SideExit& se = exits[span.exit_begin + next_exit];
        EXPECT_EQ(se.offset, k) << i;
        EXPECT_EQ(se.prefix_cycles, cycles) << i << "+" << k;
        EXPECT_EQ(se.backward,
                  instrs[i + k].target < kTextBase + (i + k) * 4u)
            << i << "+" << k;
        ++next_exit;
      } else if (IsControl(op)) {
        EXPECT_EQ(k, span.len - 1) << i;  // jumps terminate the trace
        EXPECT_NE(span.term, TermKind::kFallthrough) << i;
      }
    }
    EXPECT_EQ(next_exit, span.exit_count) << i;
    EXPECT_EQ(span.cycles, cycles) << i;
  }
  // fir has loops with conditional branches, so multi-exit traces must
  // actually occur — otherwise this test exercises nothing.
  EXPECT_TRUE(saw_multi_exit);
}

// ---------------------------------------------------------------------------
// Process-wide shared pre-decode cache.

std::uint64_t ResultHash(const RunResult& result) {
  std::uint64_t h = ProfileHash(result.profile);
  h = HashU64(h, static_cast<std::uint64_t>(result.return_value));
  h = HashU64(h, result.instructions);
  h = HashU64(h, result.cycles);
  return h;
}

TEST(SharedBlockCache, ConcurrentConstructionDoesOnePredecode) {
  // A program no other test assembles, so its (text, model) key is cold.
  auto binary = Assemble(R"(
    main:
      li $t0, 24683
      li $v0, 0
    loop:
      addiu $t0, $t0, -3
      xor $v0, $v0, $t0
      bgtz $t0, loop
      jr $ra
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();

  SharedBlockCache& cache = SharedBlockCache::Global();
  const SharedBlockCache::Stats before = cache.stats();
  constexpr int kThreads = 8;
  std::vector<RunResult> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Simulator sim(binary.value());
        results[static_cast<std::size_t>(t)] = sim.Run();
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const SharedBlockCache::Stats after = cache.stats();
  // Single-flight: all eight construction races resolve to one pre-decode;
  // the other seven callers count as hits (waiting on the in-flight build).
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_GT(after.bytes, 0u);
  for (int t = 0; t < kThreads; ++t) {
    SCOPED_TRACE("thread " + std::to_string(t));
    EXPECT_EQ(results[static_cast<std::size_t>(t)].reason,
              HaltReason::kReturned);
    EXPECT_EQ(ResultHash(results[static_cast<std::size_t>(t)]),
              ResultHash(results[0]));
  }
}

TEST(SharedBlockCache, WarmSweepNeverRedecodes) {
  const suite::Benchmark* bench = suite::FindBenchmark("crc");
  ASSERT_NE(bench, nullptr);
  auto built = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(built.ok());
  {
    Simulator warmup(built.value());  // cold construction (at most one miss)
  }
  const SharedBlockCache::Stats before = SharedBlockCache::Global().stats();
  // A platform sweep over one binary with a shared cycle model — the RunMany
  // shape: every further Simulator must reuse the resident pre-decode.
  for (int platform = 0; platform < 6; ++platform) {
    Simulator sim(built.value());
    const RunResult run = sim.Run();
    EXPECT_EQ(run.reason, HaltReason::kReturned);
  }
  const SharedBlockCache::Stats after = SharedBlockCache::Global().stats();
  EXPECT_EQ(after.misses, before.misses);  // zero redundant pre-decodes
  EXPECT_EQ(after.hits - before.hits, 6u);
  // A different cycle model is a different key, though.
  CycleModel slow_mem;
  slow_mem.load_extra = 7;
  Simulator slow(built.value(), slow_mem);
  EXPECT_EQ(SharedBlockCache::Global().stats().misses, after.misses + 1);
}

TEST(SharedBlockCache, EvictionDropsTranslatedTracesSafely) {
  // A hot loop long enough to cross the tier-3 promotion threshold, on a
  // key no other test assembles.
  auto binary = Assemble(R"(
    main:
      li $t0, 4003
      li $v0, 0
    loop:
      addu $v0, $v0, $t0
      addiu $t0, $t0, -1
      bgtz $t0, loop
      jr $ra
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  Simulator reference(binary.value(), {}, ExecEngine::kReference);
  const RunResult want = reference.Run();

  Simulator sim(binary.value(), {}, ExecEngine::kTranslated);
  ExpectIdentical(sim.Run(), want);

  SharedBlockCache& cache = SharedBlockCache::Global();
  const SharedBlockCache::Stats mid = cache.stats();
  EXPECT_GT(mid.translated_traces, 0u);  // the loop really got promoted

  // Fresher keys make the translated entry the LRU victim; a byte budget
  // nothing fits under then forces eviction while `sim` still holds the
  // entry through its shared_ptr.
  auto other1 = Assemble("main:\n li $v0, 11\n jr $ra\n");
  auto other2 = Assemble("main:\n li $v0, 22\n jr $ra\n");
  ASSERT_TRUE(other1.ok());
  ASSERT_TRUE(other2.ok());
  Simulator keep1(other1.value());
  Simulator keep2(other2.value());
  cache.set_max_bytes(1);
  const SharedBlockCache::Stats after = cache.stats();
  cache.set_max_bytes(SharedBlockCache::kDefaultMaxBytes);
  // The translated closures left the cache with their entry — counted, so
  // operators can see re-warm churn under memory pressure.
  EXPECT_GT(after.evicted_translated, mid.evicted_translated);

  // No dangling: the evicted bank stays alive through the Simulator's
  // reference and further runs (still chaining translated traces) are
  // bit-identical.
  ExpectIdentical(sim.Run(), want);
  ExpectIdentical(sim.Run(), want);
}

TEST(BlockEngine, RecyclingRunOverloadIsBitIdentical) {
  // The storage-recycling overload (used by the bench hot loop) must
  // produce byte-for-byte the same RunResult as a fresh Run, on every
  // engine, across repeated recycled runs.
  for (const suite::Benchmark& bench : suite::AllBenchmarks()) {
    SCOPED_TRACE(bench.name);
    auto built = suite::BuildBinary(bench, 1);
    ASSERT_TRUE(built.ok()) << built.status().message();
    Simulator reference(built.value(), {}, ExecEngine::kReference);
    const RunResult want = reference.Run();
    for (ExecEngine engine :
         {ExecEngine::kReference, ExecEngine::kBlock, ExecEngine::kBlockSwitch,
          ExecEngine::kTranslated}) {
      Simulator sim(built.value(), {}, engine);
      RunResult recycled;
      for (int rep = 0; rep < 3; ++rep) {
        recycled = sim.Run({}, 100'000'000, std::move(recycled));
        ExpectIdentical(recycled, want);
      }
    }
  }
}

}  // namespace
}  // namespace b2h::mips
