// Lifter / CFG recovery tests: block discovery, SSA construction, the
// indirect-jump failure mode, function discovery through jal, and profile
// annotation.
#include "decomp/lifter.hpp"

#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "mips/assembler.hpp"
#include "mips/simulator.hpp"

namespace b2h::decomp {
namespace {

mips::SoftBinary Asm(const std::string& source) {
  auto binary = mips::Assemble(source);
  EXPECT_TRUE(binary.ok()) << binary.status().message();
  return std::move(binary).take();
}

TEST(Lifter, StraightLineCode) {
  const auto binary = Asm(R"(
    main:
      li $t0, 5
      addiu $t0, $t0, 3
      move $v0, $t0
      jr $ra
  )");
  auto module = Lift(binary);
  ASSERT_TRUE(module.ok()) << module.status().message();
  EXPECT_TRUE(ir::Verify(module.value()).ok());
  EXPECT_EQ(module.value().functions.size(), 1u);
  const ir::Function* main = module.value().main;
  EXPECT_EQ(main->blocks().size(), 1u);
  EXPECT_EQ(main->name(), "main");
}

TEST(Lifter, BranchMakesDiamond) {
  const auto binary = Asm(R"(
    main:
      bgez $a0, pos
      subu $v0, $zero, $a0
      jr $ra
    pos:
      move $v0, $a0
      jr $ra
  )");
  auto module = Lift(binary);
  ASSERT_TRUE(module.ok()) << module.status().message();
  const ir::Function* main = module.value().main;
  EXPECT_EQ(main->blocks().size(), 3u);
  const Status status = ir::Verify(*main);
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(Lifter, LoopGetsPhi) {
  const auto binary = Asm(R"(
    main:
      li $t0, 0
      li $t1, 0
    loop:
      addu $t1, $t1, $t0
      addiu $t0, $t0, 1
      slti $t2, $t0, 10
      bne $t2, $zero, loop
      move $v0, $t1
      jr $ra
  )");
  auto module = Lift(binary);
  ASSERT_TRUE(module.ok()) << module.status().message();
  const ir::Function* main = module.value().main;
  std::size_t phis = 0;
  for (const auto& block : main->blocks()) {
    phis += block->Phis().size();
  }
  EXPECT_GE(phis, 2u);  // induction variable + accumulator
  EXPECT_TRUE(ir::Verify(*main).ok());
}

TEST(Lifter, IndirectJumpFailsRecovery) {
  const auto binary = Asm(R"(
    main:
      la $t0, main
      jr $t0
  )");
  auto module = Lift(binary);
  ASSERT_FALSE(module.ok());
  EXPECT_EQ(module.status().kind(), ErrorKind::kIndirectJump);
  EXPECT_NE(module.status().message().find("jr"), std::string::npos);
}

TEST(Lifter, JalrFailsRecovery) {
  const auto binary = Asm(R"(
    main:
      la $t0, main
      jalr $t0
      jr $ra
  )");
  auto module = Lift(binary);
  ASSERT_FALSE(module.ok());
  EXPECT_EQ(module.status().kind(), ErrorKind::kIndirectJump);
}

TEST(Lifter, DiscoversCalleesThroughJal) {
  const auto binary = Asm(R"(
    main:
      li $a0, 4
      jal helper
      jr $ra
    helper:
      sll $v0, $a0, 1
      jr $ra
  )");
  auto module = Lift(binary);
  ASSERT_TRUE(module.ok()) << module.status().message();
  EXPECT_EQ(module.value().functions.size(), 2u);
  const ir::Function* helper =
      module.value().FindByEntry(binary.symbols.at("helper"));
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->name(), "helper");
  // main contains a call op referencing the helper entry.
  bool found_call = false;
  for (const auto& block : module.value().main->blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == ir::Opcode::kCall) {
        found_call = true;
        EXPECT_EQ(instr->call_target, binary.symbols.at("helper"));
      }
    }
  }
  EXPECT_TRUE(found_call);
}

TEST(Lifter, MalformedBinaryFails) {
  mips::SoftBinary binary;
  binary.text = {0xFFFFFFFFu};  // undecodable
  auto module = Lift(binary);
  ASSERT_FALSE(module.ok());
  EXPECT_EQ(module.status().kind(), ErrorKind::kMalformedBinary);
}

TEST(Lifter, BranchOutsideTextFails) {
  mips::SoftBinary binary;
  // j 0x0800000 (far outside the one-instruction text segment)
  binary.text = {mips::Encode(
      {.op = mips::Op::kJ, .target = 0x0800000 >> 2})};
  auto module = Lift(binary);
  ASSERT_FALSE(module.ok());
  EXPECT_EQ(module.status().kind(), ErrorKind::kMalformedBinary);
}

TEST(Lifter, ProfileAnnotations) {
  const auto binary = Asm(R"(
    main:
      li $t0, 6
      li $v0, 0
    loop:
      addiu $v0, $v0, 2
      addiu $t0, $t0, -1
      bgtz $t0, loop
      jr $ra
  )");
  mips::Simulator sim(binary);
  const auto run = sim.Run();
  ASSERT_EQ(run.return_value, 12);

  LiftOptions options;
  options.profile = &run.profile;
  auto module = Lift(binary, options);
  ASSERT_TRUE(module.ok());
  const ir::Function* main = module.value().main;
  // Find the loop block and check counts: executes 6 times, 5 back edges.
  bool found = false;
  for (const auto& block : main->blocks()) {
    if (block->exec_count == 6) {
      found = true;
      EXPECT_EQ(block->taken_count + block->not_taken_count, 6u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lifter, HiLoRegistersFlowThroughMultDiv) {
  const auto binary = Asm(R"(
    main:
      li $t0, 100
      li $t1, 7
      div $t0, $t1
      mflo $t2
      mfhi $t3
      sll $t2, $t2, 8
      or $v0, $t2, $t3
      jr $ra
  )");
  auto lifted = Lift(binary);
  ASSERT_TRUE(lifted.ok());
  EXPECT_TRUE(ir::Verify(lifted.value()).ok());
}

TEST(TrivialPhis, RemovedAfterLifting) {
  // A block with a single predecessor gets placeholder phis during lifting;
  // they must all be gone afterwards.
  const auto binary = Asm(R"(
    main:
      li $t0, 1
      b next
    next:
      move $v0, $t0
      jr $ra
  )");
  auto module = Lift(binary);
  ASSERT_TRUE(module.ok());
  for (const auto& block : module.value().main->blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == ir::Opcode::kPhi) {
        EXPECT_GE(block->preds.size(), 2u)
            << "trivial phi survived in " << block->name;
      }
    }
  }
}

}  // namespace
}  // namespace b2h::decomp
