// Alias / memory-region analysis and control-structure recovery tests.
#include "decomp/alias.hpp"

#include <gtest/gtest.h>

#include "decomp/lifter.hpp"
#include "decomp/passes.hpp"
#include "decomp/structure.hpp"
#include "ir/dominators.hpp"
#include "ir/loops.hpp"
#include "mips/assembler.hpp"

namespace b2h::decomp {
namespace {

struct Lifted {
  mips::SoftBinary binary;
  ir::Module module;
};

Lifted LiftAsm(const std::string& source) {
  auto binary = mips::Assemble(source);
  EXPECT_TRUE(binary.ok()) << binary.status().message();
  auto module = Lift(binary.value());
  EXPECT_TRUE(module.ok()) << module.status().message();
  return {std::move(binary).take(), std::move(module).take()};
}

TEST(Alias, SeparatesDistinctArrays) {
  auto lifted = LiftAsm(R"(
    main:
      la $t0, arr_a
      la $t1, arr_b
      lw $t2, 0($t0)
      sw $t2, 4($t1)
      lw $v0, 8($t0)
      jr $ra
    .data
    arr_a: .word 1, 2, 3, 4
    arr_b: .word 0, 0, 0, 0
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  AliasAnalysis alias(main, &lifted.binary.symbols);

  std::vector<const ir::Instr*> mems;
  for (const auto& block : main.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == ir::Opcode::kLoad ||
          instr->op == ir::Opcode::kStore) {
        mems.push_back(instr);
      }
    }
  }
  ASSERT_EQ(mems.size(), 3u);
  // load arr_a[0] and store arr_b[1] are in different regions.
  EXPECT_NE(alias.RegionIdOf(mems[0]), alias.RegionIdOf(mems[1]));
  EXPECT_FALSE(alias.MayAlias(mems[0], mems[1]));
  // Both arr_a accesses resolve to the same symbol region.
  EXPECT_EQ(alias.RegionIdOf(mems[0]), alias.RegionIdOf(mems[2]));
  EXPECT_TRUE(alias.MayAlias(mems[0], mems[2]));
  // Region carries the symbol name.
  const int region = alias.RegionIdOf(mems[0]);
  ASSERT_GE(region, 0);
  EXPECT_EQ(alias.regions()[static_cast<std::size_t>(region)].name, "arr_a");
}

TEST(Alias, VariableIndexStaysInArrayRegion) {
  auto lifted = LiftAsm(R"(
    main:
      la $t0, arr_a
      sll $t1, $a0, 2
      addu $t1, $t0, $t1
      lw $v0, 0($t1)       # arr_a[a0]
      la $t2, arr_b
      lw $t3, 0($t2)       # arr_b[0]
      addu $v0, $v0, $t3
      jr $ra
    .data
    arr_a: .word 1, 2, 3, 4
    arr_b: .word 9
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  AliasAnalysis alias(main, &lifted.binary.symbols);
  std::vector<const ir::Instr*> loads;
  for (const auto& block : main.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == ir::Opcode::kLoad) loads.push_back(instr);
    }
  }
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_FALSE(alias.MayAlias(loads[0], loads[1]));
  const int region = alias.RegionIdOf(loads[0]);
  ASSERT_GE(region, 0);
  EXPECT_EQ(alias.regions()[static_cast<std::size_t>(region)].name, "arr_a");
}

TEST(Alias, StackAndGlobalsDisjoint) {
  auto lifted = LiftAsm(R"(
    main:
      addiu $sp, $sp, -8
      sw $a0, 0($sp)
      la $t0, g
      sw $a1, 0($t0)
      lw $v0, 0($sp)
      addiu $sp, $sp, 8
      jr $ra
    .data
    g: .word 0
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  AliasAnalysis alias(main, &lifted.binary.symbols);
  std::vector<const ir::Instr*> mems;
  for (const auto& block : main.blocks()) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == ir::Opcode::kLoad ||
          instr->op == ir::Opcode::kStore) {
        mems.push_back(instr);
      }
    }
  }
  ASSERT_EQ(mems.size(), 3u);
  EXPECT_FALSE(alias.MayAlias(mems[0], mems[1]));  // stack vs global
  EXPECT_TRUE(alias.MayAlias(mems[0], mems[2]));   // both stack
}

TEST(Alias, RegionsInLoop) {
  auto lifted = LiftAsm(R"(
    main:
      la $s0, arr_a
      la $s1, arr_b
      li $t0, 0
    loop:
      sll $t1, $t0, 2
      addu $t2, $s0, $t1
      lw $t3, 0($t2)
      addu $t2, $s1, $t1
      sw $t3, 0($t2)
      addiu $t0, $t0, 1
      slti $t9, $t0, 4
      bne $t9, $zero, loop
      move $v0, $zero
      jr $ra
    .data
    arr_a: .word 1, 2, 3, 4
    arr_b: .word 0, 0, 0, 0
  )");
  ir::Function& main = *lifted.module.main;
  SimplifyConstants(main);
  main.RecomputeCfg();
  const ir::DominatorTree dom(main);
  ir::LoopForest forest(main, dom);
  ASSERT_EQ(forest.loops().size(), 1u);
  AliasAnalysis alias(main, &lifted.binary.symbols);
  const auto regions = alias.RegionsIn(*forest.loops().front());
  EXPECT_EQ(regions.size(), 2u);
}

TEST(Structure, CountsIfAndIfElse) {
  auto lifted = LiftAsm(R"(
    main:
      bgez $a0, skip
      subu $a0, $zero, $a0
    skip:
      bgez $a1, else_arm
      li $v0, 1
      b merge
    else_arm:
      li $v0, 2
    merge:
      addu $v0, $v0, $a0
      jr $ra
  )");
  const StructureInfo info = RecoverStructure(*lifted.module.main);
  EXPECT_EQ(info.loops, 0u);
  EXPECT_EQ(info.ifs + info.if_elses, 2u);
  EXPECT_GE(info.if_elses, 1u);
  EXPECT_EQ(info.unstructured_branches, 0u);
  EXPECT_DOUBLE_EQ(info.StructuredFraction(), 1.0);
}

TEST(Structure, CountsLoops) {
  auto lifted = LiftAsm(R"(
    main:
      li $t0, 0
    outer:
      li $t1, 0
    inner:
      addiu $t1, $t1, 1
      slti $t9, $t1, 3
      bne $t9, $zero, inner
      addiu $t0, $t0, 1
      slti $t9, $t0, 3
      bne $t9, $zero, outer
      move $v0, $zero
      jr $ra
  )");
  const StructureInfo info = RecoverStructure(*lifted.module.main);
  EXPECT_EQ(info.loops, 2u);
  EXPECT_NE(info.pseudo.find("loop"), std::string::npos);
}

}  // namespace
}  // namespace b2h::decomp
