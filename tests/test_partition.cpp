// Partitioner and estimator tests: the three steps of the paper's
// algorithm, area budgeting, the performance/energy model, and the platform
// trends the paper reports (slower CPU -> larger speedup and savings).
#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include "partition/flow.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

namespace b2h::partition {
namespace {

FlowResult RunBenchmark(const std::string& name, FlowOptions options = {}) {
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  EXPECT_NE(bench, nullptr);
  auto binary = suite::BuildBinary(*bench, 1);
  EXPECT_TRUE(binary.ok());
  auto flow = RunFlow(binary.value(), options);
  EXPECT_TRUE(flow.ok()) << flow.status().message();
  return std::move(flow).take();
}

TEST(Partitioner, SelectsHotLoopsFirst) {
  const FlowResult flow = RunBenchmark("fir");
  ASSERT_FALSE(flow.partition.hw.empty());
  // The first (frequency-step) region must be the hottest one.
  const auto& first = flow.partition.hw.front();
  EXPECT_EQ(first.selected_by, SelectedBy::kFrequency);
  for (const auto& other : flow.partition.hw) {
    if (other.selected_by == SelectedBy::kFrequency) {
      EXPECT_LE(other.sw_cycles, first.sw_cycles);
      break;
    }
  }
  // The 90-10 rule holds on this suite: loops dominate execution.
  EXPECT_GT(flow.partition.loop_coverage, 0.5);
}

TEST(Partitioner, RespectsAreaBudget) {
  FlowOptions tiny;
  tiny.platform.fpga.capacity_gates = 30'000;
  tiny.platform.fpga.usable_fraction = 1.0;
  const FlowResult flow = RunBenchmark("fir", tiny);
  EXPECT_LE(flow.partition.area_used_gates, 30'000.0);
  // Something must have been rejected for area on this multi-loop program.
  bool area_rejection = false;
  for (const auto& reason : flow.partition.rejected) {
    if (reason.find("area") != std::string::npos) area_rejection = true;
  }
  EXPECT_TRUE(area_rejection);
}

TEST(Partitioner, ZeroBudgetSelectsNothing) {
  FlowOptions none;
  none.platform.fpga.capacity_gates = 0;
  const FlowResult flow = RunBenchmark("fir", none);
  EXPECT_TRUE(flow.partition.hw.empty());
  EXPECT_NEAR(flow.estimate.speedup, 1.0, 1e-9);
  EXPECT_NEAR(flow.estimate.energy_savings, 0.0, 1e-9);
}

TEST(Partitioner, AliasStepMakesArraysResident) {
  // fir: samples/coeffs/output are shared between the init loops and the
  // kernel; once all loops touching them are in hardware the arrays become
  // FPGA-resident.
  const FlowResult flow = RunBenchmark("fir");
  bool any_resident = false;
  for (const auto& selected : flow.partition.hw) {
    if (selected.arrays_resident) any_resident = true;
  }
  EXPECT_TRUE(any_resident);
}

TEST(Partitioner, StepsCanBeDisabled) {
  FlowOptions no_steps;
  no_steps.partition.enable_alias_step = false;
  no_steps.partition.enable_greedy_step = false;
  const FlowResult base = RunBenchmark("fir");
  const FlowResult reduced = RunBenchmark("fir", no_steps);
  EXPECT_LE(reduced.partition.hw.size(), base.partition.hw.size());
  for (const auto& selected : reduced.partition.hw) {
    EXPECT_EQ(selected.selected_by, SelectedBy::kFrequency);
  }
}

TEST(Estimator, SpeedupRequiresPositiveTimes) {
  const FlowResult flow = RunBenchmark("brev");
  const AppEstimate& est = flow.estimate;
  EXPECT_GT(est.sw_time, 0.0);
  EXPECT_GT(est.partitioned_time, 0.0);
  EXPECT_LT(est.partitioned_time, est.sw_time);
  EXPECT_GT(est.speedup, 1.0);
  EXPECT_GT(est.avg_kernel_speedup, est.speedup * 0.5);
  EXPECT_GT(est.energy_savings, 0.0);
  EXPECT_LT(est.energy_savings, 1.0);
}

TEST(Estimator, RegionSwCyclesAttributesAll) {
  // All-leaders attribution: a region covering every block gets all cycles.
  const suite::Benchmark* bench = suite::FindBenchmark("bcnt");
  auto binary = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(binary.ok());
  mips::Simulator sim(binary.value());
  const auto run = sim.Run();
  std::vector<std::uint32_t> all_leaders{mips::kTextBase};
  const std::uint64_t cycles =
      RegionSwCycles(run.profile, all_leaders, all_leaders);
  EXPECT_EQ(cycles, run.cycles);
}

TEST(Platforms, SlowerCpuMeansBiggerWins) {
  // Paper trend: 40 MHz -> speedup 12.6 / savings 84%;
  //              200 MHz -> 5.4 / 69%;  400 MHz -> 3.8 / 49%.
  const suite::Benchmark* bench = suite::FindBenchmark("fir");
  auto binary = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(binary.ok());

  double speedups[3];
  double savings[3];
  const double mhz[3] = {40.0, 200.0, 400.0};
  for (int i = 0; i < 3; ++i) {
    FlowOptions options;
    options.platform = Platform::WithCpuMhz(mhz[i]);
    auto flow = RunFlow(binary.value(), options);
    ASSERT_TRUE(flow.ok());
    speedups[i] = flow.value().estimate.speedup;
    savings[i] = flow.value().estimate.energy_savings;
  }
  EXPECT_GT(speedups[0], speedups[1]);
  EXPECT_GT(speedups[1], speedups[2]);
  EXPECT_GT(savings[0], savings[1]);
  EXPECT_GT(savings[1], savings[2]);
  EXPECT_GT(speedups[2], 1.0);  // still wins at 400 MHz
}

TEST(Platforms, PowerModelScalesWithFrequency) {
  const CpuModel cpu40 = Platform::WithCpuMhz(40).cpu;
  const CpuModel cpu400 = Platform::WithCpuMhz(400).cpu;
  EXPECT_LT(cpu40.active_watts(), cpu400.active_watts());
  EXPECT_LT(cpu40.idle_watts(), cpu40.active_watts());
  const FpgaModel fpga;
  EXPECT_GT(fpga.dynamic_watts(50'000, 100),
            fpga.dynamic_watts(10'000, 100));
  EXPECT_GT(fpga.dynamic_watts(50'000, 100), 0.0);
  EXPECT_GT(fpga.budget_gates(), 0.0);
}

TEST(Flow, ReportMentionsEverything) {
  const FlowResult flow = RunBenchmark("fir");
  const std::string report = flow.Report();
  EXPECT_NE(report.find("decompile:"), std::string::npos);
  EXPECT_NE(report.find("partition:"), std::string::npos);
  EXPECT_NE(report.find("speedup"), std::string::npos);
  EXPECT_NE(report.find("energy savings"), std::string::npos);
  EXPECT_NE(report.find("gates"), std::string::npos);
}

TEST(Flow, IndirectJumpBinariesFailCleanly) {
  const suite::Benchmark* bench = suite::FindBenchmark("switch01");
  ASSERT_NE(bench, nullptr);
  auto binary = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(binary.ok());
  auto flow = RunFlow(binary.value());
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().kind(), ErrorKind::kIndirectJump);
}

TEST(Flow, FaultingBinaryReported) {
  mips::SoftBinary bad;
  bad.text = {mips::Encode({.op = mips::Op::kLw, .rs = 0, .rt = 2,
                            .imm = 0})};  // load from address 0 faults
  auto flow = RunFlow(bad);
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().kind(), ErrorKind::kMalformedBinary);
}

}  // namespace
}  // namespace b2h::partition
