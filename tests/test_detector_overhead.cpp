// Detector-overhead bound, in its OWN test binary on purpose.
//
// The measurement compares two instantiations of the same interpreter loop
// (Run vs RunInstrumented) at single-digit-percent resolution; embedding it
// in a large test binary lets unrelated code shift section layout enough to
// distort the ratio by >10 percentage points (observed empirically: the
// identical measurement read ~8% standalone and ~25% inside the full
// test_dynamic binary).  A dedicated binary keeps the measured code's
// layout minimal and stable.  bench_dynamic records the same numbers for
// the perf trajectory through the SAME support::MeasureOverhead harness;
// this asserts the bound.
//
// The bound is per build type, and its constants are calibrated against the
// *block-compiled* engine (the default since the superblock rewrite): the
// hook plumbing itself — latch check, event batching, profile expansion at
// flush — measures ~0% against a null observer, so what this ratio now
// mostly captures is the DetectionOnlyObserver's own per-event cache update,
// whose absolute cost is unchanged but whose relative share grew when the
// baseline interpreter got 3-5x faster.  RelWithDebInfo measures ~10%
// (bound 15%); under -O3 Release the measurement carries extra layout
// sensitivity (relative placement of the two interpreter-loop
// instantiations) that -falign-loops does not fully pin, so it keeps a
// layout-headroom bound (25%); a real hook regression moves both builds.
// Min-of-N sampling with attempt-level retries does the rest: noise only
// ever inflates a sample, so the minimum converges toward the true ratio
// from above.
#include <gtest/gtest.h>

#include <memory>
#include <string_view>

#include "dynamic/hot_region.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/cpu_time.hpp"

namespace b2h {
namespace {

constexpr double DetectorOverheadBound() {
#ifdef B2H_BUILD_TYPE
  if (std::string_view(B2H_BUILD_TYPE) == "Release") return 0.25;
#endif
  return 0.15;
}

TEST(DetectorOverhead, StaysWithinPerBuildTypeBound) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "perf bound is about production code; sanitizer "
                  "instrumentation multiplies the hook path's memory ops";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "perf bound is about production code; sanitizer "
                  "instrumentation multiplies the hook path's memory ops";
#endif
#endif
  // fir has the densest latch-event stream in the suite (~1 event per 6
  // instructions), so it upper-bounds the hook cost.
  const suite::Benchmark* bench = suite::FindBenchmark("fir");
  ASSERT_NE(bench, nullptr);
  auto built = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(built.ok());
  const auto binary =
      std::make_shared<const mips::SoftBinary>(std::move(built).take());

  // Size reps so each sample simulates a few million instructions.
  mips::Simulator probe(*binary);
  const auto probe_run = probe.Run();
  const int reps = std::max<int>(
      1, static_cast<int>(4'000'000 / std::max<std::uint64_t>(
                                          1, probe_run.instructions)));

  const double bound = DetectorOverheadBound();
  support::OverheadOptions options;
  options.samples = 8;
  options.attempts = 4;
  options.early_exit_below = bound;  // a passing attempt ends the test
  const double overhead = support::MeasureOverhead(
      [&] {
        for (int i = 0; i < reps; ++i) {
          mips::Simulator sim(*binary);
          (void)sim.Run();
        }
      },
      [&] {
        for (int i = 0; i < reps; ++i) {
          mips::Simulator sim(*binary);
          dynamic::DetectionOnlyObserver detector;
          (void)sim.RunInstrumented({}, 100'000'000, &detector);
        }
      },
      options);
  ASSERT_GT(options.plain_seconds, 0.0);
  EXPECT_LE(overhead, bound)
      << "detector hook costs more than " << bound * 100.0
      << "% on the simulator hot path";
}

}  // namespace
}  // namespace b2h
