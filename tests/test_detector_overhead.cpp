// Detector-overhead bound, in its OWN test binary on purpose.
//
// The measurement compares two instantiations of the same interpreter loop
// (Run vs RunInstrumented) at single-digit-percent resolution; embedding it
// in a large test binary lets unrelated code shift section layout enough to
// distort the ratio by >10 percentage points (observed empirically: the
// identical measurement read ~8% standalone and ~25% inside the full
// test_dynamic binary).  A dedicated binary keeps the measured code's
// layout minimal and stable.  bench_dynamic records the same numbers for
// the perf trajectory; this asserts the bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "dynamic/hot_region.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/cpu_time.hpp"

namespace b2h {
namespace {

TEST(DetectorOverhead, StaysWithinTenPercent) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "perf bound is about production code; sanitizer "
                  "instrumentation multiplies the hook path's memory ops";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "perf bound is about production code; sanitizer "
                  "instrumentation multiplies the hook path's memory ops";
#endif
#endif
  // fir has the densest latch-event stream in the suite (~1 event per 6
  // instructions), so it upper-bounds the hook cost.  Interleaved min-of-8
  // samples of ~4M simulated instructions each; the minimum across attempts
  // is used because noise only ever inflates a measured ratio — it cannot
  // make the hook look cheaper than it is.
  const suite::Benchmark* bench = suite::FindBenchmark("fir");
  ASSERT_NE(bench, nullptr);
  auto built = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(built.ok());
  const auto binary =
      std::make_shared<const mips::SoftBinary>(std::move(built).take());

  mips::Simulator probe(*binary);
  const auto probe_run = probe.Run();
  const int reps = std::max<int>(
      1, static_cast<int>(4'000'000 / std::max<std::uint64_t>(
                                          1, probe_run.instructions)));
  double overhead = 1e9;
  for (int attempt = 0; attempt < 3 && overhead > 0.10; ++attempt) {
    double plain = 1e9;
    double hooked = 1e9;
    for (int sample = 0; sample < 8; ++sample) {
      plain = std::min(plain, support::CpuSecondsOf([&] {
        for (int i = 0; i < reps; ++i) {
          mips::Simulator sim(*binary);
          (void)sim.Run();
        }
      }));
      hooked = std::min(hooked, support::CpuSecondsOf([&] {
        for (int i = 0; i < reps; ++i) {
          mips::Simulator sim(*binary);
          dynamic::DetectionOnlyObserver detector;
          (void)sim.RunInstrumented({}, 100'000'000, &detector);
        }
      }));
    }
    ASSERT_GT(plain, 0.0);
    overhead = std::min(overhead, hooked / plain - 1.0);
  }
  EXPECT_LE(overhead, 0.10)
      << "detector hook costs more than 10% on the simulator hot path";
}

}  // namespace
}  // namespace b2h
