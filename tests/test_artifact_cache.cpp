// Persistent artifact-cache robustness: serialization round-trips through
// the disk tier, schema-version self-invalidation, corruption/truncation
// tolerance (always a miss, never an error), concurrent writers sharing one
// directory, LRU eviction under a size budget, and stale-schema garbage
// collection.  The end-to-end "process-restarted sweep is free" contract
// lives in test_explore; this file stresses the storage layer underneath.
#include "explore/artifact_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "explore/disk_store.hpp"
#include "support/fs.hpp"
#include "testing_support.hpp"

namespace b2h::explore {
namespace {

namespace fs = std::filesystem;

using testing_support::TempDir;

std::shared_ptr<DecompileArtifact> MakeDecompileArtifact() {
  auto artifact = std::make_shared<DecompileArtifact>();
  auto run = std::make_shared<mips::RunResult>();
  run->return_value = -7;
  run->instructions = 123456;
  run->cycles = 654321;
  run->reason = mips::HaltReason::kReturned;
  run->profile.instr_count = {1, 2, 3, 0, 9};
  run->profile.cycle_count = {2, 4, 6, 0, 18};
  run->profile.branch_taken = {0, 1, 0, 0, 5};
  run->profile.branch_not_taken = {1, 0, 0, 0, 4};
  run->profile.total_instructions = 15;
  run->profile.total_cycles = 30;
  artifact->software_run = std::move(run);
  return artifact;
}

std::shared_ptr<PartitionArtifact> MakePartitionArtifact() {
  auto artifact = std::make_shared<PartitionArtifact>();
  artifact->estimate.sw_time = 0.25;
  artifact->estimate.partitioned_time = 0.05;
  artifact->estimate.speedup = 5.0;
  artifact->estimate.area_gates = 12345.5;
  partition::KernelEstimate kernel;
  kernel.name = "loop_0x400";
  kernel.sw_cycles = 999;
  kernel.kernel_speedup = 7.5;
  artifact->estimate.kernels.push_back(kernel);

  partition::SelectedRegion region;
  region.selected_by = partition::SelectedBy::kOptimal;
  region.sw_cycles = 999;
  region.invocations = 3;
  region.arrays_resident = true;
  region.alias_regions = {1, 4};
  region.synthesized.region.name = "loop_0x400";
  region.synthesized.hw_cycles = 111;
  region.synthesized.clock_mhz = 87.5;
  region.synthesized.vhdl = "-- entity loop_0x400\n";
  region.synthesized.area.registers = 12;
  region.synthesized.area.total_gates = 4200.25;
  region.synthesized.area.units.push_back(
      {synth::FuClass::kMul, 18, 2, 800.0});
  artifact->partition.hw.push_back(std::move(region));
  artifact->partition.rejected = {"rejected r1: area constraint violated"};
  artifact->partition.area_used_gates = 4200.25;
  artifact->partition.area_budget_gates = 180000.0;
  artifact->partition.total_sw_cycles = 5555;
  artifact->partition.loop_coverage = 0.91;
  return artifact;
}

/// Path of the single on-disk entry of `kind`.
fs::path OnlyEntry(const std::string& dir, std::string_view kind) {
  const fs::path shard = fs::path(dir) /
                         ("v" + std::to_string(kCacheSchemaVersion)) /
                         std::string(kind);
  const auto files = support::ListFilesRecursive(shard);
  EXPECT_EQ(files.size(), 1u);
  return files.empty() ? fs::path() : files.front().path;
}

TEST(ArtifactCacheDisk, DecompileRoundTripAcrossCaches) {
  TempDir dir;
  {
    ArtifactCache writer{DiskStore::Options{dir.path, 0}};
    writer.PutDecompile("k1", MakeDecompileArtifact());
    EXPECT_EQ(writer.stats().disk_stores, 1u);
  }
  // A fresh cache (fresh memory tier) must serve the artifact off disk.
  ArtifactCache reader{DiskStore::Options{dir.path, 0}};
  HitTier tier = HitTier::kMiss;
  const auto found = reader.FindDecompile("k1", &tier);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(tier, HitTier::kDisk);
  EXPECT_TRUE(found->status.ok());
  EXPECT_EQ(found->program, nullptr);  // summary-only by design
  ASSERT_NE(found->software_run, nullptr);
  const auto original = MakeDecompileArtifact();
  EXPECT_EQ(found->software_run->return_value,
            original->software_run->return_value);
  EXPECT_EQ(found->software_run->instructions,
            original->software_run->instructions);
  EXPECT_EQ(found->software_run->profile.instr_count,
            original->software_run->profile.instr_count);
  EXPECT_EQ(found->software_run->profile.total_cycles,
            original->software_run->profile.total_cycles);
  // Second lookup is a memory hit (disk hits are promoted).
  const auto again = reader.FindDecompile("k1", &tier);
  EXPECT_EQ(again, found);
  EXPECT_EQ(tier, HitTier::kMemory);
}

TEST(ArtifactCacheDisk, PartitionRoundTripPreservesReportFields) {
  TempDir dir;
  const auto original = MakePartitionArtifact();
  {
    ArtifactCache writer{DiskStore::Options{dir.path, 0}};
    writer.PutPartition("p1", original);
  }
  ArtifactCache reader{DiskStore::Options{dir.path, 0}};
  const auto found = reader.FindPartition("p1");
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->status.ok());
  EXPECT_EQ(found->program, nullptr);
  EXPECT_EQ(found->estimate.speedup, original->estimate.speedup);
  EXPECT_EQ(found->estimate.area_gates, original->estimate.area_gates);
  ASSERT_EQ(found->estimate.kernels.size(), 1u);
  EXPECT_EQ(found->estimate.kernels[0].name, "loop_0x400");
  EXPECT_EQ(found->estimate.kernels[0].kernel_speedup, 7.5);
  ASSERT_EQ(found->partition.hw.size(), 1u);
  const auto& region = found->partition.hw[0];
  EXPECT_EQ(region.selected_by, partition::SelectedBy::kOptimal);
  EXPECT_EQ(region.synthesized.region.name, "loop_0x400");
  EXPECT_EQ(region.synthesized.region.function, nullptr);  // no live IR
  EXPECT_EQ(region.synthesized.clock_mhz, 87.5);
  EXPECT_EQ(region.synthesized.vhdl, "-- entity loop_0x400\n");
  EXPECT_EQ(region.synthesized.area.total_gates, 4200.25);
  ASSERT_EQ(region.synthesized.area.units.size(), 1u);
  EXPECT_EQ(region.synthesized.area.units[0].cls, synth::FuClass::kMul);
  EXPECT_EQ(region.alias_regions, (std::vector<int>{1, 4}));
  EXPECT_EQ(found->partition.rejected, original->partition.rejected);
  EXPECT_EQ(found->partition.total_sw_cycles, 5555u);
}

TEST(ArtifactCacheDisk, FailureArtifactsPersist) {
  TempDir dir;
  {
    ArtifactCache writer{DiskStore::Options{dir.path, 0}};
    auto failed = std::make_shared<DecompileArtifact>();
    failed->status = Status::Error(ErrorKind::kIndirectJump,
                                   "CDFG recovery failed at 0x400100");
    writer.PutDecompile("bad", std::move(failed));
  }
  ArtifactCache reader{DiskStore::Options{dir.path, 0}};
  const auto found = reader.FindDecompile("bad");
  ASSERT_NE(found, nullptr);
  EXPECT_FALSE(found->status.ok());
  EXPECT_EQ(found->status.kind(), ErrorKind::kIndirectJump);
  EXPECT_EQ(found->status.message(), "CDFG recovery failed at 0x400100");
  EXPECT_EQ(found->software_run, nullptr);
}

TEST(ArtifactCacheDisk, VersionMismatchIsAMiss) {
  TempDir dir;
  {
    ArtifactCache writer{DiskStore::Options{dir.path, 0}};
    writer.PutDecompile("k1", MakeDecompileArtifact());
  }
  // Bump the version stamp inside the entry header (byte 4 = version LSB,
  // right after the 4-byte magic): the entry must self-invalidate.
  const fs::path entry = OnlyEntry(dir.path, kDecompileKind);
  auto bytes = support::ReadFile(entry);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[4] = static_cast<char>((*bytes)[4] + 1);
  ASSERT_TRUE(support::AtomicWriteFile(entry, *bytes));

  ArtifactCache reader{DiskStore::Options{dir.path, 0}};
  HitTier tier = HitTier::kMemory;
  EXPECT_EQ(reader.FindDecompile("k1", &tier), nullptr);
  EXPECT_EQ(tier, HitTier::kMiss);
  EXPECT_EQ(reader.stats().misses, 1u);
}

TEST(ArtifactCacheDisk, TruncatedEntryIsAMissNeverAnError) {
  TempDir dir;
  {
    ArtifactCache writer{DiskStore::Options{dir.path, 0}};
    writer.PutPartition("p1", MakePartitionArtifact());
  }
  const fs::path entry = OnlyEntry(dir.path, kPartitionKind);
  auto bytes = support::ReadFile(entry);
  ASSERT_TRUE(bytes.has_value());
  bytes->resize(bytes->size() / 2);
  ASSERT_TRUE(support::AtomicWriteFile(entry, *bytes));

  ArtifactCache reader{DiskStore::Options{dir.path, 0}};
  EXPECT_EQ(reader.FindPartition("p1"), nullptr);
  EXPECT_EQ(reader.stats().misses, 1u);
}

TEST(ArtifactCacheDisk, CorruptedPayloadFailsTheChecksum) {
  TempDir dir;
  {
    ArtifactCache writer{DiskStore::Options{dir.path, 0}};
    writer.PutPartition("p1", MakePartitionArtifact());
  }
  const fs::path entry = OnlyEntry(dir.path, kPartitionKind);
  auto bytes = support::ReadFile(entry);
  ASSERT_TRUE(bytes.has_value());
  bytes->back() = static_cast<char>(bytes->back() ^ 0x5a);  // flip payload bits
  ASSERT_TRUE(support::AtomicWriteFile(entry, *bytes));

  ArtifactCache reader{DiskStore::Options{dir.path, 0}};
  EXPECT_EQ(reader.FindPartition("p1"), nullptr);
}

TEST(ArtifactCacheDisk, UndecodablePayloadCountsAsBadEntry) {
  TempDir dir;
  // A structurally valid store entry whose payload is not a serialized
  // artifact: the envelope (magic/version/checksum) passes, decoding fails,
  // and the cache reports a miss plus a bad-entry diagnostic.
  DiskStore store({dir.path, 0});
  EXPECT_TRUE(store.Store(kDecompileKind, "junk", "not an artifact"));
  ArtifactCache reader{DiskStore::Options{dir.path, 0}};
  EXPECT_EQ(reader.FindDecompile("junk"), nullptr);
  EXPECT_EQ(reader.stats().disk_bad_entries, 1u);
  EXPECT_EQ(reader.stats().misses, 1u);
  // Bad entries are reclaimed, not permanent: the key is storable again
  // (Store skips existing paths, so leaving the file would pin the miss).
  EXPECT_FALSE(store.Contains(kDecompileKind, "junk"));
  reader.PutDecompile("junk", MakeDecompileArtifact());
  ArtifactCache again{DiskStore::Options{dir.path, 0}};
  EXPECT_NE(again.FindDecompile("junk"), nullptr);
}

TEST(ArtifactCacheDisk, ConcurrentWritersShareOneDirectory) {
  TempDir dir;
  // Two independent caches (the ISSUE's "two Toolchains, one dir") racing
  // on overlapping keys: atomic temp-file + rename writes mean every
  // resulting entry is complete and decodable.
  ArtifactCache a{DiskStore::Options{dir.path, 0}};
  ArtifactCache b{DiskStore::Options{dir.path, 0}};
  constexpr int kKeys = 40;
  const auto writer = [&](ArtifactCache& cache) {
    for (int i = 0; i < kKeys; ++i) {
      cache.PutDecompile("d" + std::to_string(i), MakeDecompileArtifact());
      cache.PutPartition("p" + std::to_string(i), MakePartitionArtifact());
    }
  };
  std::thread ta(writer, std::ref(a));
  std::thread tb(writer, std::ref(b));
  ta.join();
  tb.join();

  ArtifactCache reader{DiskStore::Options{dir.path, 0}};
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_NE(reader.FindDecompile("d" + std::to_string(i)), nullptr) << i;
    ASSERT_NE(reader.FindPartition("p" + std::to_string(i)), nullptr) << i;
  }
  EXPECT_EQ(reader.stats().disk_bad_entries, 0u);
  EXPECT_EQ(reader.stats().misses, 0u);
  // No temp-file litter once both writers finished.
  EXPECT_EQ(DiskStore({dir.path, 0}).ComputeStats().stale_files, 0u);
}

TEST(DiskStoreTest, EvictionKeepsTheStoreUnderItsBudget) {
  TempDir dir;
  const std::string payload(2048, 'x');
  // Budget fits ~3 entries; writes beyond that must evict the oldest.
  DiskStore store({dir.path, 3 * 4096});
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(store.Store(kDecompileKind, "k" + std::to_string(i), payload));
    // Distinct mtimes make the LRU order deterministic on coarse-timestamp
    // filesystems.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto stats = store.ComputeStats();
  EXPECT_LE(stats.total_bytes, 3u * 4096u);
  EXPECT_LT(stats.decompile_entries, 12u);
  EXPECT_GT(stats.decompile_entries, 0u);
  // LRU-by-mtime: the newest entry survives, the oldest is gone.
  EXPECT_TRUE(store.Load(kDecompileKind, "k11").has_value());
  EXPECT_FALSE(store.Load(kDecompileKind, "k0").has_value());
}

TEST(DiskStoreTest, GcReclaimsStaleSchemaTrees) {
  TempDir dir;
  DiskStore store({dir.path, 0});
  ASSERT_TRUE(store.Store(kPartitionKind, "keep", "payload"));
  // Simulate a leftover tree from an older on-disk format.
  const fs::path stale = fs::path(dir.path) / "v0" / "pa";
  ASSERT_TRUE(support::AtomicWriteFile(stale / "old.bin", "stale bytes"));
  EXPECT_EQ(store.ComputeStats().stale_files, 1u);

  EXPECT_GE(store.Gc(0), 1u);
  const auto stats = store.ComputeStats();
  EXPECT_EQ(stats.stale_files, 0u);
  EXPECT_EQ(stats.partition_entries, 1u);  // current entries survive
  EXPECT_TRUE(store.Load(kPartitionKind, "keep").has_value());
}

TEST(DiskStoreTest, GcAndClearNeverTouchForeignFiles) {
  TempDir dir;
  // A cache dir pointed at a shared/existing directory (WithCacheDir("."),
  // a mistyped --dir): maintenance must only ever touch the store's own
  // v<N> trees.
  DiskStore store({dir.path, 0});
  ASSERT_TRUE(store.Store(kDecompileKind, "k", "payload"));
  ASSERT_TRUE(support::AtomicWriteFile(fs::path(dir.path) / "notes.txt",
                                       "user data"));
  ASSERT_TRUE(support::AtomicWriteFile(
      fs::path(dir.path) / "project" / "main.cpp", "int main() {}\n"));
  (void)store.Gc(1);  // tiny budget: evicts every entry, not the user files
  store.Clear();
  EXPECT_TRUE(fs::exists(fs::path(dir.path) / "notes.txt"));
  EXPECT_TRUE(fs::exists(fs::path(dir.path) / "project" / "main.cpp"));
  EXPECT_FALSE(store.Load(kDecompileKind, "k").has_value());
}

TEST(DiskStoreTest, ClearRemovesEverything) {
  TempDir dir;
  DiskStore store({dir.path, 0});
  ASSERT_TRUE(store.Store(kDecompileKind, "k", "payload"));
  store.Clear();
  EXPECT_FALSE(store.Load(kDecompileKind, "k").has_value());
  const auto stats = store.ComputeStats();
  EXPECT_EQ(stats.decompile_entries + stats.partition_entries, 0u);
  EXPECT_EQ(stats.total_bytes, 0u);
}

TEST(DiskStoreTest, StoreSkipsExistingKeys) {
  TempDir dir;
  DiskStore store({dir.path, 0});
  EXPECT_TRUE(store.Store(kDecompileKind, "k", "first"));
  EXPECT_FALSE(store.Store(kDecompileKind, "k", "second"));  // already there
  EXPECT_EQ(*store.Load(kDecompileKind, "k"), "first");
}

}  // namespace
}  // namespace b2h::explore
