// Behavioral synthesis tests: resource library pricing, schedule legality
// (checked both on hand-built regions and property-style across the whole
// benchmark suite), chaining, pipelining II, binding/area, and VHDL shape.
#include "synth/synth.hpp"

#include <gtest/gtest.h>

#include "decomp/pipeline.hpp"
#include "ir/dominators.hpp"
#include "ir/loops.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

namespace b2h::synth {
namespace {

TEST(ResourceLibrary, AreaScalesWithWidth) {
  const ResourceLibrary lib;
  EXPECT_LT(lib.FuGates(FuClass::kAddSub, 8),
            lib.FuGates(FuClass::kAddSub, 32));
  EXPECT_GT(lib.FuGates(FuClass::kDiv, 32),
            lib.FuGates(FuClass::kAddSub, 32));
  EXPECT_GT(lib.FuGates(FuClass::kMul, 32), lib.FuGates(FuClass::kMul, 16));
  EXPECT_EQ(lib.FuGates(FuClass::kNone, 32), 0.0);
}

TEST(ResourceLibrary, DelaysAreOrdered) {
  const ResourceLibrary lib;
  ir::Instr add;
  add.op = ir::Opcode::kAdd;
  add.width = 32;
  ir::Instr logic;
  logic.op = ir::Opcode::kAnd;
  logic.width = 32;
  ir::Instr mul;
  mul.op = ir::Opcode::kMul;
  mul.width = 32;
  EXPECT_LT(lib.OpDelayNs(logic), lib.OpDelayNs(add));
  EXPECT_LT(lib.OpDelayNs(add), lib.OpDelayNs(mul));
}

TEST(ResourceLibrary, ConstShiftsAreFree) {
  ir::Instr shift;
  shift.op = ir::Opcode::kShl;
  shift.operands = {ir::Value::Const(0), ir::Value::Const(4)};
  EXPECT_EQ(ClassifyOp(shift), FuClass::kNone);
  ir::Instr var_shift;
  var_shift.op = ir::Opcode::kShl;
  ir::Instr dummy;
  dummy.op = ir::Opcode::kInput;
  var_shift.operands = {ir::Value::Const(0), ir::Value::Of(&dummy)};
  EXPECT_EQ(ClassifyOp(var_shift), FuClass::kShift);
}

/// Decompile a benchmark and return its module + analyses for synthesis.
struct Prepared {
  mips::SoftBinary binary;
  decomp::DecompiledProgram program;
  mips::RunResult run;
};

Prepared Prepare(const std::string& name, int opt_level = 1) {
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  EXPECT_NE(bench, nullptr);
  auto binary = suite::BuildBinary(*bench, opt_level);
  EXPECT_TRUE(binary.ok());
  Prepared prepared;
  prepared.binary = std::move(binary).take();
  mips::Simulator sim(prepared.binary);
  prepared.run = sim.Run();
  decomp::DecompileOptions options;
  options.profile = &prepared.run.profile;
  auto program = decomp::Decompile(prepared.binary, options);
  EXPECT_TRUE(program.ok()) << program.status().message();
  prepared.program = std::move(program).take();
  return prepared;
}

TEST(Schedule, FirInnerLoopPipelinesAtIiOne) {
  Prepared prepared = Prepare("fir");
  // Find the hottest innermost loop of the fir function.
  const ir::Function* fir = nullptr;
  for (const auto& function : prepared.program.module.functions) {
    if (function->name() == "fir") fir = function.get();
  }
  ASSERT_NE(fir, nullptr);
  const ir::DominatorTree dom(*fir);
  ir::LoopForest forest(*fir, dom);
  forest.AnnotateProfile();
  const ir::Loop* hottest = nullptr;
  for (const auto& loop : forest.loops()) {
    if (!loop->IsInnermost()) continue;
    if (hottest == nullptr || loop->header_count > hottest->header_count) {
      hottest = loop.get();
    }
  }
  ASSERT_NE(hottest, nullptr);
  ASSERT_EQ(hottest->blocks.size(), 1u) << "rotated loops are single-block";

  const HwRegion region = ExtractLoopRegion(*fir, *hottest);
  EXPECT_TRUE(region.synthesizable);
  decomp::AliasAnalysis alias(*fir, &prepared.binary.symbols);
  const ResourceLibrary lib;
  const ScheduleOptions options;
  const RegionSchedule schedule = ScheduleRegion(region, &alias, lib, options);
  // Two loads per iteration on a dual-port BRAM: II = 1.
  EXPECT_EQ(schedule.pipeline_ii, 1);
  EXPECT_GE(schedule.pipeline_depth, 2);
  EXPECT_TRUE(VerifySchedule(region, schedule, lib, options).ok());
}

TEST(Schedule, ChainingRespectsClockPeriod) {
  Prepared prepared = Prepare("bcnt");
  const ir::Function* bcnt = nullptr;
  for (const auto& function : prepared.program.module.functions) {
    if (function->name() == "bcnt") bcnt = function.get();
  }
  ASSERT_NE(bcnt, nullptr);
  const HwRegion region = ExtractFunctionRegion(*bcnt);
  decomp::AliasAnalysis alias(*bcnt, &prepared.binary.symbols);
  const ResourceLibrary lib;

  ScheduleOptions tight;
  tight.clock_ns = 4.0;
  const RegionSchedule tight_schedule =
      ScheduleRegion(region, &alias, lib, tight);
  ScheduleOptions loose;
  loose.clock_ns = 40.0;
  const RegionSchedule loose_schedule =
      ScheduleRegion(region, &alias, lib, loose);
  // A longer clock period lets more operators chain into each step.
  EXPECT_LE(loose_schedule.total_states, tight_schedule.total_states);
  EXPECT_LE(tight_schedule.critical_path_ns, tight.clock_ns + 7.0);
  EXPECT_TRUE(VerifySchedule(region, tight_schedule, lib, tight).ok());
  EXPECT_TRUE(VerifySchedule(region, loose_schedule, lib, loose).ok());
}

TEST(Schedule, NoChainingIncreasesStates) {
  Prepared prepared = Prepare("brev");
  const ir::Function* brev = nullptr;
  for (const auto& function : prepared.program.module.functions) {
    if (function->name() == "brev") brev = function.get();
  }
  ASSERT_NE(brev, nullptr);
  const HwRegion region = ExtractFunctionRegion(*brev);
  decomp::AliasAnalysis alias(*brev, &prepared.binary.symbols);
  const ResourceLibrary lib;
  ScheduleOptions chained;
  ScheduleOptions unchained;
  unchained.enable_chaining = false;
  const auto with_chain = ScheduleRegion(region, &alias, lib, chained);
  const auto without_chain = ScheduleRegion(region, &alias, lib, unchained);
  EXPECT_LT(with_chain.total_states, without_chain.total_states);
}

TEST(Schedule, MemPortLimitRaisesIi) {
  Prepared prepared = Prepare("fir");
  const ir::Function* fir = nullptr;
  for (const auto& function : prepared.program.module.functions) {
    if (function->name() == "fir") fir = function.get();
  }
  ASSERT_NE(fir, nullptr);
  const ir::DominatorTree dom(*fir);
  ir::LoopForest forest(*fir, dom);
  forest.AnnotateProfile();
  const ir::Loop* hottest = nullptr;
  for (const auto& loop : forest.loops()) {
    if (!loop->IsInnermost()) continue;
    if (hottest == nullptr || loop->header_count > hottest->header_count) {
      hottest = loop.get();
    }
  }
  ASSERT_NE(hottest, nullptr);
  const HwRegion region = ExtractLoopRegion(*fir, *hottest);
  decomp::AliasAnalysis alias(*fir, &prepared.binary.symbols);
  const ResourceLibrary lib;
  ScheduleOptions single_port;
  single_port.mem_ports = 1;
  const auto schedule = ScheduleRegion(region, &alias, lib, single_port);
  EXPECT_GE(schedule.pipeline_ii, 2);  // two accesses, one port
}

TEST(Area, ReportIsConsistent) {
  Prepared prepared = Prepare("fir");
  const ir::Function* fir = nullptr;
  for (const auto& function : prepared.program.module.functions) {
    if (function->name() == "fir") fir = function.get();
  }
  ASSERT_NE(fir, nullptr);
  const HwRegion region = ExtractFunctionRegion(*fir);
  decomp::AliasAnalysis alias(*fir, &prepared.binary.symbols);
  auto synthesized = Synthesize(region, &alias);
  ASSERT_TRUE(synthesized.ok()) << synthesized.status().message();
  const AreaReport& area = synthesized.value().area;
  EXPECT_GT(area.total_gates, 0.0);
  EXPECT_GT(area.registers, 0u);
  EXPECT_GT(area.fsm_states, 0u);
  EXPECT_GE(area.mult_blocks, 1u);  // the MAC multiplier
  const double parts = area.fu_gates + area.register_gates + area.mux_gates +
                       area.fsm_gates;
  EXPECT_NEAR(area.total_gates, parts * 1.12, parts * 0.01);
  const std::string summary = area.Summary();
  EXPECT_NE(summary.find("TOTAL"), std::string::npos);
  EXPECT_NE(summary.find("MULT18X18s"), std::string::npos);
}

TEST(Area, NarrowDatapathIsSmaller) {
  // Same structure, one narrowed by size reduction: area must not grow.
  Prepared with_reduction = Prepare("crc");
  decomp::DecompileOptions no_narrow;
  no_narrow.reduce_operator_sizes = false;
  mips::Simulator sim(with_reduction.binary);
  auto run = sim.Run();
  no_narrow.profile = &run.profile;
  auto wide_program = decomp::Decompile(with_reduction.binary, no_narrow);
  ASSERT_TRUE(wide_program.ok());

  const auto synth_of = [&](const decomp::DecompiledProgram& program)
      -> double {
    const ir::Function* crc = nullptr;
    for (const auto& function : program.module.functions) {
      if (function->name() == "crc16") crc = function.get();
    }
    EXPECT_NE(crc, nullptr);
    const HwRegion region = ExtractFunctionRegion(*crc);
    auto synthesized = Synthesize(region, nullptr);
    EXPECT_TRUE(synthesized.ok());
    return synthesized.value().area.total_gates;
  };
  const double narrow_gates = synth_of(with_reduction.program);
  const double wide_gates = synth_of(wide_program.value());
  EXPECT_LE(narrow_gates, wide_gates);
}

TEST(Vhdl, EmitsWellFormedEntity) {
  Prepared prepared = Prepare("brev");
  const ir::Function* brev = nullptr;
  for (const auto& function : prepared.program.module.functions) {
    if (function->name() == "brev") brev = function.get();
  }
  ASSERT_NE(brev, nullptr);
  const HwRegion region = ExtractFunctionRegion(*brev);
  auto synthesized = Synthesize(region, nullptr);
  ASSERT_TRUE(synthesized.ok());
  const std::string& vhdl = synthesized.value().vhdl;
  EXPECT_NE(vhdl.find("entity hw_brev is"), std::string::npos);
  EXPECT_NE(vhdl.find("architecture rtl of hw_brev is"), std::string::npos);
  EXPECT_NE(vhdl.find("use ieee.numeric_std.all;"), std::string::npos);
  EXPECT_NE(vhdl.find("when S_IDLE =>"), std::string::npos);
  EXPECT_NE(vhdl.find("when S_DONE =>"), std::string::npos);
  EXPECT_NE(vhdl.find("rising_edge(clk)"), std::string::npos);
  EXPECT_NE(vhdl.find("mem_addr"), std::string::npos);
  // Balanced structure: one end per process/entity/architecture.
  EXPECT_NE(vhdl.find("end process;"), std::string::npos);
  EXPECT_NE(vhdl.find("end architecture rtl;"), std::string::npos);
}

TEST(Regions, CallMakesRegionUnsynthesizable) {
  // main calls the kernels: a whole-main region (with calls left after
  // inlining) must be rejected, not mis-synthesized.
  Prepared prepared = Prepare("fir");
  decomp::DecompileOptions no_inline;
  no_inline.inline_small_functions = false;
  mips::Simulator sim(prepared.binary);
  auto run = sim.Run();
  no_inline.profile = &run.profile;
  auto program = decomp::Decompile(prepared.binary, no_inline);
  ASSERT_TRUE(program.ok());
  const HwRegion region =
      ExtractFunctionRegion(*program.value().module.main);
  EXPECT_FALSE(region.synthesizable);
  auto synthesized = Synthesize(region, nullptr);
  EXPECT_FALSE(synthesized.ok());
  EXPECT_EQ(synthesized.status().kind(), ErrorKind::kUnsupported);
}

/// Property: for every working benchmark, every innermost loop the
/// partitioner could select yields a verifiable schedule.
class ScheduleLegality : public ::testing::TestWithParam<const char*> {};

TEST_P(ScheduleLegality, AllLoopsOfBenchmark) {
  Prepared prepared = Prepare(GetParam());
  const ResourceLibrary lib;
  const ScheduleOptions options;
  for (const auto& function : prepared.program.module.functions) {
    const ir::DominatorTree dom(*function);
    ir::LoopForest forest(*function, dom);
    forest.AnnotateProfile();
    decomp::AliasAnalysis alias(*function, &prepared.binary.symbols);
    for (const auto& loop : forest.loops()) {
      if (!loop->IsInnermost()) continue;
      const HwRegion region = ExtractLoopRegion(*function, *loop);
      if (!region.synthesizable) continue;
      const RegionSchedule schedule =
          ScheduleRegion(region, &alias, lib, options);
      const Status status = VerifySchedule(region, schedule, lib, options);
      EXPECT_TRUE(status.ok()) << region.name << ": " << status.message();
      EXPECT_LE(schedule.critical_path_ns, options.clock_ns + 7.0)
          << region.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ScheduleLegality,
    ::testing::Values("autcor00", "conven00", "rgbcmy01", "idct01",
                      "bitmnp01", "crc", "bcnt", "blit", "fir", "engine",
                      "g3fax", "adpcm_enc", "adpcm_dec", "g721_quan",
                      "jpeg_dct", "brev", "matmul", "checksum"),
    [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace b2h::synth
