// Dynamic (runtime) partitioning tests: online detection matches the static
// oracle's choice, kernels swap in mid-run with a real speedup, the whole
// flow is deterministic, the instrumented simulator is semantically
// identical to the plain one, and the detector hook stays cheap.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <ctime>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "decomp/lifter.hpp"
#include "dynamic/dynamic_partitioner.hpp"
#include "dynamic/hot_region.hpp"
#include "mips/assembler.hpp"
#include "mips/simulator.hpp"
#include "partition/dynamic_policy.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "toolchain/toolchain.hpp"

namespace b2h {
namespace {

std::shared_ptr<const mips::SoftBinary> BuildSuiteBinary(const char* name) {
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  if (bench == nullptr) return nullptr;
  auto built = suite::BuildBinary(*bench, 1);
  if (!built.ok()) return nullptr;
  return std::make_shared<const mips::SoftBinary>(std::move(built).take());
}

// ---------------------------------------------------------- detector unit

TEST(HotRegionCache, ReportsOncePerResidencyAtThreshold) {
  dynamic::HotRegionCache cache(16, 3);
  EXPECT_FALSE(cache.Observe(0x400100, 0x400120).has_value());
  EXPECT_FALSE(cache.Observe(0x400100, 0x400120).has_value());
  const auto hot = cache.Observe(0x400100, 0x400140);
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ(hot->header_pc, 0x400100u);
  EXPECT_EQ(hot->count, 3u);
  // Widest latch seen so far is tracked.
  EXPECT_EQ(hot->max_latch_pc, 0x400140u);
  // No re-report while resident.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(cache.Observe(0x400100, 0x400120).has_value());
  }
  EXPECT_EQ(cache.events(), 13u);
}

TEST(HotRegionCache, ConflictingHeaderMustWearDownResident) {
  dynamic::HotRegionCache cache(1, 100);  // every header maps to one slot
  for (int i = 0; i < 5; ++i) (void)cache.Observe(0x400100, 0x400120);
  // A conflicting header decays the resident counter; it takes over only
  // after the resident count reaches zero.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cache.MaxLatchFor(0x400100), 0x400120u);
    (void)cache.Observe(0x400200, 0x400220);
  }
  (void)cache.Observe(0x400200, 0x400220);  // takes the slot over
  EXPECT_EQ(cache.MaxLatchFor(0x400200), 0x400220u);
  EXPECT_EQ(cache.MaxLatchFor(0x400100), 0u);
}

// ----------------------------------------------------- eviction plan unit

TEST(DynamicPolicy, PlanEvictionFitsWithoutEvicting) {
  partition::DynamicPolicy policy;
  const auto plan = partition::PlanEviction(policy, {}, 1000.0, 200.0, 300.0,
                                            /*candidate_value_density=*/1.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(DynamicPolicy, PlanEvictionPicksLowestValueDensity) {
  partition::DynamicPolicy policy;
  std::vector<partition::ActiveKernel> active = {
      {/*id=*/0, /*area=*/400.0, /*density=*/0.5},
      {/*id=*/1, /*area=*/400.0, /*density=*/0.1},
  };
  const auto plan =
      partition::PlanEviction(policy, active, 1000.0, 800.0, 300.0,
                              /*candidate_value_density=*/0.3);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->size(), 1u);
  EXPECT_EQ(plan->front(), 1u);  // the low-density kernel goes
}

TEST(DynamicPolicy, PlanEvictionRefusesWhenCandidateIsWorse) {
  partition::DynamicPolicy policy;
  std::vector<partition::ActiveKernel> active = {
      {/*id=*/0, /*area=*/800.0, /*density=*/0.9},
  };
  EXPECT_FALSE(partition::PlanEviction(policy, active, 1000.0, 800.0, 300.0,
                                       /*candidate_value_density=*/0.3)
                   .has_value());
  // And an over-budget candidate is rejected outright.
  EXPECT_FALSE(
      partition::PlanEviction(policy, {}, 1000.0, 0.0, 1500.0, 9.0)
          .has_value());
}

// ------------------------------------------- instrumented-run equivalence

class CountingObserver final : public mips::RunObserver {
 public:
  void OnBackwardBranches(std::span<const mips::BranchEvent> events,
                          const mips::RunResult&) override {
    total_ += events.size();
    for (const auto& event : events) {
      EXPECT_LT(event.target_pc, event.from_pc);
    }
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::uint64_t total_ = 0;
};

TEST(InstrumentedRun, SemanticallyIdenticalToPlainRun) {
  for (const char* name : {"crc", "fir", "g721_quan"}) {
    auto binary = BuildSuiteBinary(name);
    ASSERT_NE(binary, nullptr) << name;

    mips::Simulator plain(*binary);
    const auto base = plain.Run();

    mips::Simulator instrumented(*binary);
    CountingObserver observer;
    const auto hooked =
        instrumented.RunInstrumented({}, 100'000'000, &observer);

    EXPECT_EQ(base.reason, hooked.reason) << name;
    EXPECT_EQ(base.return_value, hooked.return_value) << name;
    EXPECT_EQ(base.instructions, hooked.instructions) << name;
    EXPECT_EQ(base.cycles, hooked.cycles) << name;
    EXPECT_EQ(base.profile.instr_count, hooked.profile.instr_count) << name;
    EXPECT_EQ(base.profile.cycle_count, hooked.profile.cycle_count) << name;

    // Every taken backward branch/jump in the profile reached the observer.
    std::uint64_t expected = 0;
    for (std::size_t word = 0; word < binary->text.size(); ++word) {
      const auto instr = mips::Decode(binary->text[word]);
      if (!instr.has_value()) continue;
      const auto pc =
          mips::kTextBase + static_cast<std::uint32_t>(word) * 4u;
      if (mips::IsBranch(instr->op) &&
          mips::BranchTarget(pc, *instr) < pc) {
        expected += base.profile.branch_taken[word];
      } else if (instr->op == mips::Op::kJ &&
                 mips::JumpTarget(pc, *instr) < pc) {
        expected += base.profile.instr_count[word];
      }
    }
    EXPECT_EQ(observer.total(), expected) << name;
  }
}

// ------------------------------------------------- end-to-end dynamic flow

TEST(DynamicFlow, DetectsStaticTopLoopSwapsMidRunAndSpeedsUp) {
  // Acceptance: on at least 3 suite benchmarks the online partitioner finds
  // the same top loop as the static oracle, swaps its kernel in mid-run,
  // and the dynamic estimate beats all-software execution.
  for (const char* name : {"crc", "fir", "checksum"}) {
    auto binary = BuildSuiteBinary(name);
    ASSERT_NE(binary, nullptr) << name;

    Toolchain toolchain;
    auto run = toolchain.RunDynamicOn("mips200-xc2v1000", binary, name);
    ASSERT_TRUE(run.ok()) << name << ": " << run.status().message();
    const ToolchainRun& oracle = run.value().static_run;
    const dynamic::DynamicRun& dyn = run.value().dynamic_run;

    // A kernel swapped in strictly mid-run.
    ASSERT_FALSE(dyn.swaps.empty()) << name;
    EXPECT_GT(dyn.swaps.front().at_instruction, 0u) << name;
    EXPECT_LT(dyn.swaps.front().at_instruction, dyn.run.instructions) << name;

    // Dynamic estimate beats software, but cannot beat the static oracle.
    EXPECT_GT(dyn.estimate.speedup, 1.0) << name;
    EXPECT_LE(dyn.estimate.speedup, oracle.estimate.speedup) << name;

    // The static top kernel (highest software cycles, selected first) is
    // the same loop the online detector converged on.
    ASSERT_FALSE(oracle.partition.hw.empty()) << name;
    const std::uint32_t static_top =
        oracle.partition.hw.front().synthesized.region.blocks.front()
            ->start_pc;
    std::uint32_t dynamic_top = 0;
    std::uint64_t best_cycles = 0;
    for (const auto& kernel : dyn.kernels) {
      if (kernel.observed.cycles >= best_cycles) {
        best_cycles = kernel.observed.cycles;
        dynamic_top = kernel.header_pc;
      }
    }
    EXPECT_EQ(dynamic_top, static_top) << name;
  }
}

TEST(DynamicFlow, CadLatencyReportedInSimulatedTime) {
  // ROADMAP item: the online CAD cost (incremental decompile + synthesis)
  // is converted from host wall clock into simulated CPU cycles via
  // DynamicPolicy::cad_cycles_per_ms, and time-to-first-kernel is reported
  // in simulated cycles.
  auto binary = BuildSuiteBinary("crc");
  ASSERT_NE(binary, nullptr);
  const auto platform = *PlatformRegistry::Global().Find("mips200-xc2v1000");

  // Default model (CAD inline on the 200 MHz CPU): simulated CAD cost is
  // positive and time-to-first-kernel lands strictly after the swap point.
  dynamic::DynamicPartitioner online(platform);
  auto run = online.Run(binary, "crc");
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run.value().swaps.empty());
  EXPECT_GT(run.value().cad_simulated_cycles, 0u);
  EXPECT_GT(run.value().time_to_first_kernel_cycles,
            run.value().swaps.front().at_cycle);

  // With the conversion disabled, time-to-first-kernel is exactly the
  // simulated cycle of the first swap — a deterministic anchor.
  dynamic::DynamicOptions free_cad;
  free_cad.policy.cad_cycles_per_ms = 0.0;
  dynamic::DynamicPartitioner anchored(platform, free_cad);
  auto anchor = anchored.Run(binary, "crc");
  ASSERT_TRUE(anchor.ok());
  ASSERT_FALSE(anchor.value().swaps.empty());
  EXPECT_EQ(anchor.value().cad_simulated_cycles, 0u);
  EXPECT_EQ(anchor.value().time_to_first_kernel_cycles,
            anchor.value().swaps.front().at_cycle);
}

TEST(DynamicFlow, FunctionalResultUnchangedByKernelSwaps) {
  // Cosimulation invariant: swapping kernels never changes the program's
  // result — only the accounting.
  for (const char* name : {"crc", "matmul", "g3fax"}) {
    const suite::Benchmark* bench = suite::FindBenchmark(name);
    auto binary = BuildSuiteBinary(name);
    ASSERT_NE(binary, nullptr) << name;
    dynamic::DynamicPartitioner online(
        *PlatformRegistry::Global().Find("mips200-xc2v1000"));
    auto run = online.Run(binary, name);
    ASSERT_TRUE(run.ok()) << name;
    EXPECT_EQ(run.value().run.return_value, bench->reference()) << name;
  }
}

TEST(DynamicFlow, DeterministicReports) {
  // Same binary + same config => identical dynamic report, twice over.
  auto binary = BuildSuiteBinary("fir");
  ASSERT_NE(binary, nullptr);
  Toolchain toolchain;
  auto first = toolchain.RunDynamic(binary, "fir");
  auto second = toolchain.RunDynamic(binary, "fir");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().dynamic_run.Report(),
            second.value().dynamic_run.Report());
  EXPECT_EQ(first.value().dynamic_run.estimate.speedup,
            second.value().dynamic_run.estimate.speedup);
  EXPECT_EQ(first.value().dynamic_run.swaps.size(),
            second.value().dynamic_run.swaps.size());
}

TEST(DynamicFlow, RunManyDynamicParallelEqualsSerial) {
  std::vector<NamedBinary> binaries;
  for (const char* name : {"crc", "fir", "checksum", "brev"}) {
    auto binary = BuildSuiteBinary(name);
    ASSERT_NE(binary, nullptr) << name;
    binaries.push_back({name, std::move(binary)});
  }
  Toolchain serial;
  serial.WithDynamic(true).WithThreads(1);
  Toolchain parallel;
  parallel.WithDynamic(true).WithThreads(4);
  const auto lhs = serial.RunMany(binaries, {"mips200-xc2v1000", "mips400"});
  const auto rhs = parallel.RunMany(binaries, {"mips200-xc2v1000", "mips400"});
  ASSERT_EQ(lhs.runs.size(), rhs.runs.size());
  for (std::size_t i = 0; i < lhs.runs.size(); ++i) {
    ASSERT_TRUE(lhs.runs[i].ok());
    ASSERT_TRUE(rhs.runs[i].ok());
    ASSERT_NE(lhs.runs[i].value().dynamic_run, nullptr);
    ASSERT_NE(rhs.runs[i].value().dynamic_run, nullptr);
    EXPECT_EQ(lhs.runs[i].value().dynamic_run->Report(),
              rhs.runs[i].value().dynamic_run->Report());
  }
  // Without dynamic mode the field stays empty.
  Toolchain plain;
  const auto off = plain.RunMany({binaries[0]}, {"mips200-xc2v1000"});
  ASSERT_TRUE(off.runs[0].ok());
  EXPECT_EQ(off.runs[0].value().dynamic_run, nullptr);
}

TEST(DynamicFlow, AreaBudgetRespectedUnderEviction) {
  // A platform whose FPGA fits roughly one kernel: the online partitioner
  // must keep the live area within budget, evicting or rejecting the rest.
  auto binary = BuildSuiteBinary("matmul");
  ASSERT_NE(binary, nullptr);
  partition::Platform tiny =
      *PlatformRegistry::Global().Find("mips200-xc2v1000");
  tiny.fpga.capacity_gates = 40'000.0;  // 30% usable => 12k gate budget
  dynamic::DynamicPartitioner online(tiny);
  auto run = online.Run(binary, "matmul");
  ASSERT_TRUE(run.ok()) << run.status().message();
  double live_area = 0.0;
  for (const auto& kernel : run.value().kernels) {
    if (!kernel.evicted) live_area += kernel.estimate.area_gates;
  }
  EXPECT_LE(live_area, tiny.fpga.budget_gates());
  // Something had to give: either a kernel was evicted or a candidate was
  // rejected for area.
  bool constrained = false;
  for (const auto& kernel : run.value().kernels) {
    constrained |= kernel.evicted;
  }
  for (const auto& reason : run.value().rejected) {
    constrained |= reason.find("area") != std::string::npos;
  }
  EXPECT_TRUE(constrained);
}

TEST(DynamicFlow, IncrementalDecompilationIsRegionScoped) {
  // RunAt lifts only the enclosing function (plus callees), not the binary.
  auto binary = BuildSuiteBinary("crc");
  ASSERT_NE(binary, nullptr);
  const auto entries = decomp::FunctionEntries(*binary);
  ASSERT_GE(entries.size(), 2u);  // main + crc16 at least
  EXPECT_TRUE(std::is_sorted(entries.begin(), entries.end()));
  EXPECT_EQ(entries.front(), binary->entry);

  auto manager = decomp::PassManager::Preset("default");
  ASSERT_TRUE(manager.ok());
  auto whole = manager.value().Run(binary);
  ASSERT_TRUE(whole.ok());

  // Lift rooted at a non-entry function: main is that function, and the
  // module cannot be larger than the whole-binary lift.
  auto region = manager.value().RunAt(binary, entries.back());
  ASSERT_TRUE(region.ok()) << region.status().message();
  EXPECT_EQ(region.value().module.main->entry_pc(), entries.back());
  EXPECT_LE(region.value().module.functions.size(),
            whole.value().module.functions.size());
}

TEST(DynamicFlow, GracefulOnCdfgFailureBinaries) {
  // The two jump-table benchmarks defeat whole-binary CDFG recovery, so
  // the static flow errors out.  The dynamic flow still *executes* them
  // correctly — candidates that cannot be decompiled are rejected and the
  // application simply stays in software (speedup 1.0).
  for (const auto& bench : suite::AllBenchmarks()) {
    if (!bench.expect_cdfg_failure) continue;
    auto built = suite::BuildBinary(bench, 1);
    ASSERT_TRUE(built.ok()) << bench.name;
    auto binary =
        std::make_shared<const mips::SoftBinary>(std::move(built).take());
    dynamic::DynamicPartitioner online(
        *PlatformRegistry::Global().Find("mips200-xc2v1000"));
    auto run = online.Run(binary, bench.name);
    ASSERT_TRUE(run.ok()) << bench.name << ": " << run.status().message();
    EXPECT_EQ(run.value().run.return_value, bench.reference()) << bench.name;
    EXPECT_GE(run.value().estimate.speedup, 1.0) << bench.name;
  }
}

TEST(DynamicFlow, FaultingBinaryReportsCleanError) {
  auto assembled = mips::Assemble(R"(
    main:
      li $t0, 20
    loop:
      sw $t0, 0($zero)        # store to unmapped address -> fault
      addiu $t0, $t0, -1
      bgtz $t0, loop
      jr $ra
  )");
  ASSERT_TRUE(assembled.ok()) << assembled.status().message();
  auto binary =
      std::make_shared<const mips::SoftBinary>(std::move(assembled).take());
  dynamic::DynamicPartitioner online(
      *PlatformRegistry::Global().Find("mips200-xc2v1000"));
  auto run = online.Run(binary, "faulty");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().kind(), ErrorKind::kMalformedBinary);
}

}  // namespace
}  // namespace b2h
