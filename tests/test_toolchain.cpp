// Toolchain facade tests: platform registry, builder configuration, the
// RunFlow compatibility shim, and the RunMany batch API — in particular
// that a platform sweep reuses ONE decompilation per binary and that
// parallel and serial batches produce identical results.
#include "toolchain/toolchain.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "suite/runner.hpp"
#include "suite/suite.hpp"

namespace b2h {
namespace {

std::shared_ptr<const mips::SoftBinary> BuildBench(const std::string& name,
                                                   int opt_level = 1) {
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  EXPECT_NE(bench, nullptr) << name;
  auto binary = suite::BuildBinary(*bench, opt_level);
  EXPECT_TRUE(binary.ok()) << binary.status().message();
  return std::make_shared<const mips::SoftBinary>(std::move(binary).take());
}

const std::vector<std::string> kPaperPlatforms = {"mips40", "mips200-xc2v1000",
                                                  "mips400"};

TEST(PlatformRegistry, BuiltinsCoverThePaperEvaluationPoints) {
  const auto p40 = PlatformRegistry::Global().Find("mips40");
  const auto p200 = PlatformRegistry::Global().Find("mips200-xc2v1000");
  const auto p400 = PlatformRegistry::Global().Find("mips400");
  ASSERT_TRUE(p40.has_value());
  ASSERT_TRUE(p200.has_value());
  ASSERT_TRUE(p400.has_value());
  EXPECT_DOUBLE_EQ(p40->cpu.clock_mhz, 40.0);
  EXPECT_DOUBLE_EQ(p200->cpu.clock_mhz, 200.0);
  EXPECT_DOUBLE_EQ(p400->cpu.clock_mhz, 400.0);
  EXPECT_FALSE(PlatformRegistry::Global().Find("no-such").has_value());
}

TEST(PlatformRegistry, CustomRegistrationIsUsableByName) {
  partition::Platform tiny = partition::Platform::WithCpuMhz(100.0);
  tiny.fpga.capacity_gates = 20'000.0;
  tiny.fpga.usable_fraction = 1.0;
  PlatformRegistry::Global().Register("test-tiny", tiny);

  Toolchain toolchain;
  auto run = toolchain.RunOn("test-tiny", BuildBench("fir"), "fir");
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run.value().platform_name, "test-tiny");
  EXPECT_LE(run.value().partition.area_budget_gates, 20'000.0);
}

TEST(Toolchain, RunMatchesRunFlowShim) {
  const auto binary = BuildBench("fir");

  partition::FlowOptions flow_options;
  auto flow = partition::RunFlow(binary, flow_options);
  ASSERT_TRUE(flow.ok());

  Toolchain toolchain;
  auto run = toolchain.Run(binary, "fir");
  ASSERT_TRUE(run.ok());

  EXPECT_DOUBLE_EQ(run.value().estimate.speedup, flow.value().estimate.speedup);
  EXPECT_DOUBLE_EQ(run.value().estimate.energy_savings,
                   flow.value().estimate.energy_savings);
  EXPECT_EQ(run.value().partition.hw.size(), flow.value().partition.hw.size());
}

TEST(Toolchain, FlowResultOutlivesCallerBinary) {
  // Regression for the dangling-pointer hazard: the FlowResult (and the
  // program inside it) must stay valid after the caller's binary handle
  // and the surrounding scope are gone.
  partition::FlowResult flow = [] {
    auto binary = BuildBench("brev");
    auto result = partition::RunFlow(binary);
    EXPECT_TRUE(result.ok());
    binary.reset();  // drop the caller's only handle
    return std::move(result).take();
  }();
  ASSERT_NE(flow.program, nullptr);
  ASSERT_NE(flow.program->binary, nullptr);
  EXPECT_GT(flow.program->binary->text.size(), 0u);
  EXPECT_FALSE(flow.Report().empty());
}

TEST(Toolchain, UnknownPlatformIsAnError) {
  Toolchain toolchain;
  auto run = toolchain.RunOn("atari2600", BuildBench("fir"), "fir");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().kind(), ErrorKind::kUnsupported);
}

TEST(Toolchain, BadPipelineSpecSurfacesAtRunTime) {
  Toolchain toolchain;
  toolchain.WithPipeline("default,-simplify-constants,no-such-pass");
  auto run = toolchain.Run(BuildBench("fir"), "fir");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().kind(), ErrorKind::kUnsupported);
}

TEST(Toolchain, PipelineSpecSelectsPasses) {
  Toolchain toolchain;
  toolchain.WithPipeline("none");
  auto run = toolchain.Run(BuildBench("fir"), "fir");
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().program->pass_runs.empty());

  toolchain.WithPipeline("default");
  auto full = toolchain.Run(BuildBench("fir"), "fir");
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full.value().program->pass_runs.empty());
}

// Acceptance criterion: RunMany over the three paper platforms performs
// exactly one decompilation (and one profiling run) per binary, and every
// platform's run shares that decompiled program.
TEST(Toolchain, RunManyDecompilesEachBinaryOnce) {
  const std::vector<NamedBinary> binaries = {{"fir", BuildBench("fir")},
                                             {"brev", BuildBench("brev")}};
  Toolchain toolchain;
  const BatchResult batch = toolchain.RunMany(binaries, kPaperPlatforms);

  ASSERT_EQ(batch.runs.size(), binaries.size() * kPaperPlatforms.size());
  EXPECT_EQ(batch.decompilations_run, binaries.size());
  EXPECT_EQ(batch.simulations_run, binaries.size());

  for (std::size_t b = 0; b < binaries.size(); ++b) {
    const auto& first = batch.At(b, 0);
    ASSERT_TRUE(first.ok()) << first.status().message();
    for (std::size_t p = 1; p < kPaperPlatforms.size(); ++p) {
      const auto& other = batch.At(b, p);
      ASSERT_TRUE(other.ok()) << other.status().message();
      // Same object, not an equal copy: the decompilation was reused.
      EXPECT_EQ(first.value().program.get(), other.value().program.get());
      EXPECT_EQ(first.value().software_run.get(),
                other.value().software_run.get());
    }
  }

  // The sweep trend the paper reports: slower CPU -> larger speedup.
  for (std::size_t b = 0; b < binaries.size(); ++b) {
    const double s40 =
        batch.At(b, 0).value().estimate.speedup;
    const double s400 =
        batch.At(b, 2).value().estimate.speedup;
    EXPECT_GT(s40, s400);
  }
}

// Platforms with a different CPU cycle model must NOT share a profile:
// RunMany groups by cycle model and decompiles once per group, so the
// batch row agrees exactly with the single-run path.
TEST(Toolchain, RunManyGroupsByCycleModel) {
  partition::Platform slow_mem = partition::Platform::WithCpuMhz(200.0);
  slow_mem.cpu.cycle_model.load_extra = 5;
  PlatformRegistry::Global().Register("test-slow-mem", slow_mem);

  const std::vector<NamedBinary> binaries = {{"fir", BuildBench("fir")}};
  Toolchain toolchain;
  const BatchResult batch =
      toolchain.RunMany(binaries, {"mips200-xc2v1000", "test-slow-mem"});
  ASSERT_EQ(batch.runs.size(), 2u);
  ASSERT_TRUE(batch.At(0, 0).ok());
  ASSERT_TRUE(batch.At(0, 1).ok());
  EXPECT_EQ(batch.decompilations_run, 2u);  // one per distinct cycle model
  EXPECT_NE(batch.At(0, 0).value().program.get(),
            batch.At(0, 1).value().program.get());

  auto single = toolchain.RunOn("test-slow-mem", binaries[0].binary, "fir");
  ASSERT_TRUE(single.ok());
  const auto& batched = batch.At(0, 1).value();
  EXPECT_EQ(partition::FlowReportBody(*batched.software_run, *batched.program,
                                      batched.partition, batched.estimate),
            partition::FlowReportBody(
                *single.value().software_run, *single.value().program,
                single.value().partition, single.value().estimate));
}

TEST(Toolchain, RunManyParallelEqualsSerial) {
  const std::vector<NamedBinary> binaries = {{"fir", BuildBench("fir")},
                                             {"crc", BuildBench("crc")},
                                             {"brev", BuildBench("brev")}};
  Toolchain serial;
  serial.WithThreads(1);
  Toolchain parallel;
  parallel.WithThreads(4);

  const BatchResult a = serial.RunMany(binaries, kPaperPlatforms);
  const BatchResult b = parallel.RunMany(binaries, kPaperPlatforms);

  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.decompilations_run, b.decompilations_run);
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    ASSERT_EQ(a.runs[i].ok(), b.runs[i].ok()) << i;
    if (!a.runs[i].ok()) continue;
    // Semantic reports (partition layout, cycle counts, estimates) match
    // bit-for-bit between thread counts.  ToolchainRun::Report() also
    // prints wall-clock pass timings, which legitimately vary — compare
    // the timing-free body instead.
    const auto& ra = a.runs[i].value();
    const auto& rb = b.runs[i].value();
    EXPECT_EQ(partition::FlowReportBody(*ra.software_run, *ra.program,
                                        ra.partition, ra.estimate),
              partition::FlowReportBody(*rb.software_run, *rb.program,
                                        rb.partition, rb.estimate))
        << i;
  }
}

TEST(Toolchain, RunManyReportsPerSlotFailures) {
  const std::vector<NamedBinary> binaries = {{"fir", BuildBench("fir")},
                                             {"null", nullptr}};
  const std::vector<std::string> platforms = {"mips200-xc2v1000", "bogus"};
  Toolchain toolchain;
  const BatchResult batch = toolchain.RunMany(binaries, platforms);
  ASSERT_EQ(batch.runs.size(), 4u);
  EXPECT_TRUE(batch.At(0, 0).ok());
  EXPECT_FALSE(batch.At(0, 1).ok());  // unknown platform
  EXPECT_FALSE(batch.At(1, 0).ok());  // null binary
  EXPECT_FALSE(batch.At(1, 1).ok());
}

// The two jump-table EEMBC-style benchmarks fail CDFG recovery in RunMany
// exactly as they do in the one-shot flow (paper: two failures).
TEST(Toolchain, RunManyPropagatesCdfgFailures) {
  std::vector<NamedBinary> binaries;
  for (const auto& bench : suite::AllBenchmarks()) {
    if (!bench.expect_cdfg_failure) continue;
    binaries.push_back({bench.name, BuildBench(bench.name)});
  }
  ASSERT_EQ(binaries.size(), 2u);
  Toolchain toolchain;
  const BatchResult batch =
      toolchain.RunMany(binaries, {"mips200-xc2v1000"});
  for (const auto& run : batch.runs) {
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().kind(), ErrorKind::kIndirectJump);
  }
}

}  // namespace
}  // namespace b2h
