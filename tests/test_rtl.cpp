// RTL simulator co-simulation: the synthesized FSM+datapath executed on the
// RTL model must reproduce the IR interpreter / MIPS simulator results for
// whole-function regions across the benchmark suite.  This is the third leg
// of the verification triangle (DESIGN.md §5) and doubles as a strict
// schedule-legality check (the RTL model refuses to read unscheduled
// values).
#include "synth/rtl_sim.hpp"

#include <gtest/gtest.h>

#include "decomp/pipeline.hpp"
#include "mips/simulator.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "synth/synth.hpp"

namespace b2h::synth {
namespace {

class RtlCosim : public ::testing::TestWithParam<const char*> {};

TEST_P(RtlCosim, WholeMainMatchesSoftware) {
  const suite::Benchmark* bench = suite::FindBenchmark(GetParam());
  ASSERT_NE(bench, nullptr);
  auto binary = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(binary.ok()) << binary.status().message();

  mips::Simulator sim(binary.value());
  const auto run = sim.Run();
  ASSERT_EQ(run.reason, mips::HaltReason::kReturned);
  ASSERT_EQ(run.return_value, bench->reference());

  decomp::DecompileOptions options;
  options.profile = &run.profile;
  auto program = decomp::Decompile(binary.value(), options);
  ASSERT_TRUE(program.ok()) << program.status().message();

  // Whole-application synthesis (paper: "our methods are also applicable
  // for synthesizing an entire software application ... to a custom
  // circuit"): main must be call-free after inlining for this to work.
  const ir::Function* main_fn = program.value().module.main;
  const HwRegion region = ExtractFunctionRegion(*main_fn);
  if (!region.synthesizable) {
    GTEST_SKIP() << "main still contains calls: " << region.reject_reason;
  }
  decomp::AliasAnalysis alias(*main_fn, &binary.value().symbols);
  auto synthesized = Synthesize(region, &alias);
  ASSERT_TRUE(synthesized.ok()) << synthesized.status().message();

  RtlSimulator rtl(region, synthesized.value().schedule,
                   binary.value().data);
  std::map<unsigned, std::int32_t> inputs;
  inputs[29] = static_cast<std::int32_t>(mips::kStackTop - 64);  // sp
  const auto result = rtl.Run({}, inputs);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.return_value, bench->reference())
      << "RTL result diverged from software";
  EXPECT_GT(result.fsm_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, RtlCosim,
    ::testing::Values("autcor00", "conven00", "rgbcmy01", "idct01",
                      "bitmnp01", "crc", "bcnt", "blit", "fir", "engine",
                      "g3fax", "adpcm_enc", "adpcm_dec", "g721_quan",
                      "jpeg_dct", "brev", "matmul", "checksum"),
    [](const auto& info) { return std::string(info.param); });

TEST(RtlSim, SequentialFsmIsSlowerThanSoftwareClaims) {
  // Sanity: the *sequential* FSM cycle count relates to states x trips;
  // the speedup comes from chaining (fewer states than instructions) and
  // pipelining (accounted analytically in EstimateCycles).
  const suite::Benchmark* bench = suite::FindBenchmark("brev");
  auto binary = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(binary.ok());
  mips::Simulator sim(binary.value());
  const auto run = sim.Run();
  decomp::DecompileOptions options;
  options.profile = &run.profile;
  auto program = decomp::Decompile(binary.value(), options);
  ASSERT_TRUE(program.ok());
  const HwRegion region =
      ExtractFunctionRegion(*program.value().module.main);
  ASSERT_TRUE(region.synthesizable);
  auto synthesized = Synthesize(region, nullptr);
  ASSERT_TRUE(synthesized.ok());
  RtlSimulator rtl(region, synthesized.value().schedule,
                   binary.value().data);
  std::map<unsigned, std::int32_t> inputs;
  inputs[29] = static_cast<std::int32_t>(mips::kStackTop - 64);
  const auto result = rtl.Run({}, inputs);
  ASSERT_TRUE(result.ok) << result.error;
  // Chaining compresses the bit-reversal tree: far fewer cycles than the
  // MIPS instruction count.
  EXPECT_LT(result.fsm_cycles, run.instructions);
}

TEST(RtlSim, LiveOutValuesExposed) {
  // Build a small kernel whose loop produces a live-out accumulator.
  const suite::Benchmark* bench = suite::FindBenchmark("checksum");
  auto binary = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(binary.ok());
  mips::Simulator sim(binary.value());
  const auto run = sim.Run();
  decomp::DecompileOptions options;
  options.profile = &run.profile;
  auto program = decomp::Decompile(binary.value(), options);
  ASSERT_TRUE(program.ok());
  const ir::Function* main_fn = program.value().module.main;
  const HwRegion region = ExtractFunctionRegion(*main_fn);
  ASSERT_TRUE(region.synthesizable);
  // A whole-function region has no live-outs (the ret consumes them).
  EXPECT_TRUE(region.live_outs.empty());
  EXPECT_TRUE(region.live_ins.empty());
}

}  // namespace
}  // namespace b2h::synth
