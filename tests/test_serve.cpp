// Serving-layer tests: the strict JSON reader, length-prefixed framing,
// wire-protocol decode/validation and content keys, scheduler semantics
// (single-flight coalescing, deadlines, bounded admission, shutdown), and
// live-daemon behavior over a real unix socket — lifecycle, robustness to
// hostile input (malformed JSON, schema skew, oversized/truncated frames),
// report parity with the local Toolchain, warm-cache zero-recompute, and a
// multi-tenant hammer that proves bursts of identical requests compute once
// and leave the disk cache untorn.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "explore/explorer.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/json_parse.hpp"
#include "support/schema.hpp"
#include "support/socket.hpp"
#include "testing_support.hpp"
#include "toolchain/toolchain.hpp"

namespace b2h {
namespace {

using serve::Client;
using serve::Request;
using serve::RequestKey;
using serve::Scheduler;
using serve::Server;
using support::FrameStatus;
using support::JsonValue;
using testing_support::ScopedEnv;
using testing_support::TempDir;

// Hermetic for the whole binary: the server's Toolchain would otherwise
// pick up a developer's exported cache dir and serve "cold" requests warm,
// flipping every work-counter assertion below.
const ScopedEnv kPinnedCacheDirEnv("B2H_CACHE_DIR", nullptr);

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

TEST(JsonParse, ParsesNestedDocument) {
  const auto parsed = JsonValue::Parse(
      R"( {"s":"a\"b\\c\n","n":-2.5e2,"t":true,"f":false,"z":null,)"
      R"("arr":[1,"two",{"deep":3}],"obj":{"k":"v"}} )");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->GetString("s"), "a\"b\\c\n");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("n"), -250.0);
  EXPECT_TRUE(parsed->GetBool("t", false));
  EXPECT_FALSE(parsed->GetBool("f", true));
  ASSERT_NE(parsed->Find("z"), nullptr);
  EXPECT_TRUE(parsed->Find("z")->is_null());
  const JsonValue* arr = parsed->Find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->array().size(), 3u);
  EXPECT_DOUBLE_EQ(arr->array()[0].number(), 1.0);
  EXPECT_EQ(arr->array()[1].string(), "two");
  EXPECT_DOUBLE_EQ(arr->array()[2].GetNumber("deep"), 3.0);
  EXPECT_EQ(parsed->Find("obj")->GetString("k"), "v");
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",           "[1,",        "{\"a\":}",
      "{\"a\" 1}",  "{} trailing", "tru",        "nan",
      "\"unterminated", "{\"a\":1,}",  "[1 2]",      "01",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(JsonValue::Parse(text).has_value()) << text;
  }
}

TEST(JsonParse, BoundsRecursionDepth) {
  // A pathological nesting must yield nullopt, not a stack overflow.
  std::string deep;
  for (int i = 0; i < 10000; ++i) deep += '[';
  for (int i = 0; i < 10000; ++i) deep += ']';
  EXPECT_FALSE(JsonValue::Parse(deep).has_value());
}

TEST(JsonParse, GetStringArraySkipsNonStrings) {
  const auto parsed = JsonValue::Parse(R"({"v":["a",1,"b",null,"c"]})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->GetStringArray("v"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(parsed->GetStringArray("missing").empty());
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

struct SocketPair {
  int fd[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~SocketPair() {
    if (fd[0] >= 0) ::close(fd[0]);
    if (fd[1] >= 0) ::close(fd[1]);
  }
  void CloseWriter() {
    ::close(fd[0]);
    fd[0] = -1;
  }
};

TEST(Framing, RoundTripsPayloads) {
  SocketPair pair;
  std::string payload;
  ASSERT_TRUE(support::WriteFrame(pair.fd[0], "hello frames", 1 << 20));
  ASSERT_TRUE(support::WriteFrame(pair.fd[0], "", 1 << 20));
  EXPECT_EQ(support::ReadFrame(pair.fd[1], &payload, 1 << 20, 1000),
            FrameStatus::kOk);
  EXPECT_EQ(payload, "hello frames");
  EXPECT_EQ(support::ReadFrame(pair.fd[1], &payload, 1 << 20, 1000),
            FrameStatus::kOk);
  EXPECT_EQ(payload, "");
}

TEST(Framing, ReportsOversizedPrefixWithoutAllocating) {
  SocketPair pair;
  // Writer honors a generous cap; the reader's tighter cap must reject.
  ASSERT_TRUE(support::WriteFrame(pair.fd[0], std::string(100, 'x'), 1 << 20));
  std::string payload;
  EXPECT_EQ(support::ReadFrame(pair.fd[1], &payload, 50, 1000),
            FrameStatus::kOversized);
}

TEST(Framing, WriterRefusesOversizedPayload) {
  SocketPair pair;
  EXPECT_FALSE(support::WriteFrame(pair.fd[0], std::string(100, 'x'), 50));
}

TEST(Framing, ReportsTruncatedStream) {
  SocketPair pair;
  const unsigned char prefix[4] = {100, 0, 0, 0};  // claims 100 bytes
  ASSERT_EQ(::send(pair.fd[0], prefix, 4, 0), 4);
  ASSERT_EQ(::send(pair.fd[0], "short", 5, 0), 5);
  pair.CloseWriter();
  std::string payload;
  EXPECT_EQ(support::ReadFrame(pair.fd[1], &payload, 1 << 20, 1000),
            FrameStatus::kTruncated);
}

TEST(Framing, ReportsCleanCloseAndTimeout) {
  {
    SocketPair pair;
    pair.CloseWriter();
    std::string payload;
    EXPECT_EQ(support::ReadFrame(pair.fd[1], &payload, 1 << 20, 1000),
              FrameStatus::kClosed);
  }
  {
    SocketPair pair;
    std::string payload;
    EXPECT_EQ(support::ReadFrame(pair.fd[1], &payload, 1 << 20, 50),
              FrameStatus::kTimeout);
  }
}

// ---------------------------------------------------------------------------
// Protocol decode + content keys
// ---------------------------------------------------------------------------

std::optional<Request> Parse(const std::string& payload,
                             serve::ParseError* error) {
  return serve::ParseRequest(payload, error);
}

TEST(Protocol, DecodesPartitionRequestWithDefaults) {
  serve::ParseError error;
  const auto request =
      Parse(R"({"schema":1,"kind":"partition","benchmark":"crc"})", &error);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_EQ(request->kind, serve::RequestKind::kPartition);
  EXPECT_EQ(request->benchmark, "crc");
  EXPECT_EQ(request->platform, "mips200-xc2v1000");
  EXPECT_EQ(request->strategy, "paper-greedy");
  EXPECT_EQ(request->objective, "speedup");
  EXPECT_EQ(request->opt_level, 1);
  EXPECT_EQ(request->seed, 1u);
  EXPECT_EQ(request->deadline_ms, -1);
}

TEST(Protocol, RejectsStructurallyInvalidRequests) {
  const struct {
    const char* payload;
    const char* code;
  } cases[] = {
      {"{nope", serve::kErrBadJson},
      {"[1,2]", serve::kErrBadRequest},
      {R"({"kind":"ping"})", serve::kErrBadSchema},
      {R"({"schema":99,"kind":"ping"})", serve::kErrBadSchema},
      {R"({"schema":1,"kind":"bogus"})", serve::kErrBadRequest},
      {R"({"schema":1,"kind":"partition"})", serve::kErrBadRequest},
      {R"({"schema":1,"kind":"partition","benchmark":"crc","seed":-1})",
       serve::kErrBadRequest},
      {R"({"schema":1,"kind":"partition","benchmark":"crc","deadline_ms":-5})",
       serve::kErrBadRequest},
      {R"({"schema":1,"kind":"partition","benchmark":"crc",)"
       R"("objective":"bogus"})",
       serve::kErrBadRequest},
      {R"({"schema":1,"kind":"explore"})", serve::kErrBadRequest},
      {R"({"schema":1,"kind":"explore","benchmarks":["crc"],)"
       R"("objectives":["bogus"]})",
       serve::kErrBadRequest},
  };
  for (const auto& test_case : cases) {
    serve::ParseError error;
    EXPECT_FALSE(Parse(test_case.payload, &error).has_value())
        << test_case.payload;
    EXPECT_EQ(error.code, test_case.code) << test_case.payload;
    EXPECT_FALSE(error.message.empty());
  }
}

TEST(Protocol, RequestKeyIgnoresVolatileFieldsOnly) {
  serve::ParseError error;
  const auto base = Parse(
      R"({"schema":1,"kind":"partition","benchmark":"crc","seed":7})", &error);
  const auto volatile_fields = Parse(
      R"({"schema":1,"kind":"partition","benchmark":"crc","seed":7,)"
      R"("id":"req-1","deadline_ms":500})",
      &error);
  const auto other_seed = Parse(
      R"({"schema":1,"kind":"partition","benchmark":"crc","seed":8})", &error);
  ASSERT_TRUE(base && volatile_fields && other_seed);
  EXPECT_EQ(RequestKey(*base), RequestKey(*volatile_fields));
  EXPECT_NE(RequestKey(*base), RequestKey(*other_seed));

  // A reordered explore grid is a different report, hence a different key.
  const auto grid_ab = Parse(
      R"({"schema":1,"kind":"explore","benchmarks":["crc","fir"]})", &error);
  const auto grid_ba = Parse(
      R"({"schema":1,"kind":"explore","benchmarks":["fir","crc"]})", &error);
  ASSERT_TRUE(grid_ab && grid_ba);
  EXPECT_NE(RequestKey(*grid_ab), RequestKey(*grid_ba));
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

serve::JobResult OkJob(std::string report) {
  return {true, "", "", std::move(report)};
}

/// Spin until `predicate` holds (bounded); the scheduler has no test hooks,
/// so admission ordering is observed through its stats.
template <typename Predicate>
void SpinUntil(Predicate predicate) {
  for (int i = 0; i < 20000 && !predicate(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(predicate());
}

TEST(SchedulerTest, CoalescesConcurrentIdenticalKeys) {
  Scheduler scheduler({/*workers=*/1, /*max_queue=*/8});
  std::atomic<bool> started{false};
  std::atomic<int> executions{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();

  const auto work = [&]() {
    started.store(true);
    ++executions;
    gate.wait();
    return OkJob("shared-result");
  };

  std::vector<Scheduler::Outcome> outcomes(4);
  std::vector<std::thread> threads;
  threads.emplace_back([&] { outcomes[0] = scheduler.Run("k", work, -1); });
  SpinUntil([&] { return started.load(); });
  for (int i = 1; i < 4; ++i) {
    threads.emplace_back(
        [&, i] { outcomes[i] = scheduler.Run("k", work, -1); });
  }
  SpinUntil([&] { return scheduler.stats().coalesced == 3; });
  release.set_value();
  for (std::thread& thread : threads) thread.join();

  int coalesced = 0;
  for (const Scheduler::Outcome& outcome : outcomes) {
    EXPECT_EQ(outcome.code, Scheduler::OutcomeCode::kDone);
    ASSERT_NE(outcome.result, nullptr);
    EXPECT_EQ(outcome.result->report, "shared-result");
    if (outcome.coalesced) ++coalesced;
  }
  EXPECT_EQ(coalesced, 3);
  EXPECT_EQ(executions.load(), 1);  // single-flight: the closure ran once
  const Scheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.coalesced, 3u);
}

TEST(SchedulerTest, DeadlineExpiresButComputationCompletes) {
  Scheduler scheduler({/*workers=*/1, /*max_queue=*/8});
  std::atomic<bool> started{false};
  std::atomic<int> fast_runs{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();

  std::thread blocker([&] {
    (void)scheduler.Run(
        "block",
        [&] {
          started.store(true);
          gate.wait();
          return OkJob("blocked");
        },
        -1);
  });
  SpinUntil([&] { return started.load(); });

  // Queued behind the blocked worker with a deadline far shorter than the
  // block: the waiter must give up, the job must stay admitted.
  const auto fast = [&] {
    ++fast_runs;
    return OkJob("fast-result");
  };
  const Scheduler::Outcome expired = scheduler.Run("fast", fast, 50);
  EXPECT_EQ(expired.code, Scheduler::OutcomeCode::kDeadline);
  EXPECT_EQ(expired.result, nullptr);
  EXPECT_EQ(scheduler.stats().deadline_expired, 1u);

  release.set_value();
  blocker.join();

  // The abandoned job completes; a later identical request gets its result.
  const Scheduler::Outcome retry = scheduler.Run("fast", fast, -1);
  EXPECT_EQ(retry.code, Scheduler::OutcomeCode::kDone);
  ASSERT_NE(retry.result, nullptr);
  EXPECT_EQ(retry.result->report, "fast-result");
  EXPECT_GE(fast_runs.load(), 1);
}

TEST(SchedulerTest, BoundedAdmissionRejectsNovelButAdmitsAttach) {
  Scheduler scheduler({/*workers=*/1, /*max_queue=*/1});
  std::atomic<bool> started{false};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();

  std::thread blocker([&] {
    (void)scheduler.Run(
        "block",
        [&] {
          started.store(true);
          gate.wait();
          return OkJob("blocked");
        },
        -1);
  });
  SpinUntil([&] { return started.load(); });

  std::thread queued([&] {
    const Scheduler::Outcome outcome =
        scheduler.Run("queued", [] { return OkJob("queued"); }, -1);
    EXPECT_EQ(outcome.code, Scheduler::OutcomeCode::kDone);
  });
  SpinUntil([&] { return scheduler.stats().submitted == 2; });

  // Queue is at capacity: a novel key bounces immediately...
  const Scheduler::Outcome rejected =
      scheduler.Run("novel", [] { return OkJob("novel"); }, -1);
  EXPECT_EQ(rejected.code, Scheduler::OutcomeCode::kOverloaded);
  EXPECT_EQ(scheduler.stats().rejected_overload, 1u);

  // ...but attaching to in-flight work adds no load and is always admitted.
  std::thread attacher([&] {
    const Scheduler::Outcome outcome =
        scheduler.Run("block", [] { return OkJob("never"); }, -1);
    EXPECT_EQ(outcome.code, Scheduler::OutcomeCode::kDone);
    EXPECT_TRUE(outcome.coalesced);
    ASSERT_NE(outcome.result, nullptr);
    EXPECT_EQ(outcome.result->report, "blocked");
  });
  SpinUntil([&] { return scheduler.stats().coalesced == 1; });

  release.set_value();
  blocker.join();
  queued.join();
  attacher.join();
}

TEST(SchedulerTest, StopFailsQueuedJobsAndRefusesNewOnes) {
  Scheduler scheduler({/*workers=*/1, /*max_queue=*/8});
  std::atomic<bool> started{false};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();

  std::thread blocker([&] {
    const Scheduler::Outcome outcome = scheduler.Run(
        "block",
        [&] {
          started.store(true);
          gate.wait();
          return OkJob("finished");
        },
        -1);
    // Running jobs finish normally even during shutdown.
    EXPECT_EQ(outcome.code, Scheduler::OutcomeCode::kDone);
    ASSERT_NE(outcome.result, nullptr);
    EXPECT_TRUE(outcome.result->ok);
    EXPECT_EQ(outcome.result->report, "finished");
  });
  SpinUntil([&] { return started.load(); });

  std::thread queued([&] {
    const Scheduler::Outcome outcome =
        scheduler.Run("queued", [] { return OkJob("queued"); }, -1);
    // Admitted but never started: failed structurally at Stop() time.
    EXPECT_EQ(outcome.code, Scheduler::OutcomeCode::kDone);
    ASSERT_NE(outcome.result, nullptr);
    EXPECT_FALSE(outcome.result->ok);
    EXPECT_EQ(outcome.result->error_code, serve::kErrShuttingDown);
  });
  SpinUntil([&] { return scheduler.stats().submitted == 2; });

  std::thread stopper([&] { scheduler.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();
  stopper.join();
  blocker.join();
  queued.join();

  const Scheduler::Outcome late =
      scheduler.Run("late", [] { return OkJob("late"); }, -1);
  EXPECT_EQ(late.code, Scheduler::OutcomeCode::kShuttingDown);
}

// ---------------------------------------------------------------------------
// Live daemon helpers
// ---------------------------------------------------------------------------

/// One in-process daemon on a scratch socket; Wait() runs on a background
/// thread so tests drive it through real client connections.
struct ServerHarness {
  explicit ServerHarness(Server::Options options)
      : server(std::move(options)) {}
  ~ServerHarness() {
    server.RequestShutdown();
    if (waiter.joinable()) waiter.join();
  }

  [[nodiscard]] bool Start() {
    const Status status = server.Start();
    EXPECT_TRUE(status.ok()) << status.message();
    if (!status.ok()) return false;
    waiter = std::thread([this] { server.Wait(); });
    return true;
  }

  Server server;
  std::thread waiter;
};

Client MustConnect(const std::string& socket_path) {
  Result<Client> client = Client::Connect(socket_path);
  EXPECT_TRUE(client.ok()) << client.status().message();
  return client.ok() ? std::move(client).take() : Client();
}

std::string Call(Client& client, const std::string& request) {
  std::string response;
  const Status status = client.Call(request, &response, 60000);
  EXPECT_TRUE(status.ok()) << status.message();
  return response;
}

JsonValue MustParse(const std::string& response) {
  const auto parsed = JsonValue::Parse(response);
  EXPECT_TRUE(parsed.has_value()) << response;
  return parsed.value_or(JsonValue::MakeNull());
}

void ExpectErrorCode(const std::string& response, std::string_view code) {
  const JsonValue parsed = MustParse(response);
  EXPECT_DOUBLE_EQ(parsed.GetNumber("schema"), kWireSchemaVersion);
  EXPECT_FALSE(parsed.GetBool("ok", true)) << response;
  const JsonValue* error = parsed.Find("error");
  ASSERT_NE(error, nullptr) << response;
  EXPECT_EQ(error->GetString("code"), code) << response;
  EXPECT_FALSE(error->GetString("message").empty());
}

/// The raw "report" object text — sliced, not re-serialized, so equality
/// below really is bit-identity of what the daemon sent.
std::string ExtractReport(const std::string& response) {
  const std::size_t begin = response.find("\"report\":");
  const std::size_t end = response.rfind(",\"served\":");
  EXPECT_NE(begin, std::string::npos) << response;
  EXPECT_NE(end, std::string::npos) << response;
  if (begin == std::string::npos || end == std::string::npos) return "";
  const std::size_t start = begin + 9;
  return response.substr(start, end - start);
}

struct WorkCounters {
  double simulations = 0;
  double decompilations = 0;
  double partitions = 0;
  double scheduler_executed = 0;
  double scheduler_coalesced = 0;
  double scheduler_deadline_expired = 0;
};

WorkCounters FetchStats(Client& client) {
  const std::string response =
      Call(client, R"({"schema":1,"kind":"stats"})");
  const JsonValue parsed = MustParse(response);
  WorkCounters counters;
  const JsonValue* served = parsed.Find("served");
  EXPECT_NE(served, nullptr) << response;
  if (served == nullptr) return counters;
  const JsonValue* work = served->Find("work");
  const JsonValue* scheduler = served->Find("scheduler");
  EXPECT_NE(work, nullptr);
  EXPECT_NE(scheduler, nullptr);
  if (work != nullptr) {
    counters.simulations = work->GetNumber("simulations_run");
    counters.decompilations = work->GetNumber("decompilations_run");
    counters.partitions = work->GetNumber("partitions_run");
  }
  if (scheduler != nullptr) {
    counters.scheduler_executed = scheduler->GetNumber("executed");
    counters.scheduler_coalesced = scheduler->GetNumber("coalesced");
    counters.scheduler_deadline_expired =
        scheduler->GetNumber("deadline_expired");
  }
  return counters;
}

std::string PartitionRequest(const std::string& benchmark,
                             const std::string& strategy,
                             std::uint64_t seed = 1,
                             unsigned iterations = 2000) {
  return R"({"schema":1,"kind":"partition","benchmark":")" + benchmark +
         R"(","strategy":")" + strategy + R"(","seed":)" +
         std::to_string(seed) + R"(,"annealing_iterations":)" +
         std::to_string(iterations) + "}";
}

// ---------------------------------------------------------------------------
// Live daemon
// ---------------------------------------------------------------------------

TEST(ServeDaemon, LifecyclePingStatsShutdown) {
  TempDir scratch;
  const std::string socket_path = scratch.path + "/serve.sock";
  ServerHarness harness({socket_path});
  ASSERT_TRUE(harness.Start());

  Client client = MustConnect(socket_path);
  const std::string pong =
      Call(client, R"({"schema":1,"kind":"ping","id":"t-1"})");
  const JsonValue parsed = MustParse(pong);
  EXPECT_DOUBLE_EQ(parsed.GetNumber("schema"), kWireSchemaVersion);
  EXPECT_TRUE(parsed.GetBool("ok", false));
  EXPECT_EQ(parsed.GetString("id"), "t-1");
  ASSERT_NE(parsed.Find("report"), nullptr);
  EXPECT_TRUE(parsed.Find("report")->GetBool("pong", false));

  const WorkCounters before = FetchStats(client);
  EXPECT_EQ(before.simulations, 0.0);

  const std::string bye = Call(client, R"({"schema":1,"kind":"shutdown"})");
  EXPECT_TRUE(MustParse(bye).GetBool("ok", false));
  if (harness.waiter.joinable()) harness.waiter.join();
  // A clean shutdown removes the socket file so restarts never hang on a
  // stale path.
  EXPECT_FALSE(std::filesystem::exists(socket_path));
}

TEST(ServeDaemon, MetricsEndpointReturnsSchemaStampedSnapshot) {
  TempDir scratch;
  const std::string socket_path = scratch.path + "/serve.sock";
  ServerHarness harness({socket_path});
  ASSERT_TRUE(harness.Start());

  Client client = MustConnect(socket_path);
  // Real work first, so the snapshot has something to show.
  const std::string worked =
      Call(client, PartitionRequest("crc", "paper-greedy"));
  ASSERT_TRUE(MustParse(worked).GetBool("ok", false)) << worked;

  const std::string response =
      Call(client, R"({"schema":1,"kind":"metrics","id":"m-1"})");
  const JsonValue parsed = MustParse(response);
  EXPECT_DOUBLE_EQ(parsed.GetNumber("schema"), kWireSchemaVersion);
  EXPECT_TRUE(parsed.GetBool("ok", false)) << response;
  EXPECT_EQ(parsed.GetString("id"), "m-1");

  // The served slot is the registry snapshot, stamped with its OWN schema
  // version (the metrics vocabulary evolves independently of the wire).
  const JsonValue* served = parsed.Find("served");
  ASSERT_NE(served, nullptr) << response;
  EXPECT_DOUBLE_EQ(served->GetNumber("schema"), obs::kMetricsSchemaVersion);
  const JsonValue* counters = served->Find("counters");
  const JsonValue* gauges = served->Find("gauges");
  const JsonValue* histograms = served->Find("histograms");
  ASSERT_NE(counters, nullptr) << response;
  ASSERT_NE(gauges, nullptr) << response;
  ASSERT_NE(histograms, nullptr) << response;

  // The metrics request itself is counted before the snapshot is taken,
  // so the floor includes it (partition + metrics = 2).
  EXPECT_GE(counters->GetNumber("serve.requests"), 2.0);
  EXPECT_GE(counters->GetNumber("serve.partitions_run"), 1.0);
  EXPECT_GE(counters->GetNumber("serve.connections"), 1.0);
  EXPECT_GE(gauges->GetNumber("serve.connections_open"), 1.0);
  const JsonValue* latency = histograms->Find("serve.latency_ms.partition");
  ASSERT_NE(latency, nullptr) << response;
  EXPECT_GE(latency->GetNumber("count"), 1.0);
  EXPECT_GT(latency->GetNumber("sum"), 0.0);

  // The registry-backed StatsJson keeps its original field names and adds
  // the live gauges.
  const std::string stats = Call(client, R"({"schema":1,"kind":"stats"})");
  const JsonValue* stats_served = nullptr;
  const JsonValue stats_parsed = MustParse(stats);
  stats_served = stats_parsed.Find("served");
  ASSERT_NE(stats_served, nullptr) << stats;
  EXPECT_GE(stats_served->GetNumber("requests"), 3.0);
  EXPECT_GE(stats_served->GetNumber("connections_open"), 1.0);
  ASSERT_NE(stats_served->Find("queue_depth"), nullptr) << stats;
  ASSERT_NE(stats_served->Find("in_flight"), nullptr) << stats;
}

TEST(ServeDaemon, SchemaMismatchAndMalformedJsonKeepConnectionServing) {
  TempDir scratch;
  const std::string socket_path = scratch.path + "/serve.sock";
  ServerHarness harness({socket_path});
  ASSERT_TRUE(harness.Start());

  Client client = MustConnect(socket_path);
  ExpectErrorCode(Call(client, R"({"schema":2,"kind":"ping"})"),
                  serve::kErrBadSchema);
  ExpectErrorCode(Call(client, "{this is not json"), serve::kErrBadJson);
  ExpectErrorCode(Call(client, R"({"schema":1,"kind":"frobnicate"})"),
                  serve::kErrBadRequest);
  ExpectErrorCode(
      Call(client,
           R"({"schema":1,"kind":"partition","benchmark":"no-such-bench"})"),
      serve::kErrUnknownBenchmark);
  ExpectErrorCode(Call(client,
                       R"({"schema":1,"kind":"partition","benchmark":"crc",)"
                       R"("platform":"no-such-platform"})"),
                  serve::kErrUnknownPlatform);
  ExpectErrorCode(Call(client,
                       R"({"schema":1,"kind":"partition","benchmark":"crc",)"
                       R"("strategy":"no-such-strategy"})"),
                  serve::kErrUnknownStrategy);

  // After six protocol errors the same connection still serves real work.
  const std::string pong = Call(client, R"({"schema":1,"kind":"ping"})");
  EXPECT_TRUE(MustParse(pong).GetBool("ok", false));
}

TEST(ServeDaemon, OversizedFrameClosesOnlyThatConnection) {
  TempDir scratch;
  Server::Options options{scratch.path + "/serve.sock"};
  options.max_frame_bytes = 4096;  // tight server-side cap
  ServerHarness harness(options);
  ASSERT_TRUE(harness.Start());

  Client abuser = MustConnect(options.socket_path);
  Client bystander = MustConnect(options.socket_path);

  // The client's own cap is the default 8 MiB, so it happily sends a frame
  // the server must refuse.
  ASSERT_TRUE(abuser.Send(std::string(8000, 'x')).ok());
  std::string response;
  ASSERT_TRUE(abuser.Receive(&response, 10000).ok());
  ExpectErrorCode(response, serve::kErrBadFrame);
  // The stream is out of sync, so the daemon hung up on this connection...
  EXPECT_FALSE(abuser.Receive(&response, 2000).ok());

  // ...and on this one a peer died mid-frame (truncated stream)...
  {
    Client truncator = MustConnect(options.socket_path);
    const char prefix[4] = {100, 0, 0, 0};
    ASSERT_TRUE(truncator.SendRaw(std::string_view(prefix, 4)));
    ASSERT_TRUE(truncator.SendRaw("short"));
    truncator.Close();
  }

  // ...while everyone else keeps being served.
  const std::string pong = Call(bystander, R"({"schema":1,"kind":"ping"})");
  EXPECT_TRUE(MustParse(pong).GetBool("ok", false));
}

TEST(ServeDaemon, PartitionReportMatchesLocalToolchain) {
  TempDir scratch;
  const std::string socket_path = scratch.path + "/serve.sock";
  ServerHarness harness({socket_path});
  ASSERT_TRUE(harness.Start());

  Client client = MustConnect(socket_path);
  const std::string response =
      Call(client, PartitionRequest("crc", "paper-greedy"));
  ASSERT_TRUE(MustParse(response).GetBool("ok", false)) << response;
  const std::string served_report = ExtractReport(response);

  // The daemon routes partition requests through the exploration engine
  // (for the shared cache), but its report must be bit-identical to the
  // local single-shot flow for the same request.
  const suite::Benchmark* bench = suite::FindBenchmark("crc");
  ASSERT_NE(bench, nullptr);
  Result<mips::SoftBinary> binary = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  Toolchain toolchain;
  toolchain.WithThreads(1);
  const Result<ToolchainRun> local = toolchain.RunOn(
      "mips200-xc2v1000",
      std::make_shared<const mips::SoftBinary>(std::move(binary).take()),
      "crc");
  ASSERT_TRUE(local.ok()) << local.status().message();
  EXPECT_EQ(served_report, local.value().Json());
}

TEST(ServeDaemon, WarmRepeatDoesZeroWorkAndReportsIdentically) {
  TempDir scratch;
  const std::string socket_path = scratch.path + "/serve.sock";
  ServerHarness harness({socket_path});
  ASSERT_TRUE(harness.Start());

  Client client = MustConnect(socket_path);
  const std::string request = PartitionRequest("brev", "paper-greedy");
  const std::string first = Call(client, request);
  ASSERT_TRUE(MustParse(first).GetBool("ok", false)) << first;
  const WorkCounters after_first = FetchStats(client);
  EXPECT_EQ(after_first.simulations, 1.0);
  EXPECT_EQ(after_first.decompilations, 1.0);
  EXPECT_EQ(after_first.partitions, 1.0);

  const std::string second = Call(client, request);
  const WorkCounters after_second = FetchStats(client);
  EXPECT_EQ(ExtractReport(first), ExtractReport(second));
  // The warm repeat is served entirely from the artifact cache.
  EXPECT_EQ(after_second.simulations, 1.0);
  EXPECT_EQ(after_second.decompilations, 1.0);
  EXPECT_EQ(after_second.partitions, 1.0);
}

// Single-flight decompiles: two explorers sharing one artifact cache,
// launched cold at the same instant with DISTINCT strategies over the same
// binary+platform.  Their request keys differ — the daemon's scheduler
// cannot coalesce them — but the decompile key (binary, pipeline, cycle
// model) is shared, so exactly one profile+decompile may run; the loser of
// the LeadDecompile race blocks on the leader's in-flight future inside
// its own parallel job and reports zero work.
TEST(ServeWork, ConcurrentDistinctColdExploresRunOneDecompile) {
  const suite::Benchmark* bench = suite::FindBenchmark("crc");
  ASSERT_NE(bench, nullptr);
  Result<mips::SoftBinary> built = suite::BuildBinary(*bench, 1);
  ASSERT_TRUE(built.ok()) << built.status().message();
  const auto binary =
      std::make_shared<const mips::SoftBinary>(std::move(built).take());

  const auto shared_cache = std::make_shared<explore::ArtifactCache>();
  const char* strategies[2] = {"paper-greedy", "annealing"};
  explore::ExploreResult results[2];
  std::atomic<bool> go{false};
  std::vector<std::thread> tenants;
  for (int t = 0; t < 2; ++t) {
    tenants.emplace_back([&, t] {
      Toolchain toolchain;
      toolchain.WithThreads(1).WithArtifactCache(shared_cache);
      explore::ExploreSpec spec;
      spec.binaries.push_back({"crc", binary});
      spec.platforms = {"mips200-xc2v1000"};
      spec.strategies = {strategies[t]};
      while (!go.load()) std::this_thread::yield();
      results[t] = toolchain.Explore(spec);
    });
  }
  go.store(true);
  for (std::thread& tenant : tenants) tenant.join();

  std::size_t simulations = 0;
  std::size_t decompilations = 0;
  std::size_t partitions = 0;
  for (const explore::ExploreResult& result : results) {
    for (const explore::ExplorePoint& point : result.points) {
      EXPECT_TRUE(point.status.ok()) << point.status.message();
    }
    simulations += result.simulations_run;
    decompilations += result.decompilations_run;
    partitions += result.partitions_run;
  }
  // One decompile total across both tenants, regardless of interleaving
  // (full overlap resolves via the in-flight future, no overlap via the
  // memory tier) — and each tenant still computed its own partition.
  EXPECT_EQ(simulations, 1u);
  EXPECT_EQ(decompilations, 1u);
  EXPECT_EQ(partitions, 2u);
}

TEST(ServeDaemon, DeadlineRequestGetsErrorAndLaterServesWarm) {
  TempDir scratch;
  Server::Options options{scratch.path + "/serve.sock"};
  options.workers = 1;
  ServerHarness harness(options);
  ASSERT_TRUE(harness.Start());

  Client client = MustConnect(options.socket_path);
  // A cold annealing run at this iteration count takes far longer than
  // 1 ms, so the deadline reliably expires while the job runs.
  const std::string slow =
      PartitionRequest("crc", "annealing", /*seed=*/5, /*iterations=*/100000);
  const std::string with_deadline =
      slow.substr(0, slow.size() - 1) + R"(,"deadline_ms":1})";
  ExpectErrorCode(Call(client, with_deadline), serve::kErrDeadline);

  // The computation kept running and completed into the cache: the retry
  // without a deadline succeeds, and the flow executed exactly once.
  const std::string retry = Call(client, slow);
  EXPECT_TRUE(MustParse(retry).GetBool("ok", false)) << retry;
  const WorkCounters counters = FetchStats(client);
  EXPECT_EQ(counters.simulations, 1.0);
  EXPECT_EQ(counters.decompilations, 1.0);
  EXPECT_EQ(counters.partitions, 1.0);
  EXPECT_EQ(counters.scheduler_deadline_expired, 1.0);
}

TEST(ServeDaemon, ZeroQueueCapacityRejectsWorkButServesCheapKinds) {
  TempDir scratch;
  Server::Options options{scratch.path + "/serve.sock"};
  options.workers = 1;
  options.max_queue = 0;  // nothing may queue: every novel job bounces
  ServerHarness harness(options);
  ASSERT_TRUE(harness.Start());

  Client client = MustConnect(options.socket_path);
  ExpectErrorCode(Call(client, PartitionRequest("crc", "paper-greedy")),
                  serve::kErrOverloaded);
  // Overload is a fast structured rejection, not a dropped connection:
  // cheap kinds never touch the scheduler and still work.
  const std::string pong = Call(client, R"({"schema":1,"kind":"ping"})");
  EXPECT_TRUE(MustParse(pong).GetBool("ok", false));
}

TEST(ServeDaemon, MultiTenantHammerComputesOnceAndLeavesDiskCacheSound) {
  TempDir scratch;
  TempDir cache;
  Server::Options options{scratch.path + "/serve.sock"};
  options.workers = 3;
  options.cache_dir = cache.path;
  ServerHarness harness(options);
  ASSERT_TRUE(harness.Start());

  // Four distinct request keys over two benchmarks and two strategies.
  const std::vector<std::string> keys = {
      PartitionRequest("crc", "paper-greedy"),
      PartitionRequest("crc", "annealing"),
      PartitionRequest("checksum", "paper-greedy"),
      PartitionRequest("checksum", "annealing"),
  };

  // Prime serially so the exact work totals below are deterministic (two
  // benchmarks to decompile, four partition artifacts to compute).
  std::map<std::string, std::string> baseline;
  Client primer = MustConnect(options.socket_path);
  for (const std::string& key : keys) {
    const std::string response = Call(primer, key);
    ASSERT_TRUE(MustParse(response).GetBool("ok", false)) << response;
    baseline[key] = ExtractReport(response);
  }
  const WorkCounters primed = FetchStats(primer);
  EXPECT_EQ(primed.simulations, 2.0);
  EXPECT_EQ(primed.decompilations, 2.0);
  EXPECT_EQ(primed.partitions, 4.0);

  // Hammer: six tenants, each its own connection, overlapping identical
  // and distinct warm requests.  Every report must match the serial
  // baseline byte for byte, and no work may be recomputed.
  constexpr int kThreads = 6;
  constexpr int kRequestsPerThread = 12;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> tenants;
  for (int t = 0; t < kThreads; ++t) {
    tenants.emplace_back([&, t] {
      Client client = MustConnect(options.socket_path);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string& key = keys[(t + i) % keys.size()];
        std::string response;
        if (!client.Call(key, &response, 60000).ok() ||
            !MustParse(response).GetBool("ok", false)) {
          ++failures;
          continue;
        }
        if (ExtractReport(response) != baseline[key]) ++mismatches;
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const WorkCounters hammered = FetchStats(primer);
  EXPECT_EQ(hammered.simulations, 2.0);
  EXPECT_EQ(hammered.decompilations, 2.0);
  EXPECT_EQ(hammered.partitions, 4.0);

  // Coalescing burst: every tenant fires the SAME novel slow key at once.
  // Whatever the interleaving — all attached to one in-flight job, or a
  // straggler re-submitting after completion and hitting the cache — the
  // underlying partition computes exactly once.
  const std::string burst =
      PartitionRequest("crc", "annealing", /*seed=*/777, /*iterations=*/150000);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> bursters;
  for (int t = 0; t < kThreads; ++t) {
    bursters.emplace_back([&] {
      Client client = MustConnect(options.socket_path);
      ++ready;
      while (!go.load()) std::this_thread::yield();
      std::string response;
      if (!client.Call(burst, &response, 60000).ok() ||
          !MustParse(response).GetBool("ok", false)) {
        ++failures;
      }
    });
  }
  SpinUntil([&] { return ready.load() == kThreads; });
  go.store(true);
  for (std::thread& burster : bursters) burster.join();
  EXPECT_EQ(failures.load(), 0);
  const WorkCounters after_burst = FetchStats(primer);
  EXPECT_EQ(after_burst.simulations, 2.0);      // crc decompile was warm
  EXPECT_EQ(after_burst.decompilations, 2.0);
  EXPECT_EQ(after_burst.partitions, 5.0);       // exactly one new artifact
  EXPECT_GE(after_burst.scheduler_coalesced, 1.0);

  harness.server.RequestShutdown();
  if (harness.waiter.joinable()) harness.waiter.join();

  // Disk-cache integrity: a fresh process-local toolchain pointed at the
  // hammered cache dir replays the whole grid with ZERO recomputation and
  // no undecodable entries — concurrent tenants never tore a disk write.
  Toolchain verifier;
  verifier.WithThreads(1).WithCacheDir(cache.path);
  explore::ExploreSpec spec;
  for (const char* name : {"crc", "checksum"}) {
    const suite::Benchmark* bench = suite::FindBenchmark(name);
    ASSERT_NE(bench, nullptr);
    Result<mips::SoftBinary> binary = suite::BuildBinary(*bench, 1);
    ASSERT_TRUE(binary.ok()) << binary.status().message();
    spec.binaries.push_back(
        {name, std::make_shared<const mips::SoftBinary>(
                   std::move(binary).take())});
  }
  spec.platforms = {"mips200-xc2v1000"};
  spec.strategies = {"paper-greedy", "annealing"};
  const explore::ExploreResult replay = verifier.Explore(spec);
  for (const explore::ExplorePoint& point : replay.points) {
    EXPECT_TRUE(point.status.ok()) << point.status.message();
  }
  EXPECT_EQ(replay.simulations_run, 0u);
  EXPECT_EQ(replay.decompilations_run, 0u);
  EXPECT_EQ(replay.partitions_run, 0u);
  EXPECT_EQ(verifier.CacheStats().disk_bad_entries, 0u);
}

}  // namespace
}  // namespace b2h
