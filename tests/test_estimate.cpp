// Unit tests for the performance/energy estimator math (CombineEstimates)
// — the analytic core behind every number in EXPERIMENTS.md.
#include "partition/estimate.hpp"

#include <gtest/gtest.h>

namespace b2h::partition {
namespace {

KernelEstimate MakeKernel(std::uint64_t sw_cycles, std::uint64_t hw_cycles) {
  KernelEstimate kernel;
  kernel.name = "k";
  kernel.sw_cycles = sw_cycles;
  kernel.hw_cycles = hw_cycles;
  kernel.invocations = 1;
  kernel.hw_clock_mhz = 100.0;
  kernel.area_gates = 20'000.0;
  return kernel;
}

TEST(Estimate, NoKernelsMeansNoChange) {
  const Platform platform;
  const AppEstimate app = CombineEstimates(platform, 1'000'000, {});
  EXPECT_DOUBLE_EQ(app.speedup, 1.0);
  EXPECT_DOUBLE_EQ(app.energy_savings, 0.0);
  EXPECT_DOUBLE_EQ(app.sw_time, app.partitioned_time);
  EXPECT_DOUBLE_EQ(app.sw_energy, app.partitioned_energy);
}

TEST(Estimate, AmdahlBoundsSpeedup) {
  const Platform platform;  // 200 MHz CPU
  // Kernel covers half the cycles and runs (essentially) free in hardware.
  std::vector<KernelEstimate> kernels{MakeKernel(500'000, 1)};
  const AppEstimate app =
      CombineEstimates(platform, 1'000'000, std::move(kernels));
  // Amdahl: at most 2x when half the work remains in software.
  EXPECT_GT(app.speedup, 1.8);
  EXPECT_LE(app.speedup, 2.0);
}

TEST(Estimate, TimesAreConsistent) {
  const Platform platform;
  std::vector<KernelEstimate> kernels{MakeKernel(400'000, 50'000)};
  const AppEstimate app =
      CombineEstimates(platform, 1'000'000, std::move(kernels));
  const double cpu_hz = platform.cpu.clock_mhz * 1e6;
  EXPECT_DOUBLE_EQ(app.sw_time, 1'000'000 / cpu_hz);
  ASSERT_EQ(app.kernels.size(), 1u);
  const KernelEstimate& kernel = app.kernels.front();
  EXPECT_DOUBLE_EQ(kernel.sw_time, 400'000 / cpu_hz);
  EXPECT_GT(kernel.hw_time, 50'000 / 100e6);  // includes comm setup
  EXPECT_NEAR(app.partitioned_time,
              (1'000'000 - 400'000) / cpu_hz + kernel.hw_time, 1e-12);
  EXPECT_DOUBLE_EQ(kernel.kernel_speedup, kernel.sw_time / kernel.hw_time);
}

TEST(Estimate, ResidentArraysPayOneTimeDma) {
  const Platform platform;
  KernelEstimate resident = MakeKernel(400'000, 50'000);
  resident.arrays_resident = true;
  resident.comm_words = 1000;
  resident.invocations = 100;
  KernelEstimate remote = resident;
  remote.arrays_resident = false;
  remote.mem_accesses = 100'000;

  const AppEstimate app_resident =
      CombineEstimates(platform, 1'000'000, {resident});
  const AppEstimate app_remote =
      CombineEstimates(platform, 1'000'000, {remote});
  // The one-time DMA (1000 cycles) beats 100k bus-penalized accesses.
  EXPECT_LT(app_resident.kernels[0].hw_time, app_remote.kernels[0].hw_time);
  EXPECT_GT(app_resident.speedup, app_remote.speedup);
}

TEST(Estimate, EnergyFollowsTimeAndPower) {
  const Platform platform;
  std::vector<KernelEstimate> kernels{MakeKernel(900'000, 10'000)};
  const AppEstimate app =
      CombineEstimates(platform, 1'000'000, std::move(kernels));
  EXPECT_GT(app.energy_savings, 0.0);
  EXPECT_LT(app.energy_savings, 1.0);
  // Energy identity: E_sw = P_active * T_sw.
  EXPECT_NEAR(app.sw_energy,
              platform.cpu.active_watts() * app.sw_time, 1e-12);
  // Partitioned energy must be positive and below the baseline here.
  EXPECT_GT(app.partitioned_energy, 0.0);
  EXPECT_LT(app.partitioned_energy, app.sw_energy);
}

TEST(Estimate, MovedCyclesNeverExceedTotal) {
  const Platform platform;
  // Kernel claims more cycles than the program has (possible when inlined
  // copies share addresses); the estimator must clamp.
  std::vector<KernelEstimate> kernels{MakeKernel(2'000'000, 1000)};
  const AppEstimate app =
      CombineEstimates(platform, 1'000'000, std::move(kernels));
  EXPECT_GE(app.partitioned_time, 0.0);
  EXPECT_GT(app.speedup, 0.0);
}

TEST(Estimate, KernelSpeedupAveragesAcrossKernels) {
  const Platform platform;
  std::vector<KernelEstimate> kernels{MakeKernel(100'000, 1'000),
                                      MakeKernel(100'000, 50'000)};
  const AppEstimate app =
      CombineEstimates(platform, 1'000'000, std::move(kernels));
  const double expected = (app.kernels[0].kernel_speedup +
                           app.kernels[1].kernel_speedup) / 2.0;
  EXPECT_NEAR(app.avg_kernel_speedup, expected, 1e-9);
}

TEST(Estimate, RegionCyclesBucketsByLeader) {
  mips::ExecProfile profile;
  profile.cycle_count = {10, 20, 30, 40, 50};  // pcs 0x400000..0x400010
  const std::vector<std::uint32_t> all_leaders{
      mips::kTextBase, mips::kTextBase + 8, mips::kTextBase + 16};
  // Region = middle block [0x400008, 0x400010).
  const std::uint64_t cycles = RegionSwCycles(
      profile, all_leaders, {mips::kTextBase + 8});
  EXPECT_EQ(cycles, 30u + 40u);
  // Region = first block.
  EXPECT_EQ(RegionSwCycles(profile, all_leaders, {mips::kTextBase}),
            10u + 20u);
  // Region = last block (single pc).
  EXPECT_EQ(RegionSwCycles(profile, all_leaders, {mips::kTextBase + 16}),
            50u);
}

}  // namespace
}  // namespace b2h::partition
