// Assembler tests: labels, pseudo-instructions, data directives, errors.
#include "mips/assembler.hpp"

#include <gtest/gtest.h>

#include "mips/isa.hpp"
#include "mips/simulator.hpp"

namespace b2h::mips {
namespace {

TEST(Assembler, MinimalProgram) {
  auto binary = Assemble(R"(
    main:
      li $v0, 42
      jr $ra
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  EXPECT_EQ(binary.value().entry, kTextBase);
  EXPECT_EQ(binary.value().text.size(), 2u);
  Simulator sim(binary.value());
  const auto run = sim.Run();
  EXPECT_EQ(run.reason, HaltReason::kReturned);
  EXPECT_EQ(run.return_value, 42);
}

TEST(Assembler, ForwardAndBackwardLabels) {
  auto binary = Assemble(R"(
    main:
      li $t0, 3
      li $v0, 0
    loop:
      addiu $v0, $v0, 5
      addiu $t0, $t0, -1
      bgtz $t0, loop
      j done
      addiu $v0, $v0, 100   # skipped
    done:
      jr $ra
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  Simulator sim(binary.value());
  EXPECT_EQ(sim.Run().return_value, 15);
}

TEST(Assembler, LiExpansions) {
  // Small immediates: 1 word; large: lui+ori.
  auto small = Assemble("main:\n li $v0, 100\n jr $ra\n");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value().text.size(), 2u);

  auto negative = Assemble("main:\n li $v0, -5\n jr $ra\n");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative.value().text.size(), 2u);
  Simulator sim_neg(negative.value());
  EXPECT_EQ(sim_neg.Run().return_value, -5);

  auto large = Assemble("main:\n li $v0, 0x12345678\n jr $ra\n");
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large.value().text.size(), 3u);
  Simulator sim_large(large.value());
  EXPECT_EQ(sim_large.Run().return_value, 0x12345678);

  // lui-only form (low halfword zero).
  auto hi_only = Assemble("main:\n li $v0, 0x40000\n jr $ra\n");
  ASSERT_TRUE(hi_only.ok());
  EXPECT_EQ(hi_only.value().text.size(), 2u);
  Simulator sim_hi(hi_only.value());
  EXPECT_EQ(sim_hi.Run().return_value, 0x40000);
}

TEST(Assembler, PseudoBranches) {
  auto binary = Assemble(R"(
    main:
      li $t0, 5
      li $t1, 9
      li $v0, 0
      blt $t0, $t1, less
      jr $ra
    less:
      li $v0, 1
      bge $t1, $t0, both
      jr $ra
    both:
      addiu $v0, $v0, 2
      jr $ra
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  Simulator sim(binary.value());
  EXPECT_EQ(sim.Run().return_value, 3);
}

TEST(Assembler, DataDirectives) {
  auto binary = Assemble(R"(
    main:
      la $t0, tab
      lw $v0, 4($t0)
      la $t1, bytes
      lbu $t2, 1($t1)
      addu $v0, $v0, $t2
      jr $ra
    .data
    tab:
      .word 10, 20, 30
    bytes:
      .byte 1, 2, 3
    pad:
      .space 8
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  EXPECT_EQ(binary.value().symbols.at("tab"), kDataBase);
  EXPECT_EQ(binary.value().symbols.at("bytes"), kDataBase + 12);
  EXPECT_EQ(binary.value().data.size(), 12u + 3u + 8u);
  Simulator sim(binary.value());
  EXPECT_EQ(sim.Run().return_value, 22);
}

TEST(Assembler, WordLabelReferences) {
  auto binary = Assemble(R"(
    main:
      la $t0, ptrs
      lw $v0, 0($t0)
      jr $ra
    .data
    target:
      .word 77
    ptrs:
      .word target
  )");
  ASSERT_TRUE(binary.ok()) << binary.status().message();
  Simulator sim(binary.value());
  EXPECT_EQ(static_cast<std::uint32_t>(sim.Run().return_value), kDataBase);
}

TEST(Assembler, Errors) {
  EXPECT_FALSE(Assemble("main:\n bogus $t0\n").ok());
  EXPECT_FALSE(Assemble("main:\n j nowhere\n").ok());
  EXPECT_FALSE(Assemble("main:\n li $t0\n").ok());
  EXPECT_FALSE(Assemble("main:\nmain:\n jr $ra\n").ok());  // duplicate label
  EXPECT_FALSE(Assemble(".data\n .word 1\n.text\n .word 2\n").ok());
  const auto status = Assemble("main:\n frob $t0, $t1\n").status();
  EXPECT_EQ(status.kind(), ErrorKind::kParse);
  EXPECT_NE(status.message().find("frob"), std::string::npos);
}

TEST(Assembler, MovePseudoUsesOr) {
  auto binary = Assemble("main:\n move $v0, $a0\n jr $ra\n");
  ASSERT_TRUE(binary.ok());
  const auto decoded = Decode(binary.value().text[0]);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, Op::kOr);
  EXPECT_EQ(decoded->rt, 0);
}

TEST(Assembler, CommentsAndWhitespace) {
  auto binary = Assemble(R"(
    # leading comment
    main:   li $v0, 7   # trailing comment
            jr $ra
  )");
  ASSERT_TRUE(binary.ok());
  Simulator sim(binary.value());
  EXPECT_EQ(sim.Run().return_value, 7);
}

}  // namespace
}  // namespace b2h::mips
