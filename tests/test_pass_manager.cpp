// PassManager tests: registration completeness, preset/name-list parity
// with the legacy DecompileOptions booleans, spec parsing, and per-pass
// stats round-trip against the aggregate DecompileStats.
#include "decomp/pass_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "ir/printer.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

namespace b2h::decomp {
namespace {

std::shared_ptr<const mips::SoftBinary> BuildBench(const std::string& name,
                                                   int opt_level = 1) {
  const suite::Benchmark* bench = suite::FindBenchmark(name);
  EXPECT_NE(bench, nullptr) << name;
  auto binary = suite::BuildBinary(*bench, opt_level);
  EXPECT_TRUE(binary.ok()) << binary.status().message();
  return std::make_shared<const mips::SoftBinary>(std::move(binary).take());
}

bool SameStats(const DecompileStats& a, const DecompileStats& b) {
  return a.constants_simplified == b.constants_simplified &&
         a.stack_slots_promoted == b.stack_slots_promoted &&
         a.stack_ops_removed == b.stack_ops_removed &&
         a.loops_rerolled == b.loops_rerolled &&
         a.reroll_ops_removed == b.reroll_ops_removed &&
         a.muls_recovered == b.muls_recovered &&
         a.strength_reduced == b.strength_reduced &&
         a.instrs_narrowed == b.instrs_narrowed &&
         a.bits_saved == b.bits_saved && a.calls_inlined == b.calls_inlined &&
         a.ifs_converted == b.ifs_converted &&
         a.lifted_instrs == b.lifted_instrs &&
         a.final_instrs == b.final_instrs;
}

std::string PrintedIr(const DecompiledProgram& program) {
  std::string out;
  for (const auto& function : program.module.functions) {
    out += ir::Print(*function);
  }
  return out;
}

TEST(PassRegistry, ContainsEveryPaperPass) {
  const std::vector<std::string> expected = {
      "reroll-loops",       "simplify-constants",    "remove-stack-ops",
      "inline-small-functions", "convert-ifs",       "promote-strength",
      "reduce-strength",    "reduce-operator-sizes",
  };
  for (const std::string& name : expected) {
    EXPECT_NE(PassRegistry::Global().Find(name), nullptr) << name;
  }
  // Every built-in is documented.
  for (const std::string& name : PassRegistry::Global().Names()) {
    const Pass* pass = PassRegistry::Global().Find(name);
    ASSERT_NE(pass, nullptr);
    EXPECT_FALSE(pass->description().empty()) << name;
  }
}

TEST(PassRegistry, RejectsDuplicatesAndUnknownLookups) {
  EXPECT_EQ(PassRegistry::Global().Find("no-such-pass"), nullptr);
  class Dummy : public Pass {
   public:
    Dummy() : Pass("reroll-loops", "duplicate") {}
    void Run(ir::Module&, PassRunStats&, DecompileStats&) const override {}
  };
  EXPECT_THROW(PassRegistry::Global().Register(std::make_unique<Dummy>()),
               InternalError);
}

TEST(PassManager, PresetNamesResolve) {
  for (const char* preset :
       {"default", "is-overhead-only", "no-undo", "none"}) {
    auto manager = PassManager::Preset(preset);
    EXPECT_TRUE(manager.ok()) << preset;
  }
  EXPECT_FALSE(PassManager::Preset("bogus").ok());
}

TEST(PassManager, SpecParsing) {
  auto removed = PassManager::FromSpec("default,-simplify-constants");
  ASSERT_TRUE(removed.ok());
  for (const Pass* pass : removed.value().pipeline()) {
    EXPECT_NE(pass->name(), "simplify-constants");
  }

  auto explicit_list =
      PassManager::FromSpec("simplify-constants, reduce-operator-sizes");
  ASSERT_TRUE(explicit_list.ok());
  ASSERT_EQ(explicit_list.value().pipeline().size(), 2u);
  EXPECT_EQ(explicit_list.value().pipeline()[0]->name(), "simplify-constants");
  EXPECT_EQ(explicit_list.value().pipeline()[1]->name(),
            "reduce-operator-sizes");

  EXPECT_FALSE(PassManager::FromSpec("default,no-such-pass").ok());
  EXPECT_FALSE(PassManager::FromSpec("no-such-preset").ok());
  // A typo'd disable must not silently run the full pipeline.
  EXPECT_FALSE(PassManager::FromSpec("default,-no-such-pass").ok());
}

TEST(PassManager, DefaultPresetMatchesLegacyDefaults) {
  const auto binary = BuildBench("fir");
  auto legacy = Decompile(binary, DecompileOptions{});
  ASSERT_TRUE(legacy.ok());

  auto preset = PassManager::Preset("default");
  ASSERT_TRUE(preset.ok());
  auto managed = preset.value().Run(binary);
  ASSERT_TRUE(managed.ok());

  EXPECT_TRUE(SameStats(legacy.value().stats, managed.value().stats));
  EXPECT_EQ(PrintedIr(legacy.value()), PrintedIr(managed.value()));
}

// Each legacy boolean off == the matching per-pass disable string.
TEST(PassManager, BooleanOptionsMatchDisableSpecs) {
  struct Case {
    bool DecompileOptions::* flag;
    const char* spec;
  };
  const std::vector<Case> cases = {
      {&DecompileOptions::reroll_loops, "default,-reroll-loops"},
      {&DecompileOptions::simplify_constants, "default,-simplify-constants"},
      {&DecompileOptions::remove_stack_ops, "default,-remove-stack-ops"},
      {&DecompileOptions::inline_small_functions,
       "default,-inline-small-functions"},
      {&DecompileOptions::convert_ifs, "default,-convert-ifs"},
      {&DecompileOptions::promote_strength, "default,-promote-strength"},
      {&DecompileOptions::reduce_strength, "default,-reduce-strength"},
      {&DecompileOptions::reduce_operator_sizes,
       "default,-reduce-operator-sizes"},
  };
  // -O3 exercises rerolling and inlining; crc32 has helper calls.
  for (const char* bench : {"fir", "crc"}) {
    const auto binary = BuildBench(bench, 3);
    for (const Case& c : cases) {
      DecompileOptions options;
      options.*(c.flag) = false;
      auto legacy = Decompile(binary, options);
      ASSERT_TRUE(legacy.ok()) << c.spec;

      auto manager = PassManager::FromSpec(c.spec);
      ASSERT_TRUE(manager.ok()) << c.spec;
      auto managed = manager.value().Run(binary);
      ASSERT_TRUE(managed.ok()) << c.spec;

      EXPECT_TRUE(SameStats(legacy.value().stats, managed.value().stats))
          << bench << " with " << c.spec;
      EXPECT_EQ(PrintedIr(legacy.value()), PrintedIr(managed.value()))
          << bench << " with " << c.spec;
    }
  }
}

TEST(PassManager, PerPassStatsRoundTrip) {
  const auto binary = BuildBench("fir", 3);
  auto preset = PassManager::Preset("default");
  ASSERT_TRUE(preset.ok());
  auto program = preset.value().Run(binary);
  ASSERT_TRUE(program.ok());
  const auto& runs = program.value().pass_runs;
  ASSERT_EQ(runs.size(), preset.value().pipeline().size());

  // Per-pass counters must re-aggregate to the legacy totals.
  const DecompileStats& stats = program.value().stats;
  std::size_t simplified = 0, rerolled = 0, stack_ops = 0, narrowed = 0,
              muls = 0, inlined = 0, ifs = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].pass, preset.value().pipeline()[i]->name());
    EXPECT_GE(runs[i].millis, 0.0);
    simplified += runs[i].Counter("simplified");
    rerolled += runs[i].Counter("loops_rerolled");
    stack_ops +=
        runs[i].Counter("loads_removed") + runs[i].Counter("stores_removed");
    narrowed += runs[i].Counter("narrowed");
    muls += runs[i].Counter("muls_recovered");
    inlined += runs[i].Counter("calls_inlined");
    ifs += runs[i].Counter("diamonds_converted");
  }
  EXPECT_EQ(simplified, stats.constants_simplified);
  EXPECT_EQ(rerolled, stats.loops_rerolled);
  EXPECT_EQ(stack_ops, stats.stack_ops_removed);
  EXPECT_EQ(narrowed, stats.instrs_narrowed);
  EXPECT_EQ(muls, stats.muls_recovered);
  EXPECT_EQ(inlined, stats.calls_inlined);
  EXPECT_EQ(ifs, stats.ifs_converted);
  // fir at -O3 actually exercises the interesting passes.
  EXPECT_GT(stats.constants_simplified, 0u);
  EXPECT_GT(stats.loops_rerolled, 0u);
}

TEST(PassManager, DecompiledProgramOwnsItsBinary) {
  // The old non-owning pointer dangled here: the Result (and with it the
  // caller's only handle on the binary) dies before the program is used.
  DecompiledProgram program = [] {
    auto binary = BuildBench("brev");
    auto decompiled = Decompile(*binary, {});  // reference overload: copies
    EXPECT_TRUE(decompiled.ok());
    return std::move(decompiled).take();
  }();
  ASSERT_NE(program.binary, nullptr);
  EXPECT_GT(program.binary->text.size(), 0u);
  EXPECT_FALSE(program.binary->symbols.empty());
}

TEST(PassManager, EmptyPipelineStillLiftsAndCleans) {
  const auto binary = BuildBench("brev");
  auto none = PassManager::Preset("none");
  ASSERT_TRUE(none.ok());
  auto program = none.value().Run(binary);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program.value().pass_runs.empty());
  EXPECT_GT(program.value().stats.lifted_instrs, 0u);
  EXPECT_GT(program.value().stats.final_instrs, 0u);
}

}  // namespace
}  // namespace b2h::decomp
