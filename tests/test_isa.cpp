// MIPS ISA encode/decode tests: field packing, round trips, targets.
#include "mips/isa.hpp"

#include <gtest/gtest.h>

namespace b2h::mips {
namespace {

TEST(Isa, EncodesKnownWords) {
  // addu $v0, $a0, $a1 = 0x00851021
  EXPECT_EQ(Encode({.op = Op::kAddu, .rs = kA0, .rt = kA1, .rd = kV0}),
            0x00851021u);
  // addiu $sp, $sp, -32 = 0x27BDFFE0
  EXPECT_EQ(Encode({.op = Op::kAddiu, .rs = kSp, .rt = kSp, .imm = -32}),
            0x27BDFFE0u);
  // lw $t0, 4($sp) = 0x8FA80004
  EXPECT_EQ(Encode({.op = Op::kLw, .rs = kSp, .rt = kT0, .imm = 4}),
            0x8FA80004u);
  // sll $t0, $t1, 2 = 0x00094080
  EXPECT_EQ(Encode({.op = Op::kSll, .rt = kT1, .rd = kT0, .shamt = 2}),
            0x00094080u);
  // jr $ra = 0x03E00008
  EXPECT_EQ(Encode({.op = Op::kJr, .rs = kRa}), 0x03E00008u);
}

TEST(Isa, DecodeRejectsGarbage) {
  EXPECT_FALSE(Decode(0xFFFFFFFFu).has_value());
  // opcode 0 with unused funct
  EXPECT_FALSE(Decode(0x0000003Fu).has_value());
}

TEST(Isa, BranchTargets) {
  Instr branch{.op = Op::kBeq, .rs = kT0, .rt = kT1, .imm = 3};
  EXPECT_EQ(BranchTarget(0x00400000, branch), 0x00400010u);
  branch.imm = -1;
  EXPECT_EQ(BranchTarget(0x00400010, branch), 0x00400010u);
  branch.imm = -5;
  EXPECT_EQ(BranchTarget(0x00400020, branch), 0x00400010u);
}

TEST(Isa, JumpTargets) {
  Instr jump{.op = Op::kJ, .target = 0x00400040 >> 2};
  EXPECT_EQ(JumpTarget(0x00400000, jump), 0x00400040u);
}

TEST(Isa, Classification) {
  EXPECT_TRUE(IsBranch(Op::kBeq));
  EXPECT_TRUE(IsBranch(Op::kBgez));
  EXPECT_FALSE(IsBranch(Op::kJ));
  EXPECT_TRUE(IsDirectJump(Op::kJal));
  EXPECT_TRUE(IsIndirectJump(Op::kJr));
  EXPECT_TRUE(IsIndirectJump(Op::kJalr));
  EXPECT_TRUE(IsLoad(Op::kLbu));
  EXPECT_TRUE(IsStore(Op::kSh));
  EXPECT_TRUE(IsControl(Op::kBne));
  EXPECT_FALSE(IsControl(Op::kAddu));
  EXPECT_TRUE(WritesGpr(Op::kAddu));
  EXPECT_FALSE(WritesGpr(Op::kSw));
  EXPECT_FALSE(WritesGpr(Op::kMult));
  EXPECT_TRUE(WritesGpr(Op::kMflo));
}

TEST(Isa, Disassemble) {
  EXPECT_EQ(Disassemble({.op = Op::kAddiu, .rs = kSp, .rt = kSp, .imm = -8},
                        0x400000),
            "addiu $sp, $sp, -8");
  EXPECT_EQ(Disassemble({.op = Op::kLw, .rs = kSp, .rt = kT0, .imm = 12},
                        0x400000),
            "lw $t0, 12($sp)");
}

TEST(Isa, RegNames) {
  EXPECT_STREQ(RegName(0), "$zero");
  EXPECT_STREQ(RegName(29), "$sp");
  EXPECT_STREQ(RegName(31), "$ra");
  EXPECT_STREQ(RegName(32), "$??");
}

/// Round-trip property: every opcode encodes and decodes back to itself
/// with representative field values.
class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, EncodeDecode) {
  const Op op = static_cast<Op>(GetParam());
  Instr instr;
  instr.op = op;
  // Pick fields legal for every format.
  instr.rs = 3;
  instr.rt = 4;
  instr.rd = 5;
  instr.shamt = 7;
  instr.imm = 100;
  instr.target = 0x12345;
  switch (op) {
    case Op::kJr: case Op::kMthi: case Op::kMtlo:
      instr.rt = instr.rd = 0;
      instr.shamt = 0;
      break;
    case Op::kMfhi: case Op::kMflo:
      instr.rs = instr.rt = 0;
      instr.shamt = 0;
      break;
    case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu:
      instr.rd = 0;
      instr.shamt = 0;
      break;
    case Op::kJalr:
      instr.rt = 0;
      instr.shamt = 0;
      break;
    case Op::kSll: case Op::kSrl: case Op::kSra:
      instr.rs = 0;
      break;
    case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
      instr.rt = 0;
      [[fallthrough]];
    case Op::kBeq: case Op::kBne:
      instr.rd = 0;
      instr.shamt = 0;
      break;
    case Op::kLui:
      instr.rs = 0;
      [[fallthrough]];
    default:
      instr.rd = 0;
      instr.shamt = 0;
      break;
  }
  if (op == Op::kJ || op == Op::kJal) {
    instr.rs = instr.rt = instr.rd = 0;
    instr.imm = 0;
  } else {
    instr.target = 0;
  }
  // Non-branch/jump R-types keep their fields.
  if (op == Op::kAdd || op == Op::kAddu || op == Op::kSub ||
      op == Op::kSubu || op == Op::kAnd || op == Op::kOr || op == Op::kXor ||
      op == Op::kNor || op == Op::kSlt || op == Op::kSltu ||
      op == Op::kSllv || op == Op::kSrlv || op == Op::kSrav) {
    instr.rd = 5;
    instr.shamt = 0;
    instr.imm = 0;
  }
  if (op == Op::kSll || op == Op::kSrl || op == Op::kSra) {
    instr.rd = 5;
    instr.shamt = 7;
    instr.imm = 0;
  }
  if (op == Op::kJr || op == Op::kJalr || op == Op::kMthi ||
      op == Op::kMtlo || op == Op::kMfhi || op == Op::kMflo ||
      op == Op::kMult || op == Op::kMultu || op == Op::kDiv ||
      op == Op::kDivu) {
    instr.imm = 0;
  }
  if (op == Op::kJalr) instr.rd = 5;

  const std::uint32_t word = Encode(instr);
  const auto decoded = Decode(word);
  ASSERT_TRUE(decoded.has_value()) << Mnemonic(op);
  EXPECT_EQ(decoded->op, op) << Mnemonic(op);
  EXPECT_EQ(Encode(*decoded), word) << Mnemonic(op);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, RoundTrip,
                         ::testing::Range(0, static_cast<int>(Op::kInvalid)),
                         [](const auto& info) {
                           return Mnemonic(static_cast<Op>(info.param));
                         });

}  // namespace
}  // namespace b2h::mips
