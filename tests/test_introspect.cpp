// Introspection-plane tests: the minimal HTTP server (request parsing,
// abuse handling, connection-per-request lifecycle), the live endpoints
// (/metrics, /healthz, /trace, /v1/progress), HTTP work routed through the
// same scheduler as framed clients (byte-identical reports, warm-cache
// zero-recompute, kind/path agreement), request correlation ids, progress
// streaming over the framed protocol, and the forensics flight recorder —
// both the explicit `dump` request and a child-process crash test that
// proves a SIGSEGV still leaves a parseable black-box bundle naming the
// in-flight request.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/flight.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/http.hpp"
#include "support/json_parse.hpp"
#include "support/schema.hpp"
#include "testing_support.hpp"

namespace b2h {
namespace {

using serve::Client;
using serve::Server;
using support::HttpRequest;
using support::HttpResponse;
using support::HttpStatus;
using support::JsonValue;
using testing_support::ScopedEnv;
using testing_support::TempDir;

// Hermetic for the whole binary: an exported cache dir would serve "cold"
// requests warm and flip the zero-recompute assertions below.
const ScopedEnv kPinnedCacheDirEnv("B2H_CACHE_DIR", nullptr);

// ---------------------------------------------------------------------------
// Shared helpers (mirroring test_serve.cpp)
// ---------------------------------------------------------------------------

struct ServerHarness {
  explicit ServerHarness(Server::Options options)
      : server(std::move(options)) {}
  ~ServerHarness() {
    server.RequestShutdown();
    if (waiter.joinable()) waiter.join();
  }

  [[nodiscard]] bool Start() {
    const Status status = server.Start();
    EXPECT_TRUE(status.ok()) << status.message();
    if (!status.ok()) return false;
    waiter = std::thread([this] { server.Wait(); });
    return true;
  }

  Server server;
  std::thread waiter;
};

Client MustConnect(const std::string& socket_path) {
  Result<Client> client = Client::Connect(socket_path);
  EXPECT_TRUE(client.ok()) << client.status().message();
  return client.ok() ? std::move(client).take() : Client();
}

std::string Call(Client& client, const std::string& request) {
  std::string response;
  const Status status = client.Call(request, &response, 60000);
  EXPECT_TRUE(status.ok()) << status.message();
  return response;
}

JsonValue MustParse(const std::string& text) {
  const auto parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return parsed.value_or(JsonValue::MakeNull());
}

/// The raw "report" object text — sliced, not re-serialized, so equality
/// really is bit-identity of what the daemon sent.
std::string ExtractReport(const std::string& response) {
  const std::size_t begin = response.find("\"report\":");
  const std::size_t end = response.rfind(",\"served\":");
  EXPECT_NE(begin, std::string::npos) << response;
  EXPECT_NE(end, std::string::npos) << response;
  if (begin == std::string::npos || end == std::string::npos) return "";
  const std::size_t start = begin + 9;
  return response.substr(start, end - start);
}

double WorkTotal(Client& client) {
  const JsonValue parsed =
      MustParse(Call(client, R"({"schema":1,"kind":"stats"})"));
  const JsonValue* served = parsed.Find("served");
  EXPECT_NE(served, nullptr);
  if (served == nullptr) return -1.0;
  const JsonValue* work = served->Find("work");
  EXPECT_NE(work, nullptr);
  if (work == nullptr) return -1.0;
  return work->GetNumber("simulations_run") +
         work->GetNumber("decompilations_run") +
         work->GetNumber("partitions_run");
}

std::string PartitionRequest(std::uint64_t seed = 1,
                             unsigned iterations = 1500) {
  return R"({"schema":1,"kind":"partition","benchmark":"crc",)"
         R"("strategy":"paper-greedy","seed":)" +
         std::to_string(seed) + R"(,"annealing_iterations":)" +
         std::to_string(iterations) + "}";
}

// ---------------------------------------------------------------------------
// HTTP request parsing (socketpair-fed, no live server)
// ---------------------------------------------------------------------------

struct SocketPair {
  int fd[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~SocketPair() {
    if (fd[0] >= 0) ::close(fd[0]);
    if (fd[1] >= 0) ::close(fd[1]);
  }
  void Write(std::string_view text) {
    ASSERT_EQ(::send(fd[0], text.data(), text.size(), 0),
              static_cast<ssize_t>(text.size()));
  }
  void CloseWriter() {
    ::close(fd[0]);
    fd[0] = -1;
  }
};

TEST(HttpParse, ParsesRequestLineHeadersAndBody) {
  SocketPair pair;
  pair.Write(
      "POST /v1/partition HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Type: application/json\r\nContent-Length: 4\r\n\r\nbody");
  HttpRequest request;
  ASSERT_EQ(support::ReadHttpRequest(pair.fd[1], &request, 1 << 20, 2000),
            HttpStatus::kOk);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/partition");
  EXPECT_EQ(request.Header("content-type"), "application/json");
  EXPECT_EQ(request.body, "body");
}

TEST(HttpParse, RejectsMalformedInput) {
  // Each case: raw bytes -> expected refusal.  The writer closes so a
  // parser waiting for more data sees EOF instead of hanging.
  const struct {
    const char* wire;
    HttpStatus expected;
  } cases[] = {
      {"NONSENSE\r\n\r\n", HttpStatus::kMalformed},
      {"GET /x\r\n\r\n", HttpStatus::kMalformed},  // missing HTTP version
      {"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n", HttpStatus::kMalformed},
      {"GET /x HTTP/1.1\r\nContent-Length: 12a\r\n\r\n",
       HttpStatus::kMalformed},
      {"", HttpStatus::kClosed},
  };
  for (const auto& test_case : cases) {
    SocketPair pair;
    if (*test_case.wire != '\0') pair.Write(test_case.wire);
    pair.CloseWriter();
    HttpRequest request;
    EXPECT_EQ(support::ReadHttpRequest(pair.fd[1], &request, 1 << 20, 2000),
              test_case.expected)
        << test_case.wire;
  }
}

TEST(HttpParse, OversizedBodyAndHeadersAreRefused) {
  {
    SocketPair pair;
    pair.Write("POST /x HTTP/1.1\r\nContent-Length: 10000\r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(support::ReadHttpRequest(pair.fd[1], &request,
                                       /*max_body_bytes=*/4096, 2000),
              HttpStatus::kOversized);
  }
  {
    SocketPair pair;
    std::string endless = "GET /x HTTP/1.1\r\n";
    while (endless.size() <= support::kMaxHttpHeaderBytes + 1024) {
      endless += "x-filler: yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy\r\n";
    }
    pair.Write(endless);  // never sends the blank line
    HttpRequest request;
    EXPECT_EQ(support::ReadHttpRequest(pair.fd[1], &request, 1 << 20, 2000),
              HttpStatus::kOversized);
  }
}

// ---------------------------------------------------------------------------
// Live HTTP plane
// ---------------------------------------------------------------------------

Server::Options HttpOptions(const TempDir& scratch) {
  Server::Options options{scratch.path + "/serve.sock"};
  options.http_port = 0;  // ephemeral, read back via http_port()
  return options;
}

TEST(HttpPlane, HealthzMetricsTraceAndRouting) {
  TempDir scratch;
  ServerHarness harness(HttpOptions(scratch));
  ASSERT_TRUE(harness.Start());
  const auto port = static_cast<std::uint16_t>(harness.server.http_port());
  ASSERT_GT(port, 0);

  // Real work first so /metrics and /trace have something to show.
  Client client = MustConnect(harness.server.options().socket_path);
  ASSERT_TRUE(MustParse(Call(client, PartitionRequest())).GetBool("ok", false));

  HttpResponse health;
  ASSERT_TRUE(support::HttpCall(port, "GET", "/healthz", "", &health));
  EXPECT_EQ(health.status_code, 200);
  const JsonValue health_json = MustParse(health.body);
  EXPECT_TRUE(health_json.GetBool("ok", false)) << health.body;
  EXPECT_FALSE(health_json.GetBool("stopping", true));
  ASSERT_NE(health_json.Find("queue_depth"), nullptr);
  ASSERT_NE(health_json.Find("in_flight"), nullptr);

  HttpResponse metrics;
  ASSERT_TRUE(support::HttpCall(port, "GET", "/metrics", "", &metrics));
  EXPECT_EQ(metrics.status_code, 200);
  EXPECT_NE(metrics.body.find("# TYPE serve_requests counter"),
            std::string::npos)
      << metrics.body.substr(0, 400);
  EXPECT_NE(metrics.body.find("# TYPE serve_latency_ms_partition histogram"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("serve_latency_ms_partition_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("serve_latency_ms_partition_sum"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("serve_http_requests"), std::string::npos);

  HttpResponse trace;
  ASSERT_TRUE(support::HttpCall(port, "GET", "/trace", "", &trace));
  EXPECT_EQ(trace.status_code, 200);
  const JsonValue trace_json = MustParse(trace.body);
  const JsonValue* events = trace_json.Find("traceEvents");
  ASSERT_NE(events, nullptr) << trace.body.substr(0, 200);
  ASSERT_TRUE(events->is_array());
  // The flight recorder is always on in a daemon: the partition above left
  // closed spans behind even though main tracing was never enabled.
  EXPECT_FALSE(events->array().empty());

  HttpResponse missing;
  ASSERT_TRUE(support::HttpCall(port, "GET", "/nope", "", &missing));
  EXPECT_EQ(missing.status_code, 404);
  HttpResponse bad_method;
  ASSERT_TRUE(support::HttpCall(port, "PUT", "/metrics", "", &bad_method));
  EXPECT_EQ(bad_method.status_code, 405);
  HttpResponse unknown_corr;
  ASSERT_TRUE(
      support::HttpCall(port, "GET", "/v1/progress/zzz", "", &unknown_corr));
  EXPECT_EQ(unknown_corr.status_code, 404);
}

TEST(HttpPlane, AbuseGetsStatusCodesAndConnectionPerRequestCloses) {
  TempDir scratch;
  ServerHarness harness(HttpOptions(scratch));
  ASSERT_TRUE(harness.Start());
  const auto port = static_cast<std::uint16_t>(harness.server.http_port());

  const auto raw_roundtrip = [&](std::string_view wire) {
    std::string error;
    const int fd = support::ConnectTcp(port, &error);
    EXPECT_GE(fd, 0) << error;
    if (fd < 0) return std::string();
    EXPECT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    ::shutdown(fd, SHUT_WR);
    std::string response;
    char buffer[4096];
    while (true) {
      const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
      if (n <= 0) break;  // EOF: the server closes after one response
      response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  };

  EXPECT_NE(raw_roundtrip("NONSENSE\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(raw_roundtrip("POST /v1/partition HTTP/1.1\r\n"
                          "Content-Length: 999999999\r\n\r\n")
                .find("HTTP/1.1 413"),
            std::string::npos);

  // The abuse above must not have wedged the plane: a clean request on a
  // fresh connection still works, and the server closes after answering
  // (the recv-to-EOF inside HttpCall is exactly that lifecycle).
  HttpResponse health;
  ASSERT_TRUE(support::HttpCall(port, "GET", "/healthz", "", &health));
  EXPECT_EQ(health.status_code, 200);
}

TEST(HttpPlane, PostSharesSchedulerCacheAndReportBytesWithFramedClients) {
  TempDir scratch;
  ServerHarness harness(HttpOptions(scratch));
  ASSERT_TRUE(harness.Start());
  const auto port = static_cast<std::uint16_t>(harness.server.http_port());
  Client client = MustConnect(harness.server.options().socket_path);

  const std::string request = PartitionRequest(/*seed=*/7);
  const std::string framed = Call(client, request);
  ASSERT_TRUE(MustParse(framed).GetBool("ok", false)) << framed;
  const std::string framed_report = ExtractReport(framed);
  const double cold_work = WorkTotal(client);
  ASSERT_GT(cold_work, 0.0);

  // Same body over HTTP: byte-identical report, zero extra toolchain work.
  HttpResponse with_kind;
  ASSERT_TRUE(support::HttpCall(port, "POST", "/v1/partition", request,
                                &with_kind, 60000));
  EXPECT_EQ(with_kind.status_code, 200);
  EXPECT_TRUE(MustParse(with_kind.body).GetBool("ok", false)) << with_kind.body;
  EXPECT_EQ(ExtractReport(with_kind.body), framed_report);

  // "kind" omitted: the path supplies it and the request key is unchanged.
  std::string without_kind = request;
  const std::size_t kind_pos = without_kind.find(R"("kind":"partition",)");
  ASSERT_NE(kind_pos, std::string::npos);
  without_kind.erase(kind_pos, std::strlen(R"("kind":"partition",)"));
  HttpResponse injected;
  ASSERT_TRUE(support::HttpCall(port, "POST", "/v1/partition", without_kind,
                                &injected, 60000));
  EXPECT_EQ(injected.status_code, 200);
  EXPECT_EQ(ExtractReport(injected.body), framed_report);

  EXPECT_EQ(WorkTotal(client), cold_work) << "HTTP replay recomputed work";

  // A body whose kind contradicts the path is refused before any work.
  HttpResponse mismatch;
  ASSERT_TRUE(
      support::HttpCall(port, "POST", "/v1/explore", request, &mismatch));
  EXPECT_EQ(mismatch.status_code, 400);
  const JsonValue mismatch_json = MustParse(mismatch.body);
  EXPECT_FALSE(mismatch_json.GetBool("ok", true));
  ASSERT_NE(mismatch_json.Find("error"), nullptr);
  EXPECT_EQ(mismatch_json.Find("error")->GetString("code"),
            serve::kErrBadRequest);
}

// ---------------------------------------------------------------------------
// Correlation ids and progress streaming
// ---------------------------------------------------------------------------

TEST(Correlation, EnvelopeEchoesClientCorrOrAssignsOne) {
  TempDir scratch;
  Server::Options options{scratch.path + "/serve.sock"};
  ServerHarness harness(options);
  ASSERT_TRUE(harness.Start());
  Client client = MustConnect(options.socket_path);

  const JsonValue echoed = MustParse(Call(
      client, R"({"schema":1,"kind":"ping","id":"t1","corr":"abc.Z_9-x"})"));
  EXPECT_EQ(echoed.GetString("corr"), "abc.Z_9-x");
  EXPECT_EQ(echoed.GetString("id"), "t1");

  const JsonValue assigned =
      MustParse(Call(client, R"({"schema":1,"kind":"ping"})"));
  const std::string corr = assigned.GetString("corr");
  EXPECT_EQ(corr.substr(0, 2), "c-") << corr;

  // Invalid ids are rejected up front — and the error envelope cannot echo
  // an id that failed validation.
  const JsonValue rejected = MustParse(
      Call(client, R"({"schema":1,"kind":"ping","corr":"has spaces!"})"));
  EXPECT_FALSE(rejected.GetBool("ok", true));
  ASSERT_NE(rejected.Find("error"), nullptr);
  EXPECT_EQ(rejected.Find("error")->GetString("code"), serve::kErrBadRequest);
  EXPECT_EQ(rejected.Find("corr"), nullptr);
}

TEST(Correlation, ExploreStreamsProgressFramesAndHttpPollsThem) {
  TempDir scratch;
  ServerHarness harness(HttpOptions(scratch));
  ASSERT_TRUE(harness.Start());
  const auto port = static_cast<std::uint16_t>(harness.server.http_port());
  Client client = MustConnect(harness.server.options().socket_path);

  // Long enough for several 25 ms scheduler polls to land mid-flight.
  const std::string request =
      R"({"schema":1,"kind":"explore","id":"e1","corr":"exp-1",)"
      R"("progress":true,"benchmarks":["crc","fir"],)"
      R"("strategies":["annealing"],"annealing_iterations":150000})";
  std::vector<std::string> frames;
  std::string response;
  const Status status = client.CallStreaming(
      request, &response,
      [&](std::string_view frame) { frames.emplace_back(frame); }, 120000);
  ASSERT_TRUE(status.ok()) << status.message();
  const JsonValue final_reply = MustParse(response);
  EXPECT_TRUE(final_reply.GetBool("ok", false)) << response;
  EXPECT_EQ(final_reply.GetString("corr"), "exp-1");

  ASSERT_FALSE(frames.empty()) << "no progress frames before the reply";
  for (const std::string& frame : frames) {
    const JsonValue parsed = MustParse(frame);
    EXPECT_EQ(parsed.GetString("corr"), "exp-1") << frame;
    EXPECT_EQ(parsed.Find("ok"), nullptr) << frame;
    const JsonValue* progress = parsed.Find("progress");
    ASSERT_NE(progress, nullptr) << frame;
    EXPECT_FALSE(progress->GetString("stage").empty()) << frame;
    ASSERT_NE(progress->Find("points_total"), nullptr) << frame;
  }

  // The polled view agrees: after completion the board shows done=true
  // under the same correlation id.
  HttpResponse polled;
  ASSERT_TRUE(
      support::HttpCall(port, "GET", "/v1/progress/exp-1", "", &polled));
  EXPECT_EQ(polled.status_code, 200);
  const JsonValue polled_json = MustParse(polled.body);
  EXPECT_EQ(polled_json.GetString("corr"), "exp-1");
  const JsonValue* progress = polled_json.Find("progress");
  ASSERT_NE(progress, nullptr) << polled.body;
  EXPECT_TRUE(progress->GetBool("done", false)) << polled.body;
}

// ---------------------------------------------------------------------------
// Forensics: explicit dump request and crash-path black box
// ---------------------------------------------------------------------------

/// Slices the `"trace":{...}` sub-document out of a forensics bundle (it is
/// the final field by the writer's contract) so validate_trace.py can check
/// it as a standalone Chrome trace file.
std::string SliceTrace(const std::string& bundle) {
  const std::size_t pos = bundle.find("\"trace\":");
  EXPECT_NE(pos, std::string::npos);
  if (pos == std::string::npos) return "";
  std::string trace = bundle.substr(pos + 8);
  while (!trace.empty() &&
         (trace.back() == '\n' || trace.back() == ' ')) {
    trace.pop_back();
  }
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace.back(), '}');  // the bundle's own closing brace
  trace.pop_back();
  return trace;
}

bool HavePython3() {
  return std::system("python3 --version >/dev/null 2>&1") == 0;
}

/// Runs ci/validate_trace.py over `trace_json` (written to `dir`); returns
/// true when the validator accepts it.  `require` scopes the category
/// check to what a flight ring is guaranteed to hold.
void ExpectTraceValidates(const std::string& dir,
                          const std::string& trace_json,
                          const std::string& require) {
  if (!HavePython3()) {
    GTEST_LOG_(INFO) << "python3 not found; skipping validate_trace.py";
    return;
  }
  const std::string trace_path = dir + "/flight-trace.json";
  std::ofstream(trace_path, std::ios::binary) << trace_json;
  const std::string command = "python3 '" B2H_SOURCE_DIR
                              "/ci/validate_trace.py' '" +
                              trace_path + "' --require-categories '" +
                              require + "' >/dev/null";
  EXPECT_EQ(std::system(command.c_str()), 0) << command;
}

TEST(Forensics, DumpRequestWritesParseableBundle) {
  TempDir scratch;
  Server::Options options{scratch.path + "/serve.sock"};
  options.dump_dir = scratch.path;
  ServerHarness harness(options);
  ASSERT_TRUE(harness.Start());
  Client client = MustConnect(options.socket_path);

  // A completed request first, so `recent` and the flight ring are
  // populated and correlated.
  const std::string worked = Call(
      client, R"({"schema":1,"kind":"partition","benchmark":"crc",)"
              R"("strategy":"paper-greedy","corr":"done-1"})");
  ASSERT_TRUE(MustParse(worked).GetBool("ok", false)) << worked;

  const JsonValue reply =
      MustParse(Call(client, R"({"schema":1,"kind":"dump","id":"d1"})"));
  ASSERT_TRUE(reply.GetBool("ok", false));
  const JsonValue* served = reply.Find("served");
  ASSERT_NE(served, nullptr);
  const std::string path = served->GetString("path");
  ASSERT_FALSE(path.empty());
  ASSERT_TRUE(std::filesystem::exists(path)) << path;

  std::ifstream in(path, std::ios::binary);
  std::string bundle((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  const JsonValue parsed = MustParse(bundle);
  EXPECT_DOUBLE_EQ(parsed.GetNumber("schema"), 1.0);
  EXPECT_EQ(parsed.GetString("reason"), "request");
  EXPECT_DOUBLE_EQ(parsed.GetNumber("wire_schema"), kWireSchemaVersion);
  EXPECT_DOUBLE_EQ(parsed.GetNumber("metrics_schema"),
                   obs::kMetricsSchemaVersion);
  ASSERT_NE(parsed.Find("metrics"), nullptr);
  ASSERT_NE(parsed.Find("in_flight"), nullptr);
  const JsonValue* recent = parsed.Find("recent");
  ASSERT_NE(recent, nullptr);
  ASSERT_TRUE(recent->is_array());
  bool saw_corr = false;
  for (const JsonValue& record : recent->array()) {
    if (record.GetString("corr") == "done-1") {
      saw_corr = true;
      EXPECT_EQ(record.GetString("kind"), "partition");
      EXPECT_EQ(record.GetString("status"), "ok");
      EXPECT_GT(record.GetNumber("latency_ms"), 0.0);
    }
  }
  EXPECT_TRUE(saw_corr) << bundle.substr(0, 600);

  const JsonValue* trace = parsed.Find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_NE(trace->Find("traceEvents"), nullptr);
  EXPECT_FALSE(trace->Find("traceEvents")->array().empty());
  ExpectTraceValidates(scratch.path, SliceTrace(bundle), "serve,partition");
}

TEST(Forensics, DumpWithoutDumpDirIsRefused) {
  TempDir scratch;
  ServerHarness harness(Server::Options{scratch.path + "/serve.sock"});
  ASSERT_TRUE(harness.Start());
  Client client = MustConnect(scratch.path + "/serve.sock");
  const JsonValue reply =
      MustParse(Call(client, R"({"schema":1,"kind":"dump"})"));
  EXPECT_FALSE(reply.GetBool("ok", true));
  ASSERT_NE(reply.Find("error"), nullptr);
  EXPECT_EQ(reply.Find("error")->GetString("code"), serve::kErrBadRequest);
}

TEST(Forensics, CrashLeavesBundleNamingInFlightRequest) {
  TempDir scratch;
  const std::string socket_path = scratch.path + "/crash.sock";
  const std::string dump_dir = scratch.path + "/dumps";
  ASSERT_TRUE(std::filesystem::create_directory(dump_dir));

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: a real daemon that faults mid-request.  No gtest assertions
    // here — failure paths _exit with distinct codes so the parent's
    // WIFSIGNALED check reports them.
    Server::Options options{socket_path};
    options.dump_dir = dump_dir;
    Server server(options);
    if (!server.Start().ok()) ::_exit(90);
    std::thread waiter([&server] { server.Wait(); });
    waiter.detach();

    Result<Client> connected = Client::Connect(socket_path);
    if (!connected.ok()) ::_exit(91);
    Client client = std::move(connected).take();
    // One completed request seeds the flight ring with closed spans...
    std::string response;
    if (!client
             .Call(R"({"schema":1,"kind":"partition","benchmark":"crc",)"
                   R"("strategy":"paper-greedy","corr":"warm-1"})",
                   &response, 60000)
             .ok()) {
      ::_exit(92);
    }
    // ...then a long explore is left in flight under a known corr.
    if (!client
             .Send(R"({"schema":1,"kind":"explore","corr":"crash-corr",)"
                   R"("benchmarks":["crc","fir"],"strategies":["annealing"],)"
                   R"("annealing_iterations":5000000})")
             .ok()) {
      ::_exit(93);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    ::raise(SIGSEGV);  // the installed handler dumps, then re-raises
    ::_exit(94);       // unreachable
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited with " << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
      << " instead of crashing";
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::string dump_path;
  for (const auto& entry : std::filesystem::directory_iterator(dump_dir)) {
    if (entry.path().filename().string().rfind("b2h-forensics-", 0) == 0) {
      dump_path = entry.path().string();
    }
  }
  ASSERT_FALSE(dump_path.empty()) << "no forensics dump in " << dump_dir;

  std::ifstream in(dump_path, std::ios::binary);
  std::string bundle((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  const JsonValue parsed = MustParse(bundle);
  EXPECT_EQ(parsed.GetString("reason"), "SIGSEGV");
  EXPECT_DOUBLE_EQ(parsed.GetNumber("schema"), 1.0);

  // The black box names the request that was running when the fault hit.
  const JsonValue* in_flight = parsed.Find("in_flight");
  ASSERT_NE(in_flight, nullptr);
  ASSERT_TRUE(in_flight->is_array());
  bool saw_crash_corr = false;
  for (const JsonValue& record : in_flight->array()) {
    if (record.GetString("corr") == "crash-corr") {
      saw_crash_corr = true;
      EXPECT_EQ(record.GetString("kind"), "explore");
      EXPECT_EQ(record.GetString("status"), "in-flight");
    }
  }
  EXPECT_TRUE(saw_crash_corr) << bundle.substr(0, 600);

  const JsonValue* trace = parsed.Find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_NE(trace->Find("traceEvents"), nullptr);
  EXPECT_FALSE(trace->Find("traceEvents")->array().empty());
  ExpectTraceValidates(scratch.path, SliceTrace(bundle), "serve");
}

}  // namespace
}  // namespace b2h
