// IR core tests: construction, CFG maintenance, dominators, loops,
// verifier diagnostics, printer, and the interpreter's edge semantics.
#include "ir/ir.hpp"

#include <gtest/gtest.h>

#include "ir/dominators.hpp"
#include "ir/interp.hpp"
#include "ir/loops.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace b2h::ir {
namespace {

/// Build a diamond:  entry -> (left | right) -> merge(phi) -> ret.
struct Diamond {
  Function function{"diamond"};
  Block* entry;
  Block* left;
  Block* right;
  Block* merge;
  Instr* input;
  Instr* phi;

  Diamond() {
    entry = function.CreateBlock("entry", 0x100);
    left = function.CreateBlock("left", 0x110);
    right = function.CreateBlock("right", 0x120);
    merge = function.CreateBlock("merge", 0x130);

    input = function.Create(Opcode::kInput);
    input->input_index = 4;
    entry->Append(input);
    Instr* cmp = function.Emit(entry, Opcode::kGtS,
                               {Value::Of(input), Value::Const(0)});
    Instr* br = function.Create(Opcode::kCondBr);
    br->operands = {Value::Of(cmp)};
    br->target0 = left;
    br->target1 = right;
    entry->Append(br);

    Instr* doubled = function.Emit(left, Opcode::kAdd,
                                   {Value::Of(input), Value::Of(input)});
    Instr* br_left = function.Create(Opcode::kBr);
    br_left->target0 = merge;
    left->Append(br_left);

    Instr* negated = function.Emit(right, Opcode::kSub,
                                   {Value::Const(0), Value::Of(input)});
    Instr* br_right = function.Create(Opcode::kBr);
    br_right->target0 = merge;
    right->Append(br_right);

    function.RecomputeCfg();
    phi = function.Create(Opcode::kPhi);
    // Operand order must match merge->preds.
    std::vector<Value> phi_operands;
    for (Block* pred : merge->preds) {
      phi_operands.push_back(pred == left ? Value::Of(doubled)
                                          : Value::Of(negated));
    }
    phi->operands = phi_operands;
    merge->PrependPhi(phi);
    Instr* ret = function.Create(Opcode::kRet);
    ret->operands = {Value::Of(phi)};
    merge->Append(ret);
    function.RecomputeCfg();
  }
};

TEST(IrCore, DiamondIsWellFormed) {
  Diamond d;
  const Status status = Verify(d.function);
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(d.merge->preds.size(), 2u);
  EXPECT_EQ(d.entry->succs().size(), 2u);
  EXPECT_EQ(d.function.NumInstrs(), 9u);
}

TEST(IrCore, PrinterShowsStructure) {
  Diamond d;
  const std::string text = Print(d.function);
  EXPECT_NE(text.find("func diamond"), std::string::npos);
  EXPECT_NE(text.find("phi"), std::string::npos);
  EXPECT_NE(text.find("condbr"), std::string::npos);
  EXPECT_NE(text.find("input r4"), std::string::npos);
}

TEST(IrCore, RemoveDeadInstrs) {
  Diamond d;
  // Add an unused computation chain.
  Instr* dead1 = d.function.Emit(d.entry, Opcode::kAdd,
                                 {Value::Of(d.input), Value::Const(7)});
  d.function.Emit(d.entry, Opcode::kMul,
                  {Value::Of(dead1), Value::Const(3)});
  d.function.RecomputeCfg();
  const std::size_t removed = d.function.RemoveDeadInstrs();
  EXPECT_EQ(removed, 2u);
  EXPECT_TRUE(Verify(d.function).ok());
}

TEST(IrCore, ReplaceAllUsesFollowsChains) {
  Diamond d;
  // input -> const 9, and anything using the phi -> const 1 (chained maps).
  std::unordered_map<const Instr*, Value> map;
  map[d.input] = Value::Const(9);
  d.function.ReplaceAllUses(map);
  bool any_input_use = false;
  for (const auto& block : d.function.blocks()) {
    for (const Instr* instr : block->instrs) {
      for (const Value& operand : instr->operands) {
        if (operand.is_instr() && operand.def == d.input) {
          any_input_use = true;
        }
      }
    }
  }
  EXPECT_FALSE(any_input_use);
}

TEST(IrCore, RemoveUnreachableBlocksFixesPhis) {
  Diamond d;
  // Make the branch unconditional to the left: right becomes unreachable.
  Instr* term = d.entry->terminator();
  term->op = Opcode::kBr;
  term->operands.clear();
  term->target0 = d.left;
  term->target1 = nullptr;
  term->width = 0;
  d.function.RemoveUnreachableBlocks();
  EXPECT_TRUE(Verify(d.function).ok());
  EXPECT_EQ(d.function.blocks().size(), 3u);
  EXPECT_EQ(d.phi->operands.size(), 1u);
}

TEST(Dominators, DiamondRelations) {
  Diamond d;
  const DominatorTree dom(d.function);
  EXPECT_TRUE(dom.Dominates(d.entry, d.merge));
  EXPECT_TRUE(dom.Dominates(d.entry, d.left));
  EXPECT_FALSE(dom.Dominates(d.left, d.merge));
  EXPECT_FALSE(dom.Dominates(d.merge, d.left));
  EXPECT_TRUE(dom.Dominates(d.merge, d.merge));
  EXPECT_TRUE(dom.StrictlyDominates(d.entry, d.merge));
  EXPECT_FALSE(dom.StrictlyDominates(d.merge, d.merge));
  EXPECT_EQ(dom.Idom(d.merge), d.entry);
  EXPECT_EQ(dom.Idom(d.left), d.entry);
  EXPECT_EQ(dom.Idom(d.entry), nullptr);
}

TEST(Dominators, FrontierOfDiamondArms) {
  Diamond d;
  const DominatorTree dom(d.function);
  const auto& left_frontier = dom.Frontier(d.left);
  ASSERT_EQ(left_frontier.size(), 1u);
  EXPECT_EQ(left_frontier[0], d.merge);
  EXPECT_TRUE(dom.Frontier(d.entry).empty());
}

/// Self-loop function: entry -> loop (self edge) -> exit.
struct LoopFunction {
  Function function{"looper"};
  Block* entry;
  Block* loop;
  Block* exit;
  Instr* phi = nullptr;

  LoopFunction() {
    entry = function.CreateBlock("entry", 0x200);
    loop = function.CreateBlock("loop", 0x210);
    exit = function.CreateBlock("exit", 0x220);

    Instr* enter = function.Create(Opcode::kBr);
    enter->target0 = loop;
    entry->Append(enter);

    phi = function.Create(Opcode::kPhi);
    loop->PrependPhi(phi);
    Instr* next = function.Emit(loop, Opcode::kAdd,
                                {Value::Of(phi), Value::Const(1)});
    Instr* cmp = function.Emit(loop, Opcode::kLtS,
                               {Value::Of(next), Value::Const(10)});
    Instr* br = function.Create(Opcode::kCondBr);
    br->operands = {Value::Of(cmp)};
    br->target0 = loop;
    br->target1 = exit;
    loop->Append(br);

    Instr* ret = function.Create(Opcode::kRet);
    ret->operands = {Value::Of(next)};
    exit->Append(ret);

    function.RecomputeCfg();
    // Phi operands in preds order: [entry -> 0, loop -> next].
    std::vector<Value> operands;
    for (Block* pred : loop->preds) {
      operands.push_back(pred == entry ? Value::Const(0) : Value::Of(next));
    }
    phi->operands = operands;
    function.RecomputeCfg();
  }
};

TEST(Loops, DiscoversSelfLoop) {
  LoopFunction lf;
  ASSERT_TRUE(Verify(lf.function).ok());
  const DominatorTree dom(lf.function);
  LoopForest forest(lf.function, dom);
  ASSERT_EQ(forest.loops().size(), 1u);
  const Loop* loop = forest.loops().front().get();
  EXPECT_EQ(loop->header, lf.loop);
  EXPECT_EQ(loop->blocks.size(), 1u);
  EXPECT_TRUE(loop->IsInnermost());
  EXPECT_EQ(loop->depth, 1);
  ASSERT_EQ(loop->exit_blocks.size(), 1u);
  EXPECT_EQ(loop->exit_blocks[0], lf.exit);
  EXPECT_EQ(forest.LoopFor(lf.loop), loop);
  EXPECT_EQ(forest.LoopFor(lf.entry), nullptr);
}

TEST(Loops, ProfileTripCount) {
  LoopFunction lf;
  lf.loop->exec_count = 10;
  lf.loop->taken_count = 9;       // back edges
  lf.loop->not_taken_count = 1;   // exit
  const DominatorTree dom(lf.function);
  LoopForest forest(lf.function, dom);
  forest.AnnotateProfile();
  const Loop* loop = forest.loops().front().get();
  EXPECT_EQ(loop->header_count, 10u);
  EXPECT_EQ(loop->entry_count, 1u);
  EXPECT_DOUBLE_EQ(loop->AverageTripCount(), 10.0);
}

TEST(Verifier, CatchesMissingTerminator) {
  Function function("broken");
  function.CreateBlock("entry", 0);
  const Status status = Verify(function);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesPhiArityMismatch) {
  LoopFunction lf;
  lf.phi->operands.pop_back();
  EXPECT_FALSE(Verify(lf.function).ok());
}

TEST(Verifier, CatchesUseBeforeDef) {
  Function function("order");
  Block* entry = function.CreateBlock("entry", 0);
  Instr* use = function.Create(Opcode::kAdd);
  Instr* def = function.Create(Opcode::kConst);
  def->imm = 1;
  use->operands = {Value::Of(def), Value::Const(1)};
  entry->Append(use);
  entry->Append(def);
  Instr* ret = function.Create(Opcode::kRet);
  entry->Append(ret);
  function.RecomputeCfg();
  const Status status = Verify(function);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("use before def"), std::string::npos);
}

TEST(Verifier, CatchesStalePreds) {
  Diamond d;
  d.merge->preds.pop_back();
  EXPECT_FALSE(Verify(d.function).ok());
}

TEST(Interp, ExecutesDiamond) {
  Diamond d;
  // The module's `main` may reference an externally-owned function when the
  // program makes no calls (FindByEntry is never consulted).
  Module module;
  module.main = &d.function;
  std::vector<std::uint8_t> no_data;
  Interpreter positive(module, no_data);
  EXPECT_EQ(positive.Run(std::vector<std::int32_t>{21}).return_value, 42);
  Interpreter negative(module, no_data);
  EXPECT_EQ(negative.Run(std::vector<std::int32_t>{-7}).return_value, 7);
}

TEST(Interp, LoopRunsToBound) {
  LoopFunction lf;
  Module module;
  module.main = &lf.function;
  std::vector<std::uint8_t> no_data;
  Interpreter interp(module, no_data);
  const auto result = interp.Run();
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.return_value, 10);
}

TEST(Interp, StepBudgetStopsRunaways) {
  LoopFunction lf;
  // Make the loop infinite: compare against an unreachable bound.
  for (Instr* instr : lf.loop->instrs) {
    if (instr->op == Opcode::kLtS) instr->operands[1] = Value::Const(1 << 30);
  }
  Module module;
  module.main = &lf.function;
  InterpOptions options;
  options.max_steps = 1000;
  std::vector<std::uint8_t> no_data;
  Interpreter interp(module, no_data, options);
  const auto result = interp.Run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("budget"), std::string::npos);
}

}  // namespace
}  // namespace b2h::ir
