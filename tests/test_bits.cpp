// Unit tests for the bit-manipulation helpers.
#include "support/bits.hpp"

#include <gtest/gtest.h>

namespace b2h {
namespace {

TEST(Bits, ExtractsFields) {
  EXPECT_EQ(Bits(0xDEADBEEFu, 0, 4), 0xFu);
  EXPECT_EQ(Bits(0xDEADBEEFu, 4, 4), 0xEu);
  EXPECT_EQ(Bits(0xDEADBEEFu, 28, 4), 0xDu);
  EXPECT_EQ(Bits(0xDEADBEEFu, 0, 32), 0xDEADBEEFu);
  EXPECT_EQ(Bits(0xFFFFFFFFu, 16, 16), 0xFFFFu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(SignExtend(0xFF, 8), -1);
  EXPECT_EQ(SignExtend(0x7F, 8), 127);
  EXPECT_EQ(SignExtend(0x80, 8), -128);
  EXPECT_EQ(SignExtend(0xFFFF, 16), -1);
  EXPECT_EQ(SignExtend(0x8000, 16), -32768);
  EXPECT_EQ(SignExtend(0x1, 1), -1);
  EXPECT_EQ(SignExtend(0x0, 1), 0);
  EXPECT_EQ(SignExtend(0xFFFFFFFFu, 32), -1);
}

TEST(Bits, UnsignedWidth) {
  EXPECT_EQ(UnsignedWidth(0), 1u);
  EXPECT_EQ(UnsignedWidth(1), 1u);
  EXPECT_EQ(UnsignedWidth(2), 2u);
  EXPECT_EQ(UnsignedWidth(255), 8u);
  EXPECT_EQ(UnsignedWidth(256), 9u);
  EXPECT_EQ(UnsignedWidth(0xFFFFFFFFu), 32u);
}

TEST(Bits, SignedWidth) {
  EXPECT_EQ(SignedWidth(0), 1u);   // bit pattern '0'
  EXPECT_EQ(SignedWidth(-1), 1u);  // bit pattern '1'
  EXPECT_EQ(SignedWidth(1), 2u);
  EXPECT_EQ(SignedWidth(127), 8u);
  EXPECT_EQ(SignedWidth(-128), 8u);
  EXPECT_EQ(SignedWidth(128), 9u);
  EXPECT_EQ(SignedWidth(-129), 9u);
  EXPECT_EQ(SignedWidth(INT32_MIN), 32u);
  EXPECT_EQ(SignedWidth(INT32_MAX), 32u);
}

TEST(Bits, PowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(0x80000000u));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(6));
}

TEST(Bits, Log2) {
  EXPECT_EQ(Log2(1), 0u);
  EXPECT_EQ(Log2(2), 1u);
  EXPECT_EQ(Log2(1024), 10u);
  EXPECT_EQ(Log2(0x80000000u), 31u);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(8), 0xFFu);
  EXPECT_EQ(LowMask(32), 0xFFFFFFFFu);
}

class PowerOfTwoSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PowerOfTwoSweep, RoundTripsThroughLog2) {
  const std::uint32_t value = 1u << GetParam();
  EXPECT_TRUE(IsPowerOfTwo(value));
  EXPECT_EQ(Log2(value), GetParam());
  EXPECT_EQ(UnsignedWidth(value), GetParam() + 1);
}

INSTANTIATE_TEST_SUITE_P(AllBitPositions, PowerOfTwoSweep,
                         ::testing::Range(0u, 32u));

}  // namespace
}  // namespace b2h
