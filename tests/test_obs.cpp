// Observability-layer tests: exact counter sums under concurrent striped
// writers, gauge semantics, histogram bucket-edge placement, the registry's
// schema-stamped JSON snapshot, the tracer's bounded ring and Chrome
// trace-event export (well-formed JSON, sorted relative timestamps,
// parent/child nesting), the disabled-mode zero-allocation contract, and an
// end-to-end traced Toolchain::Explore that must emit spans from every flow
// layer.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "explore/explorer.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"
#include "support/json_parse.hpp"
#include "testing_support.hpp"
#include "toolchain/toolchain.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: replace the (unaligned) global operator new for this
// test binary so the disabled-span zero-allocation contract is checked for
// real, not inferred.  Counting is passive — behavior is plain malloc/free —
// so every other test in the binary runs unaffected.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

// The whole unaligned family must be replaced together: the library frees
// nothrow-new'd memory (std::get_temporary_buffer) through the PLAIN
// operator delete, so a partial replacement pairs the default allocator
// with our free() — an alloc-dealloc mismatch under ASan.
void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace b2h {
namespace {

using support::JsonValue;
using testing_support::ScopedEnv;
using testing_support::TempDir;

// Hermetic: an exported cache dir would make the traced cold sweep below
// disk-warm and drop the decomp spans it asserts on.
const ScopedEnv kPinnedCacheDirEnv("B2H_CACHE_DIR", nullptr);

// ---------------------------------------------------------------------------
// Registry instruments
// ---------------------------------------------------------------------------

TEST(ObsCounter, ConcurrentAddsSumExactly) {
  obs::Counter& counter =
      obs::Registry::Global().counter("test.counter.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        // Mix unit and weighted adds: each lands in exactly one stripe, so
        // the total must be exact, not approximate.
        if (i % 10 == 0) {
          counter.Add(3);
        } else {
          counter.Add();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  constexpr std::uint64_t kPerThread =
      (kAddsPerThread / 10) * 3 + (kAddsPerThread - kAddsPerThread / 10);
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);

  // The registry hands back the same instrument for the same name.
  EXPECT_EQ(&counter, &obs::Registry::Global().counter(
                          std::string("test.counter.") + "concurrent"));
}

TEST(ObsGauge, SetAddMaxWith) {
  obs::Gauge& gauge = obs::Registry::Global().gauge("test.gauge.basic");
  gauge.Set(5);
  EXPECT_EQ(gauge.Value(), 5);
  gauge.Add(-8);
  EXPECT_EQ(gauge.Value(), -3);
  gauge.MaxWith(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.MaxWith(4);  // never lowers
  EXPECT_EQ(gauge.Value(), 10);
}

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram& histogram = obs::Registry::Global().histogram(
      "test.histogram.edges", {1.0, 10.0, 100.0});
  // value <= bounds[i] lands in bucket i; past the last bound -> overflow.
  histogram.Observe(0.5);    // bucket 0
  histogram.Observe(1.0);    // bucket 0: edges are inclusive
  histogram.Observe(1.001);  // bucket 1
  histogram.Observe(10.0);   // bucket 1
  histogram.Observe(100.0);  // bucket 2
  histogram.Observe(1e6);    // overflow
  EXPECT_EQ(histogram.Count(), 6u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.5 + 1.0 + 1.001 + 10.0 + 100.0 + 1e6);
  EXPECT_EQ(histogram.Bounds(), (std::vector<double>{1.0, 10.0, 100.0}));
  EXPECT_EQ(histogram.BucketCounts(),
            (std::vector<std::uint64_t>{2, 2, 1, 1}));

  // Re-resolving with different bounds returns the EXISTING histogram:
  // bounds apply on first creation only.
  obs::Histogram& again =
      obs::Registry::Global().histogram("test.histogram.edges", {42.0});
  EXPECT_EQ(&again, &histogram);
  EXPECT_EQ(again.Bounds().size(), 3u);
}

TEST(ObsRegistry, SnapshotJsonIsSchemaStampedAndParseable) {
  obs::Registry& registry = obs::Registry::Global();
  registry.counter("test.snapshot.counter").Add(7);
  registry.gauge("test.snapshot.gauge").Set(-2);
  registry.histogram("test.snapshot.histogram", {1.0, 2.0}).Observe(1.5);

  const auto parsed = JsonValue::Parse(registry.SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->GetNumber("schema"), obs::kMetricsSchemaVersion);
  const JsonValue* counters = parsed->Find("counters");
  const JsonValue* gauges = parsed->Find("gauges");
  const JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(histograms, nullptr);
  EXPECT_DOUBLE_EQ(counters->GetNumber("test.snapshot.counter"), 7.0);
  EXPECT_DOUBLE_EQ(gauges->GetNumber("test.snapshot.gauge"), -2.0);
  const JsonValue* histogram = histograms->Find("test.snapshot.histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_DOUBLE_EQ(histogram->GetNumber("count"), 1.0);
  EXPECT_DOUBLE_EQ(histogram->GetNumber("sum"), 1.5);
  const JsonValue* buckets = histogram->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  EXPECT_EQ(buckets->array().size(), 3u);  // two bounds + overflow
  EXPECT_DOUBLE_EQ(buckets->array()[1].number(), 1.0);  // 1 < 1.5 <= 2
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(ObsTracer, RingBoundsMemoryAndCountsDrops) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::ScopedSpan span("ring.fill", "test");
  }
  tracer.Disable();
  const std::vector<obs::Span> spans = tracer.Snapshot();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Oldest-first: ids of the surviving (latest) spans ascend.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].id, spans[i - 1].id);
  }
}

TEST(ObsTracer, ChromeTraceJsonIsWellFormedAndNested) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable(/*capacity=*/64);
  {
    obs::ScopedSpan outer("outer", "test");
    outer.Arg("label", std::string_view("root"));
    {
      obs::ScopedSpan inner("inner", "test");
      inner.Arg("n", 42);
    }
  }
  tracer.Disable();

  const auto parsed = JsonValue::Parse(tracer.ChromeTraceJson());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array().size(), 2u);

  // Sorted by start: the enclosing span first even though it RECORDED last,
  // at ts 0 (timestamps are relative to the earliest span).
  const JsonValue& outer = events->array()[0];
  const JsonValue& inner = events->array()[1];
  EXPECT_EQ(outer.GetString("name"), "outer");
  EXPECT_EQ(inner.GetString("name"), "inner");
  for (const JsonValue* event : {&outer, &inner}) {
    EXPECT_EQ(event->GetString("cat"), "test");
    EXPECT_EQ(event->GetString("ph"), "X");
    EXPECT_GE(event->GetNumber("dur"), 0.0);
    ASSERT_NE(event->Find("args"), nullptr);
  }
  EXPECT_DOUBLE_EQ(outer.GetNumber("ts"), 0.0);
  EXPECT_GE(inner.GetNumber("ts"), outer.GetNumber("ts"));
  // The inner span ends no later than its parent.
  EXPECT_LE(inner.GetNumber("ts") + inner.GetNumber("dur"),
            outer.GetNumber("ts") + outer.GetNumber("dur") + 1e-9);

  // Parent attribution: inner points at outer; outer is a root.
  const JsonValue* outer_args = outer.Find("args");
  const JsonValue* inner_args = inner.Find("args");
  EXPECT_GT(outer_args->GetNumber("span_id"), 0.0);
  EXPECT_DOUBLE_EQ(inner_args->GetNumber("parent_id"),
                   outer_args->GetNumber("span_id"));
  EXPECT_EQ(outer_args->Find("parent_id"), nullptr);
  // Span args ride along, numbers as numbers and strings as strings.
  EXPECT_EQ(outer_args->GetString("label"), "root");
  EXPECT_DOUBLE_EQ(inner_args->GetNumber("n"), 42.0);
}

TEST(ObsTracer, DisabledSpanDoesNotAllocate) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Disable();
  // Warm up thread-local state outside the measured window.
  { obs::ScopedSpan warmup("warmup", "test"); }

  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::ScopedSpan span("alloc.check", "test");
    span.Arg("n", i).Arg("s", std::string_view("sv"));
  }
  const std::uint64_t after =
      g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "a disabled ScopedSpan must be one relaxed atomic load: "
      << (after - before) << " allocation(s) leaked into the disabled path";
}

TEST(ObsTracer, ResumeKeepsRecordedSpans) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable(/*capacity=*/16);
  { obs::ScopedSpan span("before.pause", "test"); }
  tracer.Disable();
  { obs::ScopedSpan span("while.paused", "test"); }  // not recorded
  tracer.Resume();  // unlike Enable(), must NOT clear the ring
  { obs::ScopedSpan span("after.resume", "test"); }
  tracer.Disable();

  const std::vector<obs::Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "before.pause");
  EXPECT_EQ(spans[1].name, "after.resume");
}

TEST(ObsTracer, FlightRingRecordsIndependentlyOfMainRing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable(/*capacity=*/8);
  tracer.EnableFlight(/*capacity=*/8);
  { obs::ScopedSpan span("both.rings", "test"); }
  tracer.Disable();  // main off, flight stays on (the daemon's idle state)
  { obs::ScopedSpan span("flight.only", "test"); }
  tracer.DisableFlight();
  { obs::ScopedSpan span("neither", "test"); }  // fully off: recorded nowhere

  const std::vector<obs::Span> main_spans = tracer.Snapshot();
  ASSERT_EQ(main_spans.size(), 1u);
  EXPECT_EQ(main_spans[0].name, "both.rings");

  const std::vector<obs::Span> flight_spans = tracer.FlightSnapshot();
  ASSERT_EQ(flight_spans.size(), 2u);
  EXPECT_EQ(flight_spans[0].name, "both.rings");
  EXPECT_EQ(flight_spans[1].name, "flight.only");
}

TEST(ObsTracer, FlightRingWrapsBoundedAndCountsIntoRegistry) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Disable();
  obs::Counter& wrapped_counter =
      obs::Registry::Global().counter("obs.flight.wrapped");
  const std::uint64_t wrapped_before = wrapped_counter.Value();
  tracer.EnableFlight(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    obs::ScopedSpan span("flight.fill", "test");
  }
  EXPECT_EQ(tracer.FlightSnapshot().size(), 2u);
  EXPECT_EQ(tracer.flight_wrapped(), 3u);
  // Wraps surface as a registry counter so /metrics and the CI trace
  // validator can detect span loss without a snapshot diff.
  EXPECT_EQ(wrapped_counter.Value() - wrapped_before, 3u);

  // The flight export is the same Chrome trace shape as the main ring's,
  // with the wrap count in otherData.dropped.
  const auto parsed = JsonValue::Parse(tracer.FlightChromeTraceJson());
  tracer.DisableFlight();
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* other = parsed->Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->GetNumber("dropped"), 3.0);
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->array().size(), 2u);
}

TEST(ObsTracer, MainRingDropsSurfaceAsRegistryCounter) {
  obs::Tracer& tracer = obs::Tracer::Global();
  obs::Counter& dropped_counter =
      obs::Registry::Global().counter("obs.trace.dropped");
  const std::uint64_t dropped_before = dropped_counter.Value();
  tracer.Enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::ScopedSpan span("drop.fill", "test");
  }
  tracer.Disable();
  EXPECT_EQ(dropped_counter.Value() - dropped_before, 6u);
  // The export stamps the same count into otherData for the CI validator.
  const auto parsed = JsonValue::Parse(tracer.ChromeTraceJson());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* other = parsed->Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->GetNumber("dropped"), 6.0);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

TEST(ObsRegistry, PrometheusTextIsSpecConsistent) {
  obs::Registry& registry = obs::Registry::Global();
  registry.counter("test.prom.counter").Add(3);
  registry.gauge("test.prom.gauge").Set(-4);
  obs::Histogram& histogram =
      registry.histogram("test.prom.hist", {1.0, 2.0, 4.0});
  histogram.Reset();
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  histogram.Observe(3.0);
  histogram.Observe(100.0);  // overflow bucket

  const std::string text = registry.PrometheusText();
  // Names are sanitized ('.' -> '_') and typed before their samples.
  EXPECT_NE(text.find("# TYPE test_prom_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge -4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_hist histogram\n"),
            std::string::npos);
  // Buckets are CUMULATIVE (le="2" counts everything <= 2), the +Inf
  // bucket equals _count, and _sum is present — the histogram contract
  // Prometheus scrapers rely on.
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"4\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum 105\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 4\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a traced cold sweep covers every flow layer
// ---------------------------------------------------------------------------

TEST(ObsEndToEnd, TracedExploreEmitsSpansFromEveryLayer) {
  TempDir scratch;
  const std::string trace_path = scratch.path + "/explore-trace.json";
  {
    Toolchain toolchain;
    toolchain.WithThreads(1).WithTrace(trace_path);

    const suite::Benchmark* bench = suite::FindBenchmark("crc");
    ASSERT_NE(bench, nullptr);
    Result<mips::SoftBinary> binary = suite::BuildBinary(*bench, 1);
    ASSERT_TRUE(binary.ok()) << binary.status().message();
    explore::ExploreSpec spec;
    spec.binaries.push_back(
        {"crc", std::make_shared<const mips::SoftBinary>(
                    std::move(binary).take())});
    spec.platforms = {"mips200-xc2v1000"};
    spec.strategies = {"paper-greedy"};
    const explore::ExploreResult result = toolchain.Explore(spec);
    for (const explore::ExplorePoint& point : result.points) {
      ASSERT_TRUE(point.status.ok()) << point.status.message();
    }
    // Destructor flushes the trace to the WithTrace path.
  }
  obs::Tracer::Global().Disable();

  // The cold sweep exercised every instrumented subsystem: the exported
  // trace must carry spans from the decompiler, the partitioner, the sweep
  // engine, the artifact cache, and the simulator.
  std::string text;
  {
    std::ifstream in(trace_path);
    ASSERT_TRUE(in.good()) << "trace file missing: " << trace_path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.has_value()) << "trace is not valid JSON";
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_FALSE(events->array().empty());

  std::set<std::string> categories;
  double last_ts = 0.0;
  std::set<double> span_ids;
  for (const JsonValue& event : events->array()) {
    categories.insert(event.GetString("cat"));
    EXPECT_EQ(event.GetString("ph"), "X");
    const double ts = event.GetNumber("ts");
    EXPECT_GE(ts, last_ts);  // exporter contract: sorted by start
    last_ts = ts;
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    const double span_id = args->GetNumber("span_id");
    EXPECT_GT(span_id, 0.0);
    EXPECT_TRUE(span_ids.insert(span_id).second) << "duplicate span id";
  }
  for (const char* required :
       {"decomp", "partition", "explore", "cache", "sim"}) {
    EXPECT_EQ(categories.count(required), 1u)
        << "no spans from the '" << required << "' layer";
  }
}

}  // namespace
}  // namespace b2h
