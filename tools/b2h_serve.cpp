// b2h-serve — the partitioning-as-a-service daemon.
//
//   b2h-serve --socket PATH [--cache-dir DIR] [--workers N]
//             [--max-queue N] [--threads N] [--trace-out FILE]
//             [--http-port N] [--dump-dir DIR]
//
// Listens on a unix-domain socket for length-prefixed JSON requests
// (partition / explore / stats / metrics / ping / dump / shutdown —
// src/serve/protocol.hpp)
// and serves them from one warm Toolchain with a shared two-tier artifact
// cache.  With --http-port it additionally serves the loopback HTTP
// introspection plane (GET /metrics, /healthz, /trace, /v1/progress/<corr>;
// POST /v1/partition, /v1/explore — docs/OPERATIONS.md); with --dump-dir a
// crash (SIGSEGV/SIGABRT/std::terminate) or a `dump` request writes a
// forensics bundle there.  Runs in the foreground; SIGINT/SIGTERM or a
// `shutdown` request stop it cleanly (connections drained, socket file
// removed).  Exit code 0 on clean shutdown, 1 on startup errors.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/obs.hpp"
#include "serve/server.hpp"

namespace {

b2h::serve::Server* g_server = nullptr;

void OnSignal(int /*signum*/) {
  // Only an atomic flag store — async-signal-safe; Wait() does the work.
  if (g_server != nullptr) g_server->RequestShutdown();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: b2h-serve --socket PATH [--cache-dir DIR] [--workers N]\n"
      "                 [--max-queue N] [--threads N] [--trace-out FILE]\n"
      "                 [--http-port N] [--dump-dir DIR]\n"
      "  --socket PATH    unix socket to listen on (required)\n"
      "  --cache-dir DIR  persist the artifact cache under DIR\n"
      "  --workers N      concurrent heavy computations (default 2)\n"
      "  --max-queue N    bounded admission queue (default 64)\n"
      "  --threads N      toolchain threads per computation (default 1)\n"
      "  --trace-out FILE write a Chrome/Perfetto trace of the whole\n"
      "                   serving session to FILE at shutdown\n"
      "  --http-port N    serve the HTTP introspection plane on\n"
      "                   127.0.0.1:N (0 = ephemeral; printed at startup)\n"
      "  --dump-dir DIR   write crash/dump forensics bundles under DIR\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  b2h::serve::Server::Options options;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      options.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--max-queue" && i + 1 < argc) {
      options.max_queue = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      options.toolchain_threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--http-port" && i + 1 < argc) {
      options.http_port = std::atoi(argv[++i]);
    } else if (arg == "--dump-dir" && i + 1 < argc) {
      options.dump_dir = argv[++i];
    } else {
      return Usage();
    }
  }
  if (options.socket_path.empty()) return Usage();
  if (!trace_out.empty()) b2h::obs::Tracer::Global().Enable();

  b2h::serve::Server server(options);
  const b2h::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "b2h-serve: %s\n", started.message().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::printf("b2h-serve: listening on %s (workers=%u, queue=%zu%s%s)\n",
              server.options().socket_path.c_str(), server.options().workers,
              server.options().max_queue,
              server.options().cache_dir.empty() ? "" : ", cache-dir=",
              server.options().cache_dir.c_str());
  if (server.http_port() > 0) {
    std::printf("b2h-serve: http introspection on 127.0.0.1:%d\n",
                server.http_port());
  }
  std::fflush(stdout);

  server.Wait();
  if (!trace_out.empty() &&
      b2h::obs::Tracer::Global().WriteChromeTrace(trace_out)) {
    std::printf("b2h-serve: trace written to %s\n", trace_out.c_str());
  }
  std::printf("b2h-serve: shut down cleanly\n");
  return 0;
}
