// b2h-loadgen — load generator + serving benchmark for the b2h-serve
// daemon.
//
//   b2h-loadgen --spawn SERVER_BIN [--cache-dir DIR] [options]
//   b2h-loadgen --socket PATH [options]
//
//   options: --requests N (default 1200)  --connections C (default 8)
//            --cold-keys K (default 8)    --socket PATH (with --spawn)
//
// Drives a mixed warm/cold request replay against a serving daemon and
// writes BENCH_serve.json (JSON Lines, bench/bench_json.hpp schema) for
// the CI perf-trajectory gate.  Phases:
//
//   1. cold serial  — every unique warm-set request once; baseline reports
//   2. mixed load   — N requests over C connections: warm keys plus K
//                     unique cold keys (fresh annealing seeds)
//   3. coalesce burst — C connections fire ONE brand-new key at the same
//                     instant; single-flight must execute it exactly once
//   4. verify serial — replay every key; reports must be bit-identical to
//                     the concurrent phase's
//   5. http replay  — (with --http-port) every key again over POST
//                     /v1/partition|/v1/explore; reports must be
//                     bit-identical to the framed baseline and /healthz
//                     must answer 200
//
// Self-gated invariants (non-zero exit on violation, enforced again by
// ci/perf_trajectory.py ABSOLUTE_GATES):
//
//   serve_warm_simulations   == 0   phases 2-5 re-simulate nothing
//   serve_warm_decompilations== 0   ... and re-decompile nothing
//   serve_extra_partitions   == 0   partitions beyond the unique cold keys
//   serve_burst_executed     == 1   the burst coalesced onto one execution
//   serve_report_identical   == 1   serial == concurrent, bit for bit
//   serve_metrics_ok         == 1   `metrics` snapshot matches the load
//   serve_http_identical     == 1   (with --http-port) HTTP == framed
//   serve_shutdown_clean     == 1   (spawn mode) exit 0, socket removed
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_json.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "support/http.hpp"
#include "support/json_parse.hpp"
#include "support/schema.hpp"

namespace {

using b2h::serve::Client;
using b2h::support::JsonValue;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string socket_path;
  std::string server_bin;  ///< spawn mode when non-empty
  std::string cache_dir;
  std::string trace_out;  ///< Chrome/Perfetto trace of the client phases
  std::size_t requests = 1200;
  unsigned connections = 8;
  std::size_t cold_keys = 8;
  int http_port = -1;  ///< >= 0: run the HTTP replay phase on this port
};

int Usage() {
  std::fprintf(stderr,
               "usage: b2h-loadgen (--spawn SERVER_BIN | --socket PATH)\n"
               "                   [--socket PATH] [--cache-dir DIR]\n"
               "                   [--requests N] [--connections C]\n"
               "                   [--cold-keys K] [--trace-out FILE]\n"
               "                   [--http-port N]\n");
  return 1;
}

std::string PartitionRequest(const std::string& benchmark,
                             const std::string& strategy, std::uint64_t seed,
                             unsigned iterations) {
  std::ostringstream out;
  out << "{\"schema\":" << b2h::kWireSchemaVersion
      << ",\"kind\":\"partition\",\"benchmark\":\"" << benchmark
      << "\",\"strategy\":\"" << strategy << "\",\"objective\":\"speedup\""
      << ",\"seed\":" << seed << ",\"annealing_iterations\":" << iterations
      << "}";
  return out.str();
}

std::string ExploreRequest(const std::vector<std::string>& benchmarks) {
  std::ostringstream out;
  out << "{\"schema\":" << b2h::kWireSchemaVersion
      << ",\"kind\":\"explore\",\"benchmarks\":[";
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << benchmarks[i] << "\"";
  }
  out << "],\"strategies\":[\"paper-greedy\"]}";
  return out.str();
}

std::string SimpleRequest(const char* kind) {
  std::ostringstream out;
  out << "{\"schema\":" << b2h::kWireSchemaVersion << ",\"kind\":\"" << kind
      << "\"}";
  return out.str();
}

/// The deterministic "report" slice of a response — everything between the
/// envelope's report and served members (a format contract with
/// serve::OkResponse, which always emits them adjacently in that order).
std::string ExtractReport(const std::string& response) {
  const std::string report_tag = "\"report\":";
  const std::string served_tag = ",\"served\":";
  const std::size_t begin = response.find(report_tag);
  const std::size_t end = response.rfind(served_tag);
  if (begin == std::string::npos || end == std::string::npos ||
      end <= begin) {
    return "";
  }
  const std::size_t start = begin + report_tag.size();
  return response.substr(start, end - start);
}

bool ResponseOk(const std::string& response, bool* coalesced = nullptr) {
  const std::optional<JsonValue> parsed = JsonValue::Parse(response);
  if (!parsed.has_value() || !parsed->is_object()) return false;
  if (coalesced != nullptr) {
    const JsonValue* served = parsed->Find("served");
    *coalesced =
        served != nullptr && served->GetBool("coalesced", false);
  }
  return parsed->GetBool("ok", false);
}

struct StatsSnapshot {
  double simulations = 0, decompilations = 0, partitions = 0;
  double executed = 0, coalesced = 0, memory_hits = 0, misses = 0;
};

bool FetchStats(Client& client, StatsSnapshot* out) {
  std::string response;
  if (!client.Call(SimpleRequest("stats"), &response, 10'000).ok()) {
    return false;
  }
  const std::optional<JsonValue> parsed = JsonValue::Parse(response);
  if (!parsed.has_value()) return false;
  const JsonValue* served = parsed->Find("served");
  if (served == nullptr) return false;
  const JsonValue* work = served->Find("work");
  const JsonValue* scheduler = served->Find("scheduler");
  const JsonValue* cache = served->Find("cache");
  if (work == nullptr || scheduler == nullptr || cache == nullptr) {
    return false;
  }
  out->simulations = work->GetNumber("simulations_run");
  out->decompilations = work->GetNumber("decompilations_run");
  out->partitions = work->GetNumber("partitions_run");
  out->executed = scheduler->GetNumber("executed");
  out->coalesced = scheduler->GetNumber("coalesced");
  out->memory_hits = cache->GetNumber("memory_hits");
  out->misses = cache->GetNumber("misses");
  return true;
}

/// Cross-check the `metrics` endpoint against the load we generated: the
/// served body must be a schema-stamped registry snapshot whose
/// serve.requests counter covers at least the requests this process sent.
bool MetricsEndpointOk(Client& client, double min_requests) {
  std::string response;
  if (!client.Call(SimpleRequest("metrics"), &response, 10'000).ok()) {
    return false;
  }
  const std::optional<JsonValue> parsed = JsonValue::Parse(response);
  if (!parsed.has_value() || !parsed->GetBool("ok", false)) return false;
  const JsonValue* served = parsed->Find("served");
  if (served == nullptr) return false;
  if (served->GetNumber("schema") !=
      static_cast<double>(b2h::obs::kMetricsSchemaVersion)) {
    return false;
  }
  const JsonValue* counters = served->Find("counters");
  if (counters == nullptr || served->Find("gauges") == nullptr ||
      served->Find("histograms") == nullptr) {
    return false;
  }
  return counters->GetNumber("serve.requests") >= min_requests;
}

/// Baseline report registry: the first response for a key becomes the
/// reference; every later response must match it byte for byte.
class ReportRegistry {
 public:
  /// True when the report matches (or creates) the key's baseline.
  bool CheckOrInsert(const std::string& key, const std::string& report) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = reports_.try_emplace(key, report);
    if (!inserted && it->second != report) {
      ++mismatches_;
      return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t mismatches() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return mismatches_;
  }
  [[nodiscard]] std::vector<std::string> Keys() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> keys;
    keys.reserve(reports_.size());
    for (const auto& [key, report] : reports_) keys.push_back(key);
    return keys;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::string> reports_;
  std::size_t mismatches_ = 0;
};

pid_t SpawnServer(const Options& options, const std::string& http_port) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<const char*> args = {options.server_bin.c_str(), "--socket",
                                   options.socket_path.c_str(),
                                   "--workers", "2"};
  if (!options.cache_dir.empty()) {
    args.push_back("--cache-dir");
    args.push_back(options.cache_dir.c_str());
  }
  if (!http_port.empty()) {
    args.push_back("--http-port");
    args.push_back(http_port.c_str());
  }
  args.push_back(nullptr);
  ::execv(options.server_bin.c_str(),
          const_cast<char* const*>(args.data()));
  std::_Exit(127);
}

bool ConnectReady(const std::string& socket_path, Client* out,
                  int attempts = 100) {
  for (int attempt = 0; attempt < attempts; ++attempt) {
    auto client = Client::Connect(socket_path);
    if (client.ok()) {
      std::string response;
      if (client.value().Call(SimpleRequest("ping"), &response, 2'000).ok() &&
          ResponseOk(response)) {
        *out = std::move(client).take();
        return true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      fraction * static_cast<double>(values.size() - 1));
  return values[index];
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--spawn" && i + 1 < argc) {
      options.server_bin = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      options.requests = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--connections" && i + 1 < argc) {
      options.connections =
          static_cast<unsigned>(std::max(1, std::atoi(argv[++i])));
    } else if (arg == "--cold-keys" && i + 1 < argc) {
      options.cold_keys = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--trace-out" && i + 1 < argc) {
      options.trace_out = argv[++i];
    } else if (arg == "--http-port" && i + 1 < argc) {
      options.http_port = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (!options.trace_out.empty()) b2h::obs::Tracer::Global().Enable();
  const bool spawn = !options.server_bin.empty();
  if (!spawn && options.socket_path.empty()) return Usage();
  if (options.socket_path.empty()) {
    options.socket_path =
        "/tmp/b2h-loadgen-" + std::to_string(::getpid()) + ".sock";
  }

  pid_t server_pid = -1;
  if (spawn) {
    server_pid = SpawnServer(options, options.http_port >= 0
                                          ? std::to_string(options.http_port)
                                          : std::string());
    if (server_pid < 0) {
      std::fprintf(stderr, "b2h-loadgen: fork failed\n");
      return 1;
    }
  }

  Client control;
  if (!ConnectReady(options.socket_path, &control)) {
    std::fprintf(stderr, "b2h-loadgen: server at %s never became ready\n",
                 options.socket_path.c_str());
    if (server_pid > 0) ::kill(server_pid, SIGKILL);
    return 1;
  }

  // ---- warm request set ----------------------------------------------------
  const std::vector<std::string> benchmarks = {"crc", "fir", "checksum",
                                               "brev"};
  std::vector<std::string> warm_set;
  for (const std::string& benchmark : benchmarks) {
    warm_set.push_back(PartitionRequest(benchmark, "paper-greedy", 1, 2000));
    warm_set.push_back(PartitionRequest(benchmark, "annealing", 1, 2000));
    warm_set.push_back(PartitionRequest(benchmark, "annealing", 2, 2000));
  }
  warm_set.push_back(ExploreRequest(benchmarks));
  const auto cold_request = [&](std::size_t index) {
    // Fresh annealing seeds the warm phases never used.
    return PartitionRequest(benchmarks[index % benchmarks.size()],
                            "annealing", 1000 + index, 2000);
  };

  ReportRegistry registry;
  std::size_t request_failures = 0;

  // ---- phase 1: cold serial ------------------------------------------------
  b2h::obs::ScopedSpan phase1_span("loadgen.cold_prime", "loadgen");
  for (const std::string& request : warm_set) {
    std::string response;
    if (!control.Call(request, &response, 120'000).ok() ||
        !ResponseOk(response)) {
      std::fprintf(stderr, "b2h-loadgen: cold request failed: %s\n%s\n",
                   request.c_str(), response.c_str());
      ++request_failures;
      continue;
    }
    registry.CheckOrInsert(request, ExtractReport(response));
  }
  StatsSnapshot after_cold;
  if (!FetchStats(control, &after_cold)) {
    std::fprintf(stderr, "b2h-loadgen: stats request failed\n");
    return 1;
  }
  phase1_span.Arg("requests", static_cast<std::uint64_t>(warm_set.size()));
  phase1_span.Close();
  std::printf("phase 1 (cold): %zu unique requests primed\n",
              warm_set.size());

  // ---- phase 2: mixed concurrent load -------------------------------------
  b2h::obs::ScopedSpan phase2_span("loadgen.mixed_load", "loadgen");
  std::mutex merge_mutex;
  std::vector<double> warm_latencies_ms;
  std::vector<double> cold_latencies_ms;
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> client_coalesced{0};

  const std::size_t total = std::max<std::size_t>(options.requests, 1);
  const unsigned connections = options.connections;
  const auto phase2_start = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (unsigned t = 0; t < connections; ++t) {
      threads.emplace_back([&, t] {
        auto client = Client::Connect(options.socket_path);
        if (!client.ok()) {
          failures.fetch_add(1);
          return;
        }
        std::vector<double> warm_ms;
        std::vector<double> cold_ms;
        for (std::size_t i = t; i < total; i += connections) {
          // Every 5th request draws from the small cold pool (repeats
          // included, so late duplicates exercise the now-warm path).
          const bool cold =
              i % 5 == 4 && options.cold_keys > 0;
          const std::string request =
              cold ? cold_request((i / 5) % options.cold_keys)
                   : warm_set[i % warm_set.size()];
          const auto start = Clock::now();
          std::string response;
          bool coalesced = false;
          if (!client.value().Call(request, &response, 120'000).ok() ||
              !ResponseOk(response, &coalesced)) {
            failures.fetch_add(1);
            continue;
          }
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count();
          (cold ? cold_ms : warm_ms).push_back(ms);
          if (coalesced) client_coalesced.fetch_add(1);
          if (!registry.CheckOrInsert(request, ExtractReport(response))) {
            failures.fetch_add(1);
          }
        }
        const std::lock_guard<std::mutex> lock(merge_mutex);
        warm_latencies_ms.insert(warm_latencies_ms.end(), warm_ms.begin(),
                                 warm_ms.end());
        cold_latencies_ms.insert(cold_latencies_ms.end(), cold_ms.begin(),
                                 cold_ms.end());
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double phase2_seconds =
      std::chrono::duration<double>(Clock::now() - phase2_start).count();
  phase2_span.Arg("requests", static_cast<std::uint64_t>(total))
      .Arg("connections", static_cast<std::uint64_t>(connections));
  phase2_span.Close();
  StatsSnapshot after_mixed;
  if (!FetchStats(control, &after_mixed)) return 1;
  std::printf("phase 2 (mixed): %zu requests over %u connections in %.2fs\n",
              total, connections, phase2_seconds);

  // ---- phase 3: coalesce burst --------------------------------------------
  // Every connection fires the SAME never-seen request at the same instant;
  // single-flight admission must run the computation exactly once.
  const std::string burst_request =
      PartitionRequest("crc", "annealing", 999'983, 20'000);
  {
    b2h::obs::ScopedSpan phase3_span("loadgen.coalesce_burst", "loadgen");
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    std::atomic<unsigned> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (unsigned t = 0; t < connections; ++t) {
      threads.emplace_back([&] {
        auto client = Client::Connect(options.socket_path);
        if (!client.ok()) {
          failures.fetch_add(1);
          ready.fetch_add(1);
          return;
        }
        ready.fetch_add(1);
        {
          std::unique_lock<std::mutex> lock(gate_mutex);
          gate_cv.wait(lock, [&] { return gate_open; });
        }
        std::string response;
        if (!client.value().Call(burst_request, &response, 120'000).ok() ||
            !ResponseOk(response)) {
          failures.fetch_add(1);
          return;
        }
        if (!registry.CheckOrInsert(burst_request,
                                    ExtractReport(response))) {
          failures.fetch_add(1);
        }
      });
    }
    while (ready.load() < connections) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
      const std::lock_guard<std::mutex> lock(gate_mutex);
      gate_open = true;
    }
    gate_cv.notify_all();
    for (std::thread& thread : threads) thread.join();
  }
  StatsSnapshot after_burst;
  if (!FetchStats(control, &after_burst)) return 1;
  const double burst_executed = after_burst.executed - after_mixed.executed;
  std::printf("phase 3 (burst): %u simultaneous identical requests, "
              "%.0f execution(s)\n",
              connections, burst_executed);

  // ---- phase 4: serial verification ---------------------------------------
  b2h::obs::ScopedSpan phase4_span("loadgen.verify", "loadgen");
  for (const std::string& request : registry.Keys()) {
    std::string response;
    if (!control.Call(request, &response, 120'000).ok() ||
        !ResponseOk(response)) {
      ++request_failures;
      continue;
    }
    if (!registry.CheckOrInsert(request, ExtractReport(response))) {
      ++request_failures;
    }
  }
  phase4_span.Close();

  // ---- phase 5: HTTP replay (--http-port) ---------------------------------
  // Every baselined key again, this time as POST /v1/partition|/v1/explore.
  // The daemon routes both transports through the same scheduler + cache,
  // so the report slice must be byte-identical to the framed baseline and
  // the replay must do zero new toolchain work (covered by the warm gates:
  // the final stats snapshot is taken AFTER this phase).
  bool http_identical = true;
  const bool http_enabled = options.http_port >= 0;
  if (http_enabled) {
    b2h::obs::ScopedSpan phase5_span("loadgen.http_replay", "loadgen");
    const auto http_port = static_cast<std::uint16_t>(options.http_port);
    b2h::support::HttpResponse health;
    if (!b2h::support::HttpCall(http_port, "GET", "/healthz", "", &health) ||
        health.status_code != 200) {
      std::fprintf(stderr, "b2h-loadgen: GET /healthz failed (status %d)\n",
                   health.status_code);
      http_identical = false;
    }
    std::size_t replayed = 0;
    for (const std::string& request : registry.Keys()) {
      const std::optional<JsonValue> parsed = JsonValue::Parse(request);
      if (!parsed.has_value()) continue;
      const std::string kind = parsed->GetString("kind");
      if (kind != "partition" && kind != "explore") continue;
      b2h::support::HttpResponse http_response;
      if (!b2h::support::HttpCall(http_port, "POST", "/v1/" + kind, request,
                                  &http_response, 120'000) ||
          http_response.status_code != 200 ||
          !ResponseOk(http_response.body)) {
        std::fprintf(stderr, "b2h-loadgen: http replay failed: %s\n",
                     request.c_str());
        http_identical = false;
        continue;
      }
      if (!registry.CheckOrInsert(request, ExtractReport(http_response.body))) {
        http_identical = false;
      }
      ++replayed;
    }
    phase5_span.Arg("requests", static_cast<std::uint64_t>(replayed));
    phase5_span.Close();
    std::printf("phase 5 (http): %zu keys replayed over 127.0.0.1:%d\n",
                replayed, options.http_port);
  }

  StatsSnapshot final_stats;
  if (!FetchStats(control, &final_stats)) return 1;
  // The new metrics endpoint must corroborate the load we just generated.
  const bool metrics_ok =
      MetricsEndpointOk(control, static_cast<double>(total));

  // ---- invariants ----------------------------------------------------------
  const double warm_simulations =
      final_stats.simulations - after_cold.simulations;
  const double warm_decompilations =
      final_stats.decompilations - after_cold.decompilations;
  // Partitions after priming: exactly one per unique cold key actually
  // drawn in phase 2 plus one for the burst key; anything more is
  // recomputation the cache or the single-flight map failed to absorb.
  std::set<std::size_t> drawn_cold;
  for (std::size_t i = 0; i < total; ++i) {
    if (i % 5 == 4 && options.cold_keys > 0) {
      drawn_cold.insert((i / 5) % options.cold_keys);
    }
  }
  const double expected_partitions =
      static_cast<double>(drawn_cold.size()) + 1.0;
  const double extra_partitions =
      (final_stats.partitions - after_cold.partitions) - expected_partitions;
  const std::size_t total_failures = request_failures + failures.load();
  const bool reports_identical =
      registry.mismatches() == 0 && total_failures == 0;

  // ---- spawn-mode shutdown ------------------------------------------------
  double shutdown_clean = 1.0;
  if (spawn) {
    shutdown_clean = 0.0;
    std::string response;
    if (control.Call(SimpleRequest("shutdown"), &response, 10'000).ok() &&
        ResponseOk(response)) {
      int status = 0;
      for (int waited_ms = 0; waited_ms < 15'000; waited_ms += 50) {
        const pid_t done = ::waitpid(server_pid, &status, WNOHANG);
        if (done == server_pid) {
          struct stat socket_stat {};
          const bool socket_removed =
              ::stat(options.socket_path.c_str(), &socket_stat) != 0;
          if (WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
              socket_removed) {
            shutdown_clean = 1.0;
          }
          server_pid = -1;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    if (server_pid > 0) {  // orphaned daemon: reap it and fail the gate
      ::kill(server_pid, SIGKILL);
      (void)::waitpid(server_pid, nullptr, 0);
    }
  }

  // ---- metrics -------------------------------------------------------------
  const double throughput =
      phase2_seconds > 0.0 ? static_cast<double>(total) / phase2_seconds
                           : 0.0;
  const double cache_lookups = final_stats.memory_hits + final_stats.misses;
  {
    b2h::bench::JsonWriter json("serve");
    json.Record("serve_throughput_rps", throughput, "req/s");
    json.Record("serve_warm_p50_ms", Percentile(warm_latencies_ms, 0.50),
                "ms");
    json.Record("serve_warm_p99_ms", Percentile(warm_latencies_ms, 0.99),
                "ms");
    json.Record("serve_cold_p50_ms", Percentile(cold_latencies_ms, 0.50),
                "ms");
    json.Record("serve_warm_simulations", warm_simulations, "count");
    json.Record("serve_warm_decompilations", warm_decompilations, "count");
    json.Record("serve_extra_partitions", extra_partitions, "count");
    json.Record("serve_burst_executed", burst_executed, "count");
    json.Record("serve_report_identical", reports_identical ? 1.0 : 0.0,
                "bool");
    json.Record("serve_metrics_ok", metrics_ok ? 1.0 : 0.0, "bool");
    if (http_enabled) {
      json.Record("serve_http_identical", http_identical ? 1.0 : 0.0, "bool");
    }
    json.Record("serve_coalesced_total", final_stats.coalesced, "count");
    json.Record("serve_client_coalesced",
                static_cast<double>(client_coalesced.load()), "count");
    json.Record("serve_cache_memory_pct",
                cache_lookups > 0.0
                    ? 100.0 * final_stats.memory_hits / cache_lookups
                    : 0.0,
                "%");
    if (spawn) json.Record("serve_shutdown_clean", shutdown_clean, "bool");
  }

  std::printf(
      "throughput %.0f req/s, warm p50 %.2f ms, p99 %.2f ms\n"
      "warm work: %.0f simulations, %.0f decompilations, "
      "%.0f extra partitions\n"
      "coalesced %.0f (server) / %zu (client-visible), burst executed %.0f\n",
      throughput, Percentile(warm_latencies_ms, 0.50),
      Percentile(warm_latencies_ms, 0.99), warm_simulations,
      warm_decompilations, extra_partitions, final_stats.coalesced,
      client_coalesced.load(), burst_executed);

  bool failed = false;
  const auto gate = [&](const char* name, bool ok) {
    std::printf("gate %-26s %s\n", name, ok ? "ok" : "FAIL");
    if (!ok) failed = true;
  };
  gate("serve_warm_simulations==0", warm_simulations == 0.0);
  gate("serve_warm_decompilations==0", warm_decompilations == 0.0);
  gate("serve_extra_partitions==0", extra_partitions == 0.0);
  gate("serve_burst_executed==1", burst_executed == 1.0);
  gate("serve_report_identical==1", reports_identical);
  gate("serve_metrics_ok==1", metrics_ok);
  if (http_enabled) gate("serve_http_identical==1", http_identical);
  if (spawn) gate("serve_shutdown_clean==1", shutdown_clean == 1.0);
  if (!options.trace_out.empty() &&
      b2h::obs::Tracer::Global().WriteChromeTrace(options.trace_out)) {
    std::printf("trace written to %s\n", options.trace_out.c_str());
  }
  return failed ? 1 : 0;
}
