// b2h-cache — maintenance CLI for the persistent artifact cache.
//
//   b2h-cache [--dir DIR] stats [--socket PATH]  entry counts, bytes, schema
//   b2h-cache [--dir DIR] gc [--max-bytes N]     LRU eviction + stale trees
//   b2h-cache [--dir DIR] clear                  remove everything
//
// DIR defaults to $B2H_CACHE_DIR.  `stats --socket PATH` additionally asks
// the b2h-serve daemon listening on PATH for its live metrics snapshot and
// prints the hit/miss ratio and memory-vs-disk tier split of the cache
// traffic that daemon has actually served.  `gc` always reclaims trees left
// by older schema versions and temp junk; with --max-bytes it additionally
// evicts least-recently-used entries until the store fits the budget.  Exit
// code: 0 on success, 1 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "explore/disk_store.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "support/json_parse.hpp"
#include "support/schema.hpp"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: b2h-cache [--dir DIR] <stats|gc|clear> [--max-bytes N]\n"
      "                 [--socket PATH]\n"
      "  DIR defaults to $B2H_CACHE_DIR (an explicit --dir always wins)\n"
      "  stats [--socket PATH]\n"
      "                      entry counts, bytes, schema version; with a\n"
      "                      --socket, also the live hit/miss ratio and\n"
      "                      memory-vs-disk tier split of the b2h-serve\n"
      "                      daemon listening there\n"
      "  gc [--max-bytes N]  drop stale-schema trees and temp junk; with\n"
      "                      N > 0, also evict LRU entries until the store\n"
      "                      fits N bytes (to drop everything, use clear)\n"
      "  clear               remove every cache entry, all schema versions\n"
      "                      (foreign files in the directory are kept)\n");
  return 1;
}

/// Query a live b2h-serve daemon's `metrics` endpoint and print the cache
/// tier traffic it reports.  Returns false on connect/protocol trouble.
bool PrintLiveCacheMetrics(const std::string& socket_path) {
  auto client = b2h::serve::Client::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "b2h-cache: cannot connect to %s: %s\n",
                 socket_path.c_str(),
                 client.status().message().c_str());
    return false;
  }
  std::ostringstream request;
  request << "{\"schema\":" << b2h::kWireSchemaVersion
          << ",\"kind\":\"metrics\"}";
  std::string response;
  if (!client.value().Call(request.str(), &response, 10'000).ok()) {
    std::fprintf(stderr, "b2h-cache: metrics request to %s failed\n",
                 socket_path.c_str());
    return false;
  }
  const auto parsed = b2h::support::JsonValue::Parse(response);
  if (!parsed.has_value() || !parsed->GetBool("ok", false)) {
    std::fprintf(stderr, "b2h-cache: malformed metrics response\n");
    return false;
  }
  const b2h::support::JsonValue* served = parsed->Find("served");
  const b2h::support::JsonValue* counters =
      served != nullptr ? served->Find("counters") : nullptr;
  if (served == nullptr || counters == nullptr ||
      served->GetNumber("schema") !=
          static_cast<double>(b2h::obs::kMetricsSchemaVersion)) {
    std::fprintf(stderr, "b2h-cache: unexpected metrics snapshot schema\n");
    return false;
  }
  const double memory_hits = counters->GetNumber("cache.memory_hits");
  const double disk_hits = counters->GetNumber("cache.disk_hits");
  const double misses = counters->GetNumber("cache.misses");
  const double stores = counters->GetNumber("cache.disk_stores");
  const double evictions = counters->GetNumber("cache.disk_evictions");
  const double hits = memory_hits + disk_hits;
  const double lookups = hits + misses;
  std::printf("live cache traffic (b2h-serve at %s):\n",
              socket_path.c_str());
  std::printf("  lookups:      %.0f (hit ratio %.1f%%)\n", lookups,
              lookups > 0.0 ? 100.0 * hits / lookups : 0.0);
  std::printf("  memory hits:  %.0f (%.1f%% of hits)\n", memory_hits,
              hits > 0.0 ? 100.0 * memory_hits / hits : 0.0);
  std::printf("  disk hits:    %.0f (%.1f%% of hits)\n", disk_hits,
              hits > 0.0 ? 100.0 * disk_hits / hits : 0.0);
  std::printf("  misses:       %.0f\n", misses);
  std::printf("  disk stores:  %.0f, evictions: %.0f\n", stores, evictions);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string command;
  std::string socket_path;
  std::uint64_t max_bytes = 0;
  bool have_max_bytes = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--max-bytes" && i + 1 < argc) {
      max_bytes = std::strtoull(argv[++i], nullptr, 10);
      have_max_bytes = true;
    } else if (arg == "stats" || arg == "gc" || arg == "clear") {
      if (!command.empty()) return Usage();
      command = arg;
    } else {
      return Usage();
    }
  }
  if (command.empty()) return Usage();
  // An explicit --dir wins here, unlike Toolchain's env-first precedence:
  // gc/clear are destructive, and a maintenance command must operate on
  // exactly the directory the user named.  $B2H_CACHE_DIR is only the
  // fallback when no --dir is given.
  if (dir.empty()) dir = b2h::explore::ResolveCacheDir("");
  // `stats --socket` is meaningful without any local directory: the live
  // tier split comes from the daemon, not the disk.  Everything else
  // operates on a store and must know where it is.
  if (dir.empty() && !(command == "stats" && !socket_path.empty())) {
    std::fprintf(stderr,
                 "b2h-cache: no cache directory (pass --dir or set "
                 "B2H_CACHE_DIR)\n");
    return 1;
  }

  if (command == "stats") {
    if (!dir.empty()) {
      const auto stats = b2h::explore::DiskStore({dir, 0}).ComputeStats();
      std::printf("cache dir: %s (schema v%u)\n", dir.c_str(),
                  b2h::explore::kCacheSchemaVersion);
      std::printf("  decompile entries: %zu\n", stats.decompile_entries);
      std::printf("  partition entries: %zu\n", stats.partition_entries);
      std::printf("  entry bytes:       %llu\n",
                  static_cast<unsigned long long>(stats.entry_bytes));
      std::printf("  stale files:       %zu (%llu bytes)\n", stats.stale_files,
                  static_cast<unsigned long long>(stats.stale_bytes));
      std::printf("  total bytes:       %llu\n",
                  static_cast<unsigned long long>(stats.total_bytes));
    }
    if (!socket_path.empty() && !PrintLiveCacheMetrics(socket_path)) {
      return 1;
    }
    return 0;
  }

  b2h::explore::DiskStore store({dir, 0});
  if (command == "gc") {
    if (have_max_bytes && max_bytes == 0) {
      std::fprintf(stderr,
                   "b2h-cache: --max-bytes 0 would mean 'no eviction' — to "
                   "remove every entry, use `b2h-cache clear`\n");
      return 1;
    }
    const std::size_t removed = store.Gc(max_bytes);
    const auto stats = store.ComputeStats();
    std::printf("gc: removed %zu file(s); %zu entr%s, %llu bytes remain\n",
                removed, stats.decompile_entries + stats.partition_entries,
                stats.decompile_entries + stats.partition_entries == 1 ? "y"
                                                                       : "ies",
                static_cast<unsigned long long>(stats.total_bytes));
    return 0;
  }
  // clear
  store.Clear();
  std::printf("cleared %s\n", dir.c_str());
  return 0;
}
