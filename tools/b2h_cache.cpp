// b2h-cache — maintenance CLI for the persistent artifact cache.
//
//   b2h-cache [--dir DIR] stats                  entry counts, bytes, schema
//   b2h-cache [--dir DIR] gc [--max-bytes N]     LRU eviction + stale trees
//   b2h-cache [--dir DIR] clear                  remove everything
//
// DIR defaults to $B2H_CACHE_DIR.  `gc` always reclaims trees left by older
// schema versions and temp junk; with --max-bytes it additionally evicts
// least-recently-used entries until the store fits the budget.  Exit code:
// 0 on success, 1 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "explore/disk_store.hpp"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: b2h-cache [--dir DIR] <stats|gc|clear> [--max-bytes N]\n"
      "  DIR defaults to $B2H_CACHE_DIR (an explicit --dir always wins)\n"
      "  stats               entry counts, bytes, schema version\n"
      "  gc [--max-bytes N]  drop stale-schema trees and temp junk; with\n"
      "                      N > 0, also evict LRU entries until the store\n"
      "                      fits N bytes (to drop everything, use clear)\n"
      "  clear               remove every cache entry, all schema versions\n"
      "                      (foreign files in the directory are kept)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string command;
  std::uint64_t max_bytes = 0;
  bool have_max_bytes = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--max-bytes" && i + 1 < argc) {
      max_bytes = std::strtoull(argv[++i], nullptr, 10);
      have_max_bytes = true;
    } else if (arg == "stats" || arg == "gc" || arg == "clear") {
      if (!command.empty()) return Usage();
      command = arg;
    } else {
      return Usage();
    }
  }
  if (command.empty()) return Usage();
  // An explicit --dir wins here, unlike Toolchain's env-first precedence:
  // gc/clear are destructive, and a maintenance command must operate on
  // exactly the directory the user named.  $B2H_CACHE_DIR is only the
  // fallback when no --dir is given.
  if (dir.empty()) dir = b2h::explore::ResolveCacheDir("");
  if (dir.empty()) {
    std::fprintf(stderr,
                 "b2h-cache: no cache directory (pass --dir or set "
                 "B2H_CACHE_DIR)\n");
    return 1;
  }

  b2h::explore::DiskStore store({dir, 0});
  if (command == "stats") {
    const auto stats = store.ComputeStats();
    std::printf("cache dir: %s (schema v%u)\n", dir.c_str(),
                b2h::explore::kCacheSchemaVersion);
    std::printf("  decompile entries: %zu\n", stats.decompile_entries);
    std::printf("  partition entries: %zu\n", stats.partition_entries);
    std::printf("  entry bytes:       %llu\n",
                static_cast<unsigned long long>(stats.entry_bytes));
    std::printf("  stale files:       %zu (%llu bytes)\n", stats.stale_files,
                static_cast<unsigned long long>(stats.stale_bytes));
    std::printf("  total bytes:       %llu\n",
                static_cast<unsigned long long>(stats.total_bytes));
    return 0;
  }
  if (command == "gc") {
    if (have_max_bytes && max_bytes == 0) {
      std::fprintf(stderr,
                   "b2h-cache: --max-bytes 0 would mean 'no eviction' — to "
                   "remove every entry, use `b2h-cache clear`\n");
      return 1;
    }
    const std::size_t removed = store.Gc(max_bytes);
    const auto stats = store.ComputeStats();
    std::printf("gc: removed %zu file(s); %zu entr%s, %llu bytes remain\n",
                removed, stats.decompile_entries + stats.partition_entries,
                stats.decompile_entries + stats.partition_entries == 1 ? "y"
                                                                       : "ies",
                static_cast<unsigned long long>(stats.total_bytes));
    return 0;
  }
  // clear
  store.Clear();
  std::printf("cleared %s\n", dir.c_str());
  return 0;
}
