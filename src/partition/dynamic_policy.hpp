// Online selection policy for dynamic hardware/software partitioning.
//
// The static three-step partitioner (partitioner.hpp) sees the whole profile
// at once; a *dynamic* partitioner (paper §6, and Lysecky/Vahid's warp
// processing studies) must decide kernel by kernel as loops cross a hotness
// threshold, with only the execution observed so far.  This header holds the
// pieces of that decision that are pure policy — threshold configuration,
// the per-iteration profitability gate, kernel pricing, and the eviction
// plan — so they can be unit-tested without a simulator and reused by any
// runtime (the src/dynamic/ subsystem is the in-repo client).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "partition/estimate.hpp"
#include "partition/platform.hpp"

namespace b2h::partition {

/// Tunables of the online detector + swap-in decision.
struct DynamicPolicy {
  /// Taken backward branches observed on one header before it is hot.
  /// Warp-style runtimes use thousands; the default suits this repo's
  /// miniature benchmark runs (tens of thousands of instructions) so that
  /// outer loops — the profitable nests — still cross it mid-run.
  std::uint64_t hot_threshold = 100;
  /// Detector cache entries (rounded up to a power of two).
  std::size_t detector_entries = 64;
  /// Projected per-iteration hardware speedup a candidate must clear before
  /// being swapped in (1.0 = merely profitable).
  double min_kernel_speedup = 1.0;
  /// Evict lower-value kernels to make room for a higher-value newcomer
  /// when the FPGA area budget is exhausted.
  bool allow_eviction = true;
  /// Replace a mapped kernel when a loop strictly containing it becomes hot
  /// and profitable (converges toward the static outer-nest choice).
  bool allow_upgrade = true;
  /// Simulated-time model of the online CAD work (incremental decompile +
  /// synthesis): how many *simulated CPU cycles* one host wall-clock
  /// millisecond of CAD corresponds to.  The default models CAD running
  /// inline on the paper's 200 MHz CPU (1 ms = 200k cycles); 0 disables the
  /// conversion (CAD is free in simulated time, as before this knob).
  double cad_cycles_per_ms = 200'000.0;
};

/// Cost model of one dynamically synthesized kernel, fixed at swap-in time.
/// Memory traffic is the dynamic flow's structural handicap: lacking the
/// static flow's global alias view, the runtime cannot prove arrays are
/// touched by hardware only, so it either stages the array footprint into
/// BRAM *per invocation* (DMA in + out) or leaves accesses on the system
/// bus — whichever is cheaper for the observed access pattern.
struct DynamicKernelModel {
  double hw_cycles_per_iteration = 0.0;
  double kernel_clock_mhz = 100.0;
  double iterations_per_entry = 1.0;       ///< observed average trip count
  double mem_accesses_per_iteration = 0.0;
  std::uint64_t array_footprint_words = 0; ///< staged per invocation if DMA
};

/// True when staging the footprint per invocation beats per-access bus
/// traffic for this model.
[[nodiscard]] bool PrefersDmaStaging(const Platform& platform,
                                     const DynamicKernelModel& model);

/// Hardware seconds (execution + setup + the cheaper memory strategy) for a
/// given amount of observed work under `model`.
[[nodiscard]] double DynamicHwSeconds(const Platform& platform,
                                      const DynamicKernelModel& model,
                                      double iterations, double invocations,
                                      double mem_accesses);

/// Projected speedup of moving one loop iteration to hardware, mirroring the
/// static greedy step's profitability test: per-invocation costs are
/// amortized over the observed iterations per entry.
[[nodiscard]] double ProjectedIterationSpeedup(const Platform& platform,
                                               double sw_cycles_per_iter,
                                               const DynamicKernelModel& model);

/// Price a dynamically mapped kernel from its observed post-swap statistics,
/// producing the same KernelEstimate the static estimator consumes
/// (CombineEstimates fills the derived time/speedup fields).  When DMA
/// staging wins, `comm_words` carries the *total* staged traffic
/// (2 x footprint x invocations) and arrays_resident is set, so
/// CombineEstimates prices exactly the per-invocation staging model.
[[nodiscard]] KernelEstimate PriceDynamicKernel(
    std::string name, const Platform& platform,
    const DynamicKernelModel& model, std::uint64_t sw_cycles,
    std::uint64_t iterations, std::uint64_t invocations,
    std::uint64_t mem_accesses, double area_gates);

/// One mapped kernel's standing, input to the eviction plan.
struct ActiveKernel {
  std::size_t id = 0;          ///< caller's handle (e.g. hardware-range id)
  double area_gates = 0.0;
  double value_density = 0.0;  ///< saved seconds per gate, observed so far
};

/// Plan evictions to fit a candidate needing `candidate_gates`: evict active
/// kernels in ascending value density until the candidate fits, but only if
/// every evicted kernel is strictly less valuable per gate than the
/// candidate.  Returns the ids to evict (possibly empty when the candidate
/// already fits), or nullopt when the candidate should be rejected.
[[nodiscard]] std::optional<std::vector<std::size_t>> PlanEviction(
    const DynamicPolicy& policy, std::vector<ActiveKernel> active,
    double area_budget_gates, double area_used_gates, double candidate_gates,
    double candidate_value_density);

}  // namespace b2h::partition
