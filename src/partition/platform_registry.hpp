// Process-wide named platform registry.
//
// Lives in partition/ (it stores partition::Platform models) so that both
// the Toolchain facade and the exploration engine can resolve platform
// names without depending on each other.  `b2h::PlatformRegistry` remains
// available as an alias through toolchain/toolchain.hpp.
//
// Built-ins (the paper's three evaluation points) are registered on first
// access:
//   "mips200-xc2v1000" — 200 MHz MIPS + Virtex-II XC2V1000 (the default)
//   "mips40"           — same FPGA, 40 MHz CPU
//   "mips400"          — same FPGA, 400 MHz CPU
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "partition/platform.hpp"

namespace b2h::partition {

class PlatformRegistry {
 public:
  static PlatformRegistry& Global();

  /// Register or replace a named platform.
  void Register(std::string name, Platform platform);

  [[nodiscard]] std::optional<Platform> Find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::string name;
    Platform platform;
  };
  std::vector<Entry> entries_;
};

}  // namespace b2h::partition
