// Performance and energy estimation for a partitioned application.
//
// Software time comes from the profiled cycle counts; each hardware kernel
// replaces its software cycles with synthesized cycles at the FPGA clock
// plus communication (kernel start/stop handshakes, and DMA of any arrays
// that the alias step could not make FPGA-resident).  Energy follows the
// platform power model.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "decomp/alias.hpp"
#include "mips/binary.hpp"
#include "mips/simulator.hpp"
#include "partition/platform.hpp"
#include "synth/synth.hpp"

namespace b2h::partition {

struct KernelEstimate {
  std::string name;
  std::uint64_t sw_cycles = 0;    ///< CPU cycles the region took in software
  std::uint64_t hw_cycles = 0;    ///< FPGA cycles (profile-weighted)
  std::uint64_t invocations = 1;
  std::uint64_t comm_words = 0;     ///< array words DMAed once if resident
  std::uint64_t mem_accesses = 0;   ///< profile-weighted loads+stores
  bool arrays_resident = false;   ///< alias step moved arrays into the FPGA
  double hw_clock_mhz = 100.0;
  double area_gates = 0.0;

  double sw_time = 0.0;       ///< seconds
  double hw_time = 0.0;       ///< seconds incl. communication
  double kernel_speedup = 0.0;
};

struct AppEstimate {
  double sw_time = 0.0;          ///< all-software execution time
  double partitioned_time = 0.0;
  double speedup = 1.0;
  double avg_kernel_speedup = 0.0;
  double sw_energy = 0.0;
  double partitioned_energy = 0.0;
  double energy_savings = 0.0;   ///< fraction in [0,1)
  double area_gates = 0.0;
  std::vector<KernelEstimate> kernels;
};

/// Map profiled per-PC cycles onto a set of region leader addresses.
/// `region_leaders` holds the start_pc of every block in the region;
/// `all_leaders` the start_pc of every block in the module (to bucket PCs).
[[nodiscard]] std::uint64_t RegionSwCycles(
    const mips::ExecProfile& profile,
    const std::vector<std::uint32_t>& all_leaders,
    const std::vector<std::uint32_t>& region_leaders);

/// Estimate the word footprint of the arrays in `regions`, using data
/// symbols to derive extents when the binary carries them (assembler output
/// does).  Shared by the static alias step and the dynamic DMA-staging
/// model.
[[nodiscard]] std::uint64_t ArrayFootprintWords(
    const decomp::AliasAnalysis& alias, const std::set<int>& regions,
    const mips::SoftBinary& binary);

/// Combine kernel estimates into the application-level numbers.
[[nodiscard]] AppEstimate CombineEstimates(
    const Platform& platform, std::uint64_t total_sw_cycles,
    std::vector<KernelEstimate> kernels);

}  // namespace b2h::partition
