#include "partition/strategy.hpp"

#include <mutex>

#include "support/error.hpp"

namespace b2h::partition {

std::string_view ObjectiveName(Objective objective) {
  switch (objective) {
    case Objective::kSpeedup: return "speedup";
    case Objective::kEnergy: return "energy";
    case Objective::kEnergyDelay: return "edp";
  }
  return "speedup";
}

std::optional<Objective> ParseObjective(std::string_view name) {
  if (name == "speedup") return Objective::kSpeedup;
  if (name == "energy") return Objective::kEnergy;
  if (name == "edp" || name == "energy-delay") return Objective::kEnergyDelay;
  return std::nullopt;
}

double ObjectiveScore(const AppEstimate& estimate, Objective objective) {
  switch (objective) {
    case Objective::kSpeedup:
      return estimate.speedup;
    case Objective::kEnergy:
      return -estimate.partitioned_energy;
    case Objective::kEnergyDelay:
      return -(estimate.partitioned_energy * estimate.partitioned_time);
  }
  return estimate.speedup;
}

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

StrategyRegistry& StrategyRegistry::Global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    r->Register("paper-greedy", MakePaperGreedyStrategy);
    r->Register("knapsack-optimal", MakeKnapsackStrategy);
    r->Register("annealing", MakeAnnealingStrategy);
    return r;
  }();
  return *registry;
}

void StrategyRegistry::Register(std::string name, Factory factory) {
  Check(!name.empty(), "StrategyRegistry::Register: empty name");
  Check(factory != nullptr, "StrategyRegistry::Register: null factory");
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back({std::move(name), std::move(factory)});
}

std::unique_ptr<Strategy> StrategyRegistry::Create(
    std::string_view name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(RegistryMutex());
    for (const Entry& entry : entries_) {
      if (entry.name == name) {
        factory = entry.factory;
        break;
      }
    }
  }
  return factory ? factory() : nullptr;
}

std::vector<std::string> StrategyRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

}  // namespace b2h::partition
