#include "partition/flow.hpp"

#include <iomanip>
#include <sstream>

namespace b2h::partition {

Result<FlowResult> RunFlow(std::shared_ptr<const mips::SoftBinary> binary,
                           const FlowOptions& options) {
  Check(binary != nullptr, "RunFlow: null binary");
  FlowResult flow;

  // 1. Profile the software binary on the platform CPU.
  mips::Simulator simulator(*binary, options.platform.cpu.cycle_model);
  flow.software_run = simulator.Run({}, options.max_sim_instructions);
  if (flow.software_run.reason != mips::HaltReason::kReturned) {
    return Status::Error(ErrorKind::kMalformedBinary,
                         "software run did not complete: " +
                             flow.software_run.fault_message);
  }

  // 2. Decompile with profile annotations.
  decomp::DecompileOptions decompile_options = options.decompile;
  decompile_options.profile = &flow.software_run.profile;
  auto program = decomp::Decompile(std::move(binary), decompile_options);
  if (!program.ok()) return program.status();
  flow.program = std::make_shared<const decomp::DecompiledProgram>(
      std::move(program).take());

  // 3. Partition + synthesize.
  auto partition =
      PartitionProgram(*flow.program, flow.software_run.profile,
                       options.platform, options.partition);
  if (!partition.ok()) return partition.status();
  flow.partition = std::move(partition).take();

  // 4. Estimate.
  flow.estimate = EstimatePartition(flow.partition, options.platform);
  return flow;
}

Result<FlowResult> RunFlow(const mips::SoftBinary& binary,
                           const FlowOptions& options) {
  return RunFlow(std::make_shared<const mips::SoftBinary>(binary), options);
}

std::string FlowReportBody(const mips::RunResult& software_run,
                           const decomp::DecompiledProgram& program,
                           const PartitionResult& partition,
                           const AppEstimate& estimate) {
  std::ostringstream out;
  out << std::fixed;
  out << "software: " << software_run.instructions << " instrs, "
      << software_run.cycles << " cycles, rv=" << software_run.return_value
      << "\n";
  const auto& stats = program.stats;
  out << "decompile: " << stats.lifted_instrs << " -> " << stats.final_instrs
      << " ops (stack ops removed " << stats.stack_ops_removed
      << ", loops rerolled " << stats.loops_rerolled << ", muls recovered "
      << stats.muls_recovered << ", narrowed " << stats.instrs_narrowed
      << ")\n";
  out << "partition: " << partition.hw.size() << " hw region(s), area "
      << std::setprecision(0) << partition.area_used_gates << " / "
      << partition.area_budget_gates << " gates, loop coverage "
      << std::setprecision(1) << partition.loop_coverage * 100.0 << "%\n";
  for (const auto& selected : partition.hw) {
    const char* reason = selected.selected_by == SelectedBy::kFrequency
                             ? "freq"
                         : selected.selected_by == SelectedBy::kAlias ? "alias"
                         : selected.selected_by == SelectedBy::kGreedy
                             ? "greedy"
                         : selected.selected_by == SelectedBy::kOptimal
                             ? "optimal"
                             : "annealed";
    out << "  [" << reason << "] " << selected.synthesized.region.name
        << ": sw " << selected.sw_cycles << " cyc -> hw "
        << selected.synthesized.hw_cycles << " cyc @ "
        << std::setprecision(0) << selected.synthesized.clock_mhz << " MHz, "
        << selected.synthesized.area.total_gates << " gates";
    if (selected.synthesized.schedule.pipeline_ii > 0) {
      out << ", II=" << selected.synthesized.schedule.pipeline_ii;
    }
    if (selected.arrays_resident) out << ", arrays resident";
    out << "\n";
  }
  // Why regions were skipped.
  for (const std::string& reason : UniqueRejections(partition.rejected)) {
    out << "  rejected " << reason << "\n";
  }
  out << std::setprecision(2);
  out << "estimate: speedup " << estimate.speedup << "x, kernel speedup "
      << estimate.avg_kernel_speedup << "x, energy savings "
      << std::setprecision(1) << estimate.energy_savings * 100.0 << "%\n";
  return out.str();
}

std::string FlowResult::Report() const {
  std::string out = "=== binary-level partitioning report ===\n";
  out += FlowReportBody(software_run, *program, partition, estimate);
  return out;
}

}  // namespace b2h::partition
