#include "partition/candidates.hpp"

#include <algorithm>
#include <map>

#include "ir/dominators.hpp"
#include "ir/loops.hpp"
#include "support/error.hpp"

namespace b2h::partition {

namespace {

/// Functions reachable from main via surviving calls (inlined-away callees
/// would otherwise be double-counted: their blocks share binary addresses
/// with the inlined copies).
std::set<const ir::Function*> ReachableFunctions(const ir::Module& module) {
  std::set<const ir::Function*> reachable;
  std::vector<const ir::Function*> work{module.main};
  reachable.insert(module.main);
  while (!work.empty()) {
    const ir::Function* function = work.back();
    work.pop_back();
    for (const auto& block : function->blocks()) {
      for (const ir::Instr* instr : block->instrs) {
        if (instr->op != ir::Opcode::kCall) continue;
        const ir::Function* callee = module.FindByEntry(instr->call_target);
        if (callee != nullptr && reachable.insert(callee).second) {
          work.push_back(callee);
        }
      }
    }
  }
  return reachable;
}

std::vector<std::uint32_t> BlockLeaders(
    const std::vector<const ir::Block*>& blocks) {
  std::vector<std::uint32_t> leaders;
  leaders.reserve(blocks.size());
  for (const ir::Block* block : blocks) leaders.push_back(block->start_pc);
  return leaders;
}

}  // namespace

CandidateSet CandidateSet::Scan(const decomp::DecompiledProgram& program,
                                const mips::ExecProfile& profile) {
  CandidateSet set;
  set.total_sw_cycles_ = profile.total_cycles;

  // All block leaders in the module (for PC -> block attribution).
  std::vector<std::uint32_t> all_leaders;
  for (const auto& function : program.module.functions) {
    for (const auto& block : function->blocks()) {
      all_leaders.push_back(block->start_pc);
    }
  }

  const std::set<const ir::Function*> reachable =
      ReachableFunctions(program.module);
  for (const auto& function : program.module.functions) {
    if (reachable.count(function.get()) == 0) continue;
    FunctionAnalyses analyses;
    analyses.function = function.get();
    analyses.dom = std::make_unique<ir::DominatorTree>(*function);
    analyses.forest =
        std::make_unique<ir::LoopForest>(*function, *analyses.dom);
    analyses.forest->AnnotateProfile();
    analyses.alias = std::make_unique<decomp::AliasAnalysis>(
        *function,
        program.binary != nullptr ? &program.binary->symbols : nullptr);

    for (const auto& loop : analyses.forest->loops()) {
      // Whole loop nests are candidates too: when an inner loop is entered
      // many times, moving the enclosing loop avoids paying the kernel
      // start/stop handshake per entry (the paper moves "loops", nesting
      // included).  Overlapping selections are excluded at selection time.
      Candidate candidate;
      candidate.function = function.get();
      candidate.loop = loop.get();
      candidate.region = synth::ExtractLoopRegion(*function, *loop);
      candidate.sw_cycles = RegionSwCycles(
          profile, all_leaders, BlockLeaders(candidate.region.blocks));
      candidate.invocations = std::max<std::uint64_t>(1, loop->entry_count);
      candidate.alias_regions = analyses.alias->RegionsIn(*loop);
      if (program.binary != nullptr) {
        candidate.comm_words = ArrayFootprintWords(
            *analyses.alias, candidate.alias_regions, *program.binary);
      }
      for (const ir::Block* block : candidate.region.blocks) {
        std::uint64_t mem_ops = 0;
        for (const ir::Instr* instr : block->instrs) {
          if (instr->op == ir::Opcode::kLoad ||
              instr->op == ir::Opcode::kStore) {
            ++mem_ops;
          }
        }
        candidate.mem_accesses += mem_ops * block->exec_count;
      }
      set.candidates_.push_back(std::move(candidate));
    }
    set.analyses_.push_back(std::move(analyses));
  }

  std::stable_sort(set.candidates_.begin(), set.candidates_.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.sw_cycles > b.sw_cycles;
                   });
  for (const Candidate& candidate : set.candidates_) {
    // Count outermost loops only: nested candidates overlap their parents.
    if (candidate.loop->parent == nullptr) {
      set.loop_cycles_total_ += candidate.sw_cycles;
    }
  }
  set.loop_coverage_ =
      profile.total_cycles > 0
          ? static_cast<double>(set.loop_cycles_total_) /
                static_cast<double>(profile.total_cycles)
          : 0.0;

  set.synth_memo_.resize(set.candidates_.size());
  return set;
}

const decomp::AliasAnalysis& CandidateSet::alias_for(
    const ir::Function* function) const {
  for (const FunctionAnalyses& analyses : analyses_) {
    if (analyses.function == function) return *analyses.alias;
  }
  Check(false, "CandidateSet: no alias analysis for function");
  __builtin_unreachable();
}

const Result<synth::SynthesizedRegion>& CandidateSet::Synthesize(
    std::size_t id, const synth::SynthOptions& options) const {
  Check(id < candidates_.size(), "CandidateSet::Synthesize: bad id");
  // The memo vector is pre-sized at scan time, so a reference to a filled
  // entry stays valid after the lock drops: entries are written once and
  // never moved.  Computing under the lock serializes concurrent misses on
  // a shared set, which is exactly the point — the work happens once.
  const std::lock_guard<std::mutex> lock(*memo_mutex_);
  auto& memo = synth_memo_[id];
  if (!memo.has_value()) {
    const Candidate& candidate = candidates_[id];
    memo = synth::Synthesize(candidate.region,
                             &alias_for(candidate.function), options);
    ++synthesis_runs_;
  }
  return *memo;
}

std::size_t CandidateSet::synthesis_runs() const {
  const std::lock_guard<std::mutex> lock(*memo_mutex_);
  return synthesis_runs_;
}

bool CandidateSet::Overlaps(std::size_t a, std::size_t b) const {
  const std::lock_guard<std::mutex> lock(*memo_mutex_);
  if (block_sets_.empty()) {
    block_sets_.reserve(candidates_.size());
    for (const Candidate& candidate : candidates_) {
      block_sets_.emplace_back(candidate.region.blocks.begin(),
                               candidate.region.blocks.end());
    }
  }
  const auto& small = block_sets_[a].size() <= block_sets_[b].size()
                          ? block_sets_[a]
                          : block_sets_[b];
  const auto& large = &small == &block_sets_[a] ? block_sets_[b]
                                                : block_sets_[a];
  for (const ir::Block* block : small) {
    if (large.count(block) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------- CandidateSetPool

std::shared_ptr<const CandidateSet> ObtainCandidates(
    const decomp::DecompiledProgram& program, const mips::ExecProfile& profile,
    std::shared_ptr<const CandidateSet> shared) {
  if (shared != nullptr) return shared;
  return std::make_shared<const CandidateSet>(
      CandidateSet::Scan(program, profile));
}

CandidateSetPool::CandidateSetPool(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(1, max_entries)) {}

std::shared_ptr<const CandidateSet> CandidateSetPool::Obtain(
    const std::string& key,
    std::shared_ptr<const decomp::DecompiledProgram> program,
    const mips::ExecProfile& profile) {
  Check(program != nullptr, "CandidateSetPool::Obtain: null program");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    // Serve only an entry built against this exact program instance: a
    // disk-rehydrated program is a different instance, and the pooled
    // candidates point into the instance they were scanned from.
    if (it != entries_.end() && it->second.program.get() == program.get()) {
      ++hits_;
      it->second.last_use = ++tick_;
      return it->second.set;
    }
  }
  // Scan outside the lock so distinct keys build in parallel; a racing
  // duplicate scan is harmless (first insert wins, the loser is counted
  // and discarded).
  auto scanned = std::make_shared<const CandidateSet>(
      CandidateSet::Scan(*program, profile));
  const std::lock_guard<std::mutex> lock(mutex_);
  ++scans_;
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.program.get() == program.get()) {
    it->second.last_use = ++tick_;
    return it->second.set;
  }
  if (it != entries_.end()) {
    retired_synthesis_runs_ += it->second.set->synthesis_runs();
    entries_.erase(it);
  }
  while (entries_.size() >= max_entries_) {
    auto oldest = entries_.begin();
    for (auto walk = entries_.begin(); walk != entries_.end(); ++walk) {
      if (walk->second.last_use < oldest->second.last_use) oldest = walk;
    }
    retired_synthesis_runs_ += oldest->second.set->synthesis_runs();
    entries_.erase(oldest);
  }
  entries_.emplace(key, Entry{scanned, std::move(program), ++tick_});
  return scanned;
}

CandidateSetPool::Stats CandidateSetPool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.scans = scans_;
  stats.hits = hits_;
  stats.entries = entries_.size();
  stats.synthesis_runs = retired_synthesis_runs_;
  for (const auto& [key, entry] : entries_) {
    stats.synthesis_runs += entry.set->synthesis_runs();
  }
  return stats;
}

void CandidateSetPool::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  // Counters are cumulative by design (the server reports them over its
  // lifetime); Clear only drops the pinned IR.
}

// ------------------------------------------------------- SelectionState

SelectionState::SelectionState(const CandidateSet& set,
                               const Platform& platform,
                               const PartitionOptions& options)
    : set_(set),
      platform_(platform),
      options_(options),
      selected_(set.size(), false),
      area_budget_(platform.fpga.budget_gates()) {}

void SelectionState::AppendRejection(std::string reason) {
  result_.rejected.push_back(std::move(reason));
}

bool SelectionState::TrySelect(std::size_t id, SelectedBy reason) {
  Check(id < set_.size(), "SelectionState::TrySelect: bad id");
  const Candidate& candidate = set_.candidates()[id];
  if (selected_[id]) return false;
  // A region nested inside (or containing) an already-selected region is
  // already covered by that hardware.
  for (const ir::Block* block : candidate.region.blocks) {
    if (selected_blocks_.count(block) != 0) {
      selected_[id] = true;  // subsumed
      return false;
    }
  }
  const auto& synthesized = set_.Synthesize(id, options_.synth);
  if (!synthesized.ok()) {
    result_.rejected.push_back(candidate.region.name + ": " +
                               synthesized.status().message());
    return false;
  }
  if (area_used_ + synthesized.value().area.total_gates > area_budget_) {
    result_.rejected.push_back(candidate.region.name +
                               ": area constraint violated");
    return false;
  }
  // Hardware suitability (paper §3, third step only): a greedy addition
  // must pay off even with worst-case (non-resident) memory traffic.
  // Step-1 kernels are selected purely by frequency, as in the paper; the
  // alias step then fixes their memory placement.  Search strategies
  // (kOptimal / kAnnealing) gate profitability through their objective.
  if (reason == SelectedBy::kGreedy) {
    const double fpga_hz =
        std::min(synthesized.value().clock_mhz, platform_.fpga.clock_mhz_cap) *
        1e6;
    const double hw_seconds =
        (static_cast<double>(synthesized.value().hw_cycles) +
         static_cast<double>(candidate.invocations) *
             platform_.comm.setup_cycles +
         static_cast<double>(candidate.mem_accesses) *
             platform_.comm.bus_penalty_cycles) /
        fpga_hz;
    const double sw_seconds = static_cast<double>(candidate.sw_cycles) /
                              (platform_.cpu.clock_mhz * 1e6);
    if (hw_seconds >= sw_seconds) {
      result_.rejected.push_back(candidate.region.name +
                                 ": not profitable in hardware");
      return false;
    }
  }
  SelectedRegion selected;
  selected.synthesized = synthesized.value();
  // The loop analysis lives only for the duration of the partitioning
  // call; the stored region must not carry a pointer into it.  The loop's
  // identity survives as region.blocks.front()->start_pc (the header
  // leader).
  selected.synthesized.region.loop = nullptr;
  selected.selected_by = reason;
  selected.sw_cycles = candidate.sw_cycles;
  selected.invocations = candidate.invocations;
  selected.comm_words = candidate.comm_words;
  selected.mem_accesses = candidate.mem_accesses;
  selected.alias_regions.assign(candidate.alias_regions.begin(),
                                candidate.alias_regions.end());
  area_used_ += selected.synthesized.area.total_gates;
  for (const ir::Block* block : candidate.region.blocks) {
    selected_blocks_.insert(block);
  }
  result_.hw.push_back(std::move(selected));
  selected_[id] = true;
  chosen_.push_back(id);
  return true;
}

void SelectionState::MarkCovered() {
  for (std::size_t id = 0; id < set_.size(); ++id) {
    if (selected_[id]) continue;
    for (const ir::Block* block : set_.candidates()[id].region.blocks) {
      if (selected_blocks_.count(block) != 0) {
        selected_[id] = true;
        break;
      }
    }
  }
}

void SelectionState::ComputeResidency() {
  // Arrays shared only among hardware kernels become FPGA-resident: no
  // DMA per invocation.  An array also touched by software code that
  // remains on the CPU must stay in main memory.
  std::map<std::pair<const ir::Function*, int>, bool> only_hw;
  for (const SelectedRegion& selected : result_.hw) {
    for (int id : selected.alias_regions) {
      only_hw[{selected.synthesized.region.function, id}] = true;
    }
  }
  for (std::size_t id = 0; id < set_.size(); ++id) {
    if (selected_[id]) continue;
    const Candidate& candidate = set_.candidates()[id];
    for (int region : candidate.alias_regions) {
      only_hw[{candidate.function, region}] = false;
    }
  }
  for (SelectedRegion& selected : result_.hw) {
    bool resident = true;
    for (int id : selected.alias_regions) {
      const auto it = only_hw.find({selected.synthesized.region.function, id});
      if (it == only_hw.end() || !it->second) {
        resident = false;
        break;
      }
    }
    selected.arrays_resident = resident && !selected.alias_regions.empty();
  }
}

PartitionResult SelectionState::Take() {
  result_.area_used_gates = area_used_;
  result_.area_budget_gates = area_budget_;
  result_.total_sw_cycles = set_.total_sw_cycles();
  result_.loop_coverage = set_.loop_coverage();
  return std::move(result_);
}

// ------------------------------------------------ search-strategy helpers

std::vector<std::size_t> GreedyChosenSubset(const CandidateSet& set,
                                            const Platform& platform,
                                            const PartitionOptions& options) {
  SelectionState greedy(set, platform, options);
  PaperGreedySelect(set, greedy, options);
  std::vector<std::size_t> chosen = greedy.chosen();
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

ViableCandidates FilterViableCandidates(const CandidateSet& set,
                                        const Platform& platform,
                                        const PartitionOptions& options) {
  ViableCandidates viable;
  const double budget = platform.fpga.budget_gates();
  for (std::size_t id = 0; id < set.size(); ++id) {
    const Candidate& candidate = set.candidates()[id];
    if (candidate.sw_cycles == 0) continue;
    const auto& synthesized = set.Synthesize(id, options.synth);
    if (!synthesized.ok()) {
      viable.infeasible_reasons.push_back(candidate.region.name + ": " +
                                          synthesized.status().message());
      continue;
    }
    if (synthesized.value().area.total_gates > budget) {
      viable.infeasible_reasons.push_back(candidate.region.name +
                                          ": area constraint violated");
      continue;
    }
    viable.ids.push_back(id);
  }
  return viable;
}

PartitionResult CommitSubset(const CandidateSet& set, const Platform& platform,
                             const PartitionOptions& options,
                             const std::vector<std::size_t>& subset,
                             SelectedBy reason, const ViableCandidates& viable,
                             const std::string& excluded_reason,
                             std::vector<std::string> extra_rejections) {
  SelectionState state(set, platform, options);
  for (std::size_t id : subset) {
    const bool committed = state.TrySelect(id, reason);
    Check(committed, "CommitSubset: winning subset failed to commit");
  }
  state.MarkCovered();
  state.ComputeResidency();
  for (std::size_t id : viable.ids) {
    if (state.selected(id)) continue;
    state.AppendRejection(set.candidates()[id].region.name + ": " +
                          excluded_reason);
  }
  for (std::string& rejection : extra_rejections) {
    state.AppendRejection(std::move(rejection));
  }
  for (const std::string& rejection : viable.infeasible_reasons) {
    state.AppendRejection(rejection);
  }
  return state.Take();
}

// -------------------------------------------------------- EvaluateSubset

std::optional<AppEstimate> EvaluateSubset(
    const CandidateSet& set, const std::vector<std::size_t>& subset,
    const Platform& platform, const PartitionOptions& options) {
  // Feasibility: pairwise overlap-free and within the area budget.
  double area = 0.0;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t j = i + 1; j < subset.size(); ++j) {
      if (set.Overlaps(subset[i], subset[j])) return std::nullopt;
    }
    const auto& synthesized = set.Synthesize(subset[i], options.synth);
    if (!synthesized.ok()) return std::nullopt;
    area += synthesized.value().area.total_gates;
  }
  if (area > platform.fpga.budget_gates()) return std::nullopt;

  // Residency under this subset, mirroring the alias step: an array is
  // FPGA-resident iff no candidate left in software (i.e. neither selected
  // nor overlapping a selected region) touches it.
  std::vector<bool> covered(set.size(), false);
  for (std::size_t id : subset) covered[id] = true;
  for (std::size_t id = 0; id < set.size(); ++id) {
    if (covered[id]) continue;
    for (std::size_t sel : subset) {
      if (set.Overlaps(id, sel)) {
        covered[id] = true;
        break;
      }
    }
  }
  std::set<std::pair<const ir::Function*, int>> sw_arrays;
  for (std::size_t id = 0; id < set.size(); ++id) {
    if (covered[id]) continue;
    const Candidate& candidate = set.candidates()[id];
    for (int region : candidate.alias_regions) {
      sw_arrays.insert({candidate.function, region});
    }
  }

  std::vector<KernelEstimate> kernels;
  kernels.reserve(subset.size());
  for (std::size_t id : subset) {
    const Candidate& candidate = set.candidates()[id];
    const auto& synthesized = set.Synthesize(id, options.synth);
    bool resident = !candidate.alias_regions.empty();
    for (int region : candidate.alias_regions) {
      if (sw_arrays.count({candidate.function, region}) != 0) {
        resident = false;
        break;
      }
    }
    KernelEstimate kernel;
    kernel.name = candidate.region.name;
    kernel.sw_cycles = candidate.sw_cycles;
    kernel.hw_cycles = synthesized.value().hw_cycles;
    kernel.invocations = candidate.invocations;
    kernel.comm_words = candidate.comm_words;
    kernel.mem_accesses = candidate.mem_accesses;
    kernel.arrays_resident = resident;
    kernel.hw_clock_mhz =
        std::min(synthesized.value().clock_mhz, platform.fpga.clock_mhz_cap);
    kernel.area_gates = synthesized.value().area.total_gates;
    kernels.push_back(std::move(kernel));
  }
  return CombineEstimates(platform, set.total_sw_cycles(), std::move(kernels));
}

}  // namespace b2h::partition
