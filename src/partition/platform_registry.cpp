#include "partition/platform_registry.hpp"

#include <mutex>

#include "support/error.hpp"

namespace b2h::partition {

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

PlatformRegistry& PlatformRegistry::Global() {
  static PlatformRegistry* registry = [] {
    auto* r = new PlatformRegistry();
    r->Register("mips200-xc2v1000", Platform::WithCpuMhz(200.0));
    r->Register("mips40", Platform::WithCpuMhz(40.0));
    r->Register("mips400", Platform::WithCpuMhz(400.0));
    return r;
  }();
  return *registry;
}

void PlatformRegistry::Register(std::string name, Platform platform) {
  Check(!name.empty(), "PlatformRegistry::Register: empty name");
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.platform = std::move(platform);
      return;
    }
  }
  entries_.push_back({std::move(name), std::move(platform)});
}

std::optional<Platform> PlatformRegistry::Find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.platform;
  }
  return std::nullopt;
}

std::vector<std::string> PlatformRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

}  // namespace b2h::partition
