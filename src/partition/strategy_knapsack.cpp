// Exact region selection under the gate budget: branch-and-bound over the
// candidate regions.
//
// The paper deliberately avoids global optimization ("simple and fast", in
// contrast to Henkel and Kalavade/Lee); this strategy is the quantified
// other side of that trade: it searches overlap-free candidate subsets that
// fit the FPGA area budget and keeps the subset with the best objective
// score.  Exactness comes cheap on this suite — candidate counts are the
// handful of loops per benchmark — and two safeguards keep it robust:
//
//   * the paper-greedy solution seeds the incumbent, so the result is never
//     worse than the heuristic it is being compared against;
//   * inputs with more than StrategyOptions::exact_candidate_cap viable
//     candidates are truncated to the highest-cycle ones (recorded in
//     `rejected`) instead of exploding the search.
//
// For the speedup objective the search prunes with an admissible bound
// (best-case saved seconds ignore all communication costs); energy-style
// objectives are not monotone in saved time, so they fall back to the
// feasibility-pruned exhaustive walk.
#include <algorithm>
#include <cmath>

#include "partition/candidates.hpp"
#include "partition/strategy.hpp"
#include "support/error.hpp"

namespace b2h::partition {
namespace {

class KnapsackStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "knapsack-optimal";
  }

  [[nodiscard]] Result<PartitionResult> Partition(
      const decomp::DecompiledProgram& program,
      const mips::ExecProfile& profile, const Platform& platform,
      const PartitionOptions& options,
      const StrategyOptions& strategy_options) const override {
    const std::shared_ptr<const CandidateSet> shared =
        ObtainCandidates(program, profile, strategy_options.candidates);
    const CandidateSet& set = *shared;
    const std::vector<Candidate>& candidates = set.candidates();
    const double budget = platform.fpga.budget_gates();

    ViableCandidates viable_set =
        FilterViableCandidates(set, platform, options);
    std::vector<std::size_t>& viable = viable_set.ids;

    // The admissible saved-seconds bound only exists for the speedup
    // objective (energy is not monotone in saved time); the unbounded
    // exhaustive fallback gets a tighter candidate cap so a pathological
    // input cannot explode the walk to 2^20 subset evaluations.
    const bool use_bound =
        strategy_options.objective == Objective::kSpeedup;
    const std::size_t cap =
        use_bound ? strategy_options.exact_candidate_cap
                  : std::min<std::size_t>(strategy_options.exact_candidate_cap,
                                          16);
    std::vector<std::size_t> capped;
    if (viable.size() > cap) {
      capped.assign(viable.begin() + cap, viable.end());
      viable.resize(cap);
    }

    // Incumbent: the paper-greedy subset, scored under this strategy's
    // whole-subset residency rules.  Guarantees result >= greedy.
    std::vector<std::size_t> best = GreedyChosenSubset(set, platform, options);
    const auto score_of = [&](const std::vector<std::size_t>& subset) {
      const auto estimate = EvaluateSubset(set, subset, platform, options);
      Check(estimate.has_value(), "knapsack: incumbent subset infeasible");
      return *estimate;
    };
    AppEstimate best_estimate = score_of(best);
    double best_score =
        ObjectiveScore(best_estimate, strategy_options.objective);
    double best_saved = best_estimate.sw_time - best_estimate.partitioned_time;

    // Per-candidate best case (for the admissible speedup bound): saved
    // seconds with zero communication cost.
    const double cpu_hz = platform.cpu.clock_mhz * 1e6;
    std::vector<double> best_case(viable.size(), 0.0);
    for (std::size_t v = 0; v < viable.size(); ++v) {
      const Candidate& candidate = candidates[viable[v]];
      const auto& synthesized = set.Synthesize(viable[v], options.synth);
      const double fpga_hz =
          std::min(synthesized.value().clock_mhz,
                   platform.fpga.clock_mhz_cap) *
          1e6;
      best_case[v] =
          static_cast<double>(candidate.sw_cycles) / cpu_hz -
          static_cast<double>(synthesized.value().hw_cycles) / fpga_hz;
    }
    // suffix_best[v]: most saved seconds any subset of viable[v..] can add.
    std::vector<double> suffix_best(viable.size() + 1, 0.0);
    for (std::size_t v = viable.size(); v-- > 0;) {
      suffix_best[v] = suffix_best[v + 1] + std::max(0.0, best_case[v]);
    }

    std::vector<std::size_t> taken;
    double taken_best_case = 0.0;
    double taken_area = 0.0;

    const std::function<void(std::size_t)> search = [&](std::size_t v) {
      if (use_bound && taken_best_case + suffix_best[v] <= best_saved) {
        return;  // even a communication-free extension cannot win
      }
      if (v == viable.size()) {
        const auto estimate = EvaluateSubset(set, taken, platform, options);
        if (!estimate.has_value()) return;  // unreachable: kept feasible
        const double score =
            ObjectiveScore(*estimate, strategy_options.objective);
        if (score > best_score) {
          best_score = score;
          best_saved = estimate->sw_time - estimate->partitioned_time;
          best = taken;
        }
        return;
      }
      const std::size_t id = viable[v];
      const auto& synthesized = set.Synthesize(id, options.synth);
      const double gates = synthesized.value().area.total_gates;
      bool feasible = taken_area + gates <= budget;
      for (std::size_t other : taken) {
        if (!feasible) break;
        if (set.Overlaps(id, other)) feasible = false;
      }
      if (feasible) {
        taken.push_back(id);
        taken_area += gates;
        taken_best_case += best_case[v];
        search(v + 1);
        taken.pop_back();
        taken_area -= gates;
        taken_best_case -= best_case[v];
      }
      search(v + 1);
    };
    search(0);

    // Commit the winning subset (descending software cycles keeps report
    // order aligned with the other strategies).
    std::sort(best.begin(), best.end());
    std::vector<std::string> cap_rejections;
    for (std::size_t id : capped) {
      // The greedy-seeded incumbent may commit a beyond-cap candidate; a
      // selected region must not also appear in the rejection log.
      if (std::find(best.begin(), best.end(), id) != best.end()) continue;
      cap_rejections.push_back(candidates[id].region.name +
                               ": beyond exact-search candidate cap");
    }
    return CommitSubset(set, platform, options, best, SelectedBy::kOptimal,
                        viable_set, "excluded by optimal selection",
                        std::move(cap_rejections));
  }

  [[nodiscard]] std::string OptionsFingerprint(
      const StrategyOptions& options) const override {
    return "cap=" + std::to_string(options.exact_candidate_cap);
  }
};

}  // namespace

std::unique_ptr<Strategy> MakeKnapsackStrategy() {
  return std::make_unique<KnapsackStrategy>();
}

}  // namespace b2h::partition
