// Platform models: the paper's hypothetical MIPS + Xilinx Virtex-II pair.
//
// "Instead of using a commercial platform, we utilized a hypothetical
//  platform consisting of a MIPS microprocessor and Xilinx Virtex II FPGA.
//  Using a hypothetical platform allows us to more easily evaluate
//  different types of platforms with different clock speeds and FPGA
//  sizes."  (paper §4)
//
// The energy model is the standard embedded one used across the
// warp-processing papers: CPU active power scales with frequency, the CPU
// idles (clock-gated, at a fraction of active power) while the FPGA runs,
// FPGA power is static + area/clock-proportional dynamic.  Constants are
// calibrated so the 200 MHz platform lands near the paper's reported
// averages; the 40/400 MHz numbers then *follow from the model* (see
// EXPERIMENTS.md).
#pragma once

#include <string>

#include "mips/simulator.hpp"

namespace b2h::partition {

struct CpuModel {
  std::string name = "MIPS";
  double clock_mhz = 200.0;
  /// Active power: base + per-MHz dynamic component (W).
  double base_watts = 0.04;
  double watts_per_mhz = 0.0023;
  /// Fraction of active power drawn while stalled waiting for the FPGA.
  double idle_fraction = 0.45;
  mips::CycleModel cycle_model;

  [[nodiscard]] double active_watts() const {
    return base_watts + watts_per_mhz * clock_mhz;
  }
  [[nodiscard]] double idle_watts() const {
    return active_watts() * idle_fraction;
  }
};

struct FpgaModel {
  std::string name = "Xilinx Virtex-II XC2V1000";
  /// Marketing "system gates" are mostly RAM; the logic budget available
  /// to synthesized kernels is far smaller.
  double capacity_gates = 1'000'000.0;
  double usable_fraction = 0.30;
  double clock_mhz_cap = 100.0;
  double static_watts = 0.13;
  /// Dynamic power per 1000 equivalent gates at 100 MHz.
  double watts_per_kgate_100mhz = 0.0075;

  [[nodiscard]] double budget_gates() const {
    return capacity_gates * usable_fraction;
  }
  [[nodiscard]] double dynamic_watts(double gates, double clock_mhz) const {
    return watts_per_kgate_100mhz * (gates / 1000.0) * (clock_mhz / 100.0);
  }
};

struct CommModel {
  /// Cycles (at the FPGA clock) to start a kernel and return results.
  double setup_cycles = 24.0;
  /// One-time DMA cost per 32-bit word to move an array into FPGA BRAM
  /// (paid once when the alias step makes arrays resident).
  double cycles_per_word = 1.0;
  /// Extra cycles per hardware memory access when the array could NOT be
  /// made resident and must be reached over the system bus.
  double bus_penalty_cycles = 3.0;
};

struct Platform {
  CpuModel cpu;
  FpgaModel fpga;
  CommModel comm;

  /// The paper's three evaluation points: 40, 200 (default), 400 MHz.
  [[nodiscard]] static Platform WithCpuMhz(double mhz) {
    Platform platform;
    platform.cpu.clock_mhz = mhz;
    return platform;
  }
};

}  // namespace b2h::partition
