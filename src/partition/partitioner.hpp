// The paper's three-step hardware/software partitioner (§3).
//
//   "Our partitioning algorithm proceeds in three steps.  In the first
//    step, we use profiling results to identify the most frequent few
//    loops, which generally correspond to 90 percent of execution ...
//    In the second step, we use alias information to find regions of code
//    that access the same memory locations as the loops in the hardware
//    partition.  If space allows, we include these regions ... so that the
//    required memory locations can be moved to memory within the FPGA ...
//    In the third step, we continue to add regions to the hardware
//    partition based on profiling results and hardware suitability until
//    the area constraint is violated."
//
// Deliberately simple and fast (the paper targets eventual use in *dynamic*
// partitioning), in contrast to the cited global optimization approaches
// (Henkel; Kalavade/Lee).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "decomp/pipeline.hpp"
#include "partition/estimate.hpp"
#include "partition/platform.hpp"
#include "synth/synth.hpp"

namespace b2h::partition {

struct PartitionOptions {
  double coverage_target = 0.90;  ///< the 90-10 rule
  synth::SynthOptions synth;
  bool enable_alias_step = true;   ///< step 2
  bool enable_greedy_step = true;  ///< step 3
};

enum class SelectedBy : std::uint8_t {
  kFrequency,  ///< paper step 1: most frequent loops
  kAlias,      ///< paper step 2: alias-connected regions
  kGreedy,     ///< paper step 3: greedy fill under the area budget
  kOptimal,    ///< chosen by the knapsack-optimal strategy
  kAnnealing,  ///< chosen by the annealing strategy
};

struct SelectedRegion {
  synth::SynthesizedRegion synthesized;
  SelectedBy selected_by = SelectedBy::kFrequency;
  std::uint64_t sw_cycles = 0;
  std::uint64_t invocations = 1;
  std::uint64_t comm_words = 0;
  std::uint64_t mem_accesses = 0;
  bool arrays_resident = false;
  std::vector<int> alias_regions;  ///< region ids the kernel touches
};

struct PartitionResult {
  std::vector<SelectedRegion> hw;
  std::vector<std::string> rejected;  ///< regions skipped and why
  double area_used_gates = 0.0;
  double area_budget_gates = 0.0;
  std::uint64_t total_sw_cycles = 0;
  double loop_coverage = 0.0;  ///< fraction of cycles in candidate loops
};

/// Run the paper's three-step partitioner over a decompiled program with
/// its profile.  Equivalent to the "paper-greedy" entry of the
/// partition::StrategyRegistry (strategy.hpp), which also offers optimal
/// and randomized selection policies behind the same PartitionResult.
[[nodiscard]] Result<PartitionResult> PartitionProgram(
    const decomp::DecompiledProgram& program,
    const mips::ExecProfile& profile, const Platform& platform,
    const PartitionOptions& options = {});

/// Fold a partition into the application-level performance/energy numbers.
[[nodiscard]] AppEstimate EstimatePartition(const PartitionResult& partition,
                                            const Platform& platform);

/// Rejection reasons deduplicated in first-seen order, for display: the
/// greedy strategy may attempt — and reject — the same candidate in more
/// than one step.
[[nodiscard]] std::vector<std::string> UniqueRejections(
    const std::vector<std::string>& rejected);

}  // namespace b2h::partition
