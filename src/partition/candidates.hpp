// Candidate enumeration and selection machinery shared by every
// partitioning strategy.
//
// Historically this lived inline in PartitionProgram.  The exploration
// engine needs the same candidate scan (loops + analyses + profile
// weights), the same selection bookkeeping (overlap subsumption, area
// accounting, rejection reasons), and the same array-residency rules for
// *multiple* selection policies, so the machinery is factored out here:
//
//   CandidateSet   — one scan of the decompiled program: every loop (nests
//                    included) with its profile weight, alias regions, and
//                    a memoized synthesis result.
//   SelectionState — commit-side bookkeeping with semantics identical to
//                    the original three-step partitioner's try_select.
//   EvaluateSubset — score an arbitrary overlap-free candidate subset the
//                    way EstimatePartition would, for search strategies.
//
// Synthesis sharing (the seed-sweep fix): candidate synthesis is memoized
// at the CandidateSet level, *beneath* the strategy layer — so strategies
// that receive the same CandidateSet instance (via
// StrategyOptions::candidates, populated from a CandidateSetPool) share
// every synthesis result.  A seed sweep over the annealing strategy — the
// exact repeated-request shape the b2h-serve daemon sees — synthesizes
// each candidate once total instead of once per seed.  The memo is
// mutex-guarded so pooled sets are safe under the Explorer's and the
// server's concurrent strategy invocations.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "decomp/alias.hpp"
#include "decomp/pipeline.hpp"
#include "ir/dominators.hpp"
#include "ir/loops.hpp"
#include "partition/estimate.hpp"
#include "partition/partitioner.hpp"
#include "synth/synth.hpp"

namespace b2h::partition {

/// One candidate loop region.  Pointers reference analyses owned by the
/// CandidateSet and IR owned by the DecompiledProgram; both must outlive
/// any use of the candidate.
struct Candidate {
  const ir::Function* function = nullptr;
  const ir::Loop* loop = nullptr;
  synth::HwRegion region;
  std::uint64_t sw_cycles = 0;
  std::uint64_t invocations = 1;
  std::set<int> alias_regions;
  std::uint64_t comm_words = 0;
  std::uint64_t mem_accesses = 0;  ///< profile-weighted loads+stores
};

class CandidateSet {
 public:
  /// Scan a decompiled program: gather candidate loops (whole nests
  /// included — overlaps are resolved at selection time) from functions
  /// reachable from main, annotate profiles, and order candidates by
  /// descending software cycles (stable: scan order breaks ties).
  [[nodiscard]] static CandidateSet Scan(
      const decomp::DecompiledProgram& program,
      const mips::ExecProfile& profile);

  [[nodiscard]] const std::vector<Candidate>& candidates() const {
    return candidates_;
  }
  [[nodiscard]] std::size_t size() const { return candidates_.size(); }
  [[nodiscard]] std::uint64_t total_sw_cycles() const {
    return total_sw_cycles_;
  }
  /// Cycles spent in outermost candidate loops (for the 90-10 coverage).
  [[nodiscard]] std::uint64_t loop_cycles_total() const {
    return loop_cycles_total_;
  }
  [[nodiscard]] double loop_coverage() const { return loop_coverage_; }

  [[nodiscard]] const decomp::AliasAnalysis& alias_for(
      const ir::Function* function) const;

  /// Memoized synthesis of candidate `id`: the first call synthesizes, later
  /// calls return the cached result (synthesis is deterministic, so the
  /// memo ignores `options` after the first call — sets shared through a
  /// CandidateSetPool are keyed on the partition-options hash to keep that
  /// sound).  Thread-safe: concurrent strategy invocations on a shared set
  /// serialize per call but compute each candidate exactly once.
  [[nodiscard]] const Result<synth::SynthesizedRegion>& Synthesize(
      std::size_t id, const synth::SynthOptions& options) const;

  /// Number of synthesis computations actually performed (memo misses) —
  /// the seed-sweep sharing tests key on this staying flat across seeds.
  [[nodiscard]] std::size_t synthesis_runs() const;

  /// True when candidates `a` and `b` share at least one block (nested or
  /// otherwise overlapping loop regions).  Thread-safe (lazy block-set
  /// build is guarded by the memo mutex).
  [[nodiscard]] bool Overlaps(std::size_t a, std::size_t b) const;

 private:
  std::vector<Candidate> candidates_;
  std::uint64_t total_sw_cycles_ = 0;
  std::uint64_t loop_cycles_total_ = 0;
  double loop_coverage_ = 0.0;

  // Analyses keyed/owned per reachable function.
  struct FunctionAnalyses {
    const ir::Function* function = nullptr;
    std::unique_ptr<ir::DominatorTree> dom;
    std::unique_ptr<ir::LoopForest> forest;
    std::unique_ptr<decomp::AliasAnalysis> alias;
  };
  std::vector<FunctionAnalyses> analyses_;

  // Guards the lazy memos below; owned through a pointer so CandidateSet
  // stays movable (Scan returns by value).
  mutable std::unique_ptr<std::mutex> memo_mutex_ =
      std::make_unique<std::mutex>();
  mutable std::size_t synthesis_runs_ = 0;
  mutable std::vector<std::optional<Result<synth::SynthesizedRegion>>>
      synth_memo_;
  mutable std::vector<std::set<const ir::Block*>> block_sets_;  // lazy
};

/// Shared candidate set for one Partition call: the pre-scanned set handed
/// down through StrategyOptions::candidates when the caller pools scans
/// (the exploration engine, the b2h-serve daemon), or a fresh scan
/// otherwise.  Every strategy obtains its set through this helper, which
/// is what moves synthesis memoization beneath the strategy layer.
[[nodiscard]] std::shared_ptr<const CandidateSet> ObtainCandidates(
    const decomp::DecompiledProgram& program, const mips::ExecProfile& profile,
    std::shared_ptr<const CandidateSet> shared);

/// Process-lifetime pool of CandidateSets keyed by (decompile artifact key,
/// partition-options hash).  Entries pin the decompiled program they point
/// into; a key is only served when the caller presents the SAME program
/// instance (a rehydrated program is a different instance and rebuilds the
/// entry), so pooled candidates can never dangle into a replaced program.
/// Bounded LRU so a long-lived server cannot accumulate unbounded IR.
class CandidateSetPool {
 public:
  struct Stats {
    std::size_t scans = 0;    ///< candidate scans actually performed
    std::size_t hits = 0;     ///< Obtain calls served by an existing entry
    std::size_t entries = 0;  ///< live entries
    /// Total synthesis computations across live + evicted entries — flat
    /// across a seed sweep when sharing works.
    std::size_t synthesis_runs = 0;
  };

  explicit CandidateSetPool(std::size_t max_entries = 16);

  [[nodiscard]] std::shared_ptr<const CandidateSet> Obtain(
      const std::string& key,
      std::shared_ptr<const decomp::DecompiledProgram> program,
      const mips::ExecProfile& profile);

  [[nodiscard]] Stats stats() const;
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const CandidateSet> set;
    std::shared_ptr<const decomp::DecompiledProgram> program;
    std::uint64_t last_use = 0;
  };

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::uint64_t tick_ = 0;
  std::size_t scans_ = 0;
  std::size_t hits_ = 0;
  std::size_t retired_synthesis_runs_ = 0;  ///< from evicted entries
  std::unordered_map<std::string, Entry> entries_;
};

/// Commit-side selection bookkeeping.  TrySelect reproduces the original
/// partitioner's try_select semantics exactly: overlap subsumption, lazily
/// memoized synthesis, area accounting, the greedy profitability gate, and
/// the order and wording of rejection reasons.
class SelectionState {
 public:
  SelectionState(const CandidateSet& set, const Platform& platform,
                 const PartitionOptions& options);

  /// Attempt to move candidate `id` to hardware.  Returns true when the
  /// candidate was committed; failures append to the rejection log.  The
  /// profitability gate applies to SelectedBy::kGreedy only (paper §3:
  /// step-1 kernels are selected purely by frequency).
  bool TrySelect(std::size_t id, SelectedBy reason);

  /// True when `id` was committed OR subsumed by a committed region.
  [[nodiscard]] bool selected(std::size_t id) const { return selected_[id]; }
  [[nodiscard]] const std::vector<std::size_t>& chosen() const {
    return chosen_;
  }
  [[nodiscard]] double area_used() const { return area_used_; }
  [[nodiscard]] double area_budget() const { return area_budget_; }

  void AppendRejection(std::string reason);

  /// Mark every unselected candidate that overlaps committed hardware as
  /// covered, so ComputeResidency does not treat it as software.  The
  /// greedy strategy gets this marking as a side effect of attempting
  /// every candidate; subset-search strategies call this explicitly after
  /// committing their chosen subset.
  void MarkCovered();

  /// Recompute SelectedRegion::arrays_resident over the current hardware
  /// set: arrays shared only among hardware kernels (and regions they
  /// subsume) become FPGA-resident; arrays also touched by software-side
  /// candidates must stay in main memory.
  void ComputeResidency();

  /// Finalize: fills the area/coverage summary fields and returns the
  /// result (the state is spent afterwards).
  [[nodiscard]] PartitionResult Take();

 private:
  const CandidateSet& set_;
  const Platform& platform_;
  const PartitionOptions& options_;
  PartitionResult result_;
  std::vector<bool> selected_;
  std::vector<std::size_t> chosen_;
  std::set<const ir::Block*> selected_blocks_;
  double area_used_ = 0.0;
  double area_budget_ = 0.0;
};

/// The paper's three selection steps (frequency, alias, greedy fill) run
/// against a SelectionState.  Defined with the paper-greedy strategy;
/// search strategies reuse it to seed their incumbent/start subset.
void PaperGreedySelect(const CandidateSet& set, SelectionState& state,
                       const PartitionOptions& options);

/// The greedy subset as a sorted id list (runs PaperGreedySelect on a
/// scratch state) — the incumbent/start point of the search strategies.
[[nodiscard]] std::vector<std::size_t> GreedyChosenSubset(
    const CandidateSet& set, const Platform& platform,
    const PartitionOptions& options);

/// Candidates a search strategy may select: profiled (sw_cycles > 0),
/// synthesizable, and individually within the area budget.  Everything
/// else carries a rejection reason (same wording the greedy strategy
/// uses) for the final result.
struct ViableCandidates {
  std::vector<std::size_t> ids;  ///< candidate order = sw_cycles descending
  std::vector<std::string> infeasible_reasons;
};
[[nodiscard]] ViableCandidates FilterViableCandidates(
    const CandidateSet& set, const Platform& platform,
    const PartitionOptions& options);

/// Shared commit epilogue of the search strategies: select `subset` (sorted
/// ascending = descending software cycles) with `reason`, mark regions the
/// subset covers, recompute residency, and append rejections — viable
/// candidates left in software get `excluded_reason`, then
/// `extra_rejections`, then the filter's infeasible reasons.
[[nodiscard]] PartitionResult CommitSubset(
    const CandidateSet& set, const Platform& platform,
    const PartitionOptions& options, const std::vector<std::size_t>& subset,
    SelectedBy reason, const ViableCandidates& viable,
    const std::string& excluded_reason,
    std::vector<std::string> extra_rejections = {});

/// Exact subset scoring for search strategies: synthesize every member,
/// apply the same residency rules as the alias step, and combine into an
/// application estimate.  Returns nullopt when any member fails synthesis
/// or the subset violates the area budget or overlaps internally.
[[nodiscard]] std::optional<AppEstimate> EvaluateSubset(
    const CandidateSet& set, const std::vector<std::size_t>& subset,
    const Platform& platform, const PartitionOptions& options);

}  // namespace b2h::partition
