// Pluggable region-selection strategies.
//
// The paper's partitioner is "deliberately simple and fast", explicitly
// contrasted with global optimization approaches (Henkel; Kalavade/Lee)
// that it never quantifies against.  Extracting the selection policy behind
// this interface lets the exploration engine answer "how much speedup does
// the simple heuristic leave on the table?" — the registry ships three
// backends:
//
//   "paper-greedy"     — the paper's three-step heuristic (partitioner.hpp);
//                        bit-identical to PartitionProgram by construction.
//   "knapsack-optimal" — branch-and-bound over the candidate regions under
//                        the gate budget; exact on the suite's candidate
//                        counts (falls back to the top
//                        StrategyOptions::exact_candidate_cap candidates on
//                        pathological inputs, and never returns a selection
//                        worse than paper-greedy: the greedy solution seeds
//                        the incumbent).
//   "annealing"        — randomized refinement of the greedy solution with
//                        a seeded RNG; deterministic under a fixed seed.
//
// The registry is the third process-wide extension point next to the pass
// registry (decomp::PassManager) and the platform registry
// (partition::PlatformRegistry).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "partition/partitioner.hpp"

namespace b2h::partition {

class CandidateSet;  // candidates.hpp

/// What an objective-driven strategy maximizes.  Every strategy still
/// reports all metrics (the estimate carries time, energy, and area); the
/// objective only steers the search.
enum class Objective : std::uint8_t {
  kSpeedup,      ///< application speedup over software-only
  kEnergy,       ///< minimize partitioned energy
  kEnergyDelay,  ///< minimize energy x delay product
};

[[nodiscard]] std::string_view ObjectiveName(Objective objective);
/// Parse "speedup" / "energy" / "edp" (nullopt on anything else).
[[nodiscard]] std::optional<Objective> ParseObjective(std::string_view name);

/// Scalar score of an application estimate under an objective.
/// Higher is always better (energy-style objectives are negated).
[[nodiscard]] double ObjectiveScore(const AppEstimate& estimate,
                                    Objective objective);

struct StrategyOptions {
  Objective objective = Objective::kSpeedup;
  std::uint64_t seed = 1;                ///< annealing determinism
  unsigned annealing_iterations = 2000;  ///< proposal count
  /// Candidate-count ceiling for the exact search; above it the knapsack
  /// strategy keeps the highest-cycle candidates only (noted in `rejected`).
  std::size_t exact_candidate_cap = 20;
  /// Pre-scanned candidate machinery for the (program, profile) pair this
  /// call partitions, normally served from a CandidateSetPool keyed on the
  /// decompile artifact + partition-options hash.  Strategies sharing one
  /// set share its synthesis memo, so e.g. an annealing seed sweep
  /// synthesizes each candidate once total.  Null = scan fresh (the
  /// legacy PartitionProgram path).  NOT part of any artifact key or
  /// OptionsFingerprint: it changes where work happens, never results.
  std::shared_ptr<const CandidateSet> candidates;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// False when the strategy ignores StrategyOptions::objective (the paper
  /// heuristic).  The artifact cache uses this to collapse per-objective
  /// sweep points onto one artifact.
  [[nodiscard]] virtual bool objective_sensitive() const { return true; }

  /// Fingerprint of the StrategyOptions fields this strategy consumes
  /// *beyond* the objective (seed, iteration counts, search caps, ...).
  /// Cached sweep artifacts are keyed on it, so knobs a strategy ignores —
  /// e.g. changing the annealing seed — never invalidate its entries.
  [[nodiscard]] virtual std::string OptionsFingerprint(
      const StrategyOptions& /*options*/) const {
    return "";
  }

  [[nodiscard]] virtual Result<PartitionResult> Partition(
      const decomp::DecompiledProgram& program,
      const mips::ExecProfile& profile, const Platform& platform,
      const PartitionOptions& options,
      const StrategyOptions& strategy_options) const = 0;
};

/// Process-wide strategy registry (third extension point, alongside the
/// pass and platform registries).  Built-ins are registered on first use.
class StrategyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Strategy>()>;

  static StrategyRegistry& Global();

  /// Register or replace a named strategy factory.
  void Register(std::string name, Factory factory);

  /// Instantiate a strategy (nullptr when the name is unknown).
  [[nodiscard]] std::unique_ptr<Strategy> Create(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::string name;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

// Built-in strategy factories (also reachable through the registry).
[[nodiscard]] std::unique_ptr<Strategy> MakePaperGreedyStrategy();
[[nodiscard]] std::unique_ptr<Strategy> MakeKnapsackStrategy();
[[nodiscard]] std::unique_ptr<Strategy> MakeAnnealingStrategy();

}  // namespace b2h::partition
