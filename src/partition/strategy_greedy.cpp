// The paper's three-step heuristic as a pluggable Strategy.
//
// This is a faithful transplant of the original PartitionProgram body onto
// the shared CandidateSet/SelectionState machinery: same candidate order,
// same attempt order, same rejection wording — PartitionProgram (which now
// delegates here) remains bit-identical to the pre-strategy implementation,
// and the tests assert parity between the two entry points.
#include <set>
#include <utility>

#include "partition/candidates.hpp"
#include "partition/strategy.hpp"

namespace b2h::partition {

void PaperGreedySelect(const CandidateSet& set, SelectionState& state,
                       const PartitionOptions& options) {
  const std::vector<Candidate>& candidates = set.candidates();

  // ---- Step 1: most frequent loops up to the coverage target -------------
  std::uint64_t covered = 0;
  for (std::size_t id = 0; id < candidates.size(); ++id) {
    if (set.loop_cycles_total() == 0) break;
    if (static_cast<double>(covered) >=
        options.coverage_target *
            static_cast<double>(set.loop_cycles_total())) {
      break;
    }
    if (candidates[id].sw_cycles == 0) break;
    if (state.TrySelect(id, SelectedBy::kFrequency)) {
      covered += candidates[id].sw_cycles;
    }
  }

  // ---- Step 2: alias-connected regions -----------------------------------
  if (options.enable_alias_step) {
    // Arrays touched by the current hardware partition.
    std::set<std::pair<const ir::Function*, int>> hw_arrays;
    for (std::size_t id : state.chosen()) {
      for (int region : candidates[id].alias_regions) {
        hw_arrays.insert({candidates[id].function, region});
      }
    }
    for (std::size_t id = 0; id < candidates.size(); ++id) {
      if (state.selected(id)) continue;
      bool shares = false;
      for (int region : candidates[id].alias_regions) {
        if (hw_arrays.count({candidates[id].function, region}) != 0) {
          shares = true;
          break;
        }
      }
      if (shares) {
        if (state.TrySelect(id, SelectedBy::kAlias)) {
          // All kernels touching these arrays can now keep them resident.
        }
      }
    }
    state.ComputeResidency();
  }

  // ---- Step 3: greedy fill until the area constraint ---------------------
  if (options.enable_greedy_step) {
    for (std::size_t id = 0; id < candidates.size(); ++id) {
      if (state.selected(id) || candidates[id].sw_cycles == 0) continue;
      (void)state.TrySelect(id, SelectedBy::kGreedy);
    }
  }
}

namespace {

class PaperGreedyStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "paper-greedy";
  }
  // The paper heuristic always chases frequency/coverage; the objective
  // knob does not change its answer.
  [[nodiscard]] bool objective_sensitive() const override { return false; }

  [[nodiscard]] Result<PartitionResult> Partition(
      const decomp::DecompiledProgram& program,
      const mips::ExecProfile& profile, const Platform& platform,
      const PartitionOptions& options,
      const StrategyOptions& strategy_options) const override {
    const std::shared_ptr<const CandidateSet> shared =
        ObtainCandidates(program, profile, strategy_options.candidates);
    const CandidateSet& set = *shared;
    SelectionState state(set, platform, options);
    PaperGreedySelect(set, state, options);
    return state.Take();
  }
};

}  // namespace

std::unique_ptr<Strategy> MakePaperGreedyStrategy() {
  return std::make_unique<PaperGreedyStrategy>();
}

}  // namespace b2h::partition
