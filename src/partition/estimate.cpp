#include "partition/estimate.hpp"

#include <algorithm>
#include <set>

namespace b2h::partition {

std::uint64_t RegionSwCycles(const mips::ExecProfile& profile,
                             const std::vector<std::uint32_t>& all_leaders,
                             const std::vector<std::uint32_t>& region_leaders) {
  std::vector<std::uint32_t> sorted = all_leaders;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const std::set<std::uint32_t> region(region_leaders.begin(),
                                       region_leaders.end());
  std::uint64_t cycles = 0;
  for (std::size_t index = 0; index < profile.cycle_count.size(); ++index) {
    if (profile.cycle_count[index] == 0) continue;
    const std::uint32_t pc =
        mips::kTextBase + static_cast<std::uint32_t>(index) * 4u;
    // Leader of this pc = greatest leader <= pc.
    auto it = std::upper_bound(sorted.begin(), sorted.end(), pc);
    if (it == sorted.begin()) continue;
    --it;
    if (region.count(*it) != 0) cycles += profile.cycle_count[index];
  }
  return cycles;
}

std::uint64_t ArrayFootprintWords(const decomp::AliasAnalysis& alias,
                                  const std::set<int>& regions,
                                  const mips::SoftBinary& binary) {
  // Sorted data symbol addresses to derive extents.
  std::vector<std::uint32_t> addresses;
  for (const auto& [name, addr] : binary.symbols) {
    if (addr >= mips::kDataBase) addresses.push_back(addr);
  }
  std::sort(addresses.begin(), addresses.end());
  const std::uint32_t data_end =
      mips::kDataBase + static_cast<std::uint32_t>(binary.data.size());

  std::uint64_t words = 0;
  for (int id : regions) {
    if (id < 0 || static_cast<std::size_t>(id) >= alias.regions().size()) {
      words += 64;  // unknown region: charge a default block
      continue;
    }
    const decomp::MemRegion& region = alias.regions()[id];
    if (region.kind != decomp::MemRegion::Kind::kGlobal) continue;
    const auto base = static_cast<std::uint32_t>(region.key);
    auto it = std::upper_bound(addresses.begin(), addresses.end(), base);
    const std::uint32_t end = it != addresses.end() ? *it : data_end;
    words += std::max<std::uint32_t>(1, (end - base) / 4u);
  }
  return words;
}

AppEstimate CombineEstimates(const Platform& platform,
                             std::uint64_t total_sw_cycles,
                             std::vector<KernelEstimate> kernels) {
  AppEstimate app;
  const double cpu_hz = platform.cpu.clock_mhz * 1e6;
  app.sw_time = static_cast<double>(total_sw_cycles) / cpu_hz;

  std::uint64_t moved_cycles = 0;
  double hw_time_total = 0.0;
  double kernel_speedup_sum = 0.0;
  double hw_power = platform.fpga.static_watts;
  for (KernelEstimate& kernel : kernels) {
    const double fpga_hz = kernel.hw_clock_mhz * 1e6;
    kernel.sw_time = static_cast<double>(kernel.sw_cycles) / cpu_hz;
    // Start/stop handshakes per invocation.  Resident arrays pay a single
    // up-front DMA; non-resident arrays pay a bus penalty on every access.
    const double comm_cycles =
        static_cast<double>(kernel.invocations) *
            platform.comm.setup_cycles +
        (kernel.arrays_resident
             ? static_cast<double>(kernel.comm_words) *
                   platform.comm.cycles_per_word
             : static_cast<double>(kernel.mem_accesses) *
                   platform.comm.bus_penalty_cycles);
    kernel.hw_time =
        (static_cast<double>(kernel.hw_cycles) + comm_cycles) / fpga_hz;
    kernel.kernel_speedup =
        kernel.hw_time > 0.0 ? kernel.sw_time / kernel.hw_time : 1.0;
    moved_cycles += kernel.sw_cycles;
    hw_time_total += kernel.hw_time;
    kernel_speedup_sum += kernel.kernel_speedup;
    app.area_gates += kernel.area_gates;
    hw_power += platform.fpga.dynamic_watts(kernel.area_gates,
                                            kernel.hw_clock_mhz);
  }
  moved_cycles = std::min(moved_cycles, total_sw_cycles);
  const double remaining_time =
      static_cast<double>(total_sw_cycles - moved_cycles) / cpu_hz;
  app.partitioned_time = remaining_time + hw_time_total;
  app.speedup = app.partitioned_time > 0.0
                    ? app.sw_time / app.partitioned_time
                    : 1.0;
  app.avg_kernel_speedup =
      kernels.empty() ? 0.0 : kernel_speedup_sum / kernels.size();

  // Energy.  Baseline = MIPS-only platform (the paper compares "to a MIPS
  // processor running at 200 MHz").  Partitioned platform: CPU active while
  // it computes, idle (clock-gated fraction) while the FPGA runs; FPGA
  // draws static power whenever configured plus dynamic while active.
  const double cpu_active = platform.cpu.active_watts();
  app.sw_energy = cpu_active * app.sw_time;
  if (kernels.empty()) {
    // Nothing mapped to hardware: the FPGA is left unconfigured.
    app.partitioned_energy = app.sw_energy;
  } else {
    app.partitioned_energy =
        cpu_active * remaining_time +
        platform.cpu.idle_watts() * hw_time_total +
        hw_power * hw_time_total +
        platform.fpga.static_watts * remaining_time;
  }
  app.energy_savings =
      app.sw_energy > 0.0
          ? 1.0 - app.partitioned_energy / app.sw_energy
          : 0.0;
  app.kernels = std::move(kernels);
  return app;
}

}  // namespace b2h::partition
