#include "partition/dynamic_policy.hpp"

#include <algorithm>
#include <cmath>

namespace b2h::partition {

namespace {

/// DMA cycles per invocation when staging the footprint in and out.
double DmaCyclesPerEntry(const Platform& platform,
                         const DynamicKernelModel& model) {
  return 2.0 * static_cast<double>(model.array_footprint_words) *
         platform.comm.cycles_per_word;
}

/// Bus-penalty cycles per invocation when accesses stay on the system bus.
double BusCyclesPerEntry(const Platform& platform,
                         const DynamicKernelModel& model) {
  return model.mem_accesses_per_iteration *
         std::max(1.0, model.iterations_per_entry) *
         platform.comm.bus_penalty_cycles;
}

}  // namespace

bool PrefersDmaStaging(const Platform& platform,
                       const DynamicKernelModel& model) {
  return model.array_footprint_words > 0 &&
         DmaCyclesPerEntry(platform, model) <
             BusCyclesPerEntry(platform, model);
}

double DynamicHwSeconds(const Platform& platform,
                        const DynamicKernelModel& model, double iterations,
                        double invocations, double mem_accesses) {
  const double fpga_hz =
      std::min(model.kernel_clock_mhz, platform.fpga.clock_mhz_cap) * 1e6;
  if (fpga_hz <= 0.0) return 0.0;
  const double comm_per_entry = PrefersDmaStaging(platform, model)
                                    ? DmaCyclesPerEntry(platform, model)
                                    : 0.0;
  const double bus_cycles = PrefersDmaStaging(platform, model)
                                ? 0.0
                                : mem_accesses *
                                      platform.comm.bus_penalty_cycles;
  const double cycles =
      model.hw_cycles_per_iteration * iterations +
      invocations * (platform.comm.setup_cycles + comm_per_entry) +
      bus_cycles;
  return cycles / fpga_hz;
}

double ProjectedIterationSpeedup(const Platform& platform,
                                 double sw_cycles_per_iter,
                                 const DynamicKernelModel& model) {
  const double cpu_hz = platform.cpu.clock_mhz * 1e6;
  if (cpu_hz <= 0.0 || sw_cycles_per_iter <= 0.0) return 0.0;
  const double invocations = 1.0 / std::max(1.0, model.iterations_per_entry);
  const double hw_seconds =
      DynamicHwSeconds(platform, model, 1.0, invocations,
                       model.mem_accesses_per_iteration);
  const double sw_seconds = sw_cycles_per_iter / cpu_hz;
  return hw_seconds > 0.0 ? sw_seconds / hw_seconds : 0.0;
}

KernelEstimate PriceDynamicKernel(std::string name, const Platform& platform,
                                  const DynamicKernelModel& model,
                                  std::uint64_t sw_cycles,
                                  std::uint64_t iterations,
                                  std::uint64_t invocations,
                                  std::uint64_t mem_accesses,
                                  double area_gates) {
  KernelEstimate kernel;
  kernel.name = std::move(name);
  kernel.sw_cycles = sw_cycles;
  kernel.hw_cycles = static_cast<std::uint64_t>(std::ceil(
      model.hw_cycles_per_iteration * static_cast<double>(iterations)));
  // A swap mid-invocation observes zero post-swap entries while iterations
  // still run in hardware; that in-flight invocation must pay its setup and
  // staging once.  Only a kernel that never executed costs nothing.
  kernel.invocations =
      iterations > 0 ? std::max<std::uint64_t>(1, invocations) : invocations;
  if (PrefersDmaStaging(platform, model)) {
    // Per-invocation staging: comm_words carries the TOTAL staged traffic,
    // which CombineEstimates prices once (the resident branch).
    kernel.arrays_resident = true;
    kernel.comm_words =
        2u * model.array_footprint_words * kernel.invocations;
    kernel.mem_accesses = 0;
  } else {
    kernel.arrays_resident = false;
    kernel.comm_words = 0;
    kernel.mem_accesses = mem_accesses;
  }
  kernel.hw_clock_mhz =
      std::min(model.kernel_clock_mhz, platform.fpga.clock_mhz_cap);
  kernel.area_gates = area_gates;
  return kernel;
}

std::optional<std::vector<std::size_t>> PlanEviction(
    const DynamicPolicy& policy, std::vector<ActiveKernel> active,
    double area_budget_gates, double area_used_gates, double candidate_gates,
    double candidate_value_density) {
  if (candidate_gates > area_budget_gates) return std::nullopt;
  if (area_used_gates + candidate_gates <= area_budget_gates) {
    return std::vector<std::size_t>{};
  }
  if (!policy.allow_eviction) return std::nullopt;

  std::sort(active.begin(), active.end(),
            [](const ActiveKernel& a, const ActiveKernel& b) {
              return a.value_density < b.value_density;
            });
  std::vector<std::size_t> evict;
  double freed = 0.0;
  for (const ActiveKernel& kernel : active) {
    if (area_used_gates - freed + candidate_gates <= area_budget_gates) break;
    if (kernel.value_density >= candidate_value_density) return std::nullopt;
    evict.push_back(kernel.id);
    freed += kernel.area_gates;
  }
  if (area_used_gates - freed + candidate_gates > area_budget_gates) {
    return std::nullopt;
  }
  return evict;
}

}  // namespace b2h::partition
