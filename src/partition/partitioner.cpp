#include "partition/partitioner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "ir/dominators.hpp"
#include "ir/loops.hpp"

namespace b2h::partition {
namespace {

/// A candidate loop region with the analyses it was derived from.
struct Candidate {
  const ir::Function* function = nullptr;
  const ir::Loop* loop = nullptr;
  synth::HwRegion region;
  std::uint64_t sw_cycles = 0;
  std::uint64_t invocations = 1;
  std::set<int> alias_regions;
  std::uint64_t comm_words = 0;
  std::uint64_t mem_accesses = 0;  ///< profile-weighted loads+stores
  bool selected = false;
};

/// Functions reachable from main via surviving calls (inlined-away callees
/// would otherwise be double-counted: their blocks share binary addresses
/// with the inlined copies).
std::set<const ir::Function*> ReachableFunctions(const ir::Module& module) {
  std::set<const ir::Function*> reachable;
  std::vector<const ir::Function*> work{module.main};
  reachable.insert(module.main);
  while (!work.empty()) {
    const ir::Function* function = work.back();
    work.pop_back();
    for (const auto& block : function->blocks()) {
      for (const ir::Instr* instr : block->instrs) {
        if (instr->op != ir::Opcode::kCall) continue;
        const ir::Function* callee = module.FindByEntry(instr->call_target);
        if (callee != nullptr && reachable.insert(callee).second) {
          work.push_back(callee);
        }
      }
    }
  }
  return reachable;
}

std::vector<std::uint32_t> BlockLeaders(
    const std::vector<const ir::Block*>& blocks) {
  std::vector<std::uint32_t> leaders;
  leaders.reserve(blocks.size());
  for (const ir::Block* block : blocks) leaders.push_back(block->start_pc);
  return leaders;
}

}  // namespace

Result<PartitionResult> PartitionProgram(
    const decomp::DecompiledProgram& program,
    const mips::ExecProfile& profile, const Platform& platform,
    const PartitionOptions& options) {
  PartitionResult result;
  result.area_budget_gates = platform.fpga.budget_gates();
  result.total_sw_cycles = profile.total_cycles;

  // All block leaders in the module (for PC -> block attribution).
  std::vector<std::uint32_t> all_leaders;
  for (const auto& function : program.module.functions) {
    for (const auto& block : function->blocks()) {
      all_leaders.push_back(block->start_pc);
    }
  }

  // Gather candidate loops (innermost first) with analyses per function.
  std::vector<Candidate> candidates;
  std::map<const ir::Function*, std::unique_ptr<decomp::AliasAnalysis>>
      alias_by_function;
  std::vector<std::unique_ptr<ir::DominatorTree>> dom_storage;
  std::vector<std::unique_ptr<ir::LoopForest>> forest_storage;

  const std::set<const ir::Function*> reachable =
      ReachableFunctions(program.module);
  for (const auto& function : program.module.functions) {
    if (reachable.count(function.get()) == 0) continue;
    auto dom = std::make_unique<ir::DominatorTree>(*function);
    auto forest = std::make_unique<ir::LoopForest>(*function, *dom);
    forest->AnnotateProfile();
    auto alias = std::make_unique<decomp::AliasAnalysis>(
        *function,
        program.binary != nullptr ? &program.binary->symbols : nullptr);

    for (const auto& loop : forest->loops()) {
      // Whole loop nests are candidates too: when an inner loop is entered
      // many times, moving the enclosing loop avoids paying the kernel
      // start/stop handshake per entry (the paper moves "loops", nesting
      // included).  Overlapping selections are excluded at selection time.
      Candidate candidate;
      candidate.function = function.get();
      candidate.loop = loop.get();
      candidate.region = synth::ExtractLoopRegion(*function, *loop);
      candidate.sw_cycles = RegionSwCycles(
          profile, all_leaders, BlockLeaders(candidate.region.blocks));
      candidate.invocations = std::max<std::uint64_t>(1, loop->entry_count);
      candidate.alias_regions = alias->RegionsIn(*loop);
      if (program.binary != nullptr) {
        candidate.comm_words = ArrayFootprintWords(
            *alias, candidate.alias_regions, *program.binary);
      }
      for (const ir::Block* block : candidate.region.blocks) {
        std::uint64_t mem_ops = 0;
        for (const ir::Instr* instr : block->instrs) {
          if (instr->op == ir::Opcode::kLoad ||
              instr->op == ir::Opcode::kStore) {
            ++mem_ops;
          }
        }
        candidate.mem_accesses += mem_ops * block->exec_count;
      }
      candidates.push_back(std::move(candidate));
    }
    alias_by_function.emplace(function.get(), std::move(alias));
    dom_storage.push_back(std::move(dom));
    forest_storage.push_back(std::move(forest));
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.sw_cycles > b.sw_cycles;
            });
  std::uint64_t loop_cycles_total = 0;
  for (const Candidate& candidate : candidates) {
    // Count outermost loops only: nested candidates overlap their parents.
    if (candidate.loop->parent == nullptr) {
      loop_cycles_total += candidate.sw_cycles;
    }
  }
  result.loop_coverage =
      profile.total_cycles > 0
          ? static_cast<double>(loop_cycles_total) /
                static_cast<double>(profile.total_cycles)
          : 0.0;

  double area_used = 0.0;
  std::set<const ir::Block*> selected_blocks;
  const auto try_select = [&](Candidate& candidate,
                              SelectedBy reason) -> bool {
    if (candidate.selected) return false;
    // A region nested inside (or containing) an already-selected region is
    // already covered by that hardware.
    for (const ir::Block* block : candidate.region.blocks) {
      if (selected_blocks.count(block) != 0) {
        candidate.selected = true;  // subsumed
        return false;
      }
    }
    const decomp::AliasAnalysis* alias =
        alias_by_function.at(candidate.function).get();
    auto synthesized =
        synth::Synthesize(candidate.region, alias, options.synth);
    if (!synthesized.ok()) {
      result.rejected.push_back(candidate.region.name + ": " +
                                synthesized.status().message());
      return false;
    }
    if (area_used + synthesized.value().area.total_gates >
        result.area_budget_gates) {
      result.rejected.push_back(candidate.region.name +
                                ": area constraint violated");
      return false;
    }
    // Hardware suitability (paper §3, third step only): a greedy addition
    // must pay off even with worst-case (non-resident) memory traffic.
    // Step-1 kernels are selected purely by frequency, as in the paper; the
    // alias step then fixes their memory placement.
    if (reason == SelectedBy::kGreedy) {
      const double fpga_hz =
          std::min(synthesized.value().clock_mhz, platform.fpga.clock_mhz_cap) *
          1e6;
      const double hw_seconds =
          (static_cast<double>(synthesized.value().hw_cycles) +
           static_cast<double>(candidate.invocations) *
               platform.comm.setup_cycles +
           static_cast<double>(candidate.mem_accesses) *
               platform.comm.bus_penalty_cycles) /
          fpga_hz;
      const double sw_seconds = static_cast<double>(candidate.sw_cycles) /
                                (platform.cpu.clock_mhz * 1e6);
      if (hw_seconds >= sw_seconds) {
        result.rejected.push_back(candidate.region.name +
                                  ": not profitable in hardware");
        return false;
      }
    }
    SelectedRegion selected;
    selected.synthesized = std::move(synthesized).take();
    // The loop analysis lives only for the duration of this call; the
    // stored region must not carry a pointer into it.  The loop's identity
    // survives as region.blocks.front()->start_pc (the header leader).
    selected.synthesized.region.loop = nullptr;
    selected.selected_by = reason;
    selected.sw_cycles = candidate.sw_cycles;
    selected.invocations = candidate.invocations;
    selected.comm_words = candidate.comm_words;
    selected.mem_accesses = candidate.mem_accesses;
    selected.alias_regions.assign(candidate.alias_regions.begin(),
                                  candidate.alias_regions.end());
    area_used += selected.synthesized.area.total_gates;
    for (const ir::Block* block : candidate.region.blocks) {
      selected_blocks.insert(block);
    }
    result.hw.push_back(std::move(selected));
    candidate.selected = true;
    return true;
  };

  // ---- Step 1: most frequent loops up to the coverage target -------------
  std::uint64_t covered = 0;
  for (Candidate& candidate : candidates) {
    if (loop_cycles_total == 0) break;
    if (static_cast<double>(covered) >=
        options.coverage_target * static_cast<double>(loop_cycles_total)) {
      break;
    }
    if (candidate.sw_cycles == 0) break;
    if (try_select(candidate, SelectedBy::kFrequency)) {
      covered += candidate.sw_cycles;
    }
  }

  // ---- Step 2: alias-connected regions -----------------------------------
  if (options.enable_alias_step) {
    // Arrays touched by the current hardware partition.
    std::set<std::pair<const ir::Function*, int>> hw_arrays;
    for (const SelectedRegion& selected : result.hw) {
      for (int id : selected.alias_regions) {
        hw_arrays.insert({selected.synthesized.region.function, id});
      }
    }
    for (Candidate& candidate : candidates) {
      if (candidate.selected) continue;
      bool shares = false;
      for (int id : candidate.alias_regions) {
        if (hw_arrays.count({candidate.function, id}) != 0) {
          shares = true;
          break;
        }
      }
      if (shares) {
        if (try_select(candidate, SelectedBy::kAlias)) {
          // All kernels touching these arrays can now keep them resident.
        }
      }
    }
    // Arrays shared only among hardware kernels become FPGA-resident: no
    // DMA per invocation.  An array also touched by software code that
    // remains on the CPU must stay in main memory.
    std::map<std::pair<const ir::Function*, int>, bool> only_hw;
    for (const SelectedRegion& selected : result.hw) {
      for (int id : selected.alias_regions) {
        only_hw[{selected.synthesized.region.function, id}] = true;
      }
    }
    for (const Candidate& candidate : candidates) {
      if (candidate.selected) continue;
      for (int id : candidate.alias_regions) {
        only_hw[{candidate.function, id}] = false;
      }
    }
    for (SelectedRegion& selected : result.hw) {
      bool resident = true;
      for (int id : selected.alias_regions) {
        const auto it =
            only_hw.find({selected.synthesized.region.function, id});
        if (it == only_hw.end() || !it->second) {
          resident = false;
          break;
        }
      }
      selected.arrays_resident = resident && !selected.alias_regions.empty();
    }
  }

  // ---- Step 3: greedy fill until the area constraint ---------------------
  if (options.enable_greedy_step) {
    // Profile-weight per estimated area, most valuable first.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.sw_cycles > b.sw_cycles;
              });
    for (Candidate& candidate : candidates) {
      if (candidate.selected || candidate.sw_cycles == 0) continue;
      (void)try_select(candidate, SelectedBy::kGreedy);
    }
  }

  result.area_used_gates = area_used;
  return result;
}

AppEstimate EstimatePartition(const PartitionResult& partition,
                              const Platform& platform) {
  std::vector<KernelEstimate> kernels;
  kernels.reserve(partition.hw.size());
  for (const SelectedRegion& selected : partition.hw) {
    KernelEstimate kernel;
    kernel.name = selected.synthesized.region.name;
    kernel.sw_cycles = selected.sw_cycles;
    kernel.hw_cycles = selected.synthesized.hw_cycles;
    kernel.invocations = selected.invocations;
    kernel.comm_words = selected.comm_words;
    kernel.mem_accesses = selected.mem_accesses;
    kernel.arrays_resident = selected.arrays_resident;
    kernel.hw_clock_mhz =
        std::min(selected.synthesized.clock_mhz, platform.fpga.clock_mhz_cap);
    kernel.area_gates = selected.synthesized.area.total_gates;
    kernels.push_back(std::move(kernel));
  }
  return CombineEstimates(platform, partition.total_sw_cycles,
                          std::move(kernels));
}

}  // namespace b2h::partition
