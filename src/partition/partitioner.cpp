#include "partition/partitioner.hpp"

#include <algorithm>

#include "partition/strategy.hpp"

namespace b2h::partition {

Result<PartitionResult> PartitionProgram(
    const decomp::DecompiledProgram& program,
    const mips::ExecProfile& profile, const Platform& platform,
    const PartitionOptions& options) {
  // The paper's algorithm is the "paper-greedy" strategy; the candidate
  // scan and selection machinery it shares with the other strategies lives
  // in candidates.{hpp,cpp}.
  return MakePaperGreedyStrategy()->Partition(program, profile, platform,
                                              options, StrategyOptions{});
}

AppEstimate EstimatePartition(const PartitionResult& partition,
                              const Platform& platform) {
  std::vector<KernelEstimate> kernels;
  kernels.reserve(partition.hw.size());
  for (const SelectedRegion& selected : partition.hw) {
    KernelEstimate kernel;
    kernel.name = selected.synthesized.region.name;
    kernel.sw_cycles = selected.sw_cycles;
    kernel.hw_cycles = selected.synthesized.hw_cycles;
    kernel.invocations = selected.invocations;
    kernel.comm_words = selected.comm_words;
    kernel.mem_accesses = selected.mem_accesses;
    kernel.arrays_resident = selected.arrays_resident;
    kernel.hw_clock_mhz =
        std::min(selected.synthesized.clock_mhz, platform.fpga.clock_mhz_cap);
    kernel.area_gates = selected.synthesized.area.total_gates;
    kernels.push_back(std::move(kernel));
  }
  return CombineEstimates(platform, partition.total_sw_cycles,
                          std::move(kernels));
}

std::vector<std::string> UniqueRejections(
    const std::vector<std::string>& rejected) {
  std::vector<std::string> unique;
  for (const std::string& reason : rejected) {
    if (std::find(unique.begin(), unique.end(), reason) == unique.end()) {
      unique.push_back(reason);
    }
  }
  return unique;
}

}  // namespace b2h::partition
