// Randomized refinement of the greedy selection: simulated annealing over
// candidate subsets with a seeded RNG.
//
// Starts from the paper-greedy subset, proposes single-candidate toggles,
// and accepts worse moves with a temperature that cools linearly to zero.
// The best subset ever visited wins (which includes the start, so the
// result never falls below the greedy baseline under its own scoring).
// Deterministic for a fixed StrategyOptions::seed: the RNG is the only
// source of randomness and the proposal/acceptance sequence is replayed
// identically.
#include <algorithm>
#include <cmath>
#include <random>

#include "partition/candidates.hpp"
#include "partition/strategy.hpp"
#include "support/error.hpp"

namespace b2h::partition {
namespace {

class AnnealingStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "annealing"; }

  [[nodiscard]] Result<PartitionResult> Partition(
      const decomp::DecompiledProgram& program,
      const mips::ExecProfile& profile, const Platform& platform,
      const PartitionOptions& options,
      const StrategyOptions& strategy_options) const override {
    const std::shared_ptr<const CandidateSet> shared =
        ObtainCandidates(program, profile, strategy_options.candidates);
    const CandidateSet& set = *shared;
    const ViableCandidates viable_set =
        FilterViableCandidates(set, platform, options);
    const std::vector<std::size_t>& viable = viable_set.ids;

    // Start (and incumbent): the greedy subset.
    std::vector<std::size_t> current =
        GreedyChosenSubset(set, platform, options);
    auto current_estimate = EvaluateSubset(set, current, platform, options);
    Check(current_estimate.has_value(), "annealing: greedy start infeasible");
    double current_score =
        ObjectiveScore(*current_estimate, strategy_options.objective);
    std::vector<std::size_t> best = current;
    double best_score = current_score;

    std::mt19937_64 rng(strategy_options.seed);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    const unsigned iterations =
        viable.empty() ? 0 : strategy_options.annealing_iterations;
    for (unsigned iter = 0; iter < iterations; ++iter) {
      const std::size_t pick = static_cast<std::size_t>(
          rng() % static_cast<std::uint64_t>(viable.size()));
      const std::size_t id = viable[pick];

      std::vector<std::size_t> proposal = current;
      const auto it = std::find(proposal.begin(), proposal.end(), id);
      if (it != proposal.end()) {
        proposal.erase(it);
      } else {
        proposal.insert(
            std::lower_bound(proposal.begin(), proposal.end(), id), id);
      }
      const auto estimate = EvaluateSubset(set, proposal, platform, options);
      if (!estimate.has_value()) continue;  // infeasible move
      const double score =
          ObjectiveScore(*estimate, strategy_options.objective);

      // Linear cooling; the acceptance scale is relative so the schedule
      // works for speedups (~1..10) and energies (~1e-4 J) alike.
      const double temperature =
          0.1 * (1.0 - static_cast<double>(iter) /
                           static_cast<double>(iterations));
      const double scale =
          std::max(std::abs(current_score), 1e-12) * temperature;
      const bool accept =
          score > current_score ||
          (scale > 0.0 &&
           std::exp((score - current_score) / scale) > unit(rng));
      if (!accept) continue;
      current = std::move(proposal);
      current_score = score;
      if (current_score > best_score) {
        best_score = current_score;
        best = current;
      }
    }

    std::sort(best.begin(), best.end());
    return CommitSubset(set, platform, options, best, SelectedBy::kAnnealing,
                        viable_set, "excluded by annealed selection");
  }

  [[nodiscard]] std::string OptionsFingerprint(
      const StrategyOptions& options) const override {
    return "seed=" + std::to_string(options.seed) +
           ",iters=" + std::to_string(options.annealing_iterations);
  }
};

}  // namespace

std::unique_ptr<Strategy> MakeAnnealingStrategy() {
  return std::make_unique<AnnealingStrategy>();
}

}  // namespace b2h::partition
