// One-call end-to-end flow: software binary -> profile -> decompile ->
// partition -> synthesize -> performance/energy report.
//
// Compatibility layer.  The scalable entry point is the `b2h::Toolchain`
// facade (toolchain/toolchain.hpp), which adds a platform registry,
// builder-style configuration, and a batch API that caches decompilations
// across platform sweeps.  `RunFlow` remains the one-shot single-binary,
// single-platform call (paper §1: the partitioner runs *after* the
// compiler, on the final binary, so any source language and compiler can
// be used).
#pragma once

#include <memory>
#include <string>

#include "decomp/pipeline.hpp"
#include "mips/binary.hpp"
#include "partition/partitioner.hpp"

namespace b2h::partition {

struct FlowOptions {
  Platform platform;
  decomp::DecompileOptions decompile;  ///< profile field is filled by the flow
  PartitionOptions partition;
  std::uint64_t max_sim_instructions = 200'000'000;
};

struct FlowResult {
  mips::RunResult software_run;   ///< profiling run of the original binary
  /// Owning: the program (and through it the binary) stays valid however
  /// long the result lives — the old by-value program held a raw pointer
  /// into the caller's binary.
  std::shared_ptr<const decomp::DecompiledProgram> program;
  PartitionResult partition;
  AppEstimate estimate;

  [[nodiscard]] std::string Report() const;
};

/// The body of the human-readable report, shared with Toolchain reports.
[[nodiscard]] std::string FlowReportBody(
    const mips::RunResult& software_run,
    const decomp::DecompiledProgram& program, const PartitionResult& partition,
    const AppEstimate& estimate);

/// Run the complete flow on a software binary.  The binary is copied into
/// shared ownership; prefer the shared_ptr overload to avoid the copy.
/// Fails when CDFG recovery fails (indirect jumps) or the binary faults.
[[nodiscard]] Result<FlowResult> RunFlow(const mips::SoftBinary& binary,
                                         const FlowOptions& options = {});

[[nodiscard]] Result<FlowResult> RunFlow(
    std::shared_ptr<const mips::SoftBinary> binary,
    const FlowOptions& options = {});

}  // namespace b2h::partition
