// One-call end-to-end flow: software binary -> profile -> decompile ->
// partition -> synthesize -> performance/energy report.
//
// This is the public API a platform vendor's tool would expose (paper §1:
// the partitioner runs *after* the compiler, on the final binary, so any
// source language and compiler can be used).
#pragma once

#include <string>

#include "decomp/pipeline.hpp"
#include "mips/binary.hpp"
#include "partition/partitioner.hpp"

namespace b2h::partition {

struct FlowOptions {
  Platform platform;
  decomp::DecompileOptions decompile;  ///< profile field is filled by the flow
  PartitionOptions partition;
  std::uint64_t max_sim_instructions = 200'000'000;
};

struct FlowResult {
  mips::RunResult software_run;   ///< profiling run of the original binary
  decomp::DecompiledProgram program;
  PartitionResult partition;
  AppEstimate estimate;

  [[nodiscard]] std::string Report() const;
};

/// Run the complete flow on a software binary.
/// Fails when CDFG recovery fails (indirect jumps) or the binary faults.
[[nodiscard]] Result<FlowResult> RunFlow(const mips::SoftBinary& binary,
                                         const FlowOptions& options = {});

}  // namespace b2h::partition
