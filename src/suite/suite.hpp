// The benchmark suite (paper §4):
//
//   "We applied our decompilation-based partitioning approach to twenty
//    examples from EEMBC, PowerStone, MediaBench, and our own benchmark
//    suite.  All examples were compiled using gcc with -O1 optimizations."
//
// The original suites are commercial/licensed; each benchmark here is a
// self-contained MiniC kernel modeled on the published description of the
// corresponding suite program (autocorrelation, convolutional encoder, CRC,
// G3 fax run length, ADPCM, DCT, bit reversal, ...).  Two EEMBC-style
// programs use `jr`-based jump tables and reproduce the paper's two CDFG
// recovery failures.
//
// Every MiniC benchmark also carries a native C++ reference implementation
// used as an independent oracle: compiler, MIPS simulator, decompiler, IR
// interpreter, and RTL simulator must all reproduce its result.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace b2h::suite {

struct Benchmark {
  std::string name;
  std::string origin;       ///< "EEMBC", "PowerStone", "MediaBench", "local"
  std::string description;
  std::string source;       ///< MiniC source (empty for assembly benchmarks)
  std::string assembly;     ///< raw MIPS assembly (jump-table examples)
  bool expect_cdfg_failure = false;
  /// Native oracle computing the expected return value.
  std::function<std::int32_t()> reference;
};

/// All twenty benchmarks, in reporting order.
[[nodiscard]] const std::vector<Benchmark>& AllBenchmarks();

/// The benchmarks expected to decompile successfully (eighteen).
[[nodiscard]] std::vector<const Benchmark*> WorkingBenchmarks();

/// Lookup by name (nullptr if absent).
[[nodiscard]] const Benchmark* FindBenchmark(const std::string& name);

}  // namespace b2h::suite
