#include "suite/runner.hpp"

#include "mips/assembler.hpp"

namespace b2h::suite {

Result<mips::SoftBinary> BuildBinary(const Benchmark& bench, int opt_level) {
  if (!bench.assembly.empty()) {
    return mips::Assemble(bench.assembly);
  }
  minicc::CompileOptions options;
  options.opt_level = opt_level;
  auto compiled = minicc::Compile(bench.source, options);
  if (!compiled.ok()) return compiled.status();
  return std::move(compiled).take().binary;
}

}  // namespace b2h::suite
