#include "suite/suite.hpp"

#include <array>
#include <cstdint>

namespace b2h::suite {
namespace {

using std::int32_t;
using std::uint32_t;

// ---------------------------------------------------------------------------
// EEMBC-style benchmarks
// ---------------------------------------------------------------------------

const char* kAutcorSource = R"(
int x[128];
int r[16];

int autcor() {
  int lag;
  int i;
  for (lag = 0; lag < 16; lag = lag + 1) {
    int acc = 0;
    for (i = 0; i < 128 - lag; i = i + 1) {
      acc = acc + x[i] * x[i + lag];
    }
    r[lag] = acc >> 4;
  }
  int sum = 0;
  for (lag = 0; lag < 16; lag = lag + 1) {
    sum = sum + (r[lag] & 65535);
  }
  return sum;
}

int main() {
  int i;
  for (i = 0; i < 128; i = i + 1) {
    x[i] = ((i * 37 + 11) % 256) - 128;
  }
  return autcor();
}
)";

int32_t AutcorReference() {
  int32_t x[128];
  int32_t r[16];
  for (int i = 0; i < 128; ++i) x[i] = ((i * 37 + 11) % 256) - 128;
  for (int lag = 0; lag < 16; ++lag) {
    int32_t acc = 0;
    for (int i = 0; i < 128 - lag; ++i) acc += x[i] * x[i + lag];
    r[lag] = acc >> 4;
  }
  int32_t sum = 0;
  for (int lag = 0; lag < 16; ++lag) sum += r[lag] & 65535;
  return sum;
}

const char* kConvenSource = R"(
int bits[256];
int outsym[256];

int parity7(int v) {
  int p = v;
  p = p ^ (p >> 4);
  p = p ^ (p >> 2);
  p = p ^ (p >> 1);
  return p & 1;
}

int conven() {
  int state = 0;
  int i;
  int acc = 0;
  for (i = 0; i < 256; i = i + 1) {
    state = ((state << 1) | bits[i]) & 127;
    int g1 = parity7(state & 109);
    int g2 = parity7(state & 79);
    int sym = (g1 << 1) | g2;
    outsym[i] = sym;
    acc = acc + sym;
  }
  return acc;
}

int main() {
  int i;
  int seed = 7;
  for (i = 0; i < 256; i = i + 1) {
    seed = (seed * 75 + 74) % 65537;
    bits[i] = seed & 1;
  }
  return conven();
}
)";

int32_t ConvenReference() {
  int32_t bits[256];
  int32_t seed = 7;
  for (int i = 0; i < 256; ++i) {
    seed = (seed * 75 + 74) % 65537;
    bits[i] = seed & 1;
  }
  const auto parity7 = [](int32_t v) {
    v ^= v >> 4;
    v ^= v >> 2;
    v ^= v >> 1;
    return v & 1;
  };
  int32_t state = 0;
  int32_t acc = 0;
  for (int i = 0; i < 256; ++i) {
    state = ((state << 1) | bits[i]) & 127;
    const int32_t g1 = parity7(state & 109);
    const int32_t g2 = parity7(state & 79);
    acc += (g1 << 1) | g2;
  }
  return acc;
}

const char* kRgbcmySource = R"(
byte rch[256];
byte gch[256];
byte bch[256];
byte kch[256];

int rgbcmy() {
  int i;
  int acc = 0;
  for (i = 0; i < 256; i = i + 1) {
    int c = 255 - rch[i];
    int m = 255 - gch[i];
    int y = 255 - bch[i];
    int k = c;
    if (m < k) { k = m; }
    if (y < k) { k = y; }
    kch[i] = k;
    acc = acc + ((c - k) + (m - k) + (y - k) + k);
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 256; i = i + 1) {
    rch[i] = (i * 7) & 255;
    gch[i] = (i * 13 + 5) & 255;
    bch[i] = (i * 29 + 1) & 255;
  }
  return rgbcmy();
}
)";

int32_t RgbcmyReference() {
  uint32_t rch[256];
  uint32_t gch[256];
  uint32_t bch[256];
  for (int i = 0; i < 256; ++i) {
    rch[i] = (i * 7) & 255;
    gch[i] = (i * 13 + 5) & 255;
    bch[i] = (i * 29 + 1) & 255;
  }
  int32_t acc = 0;
  for (int i = 0; i < 256; ++i) {
    const int32_t c = 255 - static_cast<int32_t>(rch[i]);
    const int32_t m = 255 - static_cast<int32_t>(gch[i]);
    const int32_t y = 255 - static_cast<int32_t>(bch[i]);
    int32_t k = c;
    if (m < k) k = m;
    if (y < k) k = y;
    acc += (c - k) + (m - k) + (y - k) + k;
  }
  return acc;
}

const char* kIdctSource = R"(
int blk[64];

int idct_pass() {
  int row;
  for (row = 0; row < 8; row = row + 1) {
    int b = row * 8;
    int s0 = blk[b + 0] + blk[b + 4];
    int s1 = blk[b + 0] - blk[b + 4];
    int s2 = (blk[b + 2] * 181) >> 7;
    int s3 = (blk[b + 6] * 75) >> 7;
    int e0 = s0 + s2 + s3;
    int e1 = s1 + s2 - s3;
    int o0 = (blk[b + 1] * 251 + blk[b + 7] * 49) >> 8;
    int o1 = (blk[b + 3] * 213 + blk[b + 5] * 142) >> 8;
    blk[b + 0] = (e0 + o0) >> 1;
    blk[b + 1] = (e1 + o1) >> 1;
    blk[b + 2] = (e1 - o1) >> 1;
    blk[b + 3] = (e0 - o0) >> 1;
    blk[b + 4] = (s0 - s2) >> 1;
    blk[b + 5] = (s1 - o0) >> 1;
    blk[b + 6] = (s1 + o1) >> 1;
    blk[b + 7] = (s0 - o1) >> 1;
  }
  int i;
  int acc = 0;
  for (i = 0; i < 64; i = i + 1) {
    acc = acc + (blk[i] & 4095);
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    blk[i] = ((i * 97 + 13) % 512) - 256;
  }
  return idct_pass();
}
)";

int32_t IdctReference() {
  int32_t blk[64];
  for (int i = 0; i < 64; ++i) blk[i] = ((i * 97 + 13) % 512) - 256;
  for (int row = 0; row < 8; ++row) {
    const int b = row * 8;
    const int32_t s0 = blk[b + 0] + blk[b + 4];
    const int32_t s1 = blk[b + 0] - blk[b + 4];
    const int32_t s2 = (blk[b + 2] * 181) >> 7;
    const int32_t s3 = (blk[b + 6] * 75) >> 7;
    const int32_t e0 = s0 + s2 + s3;
    const int32_t e1 = s1 + s2 - s3;
    const int32_t o0 = (blk[b + 1] * 251 + blk[b + 7] * 49) >> 8;
    const int32_t o1 = (blk[b + 3] * 213 + blk[b + 5] * 142) >> 8;
    blk[b + 0] = (e0 + o0) >> 1;
    blk[b + 1] = (e1 + o1) >> 1;
    blk[b + 2] = (e1 - o1) >> 1;
    blk[b + 3] = (e0 - o0) >> 1;
    blk[b + 4] = (s0 - s2) >> 1;
    blk[b + 5] = (s1 - o0) >> 1;
    blk[b + 6] = (s1 + o1) >> 1;
    blk[b + 7] = (s0 - o1) >> 1;
  }
  int32_t acc = 0;
  for (int i = 0; i < 64; ++i) acc += blk[i] & 4095;
  return acc;
}

const char* kBitmnpSource = R"(
int words[128];

int bitmnp() {
  int i;
  int acc = 0;
  for (i = 0; i < 128; i = i + 1) {
    int v = words[i];
    int swapped = (((v >> 1) & 0x55555555) | ((v & 0x55555555) << 1));
    int transitions = v ^ (v << 1);
    int ones = transitions & 0x0F0F0F0F;
    acc = acc + ((swapped ^ ones) & 0xFFFF);
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 128; i = i + 1) {
    words[i] = i * 2654435761;
  }
  return bitmnp();
}
)";

int32_t BitmnpReference() {
  int32_t words[128];
  for (int i = 0; i < 128; ++i) {
    words[i] = static_cast<int32_t>(i * 2654435761u);
  }
  int32_t acc = 0;
  for (int i = 0; i < 128; ++i) {
    const int32_t v = words[i];
    const int32_t swapped =
        ((v >> 1) & 0x55555555) | ((v & 0x55555555) << 1);
    const int32_t transitions =
        v ^ static_cast<int32_t>(static_cast<uint32_t>(v) << 1);
    const int32_t ones = transitions & 0x0F0F0F0F;
    acc += (swapped ^ ones) & 0xFFFF;
  }
  return acc;
}

/// EEMBC-style state-machine benchmark using a `jr` jump table: executes on
/// the processor but defeats static CDFG recovery (paper: "CDFG recovery
/// ... failed for two EEMBC examples because of indirect jumps").
const char* kSwitchAsm = R"(
.text
main:
  li $s0, 0        # accumulator
  li $s1, 0        # state index
  li $s2, 24       # iterations
loop:
  andi $t0, $s1, 3
  sll $t0, $t0, 2
  la $t1, jtab
  addu $t1, $t1, $t0
  lw $t2, 0($t1)
  jr $t2           # indirect dispatch -> CDFG recovery fails here
case0:
  addiu $s0, $s0, 3
  b next
case1:
  sll $s0, $s0, 1
  b next
case2:
  addiu $s0, $s0, -1
  b next
case3:
  xori $s0, $s0, 21845
next:
  addiu $s1, $s1, 1
  addiu $s2, $s2, -1
  bgtz $s2, loop
  andi $v0, $s0, 65535
  jr $ra
.data
jtab:
  .word case0, case1, case2, case3
)";

int32_t SwitchReference() {
  int32_t acc = 0;
  int32_t state = 0;
  for (int iter = 0; iter < 24; ++iter) {
    switch (state & 3) {
      case 0: acc += 3; break;
      case 1: acc <<= 1; break;
      case 2: acc -= 1; break;
      case 3: acc ^= 21845; break;
    }
    ++state;
  }
  return acc & 65535;
}

const char* kStateAsm = R"(
.text
main:
  move $s3, $ra    # jalr below clobbers $ra
  li $s0, 1        # value
  li $s1, 40       # iterations
  li $s2, 0        # state scratch
sloop:
  andi $t0, $s0, 1
  sll $t0, $t0, 2
  la $t1, stab
  addu $t1, $t1, $t0
  lw $t2, 0($t1)
  jalr $t2         # indirect call -> CDFG recovery fails here
  addiu $s1, $s1, -1
  bgtz $s1, sloop
  move $v0, $s0
  move $ra, $s3
  jr $ra
even:
  sra $s0, $s0, 1
  jr $ra
odd:
  sll $t3, $s0, 1
  addu $s0, $t3, $s0
  addiu $s0, $s0, 1
  jr $ra
.data
stab:
  .word even, odd
)";

int32_t StateReference() {
  int32_t value = 1;
  for (int iter = 0; iter < 40; ++iter) {
    if (value & 1) {
      value = value * 3 + 1;  // odd
    } else {
      value >>= 1;  // even
    }
  }
  return value;
}

// ---------------------------------------------------------------------------
// PowerStone-style benchmarks
// ---------------------------------------------------------------------------

const char* kCrcSource = R"(
byte msg[256];

int crc16() {
  int crc = 0xFFFF;
  int i;
  int bit;
  for (i = 0; i < 256; i = i + 1) {
    crc = crc ^ msg[i];
    for (bit = 0; bit < 8; bit = bit + 1) {
      int lsb = crc & 1;
      crc = (crc >> 1) & 32767;
      if (lsb != 0) {
        crc = crc ^ 0xA001;
      }
    }
  }
  return crc;
}

int main() {
  int i;
  for (i = 0; i < 256; i = i + 1) {
    msg[i] = (i * 31 + 7) & 255;
  }
  return crc16();
}
)";

int32_t CrcReference() {
  uint32_t msg[256];
  for (int i = 0; i < 256; ++i) msg[i] = (i * 31 + 7) & 255;
  int32_t crc = 0xFFFF;
  for (int i = 0; i < 256; ++i) {
    crc ^= static_cast<int32_t>(msg[i]);
    for (int bit = 0; bit < 8; ++bit) {
      const int32_t lsb = crc & 1;
      crc = (crc >> 1) & 32767;
      if (lsb != 0) crc ^= 0xA001;
    }
  }
  return crc;
}

const char* kBcntSource = R"(
int data[256];

int bcnt() {
  int i;
  int total = 0;
  for (i = 0; i < 256; i = i + 1) {
    int b = data[i];
    b = (b & 0x55555555) + ((b >> 1) & 0x55555555);
    b = (b & 0x33333333) + ((b >> 2) & 0x33333333);
    b = (b & 0x0F0F0F0F) + ((b >> 4) & 0x0F0F0F0F);
    b = (b & 0x00FF00FF) + ((b >> 8) & 0x00FF00FF);
    b = (b & 0x0000FFFF) + ((b >> 16) & 0x0000FFFF);
    total = total + b;
  }
  return total;
}

int main() {
  int i;
  int seed = 12345;
  for (i = 0; i < 256; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    data[i] = seed;
  }
  return bcnt();
}
)";

int32_t BcntReference() {
  int32_t data[256];
  int32_t seed = 12345;
  for (int i = 0; i < 256; ++i) {
    seed = static_cast<int32_t>(
        static_cast<uint32_t>(seed) * 1103515245u + 12345u);
    data[i] = seed;
  }
  int32_t total = 0;
  for (int i = 0; i < 256; ++i) {
    // Unsigned arithmetic: the first reduction step can carry into bit 31,
    // which is the simulator's documented wrapping add but signed-overflow
    // UB in native C++.
    uint32_t b = static_cast<uint32_t>(data[i]);
    b = (b & 0x55555555u) + ((b >> 1) & 0x55555555u);
    b = (b & 0x33333333u) + ((b >> 2) & 0x33333333u);
    b = (b & 0x0F0F0F0Fu) + ((b >> 4) & 0x0F0F0F0Fu);
    b = (b & 0x00FF00FFu) + ((b >> 8) & 0x00FF00FFu);
    b = (b & 0x0000FFFFu) + ((b >> 16) & 0x0000FFFFu);
    total += static_cast<int32_t>(b);
  }
  return total;
}

const char* kBlitSource = R"(
int src[130];
int dst[128];

int blit() {
  int i;
  int acc = 0;
  for (i = 0; i < 128; i = i + 1) {
    int hi = (src[i] << 5) & 0x7FFFFFFF;
    int lo = (src[i + 1] >> 27) & 31;
    dst[i] = hi | lo;
    acc = acc + (dst[i] & 255);
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 130; i = i + 1) {
    src[i] = (i * 40503 + 3) & 0x7FFFFFFF;
  }
  return blit();
}
)";

int32_t BlitReference() {
  int32_t src[130];
  for (int i = 0; i < 130; ++i) src[i] = (i * 40503 + 3) & 0x7FFFFFFF;
  int32_t acc = 0;
  for (int i = 0; i < 128; ++i) {
    const int32_t hi =
        static_cast<int32_t>(static_cast<uint32_t>(src[i]) << 5) & 0x7FFFFFFF;
    const int32_t lo = (src[i + 1] >> 27) & 31;
    acc += (hi | lo) & 255;
  }
  return acc;
}

const char* kFirSource = R"(
int samples[288];
int coeffs[32];
int output[256];

int fir() {
  int i;
  int j;
  for (i = 0; i < 256; i = i + 1) {
    int acc = 0;
    for (j = 0; j < 32; j = j + 1) {
      acc = acc + samples[i + j] * coeffs[j];
    }
    output[i] = acc >> 8;
  }
  int sum = 0;
  for (i = 0; i < 256; i = i + 1) {
    sum = sum + (output[i] & 65535);
  }
  return sum;
}

int main() {
  int i;
  for (i = 0; i < 288; i = i + 1) {
    samples[i] = ((i * 89 + 21) % 1024) - 512;
  }
  for (i = 0; i < 32; i = i + 1) {
    coeffs[i] = ((i * 3) % 64) - 32;
  }
  return fir();
}
)";

int32_t FirReference() {
  int32_t samples[288];
  int32_t coeffs[32];
  int32_t output[256];
  for (int i = 0; i < 288; ++i) samples[i] = ((i * 89 + 21) % 1024) - 512;
  for (int i = 0; i < 32; ++i) coeffs[i] = ((i * 3) % 64) - 32;
  for (int i = 0; i < 256; ++i) {
    int32_t acc = 0;
    for (int j = 0; j < 32; ++j) acc += samples[i + j] * coeffs[j];
    output[i] = acc >> 8;
  }
  int32_t sum = 0;
  for (int i = 0; i < 256; ++i) sum += output[i] & 65535;
  return sum;
}

const char* kEngineSource = R"(
int rpmtab[33];
int loadpts[128];

int engine() {
  int i;
  int acc = 0;
  for (i = 0; i < 128; i = i + 1) {
    int rpm = loadpts[i];
    int idx = (rpm >> 8) & 31;
    int frac = rpm & 255;
    int base = rpmtab[idx];
    int next = rpmtab[idx + 1];
    int val = base + (((next - base) * frac) >> 8);
    if (val > 4000) { val = 4000; }
    if (val < 100) { val = 100; }
    acc = acc + val;
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 33; i = i + 1) {
    rpmtab[i] = 100 + i * 120;
  }
  for (i = 0; i < 128; i = i + 1) {
    loadpts[i] = (i * 517 + 99) & 8191;
  }
  return engine();
}
)";

int32_t EngineReference() {
  int32_t rpmtab[33];
  int32_t loadpts[128];
  for (int i = 0; i < 33; ++i) rpmtab[i] = 100 + i * 120;
  for (int i = 0; i < 128; ++i) loadpts[i] = (i * 517 + 99) & 8191;
  int32_t acc = 0;
  for (int i = 0; i < 128; ++i) {
    const int32_t rpm = loadpts[i];
    const int32_t idx = (rpm >> 8) & 31;
    const int32_t frac = rpm & 255;
    const int32_t base = rpmtab[idx];
    const int32_t next = rpmtab[idx + 1];
    int32_t val = base + (((next - base) * frac) >> 8);
    if (val > 4000) val = 4000;
    if (val < 100) val = 100;
    acc += val;
  }
  return acc;
}

const char* kG3faxSource = R"(
int scanline[64];
int runs[2112];

int g3fax() {
  int w;
  int nruns = 0;
  int current = 0;
  int runlen = 0;
  for (w = 0; w < 64; w = w + 1) {
    int word = scanline[w];
    int bit = 0;
    for (bit = 0; bit < 32; bit = bit + 1) {
      int b = (word >> (31 - bit)) & 1;
      if (b == current) {
        runlen = runlen + 1;
      } else {
        runs[nruns] = runlen;
        nruns = nruns + 1;
        current = b;
        runlen = 1;
      }
    }
  }
  runs[nruns] = runlen;
  nruns = nruns + 1;
  int i;
  int acc = 0;
  for (i = 0; i < nruns; i = i + 1) {
    acc = acc + runs[i] * (i & 7);
  }
  return acc + nruns;
}

int main() {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    scanline[i] = (i * 2654435761) ^ (i << 13);
  }
  return g3fax();
}
)";

int32_t G3faxReference() {
  int32_t scanline[64];
  for (int i = 0; i < 64; ++i) {
    scanline[i] = static_cast<int32_t>(i * 2654435761u) ^
                  static_cast<int32_t>(static_cast<uint32_t>(i) << 13);
  }
  int32_t runs[2112];
  int32_t nruns = 0;
  int32_t current = 0;
  int32_t runlen = 0;
  for (int w = 0; w < 64; ++w) {
    const int32_t word = scanline[w];
    for (int bit = 0; bit < 32; ++bit) {
      const int32_t b = (word >> (31 - bit)) & 1;
      if (b == current) {
        ++runlen;
      } else {
        runs[nruns++] = runlen;
        current = b;
        runlen = 1;
      }
    }
  }
  runs[nruns++] = runlen;
  int32_t acc = 0;
  for (int i = 0; i < nruns; ++i) acc += runs[i] * (i & 7);
  return acc + nruns;
}

// ---------------------------------------------------------------------------
// MediaBench-style benchmarks
// ---------------------------------------------------------------------------

const char* kAdpcmEncSource = R"(
int pcm[128];
int code_out[128];
int steps[16] = {7, 9, 11, 13, 16, 19, 23, 28, 34, 41, 50, 60, 73, 88, 107, 130};

int adpcm_enc() {
  int predicted = 0;
  int index = 0;
  int i;
  int acc = 0;
  for (i = 0; i < 128; i = i + 1) {
    int step = steps[index];
    int diff = pcm[i] - predicted;
    int code = 0;
    if (diff < 0) {
      code = 8;
      diff = 0 - diff;
    }
    if (diff >= step) {
      code = code | 4;
      diff = diff - step;
    }
    if (diff >= (step >> 1)) {
      code = code | 2;
      diff = diff - (step >> 1);
    }
    if (diff >= (step >> 2)) {
      code = code | 1;
    }
    int delta = (step >> 3) + ((code & 1) * (step >> 2))
              + (((code >> 1) & 1) * (step >> 1)) + (((code >> 2) & 1) * step);
    if ((code & 8) != 0) {
      predicted = predicted - delta;
    } else {
      predicted = predicted + delta;
    }
    if (predicted > 32767) { predicted = 32767; }
    if (predicted < -32768) { predicted = -32768; }
    index = index + ((code & 7) - 2);
    if (index < 0) { index = 0; }
    if (index > 15) { index = 15; }
    code_out[i] = code;
    acc = acc + code;
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 128; i = i + 1) {
    pcm[i] = ((i * 211 + 17) % 4096) - 2048;
  }
  return adpcm_enc();
}
)";

int32_t AdpcmEncReference() {
  static const int32_t steps[16] = {7, 9, 11, 13, 16, 19, 23, 28,
                                    34, 41, 50, 60, 73, 88, 107, 130};
  int32_t pcm[128];
  for (int i = 0; i < 128; ++i) pcm[i] = ((i * 211 + 17) % 4096) - 2048;
  int32_t predicted = 0;
  int32_t index = 0;
  int32_t acc = 0;
  for (int i = 0; i < 128; ++i) {
    const int32_t step = steps[index];
    int32_t diff = pcm[i] - predicted;
    int32_t code = 0;
    if (diff < 0) {
      code = 8;
      diff = -diff;
    }
    if (diff >= step) {
      code |= 4;
      diff -= step;
    }
    if (diff >= (step >> 1)) {
      code |= 2;
      diff -= step >> 1;
    }
    if (diff >= (step >> 2)) code |= 1;
    const int32_t delta = (step >> 3) + ((code & 1) * (step >> 2)) +
                          (((code >> 1) & 1) * (step >> 1)) +
                          (((code >> 2) & 1) * step);
    if ((code & 8) != 0) {
      predicted -= delta;
    } else {
      predicted += delta;
    }
    if (predicted > 32767) predicted = 32767;
    if (predicted < -32768) predicted = -32768;
    index += (code & 7) - 2;
    if (index < 0) index = 0;
    if (index > 15) index = 15;
    acc += code;
  }
  return acc;
}

const char* kAdpcmDecSource = R"(
int codes[128];
int pcm_out[128];
int steps[16] = {7, 9, 11, 13, 16, 19, 23, 28, 34, 41, 50, 60, 73, 88, 107, 130};

int adpcm_dec() {
  int predicted = 0;
  int index = 0;
  int i;
  int acc = 0;
  for (i = 0; i < 128; i = i + 1) {
    int code = codes[i] & 15;
    int step = steps[index];
    int delta = (step >> 3) + ((code & 1) * (step >> 2))
              + (((code >> 1) & 1) * (step >> 1)) + (((code >> 2) & 1) * step);
    if ((code & 8) != 0) {
      predicted = predicted - delta;
    } else {
      predicted = predicted + delta;
    }
    if (predicted > 32767) { predicted = 32767; }
    if (predicted < -32768) { predicted = -32768; }
    index = index + ((code & 7) - 2);
    if (index < 0) { index = 0; }
    if (index > 15) { index = 15; }
    pcm_out[i] = predicted;
    acc = acc + (predicted & 1023);
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 128; i = i + 1) {
    codes[i] = (i * 5 + 3) & 15;
  }
  return adpcm_dec();
}
)";

int32_t AdpcmDecReference() {
  static const int32_t steps[16] = {7, 9, 11, 13, 16, 19, 23, 28,
                                    34, 41, 50, 60, 73, 88, 107, 130};
  int32_t predicted = 0;
  int32_t index = 0;
  int32_t acc = 0;
  for (int i = 0; i < 128; ++i) {
    const int32_t code = (i * 5 + 3) & 15;
    const int32_t step = steps[index];
    const int32_t delta = (step >> 3) + ((code & 1) * (step >> 2)) +
                          (((code >> 1) & 1) * (step >> 1)) +
                          (((code >> 2) & 1) * step);
    if ((code & 8) != 0) {
      predicted -= delta;
    } else {
      predicted += delta;
    }
    if (predicted > 32767) predicted = 32767;
    if (predicted < -32768) predicted = -32768;
    index += (code & 7) - 2;
    if (index < 0) index = 0;
    if (index > 15) index = 15;
    acc += predicted & 1023;
  }
  return acc;
}

const char* kG721Source = R"(
int samples[192];

int quan(int val) {
  int mag = val;
  if (mag < 0) { mag = 0 - mag; }
  int exp = 0;
  while (mag > 1) {
    mag = mag >> 1;
    exp = exp + 1;
  }
  return exp;
}

int g721() {
  int i;
  int acc = 0;
  int prev = 0;
  for (i = 0; i < 192; i = i + 1) {
    int d = samples[i] - prev;
    int exp = quan(d);
    int mant = 0;
    if (d < 0) {
      mant = ((0 - d) >> 1) & 31;
    } else {
      mant = (d >> 1) & 31;
    }
    int word = (exp << 5) | mant;
    acc = acc + (word & 255);
    prev = samples[i] - (samples[i] >> 3);
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 192; i = i + 1) {
    samples[i] = ((i * 313 + 23) % 8192) - 4096;
  }
  return g721();
}
)";

int32_t G721Reference() {
  int32_t samples[192];
  for (int i = 0; i < 192; ++i) samples[i] = ((i * 313 + 23) % 8192) - 4096;
  const auto quan = [](int32_t val) {
    int32_t mag = val < 0 ? -val : val;
    int32_t exp = 0;
    while (mag > 1) {
      mag >>= 1;
      ++exp;
    }
    return exp;
  };
  int32_t acc = 0;
  int32_t prev = 0;
  for (int i = 0; i < 192; ++i) {
    const int32_t d = samples[i] - prev;
    const int32_t exp = quan(d);
    const int32_t mant = d < 0 ? ((-d) >> 1) & 31 : (d >> 1) & 31;
    acc += ((exp << 5) | mant) & 255;
    prev = samples[i] - (samples[i] >> 3);
  }
  return acc;
}

const char* kJpegDctSource = R"(
int block[64];

int jpeg_dct() {
  int row;
  for (row = 0; row < 8; row = row + 1) {
    int b = row * 8;
    int t0 = block[b + 0] + block[b + 7];
    int t7 = block[b + 0] - block[b + 7];
    int t1 = block[b + 1] + block[b + 6];
    int t6 = block[b + 1] - block[b + 6];
    int t2 = block[b + 2] + block[b + 5];
    int t5 = block[b + 2] - block[b + 5];
    int t3 = block[b + 3] + block[b + 4];
    int t4 = block[b + 3] - block[b + 4];
    int u0 = t0 + t3;
    int u3 = t0 - t3;
    int u1 = t1 + t2;
    int u2 = t1 - t2;
    block[b + 0] = u0 + u1;
    block[b + 4] = u0 - u1;
    block[b + 2] = (u2 * 181 + u3 * 181) >> 8;
    block[b + 6] = (u3 * 181 - u2 * 181) >> 8;
    block[b + 1] = (t4 * 98 + t7 * 251) >> 8;
    block[b + 7] = (t7 * 98 - t4 * 251) >> 8;
    block[b + 3] = (t5 * 213 + t6 * 142) >> 8;
    block[b + 5] = (t6 * 213 - t5 * 142) >> 8;
  }
  int i;
  int acc = 0;
  for (i = 0; i < 64; i = i + 1) {
    acc = acc + (block[i] & 2047);
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    block[i] = ((i * 71 + 9) % 256) - 128;
  }
  return jpeg_dct();
}
)";

int32_t JpegDctReference() {
  int32_t block[64];
  for (int i = 0; i < 64; ++i) block[i] = ((i * 71 + 9) % 256) - 128;
  for (int row = 0; row < 8; ++row) {
    const int b = row * 8;
    const int32_t t0 = block[b + 0] + block[b + 7];
    const int32_t t7 = block[b + 0] - block[b + 7];
    const int32_t t1 = block[b + 1] + block[b + 6];
    const int32_t t6 = block[b + 1] - block[b + 6];
    const int32_t t2 = block[b + 2] + block[b + 5];
    const int32_t t5 = block[b + 2] - block[b + 5];
    const int32_t t3 = block[b + 3] + block[b + 4];
    const int32_t t4 = block[b + 3] - block[b + 4];
    const int32_t u0 = t0 + t3;
    const int32_t u3 = t0 - t3;
    const int32_t u1 = t1 + t2;
    const int32_t u2 = t1 - t2;
    block[b + 0] = u0 + u1;
    block[b + 4] = u0 - u1;
    block[b + 2] = (u2 * 181 + u3 * 181) >> 8;
    block[b + 6] = (u3 * 181 - u2 * 181) >> 8;
    block[b + 1] = (t4 * 98 + t7 * 251) >> 8;
    block[b + 7] = (t7 * 98 - t4 * 251) >> 8;
    block[b + 3] = (t5 * 213 + t6 * 142) >> 8;
    block[b + 5] = (t6 * 213 - t5 * 142) >> 8;
  }
  int32_t acc = 0;
  for (int i = 0; i < 64; ++i) acc += block[i] & 2047;
  return acc;
}

// ---------------------------------------------------------------------------
// Local benchmarks
// ---------------------------------------------------------------------------

const char* kBrevSource = R"(
int data[256];
int out[256];

int brev() {
  int i;
  int acc = 0;
  for (i = 0; i < 256; i = i + 1) {
    int v = data[i];
    v = ((v >> 1) & 0x55555555) | ((v & 0x55555555) << 1);
    v = ((v >> 2) & 0x33333333) | ((v & 0x33333333) << 2);
    v = ((v >> 4) & 0x0F0F0F0F) | ((v & 0x0F0F0F0F) << 4);
    v = ((v >> 8) & 0x00FF00FF) | ((v & 0x00FF00FF) << 8);
    v = ((v >> 16) & 0x0000FFFF) | (v << 16);
    out[i] = v;
    acc = acc + (v & 65535);
  }
  return acc;
}

int main() {
  int i;
  int seed = 99;
  for (i = 0; i < 256; i = i + 1) {
    seed = seed * 69069 + 1;
    data[i] = seed;
  }
  return brev();
}
)";

int32_t BrevReference() {
  int32_t data[256];
  int32_t seed = 99;
  for (int i = 0; i < 256; ++i) {
    seed = static_cast<int32_t>(static_cast<uint32_t>(seed) * 69069u + 1u);
    data[i] = seed;
  }
  int32_t acc = 0;
  for (int i = 0; i < 256; ++i) {
    int32_t v = data[i];
    v = ((v >> 1) & 0x55555555) | ((v & 0x55555555) << 1);
    v = ((v >> 2) & 0x33333333) | ((v & 0x33333333) << 2);
    v = ((v >> 4) & 0x0F0F0F0F) | ((v & 0x0F0F0F0F) << 4);
    v = ((v >> 8) & 0x00FF00FF) | ((v & 0x00FF00FF) << 8);
    v = static_cast<int32_t>(((v >> 16) & 0x0000FFFF) |
                             (static_cast<uint32_t>(v) << 16));
    acc += v & 65535;
  }
  return acc;
}

const char* kMatmulSource = R"(
int ma[144];
int mb[144];
int mc[144];

int matmul() {
  int i;
  int j;
  int k;
  for (i = 0; i < 12; i = i + 1) {
    for (j = 0; j < 12; j = j + 1) {
      int acc = 0;
      for (k = 0; k < 12; k = k + 1) {
        acc = acc + ma[i * 12 + k] * mb[k * 12 + j];
      }
      mc[i * 12 + j] = acc;
    }
  }
  int sum = 0;
  for (i = 0; i < 144; i = i + 1) {
    sum = sum + (mc[i] & 8191);
  }
  return sum;
}

int main() {
  int i;
  for (i = 0; i < 144; i = i + 1) {
    ma[i] = (i * 17 + 3) % 97;
    mb[i] = (i * 23 + 5) % 89;
  }
  return matmul();
}
)";

int32_t MatmulReference() {
  int32_t ma[144];
  int32_t mb[144];
  int32_t mc[144];
  for (int i = 0; i < 144; ++i) {
    ma[i] = (i * 17 + 3) % 97;
    mb[i] = (i * 23 + 5) % 89;
  }
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      int32_t acc = 0;
      for (int k = 0; k < 12; ++k) acc += ma[i * 12 + k] * mb[k * 12 + j];
      mc[i * 12 + j] = acc;
    }
  }
  int32_t sum = 0;
  for (int i = 0; i < 144; ++i) sum += mc[i] & 8191;
  return sum;
}

const char* kChecksumSource = R"(
byte buffer[512];

int checksum() {
  int a = 1;
  int b = 0;
  int i;
  for (i = 0; i < 512; i = i + 1) {
    a = (a + buffer[i]) % 65521;
    b = (b + a) % 65521;
  }
  return (b << 16) | a;
}

int main() {
  int i;
  for (i = 0; i < 512; i = i + 1) {
    buffer[i] = (i * 101 + 41) & 255;
  }
  return checksum();
}
)";

int32_t ChecksumReference() {
  int32_t a = 1;
  int32_t b = 0;
  for (int i = 0; i < 512; ++i) {
    const int32_t byte = (i * 101 + 41) & 255;
    a = (a + byte) % 65521;
    b = (b + a) % 65521;
  }
  return static_cast<int32_t>((static_cast<uint32_t>(b) << 16) |
                              static_cast<uint32_t>(a));
}

std::vector<Benchmark> BuildSuite() {
  std::vector<Benchmark> suite;
  const auto add = [&](std::string name, std::string origin,
                       std::string description, const char* source,
                       std::function<int32_t()> reference) {
    Benchmark bench;
    bench.name = std::move(name);
    bench.origin = std::move(origin);
    bench.description = std::move(description);
    bench.source = source;
    bench.reference = std::move(reference);
    suite.push_back(std::move(bench));
  };
  const auto add_asm = [&](std::string name, std::string origin,
                           std::string description, const char* assembly,
                           std::function<int32_t()> reference) {
    Benchmark bench;
    bench.name = std::move(name);
    bench.origin = std::move(origin);
    bench.description = std::move(description);
    bench.assembly = assembly;
    bench.expect_cdfg_failure = true;
    bench.reference = std::move(reference);
    suite.push_back(std::move(bench));
  };

  add("autcor00", "EEMBC", "fixed-point autocorrelation (telecom)",
      kAutcorSource, AutcorReference);
  add("conven00", "EEMBC", "convolutional encoder (telecom)",
      kConvenSource, ConvenReference);
  add("rgbcmy01", "EEMBC", "RGB to CMYK conversion (consumer)",
      kRgbcmySource, RgbcmyReference);
  add("idct01", "EEMBC", "row iDCT butterfly pass (consumer)",
      kIdctSource, IdctReference);
  add("bitmnp01", "EEMBC", "bit manipulation (automotive)",
      kBitmnpSource, BitmnpReference);
  add_asm("switch01", "EEMBC", "state dispatch via jr jump table",
          kSwitchAsm, SwitchReference);
  add_asm("state02", "EEMBC", "collatz-style dispatch via jalr table",
          kStateAsm, StateReference);
  add("crc", "PowerStone", "bitwise CRC-16 over a message buffer",
      kCrcSource, CrcReference);
  add("bcnt", "PowerStone", "population count with mask-add tree",
      kBcntSource, BcntReference);
  add("blit", "PowerStone", "shifted bitmap block transfer",
      kBlitSource, BlitReference);
  add("fir", "PowerStone", "32-tap integer FIR filter",
      kFirSource, FirReference);
  add("engine", "PowerStone", "engine map interpolation with clamping",
      kEngineSource, EngineReference);
  add("g3fax", "PowerStone", "group-3 fax run-length extraction",
      kG3faxSource, G3faxReference);
  add("adpcm_enc", "MediaBench", "IMA ADPCM encoder",
      kAdpcmEncSource, AdpcmEncReference);
  add("adpcm_dec", "MediaBench", "IMA ADPCM decoder",
      kAdpcmDecSource, AdpcmDecReference);
  add("g721_quan", "MediaBench", "G.721 logarithmic quantizer",
      kG721Source, G721Reference);
  add("jpeg_dct", "MediaBench", "row DCT butterfly pass",
      kJpegDctSource, JpegDctReference);
  add("brev", "local", "32-bit bit reversal (warp-processing showcase)",
      kBrevSource, BrevReference);
  add("matmul", "local", "12x12 integer matrix multiply",
      kMatmulSource, MatmulReference);
  add("checksum", "local", "Adler-style checksum with modulo",
      kChecksumSource, ChecksumReference);
  return suite;
}

}  // namespace

const std::vector<Benchmark>& AllBenchmarks() {
  static const std::vector<Benchmark> suite = BuildSuite();
  return suite;
}

std::vector<const Benchmark*> WorkingBenchmarks() {
  std::vector<const Benchmark*> out;
  for (const Benchmark& bench : AllBenchmarks()) {
    if (!bench.expect_cdfg_failure) out.push_back(&bench);
  }
  return out;
}

const Benchmark* FindBenchmark(const std::string& name) {
  for (const Benchmark& bench : AllBenchmarks()) {
    if (bench.name == name) return &bench;
  }
  return nullptr;
}

}  // namespace b2h::suite
