// Helpers to build benchmark binaries (compile MiniC at a given -O level,
// or assemble the jump-table examples).
#pragma once

#include "minicc/codegen.hpp"
#include "mips/binary.hpp"
#include "suite/suite.hpp"
#include "support/error.hpp"

namespace b2h::suite {

/// Build the benchmark's software binary at the given optimization level
/// (assembly benchmarks ignore the level — they model pre-built binaries).
[[nodiscard]] Result<mips::SoftBinary> BuildBinary(const Benchmark& bench,
                                                   int opt_level = 1);

}  // namespace b2h::suite
