// MiniC abstract syntax tree.
//
// MiniC is the source language of the benchmark suite — a small, C-like
// language rich enough for the EEMBC/PowerStone/MediaBench-style kernels the
// paper evaluates (32-bit ints, global int/byte arrays, functions, loops).
// The compiler back end lowers it to MIPS with selectable optimization
// levels O0..O3, standing in for "compiled using gcc" (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace b2h::minicc {

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLogicalAnd, kLogicalOr,
};

enum class UnaryOp { kNeg, kNot, kBitNot };

struct Expr {
  enum class Kind {
    kNumber,     // value
    kVar,        // name
    kIndex,      // name[index]
    kUnary,      // op a
    kBinary,     // a op b
    kCall,       // name(args...)
  };
  Kind kind = Kind::kNumber;
  std::int32_t value = 0;
  std::string name;
  BinaryOp bop = BinaryOp::kAdd;
  UnaryOp uop = UnaryOp::kNeg;
  std::unique_ptr<Expr> a;
  std::unique_ptr<Expr> b;
  std::vector<std::unique_ptr<Expr>> args;
  int line = 0;
};

struct Stmt {
  enum class Kind {
    kDecl,       // int name = init;
    kAssign,     // name = value;  /  name[index] = value;
    kIf,         // if (cond) then_body else else_body
    kWhile,      // while (cond) body
    kFor,        // for (init; cond; step) body
    kReturn,     // return value;
    kBlock,      // { body... }
    kExpr,       // expression statement (calls)
  };
  Kind kind = Kind::kBlock;
  std::string name;
  std::unique_ptr<Expr> index;  // non-null for array assignment
  std::unique_ptr<Expr> value;  // init / rhs / cond / return value
  std::unique_ptr<Stmt> init;   // for
  std::unique_ptr<Expr> cond;   // if/while/for
  std::unique_ptr<Stmt> step;   // for
  std::unique_ptr<Stmt> then_body;
  std::unique_ptr<Stmt> else_body;
  std::vector<std::unique_ptr<Stmt>> body;  // block
  int line = 0;
};

struct Param {
  std::string name;
  bool is_array = false;  ///< array parameters are base addresses
  bool is_byte = false;   ///< byte-array parameter
};

struct Function {
  std::string name;
  bool returns_value = true;
  std::vector<Param> params;
  std::unique_ptr<Stmt> body;  // block
  int line = 0;
};

struct Global {
  std::string name;
  bool is_array = false;
  bool is_byte = false;      ///< element size 1 (lbu/sb) instead of 4
  std::int32_t size = 1;     ///< element count for arrays
  std::vector<std::int32_t> init;  ///< initializer (scalar: 1 entry)
  int line = 0;
};

struct Program {
  std::vector<Global> globals;
  std::vector<Function> functions;

  [[nodiscard]] const Function* FindFunction(const std::string& name) const {
    for (const auto& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
  [[nodiscard]] const Global* FindGlobal(const std::string& name) const {
    for (const auto& g : globals) {
      if (g.name == name) return &g;
    }
    return nullptr;
  }
};

}  // namespace b2h::minicc
