#include "minicc/parser.hpp"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

namespace b2h::minicc {
namespace {

enum class TokKind {
  kEnd, kNumber, kIdent,
  // keywords
  kInt, kByte, kVoid, kIf, kElse, kWhile, kFor, kReturn,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,
  kLt, kLe, kGt, kGe, kEqEq, kNe,
  kAndAnd, kOrOr,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::int64_t number = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= source_.size()) break;
      const char c = source_[pos_];
      Token token;
      token.line = line_;
      if (std::isdigit(static_cast<unsigned char>(c))) {
        token.kind = TokKind::kNumber;
        token.number = LexNumber();
        tokens.push_back(token);
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        token.text = LexIdent();
        token.kind = Keyword(token.text);
        tokens.push_back(token);
        continue;
      }
      const auto two = [&](char second) {
        return pos_ + 1 < source_.size() && source_[pos_ + 1] == second;
      };
      switch (c) {
        case '(': token.kind = TokKind::kLParen; ++pos_; break;
        case ')': token.kind = TokKind::kRParen; ++pos_; break;
        case '{': token.kind = TokKind::kLBrace; ++pos_; break;
        case '}': token.kind = TokKind::kRBrace; ++pos_; break;
        case '[': token.kind = TokKind::kLBracket; ++pos_; break;
        case ']': token.kind = TokKind::kRBracket; ++pos_; break;
        case ';': token.kind = TokKind::kSemi; ++pos_; break;
        case ',': token.kind = TokKind::kComma; ++pos_; break;
        case '+': token.kind = TokKind::kPlus; ++pos_; break;
        case '-': token.kind = TokKind::kMinus; ++pos_; break;
        case '*': token.kind = TokKind::kStar; ++pos_; break;
        case '/': token.kind = TokKind::kSlash; ++pos_; break;
        case '%': token.kind = TokKind::kPercent; ++pos_; break;
        case '^': token.kind = TokKind::kCaret; ++pos_; break;
        case '~': token.kind = TokKind::kTilde; ++pos_; break;
        case '&':
          if (two('&')) { token.kind = TokKind::kAndAnd; pos_ += 2; }
          else { token.kind = TokKind::kAmp; ++pos_; }
          break;
        case '|':
          if (two('|')) { token.kind = TokKind::kOrOr; pos_ += 2; }
          else { token.kind = TokKind::kPipe; ++pos_; }
          break;
        case '<':
          if (two('<')) { token.kind = TokKind::kShl; pos_ += 2; }
          else if (two('=')) { token.kind = TokKind::kLe; pos_ += 2; }
          else { token.kind = TokKind::kLt; ++pos_; }
          break;
        case '>':
          if (two('>')) { token.kind = TokKind::kShr; pos_ += 2; }
          else if (two('=')) { token.kind = TokKind::kGe; pos_ += 2; }
          else { token.kind = TokKind::kGt; ++pos_; }
          break;
        case '=':
          if (two('=')) { token.kind = TokKind::kEqEq; pos_ += 2; }
          else { token.kind = TokKind::kAssign; ++pos_; }
          break;
        case '!':
          if (two('=')) { token.kind = TokKind::kNe; pos_ += 2; }
          else { token.kind = TokKind::kBang; ++pos_; }
          break;
        default: {
          std::ostringstream out;
          out << "minicc:" << line_ << ": unexpected character '" << c << "'";
          return Status::Error(ErrorKind::kParse, out.str());
        }
      }
      tokens.push_back(token);
    }
    Token end;
    end.kind = TokKind::kEnd;
    end.line = line_;
    tokens.push_back(end);
    return tokens;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < source_.size() &&
                 source_[pos_ + 1] == '/') {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < source_.size() &&
                 source_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < source_.size() &&
               !(source_[pos_] == '*' && source_[pos_ + 1] == '/')) {
          if (source_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, source_.size());
      } else {
        break;
      }
    }
  }

  std::int64_t LexNumber() {
    std::int64_t value = 0;
    if (source_[pos_] == '0' && pos_ + 1 < source_.size() &&
        (source_[pos_ + 1] == 'x' || source_[pos_ + 1] == 'X')) {
      pos_ += 2;
      while (pos_ < source_.size() &&
             std::isxdigit(static_cast<unsigned char>(source_[pos_]))) {
        const char c = source_[pos_++];
        const int digit = c <= '9' ? c - '0'
                          : c <= 'F' ? c - 'A' + 10
                                     : c - 'a' + 10;
        value = value * 16 + digit;
      }
      return value;
    }
    while (pos_ < source_.size() &&
           std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
      value = value * 10 + (source_[pos_++] - '0');
    }
    return value;
  }

  std::string LexIdent() {
    std::string text;
    while (pos_ < source_.size() &&
           (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
            source_[pos_] == '_')) {
      text.push_back(source_[pos_++]);
    }
    return text;
  }

  static TokKind Keyword(const std::string& text) {
    if (text == "int") return TokKind::kInt;
    if (text == "byte") return TokKind::kByte;
    if (text == "void") return TokKind::kVoid;
    if (text == "if") return TokKind::kIf;
    if (text == "else") return TokKind::kElse;
    if (text == "while") return TokKind::kWhile;
    if (text == "for") return TokKind::kFor;
    if (text == "return") return TokKind::kReturn;
    return TokKind::kIdent;
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Run() {
    Program program;
    while (Peek().kind != TokKind::kEnd) {
      if (Status status = ParseTopLevel(program); !status.ok()) {
        return status;
      }
    }
    if (program.FindFunction("main") == nullptr) {
      return Status::Error(ErrorKind::kParse, "minicc: missing main()");
    }
    return program;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  Token Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Accept(TokKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Fail(const std::string& message) const {
    std::ostringstream out;
    out << "minicc:" << Peek().line << ": " << message;
    return Status::Error(ErrorKind::kParse, out.str());
  }
  Status Expect(TokKind kind, const char* what) {
    if (!Accept(kind)) return Fail(std::string("expected ") + what);
    return Status::Ok();
  }

  Status ParseTopLevel(Program& program) {
    const bool is_void = Peek().kind == TokKind::kVoid;
    const bool is_byte = Peek().kind == TokKind::kByte;
    if (!is_void && !is_byte && Peek().kind != TokKind::kInt) {
      return Fail("expected 'int', 'byte' or 'void' at top level");
    }
    Next();
    if (Peek().kind != TokKind::kIdent) return Fail("expected identifier");
    Token name = Next();

    if (Peek().kind == TokKind::kLParen) {
      if (is_byte) return Fail("functions must return int or void");
      return ParseFunction(program, name.text, !is_void);
    }
    // Global variable / array.
    Global global;
    global.name = name.text;
    global.is_byte = is_byte;
    global.line = name.line;
    if (Accept(TokKind::kLBracket)) {
      if (Peek().kind != TokKind::kNumber) return Fail("expected array size");
      global.size = static_cast<std::int32_t>(Next().number);
      global.is_array = true;
      if (Status s = Expect(TokKind::kRBracket, "']'"); !s.ok()) return s;
    } else if (is_byte) {
      return Fail("byte is only valid for arrays");
    }
    if (Accept(TokKind::kAssign)) {
      if (Accept(TokKind::kLBrace)) {
        if (!global.is_array) return Fail("brace init requires array");
        while (!Accept(TokKind::kRBrace)) {
          auto v = ParseSignedNumber();
          if (!v) return Fail("expected number in initializer");
          global.init.push_back(*v);
          if (Peek().kind != TokKind::kRBrace) {
            if (Status s = Expect(TokKind::kComma, "','"); !s.ok()) return s;
          }
        }
        if (global.init.size() > static_cast<std::size_t>(global.size)) {
          return Fail("too many initializers");
        }
      } else {
        auto v = ParseSignedNumber();
        if (!v) return Fail("expected initializer value");
        global.init.push_back(*v);
      }
    }
    if (Status s = Expect(TokKind::kSemi, "';'"); !s.ok()) return s;
    program.globals.push_back(std::move(global));
    return Status::Ok();
  }

  std::optional<std::int32_t> ParseSignedNumber() {
    const bool negative = Accept(TokKind::kMinus);
    if (Peek().kind != TokKind::kNumber) return std::nullopt;
    const std::int64_t v = Next().number;
    return static_cast<std::int32_t>(negative ? -v : v);
  }

  Status ParseFunction(Program& program, const std::string& name,
                       bool returns_value) {
    Function function;
    function.name = name;
    function.returns_value = returns_value;
    function.line = Peek().line;
    if (Status s = Expect(TokKind::kLParen, "'('"); !s.ok()) return s;
    if (!Accept(TokKind::kRParen)) {
      while (true) {
        Param param;
        if (Accept(TokKind::kByte)) {
          param.is_byte = true;
        } else if (!Accept(TokKind::kInt)) {
          return Fail("expected parameter type");
        }
        if (Peek().kind != TokKind::kIdent) return Fail("expected param name");
        param.name = Next().text;
        if (Accept(TokKind::kLBracket)) {
          if (Status s = Expect(TokKind::kRBracket, "']'"); !s.ok()) return s;
          param.is_array = true;
        } else if (param.is_byte) {
          return Fail("byte parameters must be arrays");
        }
        function.params.push_back(std::move(param));
        if (Accept(TokKind::kRParen)) break;
        if (Status s = Expect(TokKind::kComma, "','"); !s.ok()) return s;
      }
    }
    if (function.params.size() > 4) {
      return Fail("at most 4 parameters supported (register convention)");
    }
    auto block = ParseBlock();
    if (!block.ok()) return block.status();
    function.body = std::move(block).take();
    program.functions.push_back(std::move(function));
    return Status::Ok();
  }

  Result<std::unique_ptr<Stmt>> ParseBlock() {
    if (Status s = Expect(TokKind::kLBrace, "'{'"); !s.ok()) return s;
    auto block = std::make_unique<Stmt>();
    block->kind = Stmt::Kind::kBlock;
    block->line = Peek().line;
    while (!Accept(TokKind::kRBrace)) {
      if (Peek().kind == TokKind::kEnd) return Fail("unterminated block");
      auto stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      block->body.push_back(std::move(stmt).take());
    }
    return block;
  }

  Result<std::unique_ptr<Stmt>> ParseStmt() {
    const int line = Peek().line;
    if (Peek().kind == TokKind::kLBrace) return ParseBlock();
    if (Accept(TokKind::kIf)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kIf;
      stmt->line = line;
      if (Status s = Expect(TokKind::kLParen, "'('"); !s.ok()) return s;
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      stmt->cond = std::move(cond).take();
      if (Status s = Expect(TokKind::kRParen, "')'"); !s.ok()) return s;
      auto then_body = ParseStmt();
      if (!then_body.ok()) return then_body.status();
      stmt->then_body = std::move(then_body).take();
      if (Accept(TokKind::kElse)) {
        auto else_body = ParseStmt();
        if (!else_body.ok()) return else_body.status();
        stmt->else_body = std::move(else_body).take();
      }
      return stmt;
    }
    if (Accept(TokKind::kWhile)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kWhile;
      stmt->line = line;
      if (Status s = Expect(TokKind::kLParen, "'('"); !s.ok()) return s;
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      stmt->cond = std::move(cond).take();
      if (Status s = Expect(TokKind::kRParen, "')'"); !s.ok()) return s;
      auto body = ParseStmt();
      if (!body.ok()) return body.status();
      stmt->then_body = std::move(body).take();
      return stmt;
    }
    if (Accept(TokKind::kFor)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kFor;
      stmt->line = line;
      if (Status s = Expect(TokKind::kLParen, "'('"); !s.ok()) return s;
      if (!Accept(TokKind::kSemi)) {
        auto init = ParseSimpleStmt();
        if (!init.ok()) return init.status();
        stmt->init = std::move(init).take();
        if (Status s = Expect(TokKind::kSemi, "';'"); !s.ok()) return s;
      }
      if (!Accept(TokKind::kSemi)) {
        auto cond = ParseExpr();
        if (!cond.ok()) return cond.status();
        stmt->cond = std::move(cond).take();
        if (Status s = Expect(TokKind::kSemi, "';'"); !s.ok()) return s;
      }
      if (!Accept(TokKind::kRParen)) {
        auto step = ParseSimpleStmt();
        if (!step.ok()) return step.status();
        stmt->step = std::move(step).take();
        if (Status s = Expect(TokKind::kRParen, "')'"); !s.ok()) return s;
      }
      auto body = ParseStmt();
      if (!body.ok()) return body.status();
      stmt->then_body = std::move(body).take();
      return stmt;
    }
    if (Accept(TokKind::kReturn)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kReturn;
      stmt->line = line;
      if (!Accept(TokKind::kSemi)) {
        auto value = ParseExpr();
        if (!value.ok()) return value.status();
        stmt->value = std::move(value).take();
        if (Status s = Expect(TokKind::kSemi, "';'"); !s.ok()) return s;
      }
      return stmt;
    }
    auto simple = ParseSimpleStmt();
    if (!simple.ok()) return simple.status();
    if (Status s = Expect(TokKind::kSemi, "';'"); !s.ok()) return s;
    return simple;
  }

  /// Declaration, assignment, or expression statement (no trailing ';').
  Result<std::unique_ptr<Stmt>> ParseSimpleStmt() {
    const int line = Peek().line;
    if (Accept(TokKind::kInt)) {
      if (Peek().kind != TokKind::kIdent) return Fail("expected name");
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kDecl;
      stmt->line = line;
      stmt->name = Next().text;
      if (Accept(TokKind::kAssign)) {
        auto value = ParseExpr();
        if (!value.ok()) return value.status();
        stmt->value = std::move(value).take();
      }
      return stmt;
    }
    // Assignment or call: need lookahead after the identifier.
    if (Peek().kind == TokKind::kIdent) {
      if (Peek(1).kind == TokKind::kAssign) {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kAssign;
        stmt->line = line;
        stmt->name = Next().text;
        Next();  // '='
        auto value = ParseExpr();
        if (!value.ok()) return value.status();
        stmt->value = std::move(value).take();
        return stmt;
      }
      if (Peek(1).kind == TokKind::kLBracket) {
        // Could be a[i] = ... — parse index then require '='.
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kAssign;
        stmt->line = line;
        stmt->name = Next().text;
        Next();  // '['
        auto index = ParseExpr();
        if (!index.ok()) return index.status();
        stmt->index = std::move(index).take();
        if (Status s = Expect(TokKind::kRBracket, "']'"); !s.ok()) return s;
        if (Status s = Expect(TokKind::kAssign, "'='"); !s.ok()) return s;
        auto value = ParseExpr();
        if (!value.ok()) return value.status();
        stmt->value = std::move(value).take();
        return stmt;
      }
    }
    auto expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kExpr;
    stmt->line = line;
    stmt->value = std::move(expr).take();
    return stmt;
  }

  // Precedence climbing: || < && < | < ^ < & < ==/!= < relational < shifts
  // < additive < multiplicative < unary.
  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseBinary(0); }

  static std::optional<std::pair<BinaryOp, int>> BinOpFor(TokKind kind) {
    switch (kind) {
      case TokKind::kOrOr:   return {{BinaryOp::kLogicalOr, 1}};
      case TokKind::kAndAnd: return {{BinaryOp::kLogicalAnd, 2}};
      case TokKind::kPipe:   return {{BinaryOp::kOr, 3}};
      case TokKind::kCaret:  return {{BinaryOp::kXor, 4}};
      case TokKind::kAmp:    return {{BinaryOp::kAnd, 5}};
      case TokKind::kEqEq:   return {{BinaryOp::kEq, 6}};
      case TokKind::kNe:     return {{BinaryOp::kNe, 6}};
      case TokKind::kLt:     return {{BinaryOp::kLt, 7}};
      case TokKind::kLe:     return {{BinaryOp::kLe, 7}};
      case TokKind::kGt:     return {{BinaryOp::kGt, 7}};
      case TokKind::kGe:     return {{BinaryOp::kGe, 7}};
      case TokKind::kShl:    return {{BinaryOp::kShl, 8}};
      case TokKind::kShr:    return {{BinaryOp::kShr, 8}};
      case TokKind::kPlus:   return {{BinaryOp::kAdd, 9}};
      case TokKind::kMinus:  return {{BinaryOp::kSub, 9}};
      case TokKind::kStar:   return {{BinaryOp::kMul, 10}};
      case TokKind::kSlash:  return {{BinaryOp::kDiv, 10}};
      case TokKind::kPercent: return {{BinaryOp::kRem, 10}};
      default: return std::nullopt;
    }
  }

  Result<std::unique_ptr<Expr>> ParseBinary(int min_prec) {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs.status();
    auto left = std::move(lhs).take();
    while (true) {
      const auto op = BinOpFor(Peek().kind);
      if (!op || op->second < min_prec) return left;
      const int line = Next().line;
      auto rhs = ParseBinary(op->second + 1);
      if (!rhs.ok()) return rhs.status();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->bop = op->first;
      node->a = std::move(left);
      node->b = std::move(rhs).take();
      node->line = line;
      left = std::move(node);
    }
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    const int line = Peek().line;
    const auto make_unary = [&](UnaryOp op,
                                std::unique_ptr<Expr> inner) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->uop = op;
      node->a = std::move(inner);
      node->line = line;
      return node;
    };
    if (Accept(TokKind::kMinus)) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner.status();
      return make_unary(UnaryOp::kNeg, std::move(inner).take());
    }
    if (Accept(TokKind::kBang)) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner.status();
      return make_unary(UnaryOp::kNot, std::move(inner).take());
    }
    if (Accept(TokKind::kTilde)) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner.status();
      return make_unary(UnaryOp::kBitNot, std::move(inner).take());
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const int line = Peek().line;
    if (Peek().kind == TokKind::kNumber) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->value = static_cast<std::int32_t>(Next().number);
      node->line = line;
      return node;
    }
    if (Accept(TokKind::kLParen)) {
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      if (Status s = Expect(TokKind::kRParen, "')'"); !s.ok()) return s;
      return inner;
    }
    if (Peek().kind == TokKind::kIdent) {
      std::string name = Next().text;
      if (Accept(TokKind::kLBracket)) {
        auto index = ParseExpr();
        if (!index.ok()) return index.status();
        if (Status s = Expect(TokKind::kRBracket, "']'"); !s.ok()) return s;
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kIndex;
        node->name = std::move(name);
        node->a = std::move(index).take();
        node->line = line;
        return node;
      }
      if (Accept(TokKind::kLParen)) {
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kCall;
        node->name = std::move(name);
        node->line = line;
        if (!Accept(TokKind::kRParen)) {
          while (true) {
            auto arg = ParseExpr();
            if (!arg.ok()) return arg.status();
            node->args.push_back(std::move(arg).take());
            if (Accept(TokKind::kRParen)) break;
            if (Status s = Expect(TokKind::kComma, "','"); !s.ok()) return s;
          }
        }
        return node;
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kVar;
      node->name = std::move(name);
      node->line = line;
      return node;
    }
    return Fail("expected expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(std::string_view source) {
  Lexer lexer(source);
  auto tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).take());
  return parser.Run();
}

}  // namespace b2h::minicc
