// MiniC lexer + recursive-descent parser.
#pragma once

#include <string_view>

#include "minicc/ast.hpp"
#include "support/error.hpp"

namespace b2h::minicc {

/// Parse MiniC source into an AST.  Diagnostics carry line numbers.
[[nodiscard]] Result<Program> Parse(std::string_view source);

}  // namespace b2h::minicc
