#include "minicc/codegen.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "minicc/parser.hpp"
#include "mips/assembler.hpp"
#include "support/bits.hpp"

namespace b2h::minicc {
namespace {

// ---------------------------------------------------------------------------
// AST utilities: clone, constant folding, loop unrolling.
// ---------------------------------------------------------------------------

std::unique_ptr<Expr> CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->value = e.value;
  out->name = e.name;
  out->bop = e.bop;
  out->uop = e.uop;
  out->line = e.line;
  if (e.a) out->a = CloneExpr(*e.a);
  if (e.b) out->b = CloneExpr(*e.b);
  for (const auto& arg : e.args) out->args.push_back(CloneExpr(*arg));
  return out;
}

std::unique_ptr<Stmt> CloneStmt(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->name = s.name;
  out->line = s.line;
  if (s.index) out->index = CloneExpr(*s.index);
  if (s.value) out->value = CloneExpr(*s.value);
  if (s.init) out->init = CloneStmt(*s.init);
  if (s.cond) out->cond = CloneExpr(*s.cond);
  if (s.step) out->step = CloneStmt(*s.step);
  if (s.then_body) out->then_body = CloneStmt(*s.then_body);
  if (s.else_body) out->else_body = CloneStmt(*s.else_body);
  for (const auto& child : s.body) out->body.push_back(CloneStmt(*child));
  return out;
}

std::optional<std::int32_t> EvalConst(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return e.value;
    case Expr::Kind::kUnary: {
      const auto a = EvalConst(*e.a);
      if (!a) return std::nullopt;
      switch (e.uop) {
        case UnaryOp::kNeg: return -*a;
        case UnaryOp::kNot: return *a == 0 ? 1 : 0;
        case UnaryOp::kBitNot: return ~*a;
      }
      return std::nullopt;
    }
    case Expr::Kind::kBinary: {
      const auto a = EvalConst(*e.a);
      const auto b = EvalConst(*e.b);
      if (!a || !b) return std::nullopt;
      const auto ua = static_cast<std::uint32_t>(*a);
      const auto ub = static_cast<std::uint32_t>(*b);
      switch (e.bop) {
        case BinaryOp::kAdd: return static_cast<std::int32_t>(ua + ub);
        case BinaryOp::kSub: return static_cast<std::int32_t>(ua - ub);
        case BinaryOp::kMul: return static_cast<std::int32_t>(ua * ub);
        case BinaryOp::kDiv:
          return *b == 0 ? 0 : (*a == INT32_MIN && *b == -1) ? INT32_MIN
                                                             : *a / *b;
        case BinaryOp::kRem:
          return *b == 0 ? *a : (*a == INT32_MIN && *b == -1) ? 0 : *a % *b;
        case BinaryOp::kAnd: return static_cast<std::int32_t>(ua & ub);
        case BinaryOp::kOr:  return static_cast<std::int32_t>(ua | ub);
        case BinaryOp::kXor: return static_cast<std::int32_t>(ua ^ ub);
        case BinaryOp::kShl: return static_cast<std::int32_t>(ua << (ub & 31));
        case BinaryOp::kShr: return *a >> (ub & 31);
        case BinaryOp::kLt: return *a < *b;
        case BinaryOp::kLe: return *a <= *b;
        case BinaryOp::kGt: return *a > *b;
        case BinaryOp::kGe: return *a >= *b;
        case BinaryOp::kEq: return *a == *b;
        case BinaryOp::kNe: return *a != *b;
        case BinaryOp::kLogicalAnd: return (*a != 0 && *b != 0) ? 1 : 0;
        case BinaryOp::kLogicalOr: return (*a != 0 || *b != 0) ? 1 : 0;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

void FoldExpr(std::unique_ptr<Expr>& e) {
  if (!e) return;
  FoldExpr(e->a);
  FoldExpr(e->b);
  for (auto& arg : e->args) FoldExpr(arg);
  if (e->kind == Expr::Kind::kUnary || e->kind == Expr::Kind::kBinary) {
    if (const auto v = EvalConst(*e)) {
      auto folded = std::make_unique<Expr>();
      folded->kind = Expr::Kind::kNumber;
      folded->value = *v;
      folded->line = e->line;
      e = std::move(folded);
    }
  }
}

void FoldStmt(Stmt& s) {
  FoldExpr(s.index);
  FoldExpr(s.value);
  FoldExpr(s.cond);
  if (s.init) FoldStmt(*s.init);
  if (s.step) FoldStmt(*s.step);
  if (s.then_body) FoldStmt(*s.then_body);
  if (s.else_body) FoldStmt(*s.else_body);
  for (auto& child : s.body) FoldStmt(*child);
}

/// Substitute every use of variable `name` in `e` with (name + delta).
/// delta == 0 still introduces the addition so that all unrolled sections
/// are textually isomorphic (which is what loop rerolling matches on).
void SubstituteIndex(Expr& e, const std::string& name, std::int32_t delta) {
  if (e.kind == Expr::Kind::kVar && e.name == name) {
    auto base = std::make_unique<Expr>();
    base->kind = Expr::Kind::kVar;
    base->name = name;
    base->line = e.line;
    auto offset = std::make_unique<Expr>();
    offset->kind = Expr::Kind::kNumber;
    offset->value = delta;
    offset->line = e.line;
    e.kind = Expr::Kind::kBinary;
    e.bop = BinaryOp::kAdd;
    e.name.clear();
    e.a = std::move(base);
    e.b = std::move(offset);
    return;
  }
  if (e.a) SubstituteIndex(*e.a, name, delta);
  if (e.b) SubstituteIndex(*e.b, name, delta);
  for (auto& arg : e.args) SubstituteIndex(*arg, name, delta);
}

void SubstituteIndexStmt(Stmt& s, const std::string& name,
                         std::int32_t delta) {
  if (s.index) SubstituteIndex(*s.index, name, delta);
  if (s.value) SubstituteIndex(*s.value, name, delta);
  if (s.cond) SubstituteIndex(*s.cond, name, delta);
  if (s.init) SubstituteIndexStmt(*s.init, name, delta);
  if (s.step) SubstituteIndexStmt(*s.step, name, delta);
  if (s.then_body) SubstituteIndexStmt(*s.then_body, name, delta);
  if (s.else_body) SubstituteIndexStmt(*s.else_body, name, delta);
  for (auto& child : s.body) SubstituteIndexStmt(*child, name, delta);
}

bool AssignsTo(const Stmt& s, const std::string& name) {
  if ((s.kind == Stmt::Kind::kAssign || s.kind == Stmt::Kind::kDecl) &&
      s.name == name && !s.index) {
    return true;
  }
  if (s.init && AssignsTo(*s.init, name)) return true;
  if (s.step && AssignsTo(*s.step, name)) return true;
  if (s.then_body && AssignsTo(*s.then_body, name)) return true;
  if (s.else_body && AssignsTo(*s.else_body, name)) return true;
  for (const auto& child : s.body) {
    if (AssignsTo(*child, name)) return true;
  }
  return false;
}

bool HasReturn(const Stmt& s) {
  if (s.kind == Stmt::Kind::kReturn) return true;
  if (s.init && HasReturn(*s.init)) return true;
  if (s.step && HasReturn(*s.step)) return true;
  if (s.then_body && HasReturn(*s.then_body)) return true;
  if (s.else_body && HasReturn(*s.else_body)) return true;
  for (const auto& child : s.body) {
    if (HasReturn(*child)) return true;
  }
  return false;
}

/// Recognize `for (i = c0; i < N; i = i + s)` with constant c0, N, s.
struct CountedLoop {
  std::string var;
  std::int32_t start = 0;
  std::int32_t bound = 0;
  std::int32_t step = 1;
};

std::optional<CountedLoop> MatchCountedLoop(const Stmt& s) {
  if (s.kind != Stmt::Kind::kFor || !s.init || !s.cond || !s.step) {
    return std::nullopt;
  }
  CountedLoop loop;
  // init: i = const
  const Stmt& init = *s.init;
  if ((init.kind != Stmt::Kind::kDecl && init.kind != Stmt::Kind::kAssign) ||
      init.index || !init.value) {
    return std::nullopt;
  }
  const auto start = EvalConst(*init.value);
  if (!start) return std::nullopt;
  loop.var = init.name;
  loop.start = *start;
  // cond: i < const
  const Expr& cond = *s.cond;
  if (cond.kind != Expr::Kind::kBinary || cond.bop != BinaryOp::kLt ||
      cond.a->kind != Expr::Kind::kVar || cond.a->name != loop.var) {
    return std::nullopt;
  }
  const auto bound = EvalConst(*cond.b);
  if (!bound) return std::nullopt;
  loop.bound = *bound;
  // step: i = i + const
  const Stmt& step = *s.step;
  if (step.kind != Stmt::Kind::kAssign || step.index || step.name != loop.var ||
      !step.value || step.value->kind != Expr::Kind::kBinary ||
      step.value->bop != BinaryOp::kAdd ||
      step.value->a->kind != Expr::Kind::kVar ||
      step.value->a->name != loop.var) {
    return std::nullopt;
  }
  const auto inc = EvalConst(*step.value->b);
  if (!inc || *inc <= 0) return std::nullopt;
  loop.step = *inc;
  return loop;
}

/// O3: unroll eligible innermost counted loops by `factor`.
void UnrollStmt(Stmt& s, int factor) {
  if (s.init) UnrollStmt(*s.init, factor);
  if (s.step) UnrollStmt(*s.step, factor);
  if (s.then_body) UnrollStmt(*s.then_body, factor);
  if (s.else_body) UnrollStmt(*s.else_body, factor);
  for (auto& child : s.body) UnrollStmt(*child, factor);

  const auto loop = MatchCountedLoop(s);
  if (!loop) return;
  // Innermost only: body must not contain loops or returns, and must not
  // reassign the induction variable.
  const std::function<bool(const Stmt&)> has_loop = [&](const Stmt& t) {
    if (t.kind == Stmt::Kind::kFor || t.kind == Stmt::Kind::kWhile) {
      return true;
    }
    if (t.init && has_loop(*t.init)) return true;
    if (t.step && has_loop(*t.step)) return true;
    if (t.then_body && has_loop(*t.then_body)) return true;
    if (t.else_body && has_loop(*t.else_body)) return true;
    for (const auto& child : t.body) {
      if (has_loop(*child)) return true;
    }
    return false;
  };
  if (has_loop(*s.then_body) || HasReturn(*s.then_body) ||
      AssignsTo(*s.then_body, loop->var)) {
    return;
  }
  const std::int64_t trips =
      (static_cast<std::int64_t>(loop->bound) - loop->start + loop->step - 1) /
      loop->step;
  if (trips <= 0) return;
  // Fall back to factor 2 when the trip count is not a multiple of the
  // requested factor (gcc behaves similarly before peeling remainders).
  if (trips % factor != 0) {
    if (factor > 2 && trips % 2 == 0) {
      factor = 2;
    } else {
      return;
    }
  }

  // Build the unrolled body: factor copies with i -> i + j*step.
  auto unrolled = std::make_unique<Stmt>();
  unrolled->kind = Stmt::Kind::kBlock;
  unrolled->line = s.then_body->line;
  for (int j = 0; j < factor; ++j) {
    auto copy = CloneStmt(*s.then_body);
    SubstituteIndexStmt(*copy, loop->var,
                        static_cast<std::int32_t>(j) * loop->step);
    unrolled->body.push_back(std::move(copy));
  }
  s.then_body = std::move(unrolled);
  // New step: i = i + factor*step.
  s.step->value->b->value = loop->step * factor;
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

/// Register names used by the generator (ABI roles in codegen.hpp).
constexpr const char* kTemp[] = {"$t0", "$t1", "$t2", "$t3",
                                 "$t4", "$t5", "$t6", "$t7"};
constexpr int kNumTemps = 8;
constexpr const char* kSaved[] = {"$s0", "$s1", "$s2", "$s3",
                                  "$s4", "$s5", "$s6", "$s7"};
constexpr int kNumSaved = 8;
constexpr int kCallSpillWords = 8;

struct Location {
  enum class Kind { kSReg, kStack };
  Kind kind = Kind::kStack;
  int index = 0;  ///< s-register number or stack word offset
};

class FunctionCodegen {
 public:
  FunctionCodegen(const Program& program, const Function& fn,
                  const CompileOptions& options, std::ostringstream& out,
                  int& label_counter)
      : program_(program), fn_(fn), options_(options), out_(out),
        label_counter_(label_counter) {}

  Status Run() {
    PlanLocals();
    EmitPrologue();
    if (Status s = EmitStmt(*fn_.body); !s.ok()) return s;
    // Fall through to the epilogue (implicit `return 0`).
    EmitLine("move $v0, $zero");
    EmitEpilogue();
    return Status::Ok();
  }

 private:
  // ---- planning -----------------------------------------------------------

  void CollectLocals(const Stmt& s, std::vector<std::string>& names) {
    if (s.kind == Stmt::Kind::kDecl) {
      if (std::find(names.begin(), names.end(), s.name) == names.end()) {
        names.push_back(s.name);
      }
    }
    if (s.init) CollectLocals(*s.init, names);
    if (s.step) CollectLocals(*s.step, names);
    if (s.then_body) CollectLocals(*s.then_body, names);
    if (s.else_body) CollectLocals(*s.else_body, names);
    for (const auto& child : s.body) CollectLocals(*child, names);
  }

  void CollectCalls(const Stmt& s, bool& has_calls) {
    const std::function<void(const Expr&)> walk_expr = [&](const Expr& e) {
      if (e.kind == Expr::Kind::kCall) has_calls = true;
      if (e.a) walk_expr(*e.a);
      if (e.b) walk_expr(*e.b);
      for (const auto& arg : e.args) walk_expr(*arg);
    };
    if (s.index) walk_expr(*s.index);
    if (s.value) walk_expr(*s.value);
    if (s.cond) walk_expr(*s.cond);
    if (s.init) CollectCalls(*s.init, has_calls);
    if (s.step) CollectCalls(*s.step, has_calls);
    if (s.then_body) CollectCalls(*s.then_body, has_calls);
    if (s.else_body) CollectCalls(*s.else_body, has_calls);
    for (const auto& child : s.body) CollectCalls(*child, has_calls);
  }

  /// Global arrays referenced inside `s` (for O2+ base hoisting).
  void CollectArrays(const Stmt& s, std::vector<std::string>& names) {
    const std::function<void(const Expr&)> walk_expr = [&](const Expr& e) {
      if (e.kind == Expr::Kind::kIndex &&
          program_.FindGlobal(e.name) != nullptr &&
          std::find(names.begin(), names.end(), e.name) == names.end()) {
        names.push_back(e.name);
      }
      if (e.a) walk_expr(*e.a);
      if (e.b) walk_expr(*e.b);
      for (const auto& arg : e.args) walk_expr(*arg);
    };
    if (s.kind == Stmt::Kind::kAssign && s.index &&
        program_.FindGlobal(s.name) != nullptr &&
        std::find(names.begin(), names.end(), s.name) == names.end()) {
      names.push_back(s.name);
    }
    if (s.index) walk_expr(*s.index);
    if (s.value) walk_expr(*s.value);
    if (s.cond) walk_expr(*s.cond);
    if (s.init) CollectArrays(*s.init, names);
    if (s.step) CollectArrays(*s.step, names);
    if (s.then_body) CollectArrays(*s.then_body, names);
    if (s.else_body) CollectArrays(*s.else_body, names);
    for (const auto& child : s.body) CollectArrays(*child, names);
  }

  void PlanLocals() {
    std::vector<std::string> names;
    for (const auto& param : fn_.params) names.push_back(param.name);
    CollectLocals(*fn_.body, names);
    CollectCalls(*fn_.body, has_calls_);

    int next_sreg = 0;
    int next_stack_word = kCallSpillWords;  // spill area sits at sp+0
    if (options_.opt_level >= 1) {
      for (const auto& name : names) {
        if (next_sreg < kNumSaved) {
          locals_[name] = {Location::Kind::kSReg, next_sreg++};
        } else {
          locals_[name] = {Location::Kind::kStack, next_stack_word++};
        }
      }
    } else {
      for (const auto& name : names) {
        locals_[name] = {Location::Kind::kStack, next_stack_word++};
      }
    }
    used_sregs_ = next_sreg;
    // Hoist pool: remaining s-registers (O2+).
    hoist_pool_base_ = next_sreg;
    hoist_pool_size_ =
        options_.opt_level >= 2 ? kNumSaved - next_sreg : 0;
    used_sregs_total_ = next_sreg + hoist_pool_size_;

    stack_words_ = next_stack_word;
    // Layout: [0, kCallSpillWords) spills | locals | saved s | ra.
    saved_base_ = stack_words_;
    ra_word_ = saved_base_ + used_sregs_total_;
    frame_words_ = ra_word_ + (has_calls_ ? 1 : 0);
    frame_words_ = (frame_words_ + 1) & ~1;  // 8-byte align
    if (frame_words_ == 0) frame_words_ = 2;
  }

  // ---- emission helpers ---------------------------------------------------

  void EmitLine(const std::string& line) { out_ << "  " << line << "\n"; }
  void EmitLabel(const std::string& label) { out_ << label << ":\n"; }
  std::string NewLabel(const char* hint) {
    std::ostringstream label;
    label << fn_.name << "_" << hint << "_" << label_counter_++;
    return label.str();
  }
  static std::string Imm(std::int32_t v) { return std::to_string(v); }

  void EmitPrologue() {
    EmitLabel(fn_.name);
    EmitLine("addiu $sp, $sp, " + Imm(-4 * frame_words_));
    if (has_calls_) {
      EmitLine("sw $ra, " + Imm(4 * ra_word_) + "($sp)");
    }
    for (int i = 0; i < used_sregs_total_; ++i) {
      EmitLine(std::string("sw ") + kSaved[i] + ", " +
               Imm(4 * (saved_base_ + i)) + "($sp)");
    }
    // Move parameters to their homes.
    static constexpr const char* kArgRegs[] = {"$a0", "$a1", "$a2", "$a3"};
    for (std::size_t i = 0; i < fn_.params.size(); ++i) {
      const Location loc = locals_.at(fn_.params[i].name);
      if (loc.kind == Location::Kind::kSReg) {
        EmitLine(std::string("move ") + kSaved[loc.index] + ", " +
                 kArgRegs[i]);
      } else {
        EmitLine(std::string("sw ") + kArgRegs[i] + ", " +
                 Imm(4 * loc.index) + "($sp)");
      }
    }
  }

  void EmitEpilogue() {
    EmitLabel(fn_.name + "_epilogue");
    for (int i = 0; i < used_sregs_total_; ++i) {
      EmitLine(std::string("lw ") + kSaved[i] + ", " +
               Imm(4 * (saved_base_ + i)) + "($sp)");
    }
    if (has_calls_) {
      EmitLine("lw $ra, " + Imm(4 * ra_word_) + "($sp)");
    }
    EmitLine("addiu $sp, $sp, " + Imm(4 * frame_words_));
    EmitLine("jr $ra");
  }

  // ---- temp register stack ------------------------------------------------

  std::string PushTemp() {
    Check(temp_depth_ < kNumTemps, "minicc: expression too deep");
    return kTemp[temp_depth_++];
  }
  void PopTemp() {
    Check(temp_depth_ > 0, "minicc: temp underflow");
    --temp_depth_;
  }
  [[nodiscard]] std::string TopTemp() const {
    Check(temp_depth_ > 0, "minicc: temp stack empty");
    return kTemp[temp_depth_ - 1];
  }

  // ---- variable access ----------------------------------------------------

  [[nodiscard]] bool IsLocal(const std::string& name) const {
    return locals_.count(name) != 0;
  }

  /// Load variable `name` into `reg`.
  Status LoadVar(const std::string& name, const std::string& reg) {
    if (const auto it = locals_.find(name); it != locals_.end()) {
      if (it->second.kind == Location::Kind::kSReg) {
        EmitLine("move " + reg + ", " + kSaved[it->second.index]);
      } else {
        EmitLine("lw " + reg + ", " + Imm(4 * it->second.index) + "($sp)");
      }
      return Status::Ok();
    }
    const Global* global = program_.FindGlobal(name);
    if (global == nullptr || global->is_array) {
      return Error("unknown scalar variable '" + name + "'");
    }
    EmitLine("la $t8, " + name);
    EmitLine("lw " + reg + ", 0($t8)");
    return Status::Ok();
  }

  /// Store `reg` into variable `name`.
  Status StoreVar(const std::string& name, const std::string& reg) {
    if (const auto it = locals_.find(name); it != locals_.end()) {
      if (it->second.kind == Location::Kind::kSReg) {
        EmitLine(std::string("move ") + kSaved[it->second.index] + ", " + reg);
      } else {
        EmitLine("sw " + reg + ", " + Imm(4 * it->second.index) + "($sp)");
      }
      return Status::Ok();
    }
    const Global* global = program_.FindGlobal(name);
    if (global == nullptr || global->is_array) {
      return Error("unknown scalar variable '" + name + "'");
    }
    EmitLine("la $t8, " + name);
    EmitLine("sw " + reg + ", 0($t8)");
    return Status::Ok();
  }

  /// Element info for array `name`: byte element? local base? hoisted reg?
  struct ArrayRef {
    bool is_byte = false;
    bool base_is_local = false;   // parameter array
    std::string hoisted_reg;      // non-empty when base lives in an s-reg
    std::string name;
  };

  Result<ArrayRef> ResolveArray(const std::string& name) {
    ArrayRef ref;
    ref.name = name;
    if (const auto it = locals_.find(name); it != locals_.end()) {
      // Parameter array: element type from the parameter declaration.
      for (const auto& param : fn_.params) {
        if (param.name == name) {
          if (!param.is_array) return Error("'" + name + "' is not an array");
          ref.is_byte = param.is_byte;
          ref.base_is_local = true;
          return ref;
        }
      }
      return Error("local '" + name + "' used as array");
    }
    const Global* global = program_.FindGlobal(name);
    if (global == nullptr || !global->is_array) {
      return Error("unknown array '" + name + "'");
    }
    ref.is_byte = global->is_byte;
    if (const auto it = hoisted_.find(name); it != hoisted_.end()) {
      ref.hoisted_reg = it->second;
    }
    return ref;
  }

  /// Compute the address of name[index_expr] into $t8 (clobbers $t9).
  Status EmitAddress(const ArrayRef& ref, const Expr& index) {
    if (Status s = EmitExpr(index); !s.ok()) return s;
    const std::string idx = TopTemp();
    if (!ref.is_byte) {
      EmitLine("sll $t9, " + idx + ", 2");
    } else {
      EmitLine("move $t9, " + idx);
    }
    PopTemp();
    if (!ref.hoisted_reg.empty()) {
      EmitLine("addu $t8, " + ref.hoisted_reg + ", $t9");
    } else if (ref.base_is_local) {
      if (Status s = LoadVar(ref.name, "$t8"); !s.ok()) return s;
      EmitLine("addu $t8, $t8, $t9");
    } else {
      EmitLine("la $t8, " + ref.name);
      EmitLine("addu $t8, $t8, $t9");
    }
    return Status::Ok();
  }

  // ---- expressions --------------------------------------------------------

  Status Error(const std::string& message) const {
    return Status::Error(ErrorKind::kParse, "minicc codegen: " + message);
  }

  /// Evaluate `e` into a fresh temp (left on the temp stack).
  Status EmitExpr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNumber: {
        const std::string reg = PushTemp();
        EmitLine("li " + reg + ", " + Imm(e.value));
        return Status::Ok();
      }
      case Expr::Kind::kVar: {
        // Array name used as a value = its base address.
        if (const Global* g = program_.FindGlobal(e.name);
            g != nullptr && g->is_array && !IsLocal(e.name)) {
          const std::string reg = PushTemp();
          EmitLine("la " + reg + ", " + e.name);
          return Status::Ok();
        }
        const std::string reg = PushTemp();
        return LoadVar(e.name, reg);
      }
      case Expr::Kind::kIndex: {
        auto ref = ResolveArray(e.name);
        if (!ref.ok()) return ref.status();
        if (Status s = EmitAddress(ref.value(), *e.a); !s.ok()) return s;
        const std::string reg = PushTemp();
        EmitLine((ref.value().is_byte ? "lbu " : "lw ") + reg + ", 0($t8)");
        return Status::Ok();
      }
      case Expr::Kind::kUnary:
        return EmitUnary(e);
      case Expr::Kind::kBinary:
        return EmitBinary(e);
      case Expr::Kind::kCall:
        return EmitCall(e);
    }
    return Error("bad expression");
  }

  Status EmitUnary(const Expr& e) {
    if (Status s = EmitExpr(*e.a); !s.ok()) return s;
    const std::string reg = TopTemp();
    switch (e.uop) {
      case UnaryOp::kNeg:
        EmitLine("subu " + reg + ", $zero, " + reg);
        break;
      case UnaryOp::kNot:
        EmitLine("sltiu " + reg + ", " + reg + ", 1");
        break;
      case UnaryOp::kBitNot:
        EmitLine("nor " + reg + ", " + reg + ", $zero");
        break;
    }
    return Status::Ok();
  }

  /// Strength-reduce x*c into shifts/adds (O2+).  Returns true if handled.
  bool TryStrengthReduceMul(const std::string& dst, const std::string& src,
                            std::int32_t c) {
    if (options_.opt_level < 2) return false;
    if (c == 0) {
      EmitLine("move " + dst + ", $zero");
      return true;
    }
    if (c == 1) {
      if (dst != src) EmitLine("move " + dst + ", " + src);
      return true;
    }
    const bool negative = c < 0;
    const auto uc = static_cast<std::uint32_t>(negative ? -c : c);
    if (IsPowerOfTwo(uc)) {
      EmitLine("sll " + dst + ", " + src + ", " + Imm(Log2(uc)));
      if (negative) EmitLine("subu " + dst + ", $zero, " + dst);
      return true;
    }
    // c = 2^a + 2^b (two set bits) -> (x<<a) + (x<<b).
    if (PopCount(uc) == 2) {
      const unsigned hi = Log2(uc);
      const unsigned lo = Log2((uc & (uc - 1)) ^ uc);
      EmitLine("sll $t9, " + src + ", " + Imm(hi));
      if (lo == 0) {
        EmitLine("addu " + dst + ", $t9, " + src);
      } else {
        EmitLine("sll " + dst + ", " + src + ", " + Imm(lo));
        EmitLine("addu " + dst + ", $t9, " + dst);
      }
      if (negative) EmitLine("subu " + dst + ", $zero, " + dst);
      return true;
    }
    // c = 2^k - 1 -> (x<<k) - x.
    if (IsPowerOfTwo(uc + 1)) {
      EmitLine("sll $t9, " + src + ", " + Imm(Log2(uc + 1)));
      EmitLine("subu " + dst + ", $t9, " + src);
      if (negative) EmitLine("subu " + dst + ", $zero, " + dst);
      return true;
    }
    // c = 2^a + 2^b + 2^d (three set bits) -> three shifts, two adds.
    if (PopCount(uc) == 3) {
      const unsigned b2 = Log2(uc);
      std::uint32_t rest = uc ^ (1u << b2);
      const unsigned b1 = Log2(rest);
      rest ^= 1u << b1;
      const unsigned b0 = Log2(rest);
      const std::string scratch = PushTemp();
      EmitLine("sll $t9, " + src + ", " + Imm(b2));
      EmitLine("sll " + scratch + ", " + src + ", " + Imm(b1));
      EmitLine("addu $t9, $t9, " + scratch);
      if (b0 == 0) {
        EmitLine("addu " + dst + ", $t9, " + src);
      } else {
        EmitLine("sll " + dst + ", " + src + ", " + Imm(b0));
        EmitLine("addu " + dst + ", $t9, " + dst);
      }
      PopTemp();
      if (negative) EmitLine("subu " + dst + ", $zero, " + dst);
      return true;
    }
    return false;
  }

  Status EmitBinary(const Expr& e) {
    using enum BinaryOp;
    // Short-circuit logical operators in value context.
    if (e.bop == kLogicalAnd || e.bop == kLogicalOr) {
      const std::string done = NewLabel("sc");
      // Reserve the result register while sub-conditions evaluate (they use
      // temps above it; the early-exit `li` into it must not be clobbered
      // by, nor clobber, the condition value).
      const std::string reg = PushTemp();
      if (e.bop == kLogicalAnd) {
        // Early exit with 0 when either side is false.
        if (Status s = EmitCondBranchInternal(*e.a, done, false, reg, false);
            !s.ok()) {
          return s;
        }
        if (Status s = EmitCondBranchInternal(*e.b, done, false, reg, false);
            !s.ok()) {
          return s;
        }
        EmitLine("li " + reg + ", 1");
      } else {
        // Early exit with 1 when either side is true.
        if (Status s = EmitCondBranchInternal(*e.a, done, true, reg, true);
            !s.ok()) {
          return s;
        }
        if (Status s = EmitCondBranchInternal(*e.b, done, true, reg, true);
            !s.ok()) {
          return s;
        }
        EmitLine("li " + reg + ", 0");
      }
      EmitLabel(done);
      // `reg` is still reserved on the temp stack and now holds the result.
      return Status::Ok();
    }

    // Strength-reduced multiply by constant (O2+).
    if (e.bop == kMul) {
      const auto ca = EvalConst(*e.a);
      const auto cb = EvalConst(*e.b);
      const Expr* var_side = cb ? e.a.get() : (ca ? e.b.get() : nullptr);
      const std::optional<std::int32_t> c = cb ? cb : ca;
      if (var_side != nullptr && c && options_.opt_level >= 2) {
        if (Status s = EmitExpr(*var_side); !s.ok()) return s;
        const std::string reg = TopTemp();
        if (TryStrengthReduceMul(reg, reg, *c)) return Status::Ok();
        // Fall through to the generic path with the value already emitted.
        const std::string rhs = PushTemp();
        EmitLine("li " + rhs + ", " + Imm(*c));
        EmitLine("mult " + reg + ", " + rhs);
        PopTemp();
        EmitLine("mflo " + reg);
        return Status::Ok();
      }
    }
    // Division / remainder by a power of two (O2+): signed shift sequence.
    if ((e.bop == kDiv || e.bop == kRem) && options_.opt_level >= 2) {
      const auto cb = EvalConst(*e.b);
      if (cb && *cb > 1 && IsPowerOfTwo(static_cast<std::uint32_t>(*cb))) {
        const unsigned k = Log2(static_cast<std::uint32_t>(*cb));
        if (Status s = EmitExpr(*e.a); !s.ok()) return s;
        const std::string reg = TopTemp();
        // q = (x + ((x>>31) >>> (32-k))) >> k   (round toward zero)
        EmitLine("sra $t9, " + reg + ", 31");
        EmitLine("srl $t9, $t9, " + Imm(static_cast<std::int32_t>(32 - k)));
        EmitLine("addu $t9, " + reg + ", $t9");
        if (e.bop == kDiv) {
          EmitLine("sra " + reg + ", $t9, " + Imm(static_cast<std::int32_t>(k)));
        } else {
          // r = x - (q << k)
          EmitLine("sra $t9, $t9, " + Imm(static_cast<std::int32_t>(k)));
          EmitLine("sll $t9, $t9, " + Imm(static_cast<std::int32_t>(k)));
          EmitLine("subu " + reg + ", " + reg + ", $t9");
        }
        return Status::Ok();
      }
    }

    // Generic: evaluate both sides.
    if (Status s = EmitExpr(*e.a); !s.ok()) return s;
    // Immediate forms for the common cases (O1+).
    if (options_.opt_level >= 1) {
      const auto cb = EvalConst(*e.b);
      if (cb && *cb >= -32768 && *cb <= 32767) {
        const std::string reg = TopTemp();
        switch (e.bop) {
          case kAdd:
            EmitLine("addiu " + reg + ", " + reg + ", " + Imm(*cb));
            return Status::Ok();
          case kSub:
            if (*cb == -32768) break;  // -cb would overflow the immediate
            EmitLine("addiu " + reg + ", " + reg + ", " + Imm(-*cb));
            return Status::Ok();
          case kAnd:
            if (*cb >= 0) {
              EmitLine("andi " + reg + ", " + reg + ", " + Imm(*cb));
              return Status::Ok();
            }
            break;
          case kOr:
            if (*cb >= 0) {
              EmitLine("ori " + reg + ", " + reg + ", " + Imm(*cb));
              return Status::Ok();
            }
            break;
          case kXor:
            if (*cb >= 0) {
              EmitLine("xori " + reg + ", " + reg + ", " + Imm(*cb));
              return Status::Ok();
            }
            break;
          case kShl:
            EmitLine("sll " + reg + ", " + reg + ", " + Imm(*cb & 31));
            return Status::Ok();
          case kShr:
            EmitLine("sra " + reg + ", " + reg + ", " + Imm(*cb & 31));
            return Status::Ok();
          case kLt:
            EmitLine("slti " + reg + ", " + reg + ", " + Imm(*cb));
            return Status::Ok();
          default:
            break;
        }
      }
    }
    if (Status s = EmitExpr(*e.b); !s.ok()) return s;
    const std::string rb = TopTemp();
    PopTemp();
    const std::string ra = TopTemp();
    switch (e.bop) {
      case kAdd: EmitLine("addu " + ra + ", " + ra + ", " + rb); break;
      case kSub: EmitLine("subu " + ra + ", " + ra + ", " + rb); break;
      case kMul:
        EmitLine("mult " + ra + ", " + rb);
        EmitLine("mflo " + ra);
        break;
      case kDiv:
        EmitLine("div " + ra + ", " + rb);
        EmitLine("mflo " + ra);
        break;
      case kRem:
        EmitLine("div " + ra + ", " + rb);
        EmitLine("mfhi " + ra);
        break;
      case kAnd: EmitLine("and " + ra + ", " + ra + ", " + rb); break;
      case kOr:  EmitLine("or " + ra + ", " + ra + ", " + rb); break;
      case kXor: EmitLine("xor " + ra + ", " + ra + ", " + rb); break;
      case kShl: EmitLine("sllv " + ra + ", " + ra + ", " + rb); break;
      case kShr: EmitLine("srav " + ra + ", " + ra + ", " + rb); break;
      case kLt:  EmitLine("slt " + ra + ", " + ra + ", " + rb); break;
      case kGt:  EmitLine("slt " + ra + ", " + rb + ", " + ra); break;
      case kLe:
        EmitLine("slt " + ra + ", " + rb + ", " + ra);
        EmitLine("xori " + ra + ", " + ra + ", 1");
        break;
      case kGe:
        EmitLine("slt " + ra + ", " + ra + ", " + rb);
        EmitLine("xori " + ra + ", " + ra + ", 1");
        break;
      case kEq:
        EmitLine("subu " + ra + ", " + ra + ", " + rb);
        EmitLine("sltiu " + ra + ", " + ra + ", 1");
        break;
      case kNe:
        EmitLine("subu " + ra + ", " + ra + ", " + rb);
        EmitLine("sltu " + ra + ", $zero, " + ra);
        break;
      case kLogicalAnd:
      case kLogicalOr:
        return Error("unreachable logical op");
    }
    return Status::Ok();
  }

  Status EmitCall(const Expr& e) {
    if (program_.FindFunction(e.name) == nullptr) {
      return Error("call to unknown function '" + e.name + "'");
    }
    if (e.args.size() > 4) return Error("too many call arguments");
    // Spill live temps across the call.
    const int live = temp_depth_;
    Check(live <= kCallSpillWords, "minicc: call spill overflow");
    for (int i = 0; i < live; ++i) {
      EmitLine(std::string("sw ") + kTemp[i] + ", " + Imm(4 * i) + "($sp)");
    }
    // Evaluate arguments into temps first (they may themselves call).
    for (const auto& arg : e.args) {
      if (Status s = EmitExpr(*arg); !s.ok()) return s;
    }
    static constexpr const char* kArgRegs[] = {"$a0", "$a1", "$a2", "$a3"};
    for (std::size_t i = e.args.size(); i-- > 0;) {
      EmitLine(std::string("move ") + kArgRegs[i] + ", " + TopTemp());
      PopTemp();
    }
    EmitLine("jal " + e.name);
    for (int i = 0; i < live; ++i) {
      EmitLine(std::string("lw ") + kTemp[i] + ", " + Imm(4 * i) + "($sp)");
    }
    const std::string reg = PushTemp();
    EmitLine("move " + reg + ", $v0");
    return Status::Ok();
  }

  // ---- conditional branches -----------------------------------------------

  /// Branch to `label` when `e` is true (branch_if_true) or false.
  Status EmitCondBranch(const Expr& e, const std::string& label,
                        bool branch_if_true) {
    return EmitCondBranchInternal(e, label, branch_if_true, "", false);
  }

  /// Like EmitCondBranch; when `result_reg` is non-empty, loads
  /// `result_value` into it before the branch (used by the short-circuit
  /// value form: the early-exit path materializes the result).
  Status EmitCondBranchInternal(const Expr& e, const std::string& label,
                                bool branch_if_true,
                                const std::string& result_reg,
                                bool result_value) {
    const auto emit_result = [&]() {
      if (!result_reg.empty()) {
        EmitLine("li " + result_reg + ", " + Imm(result_value ? 1 : 0));
      }
    };
    // Negation: flip the sense.
    if (e.kind == Expr::Kind::kUnary && e.uop == UnaryOp::kNot) {
      return EmitCondBranchInternal(*e.a, label, !branch_if_true, result_reg,
                                    result_value);
    }
    // Comparisons: branch directly (O1+; O0 materializes booleans).
    if (e.kind == Expr::Kind::kBinary && options_.opt_level >= 1) {
      const auto direct = [&](bool use_slt, const char* op_true,
                              const char* op_false, bool swap) -> Status {
        if (Status s = EmitExpr(*e.a); !s.ok()) return s;
        if (Status s = EmitExpr(*e.b); !s.ok()) return s;
        const std::string rb = TopTemp();
        PopTemp();
        const std::string ra = TopTemp();
        PopTemp();
        const std::string& lhs = swap ? rb : ra;
        const std::string& rhs = swap ? ra : rb;
        emit_result();
        const char* op = branch_if_true ? op_true : op_false;
        if (!use_slt) {
          EmitLine(std::string(op) + " " + lhs + ", " + rhs + ", " + label);
        } else {
          // slt-based: slt $t9, lhs, rhs then branch on $t9.
          EmitLine("slt $t9, " + lhs + ", " + rhs);
          EmitLine(std::string(op) + " $t9, $zero, " + label);
        }
        return Status::Ok();
      };
      switch (e.bop) {
        case BinaryOp::kEq: return direct(false, "beq", "bne", false);
        case BinaryOp::kNe: return direct(false, "bne", "beq", false);
        // a < b: slt t = a<b; true -> bne t,0; false -> beq t,0.
        case BinaryOp::kLt: return direct(true, "bne", "beq", false);
        // a > b: slt t = b<a.
        case BinaryOp::kGt: return direct(true, "bne", "beq", true);
        // a <= b == !(b < a): slt t = b<a; true -> beq; false -> bne.
        case BinaryOp::kLe: return direct(true, "beq", "bne", true);
        // a >= b == !(a < b).
        case BinaryOp::kGe: return direct(true, "beq", "bne", false);
        case BinaryOp::kLogicalAnd: {
          if (branch_if_true) {
            // (A && B) true -> label: if !A skip; if B goto label.
            const std::string skip = NewLabel("and");
            if (Status s = EmitCondBranchInternal(*e.a, skip, false, "",
                                                  false);
                !s.ok()) {
              return s;
            }
            if (Status s = EmitCondBranchInternal(*e.b, label, true,
                                                  result_reg, result_value);
                !s.ok()) {
              return s;
            }
            EmitLabel(skip);
            return Status::Ok();
          }
          // (A && B) false -> label: if !A goto label; if !B goto label.
          if (Status s = EmitCondBranchInternal(*e.a, label, false,
                                                result_reg, result_value);
              !s.ok()) {
            return s;
          }
          return EmitCondBranchInternal(*e.b, label, false, result_reg,
                                        result_value);
        }
        case BinaryOp::kLogicalOr: {
          if (branch_if_true) {
            if (Status s = EmitCondBranchInternal(*e.a, label, true,
                                                  result_reg, result_value);
                !s.ok()) {
              return s;
            }
            return EmitCondBranchInternal(*e.b, label, true, result_reg,
                                          result_value);
          }
          const std::string skip = NewLabel("or");
          if (Status s = EmitCondBranchInternal(*e.a, skip, true, "", false);
              !s.ok()) {
            return s;
          }
          if (Status s = EmitCondBranchInternal(*e.b, label, false,
                                                result_reg, result_value);
              !s.ok()) {
            return s;
          }
          EmitLabel(skip);
          return Status::Ok();
        }
        default:
          break;
      }
    }
    // Fallback: evaluate to a register and branch on zero/non-zero.
    if (Status s = EmitExpr(e); !s.ok()) return s;
    const std::string reg = TopTemp();
    PopTemp();
    emit_result();
    EmitLine((branch_if_true ? "bne " : "beq ") + reg + ", $zero, " + label);
    return Status::Ok();
  }

  // ---- statements ---------------------------------------------------------

  Status EmitStmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        for (const auto& child : s.body) {
          if (Status st = EmitStmt(*child); !st.ok()) return st;
        }
        return Status::Ok();
      case Stmt::Kind::kDecl:
      case Stmt::Kind::kAssign: {
        if (s.index) {
          auto ref = ResolveArray(s.name);
          if (!ref.ok()) return ref.status();
          if (Status st = EmitExpr(*s.value); !st.ok()) return st;
          // Address into $t8 (value stays on temp stack under it).
          // EmitAddress clobbers $t8/$t9 but not the temp stack.
          if (Status st = EmitAddress(ref.value(), *s.index); !st.ok()) {
            return st;
          }
          const std::string value = TopTemp();
          EmitLine((ref.value().is_byte ? "sb " : "sw ") + value + ", 0($t8)");
          PopTemp();
          return Status::Ok();
        }
        if (s.value == nullptr) return Status::Ok();  // plain decl
        if (Status st = EmitExpr(*s.value); !st.ok()) return st;
        const std::string value = TopTemp();
        Status st = StoreVar(s.name, value);
        PopTemp();
        return st;
      }
      case Stmt::Kind::kIf: {
        const std::string else_label = NewLabel("else");
        const std::string end_label =
            s.else_body ? NewLabel("endif") : else_label;
        if (Status st = EmitCondBranch(*s.cond, else_label, false); !st.ok()) {
          return st;
        }
        if (Status st = EmitStmt(*s.then_body); !st.ok()) return st;
        if (s.else_body) {
          EmitLine("b " + end_label);
          EmitLabel(else_label);
          if (Status st = EmitStmt(*s.else_body); !st.ok()) return st;
          EmitLabel(end_label);
        } else {
          EmitLabel(else_label);
        }
        return Status::Ok();
      }
      case Stmt::Kind::kWhile:
        return EmitLoop(nullptr, s.cond.get(), nullptr, *s.then_body, s);
      case Stmt::Kind::kFor:
        return EmitLoop(s.init.get(), s.cond.get(), s.step.get(),
                        *s.then_body, s);
      case Stmt::Kind::kReturn: {
        if (s.value) {
          if (Status st = EmitExpr(*s.value); !st.ok()) return st;
          EmitLine("move $v0, " + TopTemp());
          PopTemp();
        } else {
          EmitLine("move $v0, $zero");
        }
        EmitLine("b " + fn_.name + "_epilogue");
        return Status::Ok();
      }
      case Stmt::Kind::kExpr: {
        if (Status st = EmitExpr(*s.value); !st.ok()) return st;
        PopTemp();  // discard
        return Status::Ok();
      }
    }
    return Error("bad statement");
  }

  Status EmitLoop(const Stmt* init, const Expr* cond, const Stmt* step,
                  const Stmt& body, const Stmt& loop_stmt) {
    if (init != nullptr) {
      if (Status st = EmitStmt(*init); !st.ok()) return st;
    }
    // O2+: hoist global array bases used in this loop into the spare
    // s-register pool (innermost loops only are profiled hot anyway; the
    // pool resets per loop since hoists are scoped).
    std::vector<std::pair<std::string, std::string>> hoists;
    if (options_.opt_level >= 2 && hoist_pool_size_ > 0) {
      std::vector<std::string> arrays;
      CollectArrays(body, arrays);
      int slot = hoist_used_;
      for (const auto& name : arrays) {
        if (hoisted_.count(name) != 0) continue;
        if (slot >= hoist_pool_size_) break;
        const std::string reg = kSaved[hoist_pool_base_ + slot];
        EmitLine("la " + reg + ", " + name);
        hoisted_[name] = reg;
        hoists.emplace_back(name, reg);
        ++slot;
      }
      hoist_used_ = slot;
    }

    const std::string loop_label = NewLabel("loop");
    const std::string end_label = NewLabel("endloop");
    if (options_.opt_level >= 1) {
      // Rotated loop: guard, then bottom-tested body.
      if (cond != nullptr) {
        if (Status st = EmitCondBranch(*cond, end_label, false); !st.ok()) {
          return st;
        }
      }
      EmitLabel(loop_label);
      if (Status st = EmitStmt(body); !st.ok()) return st;
      if (step != nullptr) {
        if (Status st = EmitStmt(*step); !st.ok()) return st;
      }
      if (cond != nullptr) {
        if (Status st = EmitCondBranch(*cond, loop_label, true); !st.ok()) {
          return st;
        }
      } else {
        EmitLine("b " + loop_label);
      }
      EmitLabel(end_label);
    } else {
      // O0: classic top-tested loop.
      const std::string cond_label = NewLabel("cond");
      EmitLabel(cond_label);
      if (cond != nullptr) {
        if (Status st = EmitCondBranch(*cond, end_label, false); !st.ok()) {
          return st;
        }
      }
      if (Status st = EmitStmt(body); !st.ok()) return st;
      if (step != nullptr) {
        if (Status st = EmitStmt(*step); !st.ok()) return st;
      }
      EmitLine("b " + cond_label);
      EmitLabel(end_label);
    }
    (void)loop_stmt;
    // Restore hoist scope.
    for (const auto& [name, reg] : hoists) {
      hoisted_.erase(name);
      --hoist_used_;
    }
    return Status::Ok();
  }

  const Program& program_;
  const Function& fn_;
  const CompileOptions& options_;
  std::ostringstream& out_;
  int& label_counter_;

  std::map<std::string, Location> locals_;
  std::map<std::string, std::string> hoisted_;  // array -> s-reg
  bool has_calls_ = false;
  int used_sregs_ = 0;
  int used_sregs_total_ = 0;
  int hoist_pool_base_ = 0;
  int hoist_pool_size_ = 0;
  int hoist_used_ = 0;
  int stack_words_ = 0;
  int saved_base_ = 0;
  int ra_word_ = 0;
  int frame_words_ = 0;
  int temp_depth_ = 0;
};

}  // namespace

Result<CompileResult> Compile(std::string_view source,
                              const CompileOptions& options) {
  auto parsed = Parse(source);
  if (!parsed.ok()) return parsed.status();
  Program program = std::move(parsed).take();

  // AST-level optimization pipeline.
  if (options.opt_level >= 1) {
    for (auto& fn : program.functions) FoldStmt(*fn.body);
  }
  if (options.opt_level >= 3) {
    for (auto& fn : program.functions) {
      UnrollStmt(*fn.body, options.unroll_factor);
    }
  }

  std::ostringstream out;
  out << ".text\n";
  int label_counter = 0;
  // main must be first so it sits at the entry point.
  std::vector<const Function*> order;
  for (const auto& fn : program.functions) {
    if (fn.name == "main") order.push_back(&fn);
  }
  for (const auto& fn : program.functions) {
    if (fn.name != "main") order.push_back(&fn);
  }
  for (const Function* fn : order) {
    FunctionCodegen codegen(program, *fn, options, out, label_counter);
    if (Status status = codegen.Run(); !status.ok()) return status;
  }

  // Data segment: word data first (alignment), then byte arrays.
  out << ".data\n";
  for (const auto& global : program.globals) {
    if (global.is_byte) continue;
    out << global.name << ":\n";
    if (!global.init.empty()) {
      out << "  .word";
      for (std::size_t i = 0; i < global.init.size(); ++i) {
        out << (i == 0 ? " " : ", ") << global.init[i];
      }
      out << "\n";
    }
    const std::size_t remaining =
        static_cast<std::size_t>(global.size) - global.init.size();
    if (remaining > 0) out << "  .space " << remaining * 4 << "\n";
  }
  for (const auto& global : program.globals) {
    if (!global.is_byte) continue;
    out << global.name << ":\n";
    if (!global.init.empty()) {
      out << "  .byte";
      for (std::size_t i = 0; i < global.init.size(); ++i) {
        out << (i == 0 ? " " : ", ") << (global.init[i] & 0xFF);
      }
      out << "\n";
    }
    const std::size_t remaining =
        static_cast<std::size_t>(global.size) - global.init.size();
    if (remaining > 0) out << "  .space " << remaining << "\n";
  }

  CompileResult result;
  result.assembly = out.str();
  auto assembled = mips::Assemble(result.assembly);
  if (!assembled.ok()) return assembled.status();
  result.binary = std::move(assembled).take();
  return result;
}

}  // namespace b2h::minicc
