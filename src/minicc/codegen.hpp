// MiniC -> MIPS code generator with gcc-style optimization levels.
//
//   O0  locals live on the stack; every read/write is a lw/sw (the stack
//       traffic the decompiler's stack-operation-removal pass undoes).
//   O1  AST constant folding; scalar locals register-allocated to $s0..$s7;
//       rotated (guarded do-while) loops; branch-on-compare emission.
//   O2  + multiply/divide strength reduction (x*c as shift/add chains — the
//       patterns strength *promotion* recovers) and loop-invariant array
//       base hoisting into spare $s registers.
//   O3  + innermost-loop unrolling by a constant factor (what loop
//       *rerolling* undoes).
//
// The generator emits assembly text, then assembles it with b2h::mips, so
// every compiled program is also available in readable form for tests.
#pragma once

#include <string>
#include <string_view>

#include "minicc/ast.hpp"
#include "mips/binary.hpp"
#include "support/error.hpp"

namespace b2h::minicc {

struct CompileOptions {
  int opt_level = 1;      ///< 0..3, mirroring gcc -O0..-O3
  int unroll_factor = 4;  ///< applied to eligible loops at O3
};

struct CompileResult {
  mips::SoftBinary binary;
  std::string assembly;
};

/// Compile MiniC source to a MIPS SoftBinary.
[[nodiscard]] Result<CompileResult> Compile(std::string_view source,
                                            const CompileOptions& options = {});

}  // namespace b2h::minicc
