#include "toolchain/toolchain.hpp"

#include <atomic>
#include <sstream>

#include "mips/simulator.hpp"
#include "obs/obs.hpp"
#include "partition/partitioner.hpp"
#include "support/json.hpp"
#include "support/parallel_for.hpp"
#include "support/schema.hpp"

namespace b2h {

namespace {

using support::JsonEscape;
using support::ParallelFor;

bool SameCycleModel(const mips::CycleModel& a, const mips::CycleModel& b) {
  return a.base == b.base && a.load_extra == b.load_extra &&
         a.mult_extra == b.mult_extra && a.div_extra == b.div_extra &&
         a.taken_extra == b.taken_extra;
}

}  // namespace

// ---------------------------------------------------------- ToolchainRun

std::string ToolchainRun::Report() const {
  std::ostringstream out;
  out << "=== " << binary_name << " on " << platform_name << " ===\n";
  out << partition::FlowReportBody(*software_run, *program, partition,
                                   estimate);
  if (!program->pass_runs.empty()) {
    out << "passes:";
    for (const auto& run : program->pass_runs) {
      char millis[32];
      std::snprintf(millis, sizeof millis, "%.3f", run.millis);
      out << " " << run.pass << "=" << millis << "ms";
    }
    out << "\n";
  }
  return out.str();
}

std::string ToolchainRun::Json() const {
  std::ostringstream out;
  char number[64];
  out << "{\"schema\":" << kReportSchemaVersion << ",\"binary\":\""
      << JsonEscape(binary_name) << "\",\"platform\":\""
      << JsonEscape(platform_name) << "\"";
  std::snprintf(number, sizeof number, "%.9g", estimate.speedup);
  out << ",\"speedup\":" << number;
  std::snprintf(number, sizeof number, "%.9g", estimate.energy_savings);
  out << ",\"energy_savings\":" << number;
  std::snprintf(number, sizeof number, "%.9g", estimate.area_gates);
  out << ",\"area_gates\":" << number;
  out << ",\"hw_regions\":[";
  for (std::size_t i = 0; i < partition.hw.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << JsonEscape(partition.hw[i].synthesized.region.name)
        << "\"";
  }
  out << "],\"rejected\":[";
  for (std::size_t i = 0; i < partition.rejected.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << JsonEscape(partition.rejected[i]) << "\"";
  }
  out << "]}";
  return out.str();
}

// -------------------------------------------------------------- Toolchain

Toolchain::Toolchain() {
  // Env-only plumbing: a process pointed at a cache dir via B2H_CACHE_DIR
  // gets a disk-backed cache without any code changes (ResolveCacheDir
  // returns "" when the variable is unset, which keeps the cache
  // memory-only).
  const std::string dir = explore::ResolveCacheDir("");
  artifact_cache_ = dir.empty()
                        ? std::make_shared<explore::ArtifactCache>()
                        : std::make_shared<explore::ArtifactCache>(
                              explore::DiskStore::Options{dir, 0});
}

Toolchain::~Toolchain() {
  if (!trace_path_.empty()) (void)FlushTrace();
}

Toolchain& Toolchain::WithTrace(std::string trace_path, std::size_t capacity) {
  trace_path_ = std::move(trace_path);
  obs::Tracer::Global().Enable(capacity == 0 ? obs::Tracer::kDefaultCapacity
                                             : capacity);
  return *this;
}

bool Toolchain::FlushTrace() const {
  if (trace_path_.empty()) return true;
  return obs::Tracer::Global().WriteChromeTrace(trace_path_);
}

Toolchain& Toolchain::WithCacheDir(std::string directory,
                                   std::uint64_t max_bytes) {
  const std::string dir = explore::ResolveCacheDir(std::move(directory));
  artifact_cache_ = std::make_shared<explore::ArtifactCache>(
      explore::DiskStore::Options{dir, max_bytes});
  return *this;
}

Toolchain& Toolchain::WithPipeline(std::string spec) {
  pipeline_spec_ = std::move(spec);
  return *this;
}

Toolchain& Toolchain::WithPartitionOptions(
    partition::PartitionOptions options) {
  partition_options_ = std::move(options);
  return *this;
}

Toolchain& Toolchain::WithMaxSimInstructions(std::uint64_t max_instructions) {
  max_sim_instructions_ = max_instructions;
  return *this;
}

Toolchain& Toolchain::WithThreads(unsigned threads) {
  threads_ = threads;
  return *this;
}

Toolchain& Toolchain::WithVerifyIr(bool verify) {
  verify_ir_ = verify;
  return *this;
}

Toolchain& Toolchain::WithPlatform(std::string registered_name) {
  default_platform_name_ = std::move(registered_name);
  custom_platform_.reset();
  return *this;
}

Toolchain& Toolchain::WithPlatform(partition::Platform platform,
                                   std::string label) {
  custom_platform_ = std::move(platform);
  default_platform_name_ = std::move(label);
  return *this;
}

Toolchain& Toolchain::WithDynamicPolicy(partition::DynamicPolicy policy) {
  dynamic_policy_ = policy;
  return *this;
}

Toolchain& Toolchain::WithDynamic(bool enabled) {
  dynamic_enabled_ = enabled;
  return *this;
}

Toolchain& Toolchain::WithArtifactCache(
    std::shared_ptr<explore::ArtifactCache> cache) {
  Check(cache != nullptr, "Toolchain: null artifact cache");
  artifact_cache_ = std::move(cache);
  return *this;
}

explore::ExploreResult Toolchain::Explore(
    const explore::ExploreSpec& spec) const {
  explore::ExplorerConfig config;
  config.pipeline = pipeline_spec_;
  config.partition = partition_options_;
  config.max_sim_instructions = max_sim_instructions_;
  config.threads = threads_;
  config.verify_ir = verify_ir_;
  return explore::Explorer(std::move(config), artifact_cache_).Run(spec);
}

dynamic::DynamicOptions Toolchain::DynamicConfig() const {
  dynamic::DynamicOptions options;
  options.policy = dynamic_policy_;
  options.pipeline = pipeline_spec_;
  options.synth = partition_options_.synth;
  options.max_instructions = max_sim_instructions_;
  options.verify_ir = verify_ir_;
  return options;
}

Result<ToolchainRun> Toolchain::PartitionPrepared(
    std::string binary_name, std::string platform_name,
    std::shared_ptr<const mips::SoftBinary> binary,
    std::shared_ptr<const mips::RunResult> software_run,
    std::shared_ptr<const decomp::DecompiledProgram> program,
    const partition::Platform& platform) const {
  ToolchainRun run;
  run.binary_name = std::move(binary_name);
  run.platform_name = std::move(platform_name);
  run.binary = std::move(binary);
  run.software_run = std::move(software_run);
  run.program = std::move(program);
  obs::ScopedSpan span("toolchain.partition", "partition");
  span.Arg("binary", run.binary_name).Arg("platform", run.platform_name);
  auto partitioned =
      partition::PartitionProgram(*run.program, run.software_run->profile,
                                  platform, partition_options_);
  if (!partitioned.ok()) return partitioned.status();
  run.partition = std::move(partitioned).take();
  run.estimate = partition::EstimatePartition(run.partition, platform);
  return run;
}

Result<ToolchainRun> Toolchain::RunOnPlatform(
    std::shared_ptr<const mips::SoftBinary> binary, std::string binary_name,
    const partition::Platform& platform, std::string platform_name) const {
  Check(binary != nullptr, "Toolchain: null binary");

  // 1. Profile.
  mips::Simulator simulator(*binary, platform.cpu.cycle_model);
  auto software_run = std::make_shared<mips::RunResult>(
      simulator.Run({}, max_sim_instructions_));
  if (software_run->reason != mips::HaltReason::kReturned) {
    return Status::Error(
        ErrorKind::kMalformedBinary,
        "software run did not complete: " + software_run->fault_message);
  }

  // 2. Decompile through the configured pipeline.
  auto manager = decomp::PassManager::FromSpec(pipeline_spec_);
  if (!manager.ok()) return manager.status();
  auto program = manager.value().SetVerify(verify_ir_).Run(
      binary, &software_run->profile);
  if (!program.ok()) return program.status();

  // 3+4. Partition + estimate.
  return PartitionPrepared(
      std::move(binary_name), std::move(platform_name), std::move(binary),
      std::move(software_run),
      std::make_shared<const decomp::DecompiledProgram>(
          std::move(program).take()),
      platform);
}

Result<ToolchainRun> Toolchain::Run(
    std::shared_ptr<const mips::SoftBinary> binary,
    std::string binary_name) const {
  if (custom_platform_.has_value()) {
    return RunOnPlatform(std::move(binary), std::move(binary_name),
                         *custom_platform_, default_platform_name_);
  }
  return RunOn(default_platform_name_, std::move(binary),
               std::move(binary_name));
}

Result<ToolchainRun> Toolchain::RunOn(
    std::string_view platform_name,
    std::shared_ptr<const mips::SoftBinary> binary,
    std::string binary_name) const {
  const auto platform = PlatformRegistry::Global().Find(platform_name);
  if (!platform.has_value()) {
    return Status::Error(ErrorKind::kUnsupported,
                         "unknown platform: " + std::string(platform_name));
  }
  return RunOnPlatform(std::move(binary), std::move(binary_name), *platform,
                       std::string(platform_name));
}

Result<DynamicToolchainRun> Toolchain::RunDynamicOnPlatform(
    std::shared_ptr<const mips::SoftBinary> binary, std::string binary_name,
    const partition::Platform& platform, std::string platform_name) const {
  auto static_run =
      RunOnPlatform(binary, binary_name, platform, platform_name);
  if (!static_run.ok()) return static_run.status();

  dynamic::DynamicPartitioner online(platform, DynamicConfig(),
                                     platform_name);
  auto dynamic_run = online.Run(std::move(binary), std::move(binary_name));
  if (!dynamic_run.ok()) return dynamic_run.status();

  DynamicToolchainRun run;
  run.static_run = std::move(static_run).take();
  run.dynamic_run = std::move(dynamic_run).take();
  run.convergence = run.static_run.estimate.speedup > 0.0
                        ? run.dynamic_run.estimate.speedup /
                              run.static_run.estimate.speedup
                        : 0.0;
  return run;
}

Result<DynamicToolchainRun> Toolchain::RunDynamic(
    std::shared_ptr<const mips::SoftBinary> binary,
    std::string binary_name) const {
  if (custom_platform_.has_value()) {
    return RunDynamicOnPlatform(std::move(binary), std::move(binary_name),
                                *custom_platform_, default_platform_name_);
  }
  return RunDynamicOn(default_platform_name_, std::move(binary),
                      std::move(binary_name));
}

Result<DynamicToolchainRun> Toolchain::RunDynamicOn(
    std::string_view platform_name,
    std::shared_ptr<const mips::SoftBinary> binary,
    std::string binary_name) const {
  const auto platform = PlatformRegistry::Global().Find(platform_name);
  if (!platform.has_value()) {
    return Status::Error(ErrorKind::kUnsupported,
                         "unknown platform: " + std::string(platform_name));
  }
  return RunDynamicOnPlatform(std::move(binary), std::move(binary_name),
                              *platform, std::string(platform_name));
}

std::string DynamicToolchainRun::Report() const {
  std::ostringstream out;
  out << dynamic_run.Report();
  char line[160];
  std::snprintf(line, sizeof line,
                "static oracle: speedup=%.2fx (dynamic captured %.0f%% of "
                "the static payoff)\n",
                static_run.estimate.speedup, convergence * 100.0);
  out << line;
  return out.str();
}

BatchResult Toolchain::RunMany(
    const std::vector<NamedBinary>& binaries,
    const std::vector<std::string>& platform_names) const {
  const std::size_t num_binaries = binaries.size();
  const std::size_t num_platforms = platform_names.size();
  const std::size_t num_runs = num_binaries * num_platforms;

  BatchResult batch;
  batch.num_platforms = num_platforms;
  if (num_runs == 0) return batch;

  // Resolve platform names up front (registry lookups off the hot path).
  std::vector<std::optional<partition::Platform>> platforms;
  platforms.reserve(num_platforms);
  for (const std::string& name : platform_names) {
    platforms.push_back(PlatformRegistry::Global().Find(name));
  }

  // Stage A — per (binary, cycle model), in parallel: one profiling
  // simulation and ONE decompilation, shared by every platform whose CPU
  // cycle model matches.  Clock frequency and FPGA capacity don't affect
  // cycle counts, so all registered platforms fall into a single group;
  // custom platforms with a different cycle model get their own profile
  // rather than silently inheriting another platform's cycle counts.
  std::vector<mips::CycleModel> model_groups;
  std::vector<std::size_t> platform_group(num_platforms, 0);
  for (std::size_t p = 0; p < num_platforms; ++p) {
    if (!platforms[p].has_value()) continue;
    const mips::CycleModel& model = platforms[p]->cpu.cycle_model;
    std::size_t group = model_groups.size();
    for (std::size_t g = 0; g < model_groups.size(); ++g) {
      if (SameCycleModel(model_groups[g], model)) {
        group = g;
        break;
      }
    }
    if (group == model_groups.size()) model_groups.push_back(model);
    platform_group[p] = group;
  }
  if (model_groups.empty()) model_groups.push_back(mips::CycleModel{});
  const std::size_t num_groups = model_groups.size();

  struct Prepared {
    Status status;
    std::shared_ptr<const mips::RunResult> software_run;
    std::shared_ptr<const decomp::DecompiledProgram> program;
  };
  // prepared[b * num_groups + g]: binary b profiled under model group g.
  std::vector<Prepared> prepared(num_binaries * num_groups);
  std::atomic<std::size_t> simulations{0};
  std::atomic<std::size_t> decompilations{0};

  auto manager = decomp::PassManager::FromSpec(pipeline_spec_);
  if (!manager.ok()) {
    for (std::size_t i = 0; i < num_runs; ++i) {
      batch.runs.push_back(manager.status());
    }
    return batch;
  }
  const decomp::PassManager pipeline =
      std::move(manager).take().SetVerify(verify_ir_);

  ParallelFor(num_binaries * num_groups, threads_, [&](std::size_t index) {
    const std::size_t b = index / num_groups;
    const std::size_t g = index % num_groups;
    Prepared& slot = prepared[index];
    try {
      if (binaries[b].binary == nullptr) {
        slot.status = Status::Error(ErrorKind::kMalformedBinary,
                                    "null binary: " + binaries[b].name);
        return;
      }
      mips::Simulator simulator(*binaries[b].binary, model_groups[g]);
      auto run = std::make_shared<mips::RunResult>(
          simulator.Run({}, max_sim_instructions_));
      simulations.fetch_add(1);
      if (run->reason != mips::HaltReason::kReturned) {
        slot.status = Status::Error(
            ErrorKind::kMalformedBinary,
            "software run did not complete: " + run->fault_message);
        return;
      }
      auto program = pipeline.Run(binaries[b].binary, &run->profile);
      decompilations.fetch_add(1);
      if (!program.ok()) {
        slot.status = program.status();
        return;
      }
      slot.software_run = std::move(run);
      slot.program = std::make_shared<const decomp::DecompiledProgram>(
          std::move(program).take());
    } catch (const std::exception& e) {
      slot.status = Status::Error(ErrorKind::kUnsupported,
                                  std::string("internal error: ") + e.what());
    }
  });

  // Stage B — per (binary, platform) pair, in parallel: partition,
  // synthesize, estimate against the shared decompilation.
  std::vector<std::optional<Result<ToolchainRun>>> slots(num_runs);
  ParallelFor(num_runs, threads_, [&](std::size_t index) {
    const std::size_t b = index / num_platforms;
    const std::size_t p = index % num_platforms;
    try {
      if (!platforms[p].has_value()) {
        slots[index] = Status::Error(ErrorKind::kUnsupported,
                                     "unknown platform: " + platform_names[p]);
        return;
      }
      const Prepared& base = prepared[b * num_groups + platform_group[p]];
      if (!base.status.ok()) {
        slots[index] = base.status;
        return;
      }
      // base.program is shared across the sweep — the point of the batch.
      slots[index] = PartitionPrepared(binaries[b].name, platform_names[p],
                                       binaries[b].binary, base.software_run,
                                       base.program, *platforms[p]);
      // Dynamic mode: also run the online partitioner for this pair.  Each
      // pair gets its own simulator + detector, so the fan-out stays
      // deterministic (parallel == serial).
      if (dynamic_enabled_ && slots[index]->ok()) {
        dynamic::DynamicPartitioner online(*platforms[p], DynamicConfig(),
                                           platform_names[p]);
        auto dynamic_run = online.Run(binaries[b].binary, binaries[b].name);
        if (!dynamic_run.ok()) {
          slots[index] = dynamic_run.status();
        } else {
          slots[index]->value().dynamic_run =
              std::make_shared<const dynamic::DynamicRun>(
                  std::move(dynamic_run).take());
        }
      }
    } catch (const std::exception& e) {
      slots[index] = Status::Error(
          ErrorKind::kUnsupported,
          std::string("internal error: ") + e.what());
    }
  });

  batch.runs.reserve(num_runs);
  for (std::size_t index = 0; index < num_runs; ++index) {
    Check(slots[index].has_value(), "RunMany: missing result slot");
    batch.runs.push_back(std::move(*slots[index]));
  }
  batch.simulations_run = simulations.load();
  batch.decompilations_run = decompilations.load();
  return batch;
}

}  // namespace b2h
