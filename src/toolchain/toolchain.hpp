// b2h::Toolchain — the scalable front door to the whole flow.
//
//   binary -> profile -> decompile (PassManager pipeline) -> partition ->
//   synthesize -> estimate
//
// Three things the one-shot `partition::RunFlow` cannot do:
//
//   * a named platform registry ("mips200-xc2v1000", "mips40", "mips400",
//     plus custom registrations) so sweeps are spelled as name lists;
//   * builder-style configuration (pipeline spec, partition options,
//     simulation budget, thread count) shared across every run;
//   * a batch API, RunMany(binaries, platforms), that profiles and
//     decompiles each binary exactly ONCE and reuses the result across the
//     platform sweep, fanning the per-platform partition/synthesis work out
//     on a thread pool.  Results are deterministic: parallel == serial.
//
// Caching rationale: the decompiled, profile-annotated CDFG depends only on
// the binary and the CPU cycle model — not on clocks or FPGA capacity — so
// one decompilation serves every platform whose cycle model matches.
// RunMany groups the requested platforms by cycle model and profiles /
// decompiles once per (binary, model group); the paper's three registered
// platforms share the default model, so that is one decompilation per
// binary.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "decomp/pass_manager.hpp"
#include "dynamic/dynamic_partitioner.hpp"
#include "explore/explorer.hpp"
#include "mips/shared_cache.hpp"
#include "partition/flow.hpp"
#include "partition/platform.hpp"
#include "partition/platform_registry.hpp"

namespace b2h {

/// Process-wide platform registry (now partition::PlatformRegistry, shared
/// with the exploration engine); the alias preserves the original spelling.
using PlatformRegistry = partition::PlatformRegistry;

/// One (binary, platform) flow outcome.  The profiling run and decompiled
/// program are shared: every platform in a RunMany sweep points at the same
/// objects for a given binary (asserted by the tests).
struct ToolchainRun {
  std::string binary_name;
  std::string platform_name;
  std::shared_ptr<const mips::SoftBinary> binary;
  std::shared_ptr<const mips::RunResult> software_run;
  std::shared_ptr<const decomp::DecompiledProgram> program;
  partition::PartitionResult partition;
  partition::AppEstimate estimate;
  /// Filled by RunMany when WithDynamic(true): the online (runtime)
  /// partitioning outcome for the same (binary, platform) pair.
  std::shared_ptr<const dynamic::DynamicRun> dynamic_run;

  [[nodiscard]] std::string Report() const;
  /// One JSON object (no trailing newline) with the headline estimate AND
  /// the partitioner's rejection reasons, so machine consumers can explain
  /// why a region was skipped.
  [[nodiscard]] std::string Json() const;
};

/// Outcome of RunDynamic: the online run next to its static oracle.
struct DynamicToolchainRun {
  ToolchainRun static_run;          ///< ahead-of-time flow (the oracle)
  dynamic::DynamicRun dynamic_run;  ///< online flow on the same binary
  /// dynamic speedup / static speedup — how much of the static payoff the
  /// online partitioner captured (1.0 = full convergence).
  double convergence = 0.0;

  [[nodiscard]] std::string Report() const;
};

/// Batch outcome: one result per (binary, platform) pair in row-major
/// order (binary index major), plus work counters the caching tests key on.
struct BatchResult {
  std::vector<Result<ToolchainRun>> runs;
  std::size_t num_platforms = 0;       ///< row stride of `runs`
  std::size_t simulations_run = 0;     ///< profiling runs executed
  std::size_t decompilations_run = 0;  ///< decompiler invocations

  [[nodiscard]] const Result<ToolchainRun>& At(
      std::size_t binary_index, std::size_t platform_index) const {
    return runs.at(binary_index * num_platforms + platform_index);
  }
};

/// Builder-configured facade over the complete flow.
class Toolchain {
 public:
  /// When the B2H_CACHE_DIR environment variable is set (and non-empty),
  /// every Toolchain starts with a disk-backed artifact cache rooted there
  /// — the CI cache-warm gate points whole processes at a persisted cache
  /// this way.  Otherwise the cache starts memory-only.
  Toolchain();
  /// Flushes the trace to the WithTrace path, if one was configured.
  ~Toolchain();

  // ------------------------------------------------- builder configuration
  /// Decompilation pipeline spec (see PassManager::FromSpec).  Invalid
  /// specs surface as an error from Run/RunMany, not here.
  Toolchain& WithPipeline(std::string spec);
  Toolchain& WithPartitionOptions(partition::PartitionOptions options);
  Toolchain& WithMaxSimInstructions(std::uint64_t max_instructions);
  /// Worker threads for RunMany (0 = hardware concurrency, 1 = serial).
  Toolchain& WithThreads(unsigned threads);
  Toolchain& WithVerifyIr(bool verify);
  /// Default platform for the platform-less Run overload.
  Toolchain& WithPlatform(std::string registered_name);
  Toolchain& WithPlatform(partition::Platform platform,
                          std::string label = "custom");
  /// Online-partitioning configuration for RunDynamic and for RunMany in
  /// dynamic mode.  Pipeline spec, verify flag, and simulation budget are
  /// inherited from the toolchain configuration.
  Toolchain& WithDynamicPolicy(partition::DynamicPolicy policy);
  /// When enabled, RunMany additionally executes the online partitioner for
  /// every (binary, platform) pair and attaches ToolchainRun::dynamic_run.
  Toolchain& WithDynamic(bool enabled);
  /// Share an artifact cache between toolchains (by default every Toolchain
  /// owns a private cache that persists across its Explore calls).
  Toolchain& WithArtifactCache(std::shared_ptr<explore::ArtifactCache> cache);
  /// Persist the artifact cache under `directory` (two-tier: memory +
  /// disk), so warm sweeps survive process restarts.  The B2H_CACHE_DIR
  /// environment variable overrides the directory; `max_bytes` bounds the
  /// on-disk size with LRU-by-mtime eviction (0 = unbounded).  Replaces the
  /// current artifact cache.
  Toolchain& WithCacheDir(std::string directory, std::uint64_t max_bytes = 0);

  /// Enable the process-wide span tracer (obs::Tracer) and remember
  /// `trace_path`; FlushTrace() — called automatically by the Toolchain
  /// destructor when a path is set — writes the collected spans there as
  /// Chrome trace-event JSON (Perfetto-loadable).  Pass an empty path to
  /// record without auto-writing (embedders export via obs::Tracer::Global()
  /// themselves).  Tracing is process-global: spans from EVERY toolchain and
  /// subsystem land in the same ring.
  Toolchain& WithTrace(std::string trace_path,
                       std::size_t capacity = 0 /* 0 = default ring size */);
  /// Write the trace collected so far to the WithTrace path (no-op without
  /// one); returns false on I/O failure.
  bool FlushTrace() const;

  /// Hit/miss/store counters of the artifact cache, split by tier.
  [[nodiscard]] explore::ArtifactCache::Stats CacheStats() const {
    return artifact_cache_->stats();
  }
  /// Hit/miss counters of the process-wide simulator pre-decode cache
  /// (mips/shared_cache.hpp): every Simulator this toolchain constructs —
  /// Run, RunMany, explore sweeps — shares its superblock tables through it.
  [[nodiscard]] static mips::SharedBlockCache::Stats BlockCacheStats() {
    return mips::SharedBlockCache::Global().stats();
  }
  [[nodiscard]] const std::shared_ptr<explore::ArtifactCache>&
  artifact_cache() const {
    return artifact_cache_;
  }

  // --------------------------------------------------------------- running
  /// Single binary on the configured default platform.
  [[nodiscard]] Result<ToolchainRun> Run(
      std::shared_ptr<const mips::SoftBinary> binary,
      std::string binary_name = "binary") const;

  /// Single binary on a named registered platform.
  [[nodiscard]] Result<ToolchainRun> RunOn(
      std::string_view platform_name,
      std::shared_ptr<const mips::SoftBinary> binary,
      std::string binary_name = "binary") const;

  /// Batch: every binary against every platform name.  Decompiles each
  /// binary once; per-platform partitioning fans out on the thread pool.
  /// Per-run failures (CDFG recovery, faults, unknown platform names) are
  /// reported in the corresponding slot without aborting the batch.
  [[nodiscard]] BatchResult RunMany(
      const std::vector<NamedBinary>& binaries,
      const std::vector<std::string>& platform_names) const;

  /// Dynamic front door: run the online partitioner on the configured
  /// default platform AND the static oracle on the same binary, reporting
  /// both plus their convergence.
  [[nodiscard]] Result<DynamicToolchainRun> RunDynamic(
      std::shared_ptr<const mips::SoftBinary> binary,
      std::string binary_name = "binary") const;

  /// Dynamic front door against a named registered platform.
  [[nodiscard]] Result<DynamicToolchainRun> RunDynamicOn(
      std::string_view platform_name,
      std::shared_ptr<const mips::SoftBinary> binary,
      std::string binary_name = "binary") const;

  /// Design-space exploration front door: sweep the spec's
  /// {binaries} x {platforms} x {strategies} x {objectives} grid through
  /// the exploration engine, using this toolchain's pipeline, partition
  /// options, simulation budget, thread count, and artifact cache.
  /// Repeated/overlapping sweeps on the same Toolchain reuse cached
  /// decompile and partition artifacts (a warm identical sweep performs
  /// zero decompilations).  Per-point failures are reported in the
  /// corresponding ExplorePoint without aborting the sweep.
  [[nodiscard]] explore::ExploreResult Explore(
      const explore::ExploreSpec& spec) const;

 private:
  [[nodiscard]] Result<DynamicToolchainRun> RunDynamicOnPlatform(
      std::shared_ptr<const mips::SoftBinary> binary, std::string binary_name,
      const partition::Platform& platform, std::string platform_name) const;

  [[nodiscard]] dynamic::DynamicOptions DynamicConfig() const;
  [[nodiscard]] Result<ToolchainRun> RunOnPlatform(
      std::shared_ptr<const mips::SoftBinary> binary, std::string binary_name,
      const partition::Platform& platform, std::string platform_name) const;

  /// Shared tail of every flow: partition + estimate a prepared
  /// (profiled, decompiled) binary against one platform.
  [[nodiscard]] Result<ToolchainRun> PartitionPrepared(
      std::string binary_name, std::string platform_name,
      std::shared_ptr<const mips::SoftBinary> binary,
      std::shared_ptr<const mips::RunResult> software_run,
      std::shared_ptr<const decomp::DecompiledProgram> program,
      const partition::Platform& platform) const;

  std::string pipeline_spec_ = "default";
  partition::PartitionOptions partition_options_;
  std::uint64_t max_sim_instructions_ = 200'000'000;
  unsigned threads_ = 0;
  bool verify_ir_ = true;
  std::string default_platform_name_ = "mips200-xc2v1000";
  std::optional<partition::Platform> custom_platform_;
  partition::DynamicPolicy dynamic_policy_;
  bool dynamic_enabled_ = false;
  std::string trace_path_;  ///< WithTrace auto-flush target ("" = none)
  std::shared_ptr<explore::ArtifactCache> artifact_cache_;
};

}  // namespace b2h
