// Unified observability layer: a process-wide metrics registry plus a
// structured-span tracer, shared by every subsystem (decomp passes, explore
// stages, the artifact cache, the dynamic partitioner, the simulator, and
// the serve daemon).
//
// Two components with two different cost contracts:
//
//   * obs::Registry — counters, gauges, and fixed-bucket histograms.
//     Always on.  The write path is lock-free (striped relaxed atomics,
//     one cache line per stripe) so increments are safe inside the
//     simulator and scheduler hot paths.  Lookup by name takes a mutex;
//     hot callers resolve their instrument once and keep the reference
//     (instruments are never destroyed, so references stay valid for the
//     process lifetime).
//
//   * obs::Tracer — bounded in-memory ring of completed spans (name,
//     category, start/duration, thread, parent, key=value args), exported
//     as Chrome trace-event JSON that Perfetto (ui.perfetto.dev) loads
//     directly.  Off by default: a disabled ScopedSpan reads one relaxed
//     atomic and touches nothing else — no clock reads, no allocation
//     (verified by tests/test_obs.cpp and the BENCH_obs overhead gate).
//
// obs::Stopwatch is the repo-wide replacement for hand-rolled
// steady_clock/duration_cast timing (pass manager, explorer, dynamic
// partitioner all use it now).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace b2h::obs {

/// Schema version stamped into Registry::SnapshotJson() (and therefore the
/// b2h-serve `metrics` response body).  Bump on any field change.
inline constexpr int kMetricsSchemaVersion = 1;

// ---------------------------------------------------------------- Stopwatch

/// Monotonic wall-clock stopwatch: starts at construction, reports elapsed
/// time without the steady_clock/duration_cast boilerplate it replaces.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  void Reset() { start_ = Now(); }
  [[nodiscard]] double Millis() const {
    return static_cast<double>(Now() - start_) / 1e6;
  }
  [[nodiscard]] double Seconds() const {
    return static_cast<double>(Now() - start_) / 1e9;
  }
  [[nodiscard]] std::uint64_t Nanos() const { return Now() - start_; }

  /// Monotonic nanoseconds since an arbitrary (process-stable) epoch.
  static std::uint64_t Now() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::uint64_t start_;
};

// ----------------------------------------------------------------- metrics

/// Monotonic counter.  Increments are striped across cache-line-sized slots
/// indexed by thread so concurrent hot-path writers never contend on one
/// atomic; Value() sums the stripes (exact: each Add lands in exactly one
/// stripe).
class Counter {
 public:
  void Add(std::uint64_t n = 1) noexcept {
    stripes_[StripeIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() noexcept {
    for (auto& stripe : stripes_) {
      stripe.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr std::size_t kStripes = 8;  // power of two
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };
  static std::size_t StripeIndex() noexcept;
  Stripe stripes_[kStripes];
};

/// Point-in-time signed value (queue depths, in-flight requests).
class Gauge {
 public:
  void Set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Set-if-greater, for high-water marks.
  void MaxWith(std::int64_t v) noexcept {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { Set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: bounds are upper edges (value <= bounds[i] lands
/// in bucket i; one implicit overflow bucket past the last bound).  Observe
/// is a short scan over <= kMaxBounds doubles plus three relaxed atomic
/// adds — no locks, safe on hot paths.
class Histogram {
 public:
  static constexpr std::size_t kMaxBounds = 24;

  /// Default latency bucket edges, in milliseconds: 10us .. 10s, roughly
  /// 1-2.5-5 per decade.
  static const std::vector<double>& DefaultLatencyBoundsMs();

  explicit Histogram(const std::vector<double>& bounds);

  void Observe(double value) noexcept {
    std::size_t i = 0;
    while (i < bound_count_ && value > bounds_[i]) ++i;
    buckets_[i].value.fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> (C++20): relaxed accumulation is fine,
    // sum is reporting-only.
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t Count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double Sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::vector<double> Bounds() const;
  /// Per-bucket counts, bounds_count + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> BucketCounts() const;
  /// Cumulative counts for `le`-labeled Prometheus exposition: entry i is
  /// the number of observations <= bounds[i]; the final entry (the +Inf
  /// bucket) is the total.  Derived from one pass over the per-bucket
  /// atomics, so it is internally consistent even under concurrent Observe
  /// (monotone by construction), unlike pairing BucketCounts() with a
  /// separately-loaded Count().
  [[nodiscard]] std::vector<std::uint64_t> CumulativeBucketCounts() const;
  void Reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  double bounds_[kMaxBounds];
  std::size_t bound_count_;
  Slot buckets_[kMaxBounds + 1];
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide instrument registry.  counter()/gauge()/histogram() create
/// on first use and return a stable reference (instruments live for the
/// process lifetime); the lookup takes a mutex, so hot paths resolve once
/// and cache the reference.  SnapshotJson() serializes every instrument,
/// sorted by name, stamped with kMetricsSchemaVersion.
class Registry {
 public:
  static Registry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first creation (empty = default latency
  /// buckets); later callers get the existing histogram unchanged.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& bounds = {});

  /// {"schema":1,"counters":{...},"gauges":{...},"histograms":{...}} with
  /// names sorted for stable output.
  [[nodiscard]] std::string SnapshotJson() const;

  /// Prometheus text exposition format (version 0.0.4): one `# TYPE` line
  /// per metric, instrument names sanitized to the Prometheus charset
  /// ('.' and any other illegal character become '_'), histograms rendered
  /// as cumulative `le`-labeled buckets plus `_sum`/`_count`.  Served by
  /// the b2h-serve HTTP plane at GET /metrics.
  [[nodiscard]] std::string PrometheusText() const;

  /// Zero every instrument (references stay valid).  Test-only: values are
  /// process-cumulative by design.
  void ResetForTest();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ------------------------------------------------------------------ tracer

/// One completed span in the ring.  Times are nanoseconds on the Stopwatch
/// clock; tid is a small per-thread ordinal (first armed span wins the next
/// number), parent is the span id of the enclosing ScopedSpan on the same
/// thread (0 = root).
struct Span {
  static constexpr std::size_t kMaxArgs = 6;
  struct Arg {
    const char* key = nullptr;  // static string
    bool is_number = false;
    double number = 0.0;
    std::string text;
  };

  std::string name;
  const char* category = "";
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint32_t tid = 0;
  Arg args[kMaxArgs];
  std::size_t arg_count = 0;
};

/// Bounded ring of completed spans + Chrome trace-event JSON exporter.
/// Disabled by default; when disabled every instrumentation site reduces to
/// one relaxed atomic load.
///
/// Two independent rings share the instrumentation sites:
///
///   * the MAIN ring — Enable()/Disable()-gated, sized per recording
///     session, exported by ChromeTraceJson().  This is the --trace-out /
///     WithTrace surface.
///   * the FLIGHT ring — a small always-on black-box recorder
///     (EnableFlight(); b2h-serve turns it on at startup and never turns it
///     off).  It keeps the most recent spans regardless of the main ring's
///     state so a crash-time forensics dump always has recent history.
///     Wraps are expected steady-state behavior and are counted separately
///     (`obs.flight.wrapped`) from main-ring drops (`obs.trace.dropped`).
///
/// A span is armed when EITHER ring is recording — still one relaxed load
/// on the fully-disabled path (both modes live in one atomic word).
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  static constexpr std::size_t kDefaultFlightCapacity = 1 << 12;

  static Tracer& Global();

  /// Start recording (clears any previous spans).  Capacity bounds memory:
  /// once full the ring overwrites the oldest spans and counts them as
  /// dropped.
  void Enable(std::size_t capacity = kDefaultCapacity);
  void Disable();
  /// Flip recording back on WITHOUT clearing the ring (Enable() resets and
  /// reallocates).  For sites that toggle recording around a region after
  /// one up-front Enable() — e.g. bench_obs interleaving enabled/disabled
  /// samples.  A no-op recorder until Enable() has sized the ring.
  void Resume() noexcept {
    modes_.fetch_or(kModeMain, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return (modes_.load(std::memory_order_relaxed) & kModeMain) != 0;
  }

  /// Turn on the flight recorder (clears any previous flight spans).
  /// Independent of Enable()/Disable(): once on, it stays on — only
  /// DisableFlight() (test-only) turns it back off.
  void EnableFlight(std::size_t capacity = kDefaultFlightCapacity);
  /// Test-only: stop flight recording so later tests see the documented
  /// single-load disabled path again.
  void DisableFlight();
  /// Flip flight recording back on WITHOUT clearing the flight ring — the
  /// flight analogue of Resume(), for bench_obs's interleaved samples.
  void ResumeFlight() noexcept {
    modes_.fetch_or(kModeFlight, std::memory_order_relaxed);
  }
  [[nodiscard]] bool flight_enabled() const noexcept {
    return (modes_.load(std::memory_order_relaxed) & kModeFlight) != 0;
  }

  /// True when any ring is recording: the ScopedSpan arming check.
  [[nodiscard]] bool sampling() const noexcept {
    return modes_.load(std::memory_order_relaxed) != 0;
  }

  void Record(Span&& span);

  /// Spans currently held, oldest first.
  [[nodiscard]] std::vector<Span> Snapshot() const;
  [[nodiscard]] std::size_t dropped() const;
  void Clear();

  /// Flight-ring spans, oldest first.
  [[nodiscard]] std::vector<Span> FlightSnapshot() const;
  /// Spans overwritten in the flight ring since EnableFlight().
  [[nodiscard]] std::size_t flight_wrapped() const;

  /// Chrome trace-event JSON ({"otherData":{"dropped":N},
  /// "traceEvents":[...]}), events sorted by start time; ts/dur are
  /// microseconds relative to the earliest span.  Loadable by Perfetto and
  /// chrome://tracing.
  [[nodiscard]] std::string ChromeTraceJson() const;
  /// Same exporter over the flight ring (otherData.dropped reports wraps —
  /// expected to be nonzero on a long-lived daemon).
  [[nodiscard]] std::string FlightChromeTraceJson() const;
  /// Write ChromeTraceJson() to `path`; false (with a stderr note) on I/O
  /// failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Next span id (process-unique, never 0).
  static std::uint64_t NextSpanId();
  /// Small ordinal for the calling thread (assigned on first use).
  static std::uint32_t ThreadOrdinal();

 private:
  static constexpr std::uint32_t kModeMain = 1u << 0;
  static constexpr std::uint32_t kModeFlight = 1u << 1;

  struct Ring {
    std::vector<Span> spans;
    std::size_t capacity = 0;
    std::size_t next = 0;     // write index
    std::size_t size = 0;     // spans held (<= capacity)
    std::size_t wrapped = 0;  // overwritten since the ring was sized
    void Size(std::size_t cap);
    void Push(Span&& span);
    [[nodiscard]] std::vector<Span> CopyOldestFirst() const;
  };

  Tracer() = default;
  std::atomic<std::uint32_t> modes_{0};
  mutable std::mutex mutex_;
  Ring ring_;         // main (Enable/Disable) ring
  Ring flight_;       // always-on flight recorder
};

// ------------------------------------------------------- thread span stack

namespace detail {
// Per-thread stack of active span ids, for parent attribution.  Fixed-size
// so the disabled path never allocates; deeper nesting saturates at the top.
inline constexpr std::size_t kMaxSpanDepth = 32;
struct SpanStack {
  std::uint64_t ids[kMaxSpanDepth];
  std::size_t depth = 0;
};
SpanStack& ThreadSpanStack();
}  // namespace detail

/// RAII span: arms itself only when the global tracer is enabled at
/// construction.  Disabled cost: one relaxed atomic load, no clock read, no
/// allocation.  Args attach key=value pairs (numbers or strings; keys must
/// be static strings); at most Span::kMaxArgs stick, extras are dropped.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, const char* category)
      : armed_(Tracer::Global().sampling()) {
    if (armed_) Arm(name, category);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (armed_) Finish();
  }

  ScopedSpan& Arg(const char* key, double value) {
    if (armed_ && span_.arg_count < Span::kMaxArgs) {
      auto& a = span_.args[span_.arg_count++];
      a.key = key;
      a.is_number = true;
      a.number = value;
    }
    return *this;
  }
  ScopedSpan& Arg(const char* key, std::uint64_t value) {
    return Arg(key, static_cast<double>(value));
  }
  ScopedSpan& Arg(const char* key, int value) {
    return Arg(key, static_cast<double>(value));
  }
  ScopedSpan& Arg(const char* key, std::string_view value) {
    if (armed_ && span_.arg_count < Span::kMaxArgs) {
      auto& a = span_.args[span_.arg_count++];
      a.key = key;
      a.is_number = false;
      a.text.assign(value);
    }
    return *this;
  }

  /// Elapsed milliseconds so far — lets instrumented code reuse the span's
  /// clock instead of running a second stopwatch.  0 when disabled (callers
  /// that need timing regardless should use Stopwatch).
  [[nodiscard]] double Millis() const {
    return armed_ ? static_cast<double>(Stopwatch::Now() - span_.start_ns) /
                        1e6
                  : 0.0;
  }
  [[nodiscard]] bool armed() const { return armed_; }

  /// Finish the span now instead of at scope exit (idempotent); for sites
  /// where the interesting work ends mid-scope.
  void Close() {
    if (armed_) {
      Finish();
      armed_ = false;
    }
  }

 private:
  void Arm(std::string_view name, const char* category);
  void Finish();

  bool armed_;
  Span span_;
};

}  // namespace b2h::obs
