// Implementation of the observability layer: registry snapshot
// serialization, the span ring, and the Chrome trace-event exporter.
#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/json.hpp"

namespace b2h::obs {

namespace {

/// Shortest round-trippable double, matching the repo's report writers.
std::string Num(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

}  // namespace

// ----------------------------------------------------------------- Counter

std::size_t Counter::StripeIndex() noexcept {
  // One stripe per thread, fixed for the thread's lifetime.  A counter of
  // threads (not the thread id hash) keeps the mapping dense, so up to
  // kStripes concurrent writers never share a cache line.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

// --------------------------------------------------------------- Histogram

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  // 10us .. 10s, roughly 1-2.5-5 per decade: wide enough for a simulator
  // run or a cold explore, fine enough near the bottom for serve pings.
  static const std::vector<double> bounds = {
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,    10.0,
      25.0, 50.0,  100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return bounds;
}

Histogram::Histogram(const std::vector<double>& bounds) {
  const std::vector<double>& edges =
      bounds.empty() ? DefaultLatencyBoundsMs() : bounds;
  bound_count_ = std::min(edges.size(), kMaxBounds);
  for (std::size_t i = 0; i < bound_count_; ++i) bounds_[i] = edges[i];
}

std::vector<double> Histogram::Bounds() const {
  return std::vector<double>(bounds_, bounds_ + bound_count_);
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts(bound_count_ + 1);
  for (std::size_t i = 0; i <= bound_count_; ++i) {
    counts[i] = buckets_[i].value.load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<std::uint64_t> Histogram::CumulativeBucketCounts() const {
  std::vector<std::uint64_t> counts = BucketCounts();
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  return counts;
}

void Histogram::Reset() noexcept {
  for (auto& bucket : buckets_) {
    bucket.value.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Registry

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

std::string Registry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"schema\":" << kMetricsSchemaVersion << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << support::JsonEscape(name) << "\":" << counter->Value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << support::JsonEscape(name) << "\":" << gauge->Value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << support::JsonEscape(name) << "\":{\"count\":"
        << histogram->Count() << ",\"sum\":" << Num(histogram->Sum())
        << ",\"bounds\":[";
    const auto bounds = histogram->Bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i) out << ",";
      out << Num(bounds[i]);
    }
    out << "],\"buckets\":[";
    const auto counts = histogram->BucketCounts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out << ",";
      out << counts[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

namespace {

/// Sanitize an instrument name into the Prometheus metric-name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]* — dots (the repo's namespacing convention) and
/// anything else illegal become '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = (c >= '0' && c <= '9');
    if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) out[i] = '_';
  }
  if (out.empty()) out = "_";
  return out;
}

}  // namespace

std::string Registry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    const std::string metric = PrometheusName(name);
    out << "# TYPE " << metric << " counter\n";
    out << metric << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string metric = PrometheusName(name);
    out << "# TYPE " << metric << " gauge\n";
    out << metric << " " << gauge->Value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string metric = PrometheusName(name);
    out << "# TYPE " << metric << " histogram\n";
    const std::vector<double> bounds = histogram->Bounds();
    // One consistent pass over the bucket atomics: the +Inf bucket and
    // _count both render the same cumulative total, so the series stays
    // spec-consistent even while Observe() runs concurrently.
    const std::vector<std::uint64_t> cumulative =
        histogram->CumulativeBucketCounts();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out << metric << "_bucket{le=\"" << Num(bounds[i]) << "\"} "
          << cumulative[i] << "\n";
    }
    const std::uint64_t total = cumulative.empty() ? 0 : cumulative.back();
    out << metric << "_bucket{le=\"+Inf\"} " << total << "\n";
    out << metric << "_sum " << Num(histogram->Sum()) << "\n";
    out << metric << "_count " << total << "\n";
  }
  return out.str();
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

// ------------------------------------------------------------------ Tracer

Tracer& Tracer::Global() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

void Tracer::Ring::Size(std::size_t cap) {
  capacity = std::max<std::size_t>(cap, 1);
  // Allocate the replacement while the old buffer is still live so the new
  // ring lands at a different address: bench_obs re-Enables to re-roll
  // cache-set aliasing between the ring and the workload, which
  // clear()+resize() would defeat by reusing the same allocation.
  std::vector<Span> fresh(capacity);
  spans.swap(fresh);
  next = 0;
  size = 0;
  wrapped = 0;
}

void Tracer::Ring::Push(Span&& span) {
  if (capacity == 0) return;
  if (size == capacity) ++wrapped;
  spans[next] = std::move(span);
  next = (next + 1) % capacity;
  size = std::min(size + 1, capacity);
}

std::vector<Span> Tracer::Ring::CopyOldestFirst() const {
  std::vector<Span> out;
  out.reserve(size);
  // Oldest span sits at next once the ring has wrapped, at 0 before.
  const std::size_t start = (size == capacity) ? next : 0;
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(spans[(start + i) % capacity]);
  }
  return out;
}

namespace {

/// Overwrite counters surfaced in /metrics (satellite: silent span loss
/// must be visible).  Resolved lazily so merely linking obs does not
/// create the series; referenced only on a wrap, never on the hot path.
Counter& TraceDroppedCounter() {
  static Counter& counter = Registry::Global().counter("obs.trace.dropped");
  return counter;
}
Counter& FlightWrappedCounter() {
  static Counter& counter = Registry::Global().counter("obs.flight.wrapped");
  return counter;
}

}  // namespace

void Tracer::Enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.Size(capacity);
  modes_.fetch_or(kModeMain, std::memory_order_relaxed);
}

void Tracer::Disable() {
  modes_.fetch_and(~kModeMain, std::memory_order_relaxed);
}

void Tracer::EnableFlight(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  flight_.Size(capacity);
  modes_.fetch_or(kModeFlight, std::memory_order_relaxed);
}

void Tracer::DisableFlight() {
  modes_.fetch_and(~kModeFlight, std::memory_order_relaxed);
}

void Tracer::Record(Span&& span) {
  const std::uint32_t modes = modes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if ((modes & kModeFlight) != 0 && flight_.capacity != 0) {
    const bool was_full = flight_.size == flight_.capacity;
    if ((modes & kModeMain) != 0) {
      flight_.Push(Span(span));  // main ring still needs the original
    } else {
      flight_.Push(std::move(span));
    }
    if (was_full) FlightWrappedCounter().Add();
    if ((modes & kModeMain) == 0) return;
  } else if ((modes & kModeMain) == 0) {
    return;
  }
  const bool was_full = ring_.size == ring_.capacity && ring_.capacity != 0;
  ring_.Push(std::move(span));
  if (was_full) TraceDroppedCounter().Add();
}

std::vector<Span> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.CopyOldestFirst();
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.wrapped;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.next = 0;
  ring_.size = 0;
  ring_.wrapped = 0;
}

std::vector<Span> Tracer::FlightSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flight_.CopyOldestFirst();
}

std::size_t Tracer::flight_wrapped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flight_.wrapped;
}

namespace {

/// Shared Chrome trace-event serializer for both rings.  `dropped` lands in
/// otherData so consumers (ci/validate_trace.py) can detect span loss
/// without diffing counts.
std::string SpansToChromeTraceJson(std::vector<Span> spans,
                                   std::size_t dropped) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.start_ns < b.start_ns;
  });
  const std::uint64_t epoch = spans.empty() ? 0 : spans.front().start_ns;
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" << dropped
      << "},\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out << ",";
    first = false;
    // Complete ("X") events: ts/dur in fractional microseconds relative to
    // the earliest span, one row per thread ordinal.
    out << "{\"name\":\"" << support::JsonEscape(span.name)
        << "\",\"cat\":\"" << support::JsonEscape(span.category)
        << "\",\"ph\":\"X\",\"ts\":"
        << Num(static_cast<double>(span.start_ns - epoch) / 1e3)
        << ",\"dur\":" << Num(static_cast<double>(span.duration_ns) / 1e3)
        << ",\"pid\":1,\"tid\":" << span.tid << ",\"args\":{\"span_id\":"
        << span.id;
    if (span.parent != 0) out << ",\"parent_id\":" << span.parent;
    for (std::size_t i = 0; i < span.arg_count; ++i) {
      const Span::Arg& arg = span.args[i];
      out << ",\"" << support::JsonEscape(arg.key) << "\":";
      if (arg.is_number) {
        out << Num(arg.number);
      } else {
        out << "\"" << support::JsonEscape(arg.text) << "\"";
      }
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace

std::string Tracer::ChromeTraceJson() const {
  std::vector<Span> spans;
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spans = ring_.CopyOldestFirst();
    dropped = ring_.wrapped;
  }
  return SpansToChromeTraceJson(std::move(spans), dropped);
}

std::string Tracer::FlightChromeTraceJson() const {
  std::vector<Span> spans;
  std::size_t wrapped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spans = flight_.CopyOldestFirst();
    wrapped = flight_.wrapped;
  }
  return SpansToChromeTraceJson(std::move(spans), wrapped);
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "obs: cannot open trace output '%s'\n", path.c_str());
    return false;
  }
  out << ChromeTraceJson() << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "obs: short write to trace output '%s'\n",
                 path.c_str());
    return false;
  }
  return true;
}

std::uint64_t Tracer::NextSpanId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t Tracer::ThreadOrdinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// ------------------------------------------------------- thread span stack

namespace detail {
SpanStack& ThreadSpanStack() {
  thread_local SpanStack stack;
  return stack;
}
}  // namespace detail

// -------------------------------------------------------------- ScopedSpan

void ScopedSpan::Arm(std::string_view name, const char* category) {
  span_.name.assign(name);
  span_.category = category;
  span_.id = Tracer::NextSpanId();
  span_.tid = Tracer::ThreadOrdinal();
  auto& stack = detail::ThreadSpanStack();
  const std::size_t top = std::min(stack.depth, detail::kMaxSpanDepth);
  span_.parent = top > 0 ? stack.ids[top - 1] : 0;
  if (stack.depth < detail::kMaxSpanDepth) {
    stack.ids[stack.depth] = span_.id;
  }
  ++stack.depth;  // deeper nesting saturates: pushes past the top are dropped
  span_.start_ns = Stopwatch::Now();  // last: exclude setup from duration
}

void ScopedSpan::Finish() {
  span_.duration_ns = Stopwatch::Now() - span_.start_ns;
  auto& stack = detail::ThreadSpanStack();
  if (stack.depth > 0) --stack.depth;
  Tracer& tracer = Tracer::Global();
  if (tracer.sampling()) tracer.Record(std::move(span_));
}

}  // namespace b2h::obs
