#include "mips/assembler.hpp"

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "mips/isa.hpp"
#include "support/bits.hpp"

namespace b2h::mips {
namespace {

struct Token {
  std::string text;
};

/// Split an assembly line into comma/space separated operand tokens, with the
/// mnemonic first.  Memory operands like "8($sp)" stay one token.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::optional<std::uint8_t> ParseReg(std::string_view text) {
  if (text.empty() || text[0] != '$') return std::nullopt;
  const std::string_view name = text.substr(1);
  // Numeric form: $0..$31.
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0]))) {
    int value = 0;
    for (char c : name) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      value = value * 10 + (c - '0');
    }
    if (value < 0 || value > 31) return std::nullopt;
    return static_cast<std::uint8_t>(value);
  }
  for (unsigned reg = 0; reg < 32; ++reg) {
    if (name == std::string_view(RegName(reg)).substr(1)) {
      return static_cast<std::uint8_t>(reg);
    }
  }
  return std::nullopt;
}

std::optional<std::int64_t> ParseInt(std::string_view text) {
  if (text.empty()) return std::nullopt;
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i >= text.size()) return std::nullopt;
  int base = 10;
  if (text.size() - i > 2 && text[i] == '0' &&
      (text[i + 1] == 'x' || text[i + 1] == 'X')) {
    base = 16;
    i += 2;
  }
  std::int64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    value = value * base + digit;
  }
  return negative ? -value : value;
}

struct MemOperand {
  std::int32_t offset = 0;
  std::uint8_t base = 0;
};

std::optional<MemOperand> ParseMem(std::string_view text) {
  const auto open = text.find('(');
  const auto close = text.find(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return std::nullopt;
  }
  MemOperand mem;
  const std::string_view offset_text = text.substr(0, open);
  if (offset_text.empty()) {
    mem.offset = 0;
  } else {
    const auto offset = ParseInt(offset_text);
    if (!offset) return std::nullopt;
    mem.offset = static_cast<std::int32_t>(*offset);
  }
  const auto reg = ParseReg(text.substr(open + 1, close - open - 1));
  if (!reg) return std::nullopt;
  mem.base = *reg;
  return mem;
}

/// One assembly statement scheduled for pass-2 fixup.
struct PendingInstr {
  std::vector<std::string> tokens;  // mnemonic + operands
  std::uint32_t address = 0;
  int line = 0;
  int words = 1;  // pseudo-instructions may expand to 2 words
};

struct PendingDataWord {
  std::string label;       // non-empty when the word is a label reference
  std::uint32_t value = 0;
  std::size_t offset = 0;  // byte offset within data segment
};

class Assembler {
 public:
  Result<SoftBinary> Run(std::string_view source) {
    std::istringstream stream{std::string(source)};
    std::string line;
    int line_number = 0;
    while (std::getline(stream, line)) {
      ++line_number;
      if (Status status = FirstPassLine(line, line_number); !status.ok()) {
        return status;
      }
    }
    return SecondPass();
  }

 private:
  Status Fail(int line, const std::string& message) const {
    std::ostringstream out;
    out << "asm:" << line << ": " << message;
    return Status::Error(ErrorKind::kParse, out.str());
  }

  Status FirstPassLine(std::string_view raw, int line) {
    auto tokens = Tokenize(raw);
    // Handle any leading labels ("loop:" possibly followed by an instr).
    while (!tokens.empty() && tokens.front().back() == ':') {
      std::string label = tokens.front().substr(0, tokens.front().size() - 1);
      if (label.empty()) return Fail(line, "empty label");
      if (symbols_.count(label) != 0) {
        return Fail(line, "duplicate label '" + label + "'");
      }
      symbols_[label] = in_text_ ? TextAddress() : DataAddress();
      tokens.erase(tokens.begin());
    }
    if (tokens.empty()) return Status::Ok();

    const std::string& head = tokens.front();
    if (head == ".text") {
      in_text_ = true;
      return Status::Ok();
    }
    if (head == ".data") {
      in_text_ = false;
      return Status::Ok();
    }
    if (head == ".word") {
      if (in_text_) return Fail(line, ".word only allowed in .data");
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        PendingDataWord word;
        word.offset = data_.size();
        if (auto value = ParseInt(tokens[i])) {
          word.value = static_cast<std::uint32_t>(*value);
        } else {
          word.label = tokens[i];
        }
        pending_words_.push_back(word);
        data_.insert(data_.end(), 4, 0);
      }
      return Status::Ok();
    }
    if (head == ".byte") {
      if (in_text_) return Fail(line, ".byte only allowed in .data");
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto value = ParseInt(tokens[i]);
        if (!value) return Fail(line, "bad .byte value");
        data_.push_back(static_cast<std::uint8_t>(*value & 0xFF));
      }
      return Status::Ok();
    }
    if (head == ".space") {
      if (in_text_ || tokens.size() != 2) {
        return Fail(line, "bad .space directive");
      }
      const auto size = ParseInt(tokens[1]);
      if (!size || *size < 0) return Fail(line, "bad .space size");
      data_.insert(data_.end(), static_cast<std::size_t>(*size), 0);
      return Status::Ok();
    }
    if (!in_text_) return Fail(line, "instruction outside .text");

    PendingInstr pending;
    pending.tokens = std::move(tokens);
    pending.address = TextAddress();
    pending.line = line;
    pending.words = WordCount(pending.tokens);
    text_words_ += static_cast<std::uint32_t>(pending.words);
    pending_instrs_.push_back(std::move(pending));
    return Status::Ok();
  }

  [[nodiscard]] std::uint32_t TextAddress() const {
    return kTextBase + text_words_ * 4u;
  }
  [[nodiscard]] std::uint32_t DataAddress() const {
    return kDataBase + static_cast<std::uint32_t>(data_.size());
  }

  /// Number of machine words a (possibly pseudo) instruction expands to.
  static int WordCount(const std::vector<std::string>& tokens) {
    const std::string& m = tokens.front();
    if (m == "la") return 2;  // lui + ori
    if (m == "li") {
      if (tokens.size() == 3) {
        if (auto value = ParseInt(tokens[2])) {
          const std::int64_t v = *value;
          if (v >= -32768 && v <= 32767) return 1;          // addiu
          if (v >= 0 && v <= 0xFFFF) return 1;              // ori
          if ((v & 0xFFFF) == 0 && v >= 0 && v <= 0xFFFF0000LL) return 1;
          return 2;                                         // lui + ori
        }
      }
      return 2;
    }
    if (m == "bgt" || m == "blt" || m == "bge" || m == "ble") return 2;
    return 1;
  }

  Result<SoftBinary> SecondPass() {
    SoftBinary binary;
    binary.text.reserve(text_words_);
    for (const PendingInstr& pending : pending_instrs_) {
      if (Status status = EmitInstr(pending, binary); !status.ok()) {
        return status;
      }
    }
    for (const PendingDataWord& word : pending_words_) {
      std::uint32_t value = word.value;
      if (!word.label.empty()) {
        const auto it = symbols_.find(word.label);
        if (it == symbols_.end()) {
          return Status::Error(ErrorKind::kParse,
                               "undefined data label '" + word.label + "'");
        }
        value = it->second;
      }
      for (int b = 0; b < 4; ++b) {
        data_[word.offset + static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>((value >> (8 * b)) & 0xFFu);
      }
    }
    binary.data = std::move(data_);
    binary.symbols = symbols_;
    if (const auto it = symbols_.find("main"); it != symbols_.end()) {
      binary.entry = it->second;
    }
    return binary;
  }

  std::optional<std::uint32_t> LookupSymbol(const std::string& name) const {
    const auto it = symbols_.find(name);
    if (it == symbols_.end()) return std::nullopt;
    return it->second;
  }

  /// Resolve a branch/jump operand that may be a label or a number.
  std::optional<std::uint32_t> ResolveTarget(const std::string& text) const {
    if (auto symbol = LookupSymbol(text)) return *symbol;
    if (auto value = ParseInt(text)) return static_cast<std::uint32_t>(*value);
    return std::nullopt;
  }

  Status EmitInstr(const PendingInstr& pending, SoftBinary& binary) {
    const auto& tokens = pending.tokens;
    const std::string& m = tokens.front();
    const int line = pending.line;
    const std::uint32_t pc = pending.address;

    const auto reg = [&](std::size_t i) -> std::optional<std::uint8_t> {
      return i < tokens.size() ? ParseReg(tokens[i]) : std::nullopt;
    };
    const auto imm = [&](std::size_t i) -> std::optional<std::int64_t> {
      return i < tokens.size() ? ParseInt(tokens[i]) : std::nullopt;
    };
    const auto push = [&](const Instr& instr) { binary.text.push_back(Encode(instr)); };
    const auto branch_disp = [&](std::uint32_t target,
                                 std::uint32_t from_pc) -> std::int32_t {
      return static_cast<std::int32_t>(target - (from_pc + 4)) >> 2;
    };

    // ---- pseudo-instructions ----
    if (m == "nop") {
      push({.op = Op::kSll, .rs = 0, .rt = 0, .rd = 0, .shamt = 0});
      return Status::Ok();
    }
    if (m == "move") {
      const auto rd = reg(1), rs = reg(2);
      if (!rd || !rs) return Fail(line, "move: bad operands");
      push({.op = Op::kOr, .rs = *rs, .rt = 0, .rd = *rd});
      return Status::Ok();
    }
    if (m == "neg") {
      const auto rd = reg(1), rs = reg(2);
      if (!rd || !rs) return Fail(line, "neg: bad operands");
      push({.op = Op::kSubu, .rs = 0, .rt = *rs, .rd = *rd});
      return Status::Ok();
    }
    if (m == "not") {
      const auto rd = reg(1), rs = reg(2);
      if (!rd || !rs) return Fail(line, "not: bad operands");
      push({.op = Op::kNor, .rs = *rs, .rt = 0, .rd = *rd});
      return Status::Ok();
    }
    if (m == "li") {
      const auto rd = reg(1);
      const auto value = imm(2);
      if (!rd || !value) return Fail(line, "li: bad operands");
      const std::int64_t v = *value;
      if (v >= -32768 && v <= 32767) {
        push({.op = Op::kAddiu, .rs = 0, .rt = *rd,
              .imm = static_cast<std::int32_t>(v)});
      } else if (v >= 0 && v <= 0xFFFF) {
        push({.op = Op::kOri, .rs = 0, .rt = *rd,
              .imm = static_cast<std::int32_t>(v)});
      } else if ((v & 0xFFFF) == 0 && v >= 0 && v <= 0xFFFF0000LL) {
        push({.op = Op::kLui, .rt = *rd,
              .imm = static_cast<std::int32_t>((v >> 16) & 0xFFFF)});
      } else {
        const auto uv = static_cast<std::uint32_t>(v);
        push({.op = Op::kLui, .rt = *rd,
              .imm = static_cast<std::int32_t>(uv >> 16)});
        push({.op = Op::kOri, .rs = *rd, .rt = *rd,
              .imm = static_cast<std::int32_t>(uv & 0xFFFFu)});
      }
      return Status::Ok();
    }
    if (m == "la") {
      const auto rd = reg(1);
      if (!rd || tokens.size() != 3) return Fail(line, "la: bad operands");
      const auto target = ResolveTarget(tokens[2]);
      if (!target) return Fail(line, "la: unknown symbol " + tokens[2]);
      push({.op = Op::kLui, .rt = *rd,
            .imm = static_cast<std::int32_t>(*target >> 16)});
      push({.op = Op::kOri, .rs = *rd, .rt = *rd,
            .imm = static_cast<std::int32_t>(*target & 0xFFFFu)});
      return Status::Ok();
    }
    if (m == "b") {
      const auto target = ResolveTarget(tokens.at(1));
      if (!target) return Fail(line, "b: unknown target");
      push({.op = Op::kBeq, .rs = 0, .rt = 0,
            .imm = branch_disp(*target, pc)});
      return Status::Ok();
    }
    if (m == "bgt" || m == "blt" || m == "bge" || m == "ble") {
      const auto ra = reg(1), rb = reg(2);
      if (!ra || !rb || tokens.size() != 4) {
        return Fail(line, m + ": bad operands");
      }
      const auto target = ResolveTarget(tokens[3]);
      if (!target) return Fail(line, m + ": unknown target");
      // slt $at, x, y; then branch on $at.
      if (m == "bgt") {        // a > b  <=>  slt at, b, a ; bne at
        push({.op = Op::kSlt, .rs = *rb, .rt = *ra, .rd = kAt});
      } else if (m == "blt") { // a < b  <=>  slt at, a, b ; bne at
        push({.op = Op::kSlt, .rs = *ra, .rt = *rb, .rd = kAt});
      } else if (m == "bge") { // a >= b <=>  slt at, a, b ; beq at
        push({.op = Op::kSlt, .rs = *ra, .rt = *rb, .rd = kAt});
      } else {                 // a <= b <=>  slt at, b, a ; beq at
        push({.op = Op::kSlt, .rs = *rb, .rt = *ra, .rd = kAt});
      }
      const Op branch = (m == "bgt" || m == "blt") ? Op::kBne : Op::kBeq;
      push({.op = branch, .rs = kAt, .rt = 0,
            .imm = branch_disp(*target, pc + 4)});
      return Status::Ok();
    }

    // ---- real instructions ----
    Op op = Op::kInvalid;
    for (int i = 0; i < static_cast<int>(Op::kInvalid); ++i) {
      if (m == Mnemonic(static_cast<Op>(i))) {
        op = static_cast<Op>(i);
        break;
      }
    }
    if (op == Op::kInvalid) return Fail(line, "unknown mnemonic '" + m + "'");

    Instr instr;
    instr.op = op;
    switch (op) {
      case Op::kSll: case Op::kSrl: case Op::kSra: {
        const auto rd = reg(1), rt = reg(2);
        const auto sh = imm(3);
        if (!rd || !rt || !sh || *sh < 0 || *sh > 31) {
          return Fail(line, "shift: bad operands");
        }
        instr.rd = *rd; instr.rt = *rt;
        instr.shamt = static_cast<std::uint8_t>(*sh);
        break;
      }
      case Op::kSllv: case Op::kSrlv: case Op::kSrav: {
        const auto rd = reg(1), rt = reg(2), rs = reg(3);
        if (!rd || !rt || !rs) return Fail(line, "shiftv: bad operands");
        instr.rd = *rd; instr.rt = *rt; instr.rs = *rs;
        break;
      }
      case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
      case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
      case Op::kSlt: case Op::kSltu: {
        const auto rd = reg(1), rs = reg(2), rt = reg(3);
        if (!rd || !rs || !rt) return Fail(line, "r3: bad operands");
        instr.rd = *rd; instr.rs = *rs; instr.rt = *rt;
        break;
      }
      case Op::kJr: case Op::kMthi: case Op::kMtlo: {
        const auto rs = reg(1);
        if (!rs) return Fail(line, "rs: bad operands");
        instr.rs = *rs;
        break;
      }
      case Op::kJalr: {
        const auto rd = reg(1), rs = reg(2);
        if (rd && rs) {
          instr.rd = *rd; instr.rs = *rs;
        } else if (rd) {
          instr.rd = kRa; instr.rs = *rd;
        } else {
          return Fail(line, "jalr: bad operands");
        }
        break;
      }
      case Op::kMfhi: case Op::kMflo: {
        const auto rd = reg(1);
        if (!rd) return Fail(line, "mfhi/mflo: bad operands");
        instr.rd = *rd;
        break;
      }
      case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu: {
        const auto rs = reg(1), rt = reg(2);
        if (!rs || !rt) return Fail(line, "mult/div: bad operands");
        instr.rs = *rs; instr.rt = *rt;
        break;
      }
      case Op::kBeq: case Op::kBne: {
        const auto rs = reg(1), rt = reg(2);
        if (!rs || !rt || tokens.size() != 4) {
          return Fail(line, "branch: bad operands");
        }
        const auto target = ResolveTarget(tokens[3]);
        if (!target) return Fail(line, "branch: unknown target " + tokens[3]);
        instr.rs = *rs; instr.rt = *rt;
        instr.imm = branch_disp(*target, pc);
        break;
      }
      case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez: {
        const auto rs = reg(1);
        if (!rs || tokens.size() != 3) return Fail(line, "branch: bad operands");
        const auto target = ResolveTarget(tokens[2]);
        if (!target) return Fail(line, "branch: unknown target " + tokens[2]);
        instr.rs = *rs;
        instr.imm = branch_disp(*target, pc);
        break;
      }
      case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
      case Op::kAndi: case Op::kOri: case Op::kXori: {
        const auto rt = reg(1), rs = reg(2);
        const auto value = imm(3);
        if (!rt || !rs || !value) return Fail(line, "imm: bad operands");
        instr.rt = *rt; instr.rs = *rs;
        instr.imm = static_cast<std::int32_t>(*value);
        break;
      }
      case Op::kLui: {
        const auto rt = reg(1);
        const auto value = imm(2);
        if (!rt || !value) return Fail(line, "lui: bad operands");
        instr.rt = *rt;
        instr.imm = static_cast<std::int32_t>(*value & 0xFFFF);
        break;
      }
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      case Op::kSb: case Op::kSh: case Op::kSw: {
        const auto rt = reg(1);
        if (!rt || tokens.size() != 3) return Fail(line, "mem: bad operands");
        const auto mem = ParseMem(tokens[2]);
        if (!mem) return Fail(line, "mem: bad address operand");
        instr.rt = *rt; instr.rs = mem->base; instr.imm = mem->offset;
        break;
      }
      case Op::kJ: case Op::kJal: {
        const auto target = ResolveTarget(tokens.at(1));
        if (!target) return Fail(line, "jump: unknown target " + tokens[1]);
        instr.target = (*target >> 2) & 0x03FF'FFFFu;
        break;
      }
      case Op::kInvalid:
        return Fail(line, "invalid op");
    }
    push(instr);
    return Status::Ok();
  }

  bool in_text_ = true;
  std::uint32_t text_words_ = 0;
  std::vector<std::uint8_t> data_;
  std::map<std::string, std::uint32_t> symbols_;
  std::vector<PendingInstr> pending_instrs_;
  std::vector<PendingDataWord> pending_words_;
};

}  // namespace

Result<SoftBinary> Assemble(std::string_view source) {
  Assembler assembler;
  return assembler.Run(source);
}

}  // namespace b2h::mips
