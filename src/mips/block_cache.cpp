#include "mips/block_cache.hpp"

#include "mips/binary.hpp"

namespace b2h::mips {

std::uint64_t CycleModel::CyclesFor(Op op, bool taken) const noexcept {
  std::uint64_t cycles = base;
  if (IsLoad(op)) cycles += load_extra;
  if (op == Op::kMult || op == Op::kMultu) cycles += mult_extra;
  if (op == Op::kDiv || op == Op::kDivu) cycles += div_extra;
  if ((IsBranch(op) && taken) || IsDirectJump(op) || IsIndirectJump(op)) {
    cycles += taken_extra;
  }
  return cycles;
}

namespace {

std::uint8_t DestRegister(const Instr& in) {
  switch (in.op) {
    // R-type writers.
    case Op::kSll: case Op::kSrl: case Op::kSra:
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kSlt: case Op::kSltu:
    case Op::kMfhi: case Op::kMflo:
    case Op::kJalr:
      return in.rd;
    // I-type writers.
    case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
    case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kLui:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      return in.rt;
    case Op::kJal:
      return kRa;
    default:
      return 0;
  }
}

std::uint8_t MemSize(Op op) {
  switch (op) {
    case Op::kLw: case Op::kSw: return 4;
    case Op::kLh: case Op::kLhu: case Op::kSh: return 2;
    case Op::kLb: case Op::kLbu: case Op::kSb: return 1;
    default: return 0;
  }
}

TermKind TermKindOf(Op op) {
  if (IsBranch(op)) return TermKind::kBranch;
  switch (op) {
    case Op::kJ: return TermKind::kJump;
    case Op::kJal: return TermKind::kJal;
    case Op::kJr: return TermKind::kJr;
    case Op::kJalr: return TermKind::kJalr;
    default: return TermKind::kFallthrough;
  }
}

}  // namespace

BlockCache::BlockCache(std::span<const Instr> decoded,
                       const std::vector<bool>& decode_ok,
                       const CycleModel& model) {
  const std::size_t n = decoded.size();
  instrs_.resize(n);
  spans_.resize(n);

  for (std::size_t i = 0; i < n; ++i) {
    if (!decode_ok[i]) continue;  // span stays {len=0}: fault on entry
    const Instr& in = decoded[i];
    const std::uint32_t pc = kTextBase + static_cast<std::uint32_t>(i) * 4u;
    PreInstr& m = instrs_[i];
    m.op = in.op;
    m.rs = in.rs;
    m.rt = in.rt;
    m.dest = DestRegister(in);
    m.shamt = in.shamt;
    m.mem_size = MemSize(in.op);
    m.imm = in.imm;
    if (IsBranch(in.op)) {
      m.target = BranchTarget(pc, in);
    } else if (IsDirectJump(in.op)) {
      m.target = JumpTarget(pc, in);
    }
    // Static cost: everything CyclesFor charges except a conditional
    // branch's taken_extra (jumps always pay it, so it folds in here).
    m.cycles = static_cast<std::uint32_t>(
        model.CyclesFor(in.op, /*taken=*/false));
  }

  // Spans, by backward walk: a control instruction or the word before an
  // undecodable one / the end of text terminates the straight-line run.
  for (std::size_t ri = n; ri > 0; --ri) {
    const std::size_t i = ri - 1;
    if (!decode_ok[i]) continue;
    const PreInstr& m = instrs_[i];
    BlockSpan& span = spans_[i];
    const TermKind kind = TermKindOf(m.op);
    if (kind != TermKind::kFallthrough) {
      span.len = 1;
      span.cycles = m.cycles;
      span.term = kind;
      const std::uint32_t pc = kTextBase + static_cast<std::uint32_t>(i) * 4u;
      span.backward_latch = (kind == TermKind::kBranch ||
                             kind == TermKind::kJump) &&
                            m.target < pc;
    } else if (i + 1 < n && decode_ok[i + 1]) {
      const BlockSpan& next = spans_[i + 1];
      span.len = next.len + 1;
      span.cycles = next.cycles + m.cycles;
      span.term = next.term;
      span.backward_latch = next.backward_latch;
    } else {
      // Runs off the decodable text: executes alone, then the fall-through
      // pc faults ("undecodable instruction" / "pc outside text segment").
      span.len = 1;
      span.cycles = m.cycles;
    }
  }

  // Leader census (reporting only): entry 0, control successors, and static
  // branch/jump targets.
  std::vector<bool> leader(n, false);
  if (n > 0) leader[0] = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!decode_ok[i]) continue;
    const PreInstr& m = instrs_[i];
    if (TermKindOf(m.op) == TermKind::kFallthrough) continue;
    if (i + 1 < n) leader[i + 1] = true;
    if ((IsBranch(m.op) || IsDirectJump(m.op)) && m.target >= kTextBase &&
        (m.target - kTextBase) / 4u < n) {
      leader[(m.target - kTextBase) / 4u] = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i] && decode_ok[i]) ++leader_blocks_;
  }
}

}  // namespace b2h::mips
