#include "mips/block_cache.hpp"

#include "mips/binary.hpp"

namespace b2h::mips {

std::uint64_t CycleModel::CyclesFor(Op op, bool taken) const noexcept {
  std::uint64_t cycles = base;
  if (IsLoad(op)) cycles += load_extra;
  if (op == Op::kMult || op == Op::kMultu) cycles += mult_extra;
  if (op == Op::kDiv || op == Op::kDivu) cycles += div_extra;
  if ((IsBranch(op) && taken) || IsDirectJump(op) || IsIndirectJump(op)) {
    cycles += taken_extra;
  }
  return cycles;
}

namespace {

std::uint8_t DestRegister(const Instr& in) {
  switch (in.op) {
    // R-type writers.
    case Op::kSll: case Op::kSrl: case Op::kSra:
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kSlt: case Op::kSltu:
    case Op::kMfhi: case Op::kMflo:
    case Op::kJalr:
      return in.rd;
    // I-type writers.
    case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
    case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kLui:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      return in.rt;
    case Op::kJal:
      return kRa;
    default:
      return 0;
  }
}

std::uint8_t MemSize(Op op) {
  switch (op) {
    case Op::kLw: case Op::kSw: return 4;
    case Op::kLh: case Op::kLhu: case Op::kSh: return 2;
    case Op::kLb: case Op::kLbu: case Op::kSb: return 1;
    default: return 0;
  }
}

/// Hard-terminator classification; conditional branches are SideExits, not
/// terminators, and must be handled before calling this.
TermKind TermKindOf(Op op) {
  switch (op) {
    case Op::kJ: return TermKind::kJump;
    case Op::kJal: return TermKind::kJal;
    case Op::kJr: return TermKind::kJr;
    case Op::kJalr: return TermKind::kJalr;
    default: return TermKind::kFallthrough;
  }
}

}  // namespace

BlockCache::BlockCache(std::span<const Instr> decoded,
                       const std::vector<bool>& decode_ok,
                       const CycleModel& model) {
  const std::size_t n = decoded.size();
  instrs_.resize(n);
  spans_.resize(n);

  for (std::size_t i = 0; i < n; ++i) {
    if (!decode_ok[i]) continue;  // span stays {len=0}: fault on entry
    const Instr& in = decoded[i];
    const std::uint32_t pc = kTextBase + static_cast<std::uint32_t>(i) * 4u;
    PreInstr& m = instrs_[i];
    m.op = in.op;
    m.rs = in.rs;
    m.rt = in.rt;
    m.dest = DestRegister(in);
    m.shamt = in.shamt;
    m.mem_size = MemSize(in.op);
    m.imm = in.imm;
    if (IsBranch(in.op)) {
      m.target = BranchTarget(pc, in);
    } else if (IsDirectJump(in.op)) {
      m.target = JumpTarget(pc, in);
    }
    // Static cost: everything CyclesFor charges except a conditional
    // branch's taken_extra (jumps always pay it, so it folds in here).
    m.cycles = static_cast<std::uint32_t>(
        model.CyclesFor(in.op, /*taken=*/false));
  }

  // Traces, by forward walk from every decodable entry: extend across
  // conditional branches (recording a SideExit each) until a jump, an
  // undecodable word, the end of text, or the kMaxTraceLen cap.  Spans
  // overlap freely — each entry owns a full trace and its own side-exit
  // slice, so per-(entry, exit) execution counters are a flat array.
  for (std::size_t i = 0; i < n; ++i) {
    if (!decode_ok[i]) continue;  // span stays {len=0}: fault on entry
    BlockSpan& span = spans_[i];
    span.exit_begin = static_cast<std::uint32_t>(exits_.size());
    std::uint64_t cycles = 0;
    std::size_t j = i;
    while (true) {
      if (j == n || !decode_ok[j]) {
        // Runs off the decodable text: the fall-through pc faults at the
        // top of the engine loop ("undecodable instruction" / "pc outside
        // text segment"), exactly as the reference engine would.
        span.term = TermKind::kFallthrough;
        break;
      }
      const PreInstr& m = instrs_[j];
      cycles += m.cycles;
      const std::uint32_t pc = kTextBase + static_cast<std::uint32_t>(j) * 4u;
      if (IsBranch(m.op)) {
        exits_.push_back({static_cast<std::uint32_t>(j - i),
                          static_cast<std::uint32_t>(cycles),
                          m.target < pc});
      } else {
        const TermKind kind = TermKindOf(m.op);
        if (kind != TermKind::kFallthrough) {
          span.term = kind;
          span.backward_latch = kind == TermKind::kJump && m.target < pc;
          ++j;
          break;
        }
      }
      ++j;
      if (j - i == kMaxTraceLen) {
        span.term = TermKind::kFallthrough;
        break;
      }
    }
    span.len = static_cast<std::uint32_t>(j - i);
    span.cycles = cycles;
    span.exit_count =
        static_cast<std::uint32_t>(exits_.size()) - span.exit_begin;
  }

  // Leader census (reporting only): entry 0, control successors, and static
  // branch/jump targets.
  std::vector<bool> leader(n, false);
  if (n > 0) leader[0] = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!decode_ok[i]) continue;
    const PreInstr& m = instrs_[i];
    if (!IsControl(m.op)) continue;
    if (i + 1 < n) leader[i + 1] = true;
    if ((IsBranch(m.op) || IsDirectJump(m.op)) && m.target >= kTextBase &&
        (m.target - kTextBase) / 4u < n) {
      leader[(m.target - kTextBase) / 4u] = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i] && decode_ok[i]) ++leader_blocks_;
  }
}

}  // namespace b2h::mips
