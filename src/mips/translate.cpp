#include "mips/translate.hpp"

#include <algorithm>
#include <cstdint>

#include "mips/binary.hpp"
#include "mips/shared_cache.hpp"
#include "obs/obs.hpp"

namespace b2h::mips::translate {

namespace {

/// Registry-backed metrics, resolved once (same idiom as the shared
/// block cache's CacheMetrics).
struct TranslateMetrics {
  obs::Counter& promotions;
  obs::Counter& capped;
  obs::Counter& entered;
  obs::Counter& chain_hits;
  obs::Counter& chain_misses;

  static TranslateMetrics& Get() {
    auto& registry = obs::Registry::Global();
    static TranslateMetrics metrics{
        registry.counter("sim.translate.promotions"),
        registry.counter("sim.translate.capped"),
        registry.counter("sim.translate.entered"),
        registry.counter("sim.translate.chain_hits"),
        registry.counter("sim.translate.chain_misses")};
    return metrics;
  }
};

/// ALU ops whose only architectural effect is a GPR write: with dest == 0
/// they are dead and the translator drops them (the trace-level accounting
/// still charges them via the original span length/cycles).
bool IsPureAluWrite(Op op) noexcept {
  switch (op) {
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kMfhi:
    case Op::kMflo:
    case Op::kAdd:
    case Op::kAddu:
    case Op::kSub:
    case Op::kSubu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kAddi:
    case Op::kAddiu:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kLui:
      return true;
    default:
      return false;
  }
}

/// 1:1 translation for non-fused, non-branch, non-terminator ops.  kAdd/
/// kSub/kAddi trap variants share the wrapping semantics of the unsigned
/// forms in this simulator, so they collapse onto one handler each.
TOp PlainTOp(Op op) noexcept {
  switch (op) {
    case Op::kSll:   return TOp::kSll;
    case Op::kSrl:   return TOp::kSrl;
    case Op::kSra:   return TOp::kSra;
    case Op::kSllv:  return TOp::kSllv;
    case Op::kSrlv:  return TOp::kSrlv;
    case Op::kSrav:  return TOp::kSrav;
    case Op::kMfhi:  return TOp::kMfhi;
    case Op::kMthi:  return TOp::kMthi;
    case Op::kMflo:  return TOp::kMflo;
    case Op::kMtlo:  return TOp::kMtlo;
    case Op::kMult:  return TOp::kMult;
    case Op::kMultu: return TOp::kMultu;
    case Op::kDiv:   return TOp::kDiv;
    case Op::kDivu:  return TOp::kDivu;
    case Op::kAdd:
    case Op::kAddu:  return TOp::kAddu;
    case Op::kSub:
    case Op::kSubu:  return TOp::kSubu;
    case Op::kAnd:   return TOp::kAnd;
    case Op::kOr:    return TOp::kOr;
    case Op::kXor:   return TOp::kXor;
    case Op::kNor:   return TOp::kNor;
    case Op::kSlt:   return TOp::kSlt;
    case Op::kSltu:  return TOp::kSltu;
    case Op::kAddi:
    case Op::kAddiu: return TOp::kAddiu;
    case Op::kSlti:  return TOp::kSlti;
    case Op::kSltiu: return TOp::kSltiu;
    case Op::kAndi:  return TOp::kAndi;
    case Op::kOri:   return TOp::kOri;
    case Op::kXori:  return TOp::kXori;
    case Op::kLb:    return TOp::kLb;
    case Op::kLh:    return TOp::kLh;
    case Op::kLw:    return TOp::kLw;
    case Op::kLbu:   return TOp::kLbu;
    case Op::kLhu:   return TOp::kLhu;
    case Op::kSb:    return TOp::kSb;
    case Op::kSh:    return TOp::kSh;
    case Op::kSw:    return TOp::kSw;
    case Op::kBeq:   return TOp::kBeq;
    case Op::kBne:   return TOp::kBne;
    case Op::kBlez:  return TOp::kBlez;
    case Op::kBgtz:  return TOp::kBgtz;
    case Op::kBltz:  return TOp::kBltz;
    case Op::kBgez:  return TOp::kBgez;
    default:         return TOp::kTermFall;  // unreachable by construction
  }
}

/// beq/bne restricted to (reg, $zero) — the fusable shape.  Returns the
/// tested register, or 0 when the branch is not of that shape.
std::uint8_t ZeroComparedReg(const PreInstr& br) noexcept {
  if (br.op != Op::kBeq && br.op != Op::kBne) return 0;
  if (br.rs != 0 && br.rt == 0) return br.rs;
  if (br.rs == 0 && br.rt != 0) return br.rt;
  return 0;
}

}  // namespace

TranslationBank::TranslationBank(const BlockCache& blocks,
                                 std::size_t text_words)
    : slots_(text_words),
      hot_(text_words),
      ics_(new InlineCache[kMaxTraces]),
      obs_index_(text_words, UINT32_MAX) {
  const BlockSpan* const spans = blocks.spans();
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < text_words; ++i) {
    if (spans[i].len != 0 && (spans[i].term == TermKind::kJr ||
                              spans[i].term == TermKind::kJalr)) {
      obs_index_[i] = n++;
    }
  }
  obs_ = std::vector<IcObs>(n);
}

void TranslationBank::ObserveIndirect(std::uint32_t entry,
                                      std::uint32_t target) noexcept {
  if (target == 0) return;
  const std::uint32_t oi = obs_index_[entry];
  if (oi == UINT32_MAX) return;
  IcObs& o = obs_[oi];
  for (unsigned w = 0; w < kObsWays; ++w) {
    std::uint32_t cur = o.target[w].load(std::memory_order_relaxed);
    if (cur == 0 &&
        !o.target[w].compare_exchange_strong(cur, target,
                                             std::memory_order_relaxed)) {
      // Lost the claim race; `cur` now holds the winner's target.
    }
    if (cur == 0 || cur == target) {
      o.count[w].fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  o.overflow.fetch_add(1, std::memory_order_relaxed);
}

TransTrace BuildTrace(const PredecodedProgram& pre, std::uint32_t entry) {
  const BlockCache& blocks = pre.blocks;
  const PreInstr* const mops = blocks.instrs();
  const SideExit* const exits = blocks.exits();
  const std::uint32_t taken_extra = pre.model.taken_extra;

  TransTrace out;
  out.entry = entry;
  out.len = blocks.spans()[entry].len;
  out.cycles = blocks.spans()[entry].cycles;
  out.ops.reserve(out.len + 1);

  // Static-successor inlining: a segment ending in an unconditional direct
  // transfer (fallthrough or `j`) splices its successor's ops into the
  // same stream behind a kLink seam, up to kInlineMaxInstrs original
  // instructions and never revisiting a segment (loops chain through the
  // dispatcher instead, so the budget and promotion checks still see
  // them).  Each segment keeps its own accounting identity — the seam
  // commits the predecessor exactly as its terminator would have — so
  // profiles stay bit-identical with unspliced execution.
  constexpr std::uint32_t kInlineMaxInstrs = 64;
  constexpr unsigned kInlineMaxSegments = 8;
  std::array<std::uint32_t, kInlineMaxSegments> visited{};
  unsigned visited_n = 0;
  std::uint32_t total_len = 0;

  std::uint32_t seg = entry;
  for (;;) {
  const BlockSpan& span = blocks.spans()[seg];
  const std::uint32_t entry_pc = kTextBase + 4u * seg;
  visited[visited_n++] = seg;
  total_len += span.len;

  // Number of original instructions that are ordinary ops: for jump-kind
  // terminators the last instruction becomes the terminator TransOp; a
  // fallthrough trace keeps all of them and appends a synthetic one.
  const bool jump_term = span.term != TermKind::kFallthrough;
  const std::uint32_t body_len = jump_term ? span.len - 1 : span.len;

  std::uint32_t exit_j = 0;  // side-exit ordinal of the next branch seen
  // Fill the branch fields shared by plain and fused branch ops.
  const auto bake_branch = [&](TransOp& op, std::uint32_t k) {
    const std::uint32_t slot = span.exit_begin + exit_j;
    const SideExit& se = exits[slot];
    op.off = static_cast<std::uint16_t>(k);
    op.aux = slot;
    op.charge = se.prefix_cycles + taken_extra;
    op.shamt = se.backward ? 1 : 0;
    op.target = mops[seg + k].target;
    ++exit_j;
  };

  for (std::uint32_t k = 0; k < body_len; ++k) {
    const PreInstr& in = mops[seg + k];

    // Dead pure-ALU write: no architectural effect, drop it.
    if (in.dest == 0 && IsPureAluWrite(in.op)) continue;

    const bool has_next = k + 1 < body_len;
    const PreInstr* next = has_next ? &mops[seg + k + 1] : nullptr;

    // lui d / {ori|addiu} d, d, imm  →  one constant store.
    if (in.op == Op::kLui && in.dest != 0) {
      const auto high =
          static_cast<std::uint32_t>(static_cast<std::uint32_t>(in.imm) << 16);
      if (next != nullptr && next->dest == in.dest && next->rs == in.dest &&
          (next->op == Op::kOri || next->op == Op::kAddiu ||
           next->op == Op::kAddi)) {
        TransOp op;
        op.op = TOp::kConst;
        op.dest = in.dest;
        op.off = static_cast<std::uint16_t>(k + 1);
        op.imm = static_cast<std::int32_t>(
            next->op == Op::kOri
                ? (high | static_cast<std::uint32_t>(next->imm))
                : (high + static_cast<std::uint32_t>(next->imm)));
        out.ops.push_back(op);
        ++k;
        continue;
      }
      TransOp op;
      op.op = TOp::kConst;
      op.dest = in.dest;
      op.off = static_cast<std::uint16_t>(k);
      op.imm = static_cast<std::int32_t>(high);
      out.ops.push_back(op);
      continue;
    }

    // slt-family d / {beq|bne} d, $zero  →  compare-and-branch (the
    // compare result is still written to d before the branch decides).
    if (in.dest != 0 &&
        (in.op == Op::kSlt || in.op == Op::kSltu || in.op == Op::kSlti ||
         in.op == Op::kSltiu) &&
        next != nullptr && ZeroComparedReg(*next) == in.dest) {
      const bool on_zero = next->op == Op::kBeq;  // beq d,$0: taken iff !cmp
      TransOp op;
      switch (in.op) {
        case Op::kSlt:
          op.op = on_zero ? TOp::kSltBeqz : TOp::kSltBnez;
          break;
        case Op::kSltu:
          op.op = on_zero ? TOp::kSltuBeqz : TOp::kSltuBnez;
          break;
        case Op::kSlti:
          op.op = on_zero ? TOp::kSltiBeqz : TOp::kSltiBnez;
          break;
        default:
          op.op = on_zero ? TOp::kSltiuBeqz : TOp::kSltiuBnez;
          break;
      }
      op.rs = in.rs;
      op.rt = in.rt;
      op.dest = in.dest;
      op.imm = in.imm;
      bake_branch(op, k + 1);
      out.ops.push_back(op);
      ++k;
      continue;
    }

    // addiu d / branch testing d  →  add-and-branch on the updated value.
    if (in.dest != 0 && (in.op == Op::kAddiu || in.op == Op::kAddi) &&
        next != nullptr) {
      TOp fused = TOp::kTermFall;
      if (const std::uint8_t z = ZeroComparedReg(*next);
          z == in.dest) {
        fused = next->op == Op::kBeq ? TOp::kAddiuBeqz : TOp::kAddiuBnez;
      } else if (next->rs == in.dest) {
        switch (next->op) {
          case Op::kBlez: fused = TOp::kAddiuBlez; break;
          case Op::kBgtz: fused = TOp::kAddiuBgtz; break;
          case Op::kBltz: fused = TOp::kAddiuBltz; break;
          case Op::kBgez: fused = TOp::kAddiuBgez; break;
          default: break;
        }
      }
      if (fused != TOp::kTermFall) {
        TransOp op;
        op.op = fused;
        op.rs = in.rs;
        op.dest = in.dest;
        op.imm = in.imm;
        bake_branch(op, k + 1);
        out.ops.push_back(op);
        ++k;
        continue;
      }
    }

    // andi d / sll d, d, shamt  →  one mask-and-scale op (the jump-table
    // index computation heading switch01/state02-shaped dispatch).
    if (in.op == Op::kAndi && in.dest != 0 && next != nullptr &&
        next->op == Op::kSll && next->dest == in.dest &&
        next->rt == in.dest) {
      TransOp op;
      op.op = TOp::kAndiSll;
      op.rs = in.rs;
      op.dest = in.dest;
      op.imm = in.imm;
      op.shamt = next->shamt;
      op.off = static_cast<std::uint16_t>(k + 1);
      out.ops.push_back(op);
      ++k;
      continue;
    }

    // kConst d just emitted / addu d, {d,s}  →  the add of a constant base
    // commutes into one add-immediate (la+addu of a jump-table base).  Any
    // ops between the two in the original text were dropped dead writes, so
    // the intermediate d==C state is unobservable (no faulting op between).
    if ((in.op == Op::kAddu || in.op == Op::kAdd) && in.dest != 0 &&
        !out.ops.empty() && out.ops.back().op == TOp::kConst &&
        out.ops.back().dest == in.dest) {
      const std::uint8_t other =
          in.rs == in.dest ? in.rt : (in.rt == in.dest ? in.rs : 0xFF);
      if (other != 0xFF && other != in.dest) {
        TransOp& prev = out.ops.back();
        prev.op = TOp::kAddiu;
        prev.rs = other;  // prev.imm already holds the constant base
        prev.off = static_cast<std::uint16_t>(k);
        continue;
      }
    }

    // Everything else translates 1:1.
    TransOp op;
    op.op = PlainTOp(in.op);
    op.rs = in.rs;
    op.rt = in.rt;
    op.dest = in.dest;
    op.shamt = in.shamt;
    op.mem_size = in.mem_size;
    op.imm = in.imm;
    op.target = in.target;
    op.off = static_cast<std::uint16_t>(k);
    if (IsBranch(in.op)) bake_branch(op, k);  // overwrites shamt/off/target
    out.ops.push_back(op);
  }

  // Unconditional direct transfer whose successor fits the splice budget:
  // emit a kLink seam and keep translating at the successor instead of
  // terminating the stream.
  if (span.term == TermKind::kFallthrough || span.term == TermKind::kJump) {
    const std::uint32_t succ_pc = span.term == TermKind::kFallthrough
                                      ? entry_pc + 4u * span.len
                                      : mops[seg + span.len - 1].target;
    const std::uint32_t succ = (succ_pc - kTextBase) / 4u;
    bool splice = succ_pc >= kTextBase && succ < pre.text.size() &&
                  blocks.spans()[succ].len != 0 &&
                  visited_n < kInlineMaxSegments &&
                  total_len + blocks.spans()[succ].len <= kInlineMaxInstrs;
    for (unsigned v = 0; splice && v < visited_n; ++v) {
      splice = visited[v] != succ;
    }
    if (splice) {
      TransOp link;
      link.op = TOp::kLink;
      link.off = static_cast<std::uint16_t>(span.len - 1);
      link.charge = static_cast<std::uint32_t>(span.cycles);
      link.shamt = span.backward_latch ? 1 : 0;
      link.target = succ_pc;
      link.imm = static_cast<std::int32_t>(succ);
      link.aux = blocks.spans()[succ].len;
      out.ops.push_back(link);
      seg = succ;
      continue;
    }
  }

  // Terminator op: carries the full-trace charge inline (off+1 original
  // instructions, `charge` = span.cycles) so the runner commits a complete
  // trace without touching the TransTrace header; `off` also positions the
  // latch event and fault mapping.  With spliced segments each kLink seam
  // played this role for its own segment, so the terminator charges only
  // the final one.
  TransOp term;
  term.off = static_cast<std::uint16_t>(span.len - 1);
  term.charge = static_cast<std::uint32_t>(span.cycles);
  term.shamt = span.backward_latch ? 1 : 0;
  switch (span.term) {
    case TermKind::kFallthrough:
      term.op = TOp::kTermFall;
      term.target = entry_pc + 4u * span.len;
      break;
    case TermKind::kJump:
      term.op = TOp::kTermJump;
      term.target = mops[seg + span.len - 1].target;
      break;
    case TermKind::kJal:
      term.op = TOp::kTermJal;
      term.dest = mops[seg + span.len - 1].dest;
      term.target = mops[seg + span.len - 1].target;
      term.imm = static_cast<std::int32_t>(entry_pc + 4u * (span.len - 1) + 4u);
      break;
    case TermKind::kJr:
      term.op = TOp::kTermJr;
      term.rs = mops[seg + span.len - 1].rs;
      break;
    case TermKind::kJalr:
      term.op = TOp::kTermJalr;
      term.rs = mops[seg + span.len - 1].rs;
      term.dest = mops[seg + span.len - 1].dest;
      term.imm = static_cast<std::int32_t>(entry_pc + 4u * (span.len - 1) + 4u);
      break;
  }

  // lw feeding the indirect terminator (`lw d ; jr d` — jump-table and
  // function-pointer dispatch; also the jalr form): fuse the load into the
  // terminator so the hottest seam of computed-dispatch code costs one
  // handler, not two.  kLw always translates 1:1 (never dropped or
  // consumed by another fusion), so ops.back() is that load.  The load
  // keeps its fault semantics: `off` stays at the load's offset, so the
  // demotion path charges only the instructions before it, and the
  // full-trace commit charges off+2.
  if ((term.op == TOp::kTermJr || term.op == TOp::kTermJalr) &&
      span.len >= 2 && !span.backward_latch && term.rs != 0 &&
      mops[seg + span.len - 2].op == Op::kLw &&
      mops[seg + span.len - 2].dest == term.rs) {
    const TransOp lw = out.ops.back();
    out.ops.pop_back();
    TransOp fused;
    fused.op = term.op == TOp::kTermJr ? TOp::kTermLwJr : TOp::kTermLwJalr;
    fused.rs = lw.rs;
    fused.rt = lw.dest;
    fused.imm = lw.imm;
    fused.dest = term.dest;  // jalr link register (0 for jr)
    fused.target = static_cast<std::uint32_t>(term.imm);  // precomputed link
    fused.off = lw.off;
    fused.charge = term.charge;
    term = fused;
  }
  out.ops.push_back(term);

  // Bake the inline cache from the tier-2 observations of the *final*
  // segment (its jr/jalr is the instruction the stream ends in): chainable
  // (in-text) targets ordered hottest-first.  More distinct chainable
  // targets than the cache holds — or overflow past the observation ways —
  // marks the exit megamorphic and it always yields to the dispatcher.
  if (span.term == TermKind::kJr || span.term == TermKind::kJalr) {
    const TranslationBank& bank = *pre.bank;
    const std::uint32_t oi = bank.obs_index_[seg];
    if (oi != UINT32_MAX) {
      const TranslationBank::IcObs& o = bank.obs_[oi];
      struct Way {
        std::uint32_t target;
        std::uint32_t count;
      };
      std::array<Way, TranslationBank::kObsWays> seen{};
      unsigned chainable = 0;
      for (unsigned w = 0; w < TranslationBank::kObsWays; ++w) {
        const std::uint32_t target =
            o.target[w].load(std::memory_order_relaxed);
        if (target == 0) continue;
        const std::uint32_t word = (target - kTextBase) / 4u;
        if (target < kTextBase || word >= pre.text.size()) continue;
        seen[chainable++] = {target, o.count[w].load(std::memory_order_relaxed)};
      }
      std::sort(seen.begin(), seen.begin() + chainable,
                [](const Way& a, const Way& b) { return a.count > b.count; });
      if (chainable > InlineCache::kWays ||
          o.overflow.load(std::memory_order_relaxed) != 0) {
        out.ic.megamorphic = true;
      } else {
        out.ic.ways = static_cast<std::uint8_t>(chainable);
        for (unsigned w = 0; w < chainable; ++w) {
          out.ic.target[w] = seen[w].target;
          out.ic.len[w] =
              blocks.spans()[(seen[w].target - kTextBase) / 4u].len;
        }
      }
    }
  }
  return out;
  }  // segment splice loop
}

void Promote(const PredecodedProgram& pre, std::uint32_t entry) {
  TranslationBank& bank = *pre.bank;
  const std::lock_guard<std::mutex> lock(bank.promote_mutex_);
  if (bank.slots_[entry].load(std::memory_order_relaxed) != nullptr) return;
  if (bank.translated_count_.load(std::memory_order_relaxed) >=
      TranslationBank::kMaxTraces) {
    // Hysteresis at the cap: the candidate re-earns the threshold before
    // the (always-failing) promotion path is probed again.
    bank.hot_[entry].store(0, std::memory_order_relaxed);
    TranslateMetrics::Get().capped.Add();
    return;
  }
  obs::ScopedSpan span("sim.translate.promote", "sim");
  TransTrace built = BuildTrace(pre, entry);
  span.Arg("entry", static_cast<std::uint64_t>(entry))
      .Arg("len", static_cast<std::uint64_t>(built.len))
      .Arg("ops", static_cast<std::uint64_t>(built.ops.size()))
      .Arg("ic_ways", static_cast<std::uint64_t>(built.ic.ways));
  // Indirect terminators reference their baked inline cache by ordinal
  // (fixed-capacity bank storage: at most one IC per trace, never moved
  // under a reader).  Patched before publication, immutable after.
  TransOp& term = built.ops.back();
  if (term.op == TOp::kTermJr || term.op == TOp::kTermJalr ||
      term.op == TOp::kTermLwJr || term.op == TOp::kTermLwJalr) {
    const std::uint32_t ordinal = bank.ic_count_++;
    bank.ics_[ordinal] = built.ic;
    term.aux = ordinal;
  }
  auto trace = std::make_unique<const TransTrace>(std::move(built));
  bank.translated_bytes_.fetch_add(trace->bytes(),
                                   std::memory_order_relaxed);
  const TransOp* const ops = trace->ops.data();
  bank.owned_.push_back(std::move(trace));
  bank.slots_[entry].store(ops, std::memory_order_release);
  bank.translated_count_.fetch_add(1, std::memory_order_relaxed);
  TranslateMetrics::Get().promotions.Add();
}

void AddRunStats(std::uint64_t entered, std::uint64_t chain_hits,
                 std::uint64_t chain_misses) noexcept {
  TranslateMetrics& metrics = TranslateMetrics::Get();
  if (entered != 0) metrics.entered.Add(entered);
  if (chain_hits != 0) metrics.chain_hits.Add(chain_hits);
  if (chain_misses != 0) metrics.chain_misses.Add(chain_misses);
}

Totals GlobalTotals() noexcept {
  TranslateMetrics& metrics = TranslateMetrics::Get();
  Totals t;
  t.promotions = metrics.promotions.Value();
  t.capped = metrics.capped.Value();
  t.entered = metrics.entered.Value();
  t.chain_hits = metrics.chain_hits.Value();
  t.chain_misses = metrics.chain_misses.Value();
  return t;
}

}  // namespace b2h::mips::translate
