// Two-pass textual MIPS assembler.
//
// Used by the MiniC code generator back end, by tests that need hand-crafted
// binary shapes (e.g. manually unrolled loops for the rerolling pass), and by
// the indirect-jump benchmarks that reproduce the paper's CDFG-recovery
// failures.
//
// Supported syntax:
//   .text / .data           section switch
//   label:                  labels (text or data)
//   .word v0, v1, ...       32-bit data (integers or label references)
//   .space N                N zero bytes
//   instruction operands    all ops in isa.hpp plus the pseudo-instructions
//                           li, la, move, nop, b, bgt, blt, bge, ble, neg, not
//   # comment               to end of line
#pragma once

#include <string>
#include <string_view>

#include "mips/binary.hpp"
#include "support/error.hpp"

namespace b2h::mips {

/// Assemble `source` into a SoftBinary. Entry point is the `main` label if
/// present, else the start of .text.
[[nodiscard]] Result<SoftBinary> Assemble(std::string_view source);

}  // namespace b2h::mips
