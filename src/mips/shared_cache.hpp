// Process-wide superblock pre-decode cache.
//
// Pre-decoding a program (Decode() every text word, build the BlockCache
// trace/side-exit tables) depends only on the text bytes and the cycle
// model — never on the Simulator instance.  Before this cache, every
// Simulator construction redid it: a RunMany sweep over P platforms sharing
// one cycle model rebuilt the same tables P times, bench_simulator rebuilt
// them per engine, and every warm b2h-serve request paid it again.
//
// SharedBlockCache mirrors the explore ArtifactCache discipline:
//
//   * content-keyed: the key is (text bytes, cycle model), hashed FNV-1a
//     and verified by exact comparison on lookup — two binaries with
//     identical text share one entry regardless of provenance;
//   * single-flight: concurrent Obtain() calls for the same key block on
//     one construction (a promise/shared_future per in-flight entry), so N
//     threads constructing Simulators for the same binary observe exactly
//     one pre-decode;
//   * LRU-bounded: entries are evicted least-recently-used once the byte
//     budget is exceeded; holders keep their shared_ptr alive, eviction
//     only drops the cache's reference;
//   * observable: obs::Registry counters sim.blockcache.{hits,misses,
//     evictions}, gauge sim.blockcache.bytes, and a
//     sim.blockcache.find / sim.blockcache.store span per lookup / build
//     (category "cache", same scheme as the artifact cache's cache.find /
//     cache.store).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mips/block_cache.hpp"
#include "mips/isa.hpp"
#include "mips/translate.hpp"

namespace b2h::mips {

struct SoftBinary;

/// Everything a Simulator derives from (text, cycle model) at construction:
/// the decoded instruction array the reference engine walks, the decode-ok
/// bitmap, and the BlockCache traces the block engine executes.  The
/// pre-decode tables are immutable once published; `bank` is the one
/// deliberately concurrent member — the tier-3 translation state
/// (lock-free hot counters / published trace slots, see mips/translate.hpp)
/// that kTranslated runs grow on the shared entry.
struct PredecodedProgram {
  std::vector<std::uint32_t> text;  ///< key material (exact-match verify)
  CycleModel model;
  std::vector<Instr> decoded;
  std::vector<bool> decode_ok;
  BlockCache blocks;
  std::unique_ptr<translate::TranslationBank> bank;

  /// Approximate heap footprint for the cache's byte accounting (the
  /// pre-decode tables only — translations are capped per program and
  /// accounted through Stats::translated_bytes instead).
  [[nodiscard]] std::size_t bytes() const noexcept;
};

class SharedBlockCache {
 public:
  /// The process-wide instance every Simulator constructor consults.
  static SharedBlockCache& Global();

  /// Return the pre-decode for (binary.text, model), constructing it at
  /// most once per process per key.  Thread-safe; concurrent callers for
  /// an in-flight key wait for the builder instead of duplicating work.
  [[nodiscard]] std::shared_ptr<const PredecodedProgram> Obtain(
      const SoftBinary& binary, const CycleModel& model);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;    ///< constructions (one per cold key)
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;     ///< resident entry footprint
    std::size_t entries = 0;
    // Tier-3 translation state (mips/translate.hpp).
    std::uint64_t translated_traces = 0;  ///< resident translated closures
    std::uint64_t translated_bytes = 0;   ///< their footprint
    std::uint64_t promotions = 0;         ///< traces translated, ever
    std::uint64_t chain_hits = 0;         ///< indirect exits chained (IC)
    std::uint64_t chain_misses = 0;       ///< indirect exits that fell back
    /// Translated closures dropped with their entry by LRU eviction
    /// (holders' shared_ptr keeps the closures alive — observable, never
    /// dangling).
    std::uint64_t evicted_translated = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// LRU byte budget; entries above it are evicted oldest-first.  0 means
  /// unbounded.  Applies on the next store.
  void set_max_bytes(std::size_t max_bytes);

  /// Drop every resident entry (tests).  In-flight builds still publish to
  /// their waiters; a build whose entry was cleared mid-flight is simply
  /// not re-registered.
  void Clear();

  static constexpr std::size_t kDefaultMaxBytes = 128u << 20;  // 128 MiB

 private:
  SharedBlockCache() = default;

  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

}  // namespace b2h::mips
