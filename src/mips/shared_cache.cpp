#include "mips/shared_cache.hpp"

#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "mips/binary.hpp"
#include "obs/obs.hpp"

namespace b2h::mips {

namespace {

/// Registry-backed metrics, resolved once (same idiom as the artifact
/// cache's TierMetrics).  The gauge tracks resident bytes so evictions
/// show as decreases; hits/misses/evictions are monotonic counters.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& evicted_translated;
  obs::Gauge& bytes;

  static CacheMetrics& Get() {
    auto& registry = obs::Registry::Global();
    static CacheMetrics metrics{
        registry.counter("sim.blockcache.hits"),
        registry.counter("sim.blockcache.misses"),
        registry.counter("sim.blockcache.evictions"),
        registry.counter("sim.blockcache.evicted_translated"),
        registry.gauge("sim.blockcache.bytes")};
    return metrics;
  }
};

std::uint64_t HashKey(const std::vector<std::uint32_t>& text,
                      const CycleModel& model) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  mix(text.size());
  for (std::uint32_t word : text) mix(word);
  mix(model.base);
  mix(model.load_extra);
  mix(model.mult_extra);
  mix(model.div_extra);
  mix(model.taken_extra);
  return h;
}

}  // namespace

std::size_t PredecodedProgram::bytes() const noexcept {
  return text.capacity() * sizeof(std::uint32_t) +
         decoded.capacity() * sizeof(Instr) + decode_ok.capacity() / 8 +
         blocks.bytes() + sizeof(*this);
}

struct SharedBlockCache::Impl {
  using Future = std::shared_future<std::shared_ptr<const PredecodedProgram>>;

  struct Entry {
    std::vector<std::uint32_t> text;  // exact key (hash-collision verify)
    CycleModel model;
    Future future;
    /// Set when the build completes; lets eviction and stats() inspect the
    /// entry's translation bank without blocking on the future.
    std::shared_ptr<const PredecodedProgram> ready;
    std::size_t bytes = 0;  // 0 until the build completes
    std::uint64_t last_use = 0;
  };

  mutable std::mutex mutex;
  std::unordered_map<std::uint64_t, std::vector<Entry>> map;
  std::uint64_t tick = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evicted_translated = 0;
  std::size_t resident_bytes = 0;
  std::size_t entries = 0;
  std::size_t max_bytes = kDefaultMaxBytes;

  /// Evict ready entries oldest-first until the budget holds.  In-flight
  /// entries (bytes == 0) are never evicted — their builder still needs to
  /// finalize them.  Callers hold `mutex`.
  void EvictLocked() {
    while (max_bytes != 0 && resident_bytes > max_bytes && entries > 1) {
      std::uint64_t oldest_key = 0;
      std::size_t oldest_pos = 0;
      std::uint64_t oldest_use = UINT64_MAX;
      bool found = false;
      for (auto& [key, chain] : map) {
        for (std::size_t p = 0; p < chain.size(); ++p) {
          const Entry& e = chain[p];
          if (e.bytes == 0) continue;  // in flight
          if (e.last_use < oldest_use) {
            oldest_use = e.last_use;
            oldest_key = key;
            oldest_pos = p;
            found = true;
          }
        }
      }
      if (!found) return;
      auto& chain = map[oldest_key];
      // Live translated closures leaving the cache with their entry are an
      // operability signal (sim.blockcache.evicted_translated): running
      // Simulators keep them alive through their shared_ptr, but the next
      // Obtain of this key re-decodes AND re-warms translation from zero.
      if (const auto& ready = chain[oldest_pos].ready;
          ready != nullptr && ready->bank != nullptr) {
        const std::uint32_t translated = ready->bank->translated_count();
        if (translated != 0) {
          evicted_translated += translated;
          CacheMetrics::Get().evicted_translated.Add(translated);
        }
      }
      resident_bytes -= chain[oldest_pos].bytes;
      chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(oldest_pos));
      if (chain.empty()) map.erase(oldest_key);
      --entries;
      ++evictions;
      CacheMetrics::Get().evictions.Add();
      CacheMetrics::Get().bytes.Set(
          static_cast<std::int64_t>(resident_bytes));
    }
  }
};

SharedBlockCache& SharedBlockCache::Global() {
  static SharedBlockCache instance;
  return instance;
}

SharedBlockCache::Impl& SharedBlockCache::impl() const {
  static Impl impl;
  return impl;
}

std::shared_ptr<const PredecodedProgram> SharedBlockCache::Obtain(
    const SoftBinary& binary, const CycleModel& model) {
  CacheMetrics& metrics = CacheMetrics::Get();
  Impl& state = impl();
  const std::uint64_t key = HashKey(binary.text, model);

  std::promise<std::shared_ptr<const PredecodedProgram>> promise;
  Impl::Future future;
  bool build_here = false;
  {
    obs::ScopedSpan span("sim.blockcache.find", "cache");
    std::lock_guard<std::mutex> lock(state.mutex);
    auto& chain = state.map[key];
    for (Impl::Entry& entry : chain) {
      if (entry.model == model && entry.text == binary.text) {
        entry.last_use = ++state.tick;
        metrics.hits.Add();
        span.Arg("outcome", "hit");
        future = entry.future;
        break;
      }
    }
    if (!future.valid()) {
      metrics.misses.Add();
      span.Arg("outcome", "miss");
      future = promise.get_future().share();
      chain.push_back({binary.text, model, future, nullptr, 0, ++state.tick});
      ++state.entries;
      build_here = true;
    }
  }

  if (!build_here) return future.get();  // may wait on an in-flight builder

  // Build outside the lock: one pre-decode per key process-wide, but
  // lookups for other programs proceed concurrently.
  obs::ScopedSpan span("sim.blockcache.store", "cache");
  auto pre = std::make_shared<PredecodedProgram>();
  pre->text = binary.text;
  pre->model = model;
  pre->decoded.resize(binary.text.size());
  pre->decode_ok.resize(binary.text.size(), false);
  for (std::size_t i = 0; i < binary.text.size(); ++i) {
    if (auto instr = Decode(binary.text[i])) {
      pre->decoded[i] = *instr;
      pre->decode_ok[i] = true;
    }
  }
  pre->blocks = BlockCache(pre->decoded, pre->decode_ok, model);
  pre->bank = std::make_unique<translate::TranslationBank>(
      pre->blocks, pre->text.size());
  const std::size_t bytes = pre->bytes();
  span.Arg("bytes", static_cast<std::uint64_t>(bytes))
      .Arg("text_words", static_cast<std::uint64_t>(binary.text.size()));
  promise.set_value(pre);

  {
    std::lock_guard<std::mutex> lock(state.mutex);
    auto it = state.map.find(key);
    if (it != state.map.end()) {
      for (Impl::Entry& entry : it->second) {
        if (entry.bytes == 0 && entry.model == model &&
            entry.text == binary.text) {
          entry.ready = pre;
          entry.bytes = bytes;
          state.resident_bytes += bytes;
          metrics.bytes.Set(static_cast<std::int64_t>(state.resident_bytes));
          break;
        }
      }
    }
    state.EvictLocked();
  }
  return pre;
}

SharedBlockCache::Stats SharedBlockCache::stats() const {
  CacheMetrics& metrics = CacheMetrics::Get();
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  Stats s;
  s.hits = metrics.hits.Value();
  s.misses = metrics.misses.Value();
  s.evictions = state.evictions;
  s.bytes = state.resident_bytes;
  s.entries = state.entries;
  for (const auto& [key, chain] : state.map) {
    for (const Impl::Entry& entry : chain) {
      if (entry.ready != nullptr && entry.ready->bank != nullptr) {
        s.translated_traces += entry.ready->bank->translated_count();
        s.translated_bytes += entry.ready->bank->translated_bytes();
      }
    }
  }
  const translate::Totals totals = translate::GlobalTotals();
  s.promotions = totals.promotions;
  s.chain_hits = totals.chain_hits;
  s.chain_misses = totals.chain_misses;
  s.evicted_translated = state.evicted_translated;
  return s;
}

void SharedBlockCache::set_max_bytes(std::size_t max_bytes) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.max_bytes = max_bytes;
  state.EvictLocked();
}

void SharedBlockCache::Clear() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  // Keep in-flight entries: their builders must still find-and-finalize
  // them, and dropping the future would duplicate a build already running.
  for (auto it = state.map.begin(); it != state.map.end();) {
    auto& chain = it->second;
    for (auto entry = chain.begin(); entry != chain.end();) {
      if (entry->bytes != 0) {
        state.resident_bytes -= entry->bytes;
        entry = chain.erase(entry);
        --state.entries;
      } else {
        ++entry;
      }
    }
    it = chain.empty() ? state.map.erase(it) : ++it;
  }
  CacheMetrics::Get().bytes.Set(static_cast<std::int64_t>(state.resident_bytes));
}

}  // namespace b2h::mips
