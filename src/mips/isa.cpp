#include "mips/isa.hpp"

#include <array>
#include <sstream>

#include "support/bits.hpp"
#include "support/error.hpp"

namespace b2h::mips {
namespace {

constexpr std::array<const char*, 32> kRegNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};

enum class Format { kShift, kShiftVar, kR3, kRsOnly, kRdRs, kRsRt, kRdOnly,
                    kBranch2, kBranch1, kImmArith, kImmLogic, kLui, kMem,
                    kJump };

struct OpInfo {
  const char* mnemonic;
  Format format;
  std::uint8_t opcode;  // primary opcode field
  std::uint8_t funct;   // funct (R-type) or rt (REGIMM)
};

constexpr OpInfo Info(Op op) {
  switch (op) {
    case Op::kSll:   return {"sll", Format::kShift, 0x00, 0x00};
    case Op::kSrl:   return {"srl", Format::kShift, 0x00, 0x02};
    case Op::kSra:   return {"sra", Format::kShift, 0x00, 0x03};
    case Op::kSllv:  return {"sllv", Format::kShiftVar, 0x00, 0x04};
    case Op::kSrlv:  return {"srlv", Format::kShiftVar, 0x00, 0x06};
    case Op::kSrav:  return {"srav", Format::kShiftVar, 0x00, 0x07};
    case Op::kJr:    return {"jr", Format::kRsOnly, 0x00, 0x08};
    case Op::kJalr:  return {"jalr", Format::kRdRs, 0x00, 0x09};
    case Op::kMfhi:  return {"mfhi", Format::kRdOnly, 0x00, 0x10};
    case Op::kMthi:  return {"mthi", Format::kRsOnly, 0x00, 0x11};
    case Op::kMflo:  return {"mflo", Format::kRdOnly, 0x00, 0x12};
    case Op::kMtlo:  return {"mtlo", Format::kRsOnly, 0x00, 0x13};
    case Op::kMult:  return {"mult", Format::kRsRt, 0x00, 0x18};
    case Op::kMultu: return {"multu", Format::kRsRt, 0x00, 0x19};
    case Op::kDiv:   return {"div", Format::kRsRt, 0x00, 0x1a};
    case Op::kDivu:  return {"divu", Format::kRsRt, 0x00, 0x1b};
    case Op::kAdd:   return {"add", Format::kR3, 0x00, 0x20};
    case Op::kAddu:  return {"addu", Format::kR3, 0x00, 0x21};
    case Op::kSub:   return {"sub", Format::kR3, 0x00, 0x22};
    case Op::kSubu:  return {"subu", Format::kR3, 0x00, 0x23};
    case Op::kAnd:   return {"and", Format::kR3, 0x00, 0x24};
    case Op::kOr:    return {"or", Format::kR3, 0x00, 0x25};
    case Op::kXor:   return {"xor", Format::kR3, 0x00, 0x26};
    case Op::kNor:   return {"nor", Format::kR3, 0x00, 0x27};
    case Op::kSlt:   return {"slt", Format::kR3, 0x00, 0x2a};
    case Op::kSltu:  return {"sltu", Format::kR3, 0x00, 0x2b};
    case Op::kBltz:  return {"bltz", Format::kBranch1, 0x01, 0x00};
    case Op::kBgez:  return {"bgez", Format::kBranch1, 0x01, 0x01};
    case Op::kJ:     return {"j", Format::kJump, 0x02, 0};
    case Op::kJal:   return {"jal", Format::kJump, 0x03, 0};
    case Op::kBeq:   return {"beq", Format::kBranch2, 0x04, 0};
    case Op::kBne:   return {"bne", Format::kBranch2, 0x05, 0};
    case Op::kBlez:  return {"blez", Format::kBranch1, 0x06, 0};
    case Op::kBgtz:  return {"bgtz", Format::kBranch1, 0x07, 0};
    case Op::kAddi:  return {"addi", Format::kImmArith, 0x08, 0};
    case Op::kAddiu: return {"addiu", Format::kImmArith, 0x09, 0};
    case Op::kSlti:  return {"slti", Format::kImmArith, 0x0a, 0};
    case Op::kSltiu: return {"sltiu", Format::kImmArith, 0x0b, 0};
    case Op::kAndi:  return {"andi", Format::kImmLogic, 0x0c, 0};
    case Op::kOri:   return {"ori", Format::kImmLogic, 0x0d, 0};
    case Op::kXori:  return {"xori", Format::kImmLogic, 0x0e, 0};
    case Op::kLui:   return {"lui", Format::kLui, 0x0f, 0};
    case Op::kLb:    return {"lb", Format::kMem, 0x20, 0};
    case Op::kLh:    return {"lh", Format::kMem, 0x21, 0};
    case Op::kLw:    return {"lw", Format::kMem, 0x23, 0};
    case Op::kLbu:   return {"lbu", Format::kMem, 0x24, 0};
    case Op::kLhu:   return {"lhu", Format::kMem, 0x25, 0};
    case Op::kSb:    return {"sb", Format::kMem, 0x28, 0};
    case Op::kSh:    return {"sh", Format::kMem, 0x29, 0};
    case Op::kSw:    return {"sw", Format::kMem, 0x2b, 0};
    case Op::kInvalid: break;
  }
  return {"invalid", Format::kR3, 0xFF, 0xFF};
}

constexpr bool ImmIsSigned(Format format) {
  return format == Format::kImmArith || format == Format::kMem ||
         format == Format::kBranch1 || format == Format::kBranch2;
}

std::optional<Op> DecodeRType(std::uint8_t funct) {
  for (int i = 0; i <= static_cast<int>(Op::kSltu); ++i) {
    const Op op = static_cast<Op>(i);
    const OpInfo info = Info(op);
    if (info.opcode == 0x00 && info.funct == funct) return op;
  }
  return std::nullopt;
}

std::optional<Op> DecodePrimary(std::uint8_t opcode) {
  for (int i = 0; i < static_cast<int>(Op::kInvalid); ++i) {
    const Op op = static_cast<Op>(i);
    const OpInfo info = Info(op);
    if (info.opcode == opcode && opcode != 0x00 && opcode != 0x01) return op;
  }
  return std::nullopt;
}

}  // namespace

const char* RegName(unsigned reg) noexcept {
  return reg < 32 ? kRegNames[reg] : "$??";
}

const char* Mnemonic(Op op) noexcept { return Info(op).mnemonic; }

bool IsBranch(Op op) noexcept {
  switch (op) {
    case Op::kBeq: case Op::kBne: case Op::kBlez: case Op::kBgtz:
    case Op::kBltz: case Op::kBgez:
      return true;
    default:
      return false;
  }
}

bool IsDirectJump(Op op) noexcept { return op == Op::kJ || op == Op::kJal; }

bool IsIndirectJump(Op op) noexcept {
  return op == Op::kJr || op == Op::kJalr;
}

bool IsLoad(Op op) noexcept {
  switch (op) {
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      return true;
    default:
      return false;
  }
}

bool IsStore(Op op) noexcept {
  return op == Op::kSb || op == Op::kSh || op == Op::kSw;
}

bool IsControl(Op op) noexcept {
  return IsBranch(op) || IsDirectJump(op) || IsIndirectJump(op);
}

bool WritesGpr(Op op) noexcept {
  switch (op) {
    case Op::kJr: case Op::kMthi: case Op::kMtlo: case Op::kMult:
    case Op::kMultu: case Op::kDiv: case Op::kDivu: case Op::kBltz:
    case Op::kBgez: case Op::kBeq: case Op::kBne: case Op::kBlez:
    case Op::kBgtz: case Op::kSb: case Op::kSh: case Op::kSw: case Op::kJ:
    case Op::kInvalid:
      return false;
    default:
      return true;
  }
}

std::uint32_t Encode(const Instr& instr) {
  Check(instr.op != Op::kInvalid, "Encode: invalid opcode");
  Check(instr.rs < 32 && instr.rt < 32 && instr.rd < 32 && instr.shamt < 32,
        "Encode: register field out of range");
  const OpInfo info = Info(instr.op);
  const auto opc = static_cast<std::uint32_t>(info.opcode) << 26;
  const auto rs = static_cast<std::uint32_t>(instr.rs) << 21;
  const auto rt = static_cast<std::uint32_t>(instr.rt) << 16;
  const auto rd = static_cast<std::uint32_t>(instr.rd) << 11;
  const auto sh = static_cast<std::uint32_t>(instr.shamt) << 6;
  const std::uint32_t imm16 = static_cast<std::uint32_t>(instr.imm) & 0xFFFFu;
  if (ImmIsSigned(info.format)) {
    Check(instr.imm >= -32768 && instr.imm <= 32767,
          "Encode: signed immediate out of range");
  }
  switch (info.format) {
    case Format::kShift:
      return opc | rt | rd | sh | info.funct;
    case Format::kShiftVar:
    case Format::kR3:
      return opc | rs | rt | rd | info.funct;
    case Format::kRsOnly:
      return opc | rs | info.funct;
    case Format::kRdRs:
      return opc | rs | rd | info.funct;
    case Format::kRsRt:
      return opc | rs | rt | info.funct;
    case Format::kRdOnly:
      return opc | rd | info.funct;
    case Format::kBranch1:
      // REGIMM encodes the condition in the rt field.
      if (info.opcode == 0x01) {
        return opc | rs | (static_cast<std::uint32_t>(info.funct) << 16) |
               imm16;
      }
      return opc | rs | imm16;
    case Format::kBranch2:
    case Format::kImmArith:
    case Format::kImmLogic:
    case Format::kMem:
      if (!ImmIsSigned(info.format)) {
        Check(instr.imm >= 0 && instr.imm <= 0xFFFF,
              "Encode: unsigned immediate out of range");
      }
      return opc | rs | rt | imm16;
    case Format::kLui:
      Check(instr.imm >= 0 && instr.imm <= 0xFFFF,
            "Encode: lui immediate out of range");
      return opc | rt | imm16;
    case Format::kJump:
      Check(instr.target < (1u << 26), "Encode: jump target out of range");
      return opc | instr.target;
  }
  throw InternalError("Encode: unreachable");
}

std::optional<Instr> Decode(std::uint32_t word) noexcept {
  const auto opcode = static_cast<std::uint8_t>(Bits(word, 26, 6));
  Instr instr;
  instr.rs = static_cast<std::uint8_t>(Bits(word, 21, 5));
  instr.rt = static_cast<std::uint8_t>(Bits(word, 16, 5));
  instr.rd = static_cast<std::uint8_t>(Bits(word, 11, 5));
  instr.shamt = static_cast<std::uint8_t>(Bits(word, 6, 5));
  const std::uint32_t imm16 = Bits(word, 0, 16);

  if (opcode == 0x00) {
    const auto funct = static_cast<std::uint8_t>(Bits(word, 0, 6));
    const auto op = DecodeRType(funct);
    if (!op) return std::nullopt;
    instr.op = *op;
    // Normalize unused fields so Encode(Decode(w)) == w round-trips only for
    // canonical encodings; tests cover this.
    return instr;
  }
  if (opcode == 0x01) {
    instr.op = instr.rt == 0 ? Op::kBltz
               : instr.rt == 1 ? Op::kBgez
                               : Op::kInvalid;
    if (instr.op == Op::kInvalid) return std::nullopt;
    instr.rt = 0;
    instr.imm = SignExtend(imm16, 16);
    return instr;
  }
  const auto op = DecodePrimary(opcode);
  if (!op) return std::nullopt;
  instr.op = *op;
  const OpInfo info = Info(*op);
  if (info.format == Format::kJump) {
    instr.rs = instr.rt = instr.rd = instr.shamt = 0;
    instr.target = Bits(word, 0, 26);
    return instr;
  }
  instr.imm = ImmIsSigned(info.format)
                  ? SignExtend(imm16, 16)
                  : static_cast<std::int32_t>(imm16);
  return instr;
}

std::uint32_t BranchTarget(std::uint32_t pc, const Instr& instr) noexcept {
  return pc + 4 + (static_cast<std::uint32_t>(instr.imm) << 2);
}

std::uint32_t JumpTarget(std::uint32_t pc, const Instr& instr) noexcept {
  return ((pc + 4) & 0xF000'0000u) | (instr.target << 2);
}

std::string Disassemble(const Instr& instr, std::uint32_t pc) {
  const OpInfo info = Info(instr.op);
  std::ostringstream out;
  out << info.mnemonic << ' ';
  const auto hex = [](std::uint32_t value) {
    std::ostringstream s;
    s << "0x" << std::hex << value;
    return s.str();
  };
  switch (info.format) {
    case Format::kShift:
      out << RegName(instr.rd) << ", " << RegName(instr.rt) << ", "
          << static_cast<int>(instr.shamt);
      break;
    case Format::kShiftVar:
      out << RegName(instr.rd) << ", " << RegName(instr.rt) << ", "
          << RegName(instr.rs);
      break;
    case Format::kR3:
      out << RegName(instr.rd) << ", " << RegName(instr.rs) << ", "
          << RegName(instr.rt);
      break;
    case Format::kRsOnly:
      out << RegName(instr.rs);
      break;
    case Format::kRdRs:
      out << RegName(instr.rd) << ", " << RegName(instr.rs);
      break;
    case Format::kRsRt:
      out << RegName(instr.rs) << ", " << RegName(instr.rt);
      break;
    case Format::kRdOnly:
      out << RegName(instr.rd);
      break;
    case Format::kBranch1:
      out << RegName(instr.rs) << ", " << hex(BranchTarget(pc, instr));
      break;
    case Format::kBranch2:
      out << RegName(instr.rs) << ", " << RegName(instr.rt) << ", "
          << hex(BranchTarget(pc, instr));
      break;
    case Format::kImmArith:
    case Format::kImmLogic:
      out << RegName(instr.rt) << ", " << RegName(instr.rs) << ", "
          << instr.imm;
      break;
    case Format::kLui:
      out << RegName(instr.rt) << ", " << instr.imm;
      break;
    case Format::kMem:
      out << RegName(instr.rt) << ", " << instr.imm << '('
          << RegName(instr.rs) << ')';
      break;
    case Format::kJump:
      out << hex(JumpTarget(pc, instr));
      break;
  }
  return out.str();
}

}  // namespace b2h::mips
