// Tier 3 of the simulator: host-translated hot superblock traces.
//
// The block engine (tier 2, mips/exec_block_body.inc) executes pre-decoded
// PreInstrs trace-at-a-time but still returns to the dispatch loop after
// every trace — and pays a generic handler (dest-register check, immediate
// reload, branch-target recomputation) per instruction.  For hot traces
// that cost is pure overhead: everything about the trace is static except
// the register values.  This module compiles such traces into *fused host
// operation* streams (TransOp):
//
//   * constant materialization pairs (lui+ori / lui+addiu into the same
//     register, and lone lui) collapse into one kConst store;
//   * compare+branch (slt-family feeding beq/bne against $zero) and
//     decrement-and-branch (addiu feeding a branch on the same register)
//     collapse into one op with the side-exit record baked in;
//   * pure ALU writes to $zero are dropped (they have no architectural
//     effect; the trace-level accounting below still charges them);
//   * every side exit carries its precomputed instruction/cycle charge and
//     profile slot, so a taken branch commits accounting in O(1);
//   * the terminator is an op too, carrying the precomputed link value
//     (jal/jalr) and static successor (fallthrough/j/jal).
//
// The headline mechanism is **trace chaining through observed indirect
// targets**: while a trace is still executing in tier 2, its jr/jalr
// terminator records observed successor pcs in a lock-free per-entry
// observation table (TranslationBank::ObserveIndirect).  At promotion the
// translator bakes the most frequent targets into a small immutable inline
// cache (monomorphic fast path, kWays-bounded polymorphic fallback, a
// megamorphic flag that always yields to the dispatcher).  The translated
// runner (mips/exec_translate_body.inc) chains directly from trace to
// trace — through static successors, taken side exits, and IC-hit indirect
// jumps — without returning to the dispatch loop, so a hot state machine
// executes whole loop iterations inside one dispatcher entry.
//
// Promotion is profile-driven with hysteresis and a cap: an entry is
// translated when its *cumulative* dispatch count (across every run of the
// shared pre-decode) crosses kPromoteThreshold; once kMaxTraces traces
// exist for a program, further candidates reset their counters and must
// re-earn the threshold (so a capped bank is not probed on every
// dispatch).  Translations live in the TranslationBank hanging off the
// SharedBlockCache's PredecodedProgram — never mutated after publication,
// dropped only when the LRU evicts the whole entry (counted by
// sim.blockcache.evicted_translated; holders keep the closures alive
// through their shared_ptr, so eviction never dangles).
//
// Semantics are bit-identical to the reference interpreter by
// construction: fused ops preserve every architectural write, accounting
// reuses the trace/side-exit counters of tier 2, and the runner yields to
// the dispatcher whenever the remaining instruction budget cannot cover a
// whole trace (so fault/budget mid-trace demotion to per-instruction
// accounting is unchanged).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mips/block_cache.hpp"

namespace b2h::mips {
struct PredecodedProgram;
}  // namespace b2h::mips

namespace b2h::mips::translate {

// Fused host operations.  The threaded dispatcher builds its label table
// from this list; every op must have exactly one handler in
// mips/exec_translate_ops.inc.
#define B2H_TRANSLATE_OP_LIST(X)                                             \
  /* Shifts. */                                                              \
  X(kSll) X(kSrl) X(kSra) X(kSllv) X(kSrlv) X(kSrav)                         \
  /* HI/LO moves and multiply/divide. */                                     \
  X(kMfhi) X(kMthi) X(kMflo) X(kMtlo) X(kMult) X(kMultu) X(kDiv) X(kDivu)    \
  /* Three-register ALU. */                                                  \
  X(kAddu) X(kSubu) X(kAnd) X(kOr) X(kXor) X(kNor) X(kSlt) X(kSltu)          \
  /* Immediate ALU + fused constant materialization + fused mask-and-scale  \
     (andi feeding sll on the same register: jump-table index shapes). */    \
  X(kAddiu) X(kSlti) X(kSltiu) X(kAndi) X(kOri) X(kXori) X(kConst)           \
  X(kAndiSll)                                                                \
  /* Memory. */                                                              \
  X(kLb) X(kLh) X(kLw) X(kLbu) X(kLhu) X(kSb) X(kSh) X(kSw)                  \
  /* Side-exit branches (charges + profile slot baked in). */                \
  X(kBeq) X(kBne) X(kBlez) X(kBgtz) X(kBltz) X(kBgez)                        \
  /* Fused compare+branch against $zero (the slt result is still written). */\
  X(kSltBeqz) X(kSltBnez) X(kSltuBeqz) X(kSltuBnez)                          \
  X(kSltiBeqz) X(kSltiBnez) X(kSltiuBeqz) X(kSltiuBnez)                      \
  /* Fused add-immediate-and-branch on the updated register. */              \
  X(kAddiuBeqz) X(kAddiuBnez) X(kAddiuBlez) X(kAddiuBgtz)                    \
  X(kAddiuBltz) X(kAddiuBgez)                                                \
  /* Inline seam: commits the preceding segment's whole-trace accounting    \
     and falls through into the next segment's ops (static-successor        \
     inlining — see BuildTrace), yielding to the dispatcher when the        \
     remaining budget cannot cover the next segment whole. */               \
  X(kLink)                                                                  \
  /* Terminators (exactly one per trace, always the last op).  The LwJr /  \
     LwJalr forms fuse a jump-table load into the indirect terminator       \
     (`lw d ; jr d`): rt is the load's destination, imm its offset, and     \
     `off` stays at the load's trace offset so the fault path demotes       \
     with the load not yet complete. */                                     \
  X(kTermFall) X(kTermJump) X(kTermJal) X(kTermJr) X(kTermJalr)              \
  X(kTermLwJr) X(kTermLwJalr)

enum class TOp : std::uint8_t {
#define B2H_TRANSLATE_OP_ENUM(name) name,
  B2H_TRANSLATE_OP_LIST(B2H_TRANSLATE_OP_ENUM)
#undef B2H_TRANSLATE_OP_ENUM
};

inline constexpr std::size_t kTOpCount =
    static_cast<std::size_t>(TOp::kTermLwJalr) + 1;

/// One fused host operation (24 bytes).  Field meaning by kind:
///   * ALU/memory: rs/rt/dest/shamt/mem_size/imm as in PreInstr, except
///     dest != 0 is guaranteed for unconditional GPR writes (dead writes
///     were dropped) — only loads may carry dest == 0;
///   * branches (plain and fused): `target` is the taken byte target,
///     `aux` the global side-exit slot, `charge` the taken cycle charge
///     (prefix + taken_extra), `off` the branch's original trace offset
///     (so the taken path charges off+1 instructions), and `shamt` the
///     backward-latch flag for the instrumented event;
///   * terminators: `off` = len-1 (so the full-trace charge is off+1
///     instructions), `charge` the full-trace cycle charge (span.cycles),
///     `shamt` = span.backward_latch, `imm` the precomputed link value
///     (kTermJal/kTermJalr), `target` the static successor pc
///     (kTermFall/kTermJump/kTermJal), and `aux` the bank's inline-cache
///     ordinal (all indirect forms, patched at publication) — the runner
///     never touches the TransTrace header on the hot path.  The fused
///     kTermLwJr/kTermLwJalr forms put the load's base/destination/offset
///     in rs/rt/imm, the precomputed link value in `target`, and `off` at
///     the load's trace offset (full-trace charge = off+2 instructions);
///   * kLink (inline seam): `off`/`charge`/`shamt` commit the preceding
///     segment exactly as its terminator would, `target`/`imm`/`aux` are
///     the spliced successor's pc / word index / original length.
struct TransOp {
  TOp op = TOp::kTermFall;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t dest = 0;
  std::uint8_t shamt = 0;
  std::uint8_t mem_size = 0;
  std::uint16_t off = 0;  ///< original offset of the (last fused) source op
  std::int32_t imm = 0;
  std::uint32_t target = 0;
  std::uint32_t aux = 0;
  std::uint32_t charge = 0;
};

/// Baked observed-successor cache for an indirect terminator.  Immutable
/// after translation (so it is shared across threads without locks): a
/// target observed only after promotion simply keeps falling back to the
/// dispatcher, where tier 2 counts it toward its own promotion.
struct InlineCache {
  static constexpr unsigned kWays = 4;
  std::array<std::uint32_t, kWays> target{};  ///< pcs inside text, hot first
  /// Original instruction count of each target's trace, copied from the
  /// span table at bake time (the pre-decode is immutable): the runner's
  /// whole-trace budget check on a chain hit reads it from the cache line
  /// it already has instead of the spans array.
  std::array<std::uint32_t, kWays> len{};
  std::uint8_t ways = 0;
  /// More distinct targets were observed than kWays can hold: never chain,
  /// always yield to the dispatcher (bounded polymorphic fallback).
  bool megamorphic = false;
};

/// A translated trace: the fused op stream plus the original trace's
/// accounting identity (entry index, original length, full-trace cycles).
struct TransTrace {
  std::uint32_t entry = 0;
  std::uint32_t len = 0;     ///< ORIGINAL instruction count (accounting)
  std::uint64_t cycles = 0;  ///< full-trace cycle charge (span.cycles)
  InlineCache ic;            ///< meaningful for kTermJr/kTermJalr only
  std::vector<TransOp> ops;

  [[nodiscard]] std::size_t bytes() const noexcept {
    return sizeof(*this) + ops.capacity() * sizeof(TransOp);
  }
};

/// Per-program translation state, owned by the PredecodedProgram the
/// SharedBlockCache shares across Simulators.  All hot-path methods are
/// lock-free; the promotion path serializes on a mutex.
class TranslationBank {
 public:
  /// Cumulative dispatches of an entry before it is translated.
  static constexpr std::uint32_t kPromoteThreshold = 64;
  /// Per-program translation cap (hysteresis: candidates rejected at the
  /// cap reset their counter and must re-earn the threshold).
  static constexpr std::uint32_t kMaxTraces = 512;
  /// Observation ways per indirect terminator — wider than
  /// InlineCache::kWays so megamorphism is detected, not truncated.
  static constexpr unsigned kObsWays = 8;

  TranslationBank(const BlockCache& blocks, std::size_t text_words);

  /// Translated op stream for `entry`, or nullptr.  The slot points at the
  /// first TransOp directly (not the TransTrace header): trace chaining is
  /// one dependent load away from dispatching, and everything the runner
  /// needs beyond the ops lives in the terminator op (charge, latch flag,
  /// inline-cache ordinal) or the already-resident span table (len for the
  /// budget check).  Acquire pairs with the release store in Promote so
  /// the ops and the referenced inline cache are safely published.
  [[nodiscard]] const TransOp* Ops(std::uint32_t entry) const noexcept {
    return slots_[entry].load(std::memory_order_acquire);
  }

  /// Baked inline cache by the ordinal a kTermJr/kTermJalr op carries in
  /// `aux`.  Fixed-capacity storage (one per translated trace at most), so
  /// concurrent Promote never moves entries under a reader.
  [[nodiscard]] const InlineCache& Ic(std::uint32_t ordinal) const noexcept {
    return ics_[ordinal];
  }

  /// Count one tier-2 dispatch of a not-yet-translated entry; true when
  /// the cumulative count just crossed the promotion threshold.
  [[nodiscard]] bool CountDispatch(std::uint32_t entry) noexcept {
    return hot_[entry].fetch_add(1, std::memory_order_relaxed) + 1 ==
           kPromoteThreshold;
  }

  /// Record an observed jr/jalr successor while the trace still runs in
  /// tier 2.  Lock-free; no-op for entries without an indirect terminator.
  void ObserveIndirect(std::uint32_t entry, std::uint32_t target) noexcept;

  [[nodiscard]] std::uint32_t translated_count() const noexcept {
    return translated_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t translated_bytes() const noexcept {
    return translated_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend void Promote(const PredecodedProgram& pre, std::uint32_t entry);
  friend TransTrace BuildTrace(const PredecodedProgram& pre,
                               std::uint32_t entry);

  /// Per-way observed (target, count) pairs for one indirect terminator.
  struct IcObs {
    std::array<std::atomic<std::uint32_t>, kObsWays> target{};
    std::array<std::atomic<std::uint32_t>, kObsWays> count{};
    std::atomic<std::uint32_t> overflow{0};
  };

  std::vector<std::atomic<const TransOp*>> slots_;
  std::vector<std::atomic<std::uint32_t>> hot_;
  /// Inline caches referenced by terminator `aux` ordinals.  At most one
  /// per translated trace, so kMaxTraces slots never fill; allocation is
  /// guarded by promote_mutex_, reads are wait-free.
  std::unique_ptr<InlineCache[]> ics_;
  std::uint32_t ic_count_ = 0;
  /// obs_index_[entry] indexes obs_, UINT32_MAX for traces whose
  /// terminator is not indirect (sized at construction, never resized).
  std::vector<std::uint32_t> obs_index_;
  std::vector<IcObs> obs_;

  std::mutex promote_mutex_;
  std::vector<std::unique_ptr<const TransTrace>> owned_;
  std::atomic<std::uint32_t> translated_count_{0};
  std::atomic<std::size_t> translated_bytes_{0};
};

/// Translate `entry`'s trace and publish it in the bank (no-op when the
/// slot is already filled or the cap is reached).  Called from the run
/// loop when CountDispatch crosses the threshold; thread-safe.
void Promote(const PredecodedProgram& pre, std::uint32_t entry);

/// Pure specializer (exposed for tests): fuse the trace at `entry` into a
/// TransTrace, baking the inline cache from `bank`'s observations.
[[nodiscard]] TransTrace BuildTrace(const PredecodedProgram& pre,
                                    std::uint32_t entry);

/// Fold one run's tier-3 tallies into the process-wide sim.translate.*
/// counters (called at every run exit, not per trace).
void AddRunStats(std::uint64_t entered, std::uint64_t chain_hits,
                 std::uint64_t chain_misses) noexcept;

/// Process-monotonic totals backing SharedBlockCache::Stats.
struct Totals {
  std::uint64_t promotions = 0;
  std::uint64_t capped = 0;       ///< promotions rejected at kMaxTraces
  std::uint64_t entered = 0;      ///< translated trace executions
  std::uint64_t chain_hits = 0;   ///< indirect exits chained via the IC
  std::uint64_t chain_misses = 0; ///< indirect exits that fell back
};
[[nodiscard]] Totals GlobalTotals() noexcept;

}  // namespace b2h::mips::translate
