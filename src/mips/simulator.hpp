// Functional MIPS simulator with an instruction-class cycle model and an
// always-on execution profiler.
//
// Two roles in the reproduction:
//   1. Software execution time: the paper compares synthesized kernels
//      against a MIPS running at 40/200/400 MHz; cycle counts from this
//      simulator divided by the clock give the software-only times.
//   2. Profiling: the three-step partitioner (paper §3) is driven by
//      profiling results; the profiler records per-instruction execution and
//      branch taken/not-taken counts that the decompiler maps onto CDFG
//      blocks and loops.
//
// Semantics notes (documented platform definition, see DESIGN.md §6):
//   - no branch delay slots;
//   - add/addi/sub do not trap on overflow (wrap like their -u forms);
//   - divide by zero yields quotient 0 and remainder = dividend;
//   - little-endian memory; unaligned word/half accesses are a fault.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mips/binary.hpp"
#include "mips/isa.hpp"

namespace b2h::mips {

/// Per-instruction-class cycle costs (single-issue in-order core).
struct CycleModel {
  unsigned base = 1;          ///< all instructions
  unsigned load_extra = 1;    ///< additional cycles for loads
  unsigned mult_extra = 2;    ///< additional cycles for mult/multu
  unsigned div_extra = 15;    ///< additional cycles for div/divu
  unsigned taken_extra = 1;   ///< additional cycles for taken branches/jumps

  [[nodiscard]] std::uint64_t CyclesFor(Op op, bool taken) const noexcept;
};

/// Execution counts indexed by text-word index ((pc - kTextBase) / 4).
struct ExecProfile {
  std::vector<std::uint64_t> instr_count;
  std::vector<std::uint64_t> cycle_count;
  std::vector<std::uint64_t> branch_taken;
  std::vector<std::uint64_t> branch_not_taken;
  std::uint64_t total_instructions = 0;
  std::uint64_t total_cycles = 0;

  [[nodiscard]] std::uint64_t CountAt(std::uint32_t pc) const {
    const std::size_t index = (pc - kTextBase) / 4u;
    return index < instr_count.size() ? instr_count[index] : 0u;
  }
};

/// Why a run ended.
enum class HaltReason { kReturned, kMaxInstructions, kFault };

struct RunResult {
  std::int32_t return_value = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  HaltReason reason = HaltReason::kFault;
  std::string fault_message;
  ExecProfile profile;
};

class Simulator {
 public:
  explicit Simulator(const SoftBinary& binary, CycleModel model = {});

  /// Run from the entry point; `args` fill $a0..$a3.
  [[nodiscard]] RunResult Run(std::span<const std::int32_t> args = {},
                              std::uint64_t max_instructions = 100'000'000);

  /// Direct memory access for tests and for host-side result inspection.
  [[nodiscard]] std::uint32_t PeekWord(std::uint32_t addr) const;
  void PokeWord(std::uint32_t addr, std::uint32_t value);

  static constexpr std::uint32_t kDataSegmentSize = 1u << 20;  // 1 MiB
  static constexpr std::uint32_t kStackSize = 1u << 16;        // 64 KiB

 private:
  [[nodiscard]] const std::uint8_t* MemPtr(std::uint32_t addr,
                                           unsigned size) const;
  [[nodiscard]] std::uint8_t* MemPtr(std::uint32_t addr, unsigned size);

  const SoftBinary& binary_;
  CycleModel model_;
  std::vector<Instr> decoded_;     // predecoded text
  std::vector<bool> decode_ok_;
  std::vector<std::uint8_t> data_mem_;
  std::vector<std::uint8_t> stack_mem_;
};

}  // namespace b2h::mips
