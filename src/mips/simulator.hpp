// Functional MIPS simulator with an instruction-class cycle model and an
// always-on execution profiler.
//
// Two roles in the reproduction:
//   1. Software execution time: the paper compares synthesized kernels
//      against a MIPS running at 40/200/400 MHz; cycle counts from this
//      simulator divided by the clock give the software-only times.
//   2. Profiling: the three-step partitioner (paper §3) is driven by
//      profiling results; the profiler records per-instruction execution and
//      branch taken/not-taken counts that the decompiler maps onto CDFG
//      blocks and loops.
//
// A third role exists for *dynamic* partitioning (paper §6: the partitioner
// is fast enough to run on-chip while the application executes):
// RunInstrumented() adds a RunObserver hook that batches taken backward
// branches (the on-chip loop profiler's trigger event), through which a
// dynamic partitioner detects hot loop headers mid-run.  Everything else the
// dynamic flow needs — per-region cycle/entry accounting for swapped-in
// kernels — is derived from profile *snapshots* taken inside the callback,
// so the interpreter hot path carries no extra per-instruction work, and
// the plain Run() path compiles without even the hook check.
//
// Execution engines: the default interpreter is block-compiled — text is
// pre-decoded into multi-exit superblock traces (mips/block_cache.hpp,
// built once per process per (text, cycle model) by the SharedBlockCache)
// and executed trace-at-a-time with computed-goto threaded dispatch where
// the compiler supports it, with profile accounting kept as per-trace /
// per-side-exit counters that are expanded into the per-index ExecProfile
// vectors at observer flush points and at halt.  The original
// per-instruction interpreter is retained (ExecEngine::kReference) as a
// differential oracle; all engines produce bit-identical RunResults and
// observer event streams.  docs/ENGINE.md is the deep dive.
//
// Semantics notes (documented platform definition, see DESIGN.md §6):
//   - no branch delay slots;
//   - add/addi/sub do not trap on overflow (wrap like their -u forms);
//   - divide by zero yields quotient 0 and remainder = dividend;
//   - little-endian memory; unaligned word/half accesses are a fault.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mips/binary.hpp"
#include "mips/block_cache.hpp"
#include "mips/isa.hpp"
#include "mips/shared_cache.hpp"

namespace b2h::mips {

/// Execution counts indexed by text-word index ((pc - kTextBase) / 4).
struct ExecProfile {
  std::vector<std::uint64_t> instr_count;
  std::vector<std::uint64_t> cycle_count;
  std::vector<std::uint64_t> branch_taken;
  std::vector<std::uint64_t> branch_not_taken;
  std::uint64_t total_instructions = 0;
  std::uint64_t total_cycles = 0;

  [[nodiscard]] std::uint64_t CountAt(std::uint32_t pc) const {
    const std::size_t index = (pc - kTextBase) / 4u;
    return index < instr_count.size() ? instr_count[index] : 0u;
  }
};

/// Why a run ended.
enum class HaltReason { kReturned, kMaxInstructions, kFault };

struct RunResult {
  std::int32_t return_value = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  HaltReason reason = HaltReason::kFault;
  std::string fault_message;
  ExecProfile profile;
};

/// One taken backward control transfer (a loop latch): a conditional branch
/// or direct `j` whose target precedes it.  Function calls and returns are
/// never recorded.
struct BranchEvent {
  std::uint32_t target_pc = 0;  ///< loop header
  std::uint32_t from_pc = 0;    ///< latch instruction
};

/// Observation hook for RunInstrumented.  Latch events are collected into a
/// small on-simulator buffer and delivered in batches (one virtual call per
/// kBranchBatch events — the software analogue of draining an on-chip
/// branch FIFO, and what keeps the hook overhead on the interpreter hot
/// path small).  A partial batch is flushed before the run returns.
/// `so_far` is the run's cumulative state including every batched event;
/// the profile vectors are live, so an observer may snapshot them mid-run —
/// to decompile the code executed so far, and to re-price a region later as
/// the delta between its swap-time snapshot and the final profile.
class RunObserver {
 public:
  virtual ~RunObserver() = default;
  virtual void OnBackwardBranches(std::span<const BranchEvent> events,
                                  const RunResult& so_far) = 0;
};

/// Which interpreter Run()/RunInstrumented() use.  All produce bit-identical
/// RunResults (profiles included) and identical observer event streams; the
/// reference path is retained as the differential-testing oracle and as the
/// pre-block-engine baseline the throughput bench measures speedup against.
enum class ExecEngine {
  /// Block-compiled engine: multi-exit superblock traces from the
  /// process-wide SharedBlockCache, executed with computed-goto threaded
  /// dispatch (per-opcode label table) on compilers with GNU `&&label`
  /// support; identical to kBlockSwitch elsewhere.
  kBlock,
  /// The same trace engine with the portable switch dispatch loop forced —
  /// the threaded-dispatch baseline bench_simulator measures against, and
  /// the behavior kBlock compiles to without `&&label`.
  kBlockSwitch,
  /// Tiered engine (default): the block engine plus tier 3 — hot traces
  /// are promoted into fused host-op streams (mips/translate.hpp) that
  /// chain trace-to-trace through static successors and inline-cache-hit
  /// indirect jumps without returning to the dispatch loop.  Cold code
  /// runs exactly as kBlock.
  kTranslated,
  /// The original one-instruction-at-a-time interpreter.
  kReference,
};

/// The engine Simulator uses when the caller doesn't pick one: kTranslated,
/// overridable per process via
/// B2H_SIM_ENGINE=translated|block|block-switch|reference (read once; see
/// the "simulator throughput regression" runbook in docs/OPERATIONS.md —
/// pinning `reference` bisects engine bugs without rebuilding callers, and
/// `block` isolates tier-3 chaining regressions from the trace engine).
[[nodiscard]] ExecEngine DefaultExecEngine() noexcept;

class Simulator {
 public:
  explicit Simulator(const SoftBinary& binary, CycleModel model = {},
                     ExecEngine engine = DefaultExecEngine());

  /// Switch interpreters between runs (testing/benchmarking).
  void SetEngine(ExecEngine engine) noexcept { engine_ = engine; }
  [[nodiscard]] ExecEngine engine() const noexcept { return engine_; }

  /// The pre-decoded superblock cache backing the block engine (shared
  /// process-wide; see mips/shared_cache.hpp).
  [[nodiscard]] const BlockCache& blocks() const noexcept {
    return pre_->blocks;
  }

  /// Run from the entry point; `args` fill $a0..$a3.
  [[nodiscard]] RunResult Run(std::span<const std::int32_t> args = {},
                              std::uint64_t max_instructions = 100'000'000);

  /// Run() variant for tight run-after-run loops (benchmarks, explorers):
  /// move a no-longer-needed RunResult in and its heap storage — the four
  /// profile vectors and the fault string — is reused for the new run
  /// instead of freed and reallocated.  Results are identical to Run();
  /// only the allocator traffic differs, which is a measurable slice of
  /// short-run workloads (switch01 retires ~280 instructions per run).
  [[nodiscard]] RunResult Run(std::span<const std::int32_t> args,
                              std::uint64_t max_instructions,
                              RunResult&& recycle);

  /// Run with the dynamic-partitioning hook enabled: the observer (may be
  /// null) sees every taken backward branch, batched.  Semantically
  /// identical to Run() — same result, same profile — only the callbacks
  /// differ.
  [[nodiscard]] RunResult RunInstrumented(
      std::span<const std::int32_t> args, std::uint64_t max_instructions,
      RunObserver* observer);

  /// Direct memory access for tests and for host-side result inspection.
  [[nodiscard]] std::uint32_t PeekWord(std::uint32_t addr) const;
  void PokeWord(std::uint32_t addr, std::uint32_t value);

  static constexpr std::uint32_t kDataSegmentSize = 1u << 20;  // 1 MiB
  static constexpr std::uint32_t kStackSize = 1u << 16;        // 64 KiB
  /// Latch events buffered per observer callback (see RunObserver).
  static constexpr std::size_t kBranchBatch = 128;
  /// A partial batch is flushed once this many instructions have elapsed
  /// since the last flush (bounds detection latency on sparse-latch code;
  /// checked only when an event is recorded, so it costs nothing on the
  /// straight-line hot path).
  static constexpr std::uint64_t kFlushIntervalInstrs = 2048;

 private:
  /// Trace-compiled interpreter loops (kBlock / kBlockSwitch): execute one
  /// multi-exit superblock trace per iteration with trace-level accounting;
  /// a fault or an exhausted instruction budget mid-trace drops to
  /// per-instruction accounting for the partial trace so results stay
  /// bit-identical with the reference path.  Both share one loop body
  /// (mips/exec_block_body.inc, which in turn instantiates the op handlers
  /// in mips/exec_ops.inc), differing only in the dispatch macro set:
  /// Threaded is the computed-goto token-threaded dispatcher (GNU
  /// `&&label`; falls back to the switch body on other compilers), Switch
  /// is the portable switch loop.  Keeping the dispatcher inside the run
  /// loop — rather than a per-trace callee — matters: GCC cannot inline
  /// functions containing computed goto, and branchy code dispatches a
  /// trace every few instructions.  kInstrumented=false compiles the exact
  /// pre-hook hot path (no observer checks at all) for static flows.
  template <bool kInstrumented>
  [[nodiscard]] RunResult ExecBlockThreaded(std::span<const std::int32_t> args,
                                            std::uint64_t max_instructions,
                                            RunObserver* observer);
  template <bool kInstrumented>
  [[nodiscard]] RunResult ExecBlockSwitch(std::span<const std::int32_t> args,
                                          std::uint64_t max_instructions,
                                          RunObserver* observer);

  /// Tiered loop (ExecEngine::kTranslated): the threaded block engine with
  /// the tier-3 hooks compiled in (B2H_TIER3) — promotion counting, the
  /// translated-trace runner (mips/exec_translate_body.inc) and the
  /// indirect-successor observation feed.  Bit-identical to the others.
  template <bool kInstrumented>
  [[nodiscard]] RunResult ExecTranslated(std::span<const std::int32_t> args,
                                         std::uint64_t max_instructions,
                                         RunObserver* observer);

  /// Reference per-instruction interpreter loop (ExecEngine::kReference).
  template <bool kInstrumented>
  [[nodiscard]] RunResult ExecReference(std::span<const std::int32_t> args,
                                        std::uint64_t max_instructions,
                                        RunObserver* observer);

  [[nodiscard]] const std::uint8_t* MemPtr(std::uint32_t addr,
                                           unsigned size) const;
  [[nodiscard]] std::uint8_t* MemPtr(std::uint32_t addr, unsigned size);

  /// The engine bodies build their RunResult from this: whatever storage
  /// the recycling Run() overload parked in `recycle_` (empty otherwise),
  /// with every scalar field reset.  The vectors are re-assigned by the
  /// body itself, so a recycled and a fresh result are indistinguishable.
  [[nodiscard]] RunResult TakeRecycle() noexcept;

  /// Per-run tally storage reused across Run() calls by the block engines
  /// (exec_block_body.inc).  Steady-state runs do no heap work — and no
  /// zero-fill either: profile expansion drains every touched entry back
  /// to zero before each return, so `clean` lets the next run skip the
  /// assign() entirely.  For short-run workloads (switch01 is ~280
  /// instructions per run) both the per-run vector allocations and the
  /// per-run memsets were a measurable slice of the whole run.
  struct BlockScratch {
    std::vector<std::uint64_t> block_count;
    std::vector<std::uint64_t> side_count;
    std::vector<std::uint8_t> dirty;
    std::vector<std::uint32_t> touched;
    bool clean = false;
  };
  BlockScratch scratch_;
  /// Storage parked by the recycling Run() overload (see TakeRecycle).
  RunResult recycle_;

  const SoftBinary& binary_;
  CycleModel model_;
  ExecEngine engine_;
  /// Shared pre-decode: decoded text + decode-ok bitmap (reference engine)
  /// and the superblock trace tables (block engines).  One per process per
  /// (text, cycle model) — see SharedBlockCache.
  std::shared_ptr<const PredecodedProgram> pre_;
  std::vector<std::uint8_t> data_mem_;
  std::vector<std::uint8_t> stack_mem_;
};

}  // namespace b2h::mips
