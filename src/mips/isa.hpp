// MIPS-I integer subset: instruction model plus binary encode/decode.
//
// This is the ISA of the paper's hypothetical platform ("a MIPS
// microprocessor").  We implement the classic MIPS-I integer instruction set
// minus delay slots (see DESIGN.md §6): branches and jumps take effect
// immediately.  None of the decompilation techniques studied by the paper
// depend on delay-slot scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace b2h::mips {

/// Architectural register numbers with their MIPS ABI names.
enum Reg : std::uint8_t {
  kZero = 0,
  kAt = 1,
  kV0 = 2,
  kV1 = 3,
  kA0 = 4,
  kA1 = 5,
  kA2 = 6,
  kA3 = 7,
  kT0 = 8,
  kT1 = 9,
  kT2 = 10,
  kT3 = 11,
  kT4 = 12,
  kT5 = 13,
  kT6 = 14,
  kT7 = 15,
  kS0 = 16,
  kS1 = 17,
  kS2 = 18,
  kS3 = 19,
  kS4 = 20,
  kS5 = 21,
  kS6 = 22,
  kS7 = 23,
  kT8 = 24,
  kT9 = 25,
  kK0 = 26,
  kK1 = 27,
  kGp = 28,
  kSp = 29,
  kFp = 30,
  kRa = 31,
};

/// ABI name ("$sp", "$t0", ...) for a register number.
[[nodiscard]] const char* RegName(unsigned reg) noexcept;

/// X-macro over every valid operation, in enum declaration order.  The Op
/// enum below is generated from this list, and the block engine's threaded
/// dispatch builds its per-opcode label table from the same list
/// (src/mips/exec_ops.inc / simulator.cpp) — indexing that table by
/// static_cast<size_t>(op) is correct by construction because both come
/// from here.  kInvalid is appended separately and is always last.
#define B2H_MIPS_OP_LIST(X)                                                  \
  /* Shifts (R-type). */                                                     \
  X(kSll) X(kSrl) X(kSra) X(kSllv) X(kSrlv) X(kSrav)                         \
  /* Indirect jumps (R-type). */                                             \
  X(kJr) X(kJalr)                                                            \
  /* HI/LO moves and multiply/divide (R-type). */                            \
  X(kMfhi) X(kMthi) X(kMflo) X(kMtlo) X(kMult) X(kMultu) X(kDiv) X(kDivu)    \
  /* Three-register ALU (R-type). */                                         \
  X(kAdd) X(kAddu) X(kSub) X(kSubu) X(kAnd) X(kOr) X(kXor) X(kNor)           \
  X(kSlt) X(kSltu)                                                           \
  /* Branches. */                                                            \
  X(kBltz) X(kBgez) X(kBeq) X(kBne) X(kBlez) X(kBgtz)                        \
  /* Immediate ALU. */                                                       \
  X(kAddi) X(kAddiu) X(kSlti) X(kSltiu) X(kAndi) X(kOri) X(kXori) X(kLui)    \
  /* Memory. */                                                              \
  X(kLb) X(kLh) X(kLw) X(kLbu) X(kLhu) X(kSb) X(kSh) X(kSw)                  \
  /* Absolute jumps (J-type). */                                             \
  X(kJ) X(kJal)

/// All implemented operations.
enum class Op : std::uint8_t {
#define B2H_MIPS_OP_ENUM(name) name,
  B2H_MIPS_OP_LIST(B2H_MIPS_OP_ENUM)
#undef B2H_MIPS_OP_ENUM
  kInvalid,
};

/// Number of Op values including kInvalid (dispatch-table size).
inline constexpr std::size_t kOpCount =
    static_cast<std::size_t>(Op::kInvalid) + 1;

[[nodiscard]] const char* Mnemonic(Op op) noexcept;

/// Classification helpers used by the simulator, lifter, and CFG recovery.
[[nodiscard]] bool IsBranch(Op op) noexcept;        // conditional branches
[[nodiscard]] bool IsDirectJump(Op op) noexcept;    // j / jal
[[nodiscard]] bool IsIndirectJump(Op op) noexcept;  // jr / jalr
[[nodiscard]] bool IsLoad(Op op) noexcept;
[[nodiscard]] bool IsStore(Op op) noexcept;
[[nodiscard]] bool IsControl(Op op) noexcept;  // any branch or jump
[[nodiscard]] bool WritesGpr(Op op) noexcept;  // writes a general register

/// A decoded instruction.  Fields not used by a format are zero.
struct Instr {
  Op op = Op::kInvalid;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t rd = 0;
  std::uint8_t shamt = 0;
  /// I-type immediate: sign-extended for arithmetic/memory/branch forms,
  /// zero-extended (0..65535) for andi/ori/xori/lui.
  std::int32_t imm = 0;
  /// J-type 26-bit word-address field (not shifted).
  std::uint32_t target = 0;

  [[nodiscard]] bool operator==(const Instr&) const = default;
};

/// Encode to a 32-bit machine word. Throws InternalError for kInvalid or
/// out-of-range fields.
[[nodiscard]] std::uint32_t Encode(const Instr& instr);

/// Decode a machine word; returns std::nullopt for words outside the subset.
[[nodiscard]] std::optional<Instr> Decode(std::uint32_t word) noexcept;

/// Branch target byte address for a conditional branch at `pc`.
[[nodiscard]] std::uint32_t BranchTarget(std::uint32_t pc,
                                         const Instr& instr) noexcept;

/// Jump target byte address for a J-type instruction at `pc`.
[[nodiscard]] std::uint32_t JumpTarget(std::uint32_t pc,
                                       const Instr& instr) noexcept;

/// One-line disassembly, e.g. "addiu $sp, $sp, -32".
[[nodiscard]] std::string Disassemble(const Instr& instr, std::uint32_t pc);

}  // namespace b2h::mips
