// SoftBinary: the software-binary image that is the *input* to the
// decompilation-based partitioner.
//
// The paper's tool parses the final software binary, so this image carries
// only what a stripped executable would: machine code, initialized data, and
// the entry point.  Function symbols are kept as optional side information
// used purely for human-readable reports; no analysis depends on them
// (function boundaries are rediscovered from `jal` targets).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace b2h::mips {

/// Memory layout constants of the hypothetical platform.
inline constexpr std::uint32_t kTextBase = 0x0040'0000u;
inline constexpr std::uint32_t kDataBase = 0x1000'0000u;
inline constexpr std::uint32_t kStackTop = 0x7FFF'F000u;
/// Return-address sentinel: when the PC reaches this address the program has
/// returned from its entry function and the simulator halts.
inline constexpr std::uint32_t kHaltAddress = 0xDEAD'0000u;

struct SoftBinary {
  std::uint32_t entry = kTextBase;
  std::vector<std::uint32_t> text;  ///< machine words, based at kTextBase
  std::vector<std::uint8_t> data;   ///< initialized data, based at kDataBase

  /// Optional (reporting only): symbol name -> address.
  std::map<std::string, std::uint32_t> symbols;

  [[nodiscard]] std::uint32_t text_end() const noexcept {
    return kTextBase + static_cast<std::uint32_t>(text.size()) * 4u;
  }
  [[nodiscard]] bool ContainsText(std::uint32_t addr) const noexcept {
    return addr >= kTextBase && addr < text_end() && (addr & 3u) == 0;
  }
  [[nodiscard]] std::uint32_t WordAt(std::uint32_t addr) const {
    return text.at((addr - kTextBase) / 4u);
  }
  /// Size in bytes of the code, as a proxy for binary size in reports.
  [[nodiscard]] std::size_t code_bytes() const noexcept {
    return text.size() * 4u;
  }
};

}  // namespace b2h::mips
