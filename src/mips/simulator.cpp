#include "mips/simulator.hpp"

#include <array>
#include <cstring>
#include <sstream>

#include "obs/obs.hpp"
#include "support/bits.hpp"
#include "support/error.hpp"

namespace b2h::mips {

namespace {

/// Tracing for a whole simulated run: engine + throughput args attach when
/// the tracer is on; when off this is one relaxed atomic load per Run.
void FinishRunSpan(obs::ScopedSpan& span, ExecEngine engine,
                   const RunResult& result) {
  if (!span.armed()) return;
  const double ms = span.Millis();
  span.Arg("engine",
           engine == ExecEngine::kReference ? "reference" : "block")
      .Arg("instructions", result.instructions)
      .Arg("instr_per_sec",
           ms > 0.0 ? static_cast<double>(result.instructions) * 1e3 / ms
                    : 0.0);
}

}  // namespace

Simulator::Simulator(const SoftBinary& binary, CycleModel model,
                     ExecEngine engine)
    : binary_(binary), model_(model), engine_(engine) {
  decoded_.resize(binary.text.size());
  decode_ok_.resize(binary.text.size(), false);
  for (std::size_t i = 0; i < binary.text.size(); ++i) {
    if (auto instr = Decode(binary.text[i])) {
      decoded_[i] = *instr;
      decode_ok_[i] = true;
    }
  }
  blocks_ = BlockCache(decoded_, decode_ok_, model_);
  data_mem_.resize(kDataSegmentSize, 0);
  if (!binary.data.empty()) {
    std::memcpy(data_mem_.data(), binary.data.data(),
                std::min<std::size_t>(binary.data.size(), data_mem_.size()));
  }
  stack_mem_.resize(kStackSize, 0);
}

const std::uint8_t* Simulator::MemPtr(std::uint32_t addr,
                                      unsigned size) const {
  return const_cast<Simulator*>(this)->MemPtr(addr, size);
}

std::uint8_t* Simulator::MemPtr(std::uint32_t addr, unsigned size) {
  // End-exclusive, wrap-safe bounds: `addr + size` overflows 32 bits for
  // addr near UINT32_MAX and would pass a naive `addr + size <= end` check,
  // so compare the offset into the segment against the segment size
  // instead — neither subtraction can wrap once `addr >= base` holds.
  if (addr >= kDataBase) {
    const std::uint32_t offset = addr - kDataBase;
    if (offset < data_mem_.size() && size <= data_mem_.size() - offset) {
      return data_mem_.data() + offset;
    }
  }
  const std::uint32_t stack_base = kStackTop - kStackSize;
  if (addr >= stack_base) {
    const std::uint32_t offset = addr - stack_base;
    if (offset < kStackSize && size <= kStackSize - offset) {
      return stack_mem_.data() + offset;
    }
  }
  return nullptr;
}

std::uint32_t Simulator::PeekWord(std::uint32_t addr) const {
  const std::uint8_t* p = MemPtr(addr, 4);
  Check(p != nullptr, "PeekWord: address outside memory");
  std::uint32_t value;
  std::memcpy(&value, p, 4);
  return value;
}

void Simulator::PokeWord(std::uint32_t addr, std::uint32_t value) {
  std::uint8_t* p = MemPtr(addr, 4);
  Check(p != nullptr, "PokeWord: address outside memory");
  std::memcpy(p, &value, 4);
}

RunResult Simulator::Run(std::span<const std::int32_t> args,
                         std::uint64_t max_instructions) {
  obs::ScopedSpan span("sim.run", "sim");
  RunResult result =
      engine_ == ExecEngine::kReference
          ? ExecReference<false>(args, max_instructions, nullptr)
          : ExecBlock<false>(args, max_instructions, nullptr);
  FinishRunSpan(span, engine_, result);
  return result;
}

RunResult Simulator::RunInstrumented(std::span<const std::int32_t> args,
                                     std::uint64_t max_instructions,
                                     RunObserver* observer) {
  obs::ScopedSpan span("sim.run_instrumented", "sim");
  RunResult result;
  if (engine_ == ExecEngine::kReference) {
    result = observer == nullptr
                 ? ExecReference<false>(args, max_instructions, nullptr)
                 : ExecReference<true>(args, max_instructions, observer);
  } else {
    result = observer == nullptr
                 ? ExecBlock<false>(args, max_instructions, nullptr)
                 : ExecBlock<true>(args, max_instructions, observer);
  }
  FinishRunSpan(span, engine_, result);
  return result;
}

template <bool kInstrumented>
RunResult Simulator::ExecReference(std::span<const std::int32_t> args,
                                   std::uint64_t max_instructions,
                                   RunObserver* observer) {
  RunResult result;
  result.profile.instr_count.assign(binary_.text.size(), 0);
  result.profile.cycle_count.assign(binary_.text.size(), 0);
  result.profile.branch_taken.assign(binary_.text.size(), 0);
  result.profile.branch_not_taken.assign(binary_.text.size(), 0);

  std::array<std::int32_t, 32> regs{};
  std::int32_t hi = 0;
  std::int32_t lo = 0;
  regs[kSp] = static_cast<std::int32_t>(kStackTop - 64);
  regs[kRa] = static_cast<std::int32_t>(kHaltAddress);
  for (std::size_t i = 0; i < args.size() && i < 4; ++i) {
    regs[kA0 + i] = args[i];
  }

  std::uint32_t pc = binary_.entry;
  // Latch-event batch buffer (one observer call per kBranchBatch events or
  // per kFlushIntervalInstrs instructions, whichever comes first).
  [[maybe_unused]] std::array<BranchEvent, kBranchBatch> events;
  [[maybe_unused]] std::size_t event_count = 0;
  [[maybe_unused]] std::uint64_t next_flush_at = kFlushIntervalInstrs;
  const auto flush_events = [&] {
    if constexpr (kInstrumented) {
      if (event_count > 0) {
        result.profile.total_instructions = result.instructions;
        result.profile.total_cycles = result.cycles;
        observer->OnBackwardBranches({events.data(), event_count}, result);
        event_count = 0;
      }
      next_flush_at = result.instructions + kFlushIntervalInstrs;
    }
  };
  const auto fault = [&](const std::string& message) {
    flush_events();
    result.reason = HaltReason::kFault;
    std::ostringstream out;
    out << "fault at pc=0x" << std::hex << pc << ": " << message;
    result.fault_message = out.str();
    result.profile.total_instructions = result.instructions;
    result.profile.total_cycles = result.cycles;
    return result;
  };

  while (result.instructions < max_instructions) {
    if (pc == kHaltAddress) {
      flush_events();
      result.reason = HaltReason::kReturned;
      result.return_value = regs[kV0];
      result.profile.total_instructions = result.instructions;
      result.profile.total_cycles = result.cycles;
      return result;
    }
    if (!binary_.ContainsText(pc)) return fault("pc outside text segment");
    const std::size_t index = (pc - kTextBase) / 4u;
    if (!decode_ok_[index]) return fault("undecodable instruction");
    const Instr& in = decoded_[index];

    std::uint32_t next_pc = pc + 4;
    bool taken = false;
    const auto rs = static_cast<std::uint32_t>(regs[in.rs]);
    const auto rt = static_cast<std::uint32_t>(regs[in.rt]);
    const auto srs = regs[in.rs];
    const auto srt = regs[in.rt];
    std::int32_t write_value = 0;
    std::uint8_t write_reg = 0;  // 0 = no write ($zero is never written)

    switch (in.op) {
      case Op::kSll:  write_reg = in.rd; write_value = static_cast<std::int32_t>(rt << in.shamt); break;
      case Op::kSrl:  write_reg = in.rd; write_value = static_cast<std::int32_t>(rt >> in.shamt); break;
      case Op::kSra:  write_reg = in.rd; write_value = srt >> in.shamt; break;
      case Op::kSllv: write_reg = in.rd; write_value = static_cast<std::int32_t>(rt << (rs & 31u)); break;
      case Op::kSrlv: write_reg = in.rd; write_value = static_cast<std::int32_t>(rt >> (rs & 31u)); break;
      case Op::kSrav: write_reg = in.rd; write_value = srt >> (rs & 31u); break;
      case Op::kAdd: case Op::kAddu:
        write_reg = in.rd; write_value = static_cast<std::int32_t>(rs + rt); break;
      case Op::kSub: case Op::kSubu:
        write_reg = in.rd; write_value = static_cast<std::int32_t>(rs - rt); break;
      case Op::kAnd:  write_reg = in.rd; write_value = static_cast<std::int32_t>(rs & rt); break;
      case Op::kOr:   write_reg = in.rd; write_value = static_cast<std::int32_t>(rs | rt); break;
      case Op::kXor:  write_reg = in.rd; write_value = static_cast<std::int32_t>(rs ^ rt); break;
      case Op::kNor:  write_reg = in.rd; write_value = static_cast<std::int32_t>(~(rs | rt)); break;
      case Op::kSlt:  write_reg = in.rd; write_value = srs < srt ? 1 : 0; break;
      case Op::kSltu: write_reg = in.rd; write_value = rs < rt ? 1 : 0; break;
      case Op::kMfhi: write_reg = in.rd; write_value = hi; break;
      case Op::kMflo: write_reg = in.rd; write_value = lo; break;
      case Op::kMthi: hi = srs; break;
      case Op::kMtlo: lo = srs; break;
      case Op::kMult: {
        const std::int64_t product =
            static_cast<std::int64_t>(srs) * static_cast<std::int64_t>(srt);
        lo = static_cast<std::int32_t>(product & 0xFFFF'FFFF);
        hi = static_cast<std::int32_t>(product >> 32);
        break;
      }
      case Op::kMultu: {
        const std::uint64_t product =
            static_cast<std::uint64_t>(rs) * static_cast<std::uint64_t>(rt);
        lo = static_cast<std::int32_t>(product & 0xFFFF'FFFF);
        hi = static_cast<std::int32_t>(product >> 32);
        break;
      }
      case Op::kDiv:
        if (srt == 0) {
          lo = 0; hi = srs;
        } else if (srs == INT32_MIN && srt == -1) {
          lo = INT32_MIN; hi = 0;
        } else {
          lo = srs / srt; hi = srs % srt;
        }
        break;
      case Op::kDivu:
        if (rt == 0) {
          lo = 0; hi = srs;
        } else {
          lo = static_cast<std::int32_t>(rs / rt);
          hi = static_cast<std::int32_t>(rs % rt);
        }
        break;
      case Op::kAddi: case Op::kAddiu:
        write_reg = in.rt;
        write_value = static_cast<std::int32_t>(rs + static_cast<std::uint32_t>(in.imm));
        break;
      case Op::kSlti:  write_reg = in.rt; write_value = srs < in.imm ? 1 : 0; break;
      case Op::kSltiu:
        write_reg = in.rt;
        write_value = rs < static_cast<std::uint32_t>(in.imm) ? 1 : 0;
        break;
      case Op::kAndi: write_reg = in.rt; write_value = static_cast<std::int32_t>(rs & static_cast<std::uint32_t>(in.imm)); break;
      case Op::kOri:  write_reg = in.rt; write_value = static_cast<std::int32_t>(rs | static_cast<std::uint32_t>(in.imm)); break;
      case Op::kXori: write_reg = in.rt; write_value = static_cast<std::int32_t>(rs ^ static_cast<std::uint32_t>(in.imm)); break;
      case Op::kLui:  write_reg = in.rt; write_value = static_cast<std::int32_t>(static_cast<std::uint32_t>(in.imm) << 16); break;
      case Op::kLb: case Op::kLbu: case Op::kLh: case Op::kLhu: case Op::kLw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        const unsigned size = in.op == Op::kLw ? 4 : (in.op == Op::kLh || in.op == Op::kLhu) ? 2 : 1;
        if ((addr & (size - 1)) != 0) return fault("unaligned load");
        // Word loads from .text are allowed (jump tables / constant pools).
        std::uint32_t raw = 0;
        if (in.op == Op::kLw && binary_.ContainsText(addr)) {
          raw = binary_.WordAt(addr);
        } else {
          const std::uint8_t* p = MemPtr(addr, size);
          if (p == nullptr) return fault("load outside memory");
          for (unsigned b = 0; b < size; ++b) raw |= static_cast<std::uint32_t>(p[b]) << (8 * b);
        }
        write_reg = in.rt;
        switch (in.op) {
          case Op::kLb:  write_value = SignExtend(raw, 8); break;
          case Op::kLbu: write_value = static_cast<std::int32_t>(raw & 0xFFu); break;
          case Op::kLh:  write_value = SignExtend(raw, 16); break;
          case Op::kLhu: write_value = static_cast<std::int32_t>(raw & 0xFFFFu); break;
          default:       write_value = static_cast<std::int32_t>(raw); break;
        }
        break;
      }
      case Op::kSb: case Op::kSh: case Op::kSw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        const unsigned size = in.op == Op::kSw ? 4 : in.op == Op::kSh ? 2 : 1;
        if ((addr & (size - 1)) != 0) return fault("unaligned store");
        std::uint8_t* p = MemPtr(addr, size);
        if (p == nullptr) return fault("store outside memory");
        for (unsigned b = 0; b < size; ++b) p[b] = static_cast<std::uint8_t>((rt >> (8 * b)) & 0xFFu);
        break;
      }
      case Op::kBeq:  taken = srs == srt; break;
      case Op::kBne:  taken = srs != srt; break;
      case Op::kBlez: taken = srs <= 0; break;
      case Op::kBgtz: taken = srs > 0; break;
      case Op::kBltz: taken = srs < 0; break;
      case Op::kBgez: taken = srs >= 0; break;
      case Op::kJ:    next_pc = JumpTarget(pc, in); break;
      case Op::kJal:
        write_reg = kRa;
        write_value = static_cast<std::int32_t>(pc + 4);
        next_pc = JumpTarget(pc, in);
        break;
      case Op::kJr:   next_pc = rs; break;
      case Op::kJalr:
        write_reg = in.rd;
        write_value = static_cast<std::int32_t>(pc + 4);
        next_pc = rs;
        break;
      case Op::kInvalid:
        return fault("invalid instruction");
    }

    if (IsBranch(in.op)) {
      if (taken) {
        next_pc = BranchTarget(pc, in);
        ++result.profile.branch_taken[index];
      } else {
        ++result.profile.branch_not_taken[index];
      }
    }
    if (write_reg != 0) regs[write_reg] = write_value;

    const std::uint64_t cycles = model_.CyclesFor(in.op, taken);
    ++result.profile.instr_count[index];
    result.profile.cycle_count[index] += cycles;
    ++result.instructions;
    result.cycles += cycles;
    if constexpr (kInstrumented) {
      // Loop-latch observation: a taken conditional branch or direct j to a
      // lower address.  jal/jr/jalr (calls and returns) never trigger.
      // `taken` is only ever set by conditional-branch opcodes, so it
      // subsumes the IsBranch() test — no out-of-line call on this path.
      if (next_pc < pc && (taken || in.op == Op::kJ)) [[unlikely]] {
        events[event_count++] = {next_pc, pc};
        if (event_count == kBranchBatch ||
            result.instructions >= next_flush_at) {
          flush_events();
        }
      }
    }
    pc = next_pc;
  }
  flush_events();
  result.reason = HaltReason::kMaxInstructions;
  result.fault_message = "instruction budget exhausted";
  result.profile.total_instructions = result.instructions;
  result.profile.total_cycles = result.cycles;
  return result;
}

// Block-compiled engine: one superblock per outer iteration.  The
// per-instruction interpreter's fixed costs — halt/bounds/decode checks,
// CyclesFor, branch-target computation, and four profile-vector increments —
// are either hoisted into the BlockCache at construction or amortized to one
// block-execution counter + one cycle add per block.  The per-index
// ExecProfile vectors are reconstructed from the block counters lazily: at
// every observer flush point (so RunInstrumented callbacks see exactly the
// live profile the reference engine would show) and at halt.  Bit-identical
// results are maintained by dropping to per-instruction accounting for the
// partial block whenever a fault or the instruction budget lands mid-block.
template <bool kInstrumented>
RunResult Simulator::ExecBlock(std::span<const std::int32_t> args,
                               std::uint64_t max_instructions,
                               RunObserver* observer) {
  RunResult result;
  const std::size_t text_words = binary_.text.size();
  result.profile.instr_count.assign(text_words, 0);
  result.profile.cycle_count.assign(text_words, 0);
  result.profile.branch_taken.assign(text_words, 0);
  result.profile.branch_not_taken.assign(text_words, 0);

  std::array<std::int32_t, 32> regs{};
  std::int32_t hi = 0;
  std::int32_t lo = 0;
  regs[kSp] = static_cast<std::int32_t>(kStackTop - 64);
  regs[kRa] = static_cast<std::int32_t>(kHaltAddress);
  for (std::size_t i = 0; i < args.size() && i < 4; ++i) {
    regs[kA0 + i] = args[i];
  }

  const PreInstr* const mops = blocks_.instrs();
  const BlockSpan* const spans = blocks_.spans();

  // Block-level profile accumulation: executions of the span entered at
  // each index, expanded into the per-index vectors only at flush points
  // and at halt.  `touched` keeps expansion proportional to the number of
  // distinct entries since the last expansion, not to the text size.
  std::vector<std::uint64_t> block_count(text_words, 0);
  std::vector<std::uint32_t> touched;
  touched.reserve(64);
  const auto expand_pending = [&] {
    for (const std::uint32_t entry : touched) {
      const std::uint64_t count = block_count[entry];
      block_count[entry] = 0;
      const std::uint32_t len = spans[entry].len;
      for (std::uint32_t k = 0; k < len; ++k) {
        result.profile.instr_count[entry + k] += count;
        result.profile.cycle_count[entry + k] += count * mops[entry + k].cycles;
      }
    }
    touched.clear();
  };
  // Per-instruction accounting for a partial block (fault / budget
  // mid-block): the first `completed` instructions of the span at `entry`
  // ran exactly once; the instruction that stopped the block is not charged,
  // matching the reference engine.
  const auto account_partial = [&](std::uint32_t entry,
                                   std::uint32_t completed) {
    for (std::uint32_t k = 0; k < completed; ++k) {
      const std::uint32_t cycles = mops[entry + k].cycles;
      result.profile.instr_count[entry + k] += 1;
      result.profile.cycle_count[entry + k] += cycles;
      result.cycles += cycles;
    }
    result.instructions += completed;
  };

  std::uint32_t pc = binary_.entry;
  [[maybe_unused]] std::array<BranchEvent, kBranchBatch> events;
  [[maybe_unused]] std::size_t event_count = 0;
  [[maybe_unused]] std::uint64_t next_flush_at = kFlushIntervalInstrs;
  const auto flush_events = [&] {
    if constexpr (kInstrumented) {
      if (event_count > 0) {
        expand_pending();  // observers may snapshot the live profile
        result.profile.total_instructions = result.instructions;
        result.profile.total_cycles = result.cycles;
        observer->OnBackwardBranches({events.data(), event_count}, result);
        event_count = 0;
      }
      next_flush_at = result.instructions + kFlushIntervalInstrs;
    }
  };
  const auto fault = [&](std::uint32_t fault_pc, const char* message) {
    flush_events();
    expand_pending();
    result.reason = HaltReason::kFault;
    std::ostringstream out;
    out << "fault at pc=0x" << std::hex << fault_pc << ": " << message;
    result.fault_message = out.str();
    result.profile.total_instructions = result.instructions;
    result.profile.total_cycles = result.cycles;
    return result;
  };

  while (true) {
    if (result.instructions >= max_instructions) {
      flush_events();
      expand_pending();
      result.reason = HaltReason::kMaxInstructions;
      result.fault_message = "instruction budget exhausted";
      result.profile.total_instructions = result.instructions;
      result.profile.total_cycles = result.cycles;
      return result;
    }
    if (pc == kHaltAddress) {
      flush_events();
      expand_pending();
      result.reason = HaltReason::kReturned;
      result.return_value = regs[kV0];
      result.profile.total_instructions = result.instructions;
      result.profile.total_cycles = result.cycles;
      return result;
    }
    if (!binary_.ContainsText(pc)) return fault(pc, "pc outside text segment");
    const std::uint32_t index = (pc - kTextBase) / 4u;
    const BlockSpan span = spans[index];
    if (span.len == 0) return fault(pc, "undecodable instruction");

    const std::uint64_t remaining = max_instructions - result.instructions;
    const std::uint32_t run_len =
        remaining < span.len ? static_cast<std::uint32_t>(remaining)
                             : span.len;

    bool taken = false;
    std::uint32_t indirect_target = 0;
    const PreInstr* const block_begin = mops + index;
    const PreInstr* const block_end = block_begin + run_len;
    for (const PreInstr* m = block_begin; m != block_end; ++m) {
      const auto rs = static_cast<std::uint32_t>(regs[m->rs]);
      const auto rt = static_cast<std::uint32_t>(regs[m->rt]);
      const auto srs = regs[m->rs];
      const auto srt = regs[m->rt];
      std::int32_t write_value = 0;

      switch (m->op) {
        case Op::kSll:  write_value = static_cast<std::int32_t>(rt << m->shamt); break;
        case Op::kSrl:  write_value = static_cast<std::int32_t>(rt >> m->shamt); break;
        case Op::kSra:  write_value = srt >> m->shamt; break;
        case Op::kSllv: write_value = static_cast<std::int32_t>(rt << (rs & 31u)); break;
        case Op::kSrlv: write_value = static_cast<std::int32_t>(rt >> (rs & 31u)); break;
        case Op::kSrav: write_value = srt >> (rs & 31u); break;
        case Op::kAdd: case Op::kAddu:
          write_value = static_cast<std::int32_t>(rs + rt); break;
        case Op::kSub: case Op::kSubu:
          write_value = static_cast<std::int32_t>(rs - rt); break;
        case Op::kAnd:  write_value = static_cast<std::int32_t>(rs & rt); break;
        case Op::kOr:   write_value = static_cast<std::int32_t>(rs | rt); break;
        case Op::kXor:  write_value = static_cast<std::int32_t>(rs ^ rt); break;
        case Op::kNor:  write_value = static_cast<std::int32_t>(~(rs | rt)); break;
        case Op::kSlt:  write_value = srs < srt ? 1 : 0; break;
        case Op::kSltu: write_value = rs < rt ? 1 : 0; break;
        case Op::kMfhi: write_value = hi; break;
        case Op::kMflo: write_value = lo; break;
        case Op::kMthi: hi = srs; break;
        case Op::kMtlo: lo = srs; break;
        case Op::kMult: {
          const std::int64_t product =
              static_cast<std::int64_t>(srs) * static_cast<std::int64_t>(srt);
          lo = static_cast<std::int32_t>(product & 0xFFFF'FFFF);
          hi = static_cast<std::int32_t>(product >> 32);
          break;
        }
        case Op::kMultu: {
          const std::uint64_t product =
              static_cast<std::uint64_t>(rs) * static_cast<std::uint64_t>(rt);
          lo = static_cast<std::int32_t>(product & 0xFFFF'FFFF);
          hi = static_cast<std::int32_t>(product >> 32);
          break;
        }
        case Op::kDiv:
          if (srt == 0) {
            lo = 0; hi = srs;
          } else if (srs == INT32_MIN && srt == -1) {
            lo = INT32_MIN; hi = 0;
          } else {
            lo = srs / srt; hi = srs % srt;
          }
          break;
        case Op::kDivu:
          if (rt == 0) {
            lo = 0; hi = srs;
          } else {
            lo = static_cast<std::int32_t>(rs / rt);
            hi = static_cast<std::int32_t>(rs % rt);
          }
          break;
        case Op::kAddi: case Op::kAddiu:
          write_value =
              static_cast<std::int32_t>(rs + static_cast<std::uint32_t>(m->imm));
          break;
        case Op::kSlti:  write_value = srs < m->imm ? 1 : 0; break;
        case Op::kSltiu:
          write_value = rs < static_cast<std::uint32_t>(m->imm) ? 1 : 0;
          break;
        case Op::kAndi: write_value = static_cast<std::int32_t>(rs & static_cast<std::uint32_t>(m->imm)); break;
        case Op::kOri:  write_value = static_cast<std::int32_t>(rs | static_cast<std::uint32_t>(m->imm)); break;
        case Op::kXori: write_value = static_cast<std::int32_t>(rs ^ static_cast<std::uint32_t>(m->imm)); break;
        case Op::kLui:  write_value = static_cast<std::int32_t>(static_cast<std::uint32_t>(m->imm) << 16); break;
        case Op::kLb: case Op::kLbu: case Op::kLh: case Op::kLhu: case Op::kLw: {
          const std::uint32_t addr = rs + static_cast<std::uint32_t>(m->imm);
          const unsigned size = m->mem_size;
          const auto offset = static_cast<std::uint32_t>(m - block_begin);
          if ((addr & (size - 1)) != 0) {
            account_partial(index, offset);
            return fault(pc + 4u * offset, "unaligned load");
          }
          // Word loads from .text are allowed (jump tables / constant pools).
          std::uint32_t raw = 0;
          if (m->op == Op::kLw && binary_.ContainsText(addr)) {
            raw = binary_.WordAt(addr);
          } else {
            const std::uint8_t* p = MemPtr(addr, size);
            if (p == nullptr) {
              account_partial(index, offset);
              return fault(pc + 4u * offset, "load outside memory");
            }
            for (unsigned b = 0; b < size; ++b) raw |= static_cast<std::uint32_t>(p[b]) << (8 * b);
          }
          switch (m->op) {
            case Op::kLb:  write_value = SignExtend(raw, 8); break;
            case Op::kLbu: write_value = static_cast<std::int32_t>(raw & 0xFFu); break;
            case Op::kLh:  write_value = SignExtend(raw, 16); break;
            case Op::kLhu: write_value = static_cast<std::int32_t>(raw & 0xFFFFu); break;
            default:       write_value = static_cast<std::int32_t>(raw); break;
          }
          break;
        }
        case Op::kSb: case Op::kSh: case Op::kSw: {
          const std::uint32_t addr = rs + static_cast<std::uint32_t>(m->imm);
          const unsigned size = m->mem_size;
          const auto offset = static_cast<std::uint32_t>(m - block_begin);
          if ((addr & (size - 1)) != 0) {
            account_partial(index, offset);
            return fault(pc + 4u * offset, "unaligned store");
          }
          std::uint8_t* p = MemPtr(addr, size);
          if (p == nullptr) {
            account_partial(index, offset);
            return fault(pc + 4u * offset, "store outside memory");
          }
          for (unsigned b = 0; b < size; ++b) p[b] = static_cast<std::uint8_t>((rt >> (8 * b)) & 0xFFu);
          break;
        }
        case Op::kBeq:  taken = srs == srt; break;
        case Op::kBne:  taken = srs != srt; break;
        case Op::kBlez: taken = srs <= 0; break;
        case Op::kBgtz: taken = srs > 0; break;
        case Op::kBltz: taken = srs < 0; break;
        case Op::kBgez: taken = srs >= 0; break;
        case Op::kJ:    break;  // target handled in the terminator postlude
        case Op::kJal:
          write_value = static_cast<std::int32_t>(
              pc + 4u * static_cast<std::uint32_t>(m - block_begin) + 4u);
          break;
        case Op::kJr:   indirect_target = rs; break;
        case Op::kJalr:
          write_value = static_cast<std::int32_t>(
              pc + 4u * static_cast<std::uint32_t>(m - block_begin) + 4u);
          indirect_target = rs;
          break;
        case Op::kInvalid: {
          const auto offset = static_cast<std::uint32_t>(m - block_begin);
          account_partial(index, offset);
          return fault(pc + 4u * offset, "invalid instruction");
        }
      }
      if (m->dest != 0) regs[m->dest] = write_value;
    }

    if (run_len < span.len) {
      // Budget exhausted mid-block: charge the straight-line prefix
      // per-instruction and let the top-of-loop check report it.
      account_partial(index, run_len);
      continue;
    }

    // Full block: batched accounting plus the terminator's dynamic part.
    if (block_count[index]++ == 0) touched.push_back(index);
    result.instructions += span.len;
    result.cycles += span.cycles;
    const std::uint32_t term_index = index + span.len - 1;
    const std::uint32_t term_pc = pc + 4u * (span.len - 1);
    std::uint32_t next_pc = 0;
    switch (span.term) {
      case TermKind::kFallthrough:
        next_pc = term_pc + 4;
        break;
      case TermKind::kBranch:
        if (taken) {
          ++result.profile.branch_taken[term_index];
          result.profile.cycle_count[term_index] += model_.taken_extra;
          result.cycles += model_.taken_extra;
          next_pc = mops[term_index].target;
        } else {
          ++result.profile.branch_not_taken[term_index];
          next_pc = term_pc + 4;
        }
        break;
      case TermKind::kJump:
      case TermKind::kJal:
        next_pc = mops[term_index].target;
        break;
      case TermKind::kJr:
      case TermKind::kJalr:
        next_pc = indirect_target;
        break;
    }
    if constexpr (kInstrumented) {
      // Loop-latch observation, block-grained: the latch candidate is the
      // terminator, pre-classified at construction (backward conditional
      // branch, firing when taken, or backward direct j, firing always) —
      // same events, same order, same flush points as the reference engine.
      if (span.backward_latch &&
          (taken || span.term == TermKind::kJump)) [[unlikely]] {
        events[event_count++] = {next_pc, term_pc};
        if (event_count == kBranchBatch ||
            result.instructions >= next_flush_at) {
          flush_events();
        }
      }
    }
    pc = next_pc;
  }
}

}  // namespace b2h::mips
