#include "mips/simulator.hpp"

#include <array>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>

#include "obs/obs.hpp"
#include "support/bits.hpp"
#include "support/error.hpp"

namespace b2h::mips {

namespace {

/// Tracing for a whole simulated run: engine + throughput args attach when
/// the tracer is on; when off this is one relaxed atomic load per Run.
void FinishRunSpan(obs::ScopedSpan& span, ExecEngine engine,
                   const RunResult& result) {
  if (!span.armed()) return;
  const double ms = span.Millis();
  const char* name = engine == ExecEngine::kReference      ? "reference"
                     : engine == ExecEngine::kBlockSwitch  ? "block-switch"
                     : engine == ExecEngine::kTranslated   ? "translated"
                                                           : "block";
  span.Arg("engine", name)
      .Arg("instructions", result.instructions)
      .Arg("instr_per_sec",
           ms > 0.0 ? static_cast<double>(result.instructions) * 1e3 / ms
                    : 0.0);
}

}  // namespace

ExecEngine DefaultExecEngine() noexcept {
  static const ExecEngine engine = [] {
    const char* env = std::getenv("B2H_SIM_ENGINE");
    if (env == nullptr) return ExecEngine::kTranslated;
    const std::string_view choice(env);
    if (choice == "reference") return ExecEngine::kReference;
    if (choice == "block-switch") return ExecEngine::kBlockSwitch;
    if (choice == "block") return ExecEngine::kBlock;
    return ExecEngine::kTranslated;
  }();
  return engine;
}

Simulator::Simulator(const SoftBinary& binary, CycleModel model,
                     ExecEngine engine)
    : binary_(binary),
      model_(model),
      engine_(engine),
      pre_(SharedBlockCache::Global().Obtain(binary, model)) {
  data_mem_.resize(kDataSegmentSize, 0);
  if (!binary.data.empty()) {
    std::memcpy(data_mem_.data(), binary.data.data(),
                std::min<std::size_t>(binary.data.size(), data_mem_.size()));
  }
  stack_mem_.resize(kStackSize, 0);
}

const std::uint8_t* Simulator::MemPtr(std::uint32_t addr,
                                      unsigned size) const {
  return const_cast<Simulator*>(this)->MemPtr(addr, size);
}

std::uint8_t* Simulator::MemPtr(std::uint32_t addr, unsigned size) {
  // End-exclusive, wrap-safe bounds: `addr + size` overflows 32 bits for
  // addr near UINT32_MAX and would pass a naive `addr + size <= end` check,
  // so compare the offset into the segment against the segment size
  // instead — neither subtraction can wrap once `addr >= base` holds.
  if (addr >= kDataBase) {
    const std::uint32_t offset = addr - kDataBase;
    if (offset < data_mem_.size() && size <= data_mem_.size() - offset) {
      return data_mem_.data() + offset;
    }
  }
  const std::uint32_t stack_base = kStackTop - kStackSize;
  if (addr >= stack_base) {
    const std::uint32_t offset = addr - stack_base;
    if (offset < kStackSize && size <= kStackSize - offset) {
      return stack_mem_.data() + offset;
    }
  }
  return nullptr;
}

std::uint32_t Simulator::PeekWord(std::uint32_t addr) const {
  const std::uint8_t* p = MemPtr(addr, 4);
  Check(p != nullptr, "PeekWord: address outside memory");
  std::uint32_t value;
  std::memcpy(&value, p, 4);
  return value;
}

void Simulator::PokeWord(std::uint32_t addr, std::uint32_t value) {
  std::uint8_t* p = MemPtr(addr, 4);
  Check(p != nullptr, "PokeWord: address outside memory");
  std::memcpy(p, &value, 4);
}

// ---------------------------------------------------------------------------
// Trace-compiled run loops.  The loop body lives in exec_block_body.inc and
// the op semantics in exec_ops.inc; each dispatcher below instantiates them
// with its own macro set.  The switch build is the portable baseline
// (ExecEngine::kBlockSwitch, and what kBlock degrades to without GNU
// `&&label`); the threaded build dispatches through a per-opcode label
// table, so the hot path is one indirect branch per instruction and the
// branch predictor sees one distinct jump site per opcode instead of a
// single shared dispatch branch.
// ---------------------------------------------------------------------------

template <bool kInstrumented>
RunResult Simulator::ExecBlockSwitch(std::span<const std::int32_t> args,
                                     std::uint64_t max_instructions,
                                     RunObserver* observer) {
#define B2H_DISPATCH_TABLE
#define B2H_DISPATCH_BEGIN                                            \
  for (;; ++m) {                                                      \
    if (m == block_end) goto trace_done;                              \
    switch (m->op) {
#define B2H_DISPATCH_END                                              \
    }                                                                 \
  }
#define B2H_OP(name) case Op::name: { B2H_DECLS
#define B2H_OP2(a, b) case Op::a: case Op::b: { B2H_DECLS
#define B2H_OP5(a, b, c, d, e)                                        \
  case Op::a: case Op::b: case Op::c: case Op::d: case Op::e: { B2H_DECLS
#define B2H_NEXT                                                      \
    if (m->dest != 0) regs[m->dest] = write_value;                    \
    break;                                                            \
  }
#include "mips/exec_block_body.inc"
#undef B2H_DISPATCH_TABLE
#undef B2H_DISPATCH_BEGIN
#undef B2H_DISPATCH_END
#undef B2H_OP
#undef B2H_OP2
#undef B2H_OP5
#undef B2H_NEXT
}

#if defined(__GNUC__) || defined(__clang__)

template <bool kInstrumented>
RunResult Simulator::ExecBlockThreaded(std::span<const std::int32_t> args,
                                       std::uint64_t max_instructions,
                                       RunObserver* observer) {
#define B2H_LABEL_ADDR(name) &&L_##name,
#define B2H_DISPATCH_TABLE                                            \
  static const void* const kDispatch[] = {                            \
      B2H_MIPS_OP_LIST(B2H_LABEL_ADDR) &&L_kInvalid,                  \
  };                                                                  \
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) == kOpCount, \
                "dispatch table must cover every Op");
#define B2H_DISPATCH_BEGIN                                            \
  if (m == block_end) goto trace_done;                                \
  goto* kDispatch[static_cast<std::size_t>(m->op)];
#define B2H_DISPATCH_END
#define B2H_OP(name) L_##name: { B2H_DECLS
#define B2H_OP2(a, b) L_##a: L_##b: { B2H_DECLS
#define B2H_OP5(a, b, c, d, e) L_##a: L_##b: L_##c: L_##d: L_##e: { B2H_DECLS
#define B2H_NEXT                                                      \
    if (m->dest != 0) regs[m->dest] = write_value;                    \
    if (++m == block_end) goto trace_done;                            \
    goto* kDispatch[static_cast<std::size_t>(m->op)];                 \
  }
#include "mips/exec_block_body.inc"
#undef B2H_LABEL_ADDR
#undef B2H_DISPATCH_TABLE
#undef B2H_DISPATCH_BEGIN
#undef B2H_DISPATCH_END
#undef B2H_OP
#undef B2H_OP2
#undef B2H_OP5
#undef B2H_NEXT
}

#else  // no computed goto: kBlock degrades to the switch dispatcher

template <bool kInstrumented>
RunResult Simulator::ExecBlockThreaded(std::span<const std::int32_t> args,
                                       std::uint64_t max_instructions,
                                       RunObserver* observer) {
  return ExecBlockSwitch<kInstrumented>(args, max_instructions, observer);
}

#endif  // computed goto

// ---------------------------------------------------------------------------
// Tiered loop (ExecEngine::kTranslated): the same run-loop body with
// B2H_TIER3 defined, which compiles in the tier-3 hooks — hot-dispatch
// counting / promotion, the translated-trace runner
// (mips/exec_translate_body.inc with the fused-op handlers in
// mips/exec_translate_ops.inc), and the indirect-successor observation
// feed on tier-2 jr/jalr exits.  The tier-2 portion uses the threaded
// dispatcher where available (the switch set elsewhere), and the tier-3
// runner mirrors that choice with its own label table over TOp.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)

template <bool kInstrumented>
RunResult Simulator::ExecTranslated(std::span<const std::int32_t> args,
                                    std::uint64_t max_instructions,
                                    RunObserver* observer) {
#define B2H_TIER3
// Tier 2 inside the tiered engine runs only *untranslated* traces — once
// the working set is promoted it is the cold warm-up path — so it uses the
// compact switch dispatcher here.  Keeping a second ~110-label computed-
// goto loop in the same function measurably degrades the register
// allocation of the tier-3 loop (the one that is actually hot).
#define B2H_DISPATCH_TABLE
#define B2H_DISPATCH_BEGIN                                            \
  for (;; ++m) {                                                      \
    if (m == block_end) goto trace_done;                              \
    switch (m->op) {
#define B2H_DISPATCH_END                                              \
    }                                                                 \
  }
#define B2H_OP(name) case Op::name: { B2H_DECLS
#define B2H_OP2(a, b) case Op::a: case Op::b: { B2H_DECLS
#define B2H_OP5(a, b, c, d, e)                                        \
  case Op::a: case Op::b: case Op::c: case Op::d: case Op::e: { B2H_DECLS
#define B2H_NEXT                                                      \
    if (m->dest != 0) regs[m->dest] = write_value;                    \
    break;                                                            \
  }
#define B2H_TLABEL_ADDR(name) &&T_##name,
#define B2H_TDISPATCH_TABLE                                           \
  static const void* const kTDispatch[] = {                           \
      B2H_TRANSLATE_OP_LIST(B2H_TLABEL_ADDR)                          \
  };                                                                  \
  static_assert(sizeof(kTDispatch) / sizeof(kTDispatch[0]) ==         \
                    translate::kTOpCount,                             \
                "translated dispatch table must cover every TOp");
#define B2H_TDISPATCH_BEGIN                                           \
  goto* kTDispatch[static_cast<std::size_t>(top->op)];
#define B2H_TDISPATCH_END
#define B2H_TOP(name) T_##name: { B2H_TDECLS
#define B2H_TNEXT                                                     \
    ++top;                                                            \
    goto* kTDispatch[static_cast<std::size_t>(top->op)];              \
  }
#define B2H_TSTOP }
#include "mips/exec_block_body.inc"
#undef B2H_DISPATCH_TABLE
#undef B2H_DISPATCH_BEGIN
#undef B2H_DISPATCH_END
#undef B2H_OP
#undef B2H_OP2
#undef B2H_OP5
#undef B2H_NEXT
#undef B2H_TLABEL_ADDR
#undef B2H_TDISPATCH_TABLE
#undef B2H_TDISPATCH_BEGIN
#undef B2H_TDISPATCH_END
#undef B2H_TOP
#undef B2H_TNEXT
#undef B2H_TSTOP
#undef B2H_TIER3
}

#else  // no computed goto: both tiers dispatch through switches

template <bool kInstrumented>
RunResult Simulator::ExecTranslated(std::span<const std::int32_t> args,
                                    std::uint64_t max_instructions,
                                    RunObserver* observer) {
#define B2H_TIER3
#define B2H_DISPATCH_TABLE
#define B2H_DISPATCH_BEGIN                                            \
  for (;; ++m) {                                                      \
    if (m == block_end) goto trace_done;                              \
    switch (m->op) {
#define B2H_DISPATCH_END                                              \
    }                                                                 \
  }
#define B2H_OP(name) case Op::name: { B2H_DECLS
#define B2H_OP2(a, b) case Op::a: case Op::b: { B2H_DECLS
#define B2H_OP5(a, b, c, d, e)                                        \
  case Op::a: case Op::b: case Op::c: case Op::d: case Op::e: { B2H_DECLS
#define B2H_NEXT                                                      \
    if (m->dest != 0) regs[m->dest] = write_value;                    \
    break;                                                            \
  }
#define B2H_TDISPATCH_TABLE
#define B2H_TDISPATCH_BEGIN                                           \
  t_dispatch:                                                         \
  switch (top->op) {
#define B2H_TDISPATCH_END }
#define B2H_TOP(name) case translate::TOp::name: { B2H_TDECLS
#define B2H_TNEXT                                                     \
    ++top;                                                            \
    goto t_dispatch;                                                  \
  }
#define B2H_TSTOP }
#include "mips/exec_block_body.inc"
#undef B2H_DISPATCH_TABLE
#undef B2H_DISPATCH_BEGIN
#undef B2H_DISPATCH_END
#undef B2H_OP
#undef B2H_OP2
#undef B2H_OP5
#undef B2H_NEXT
#undef B2H_TDISPATCH_TABLE
#undef B2H_TDISPATCH_BEGIN
#undef B2H_TDISPATCH_END
#undef B2H_TOP
#undef B2H_TNEXT
#undef B2H_TSTOP
#undef B2H_TIER3
}

#endif  // computed goto (tiered)

template <bool kInstrumented>
RunResult Simulator::ExecReference(std::span<const std::int32_t> args,
                                   std::uint64_t max_instructions,
                                   RunObserver* observer) {
  RunResult result = TakeRecycle();
  result.profile.instr_count.assign(binary_.text.size(), 0);
  result.profile.cycle_count.assign(binary_.text.size(), 0);
  result.profile.branch_taken.assign(binary_.text.size(), 0);
  result.profile.branch_not_taken.assign(binary_.text.size(), 0);

  const std::vector<Instr>& decoded = pre_->decoded;
  const std::vector<bool>& decode_ok = pre_->decode_ok;

  std::array<std::int32_t, 32> regs{};
  std::int32_t hi = 0;
  std::int32_t lo = 0;
  regs[kSp] = static_cast<std::int32_t>(kStackTop - 64);
  regs[kRa] = static_cast<std::int32_t>(kHaltAddress);
  for (std::size_t i = 0; i < args.size() && i < 4; ++i) {
    regs[kA0 + i] = args[i];
  }

  std::uint32_t pc = binary_.entry;
  // Latch-event batch buffer (one observer call per kBranchBatch events or
  // per kFlushIntervalInstrs instructions, whichever comes first).
  [[maybe_unused]] std::array<BranchEvent, kBranchBatch> events;
  [[maybe_unused]] std::size_t event_count = 0;
  [[maybe_unused]] std::uint64_t next_flush_at = kFlushIntervalInstrs;
  const auto flush_events = [&] {
    if constexpr (kInstrumented) {
      if (event_count > 0) {
        result.profile.total_instructions = result.instructions;
        result.profile.total_cycles = result.cycles;
        observer->OnBackwardBranches({events.data(), event_count}, result);
        event_count = 0;
      }
      next_flush_at = result.instructions + kFlushIntervalInstrs;
    }
  };
  const auto fault = [&](const std::string& message) {
    flush_events();
    result.reason = HaltReason::kFault;
    std::ostringstream out;
    out << "fault at pc=0x" << std::hex << pc << ": " << message;
    result.fault_message = out.str();
    result.profile.total_instructions = result.instructions;
    result.profile.total_cycles = result.cycles;
    return result;
  };

  while (result.instructions < max_instructions) {
    if (pc == kHaltAddress) {
      flush_events();
      result.reason = HaltReason::kReturned;
      result.return_value = regs[kV0];
      result.profile.total_instructions = result.instructions;
      result.profile.total_cycles = result.cycles;
      return result;
    }
    if (!binary_.ContainsText(pc)) return fault("pc outside text segment");
    const std::size_t index = (pc - kTextBase) / 4u;
    if (!decode_ok[index]) return fault("undecodable instruction");
    const Instr& in = decoded[index];

    std::uint32_t next_pc = pc + 4;
    bool taken = false;
    const auto rs = static_cast<std::uint32_t>(regs[in.rs]);
    const auto rt = static_cast<std::uint32_t>(regs[in.rt]);
    const auto srs = regs[in.rs];
    const auto srt = regs[in.rt];
    std::int32_t write_value = 0;
    std::uint8_t write_reg = 0;  // 0 = no write ($zero is never written)

    switch (in.op) {
      case Op::kSll:  write_reg = in.rd; write_value = static_cast<std::int32_t>(rt << in.shamt); break;
      case Op::kSrl:  write_reg = in.rd; write_value = static_cast<std::int32_t>(rt >> in.shamt); break;
      case Op::kSra:  write_reg = in.rd; write_value = srt >> in.shamt; break;
      case Op::kSllv: write_reg = in.rd; write_value = static_cast<std::int32_t>(rt << (rs & 31u)); break;
      case Op::kSrlv: write_reg = in.rd; write_value = static_cast<std::int32_t>(rt >> (rs & 31u)); break;
      case Op::kSrav: write_reg = in.rd; write_value = srt >> (rs & 31u); break;
      case Op::kAdd: case Op::kAddu:
        write_reg = in.rd; write_value = static_cast<std::int32_t>(rs + rt); break;
      case Op::kSub: case Op::kSubu:
        write_reg = in.rd; write_value = static_cast<std::int32_t>(rs - rt); break;
      case Op::kAnd:  write_reg = in.rd; write_value = static_cast<std::int32_t>(rs & rt); break;
      case Op::kOr:   write_reg = in.rd; write_value = static_cast<std::int32_t>(rs | rt); break;
      case Op::kXor:  write_reg = in.rd; write_value = static_cast<std::int32_t>(rs ^ rt); break;
      case Op::kNor:  write_reg = in.rd; write_value = static_cast<std::int32_t>(~(rs | rt)); break;
      case Op::kSlt:  write_reg = in.rd; write_value = srs < srt ? 1 : 0; break;
      case Op::kSltu: write_reg = in.rd; write_value = rs < rt ? 1 : 0; break;
      case Op::kMfhi: write_reg = in.rd; write_value = hi; break;
      case Op::kMflo: write_reg = in.rd; write_value = lo; break;
      case Op::kMthi: hi = srs; break;
      case Op::kMtlo: lo = srs; break;
      case Op::kMult: {
        const std::int64_t product =
            static_cast<std::int64_t>(srs) * static_cast<std::int64_t>(srt);
        lo = static_cast<std::int32_t>(product & 0xFFFF'FFFF);
        hi = static_cast<std::int32_t>(product >> 32);
        break;
      }
      case Op::kMultu: {
        const std::uint64_t product =
            static_cast<std::uint64_t>(rs) * static_cast<std::uint64_t>(rt);
        lo = static_cast<std::int32_t>(product & 0xFFFF'FFFF);
        hi = static_cast<std::int32_t>(product >> 32);
        break;
      }
      case Op::kDiv:
        if (srt == 0) {
          lo = 0; hi = srs;
        } else if (srs == INT32_MIN && srt == -1) {
          lo = INT32_MIN; hi = 0;
        } else {
          lo = srs / srt; hi = srs % srt;
        }
        break;
      case Op::kDivu:
        if (rt == 0) {
          lo = 0; hi = srs;
        } else {
          lo = static_cast<std::int32_t>(rs / rt);
          hi = static_cast<std::int32_t>(rs % rt);
        }
        break;
      case Op::kAddi: case Op::kAddiu:
        write_reg = in.rt;
        write_value = static_cast<std::int32_t>(rs + static_cast<std::uint32_t>(in.imm));
        break;
      case Op::kSlti:  write_reg = in.rt; write_value = srs < in.imm ? 1 : 0; break;
      case Op::kSltiu:
        write_reg = in.rt;
        write_value = rs < static_cast<std::uint32_t>(in.imm) ? 1 : 0;
        break;
      case Op::kAndi: write_reg = in.rt; write_value = static_cast<std::int32_t>(rs & static_cast<std::uint32_t>(in.imm)); break;
      case Op::kOri:  write_reg = in.rt; write_value = static_cast<std::int32_t>(rs | static_cast<std::uint32_t>(in.imm)); break;
      case Op::kXori: write_reg = in.rt; write_value = static_cast<std::int32_t>(rs ^ static_cast<std::uint32_t>(in.imm)); break;
      case Op::kLui:  write_reg = in.rt; write_value = static_cast<std::int32_t>(static_cast<std::uint32_t>(in.imm) << 16); break;
      case Op::kLb: case Op::kLbu: case Op::kLh: case Op::kLhu: case Op::kLw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        const unsigned size = in.op == Op::kLw ? 4 : (in.op == Op::kLh || in.op == Op::kLhu) ? 2 : 1;
        if ((addr & (size - 1)) != 0) return fault("unaligned load");
        // Word loads from .text are allowed (jump tables / constant pools).
        std::uint32_t raw = 0;
        if (in.op == Op::kLw && binary_.ContainsText(addr)) {
          raw = binary_.WordAt(addr);
        } else {
          const std::uint8_t* p = MemPtr(addr, size);
          if (p == nullptr) return fault("load outside memory");
          for (unsigned b = 0; b < size; ++b) raw |= static_cast<std::uint32_t>(p[b]) << (8 * b);
        }
        write_reg = in.rt;
        switch (in.op) {
          case Op::kLb:  write_value = SignExtend(raw, 8); break;
          case Op::kLbu: write_value = static_cast<std::int32_t>(raw & 0xFFu); break;
          case Op::kLh:  write_value = SignExtend(raw, 16); break;
          case Op::kLhu: write_value = static_cast<std::int32_t>(raw & 0xFFFFu); break;
          default:       write_value = static_cast<std::int32_t>(raw); break;
        }
        break;
      }
      case Op::kSb: case Op::kSh: case Op::kSw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        const unsigned size = in.op == Op::kSw ? 4 : in.op == Op::kSh ? 2 : 1;
        if ((addr & (size - 1)) != 0) return fault("unaligned store");
        std::uint8_t* p = MemPtr(addr, size);
        if (p == nullptr) return fault("store outside memory");
        for (unsigned b = 0; b < size; ++b) p[b] = static_cast<std::uint8_t>((rt >> (8 * b)) & 0xFFu);
        break;
      }
      case Op::kBeq:  taken = srs == srt; break;
      case Op::kBne:  taken = srs != srt; break;
      case Op::kBlez: taken = srs <= 0; break;
      case Op::kBgtz: taken = srs > 0; break;
      case Op::kBltz: taken = srs < 0; break;
      case Op::kBgez: taken = srs >= 0; break;
      case Op::kJ:    next_pc = JumpTarget(pc, in); break;
      case Op::kJal:
        write_reg = kRa;
        write_value = static_cast<std::int32_t>(pc + 4);
        next_pc = JumpTarget(pc, in);
        break;
      case Op::kJr:   next_pc = rs; break;
      case Op::kJalr:
        write_reg = in.rd;
        write_value = static_cast<std::int32_t>(pc + 4);
        next_pc = rs;
        break;
      case Op::kInvalid:
        return fault("invalid instruction");
    }

    if (IsBranch(in.op)) {
      if (taken) {
        next_pc = BranchTarget(pc, in);
        ++result.profile.branch_taken[index];
      } else {
        ++result.profile.branch_not_taken[index];
      }
    }
    if (write_reg != 0) regs[write_reg] = write_value;

    const std::uint64_t cycles = model_.CyclesFor(in.op, taken);
    ++result.profile.instr_count[index];
    result.profile.cycle_count[index] += cycles;
    ++result.instructions;
    result.cycles += cycles;
    if constexpr (kInstrumented) {
      // Loop-latch observation: a taken conditional branch or direct j to a
      // lower address.  jal/jr/jalr (calls and returns) never trigger.
      // `taken` is only ever set by conditional-branch opcodes, so it
      // subsumes the IsBranch() test — no out-of-line call on this path.
      if (next_pc < pc && (taken || in.op == Op::kJ)) [[unlikely]] {
        events[event_count++] = {next_pc, pc};
        if (event_count == kBranchBatch ||
            result.instructions >= next_flush_at) {
          flush_events();
        }
      }
    }
    pc = next_pc;
  }
  flush_events();
  result.reason = HaltReason::kMaxInstructions;
  result.fault_message = "instruction budget exhausted";
  result.profile.total_instructions = result.instructions;
  result.profile.total_cycles = result.cycles;
  return result;
}

RunResult Simulator::TakeRecycle() noexcept {
  RunResult result = std::move(recycle_);
  result.return_value = 0;
  result.instructions = 0;
  result.cycles = 0;
  result.reason = HaltReason::kFault;
  result.fault_message.clear();
  result.profile.total_instructions = 0;
  result.profile.total_cycles = 0;
  return result;
}

RunResult Simulator::Run(std::span<const std::int32_t> args,
                         std::uint64_t max_instructions, RunResult&& recycle) {
  recycle_ = std::move(recycle);
  return Run(args, max_instructions);
}

RunResult Simulator::Run(std::span<const std::int32_t> args,
                         std::uint64_t max_instructions) {
  obs::ScopedSpan span("sim.run", "sim");
  RunResult result;
  switch (engine_) {
    case ExecEngine::kReference:
      result = ExecReference<false>(args, max_instructions, nullptr);
      break;
    case ExecEngine::kBlockSwitch:
      result = ExecBlockSwitch<false>(args, max_instructions, nullptr);
      break;
    case ExecEngine::kBlock:
      result = ExecBlockThreaded<false>(args, max_instructions, nullptr);
      break;
    case ExecEngine::kTranslated:
      result = ExecTranslated<false>(args, max_instructions, nullptr);
      break;
  }
  FinishRunSpan(span, engine_, result);
  return result;
}

RunResult Simulator::RunInstrumented(std::span<const std::int32_t> args,
                                     std::uint64_t max_instructions,
                                     RunObserver* observer) {
  obs::ScopedSpan span("sim.run_instrumented", "sim");
  RunResult result;
  switch (engine_) {
    case ExecEngine::kReference:
      result = observer == nullptr
                   ? ExecReference<false>(args, max_instructions, nullptr)
                   : ExecReference<true>(args, max_instructions, observer);
      break;
    case ExecEngine::kBlockSwitch:
      result = observer == nullptr
                   ? ExecBlockSwitch<false>(args, max_instructions, nullptr)
                   : ExecBlockSwitch<true>(args, max_instructions, observer);
      break;
    case ExecEngine::kBlock:
      result =
          observer == nullptr
              ? ExecBlockThreaded<false>(args, max_instructions, nullptr)
              : ExecBlockThreaded<true>(args, max_instructions, observer);
      break;
    case ExecEngine::kTranslated:
      result = observer == nullptr
                   ? ExecTranslated<false>(args, max_instructions, nullptr)
                   : ExecTranslated<true>(args, max_instructions, observer);
      break;
  }
  FinishRunSpan(span, engine_, result);
  return result;
}

}  // namespace b2h::mips
