// Superblock (multi-exit trace) pre-decode for the block-compiled engine.
//
// The per-instruction interpreter pays a decode lookup, a CyclesFor() call,
// a branch-target computation, and four profile-vector increments for every
// executed instruction.  All of that is static: it depends only on the text
// image and the cycle model, never on run-time state.  BlockCache hoists it
// to construction time:
//
//   * every decodable word becomes a PreInstr with its destination register
//     resolved (rd vs rt vs $ra), its branch/jump byte target precomputed,
//     and its *static* cycle cost folded in (base + load/mult/div extras;
//     taken_extra is included for jumps, which always pay it — only a
//     conditional branch's taken_extra is left to run time);
//
//   * every word index gets a BlockSpan: the multi-exit trace starting
//     there.  A trace is the straight-line run that continues *across*
//     conditional branches (each becomes a SideExit, taken at run time only
//     when its condition holds) and ends at a hard terminator — a direct or
//     indirect jump — or at an undecodable word, the end of text, or the
//     kMaxTraceLen cap (TermKind::kFallthrough: the next pc is simply the
//     word after the trace).  Spans are keyed by *entry index*, not by
//     leader, so overlapping runs from different entries (join points,
//     jr/jump-table targets, jal return addresses) each get their own
//     full-length trace without needing the entry set to be statically
//     derivable.
//
//   * every conditional branch inside a trace gets a SideExit record: its
//     offset, the summed static cycles of the prefix ending at it (so a
//     taken exit charges the run in O(1)), and whether the taken branch is
//     a backward latch (the event RunInstrumented reports).
//
// The engine then executes trace-at-a-time: one span lookup and one or two
// counter increments per executed trace, with per-index profile vectors
// reconstructed from the trace/side-exit counters only at observer flush
// points and at halt (see simulator.cpp).
//
// Construction is per-Simulator no longer: SharedBlockCache
// (mips/shared_cache.hpp) builds each (text bytes, cycle model) key once
// per process and hands out shared_ptr<const PredecodedProgram>.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mips/isa.hpp"

namespace b2h::mips {

/// Per-instruction-class cycle costs (single-issue in-order core).
struct CycleModel {
  unsigned base = 1;          ///< all instructions
  unsigned load_extra = 1;    ///< additional cycles for loads
  unsigned mult_extra = 2;    ///< additional cycles for mult/multu
  unsigned div_extra = 15;    ///< additional cycles for div/divu
  unsigned taken_extra = 1;   ///< additional cycles for taken branches/jumps

  [[nodiscard]] std::uint64_t CyclesFor(Op op, bool taken) const noexcept;

  [[nodiscard]] bool operator==(const CycleModel&) const = default;
};

/// A pre-decoded, pre-costed instruction.  Unlike Instr, the fields here are
/// *resolved for execution*: `dest` is the register the instruction writes
/// (0 = none), `target` is the byte address a branch/j/jal transfers to, and
/// `cycles` is the instruction's static cost under the simulator's cycle
/// model (everything except a conditional branch's taken_extra).
struct PreInstr {
  Op op = Op::kInvalid;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t dest = 0;      ///< resolved write register; 0 = no GPR write
  std::uint8_t shamt = 0;
  std::uint8_t mem_size = 0;  ///< access width for loads/stores (1/2/4)
  std::int32_t imm = 0;
  std::uint32_t target = 0;   ///< branch/jump byte target (beq.., j, jal)
  std::uint32_t cycles = 0;   ///< static cycles (see struct comment)
};

/// How a trace ends when no side exit fires.  Conditional branches are
/// never hard terminators any more — they are SideExits inside the trace.
enum class TermKind : std::uint8_t {
  kFallthrough,  ///< undecodable word, text end, or the kMaxTraceLen cap:
                 ///< next pc is the word after the trace
  kJump,         ///< j
  kJal,          ///< jal (writes $ra)
  kJr,           ///< jr (target from rs at run time)
  kJalr,         ///< jalr (writes dest, target from rs)
};

/// A conditional branch inside a trace.  Not taken: execution continues to
/// the next trace instruction (the engine counts branch_not_taken at
/// expansion time).  Taken: the trace exits here; the run is charged
/// `prefix_cycles + taken_extra` and `offset + 1` instructions.
struct SideExit {
  std::uint32_t offset = 0;         ///< branch's instruction offset in trace
  std::uint32_t prefix_cycles = 0;  ///< static cycles of trace[0..offset]
  /// Taken branch is a latch-event candidate (target precedes the branch).
  bool backward = false;
};

/// The multi-exit trace starting at a given text-word index.  Side exits
/// for the trace live at exits()[exit_begin .. exit_begin + exit_count).
struct BlockSpan {
  std::uint32_t len = 0;      ///< instructions incl. terminator; 0 = entry
                              ///< word is undecodable (fault on entry)
  TermKind term = TermKind::kFallthrough;
  /// kJump terminator is a latch-event candidate: a direct `j` whose
  /// target precedes it (fires on every full-trace execution).
  bool backward_latch = false;
  std::uint32_t exit_count = 0;  ///< conditional branches inside the trace
  std::uint32_t exit_begin = 0;  ///< first SideExit index for this trace
  std::uint64_t cycles = 0;      ///< summed static cycles over the trace
};

class BlockCache {
 public:
  /// Traces stop growing at this many instructions; longer straight-line
  /// runs split into back-to-back kFallthrough traces.  Bounds per-exit
  /// prefix re-accounting and the side-exit table size.
  static constexpr std::uint32_t kMaxTraceLen = 64;

  BlockCache() = default;

  /// Pre-decode `decoded` (text words based at kTextBase; `decode_ok[i]`
  /// marks words Decode() accepted) under `model`.
  BlockCache(std::span<const Instr> decoded, const std::vector<bool>& decode_ok,
             const CycleModel& model);

  [[nodiscard]] const PreInstr* instrs() const noexcept {
    return instrs_.data();
  }
  [[nodiscard]] const BlockSpan* spans() const noexcept {
    return spans_.data();
  }
  [[nodiscard]] const SideExit* exits() const noexcept {
    return exits_.data();
  }
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }
  /// Total SideExit records across all traces (sizes the engine's per-run
  /// side-exit counter vector).
  [[nodiscard]] std::size_t total_side_exits() const noexcept {
    return exits_.size();
  }

  /// Number of distinct maximal blocks (spans whose entry is a leader:
  /// index 0, control-successor, or branch/jump target).  Reporting only.
  [[nodiscard]] std::size_t leader_blocks() const noexcept {
    return leader_blocks_;
  }

  /// Approximate heap footprint (shared-cache byte accounting).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return instrs_.capacity() * sizeof(PreInstr) +
           spans_.capacity() * sizeof(BlockSpan) +
           exits_.capacity() * sizeof(SideExit);
  }

 private:
  std::vector<PreInstr> instrs_;
  std::vector<BlockSpan> spans_;
  std::vector<SideExit> exits_;
  std::size_t leader_blocks_ = 0;
};

}  // namespace b2h::mips
