// Superblock pre-decode for the block-compiled execution engine.
//
// The per-instruction interpreter pays a decode lookup, a CyclesFor() call,
// a branch-target computation, and four profile-vector increments for every
// executed instruction.  All of that is static: it depends only on the text
// image and the cycle model, never on run-time state.  BlockCache hoists it
// to Simulator construction:
//
//   * every decodable word becomes a PreInstr with its destination register
//     resolved (rd vs rt vs $ra), its branch/jump byte target precomputed,
//     and its *static* cycle cost folded in (base + load/mult/div extras;
//     taken_extra is included for jumps, which always pay it — only a
//     conditional branch's taken_extra is left to run time);
//
//   * every word index gets a BlockSpan: the superblock starting there —
//     the maximal straight-line run up to and including the first control
//     instruction (or up to an undecodable word / the end of text).  Spans
//     are keyed by *entry index*, not by leader, so overlapping runs from
//     different entries (join points, jr/jump-table targets, jal return
//     addresses) each get their own full-length trace without needing the
//     entry set to be statically derivable.  A span carries its length, its
//     summed static cycles, its terminator kind, and whether the terminator
//     is a loop-latch candidate (conditional branch or direct `j` whose
//     target precedes it — the event RunInstrumented reports).
//
// The engine then executes block-at-a-time: one span lookup, one profile
// counter, one cycle add per block, with per-index profile vectors
// reconstructed from block counters only at observer flush points and at
// halt (see simulator.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mips/isa.hpp"

namespace b2h::mips {

/// Per-instruction-class cycle costs (single-issue in-order core).
struct CycleModel {
  unsigned base = 1;          ///< all instructions
  unsigned load_extra = 1;    ///< additional cycles for loads
  unsigned mult_extra = 2;    ///< additional cycles for mult/multu
  unsigned div_extra = 15;    ///< additional cycles for div/divu
  unsigned taken_extra = 1;   ///< additional cycles for taken branches/jumps

  [[nodiscard]] std::uint64_t CyclesFor(Op op, bool taken) const noexcept;
};

/// A pre-decoded, pre-costed instruction.  Unlike Instr, the fields here are
/// *resolved for execution*: `dest` is the register the instruction writes
/// (0 = none), `target` is the byte address a branch/j/jal transfers to, and
/// `cycles` is the instruction's static cost under the simulator's cycle
/// model (everything except a conditional branch's taken_extra).
struct PreInstr {
  Op op = Op::kInvalid;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t dest = 0;      ///< resolved write register; 0 = no GPR write
  std::uint8_t shamt = 0;
  std::uint8_t mem_size = 0;  ///< access width for loads/stores (1/2/4)
  std::int32_t imm = 0;
  std::uint32_t target = 0;   ///< branch/jump byte target (beq.., j, jal)
  std::uint32_t cycles = 0;   ///< static cycles (see struct comment)
};

/// How the straight-line run starting at an index ends.
enum class TermKind : std::uint8_t {
  kFallthrough,  ///< no control instruction (undecodable word or text end)
  kBranch,       ///< conditional branch
  kJump,         ///< j
  kJal,          ///< jal (writes $ra)
  kJr,           ///< jr (target from rs at run time)
  kJalr,         ///< jalr (writes dest, target from rs)
};

/// The superblock starting at a given text-word index.
struct BlockSpan {
  std::uint32_t len = 0;      ///< instructions incl. terminator; 0 = entry
                              ///< word is undecodable (fault on entry)
  TermKind term = TermKind::kFallthrough;
  /// Terminator is a latch-event candidate: a conditional branch or direct
  /// `j` whose (static) target precedes it.  For kBranch the event fires
  /// only when taken; for kJump it always fires.
  bool backward_latch = false;
  std::uint64_t cycles = 0;   ///< summed static cycles over the span
};

class BlockCache {
 public:
  BlockCache() = default;

  /// Pre-decode `decoded` (text words based at kTextBase; `decode_ok[i]`
  /// marks words Decode() accepted) under `model`.
  BlockCache(std::span<const Instr> decoded, const std::vector<bool>& decode_ok,
             const CycleModel& model);

  [[nodiscard]] const PreInstr* instrs() const noexcept {
    return instrs_.data();
  }
  [[nodiscard]] const BlockSpan* spans() const noexcept {
    return spans_.data();
  }
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }

  /// Number of distinct maximal blocks (spans whose entry is a leader:
  /// index 0, control-successor, or branch/jump target).  Reporting only.
  [[nodiscard]] std::size_t leader_blocks() const noexcept {
    return leader_blocks_;
  }

 private:
  std::vector<PreInstr> instrs_;
  std::vector<BlockSpan> spans_;
  std::size_t leader_blocks_ = 0;
};

}  // namespace b2h::mips
