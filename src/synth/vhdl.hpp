// RT-level VHDL emission (paper §3: "The output of the tool is register
// transfer-level VHDL").
//
// One entity per hardware region: start/done handshake, one input port per
// live-in value, one output port per live-out value, and a dual-port memory
// interface to the FPGA-local BRAM.  The architecture is an FSMD: a state
// per (block, control step) pair, datapath operations emitted as variable
// assignments inside the clocked process so chained operators share a step
// exactly as scheduled.
#pragma once

#include <string>

#include "synth/schedule.hpp"

namespace b2h::synth {

/// Emit VHDL for a scheduled region.
[[nodiscard]] std::string EmitVhdl(const HwRegion& region,
                                   const RegionSchedule& schedule);

}  // namespace b2h::synth
