// Behavioral synthesis scheduler.
//
// Resource-constrained list scheduling per basic block with operator
// chaining (several dependent combinational ops share a control step while
// their summed delay fits the clock period), plus loop pipelining for
// single-block self-loops: the initiation interval II is the maximum of the
// memory-port pressure, multiplier pressure, and the loop-carried
// recurrence delay.  Pipelining is what gives hardware kernels their large
// speedups over the in-order MIPS (paper: average kernel speedup 44.8x).
#pragma once

#include <map>
#include <vector>

#include "decomp/alias.hpp"
#include "synth/hw_region.hpp"
#include "synth/resource.hpp"

namespace b2h::synth {

struct ScheduleOptions {
  double clock_ns = 10.0;   ///< target period (100 MHz)
  unsigned mem_ports = 2;   ///< dual-port BRAM
  unsigned max_mults = 4;   ///< MULT18x18 budget per step
  unsigned max_divs = 1;
  bool enable_pipelining = true;
  bool enable_chaining = true;
};

struct BlockSchedule {
  const ir::Block* block = nullptr;
  int num_steps = 1;
  std::map<const ir::Instr*, int> step_of;   ///< body ops only (no phis)
  std::map<const ir::Instr*, int> chain_pos; ///< order within a step
  double max_step_delay_ns = 0.0;
};

struct RegionSchedule {
  std::vector<BlockSchedule> blocks;
  /// >0: the region's primary loop is a pipelined single-block loop with
  /// this initiation interval.
  int pipeline_ii = 0;
  int pipeline_depth = 0;      ///< schedule length of the pipelined block
  double critical_path_ns = 0; ///< max chained delay in any step
  int total_states = 0;        ///< FSM states

  [[nodiscard]] const BlockSchedule* ForBlock(const ir::Block* block) const {
    for (const auto& bs : blocks) {
      if (bs.block == block) return &bs;
    }
    return nullptr;
  }
};

/// Schedule a region.  `alias` (optional) relaxes memory dependence edges
/// between accesses to provably different arrays.
[[nodiscard]] RegionSchedule ScheduleRegion(const HwRegion& region,
                                            const decomp::AliasAnalysis* alias,
                                            const ResourceLibrary& lib,
                                            const ScheduleOptions& options = {});

/// Estimated execution cycles for the region using block profile counts.
[[nodiscard]] std::uint64_t EstimateCycles(const HwRegion& region,
                                           const RegionSchedule& schedule);

/// Achievable clock (MHz) given the critical path; capped by the target.
[[nodiscard]] double AchievableClockMhz(const RegionSchedule& schedule,
                                        const ScheduleOptions& options);

/// Scheduler legality check used by tests: every operand is produced in an
/// earlier step, or in the same step at an earlier chain position with a
/// combinational producer; per-step resource limits hold.
[[nodiscard]] Status VerifySchedule(const HwRegion& region,
                                    const RegionSchedule& schedule,
                                    const ResourceLibrary& lib,
                                    const ScheduleOptions& options);

}  // namespace b2h::synth
