#include "synth/hw_region.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace b2h::synth {
namespace {

void ComputeLiveSets(HwRegion& region) {
  std::set<const ir::Block*> inside(region.blocks.begin(),
                                    region.blocks.end());
  std::set<const ir::Instr*> live_in;
  std::set<const ir::Instr*> defined;
  for (const ir::Block* block : region.blocks) {
    for (const ir::Instr* instr : block->instrs) defined.insert(instr);
  }
  // Live-in: operand defined outside; live-out: defined inside, used outside.
  std::set<const ir::Instr*> live_out;
  for (const auto& block : region.function->blocks()) {
    const bool is_inside = inside.count(block.get()) != 0;
    for (const ir::Instr* instr : block->instrs) {
      for (const ir::Value& operand : instr->operands) {
        if (!operand.is_instr()) continue;
        const bool def_inside = defined.count(operand.def) != 0;
        if (is_inside && !def_inside) live_in.insert(operand.def);
        if (!is_inside && def_inside) live_out.insert(operand.def);
      }
    }
  }
  region.live_ins.assign(live_in.begin(), live_in.end());
  region.live_outs.assign(live_out.begin(), live_out.end());
}

void CheckSynthesizable(HwRegion& region) {
  for (const ir::Block* block : region.blocks) {
    for (const ir::Instr* instr : block->instrs) {
      if (instr->op == ir::Opcode::kCall) {
        region.synthesizable = false;
        region.reject_reason = "region contains a non-inlinable call";
        return;
      }
    }
  }
}

}  // namespace

HwRegion ExtractLoopRegion(const ir::Function& function,
                           const ir::Loop& loop) {
  HwRegion region;
  region.function = &function;
  region.loop = &loop;
  // Header first, body blocks in function order after it.
  region.blocks.push_back(loop.header);
  for (const auto& block : function.blocks()) {
    if (block.get() != loop.header && loop.Contains(block.get())) {
      region.blocks.push_back(block.get());
    }
  }
  std::ostringstream name;
  name << function.name() << ":" << loop.header->name;
  region.name = name.str();
  ComputeLiveSets(region);
  CheckSynthesizable(region);
  return region;
}

HwRegion ExtractFunctionRegion(const ir::Function& function) {
  HwRegion region;
  region.function = &function;
  for (const auto& block : function.blocks()) {
    region.blocks.push_back(block.get());
  }
  region.name = function.name();
  ComputeLiveSets(region);
  CheckSynthesizable(region);
  return region;
}

}  // namespace b2h::synth
