// Hardware region extraction: the unit of partitioning and synthesis.
//
// A region is a loop nest (the common case — paper §3 moves the most
// frequent loops to hardware) or an entire function (the paper's third
// partitioning step "allows an entire application to be synthesized if
// space allows").  The extractor computes the live-in values (become input
// ports), live-out values (output ports), and checks synthesizability
// (no remaining calls).
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "ir/loops.hpp"

namespace b2h::synth {

struct HwRegion {
  const ir::Function* function = nullptr;
  /// Loop being synthesized; null for whole-function regions.  Valid only
  /// while the extracting LoopForest is alive — the partitioner nulls it on
  /// results it stores (use blocks.front()->start_pc for the header).
  const ir::Loop* loop = nullptr;
  std::vector<const ir::Block*> blocks;  ///< region blocks, entry first
  std::vector<const ir::Instr*> live_ins;
  std::vector<const ir::Instr*> live_outs;
  bool synthesizable = true;
  std::string reject_reason;
  std::string name;

  [[nodiscard]] bool Contains(const ir::Block* block) const {
    for (const ir::Block* b : blocks) {
      if (b == block) return true;
    }
    return false;
  }
  [[nodiscard]] std::size_t OpCount() const {
    std::size_t count = 0;
    for (const ir::Block* block : blocks) count += block->BodySize();
    return count;
  }
};

/// Extract the region for one loop (header + body blocks).
[[nodiscard]] HwRegion ExtractLoopRegion(const ir::Function& function,
                                         const ir::Loop& loop);

/// Extract the entire function as a region.
[[nodiscard]] HwRegion ExtractFunctionRegion(const ir::Function& function);

}  // namespace b2h::synth
