#include "synth/area.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace b2h::synth {
namespace {

using ir::Opcode;

bool IsBodyOp(const ir::Instr* instr) {
  return instr->op != Opcode::kPhi && !instr->is_terminator();
}

}  // namespace

AreaReport EstimateArea(const HwRegion& region,
                        const RegionSchedule& schedule,
                        const ResourceLibrary& lib) {
  AreaReport report;

  // ---- functional unit allocation: max concurrency per class ------------
  // Track, per class, the per-step usage and the maximum operand width.
  struct ClassInfo {
    unsigned max_concurrent = 0;
    unsigned total_ops = 0;
    unsigned max_width = 1;
  };
  std::map<FuClass, ClassInfo> classes;
  for (const auto& bs : schedule.blocks) {
    std::map<std::pair<FuClass, int>, unsigned> per_step;
    for (const ir::Instr* instr : bs.block->instrs) {
      if (!IsBodyOp(instr)) continue;
      const FuClass cls = ClassifyOp(*instr);
      if (cls == FuClass::kNone) continue;
      const int step = bs.step_of.at(instr);
      ClassInfo& info = classes[cls];
      ++info.total_ops;
      unsigned width = instr->width;
      for (const ir::Value& operand : instr->operands) {
        if (operand.is_instr()) {
          width = std::max<unsigned>(width, operand.def->width);
        }
      }
      info.max_width = std::max(info.max_width, std::min(width, 32u));
      const unsigned used = ++per_step[{cls, step}];
      info.max_concurrent = std::max(info.max_concurrent, used);
    }
  }

  for (const auto& [cls, info] : classes) {
    for (unsigned i = 0; i < info.max_concurrent; ++i) {
      FuInstance unit;
      unit.cls = cls;
      unit.width = info.max_width;
      // Distribute mapped ops evenly over instances for mux sizing.
      unit.ops_mapped =
          (info.total_ops + info.max_concurrent - 1) / info.max_concurrent;
      unit.gates = lib.FuGates(cls, info.max_width);
      report.fu_gates += unit.gates;
      // Sharing muxes: one per operand port (2) when >1 op mapped.
      report.mux_gates += 2 * lib.MuxGates(unit.ops_mapped, unit.width);
      if (cls == FuClass::kMul) {
        report.mult_blocks += info.max_width <= 18 ? 1 : 4;
      }
      report.units.push_back(unit);
    }
  }

  // ---- register allocation (left-edge over step lifetimes) --------------
  // A value needs a register if it lives past the step it is produced in
  // (consumed in a later step, is a phi, or is live-out of the region).
  struct Lifetime {
    int start = 0;
    int end = 0;
    unsigned width = 32;
  };
  std::vector<Lifetime> lifetimes;
  std::set<const ir::Instr*> live_out(region.live_outs.begin(),
                                      region.live_outs.end());
  for (const auto& bs : schedule.blocks) {
    std::unordered_map<const ir::Instr*, int> last_use;
    for (const ir::Instr* instr : bs.block->instrs) {
      if (!IsBodyOp(instr)) continue;
      const int step = bs.step_of.at(instr);
      for (const ir::Value& operand : instr->operands) {
        if (operand.is_instr() && operand.def->parent == bs.block) {
          last_use[operand.def] = std::max(last_use[operand.def], step);
        }
      }
    }
    for (const ir::Instr* instr : bs.block->instrs) {
      if (instr->op == Opcode::kPhi) {
        // Phis are registers live across the whole block.
        lifetimes.push_back({0, bs.num_steps, instr->width});
        continue;
      }
      if (!IsBodyOp(instr) || instr->width == 0) continue;
      const int def_step = bs.step_of.at(instr);
      int end = last_use.count(instr) != 0 ? last_use[instr] : def_step;
      if (live_out.count(instr) != 0 ||
          [&] {  // used by the terminator or another block
            for (const ir::Block* other : region.blocks) {
              for (const ir::Instr* user : other->instrs) {
                if (other == bs.block && IsBodyOp(user)) continue;
                for (const ir::Value& operand : user->operands) {
                  if (operand.is_instr() && operand.def == instr) return true;
                }
              }
            }
            return false;
          }()) {
        end = bs.num_steps;
      }
      if (end > def_step) {
        lifetimes.push_back({def_step + 1, end, instr->width});
      }
    }
  }
  // Left-edge: sort by start, greedily pack into registers.
  std::sort(lifetimes.begin(), lifetimes.end(),
            [](const Lifetime& a, const Lifetime& b) {
              return a.start < b.start;
            });
  std::vector<std::pair<int, unsigned>> registers;  // (free_at, width)
  for (const Lifetime& lt : lifetimes) {
    bool placed = false;
    for (auto& [free_at, width] : registers) {
      if (free_at <= lt.start) {
        free_at = lt.end;
        width = std::max(width, lt.width);
        placed = true;
        break;
      }
    }
    if (!placed) registers.emplace_back(lt.end, lt.width);
  }
  report.registers = static_cast<unsigned>(registers.size());
  for (const auto& [free_at, width] : registers) {
    report.register_bits += width;
    report.register_gates += lib.RegisterGates(width);
  }

  // ---- control -----------------------------------------------------------
  report.fsm_states = static_cast<unsigned>(
      std::max(1, schedule.total_states));
  report.fsm_gates = lib.FsmGates(report.fsm_states);

  const double subtotal = report.fu_gates + report.register_gates +
                          report.mux_gates + report.fsm_gates;
  report.total_gates = subtotal * (1.0 + lib.control_overhead);
  return report;
}

std::string AreaReport::Summary() const {
  std::ostringstream out;
  out << "Design Summary (ISE-style)\n";
  out << "  Functional units:\n";
  for (const auto& unit : units) {
    out << "    " << ToString(unit.cls) << " x1, width " << unit.width
        << ", ops mapped " << unit.ops_mapped << ", gates "
        << static_cast<long>(unit.gates) << "\n";
  }
  out << "  Registers: " << registers << " (" << register_bits << " bits)\n";
  out << "  MULT18X18s: " << mult_blocks << "\n";
  out << "  FSM states: " << fsm_states << "\n";
  out << "  Equivalent gate count:\n";
  out << "    datapath FUs: " << static_cast<long>(fu_gates) << "\n";
  out << "    registers:    " << static_cast<long>(register_gates) << "\n";
  out << "    muxes:        " << static_cast<long>(mux_gates) << "\n";
  out << "    control/FSM:  " << static_cast<long>(fsm_gates) << "\n";
  out << "    TOTAL:        " << static_cast<long>(total_gates) << "\n";
  return out.str();
}

}  // namespace b2h::synth
