#include "synth/resource.hpp"

#include <algorithm>

namespace b2h::synth {

const char* ToString(FuClass cls) noexcept {
  switch (cls) {
    case FuClass::kAddSub: return "add/sub";
    case FuClass::kMul: return "mult";
    case FuClass::kDiv: return "div";
    case FuClass::kLogic: return "logic";
    case FuClass::kShift: return "shift";
    case FuClass::kCompare: return "cmp";
    case FuClass::kMemPort: return "mem";
    case FuClass::kNone: return "wire";
  }
  return "?";
}

FuClass ClassifyOp(const ir::Instr& instr) noexcept {
  using ir::Opcode;
  switch (instr.op) {
    case Opcode::kAdd:
    case Opcode::kSub:
      return FuClass::kAddSub;
    case Opcode::kMul:
    case Opcode::kMulHiS:
    case Opcode::kMulHiU:
      return FuClass::kMul;
    case Opcode::kDivS: case Opcode::kDivU:
    case Opcode::kRemS: case Opcode::kRemU:
      return FuClass::kDiv;
    case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
    case Opcode::kNor:
      return FuClass::kLogic;
    case Opcode::kShl: case Opcode::kShrL: case Opcode::kShrA:
      // Constant shifts are wiring; variable shifts need a barrel shifter.
      return instr.operands.size() == 2 && instr.operands[1].is_const()
                 ? FuClass::kNone
                 : FuClass::kShift;
    case Opcode::kLoad:
    case Opcode::kStore:
      return FuClass::kMemPort;
    case Opcode::kSelect:
      return FuClass::kLogic;
    default:
      if (ir::IsComparison(instr.op)) return FuClass::kCompare;
      return FuClass::kNone;  // const/input/phi/ext/branches
  }
}

double ResourceLibrary::FuLuts(FuClass cls, unsigned width) const {
  const double w = std::max(1u, width);
  switch (cls) {
    case FuClass::kAddSub: return w;                // carry chain
    case FuClass::kMul: return 0.0;                 // hard block
    case FuClass::kDiv: return 5.0 * w;             // iterative divider
    case FuClass::kLogic: return 0.5 * w;
    case FuClass::kShift: return 2.5 * w;           // barrel shifter
    case FuClass::kCompare: return 0.75 * w;
    case FuClass::kMemPort: return 8.0;             // port control
    case FuClass::kNone: return 0.0;
  }
  return 0.0;
}

double ResourceLibrary::FuGates(FuClass cls, unsigned width) const {
  if (cls == FuClass::kMul) {
    // 18x18 hard blocks; wider multiplies tile multiple blocks.
    const unsigned blocks = width <= 18 ? 1 : 4;
    return blocks * gates_per_mult18;
  }
  return FuLuts(cls, width) * gates_per_lut;
}

double ResourceLibrary::OpDelayNs(const ir::Instr& instr) const {
  using ir::Opcode;
  const unsigned width = std::max<unsigned>(1, instr.width);
  switch (ClassifyOp(instr)) {
    case FuClass::kAddSub: return add_base_ns + add_per_bit_ns * width;
    case FuClass::kMul: return mul_ns;
    case FuClass::kDiv: return 0.0;  // multi-cycle, registered
    case FuClass::kLogic: return logic_ns;
    case FuClass::kShift: return shift_var_ns;
    case FuClass::kCompare: {
      // Comparators see their operand width, not the 1-bit result.
      unsigned w = 1;
      for (const ir::Value& operand : instr.operands) {
        if (operand.is_instr()) w = std::max<unsigned>(w, operand.def->width);
      }
      return cmp_base_ns + cmp_per_bit_ns * w;
    }
    case FuClass::kMemPort: return bram_access_ns;
    case FuClass::kNone: return 0.0;
  }
  return 0.0;
}

unsigned ResourceLibrary::OpLatencyCycles(const ir::Instr& instr) const {
  switch (ClassifyOp(instr)) {
    case FuClass::kDiv: return div_latency_cycles;
    case FuClass::kMemPort:
      return instr.op == ir::Opcode::kLoad ? load_latency_cycles : 0;
    default: return 0;
  }
}

}  // namespace b2h::synth
