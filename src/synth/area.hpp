// Datapath binding and area estimation (the "Xilinx ISE netlist report").
//
// Functional units are shared across control steps: the allocator keeps
// max-concurrent instances per FU class, the register file is sized by
// left-edge allocation over value lifetimes, and sharing muxes are priced
// by the number of operations mapped onto each instance.  The result is the
// equivalent-gate figure the paper reports (average 26,261 gates across the
// benchmark suite).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "synth/schedule.hpp"

namespace b2h::synth {

struct FuInstance {
  FuClass cls = FuClass::kNone;
  unsigned width = 0;
  unsigned ops_mapped = 0;   ///< operations sharing this instance
  double gates = 0.0;
};

struct AreaReport {
  std::vector<FuInstance> units;
  unsigned registers = 0;       ///< datapath registers after left-edge
  unsigned register_bits = 0;
  unsigned fsm_states = 0;
  unsigned mult_blocks = 0;     ///< MULT18x18 count
  double fu_gates = 0.0;
  double register_gates = 0.0;
  double mux_gates = 0.0;
  double fsm_gates = 0.0;
  double total_gates = 0.0;

  [[nodiscard]] std::string Summary() const;
};

/// Bind the scheduled region and estimate area.
[[nodiscard]] AreaReport EstimateArea(const HwRegion& region,
                                      const RegionSchedule& schedule,
                                      const ResourceLibrary& lib);

}  // namespace b2h::synth
